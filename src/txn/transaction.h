// OLTP transactions and their wire encoding.
//
// The paper's evaluation workload (Section 5): each transaction has five
// operations over one million keys, 50-byte values, half reads and half
// writes. Transactions are batched into a single consensus value.
#ifndef DPAXOS_TXN_TRANSACTION_H_
#define DPAXOS_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpaxos {

/// \brief One read or write of a transaction.
struct Operation {
  enum class Kind : uint8_t { kGet = 0, kPut = 1 };

  Kind kind = Kind::kGet;
  std::string key;
  std::string value;  // kPut only

  static Operation Get(std::string key) {
    return Operation{Kind::kGet, std::move(key), {}};
  }
  static Operation Put(std::string key, std::string value) {
    return Operation{Kind::kPut, std::move(key), std::move(value)};
  }

  bool operator==(const Operation& o) const {
    return kind == o.kind && key == o.key && value == o.value;
  }
};

/// \brief A transaction: a client-assigned id plus its operations.
///
/// `client_id`/`seq` form an optional end-to-end request id: a client
/// that retries a timed-out submission re-sends the same (client_id,
/// seq) pair so the state machine can drop duplicate applies. A zero
/// client_id marks an untagged (legacy) transaction that is never
/// deduplicated.
struct Transaction {
  uint64_t id = 0;
  uint64_t client_id = 0;  // 0 = untagged, exempt from dedup
  uint64_t seq = 0;        // per-client monotonically increasing
  std::vector<Operation> ops;

  bool read_only() const {
    for (const Operation& op : ops) {
      if (op.kind == Operation::Kind::kPut) return false;
    }
    return true;
  }

  bool operator==(const Transaction& o) const {
    return id == o.id && client_id == o.client_id && seq == o.seq &&
           ops == o.ops;
  }
};

/// Serialize a batch of transactions into a consensus value payload.
/// Format (little-endian): u32 txn count, then per transaction u64 id,
/// u64 client id, u64 seq, u32 op count, then per op u8 kind,
/// u32 key len, key bytes, u32 value len, value bytes.
std::string EncodeBatch(const std::vector<Transaction>& batch);

/// Parse a payload produced by EncodeBatch. Returns Corruption on any
/// malformed input (truncation, overflow).
Result<std::vector<Transaction>> DecodeBatch(const std::string& payload);

/// Serialized size of one transaction (for batch budgeting).
uint64_t EncodedSize(const Transaction& txn);

}  // namespace dpaxos

#endif  // DPAXOS_TXN_TRANSACTION_H_
