#include "txn/transaction.h"

#include <algorithm>

#include "common/codec.h"

namespace dpaxos {

std::string EncodeBatch(const std::vector<Transaction>& batch) {
  std::string out;
  ByteWriter w(&out);
  w.PutU32(static_cast<uint32_t>(batch.size()));
  for (const Transaction& txn : batch) {
    w.PutU64(txn.id);
    w.PutU64(txn.client_id);
    w.PutU64(txn.seq);
    w.PutU32(static_cast<uint32_t>(txn.ops.size()));
    for (const Operation& op : txn.ops) {
      w.PutU8(static_cast<uint8_t>(op.kind));
      w.PutString(op.key);
      w.PutString(op.value);
    }
  }
  return out;
}

Result<std::vector<Transaction>> DecodeBatch(const std::string& payload) {
  ByteReader r(payload);
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return Status::Corruption("truncated batch header");
  std::vector<Transaction> batch;
  // Never trust an unvalidated count for allocation: each transaction
  // needs at least 28 encoded bytes, so cap the reservation accordingly
  // (a hostile count still fails cleanly during parsing).
  batch.reserve(std::min<size_t>(count, payload.size() / 28 + 1));
  for (uint32_t i = 0; i < count; ++i) {
    Transaction txn;
    uint32_t ops = 0;
    if (!r.ReadU64(&txn.id) || !r.ReadU64(&txn.client_id) ||
        !r.ReadU64(&txn.seq) || !r.ReadU32(&ops)) {
      return Status::Corruption("truncated transaction header");
    }
    // Same rule for the op count: an op occupies at least 9 bytes.
    txn.ops.reserve(std::min<size_t>(ops, payload.size() / 9 + 1));
    for (uint32_t j = 0; j < ops; ++j) {
      Operation op;
      uint8_t kind = 0;
      if (!r.ReadU8(&kind) || kind > 1 || !r.ReadString(&op.key) ||
          !r.ReadString(&op.value)) {
        return Status::Corruption("truncated operation");
      }
      op.kind = static_cast<Operation::Kind>(kind);
      txn.ops.push_back(std::move(op));
    }
    batch.push_back(std::move(txn));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after batch");
  return batch;
}

uint64_t EncodedSize(const Transaction& txn) {
  uint64_t size = 8 + 8 + 8 + 4;  // id + client id + seq + op count
  for (const Operation& op : txn.ops) {
    size += 1 + 4 + op.key.size() + 4 + op.value.size();
  }
  return size;
}

}  // namespace dpaxos
