// Batch assembly: accumulate transactions until a byte budget is reached,
// then emit one consensus value (paper Section A.1 studies the batch-size
// throughput/latency trade-off).
#ifndef DPAXOS_TXN_BATCH_H_
#define DPAXOS_TXN_BATCH_H_

#include <cstdint>
#include <vector>

#include "paxos/value.h"
#include "txn/transaction.h"

namespace dpaxos {

/// \brief Accumulates transactions into fixed-size-target batches.
class BatchBuilder {
 public:
  /// `target_bytes`: emit a batch once its encoded size reaches this.
  explicit BatchBuilder(uint64_t target_bytes)
      : target_bytes_(target_bytes) {}

  /// Add a transaction; returns true once the batch is full.
  bool Add(Transaction txn) {
    pending_bytes_ += EncodedSize(txn);
    pending_.push_back(std::move(txn));
    return pending_bytes_ >= target_bytes_;
  }

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }
  uint64_t pending_bytes() const { return pending_bytes_; }

  /// Encode and clear the pending batch into a consensus value.
  Value Take(uint64_t value_id) {
    Value v = Value::Of(value_id, EncodeBatch(pending_));
    pending_.clear();
    pending_bytes_ = 0;
    return v;
  }

 private:
  uint64_t target_bytes_;
  uint64_t pending_bytes_ = 0;
  std::vector<Transaction> pending_;
};

}  // namespace dpaxos

#endif  // DPAXOS_TXN_BATCH_H_
