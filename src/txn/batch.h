// Batch assembly: accumulate transactions until a byte budget is reached,
// then emit one consensus value (paper Section A.1 studies the batch-size
// throughput/latency trade-off).
#ifndef DPAXOS_TXN_BATCH_H_
#define DPAXOS_TXN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/codec.h"
#include "paxos/value.h"
#include "txn/transaction.h"

namespace dpaxos {

/// \brief Accumulates transactions into fixed-size-target batches.
///
/// Transactions are encoded as they arrive instead of being stored and
/// re-encoded at emit time: the builder appends each one to a growing
/// payload whose leading count word is patched in Take(), and the payload
/// is then moved — not copied — into the emitted value. The output is
/// byte-identical to EncodeBatch() over the same transactions.
class BatchBuilder {
 public:
  /// `target_bytes`: emit a batch once its encoded size reaches this.
  explicit BatchBuilder(uint64_t target_bytes)
      : target_bytes_(target_bytes) {
    ResetBuffer();
  }

  /// Add a transaction; returns true once the batch is full.
  bool Add(const Transaction& txn) {
    const uint64_t sz = EncodedSize(txn);
    ByteWriter w(&encoded_);
    w.Reserve(static_cast<size_t>(sz));
    w.PutU64(txn.id);
    w.PutU64(txn.client_id);
    w.PutU64(txn.seq);
    w.PutU32(static_cast<uint32_t>(txn.ops.size()));
    for (const Operation& op : txn.ops) {
      w.PutU8(static_cast<uint8_t>(op.kind));
      w.PutString(op.key);
      w.PutString(op.value);
    }
    pending_bytes_ += sz;
    ++count_;
    return pending_bytes_ >= target_bytes_;
  }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  /// Encoded bytes of the pending transactions (excluding the count
  /// header), i.e. the sum of their EncodedSize() — what the byte target
  /// is compared against.
  uint64_t pending_bytes() const { return pending_bytes_; }

  /// Encode and clear the pending batch into a consensus value.
  Value Take(uint64_t value_id) {
    // Patch the count header in place (little-endian, matching ByteWriter).
    const uint32_t n = static_cast<uint32_t>(count_);
    for (int i = 0; i < 4; ++i) {
      encoded_[static_cast<size_t>(i)] =
          static_cast<char>((n >> (8 * i)) & 0xff);
    }
    Value v = Value::Of(value_id, std::move(encoded_));
    ResetBuffer();
    pending_bytes_ = 0;
    count_ = 0;
    return v;
  }

 private:
  void ResetBuffer() {
    encoded_.clear();
    encoded_.append(4, '\0');  // count placeholder, patched by Take()
  }

  uint64_t target_bytes_;
  uint64_t pending_bytes_ = 0;
  size_t count_ = 0;
  std::string encoded_;
};

}  // namespace dpaxos

#endif  // DPAXOS_TXN_BATCH_H_
