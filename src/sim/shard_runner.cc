#include "sim/shard_runner.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.h"

namespace dpaxos {

ShardSet::ShardSet(ShardSetOptions options) : options_(options) {
  DPAXOS_CHECK_GT(options_.shards, 0u);
  threads_ = options_.threads == 0 ? HardwareThreads() : options_.threads;
  if (threads_ > options_.shards) threads_ = options_.shards;
  if (threads_ == 0) threads_ = 1;
}

uint32_t ShardSet::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<uint32_t>(n);
}

std::vector<ShardResult> ShardSet::Run(const Body& body) const {
  DPAXOS_CHECK(static_cast<bool>(body));
  std::vector<ShardResult> results(options_.shards);

  // Workers claim whole shards; a claimed shard runs start-to-finish on
  // its worker. Each worker writes only results[i] for the i it claimed,
  // so the vector needs no lock. Shards always run on pool workers (even
  // with threads_ == 1) so the launching thread's counters advance
  // exactly once — by the ordered fold below, never by the bodies.
  std::atomic<uint32_t> next{0};
  auto worker = [&] {
    for (;;) {
      const uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= options_.shards) return;
      ShardContext ctx;
      ctx.shard_id = i;
      ctx.shard_count = options_.shards;
      ctx.seed = ShardSeed(options_.master_seed, i);
      const PerfCounters before = SnapshotPerfCounters();
      const auto start = std::chrono::steady_clock::now();
      body(ctx);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      ShardResult& r = results[i];
      r.shard_id = i;
      r.seed = ctx.seed;
      r.wall_ms =
          std::chrono::duration<double, std::milli>(elapsed).count();
      r.counters = SnapshotPerfCounters().DeltaSince(before);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (uint32_t t = 0; t < threads_; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Deterministic aggregation: shard-id order, on the launching thread.
  ThreadPerfCounters().Add(AggregateShardCounters(results));
  return results;
}

PerfCounters AggregateShardCounters(
    const std::vector<ShardResult>& results) {
  PerfCounters total;
  for (const ShardResult& r : results) total.Add(r.counters);
  return total;
}

}  // namespace dpaxos
