#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace dpaxos {

EventId Simulator::Schedule(Duration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(Timestamp when, std::function<void()> fn) {
  DPAXOS_CHECK_GE(when, now_);
  DPAXOS_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: mark the id; the event is skipped when popped.
  // We cannot tell here whether the event already ran, so callers should
  // only cancel ids they know are pending (e.g. un-fired timers).
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // skip cancelled events
    DPAXOS_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

size_t Simulator::RunUntil(Timestamp until) {
  DPAXOS_CHECK_GE(until, now_);
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    if (Step()) ++executed;
  }
  now_ = until;
  return executed;
}

size_t Simulator::RunUntilIdle(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && Step()) ++executed;
  return executed;
}

}  // namespace dpaxos
