#include "sim/simulator.h"

#include <utility>

#include "common/check.h"
#include "common/perf_counters.h"

namespace dpaxos {

namespace {

constexpr uint64_t kSlotMask = 0xffff'ffffull;

constexpr EventId MakeId(uint32_t generation, uint32_t slot) {
  return (static_cast<uint64_t>(generation) << 32) | slot;
}

}  // namespace

void Simulator::Reserve(size_t event_capacity) {
  if (slots_.size() >= event_capacity) return;
  heap_.reserve(event_capacity);
  free_slots_.reserve(event_capacity);
  const size_t old_size = slots_.size();
  slots_.resize(event_capacity);
  // Free slots pop from the back, so push high indices first: slots are
  // handed out in ascending order while the slab is cold (locality).
  for (size_t i = event_capacity; i > old_size; --i) {
    free_slots_.push_back(static_cast<uint32_t>(i - 1));
  }
}

uint32_t Simulator::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  ++ThreadPerfCounters().slab_growths;
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  // Bumping the generation is what invalidates every outstanding EventId
  // for this slot; 0 is reserved so an id can never be 0 (the "no timer"
  // sentinel) and Cancel(0) always misses.
  if (++s.generation == 0) s.generation = 1;
  free_slots_.push_back(slot);
}

void Simulator::HeapPush(HeapEntry e) {
  ++ThreadPerfCounters().heap_pushes;
  heap_.push_back(e);
  SiftUp(static_cast<uint32_t>(heap_.size() - 1));
}

void Simulator::HeapRemoveAt(uint32_t pos) {
  ++ThreadPerfCounters().heap_pops;
  const uint32_t last = static_cast<uint32_t>(heap_.size() - 1);
  if (pos != last) {
    heap_[pos] = heap_[last];
    heap_.pop_back();
    // The moved-in entry may be out of order in either direction
    // relative to its new neighbourhood; at most one of these moves it.
    SiftDown(pos);
    SiftUp(pos);
  } else {
    heap_.pop_back();
  }
}

void Simulator::SiftUp(uint32_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const uint32_t parent = (pos - 1) / 2;
    if (!Before(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
}

void Simulator::SiftDown(uint32_t pos) {
  const uint32_t n = static_cast<uint32_t>(heap_.size());
  const HeapEntry e = heap_[pos];
  while (true) {
    uint32_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && Before(heap_[child + 1], heap_[child])) ++child;
    if (!Before(heap_[child], e)) break;
    heap_[pos] = heap_[child];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
}

EventId Simulator::ScheduleAt(Timestamp when, EventFn fn) {
  DPAXOS_CHECK_GE(when, now_);
  DPAXOS_CHECK(static_cast<bool>(fn));
  const uint32_t slot = AcquireSlot();
  slots_[slot].fn = std::move(fn);
  const EventId id = MakeId(slots_[slot].generation, slot);
  HeapPush(HeapEntry{when, next_seq_++, slot});
  ++ThreadPerfCounters().events_scheduled;
  return id;
}

bool Simulator::Cancel(EventId id) {
  PerfCounters& perf = ThreadPerfCounters();
  const uint32_t slot = static_cast<uint32_t>(id & kSlotMask);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  // A handle is live iff its slot exists and the generations match: the
  // slot's generation was bumped the moment the event ran (or was
  // cancelled), so a stale cancel costs two loads and leaves nothing
  // behind — the unbounded tombstone set is gone.
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    ++perf.stale_cancels;
    return false;
  }
  Slot& s = slots_[slot];
  HeapRemoveAt(s.heap_pos);
  s.fn = EventFn();  // destroy the closure (and its captures) eagerly
  ReleaseSlot(slot);
  ++perf.events_cancelled;
  return true;
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  HeapRemoveAt(0);
  DPAXOS_CHECK_GE(top.when, now_);
  now_ = top.when;
  // Move the closure out and release the slot BEFORE invoking: the
  // closure may schedule (and even cancel) events, reusing this slot.
  EventFn fn = std::move(slots_[top.slot].fn);
  ReleaseSlot(top.slot);
  ++ThreadPerfCounters().events_executed;
  fn();
  return true;
}

size_t Simulator::RunUntil(Timestamp until) {
  DPAXOS_CHECK_GE(until, now_);
  size_t executed = 0;
  while (!heap_.empty() && heap_[0].when <= until) {
    if (Step()) ++executed;
  }
  now_ = until;
  return executed;
}

size_t Simulator::RunUntilIdle(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && Step()) ++executed;
  return executed;
}

}  // namespace dpaxos
