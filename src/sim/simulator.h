// Deterministic discrete-event simulation kernel.
//
// The Simulator owns a virtual clock (microseconds) and a pending-event
// store split into two structures:
//
//   * a SLAB of event slots (closure + generation + heap position),
//     recycled through a free list so the steady state allocates nothing;
//   * an INDEXED BINARY HEAP of 24-byte PODs {when, seq, slot} ordered by
//     (when, seq) — seq is a monotonic scheduling ticket, so events with
//     equal timestamps execute in scheduling order and the entire
//     simulation is a pure function of its seed and inputs. Every
//     experiment, property test and golden file in this repository
//     relies on that order (see docs/perf.md before touching it).
//
// Slots track their heap position (maintained by every sift), which is
// what makes Cancel() a true O(log n) removal instead of the tombstone
// set the kernel used to carry. EventIds carry a generation tag so a
// stale cancel — of an event that already fired, or of a recycled slot —
// is detected and refused in O(1) without any growing side structure.
#ifndef DPAXOS_SIM_SIMULATOR_H_
#define DPAXOS_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "sim/event_fn.h"
#include "sim/scheduler.h"

namespace dpaxos {

/// \brief Single-threaded discrete-event simulator.
///
/// Implements EventScheduler on a virtual clock (protocol components
/// hold EventScheduler* so they also run on the real-clock EventLoop).
/// Usage: schedule closures with Schedule(), then drive with RunFor(),
/// RunUntil() or RunUntilIdle(). Closures may schedule further events.
class Simulator final : public EventScheduler {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Timestamp Now() const override { return now_; }

  /// Schedule `fn` at an absolute virtual time (>= Now()).
  EventId ScheduleAt(Timestamp when, EventFn fn) override;

  /// Pre-size the event slab, free list and heap for a peak pending
  /// population of `event_capacity`. Sizing from a workload hint up
  /// front (instead of growing on demand) keeps `slab_growths` at zero
  /// for the WHOLE run, not just the warm tail — the property
  /// tests/perf_counters_test.cc asserts. Idempotent; never shrinks.
  void Reserve(size_t event_capacity);

  /// Cancel a pending event: O(log n) removal from the heap. Returns
  /// false — cheaply, with no state retained — if the event already ran,
  /// was already cancelled, or never existed (stale handle).
  bool Cancel(EventId id) override;

  /// Run all events with timestamp <= `until`, then set the clock to
  /// `until`. Returns the number of events executed.
  size_t RunUntil(Timestamp until);

  /// Run for `d` of virtual time from now. Returns events executed.
  size_t RunFor(Duration d) { return RunUntil(now_ + d); }

  /// Run until the event queue drains or `max_events` were executed.
  /// Returns events executed. A return value == max_events usually means
  /// the simulation livelocked (e.g. dueling proposers without backoff).
  size_t RunUntilIdle(size_t max_events = 50'000'000);

  /// Execute exactly one event if any is pending. Returns true if one ran.
  bool Step();

  /// Number of events currently pending (cancelled events leave the
  /// heap immediately, so this is exact).
  size_t pending_events() const { return heap_.size(); }

  /// The ticket the NEXT ScheduleAt() call will be assigned. Two reads
  /// returning the same value bracket a span in which nothing was
  /// scheduled — the transport uses this to prove that coalescing
  /// same-tick deliveries cannot reorder the schedule (see
  /// SimTransport::EnqueueDelivery).
  uint64_t next_schedule_seq() const { return next_seq_; }

  /// The simulation's root random source (fork children per component).
  Rng& rng() override { return rng_; }

 private:
  /// Heap element: plain 24-byte POD, so sifts and pops are register
  /// moves — the closure never travels through the heap.
  struct HeapEntry {
    Timestamp when;
    uint64_t seq;   ///< scheduling ticket; unique, so (when, seq) is total
    uint32_t slot;  ///< index into slots_
  };

  /// Slab slot: owns the closure between ScheduleAt and execution.
  struct Slot {
    EventFn fn;
    uint32_t generation = 1;  ///< bumped on release; 0 is never issued
    uint32_t heap_pos = 0;    ///< current index in heap_ while pending
  };

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  void HeapPush(HeapEntry e);
  /// Remove the entry at `pos`, restoring the heap property around it.
  void HeapRemoveAt(uint32_t pos);
  void SiftUp(uint32_t pos);
  void SiftDown(uint32_t pos);

  Timestamp now_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  Rng rng_;
};

}  // namespace dpaxos

#endif  // DPAXOS_SIM_SIMULATOR_H_
