// Deterministic discrete-event simulation kernel.
//
// The Simulator owns a virtual clock (microseconds) and a priority queue of
// events. Events with equal timestamps execute in scheduling order, so the
// entire simulation is a pure function of its seed and inputs — the
// property every experiment and property test in this repository relies on.
#ifndef DPAXOS_SIM_SIMULATOR_H_
#define DPAXOS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace dpaxos {

/// Identifier of a scheduled event, usable with Simulator::Cancel().
using EventId = uint64_t;

/// \brief Single-threaded discrete-event simulator.
///
/// Usage: schedule closures with Schedule(), then drive with RunFor(),
/// RunUntil() or RunUntilIdle(). Closures may schedule further events.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Timestamp Now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current virtual time.
  /// Returns an id that can be passed to Cancel().
  EventId Schedule(Duration delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute virtual time (>= Now()).
  EventId ScheduleAt(Timestamp when, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool Cancel(EventId id);

  /// Run all events with timestamp <= `until`, then set the clock to
  /// `until`. Returns the number of events executed.
  size_t RunUntil(Timestamp until);

  /// Run for `d` of virtual time from now. Returns events executed.
  size_t RunFor(Duration d) { return RunUntil(now_ + d); }

  /// Run until the event queue drains or `max_events` were executed.
  /// Returns events executed. A return value == max_events usually means
  /// the simulation livelocked (e.g. dueling proposers without backoff).
  size_t RunUntilIdle(size_t max_events = 50'000'000);

  /// Execute exactly one event if any is pending. Returns true if one ran.
  bool Step();

  /// Number of events currently pending.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  /// The simulation's root random source (fork children per component).
  Rng& rng() { return rng_; }

 private:
  struct Event {
    Timestamp when;
    EventId id;  // also the tie-break sequence number
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;  // min-heap on time
      return a.id > b.id;                            // FIFO among ties
    }
  };

  Timestamp now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
};

}  // namespace dpaxos

#endif  // DPAXOS_SIM_SIMULATOR_H_
