// Small-buffer-optimized move-only callable for simulator events.
//
// Every scheduled closure in the repository used to be a
// std::function<void()>, which heap-allocates for captures over two
// pointers — one malloc/free per event on the hottest path in the
// simulator. EventFn stores up to kInlineBytes of capture state inline
// in the event slab instead; typical delivery closures (this + two node
// ids + a shared_ptr) fit with room to spare. Larger closures fall back
// to the heap and are counted (PerfCounters::callable_heap_allocs), so
// tests/perf_counters_test.cc can assert the steady state never pays
// for one.
#ifndef DPAXOS_SIM_EVENT_FN_H_
#define DPAXOS_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/perf_counters.h"

namespace dpaxos {

/// \brief Move-only type-erased void() callable with inline storage.
///
/// Unlike std::function it cannot be copied — events run exactly once,
/// and copyability is what forces std::function to heap-allocate
/// non-trivial captures. Construction from any callable (including
/// lvalue std::functions, which are copied in) is implicit so existing
/// Schedule() call sites compile unchanged.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
      ++ThreadPerfCounters().callable_heap_allocs;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  /// Per-callable-type vtable: three free functions instead of a
  /// polymorphic wrapper, so an empty EventFn is a null pointer and a
  /// move is a memcpy-sized relocate.
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* p) { return *static_cast<Fn**>(p); }
    static void Invoke(void* p) { (*Get(p))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn*(Get(src));
    }
    static void Destroy(void* p) { delete Get(p); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

static_assert(!std::is_copy_constructible_v<EventFn> &&
                  !std::is_copy_assignable_v<EventFn>,
              "EventFn must stay move-only: copyability is what forces "
              "per-event heap allocation");
static_assert(std::is_nothrow_move_constructible_v<EventFn>,
              "slab compaction relies on noexcept relocation");

}  // namespace dpaxos

#endif  // DPAXOS_SIM_EVENT_FN_H_
