// Clock/timer abstraction shared by the deterministic simulator and the
// real-network event loop.
//
// Every protocol component (Replica, GarbageCollector, NodeHost) drives
// its timers through this interface instead of the concrete Simulator, so
// the exact same protocol code runs either on the virtual clock (tier-1
// deterministic tests, goldens) or on the monotonic wall clock inside
// net/tcp/EventLoop (the production execution tier). The two
// implementations share EventId semantics: ids encode
// (generation << 32 | slot), are never 0 (0 is the universal "no timer"
// sentinel), and Cancel() of a stale id is detected and refused in O(1).
#ifndef DPAXOS_SIM_SCHEDULER_H_
#define DPAXOS_SIM_SCHEDULER_H_

#include <cstdint>
#include <utility>

#include "common/random.h"
#include "common/types.h"
#include "sim/event_fn.h"

namespace dpaxos {

/// Identifier of a scheduled event, usable with EventScheduler::Cancel().
/// Encodes (generation << 32 | slot); never 0, so 0 is a safe sentinel
/// for "no timer" (callers rely on this).
using EventId = uint64_t;

/// \brief Clock + one-shot timer service.
///
/// Implementations: Simulator (virtual microsecond clock, deterministic)
/// and EventLoop (epoll + monotonic clock, src/net/tcp/event_loop.h).
/// Single-threaded: all calls must come from the thread driving the
/// scheduler; scheduled closures run on that same thread.
class EventScheduler {
 public:
  virtual ~EventScheduler() = default;

  /// Current time in microseconds. Virtual time for the simulator,
  /// monotonic time since loop construction for the real event loop.
  virtual Timestamp Now() const = 0;

  /// Schedule `fn` at an absolute time. A `when` in the past fires as
  /// soon as possible. Returns an id that can be passed to Cancel().
  virtual EventId ScheduleAt(Timestamp when, EventFn fn) = 0;

  /// Cancel a pending event. Returns false — cheaply, with no state
  /// retained — if the event already ran, was already cancelled, or
  /// never existed (stale handle).
  virtual bool Cancel(EventId id) = 0;

  /// Root random source (fork children per component). Seeded and
  /// deterministic for the simulator; seeded per-process for the real
  /// event loop.
  virtual Rng& rng() = 0;

  /// Schedule `fn` to run `delay` after the current time.
  EventId Schedule(Duration delay, EventFn fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }
};

}  // namespace dpaxos

#endif  // DPAXOS_SIM_SCHEDULER_H_
