// ShardSet: run K independent simulation shards across a fixed-size
// worker pool, bit-deterministically.
//
// DPaxos partitions are independent Paxos instances (paper Section B.1,
// realized by src/directory/sharded_store.*), so a multi-partition
// workload decomposes into shards that share NOTHING: each shard owns
// its own Simulator, transport, cluster and RNG stream, seeded as a pure
// function of (master_seed, shard_id). The runner's only job is to carry
// those closed worlds across threads without letting the thread count
// leak into any result:
//
//   * a shard never migrates mid-run — one worker drives it start to
//     finish, so its event order is exactly the single-threaded order;
//   * workers claim WHOLE shards from an atomic cursor (load balancing
//     without cross-shard work stealing, which is forbidden — see
//     docs/perf.md);
//   * per-shard PerfCounters deltas are captured from the worker's
//     thread-local counters around each shard body, then folded into
//     the launching thread IN SHARD-ID ORDER after the pool joins.
//
// Consequence: every field of every ShardResult, and the launching
// thread's counter totals, are byte-identical for any `threads` value —
// only wall-clock fields vary. tests/shard_runner_test.cc asserts this.
#ifndef DPAXOS_SIM_SHARD_RUNNER_H_
#define DPAXOS_SIM_SHARD_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/perf_counters.h"
#include "common/random.h"

namespace dpaxos {

/// Seed of shard `shard_id` under `master_seed`: a SplitMix64 mix, so
/// shard streams are decorrelated and stable across runs and machines.
inline uint64_t ShardSeed(uint64_t master_seed, uint32_t shard_id) {
  uint64_t state = master_seed + 0x632be59bd9b4e019ULL * (shard_id + 1);
  return SplitMix64(state);
}

/// Pool shape for one ShardSet run.
struct ShardSetOptions {
  uint32_t shards = 1;
  /// Worker threads; 0 = one per hardware thread. Clamped to [1, shards].
  /// MUST NOT affect any result bit — only wall-clock time.
  uint32_t threads = 1;
  uint64_t master_seed = 42;
};

/// What a shard body learns about its identity.
struct ShardContext {
  uint32_t shard_id = 0;
  uint32_t shard_count = 1;
  uint64_t seed = 0;  ///< ShardSeed(master_seed, shard_id)
};

/// Per-shard outcome, returned in shard-id order.
struct ShardResult {
  uint32_t shard_id = 0;
  uint64_t seed = 0;
  double wall_ms = 0;      ///< host time the shard body took on its worker
  PerfCounters counters;   ///< thread-local counter delta of the body
};

/// \brief Fixed-pool executor of independent simulation shards.
class ShardSet {
 public:
  using Body = std::function<void(const ShardContext&)>;

  explicit ShardSet(ShardSetOptions options);

  /// Run `body` once per shard across the pool and block until all
  /// shards finish. The body must confine itself to the state it builds
  /// from its ShardContext (no shared mutable state); it runs exactly
  /// once per shard, entirely on one worker thread.
  ///
  /// On return the launching thread's ThreadPerfCounters() have advanced
  /// by the sum of all shard deltas (added in shard-id order), so outer
  /// Snapshot/DeltaSince measurement brackets keep working unchanged.
  std::vector<ShardResult> Run(const Body& body) const;

  /// Worker threads the pool will actually use.
  uint32_t threads() const { return threads_; }
  uint32_t shards() const { return options_.shards; }

  /// Hardware concurrency with a floor of 1.
  static uint32_t HardwareThreads();

 private:
  ShardSetOptions options_;
  uint32_t threads_ = 1;
};

/// Sum of per-shard counter deltas, accumulated in shard-id order.
PerfCounters AggregateShardCounters(const std::vector<ShardResult>& results);

}  // namespace dpaxos

#endif  // DPAXOS_SIM_SHARD_RUNNER_H_
