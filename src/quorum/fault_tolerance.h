// The paper's two-level fault-tolerance model (Section 3): the number of
// tolerated individual datacenter (node) failures per zone, f_d, and the
// number of tolerated zone-scale failures, f_z.
#ifndef DPAXOS_QUORUM_FAULT_TOLERANCE_H_
#define DPAXOS_QUORUM_FAULT_TOLERANCE_H_

#include <cstdint>

namespace dpaxos {

/// \brief Configured fault-tolerance level.
///
/// The paper assumes every zone holds at least 2*fd + 1 nodes and the
/// system has at least 2*fz + 1 zones; Cluster validates this.
struct FaultTolerance {
  /// Tolerated individual node (edge datacenter) failures per zone.
  uint32_t fd = 1;
  /// Tolerated zone-scale failures (natural disasters).
  uint32_t fz = 0;

  /// Size of the smallest replication quorum: (fd+1) nodes in (fz+1) zones.
  uint32_t ReplicationQuorumSize() const { return (fd + 1) * (fz + 1); }
};

}  // namespace dpaxos

#endif  // DPAXOS_QUORUM_FAULT_TOLERANCE_H_
