#include "quorum/quorum_rule.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dpaxos {

namespace {

// Number of candidates of `req` that are not in `excluded`.
uint32_t UsableCandidates(const QuorumRequirement& req,
                          const std::set<NodeId>& excluded) {
  uint32_t usable = 0;
  for (NodeId n : req.candidates) {
    if (excluded.count(n) == 0) ++usable;
  }
  return usable;
}

uint32_t CountAcks(const QuorumRequirement& req,
                   const std::set<NodeId>& acks) {
  uint32_t have = 0;
  for (NodeId n : req.candidates) {
    if (acks.count(n) > 0) ++have;
  }
  return have;
}

// Both lists are sorted and unique; count their intersection linearly.
uint32_t CountAcks(const QuorumRequirement& req,
                   const std::vector<NodeId>& sorted_acks) {
  uint32_t have = 0;
  auto it = sorted_acks.begin();
  for (NodeId n : req.candidates) {
    while (it != sorted_acks.end() && *it < n) ++it;
    if (it == sorted_acks.end()) break;
    if (*it == n) ++have;
  }
  return have;
}

}  // namespace

QuorumRule::QuorumRule(std::vector<QuorumGroup> groups)
    : groups_(std::move(groups)) {
  for (QuorumGroup& g : groups_) {
    if (g.min_satisfied == 0) {
      g.min_satisfied = static_cast<uint32_t>(g.requirements.size());
    }
    DPAXOS_CHECK_LE(g.min_satisfied, g.requirements.size());
    for (QuorumRequirement& req : g.requirements) {
      std::sort(req.candidates.begin(), req.candidates.end());
      req.candidates.erase(
          std::unique(req.candidates.begin(), req.candidates.end()),
          req.candidates.end());
      DPAXOS_CHECK_LE(req.min_acks, req.candidates.size());
    }
  }
}

QuorumRule QuorumRule::Simple(std::vector<NodeId> candidates,
                              uint32_t min_acks) {
  QuorumGroup g;
  g.requirements.push_back({std::move(candidates), min_acks});
  g.min_satisfied = 1;
  return QuorumRule({g});
}

QuorumRule QuorumRule::OfGroup(std::vector<QuorumRequirement> requirements,
                               uint32_t min_satisfied) {
  QuorumGroup g;
  g.requirements = std::move(requirements);
  g.min_satisfied = min_satisfied;
  return QuorumRule({std::move(g)});
}

std::vector<NodeId> QuorumRule::Targets() const {
  std::set<NodeId> out;
  for (const QuorumGroup& g : groups_) {
    for (const QuorumRequirement& req : g.requirements) {
      out.insert(req.candidates.begin(), req.candidates.end());
    }
  }
  return {out.begin(), out.end()};
}

bool QuorumRule::IsSatisfied(const std::set<NodeId>& acks) const {
  for (const QuorumGroup& g : groups_) {
    uint32_t satisfied = 0;
    for (const QuorumRequirement& req : g.requirements) {
      if (CountAcks(req, acks) >= req.min_acks) ++satisfied;
    }
    if (satisfied < g.min_satisfied) return false;
  }
  return true;
}

bool QuorumRule::IsSatisfiedSorted(
    const std::vector<NodeId>& sorted_acks) const {
  for (const QuorumGroup& g : groups_) {
    uint32_t satisfied = 0;
    for (const QuorumRequirement& req : g.requirements) {
      if (CountAcks(req, sorted_acks) >= req.min_acks) ++satisfied;
    }
    if (satisfied < g.min_satisfied) return false;
  }
  return true;
}

bool QuorumRule::IsImpossible(const std::set<NodeId>& rejected) const {
  for (const QuorumGroup& g : groups_) {
    uint32_t satisfiable = 0;
    for (const QuorumRequirement& req : g.requirements) {
      if (UsableCandidates(req, rejected) >= req.min_acks) ++satisfiable;
    }
    if (satisfiable < g.min_satisfied) return true;
  }
  return false;
}

bool QuorumRule::AlwaysIntersects(const std::set<NodeId>& nodes) const {
  // The rule always intersects `nodes` iff no satisfying set avoids all of
  // them, i.e. iff treating `nodes` as rejected makes the rule impossible.
  // Groups are independent conjuncts, so this check is exact.
  if (groups_.empty()) return false;  // the empty rule is satisfied by {}
  return IsImpossible(nodes);
}

std::vector<NodeId> QuorumRule::PickSatisfyingSetAvoiding(
    const std::set<NodeId>& avoid) const {
  if (IsImpossible(avoid)) return {};
  std::set<NodeId> picked;
  for (const QuorumGroup& g : groups_) {
    uint32_t satisfied = 0;
    for (const QuorumRequirement& req : g.requirements) {
      if (satisfied >= g.min_satisfied) break;
      if (UsableCandidates(req, avoid) < req.min_acks) continue;
      uint32_t have = 0;
      // Prefer candidates already picked for other requirements so the
      // result stays minimal-ish.
      for (NodeId n : req.candidates) {
        if (have >= req.min_acks) break;
        if (avoid.count(n) > 0) continue;
        if (picked.count(n) > 0) ++have;
      }
      for (NodeId n : req.candidates) {
        if (have >= req.min_acks) break;
        if (avoid.count(n) > 0 || picked.count(n) > 0) continue;
        picked.insert(n);
        ++have;
      }
      DPAXOS_CHECK_GE(have, req.min_acks);
      ++satisfied;
    }
    DPAXOS_CHECK_GE(satisfied, g.min_satisfied);
  }
  return {picked.begin(), picked.end()};
}

QuorumRule QuorumRule::MergedWith(const QuorumRule& other) const {
  std::vector<QuorumGroup> merged = groups_;
  merged.insert(merged.end(), other.groups_.begin(), other.groups_.end());
  return QuorumRule(std::move(merged));
}

std::string QuorumRule::ToString() const {
  std::ostringstream oss;
  oss << "rule{";
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const QuorumGroup& g = groups_[gi];
    if (gi > 0) oss << " & ";
    oss << g.min_satisfied << "of[";
    for (size_t ri = 0; ri < g.requirements.size(); ++ri) {
      const QuorumRequirement& req = g.requirements[ri];
      if (ri > 0) oss << ",";
      oss << req.min_acks << "/{";
      for (size_t ci = 0; ci < req.candidates.size(); ++ci) {
        if (ci > 0) oss << " ";
        oss << req.candidates[ci];
      }
      oss << "}";
    }
    oss << "]";
  }
  oss << "}";
  return oss.str();
}

}  // namespace dpaxos
