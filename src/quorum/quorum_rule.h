// Quorum rules: declarative "which acknowledgements suffice" predicates.
//
// A QuorumRule is a conjunction of groups. Each group holds a list of
// requirements — a candidate node set plus a minimum ack count — of which
// at least `min_satisfied` must hold. The rule is satisfied when every
// group is. This structure expresses every quorum in the paper:
//
//   majority of N nodes            -> 1 group, 1 requirement
//                                     {all nodes, majority(N)}
//   zone-centric replication       -> 1 group, f_z+1 zone requirements
//                                     {zone_i, f_d+1}, all mandatory
//   Flexible Paxos leader election -> 1 group, |Z| requirements
//                                     {zone_i, |Z_i|-f_d}, min |Z|-f_z
//   Delegate leader election       -> 1 group, |Z| requirements
//                                     {zone_i, maj(|Z_i|)}, min maj(|Z|)
//   Leader-Zone leader election    -> 1 group {leader zone, maj}
//   expansion by detected intents  -> extra mandatory group per intent
//                                     {intent nodes, 1}
#ifndef DPAXOS_QUORUM_QUORUM_RULE_H_
#define DPAXOS_QUORUM_QUORUM_RULE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace dpaxos {

/// Smallest integer strictly greater than half of `n`.
inline uint32_t MajorityOf(uint32_t n) { return n / 2 + 1; }

/// \brief One component of a quorum group.
struct QuorumRequirement {
  /// Nodes whose acks count toward this requirement (sorted, unique).
  std::vector<NodeId> candidates;
  /// Number of distinct candidate acks needed to satisfy it.
  uint32_t min_acks = 0;
};

/// \brief "At least `min_satisfied` of these requirements hold."
struct QuorumGroup {
  std::vector<QuorumRequirement> requirements;
  /// Defaults (when 0 at rule construction) to requirements.size().
  uint32_t min_satisfied = 0;
};

/// \brief A predicate over acknowledgement sets: an AND of k-of-n groups.
class QuorumRule {
 public:
  QuorumRule() = default;

  /// Builds a rule from groups. Any group whose min_satisfied is 0 is
  /// normalized to "all requirements mandatory".
  explicit QuorumRule(std::vector<QuorumGroup> groups);

  /// Single-group, single-requirement rule: `min_acks` of `candidates`.
  static QuorumRule Simple(std::vector<NodeId> candidates, uint32_t min_acks);

  /// Single group with `min_satisfied` of `requirements`.
  static QuorumRule OfGroup(std::vector<QuorumRequirement> requirements,
                            uint32_t min_satisfied = 0);

  const std::vector<QuorumGroup>& groups() const { return groups_; }
  bool empty() const { return groups_.empty(); }

  /// Union of all candidate nodes (the set a proposer messages), sorted.
  std::vector<NodeId> Targets() const;

  /// True if the acks collected so far satisfy every group.
  bool IsSatisfied(const std::set<NodeId>& acks) const;
  /// Same predicate over a sorted, unique vector (the replication hot
  /// path keeps its ack sets flat).
  bool IsSatisfiedSorted(const std::vector<NodeId>& sorted_acks) const;

  /// True if the rule can no longer be satisfied given that every node in
  /// `rejected` will never ack (it nacked or is known dead).
  bool IsImpossible(const std::set<NodeId>& rejected) const;

  /// True if *every* node set satisfying this rule contains at least one
  /// node of `nodes`. Exact for this structure (decides whether a
  /// satisfying set disjoint from `nodes` exists). Used to verify the
  /// paper's inter-/intra-intersection conditions.
  bool AlwaysIntersects(const std::set<NodeId>& nodes) const;

  /// Greedy construction of one minimal satisfying set that avoids
  /// `avoid`; empty vector if the rule cannot be satisfied while avoiding
  /// those nodes (and the rule is non-empty). Test helper for
  /// intersection properties.
  std::vector<NodeId> PickSatisfyingSetAvoiding(
      const std::set<NodeId>& avoid) const;

  /// Conjunction: all groups of both rules must hold.
  QuorumRule MergedWith(const QuorumRule& other) const;

  std::string ToString() const;

 private:
  std::vector<QuorumGroup> groups_;
};

}  // namespace dpaxos

#endif  // DPAXOS_QUORUM_QUORUM_RULE_H_
