#include "quorum/quorum_system.h"

#include <algorithm>

#include "common/check.h"

namespace dpaxos {

const char* ProtocolModeName(ProtocolMode mode) {
  switch (mode) {
    case ProtocolMode::kMultiPaxos:
      return "MultiPaxos";
    case ProtocolMode::kFlexiblePaxos:
      return "FlexiblePaxos";
    case ProtocolMode::kDelegate:
      return "DPaxos-Delegate";
    case ProtocolMode::kLeaderZone:
      return "DPaxos-LeaderZone";
    case ProtocolMode::kLeaderless:
      return "Leaderless";
  }
  return "?";
}

QuorumRule QuorumSystem::ReplicationRuleForIntent(
    const std::vector<NodeId>& intent_nodes) {
  DPAXOS_CHECK(!intent_nodes.empty());
  return QuorumRule::Simple(intent_nodes,
                            static_cast<uint32_t>(intent_nodes.size()));
}

std::vector<NodeId> QuorumSystem::FastQuorum(NodeId leader) const {
  // Expanding Quorums modes pin the fast quorum to the leader's primary
  // declared intent: elections already detect stored intents and expand
  // to intersect them, which is exactly the recovery-intersection the
  // fast path needs (the intent interaction).
  if (UsesIntents()) return IntentQuorum(leader);
  return {};
}

bool QuorumSystem::FastIntersectsRecovery(
    const std::vector<NodeId>& fast_quorum, const QuorumRule& recovery_rule) {
  if (fast_quorum.empty()) return false;
  return recovery_rule.AlwaysIntersects(
      std::set<NodeId>(fast_quorum.begin(), fast_quorum.end()));
}

std::vector<NodeId> SmallestReplicationQuorum(const Topology& topology,
                                              NodeId leader,
                                              FaultTolerance ft) {
  const ZoneId home = topology.ZoneOf(leader);
  std::vector<NodeId> quorum;
  quorum.push_back(leader);
  // fd more nodes from the leader's zone, lowest ids first.
  for (NodeId n : topology.NodesInZone(home)) {
    if (quorum.size() >= ft.fd + 1) break;
    if (n != leader) quorum.push_back(n);
  }
  DPAXOS_CHECK_EQ(quorum.size(), ft.fd + 1);
  // fd+1 nodes in each of the fz nearest other zones.
  uint32_t extra_zones = 0;
  for (ZoneId z : topology.ZonesByProximity(home)) {
    if (extra_zones >= ft.fz) break;
    if (z == home) continue;
    const std::vector<NodeId> nodes = topology.NodesInZone(z);
    DPAXOS_CHECK_GE(nodes.size(), ft.fd + 1);
    quorum.insert(quorum.end(), nodes.begin(), nodes.begin() + ft.fd + 1);
    ++extra_zones;
  }
  DPAXOS_CHECK_EQ(extra_zones, ft.fz);
  std::sort(quorum.begin(), quorum.end());
  return quorum;
}

std::unique_ptr<QuorumSystem> MakeQuorumSystem(ProtocolMode mode,
                                               const Topology* topology,
                                               FaultTolerance ft) {
  switch (mode) {
    case ProtocolMode::kMultiPaxos:
    case ProtocolMode::kLeaderless:
      return std::make_unique<MajorityQuorumSystem>(topology, ft, mode);
    case ProtocolMode::kFlexiblePaxos:
      return std::make_unique<ZoneCentricQuorumSystem>(topology, ft);
    case ProtocolMode::kDelegate:
      return std::make_unique<DelegateQuorumSystem>(topology, ft);
    case ProtocolMode::kLeaderZone:
      return std::make_unique<LeaderZoneQuorumSystem>(topology, ft);
  }
  DPAXOS_UNREACHABLE();
}

// ---------------------------------------------------------------------
// MajorityQuorumSystem

MajorityQuorumSystem::MajorityQuorumSystem(const Topology* topology,
                                           FaultTolerance ft,
                                           ProtocolMode mode)
    : QuorumSystem(topology, ft), mode_(mode) {
  DPAXOS_CHECK(mode == ProtocolMode::kMultiPaxos ||
               mode == ProtocolMode::kLeaderless);
}

QuorumRule MajorityQuorumSystem::LeaderElectionRule(
    NodeId /*aspirant*/, const LeaderZoneView& /*view*/) const {
  return QuorumRule::Simple(topology_->AllNodes(),
                            MajorityOf(topology_->num_nodes()));
}

QuorumRule MajorityQuorumSystem::DefaultReplicationRule(
    NodeId /*leader*/) const {
  return QuorumRule::Simple(topology_->AllNodes(),
                            MajorityOf(topology_->num_nodes()));
}

std::vector<NodeId> MajorityQuorumSystem::IntentQuorum(
    NodeId /*leader*/) const {
  return {};
}

std::vector<NodeId> MajorityQuorumSystem::FastQuorum(NodeId leader) const {
  // The smallest set every majority must meet: n - maj(n) + 1 nodes.
  // Anchoring it at the leader (plus its nearest peers, zone by zone)
  // keeps the leader inside every fast quorum and lets two far-apart
  // leaders own disjoint fast quorums — the relaxation at work.
  const uint32_t n = topology_->num_nodes();
  const uint32_t size = n - MajorityOf(n) + 1;
  std::vector<NodeId> quorum;
  quorum.push_back(leader);
  for (ZoneId z : topology_->ZonesByProximity(topology_->ZoneOf(leader))) {
    for (NodeId node : topology_->NodesInZone(z)) {
      if (quorum.size() >= size) break;
      if (node != leader) quorum.push_back(node);
    }
    if (quorum.size() >= size) break;
  }
  DPAXOS_CHECK_EQ(quorum.size(), size);
  std::sort(quorum.begin(), quorum.end());
  return quorum;
}

// ---------------------------------------------------------------------
// SubsetMajorityQuorumSystem

SubsetMajorityQuorumSystem::SubsetMajorityQuorumSystem(
    const Topology* topology, FaultTolerance ft, std::vector<NodeId> members)
    : QuorumSystem(topology, ft), members_(std::move(members)) {
  DPAXOS_CHECK(!members_.empty());
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  for (NodeId n : members_) DPAXOS_CHECK_LT(n, topology->num_nodes());
}

QuorumRule SubsetMajorityQuorumSystem::LeaderElectionRule(
    NodeId /*aspirant*/, const LeaderZoneView& /*view*/) const {
  return QuorumRule::Simple(members_,
                            MajorityOf(static_cast<uint32_t>(members_.size())));
}

QuorumRule SubsetMajorityQuorumSystem::DefaultReplicationRule(
    NodeId /*leader*/) const {
  return QuorumRule::Simple(members_,
                            MajorityOf(static_cast<uint32_t>(members_.size())));
}

std::vector<NodeId> SubsetMajorityQuorumSystem::IntentQuorum(
    NodeId /*leader*/) const {
  return {};
}

std::vector<NodeId> SubsetMajorityQuorumSystem::FastQuorum(
    NodeId leader) const {
  // Only member leaders can anchor a fast quorum; a non-member leader
  // never arises in practice, but returning empty (= no fast path) is
  // the safe answer if it does.
  if (!std::binary_search(members_.begin(), members_.end(), leader)) {
    return {};
  }
  const uint32_t m = static_cast<uint32_t>(members_.size());
  const uint32_t size = m - MajorityOf(m) + 1;
  std::vector<NodeId> quorum;
  quorum.push_back(leader);
  for (NodeId node : members_) {
    if (quorum.size() >= size) break;
    if (node != leader) quorum.push_back(node);
  }
  std::sort(quorum.begin(), quorum.end());
  return quorum;
}

// ---------------------------------------------------------------------
// ZoneCentricQuorumSystem

ZoneCentricQuorumSystem::ZoneCentricQuorumSystem(const Topology* topology,
                                                 FaultTolerance ft)
    : QuorumSystem(topology, ft) {}

QuorumRule ZoneCentricQuorumSystem::LeaderElectionRule(
    NodeId /*aspirant*/, const LeaderZoneView& /*view*/) const {
  // |Z| - fz zones; in zone i, |Z_i| - fd nodes: intersects every possible
  // replication quorum of fd+1 nodes in fz+1 zones (Definition 1).
  std::vector<QuorumRequirement> reqs;
  for (ZoneId z = 0; z < topology_->num_zones(); ++z) {
    const uint32_t size = topology_->nodes_in_zone(z);
    DPAXOS_CHECK_GT(size, ft_.fd);
    reqs.push_back({topology_->NodesInZone(z), size - ft_.fd});
  }
  DPAXOS_CHECK_GT(topology_->num_zones(), ft_.fz);
  return QuorumRule::OfGroup(std::move(reqs),
                             topology_->num_zones() - ft_.fz);
}

QuorumRule ZoneCentricQuorumSystem::DefaultReplicationRule(
    NodeId leader) const {
  // fd+1 nodes in each of the fz+1 zones nearest the leader (flexible
  // within each zone: Flexible Paxos may use any fd+1 subset).
  const ZoneId home = topology_->ZoneOf(leader);
  std::vector<QuorumRequirement> reqs;
  for (ZoneId z : topology_->ZonesByProximity(home)) {
    if (reqs.size() >= ft_.fz + 1) break;
    reqs.push_back({topology_->NodesInZone(z), ft_.fd + 1});
  }
  DPAXOS_CHECK_EQ(reqs.size(), ft_.fz + 1);
  return QuorumRule::OfGroup(std::move(reqs));
}

std::vector<NodeId> ZoneCentricQuorumSystem::IntentQuorum(
    NodeId /*leader*/) const {
  return {};
}

std::vector<NodeId> ZoneCentricQuorumSystem::FastQuorum(NodeId leader) const {
  // One concrete replication quorum — fd+1 nodes in each of the fz+1
  // zones nearest the leader. Every leader-election quorum (|Z_i|-fd
  // nodes in |Z|-fz zones) intersects it by Definition 1, so the
  // recovery half of the relaxed predicate holds structurally.
  return SmallestReplicationQuorum(*topology_, leader, ft_);
}

// ---------------------------------------------------------------------
// DelegateQuorumSystem

DelegateQuorumSystem::DelegateQuorumSystem(const Topology* topology,
                                           FaultTolerance ft)
    : QuorumSystem(topology, ft) {}

QuorumRule DelegateQuorumSystem::LeaderElectionRule(
    NodeId /*aspirant*/, const LeaderZoneView& /*view*/) const {
  // A majority of nodes in each of a majority of zones: any two such
  // quorums share a zone, and within it a node (Definition 2).
  std::vector<QuorumRequirement> reqs;
  for (ZoneId z = 0; z < topology_->num_zones(); ++z) {
    reqs.push_back(
        {topology_->NodesInZone(z), MajorityOf(topology_->nodes_in_zone(z))});
  }
  return QuorumRule::OfGroup(std::move(reqs),
                             MajorityOf(topology_->num_zones()));
}

std::vector<NodeId> DelegateQuorumSystem::LeaderElectionTargets(
    NodeId aspirant, const LeaderZoneView& /*view*/) const {
  // Contact the majority of zones nearest the aspirant (any majority of
  // zones satisfies the rule; nearby zones minimize the round latency).
  const ZoneId home = topology_->ZoneOf(aspirant);
  const uint32_t zones_needed = MajorityOf(topology_->num_zones());
  std::vector<NodeId> targets;
  uint32_t picked = 0;
  for (ZoneId z : topology_->ZonesByProximity(home)) {
    if (picked >= zones_needed) break;
    const std::vector<NodeId> nodes = topology_->NodesInZone(z);
    targets.insert(targets.end(), nodes.begin(), nodes.end());
    ++picked;
  }
  return targets;
}

QuorumRule DelegateQuorumSystem::DefaultReplicationRule(NodeId leader) const {
  return ReplicationRuleForIntent(IntentQuorum(leader));
}

std::vector<NodeId> DelegateQuorumSystem::IntentQuorum(NodeId leader) const {
  return SmallestReplicationQuorum(*topology_, leader, ft_);
}

// ---------------------------------------------------------------------
// LeaderZoneQuorumSystem

LeaderZoneQuorumSystem::LeaderZoneQuorumSystem(const Topology* topology,
                                               FaultTolerance ft)
    : QuorumSystem(topology, ft) {}

QuorumRule LeaderZoneQuorumSystem::LeaderElectionRule(
    NodeId /*aspirant*/, const LeaderZoneView& view) const {
  DPAXOS_CHECK_LT(view.current, topology_->num_zones());
  std::vector<QuorumRequirement> reqs;
  // Tolerating fz zone failures extends the Leader Zone to the fz+1
  // zones anchored at view.current, each contributing a node majority
  // (paper Section 4.3.2: "It is possible to define Leader Zones to
  // extend beyond a single zone if zone failures are to be tolerated").
  // Every aspirant derives the same zone set from the shared view, so
  // intra-intersection still holds. With fz of the fz+1 zones allowed to
  // fail, a majority of the Leader Zones must answer.
  uint32_t picked = 0;
  for (ZoneId z : topology_->ZonesByProximity(view.current)) {
    if (picked >= ft_.fz + 1) break;
    reqs.push_back(
        {topology_->NodesInZone(z), MajorityOf(topology_->nodes_in_zone(z))});
    ++picked;
  }
  const uint32_t lz_needed = MajorityOf(picked);
  if (view.in_transition()) {
    // Transition phase (paper Step 2): an aspiring leader additionally
    // needs promise majorities from the next Leader Zone(s).
    DPAXOS_CHECK_LT(view.next, topology_->num_zones());
    std::vector<QuorumRequirement> next_reqs;
    uint32_t next_picked = 0;
    for (ZoneId z : topology_->ZonesByProximity(view.next)) {
      if (next_picked >= ft_.fz + 1) break;
      next_reqs.push_back({topology_->NodesInZone(z),
                           MajorityOf(topology_->nodes_in_zone(z))});
      ++next_picked;
    }
    QuorumGroup current_group{std::move(reqs), lz_needed};
    QuorumGroup next_group{std::move(next_reqs), MajorityOf(next_picked)};
    return QuorumRule({current_group, next_group});
  }
  return QuorumRule::OfGroup(std::move(reqs), lz_needed);
}

QuorumRule LeaderZoneQuorumSystem::DefaultReplicationRule(
    NodeId leader) const {
  return ReplicationRuleForIntent(IntentQuorum(leader));
}

std::vector<NodeId> LeaderZoneQuorumSystem::IntentQuorum(
    NodeId leader) const {
  return SmallestReplicationQuorum(*topology_, leader, ft_);
}

}  // namespace dpaxos
