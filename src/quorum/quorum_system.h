// Quorum systems: the strategy objects that differentiate the protocols
// compared in the paper. A proposer is generic over a QuorumSystem, which
// answers three questions:
//   - which acknowledgements elect a leader (phase 1),
//   - which acknowledgements decide a slot (phase 2),
//   - which concrete replication quorum to declare as an *intent*
//     (Expanding Quorums modes only).
#ifndef DPAXOS_QUORUM_QUORUM_SYSTEM_H_
#define DPAXOS_QUORUM_QUORUM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "quorum/fault_tolerance.h"
#include "quorum/quorum_rule.h"

namespace dpaxos {

/// Protocols evaluated in the paper (Section 5).
enum class ProtocolMode {
  kMultiPaxos,     ///< majority quorums for both phases
  kFlexiblePaxos,  ///< zone-centric quorums, inter-intersection (no intents)
  kDelegate,       ///< Expanding Quorums, majority-of-zone-majorities LE
  kLeaderZone,     ///< Expanding Quorums, single-Leader-Zone LE
  kLeaderless,     ///< optimal leaderless baseline: majority replication,
                   ///< no leader election phase
};

const char* ProtocolModeName(ProtocolMode mode);

/// \brief A node's view of where the Leader Zone currently is.
///
/// Only meaningful under ProtocolMode::kLeaderZone; carried as an argument
/// so the (stateless) quorum system can build the right LE rule during
/// normal operation and during a Leader Zone transition.
struct LeaderZoneView {
  /// Monotonic migration counter: bumped each time a Leader Zone
  /// transition *completes*. Guards against stale announcements.
  uint64_t epoch = 0;
  ZoneId current = 0;
  /// Next leader zone while a transition is in progress, else kInvalidZone.
  ZoneId next = kInvalidZone;

  bool in_transition() const { return next != kInvalidZone; }

  /// True if this view reflects a strictly later migration state than `o`:
  /// a higher epoch, or — within the same epoch — knowing about an ongoing
  /// transition that `o` has not seen.
  bool IsNewerThan(const LeaderZoneView& o) const {
    if (epoch != o.epoch) return epoch > o.epoch;
    return in_transition() && !o.in_transition();
  }

  bool operator==(const LeaderZoneView& o) const {
    return epoch == o.epoch && current == o.current && next == o.next;
  }
};

/// \brief Strategy interface: quorum geometry of one protocol.
///
/// Implementations are immutable and shared by all replicas of a cluster.
class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  virtual ProtocolMode mode() const = 0;

  /// Phase-1 (prepare/promise) rule for an aspiring leader at `aspirant`.
  /// `view` is the aspirant's Leader-Zone view (ignored by all modes
  /// except kLeaderZone).
  virtual QuorumRule LeaderElectionRule(NodeId aspirant,
                                        const LeaderZoneView& view) const = 0;

  /// Nodes an aspiring leader contacts in the *first* Leader Election
  /// round. Defaults to every candidate of the rule; Delegate quorums
  /// override this to the nearest majority of zones (the rule accepts any
  /// majority of zones, and contacting the nearest minimizes latency —
  /// paper Section 4.3.1). A retrying aspirant falls back to the full
  /// candidate set for liveness.
  virtual std::vector<NodeId> LeaderElectionTargets(
      NodeId aspirant, const LeaderZoneView& view) const {
    return LeaderElectionRule(aspirant, view).Targets();
  }

  /// Phase-2 (propose/accept) rule for a prolonged leader at `leader`
  /// that has NOT declared an intent (majority and Flexible-Paxos modes).
  /// Intent-declaring modes replicate on their declared intent instead
  /// (see IntentQuorum and ReplicationRuleForIntent).
  virtual QuorumRule DefaultReplicationRule(NodeId leader) const = 0;

  /// Concrete replication quorum a leader at `leader` declares in its
  /// prepare() messages; empty when the mode does not use intents.
  virtual std::vector<NodeId> IntentQuorum(NodeId leader) const = 0;

  /// Whether prepare messages declare intents and LE quorums expand to
  /// intersect detected intents (Expanding Quorums modes).
  virtual bool UsesIntents() const = 0;

  /// Concrete fast-round quorum pinned to a leader regime (Fast Flexible
  /// Paxos): the fixed acceptor set whose UNANIMOUS votes at the leader's
  /// ballot commit a value in one proposer->acceptors->proposer round
  /// trip. Invariants the protocol relies on:
  ///   - the leader is a member (its own acceptor vote gates every fast
  ///     commit, which is what makes same-ballot classic overwrites safe);
  ///   - the set intersects every leader-election (recovery) quorum —
  ///     structurally for majority / zone-centric geometries, or via the
  ///     intent interaction for Expanding Quorums modes (this set IS the
  ///     declared intent, which elections detect and expand around).
  /// Fast quorums of DIFFERENT leaders need NOT intersect each other —
  /// that is the relaxed intersection predicate (fast ∩ recovery
  /// required, fast ∩ fast not); per-ballot uniqueness plus unanimity
  /// stand in for fast/fast intersection. Empty = no fast path in this
  /// geometry (e.g. a leader outside a subset system's member set).
  virtual std::vector<NodeId> FastQuorum(NodeId leader) const;

  /// The relaxed intersection predicate itself: `fast_quorum` is safe to
  /// recover under `recovery_rule` iff every satisfying set of the rule
  /// meets it. Exact (delegates to QuorumRule::AlwaysIntersects); the
  /// oracle tests check it against brute-force subset enumeration.
  static bool FastIntersectsRecovery(const std::vector<NodeId>& fast_quorum,
                                     const QuorumRule& recovery_rule);

  const Topology& topology() const { return *topology_; }
  const FaultTolerance& fault_tolerance() const { return ft_; }

  /// Phase-2 rule for a declared intent: every member must accept.
  static QuorumRule ReplicationRuleForIntent(
      const std::vector<NodeId>& intent_nodes);

 protected:
  QuorumSystem(const Topology* topology, FaultTolerance ft)
      : topology_(topology), ft_(ft) {}

  const Topology* topology_;
  FaultTolerance ft_;
};

/// Factory: build the quorum system for `mode`.
std::unique_ptr<QuorumSystem> MakeQuorumSystem(ProtocolMode mode,
                                               const Topology* topology,
                                               FaultTolerance ft);

/// The smallest fault-tolerant replication quorum for a leader: the leader
/// itself plus fd more nodes of its zone, plus fd+1 nodes in each of the
/// fz nearest other zones (paper Section 4.2). Deterministic.
std::vector<NodeId> SmallestReplicationQuorum(const Topology& topology,
                                              NodeId leader,
                                              FaultTolerance ft);

/// \brief Majority quorums for both phases (Multi-Paxos / leaderless).
class MajorityQuorumSystem final : public QuorumSystem {
 public:
  MajorityQuorumSystem(const Topology* topology, FaultTolerance ft,
                       ProtocolMode mode = ProtocolMode::kMultiPaxos);

  ProtocolMode mode() const override { return mode_; }
  QuorumRule LeaderElectionRule(NodeId aspirant,
                                const LeaderZoneView& view) const override;
  QuorumRule DefaultReplicationRule(NodeId leader) const override;
  std::vector<NodeId> IntentQuorum(NodeId leader) const override;
  bool UsesIntents() const override { return false; }
  std::vector<NodeId> FastQuorum(NodeId leader) const override;

 private:
  ProtocolMode mode_;
};

/// \brief Majority quorums over a fixed member subset.
///
/// Models the reconfiguration-based alternative the paper discusses in
/// Section B.1(c): deploy the instance on exactly 2*fd+1 nodes in 2*fz+1
/// zones near the users; only members vote, and moving the deployment
/// requires a reconfiguration (see src/reconfig) rather than a DPaxos
/// Leader Election.
class SubsetMajorityQuorumSystem final : public QuorumSystem {
 public:
  /// `members` must be non-empty, unique node ids of the topology.
  SubsetMajorityQuorumSystem(const Topology* topology, FaultTolerance ft,
                             std::vector<NodeId> members);

  ProtocolMode mode() const override { return ProtocolMode::kMultiPaxos; }
  QuorumRule LeaderElectionRule(NodeId aspirant,
                                const LeaderZoneView& view) const override;
  QuorumRule DefaultReplicationRule(NodeId leader) const override;
  std::vector<NodeId> IntentQuorum(NodeId leader) const override;
  bool UsesIntents() const override { return false; }
  std::vector<NodeId> FastQuorum(NodeId leader) const override;

  const std::vector<NodeId>& members() const { return members_; }

 private:
  std::vector<NodeId> members_;
};

/// \brief Flexible-Paxos zone-centric quorums (paper Section 4.2).
///
/// Replication: fd+1 nodes in each of the fz+1 zones nearest the leader.
/// Leader Election: |Z|-fz zones, |Z_i|-fd nodes each — the
/// inter-intersection condition (Definition 1).
class ZoneCentricQuorumSystem final : public QuorumSystem {
 public:
  ZoneCentricQuorumSystem(const Topology* topology, FaultTolerance ft);

  ProtocolMode mode() const override { return ProtocolMode::kFlexiblePaxos; }
  QuorumRule LeaderElectionRule(NodeId aspirant,
                                const LeaderZoneView& view) const override;
  QuorumRule DefaultReplicationRule(NodeId leader) const override;
  std::vector<NodeId> IntentQuorum(NodeId leader) const override;
  bool UsesIntents() const override { return false; }
  std::vector<NodeId> FastQuorum(NodeId leader) const override;
};

/// \brief Delegate Expanding Quorums (paper Section 4.3.1).
///
/// Leader Election: a majority of nodes in each of a majority of zones —
/// satisfying the intra-intersection condition (Definition 2) — expanded
/// at runtime by detected intents. Replication: the declared intent.
class DelegateQuorumSystem final : public QuorumSystem {
 public:
  DelegateQuorumSystem(const Topology* topology, FaultTolerance ft);

  ProtocolMode mode() const override { return ProtocolMode::kDelegate; }
  QuorumRule LeaderElectionRule(NodeId aspirant,
                                const LeaderZoneView& view) const override;
  std::vector<NodeId> LeaderElectionTargets(
      NodeId aspirant, const LeaderZoneView& view) const override;
  QuorumRule DefaultReplicationRule(NodeId leader) const override;
  std::vector<NodeId> IntentQuorum(NodeId leader) const override;
  bool UsesIntents() const override { return true; }
};

/// \brief Leader-Zone Expanding Quorums (paper Section 4.3.2).
///
/// Leader Election: a majority of the (single) Leader Zone's nodes; during
/// a transition, majorities of both the old and the next Leader Zone.
/// All aspirants contend for the same zone, so any two LE quorums
/// intersect. Replication: the declared intent.
class LeaderZoneQuorumSystem final : public QuorumSystem {
 public:
  LeaderZoneQuorumSystem(const Topology* topology, FaultTolerance ft);

  ProtocolMode mode() const override { return ProtocolMode::kLeaderZone; }
  QuorumRule LeaderElectionRule(NodeId aspirant,
                                const LeaderZoneView& view) const override;
  QuorumRule DefaultReplicationRule(NodeId leader) const override;
  std::vector<NodeId> IntentQuorum(NodeId leader) const override;
  bool UsesIntents() const override { return true; }
};

}  // namespace dpaxos

#endif  // DPAXOS_QUORUM_QUORUM_SYSTEM_H_
