// Little-endian byte codec primitives shared by the transaction codec
// and the protocol wire format.
//
// Encoders are written once against a generic writer concept (PutU8 /
// PutU32 / PutU64 / PutDouble / PutBool / PutString) and instantiated
// twice: with CountingWriter to compute the exact encoded size, then
// with ByteWriter to emit into a buffer reserved to exactly that size —
// one allocation per message instead of amortized doubling.
#ifndef DPAXOS_COMMON_CODEC_H_
#define DPAXOS_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dpaxos {

/// \brief Appends fixed-width little-endian fields to a byte string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  /// Pre-size the buffer for `additional` more bytes (e.g. the exact
  /// total a CountingWriter pass computed).
  void Reserve(size_t additional) { out_->reserve(out_->size() + additional); }

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->append(buf, 4);
  }

  void PutU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutDouble(double v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

 private:
  std::string* out_;
};

/// \brief Writer that emits nothing and just totals the encoded size.
///
/// Drop-in for ByteWriter in any templated encoder; a counting pass over
/// a message costs a few adds and yields the exact reserve() size.
class CountingWriter {
 public:
  void PutU8(uint8_t) { size_ += 1; }
  void PutU32(uint32_t) { size_ += 4; }
  void PutU64(uint64_t) { size_ += 8; }
  void PutDouble(double) { size_ += 8; }
  void PutBool(bool) { size_ += 1; }
  void PutString(std::string_view s) { size_ += 4 + s.size(); }

  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
};

/// \brief Bounds-checked reader over a byte view. All Read* methods
/// return false on truncation and leave the output untouched.
///
/// The reader does not own the bytes: callers must keep the underlying
/// buffer alive, and views handed out by ReadStringView alias it.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadDouble(double* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadBool(bool* v) {
    uint8_t b = 0;
    if (!ReadU8(&b) || b > 1) return false;
    *v = b != 0;
    return true;
  }

  /// Zero-copy read: `s` aliases the underlying buffer.
  bool ReadStringView(std::string_view* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    *s = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  /// Owning read (copies the bytes out).
  bool ReadString(std::string* s) {
    std::string_view view;
    if (!ReadStringView(&view)) return false;
    s->assign(view);
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_CODEC_H_
