// Little-endian byte codec primitives shared by the transaction codec
// and the protocol wire format.
#ifndef DPAXOS_COMMON_CODEC_H_
#define DPAXOS_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace dpaxos {

/// \brief Appends fixed-width little-endian fields to a byte string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->append(buf, 4);
  }

  void PutU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutDouble(double v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

 private:
  std::string* out_;
};

/// \brief Bounds-checked reader over a byte string. All Read* methods
/// return false on truncation and leave the output untouched.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadDouble(double* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool ReadBool(bool* v) {
    uint8_t b = 0;
    if (!ReadU8(&b) || b > 1) return false;
    *v = b != 0;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_CODEC_H_
