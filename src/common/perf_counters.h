// Cheap, always-on performance counters for the simulation hot path.
//
// Every counter is a plain uint64_t increment on a THREAD-LOCAL instance
// (each simulation shard runs confined to one thread; see
// src/sim/shard_runner.h), so instrumentation costs one add per event —
// no atomics, no false sharing, cheap enough to keep enabled in every
// build. The counters answer two questions:
//   1. How much work did a run do? (events, messages, bytes — the
//      numerator of every events/sec benchmark, see bench/bench_simperf)
//   2. Is the steady-state path allocation-free? (slab_growths,
//      callable_heap_allocs and delivery_pool_growths must stay flat
//      across a warm window — asserted by tests/perf_counters_test.cc)
//
// Threading model: a Simulator and everything attached to it (transport,
// replicas, stores) must be driven from ONE thread at a time; that
// thread's counters record the work. The ShardSet runner snapshots the
// worker thread's counters around each shard and folds the per-shard
// deltas back into the launching thread IN SHARD-ID ORDER, so aggregate
// numbers are a pure function of the workload — bit-identical regardless
// of how many worker threads carried it.
//
// Counters accumulate across simulators; measure deltas with Snapshot().
#ifndef DPAXOS_COMMON_PERF_COUNTERS_H_
#define DPAXOS_COMMON_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace dpaxos {

/// Every counter field, for generated fieldwise operations (DeltaSince,
/// Add). Keep in sync with the member declarations below.
#define DPAXOS_PERF_COUNTER_FIELDS(X) \
  X(events_scheduled)                 \
  X(events_executed)                  \
  X(events_cancelled)                 \
  X(stale_cancels)                    \
  X(heap_pushes)                      \
  X(heap_pops)                        \
  X(slab_growths)                     \
  X(callable_heap_allocs)             \
  X(messages_sent)                    \
  X(messages_delivered)               \
  X(bytes_sent)                       \
  X(deliveries_coalesced)             \
  X(delivery_pool_growths)            \
  X(wire_encodes)                     \
  X(wire_encode_bytes)                \
  X(wire_decodes)                     \
  X(store_steals)                     \
  X(store_partition_migrations)       \
  X(store_snapshot_transfers)         \
  X(store_snapshot_bytes)             \
  X(placement_steals_attempted)       \
  X(placement_steals_completed)       \
  X(placement_steals_rejected)        \
  X(placement_pingpongs_suppressed)   \
  X(tcp_bytes_in)                     \
  X(tcp_bytes_out)                    \
  X(tcp_frames_in)                    \
  X(tcp_frames_out)                   \
  X(tcp_frames_dropped)               \
  X(tcp_reconnects)                   \
  X(tcp_accepts)                      \
  X(tcp_malformed_frames)             \
  X(tcp_writev_calls)                 \
  X(tcp_frames_coalesced)             \
  X(reactor_rounds_busy)              \
  X(reactor_rounds_idle)              \
  X(wal_appends)                      \
  X(wal_bytes)                        \
  X(wal_fsyncs)                       \
  X(wal_torn_tail_truncations)        \
  X(wal_sync_failures)

/// \brief Per-thread hot-path counters (see ThreadPerfCounters()).
struct PerfCounters {
  // --- simulation kernel (src/sim/simulator.*) -----------------------
  uint64_t events_scheduled = 0;
  uint64_t events_executed = 0;
  uint64_t events_cancelled = 0;  ///< live events removed by Cancel()
  uint64_t stale_cancels = 0;     ///< Cancel() of an already-fired handle
  uint64_t heap_pushes = 0;
  uint64_t heap_pops = 0;
  /// Event-slab slots taken from fresh memory instead of the free list.
  /// Flat across a warm window == the kernel runs allocation-free; zero
  /// over a whole run == the workload hint (Simulator::Reserve) covered
  /// the peak event population.
  uint64_t slab_growths = 0;
  /// Closures too large for the EventFn inline buffer (heap fallback).
  uint64_t callable_heap_allocs = 0;

  // --- transport (src/net/transport.*) -------------------------------
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t bytes_sent = 0;
  /// Same-tick deliveries folded into an already-scheduled drain.
  uint64_t deliveries_coalesced = 0;
  /// Delivery batches taken from fresh memory instead of the pool.
  uint64_t delivery_pool_growths = 0;

  // --- wire codec (src/paxos/wire.*) ----------------------------------
  uint64_t wire_encodes = 0;
  uint64_t wire_encode_bytes = 0;
  uint64_t wire_decodes = 0;

  // --- sharded store (src/directory/sharded_store.*) -------------------
  /// Successful WPaxos-style steal elections (includes first claims).
  uint64_t store_steals = 0;
  /// Steals that moved a partition away from an existing leader in a
  /// different zone — true placement migrations.
  uint64_t store_partition_migrations = 0;
  /// Handovers that shipped a checksummed snapshot instead of paging the
  /// incumbent's full decided log, and the chunk payload bytes moved.
  uint64_t store_snapshot_transfers = 0;
  uint64_t store_snapshot_bytes = 0;

  // --- placement control loop (src/placement/*, docs/PROTOCOL.md
  // §ownership) ---------------------------------------------------------
  /// Protocol-level ownership steals the placement layer initiated.
  uint64_t placement_steals_attempted = 0;
  /// Steals whose takeover election committed a transfer record.
  uint64_t placement_steals_completed = 0;
  /// Steals the incumbent refused (busy, fast grant outstanding, not
  /// leader). Timeouts are not rejections — they fall back to election.
  uint64_t placement_steals_rejected = 0;
  /// Advisor-recommended moves suppressed by the post-steal cooldown
  /// (anti-ping-pong; hysteresis handles steady 50/50 splits, the
  /// cooldown handles alternating bursts).
  uint64_t placement_pingpongs_suppressed = 0;

  // --- real-network transport (src/net/tcp/*) --------------------------
  uint64_t tcp_bytes_in = 0;   ///< frame bytes read off sockets
  uint64_t tcp_bytes_out = 0;  ///< frame bytes written to sockets
  uint64_t tcp_frames_in = 0;
  uint64_t tcp_frames_out = 0;
  /// Sends discarded by drop-oldest outbound-queue overflow or because
  /// the peer connection died with frames still queued (both are within
  /// the Transport::Send may-drop contract).
  uint64_t tcp_frames_dropped = 0;
  uint64_t tcp_reconnects = 0;  ///< outbound connection (re)establishments
  uint64_t tcp_accepts = 0;
  /// Inbound protocol violations (oversized/zero-length/undecodable
  /// frames); each one closes its connection.
  uint64_t tcp_malformed_frames = 0;
  /// Gather-write syscalls (sendmsg with an iovec batch). The ratio
  /// tcp_frames_out / tcp_writev_calls is the frames-per-syscall metric
  /// the realnet bench tracks.
  uint64_t tcp_writev_calls = 0;
  /// Frames that shared a gather-write syscall with at least one other
  /// frame (counted as batch_size - 1 per syscall, mirroring the sim
  /// transport's deliveries_coalesced).
  uint64_t tcp_frames_coalesced = 0;
  /// Reactor-thread poll rounds that dispatched work vs. slept (the
  /// busy-vs-idle split for multi-reactor NodeServers).
  uint64_t reactor_rounds_busy = 0;
  uint64_t reactor_rounds_idle = 0;

  // --- acceptor write-ahead log (src/storage/wal.*) --------------------
  // Mirrored from WalStats by the NodeServer stats sweep so WAL activity
  // shows up alongside the tcp/reactor counters in --serve stats.
  uint64_t wal_appends = 0;  ///< logical records journaled
  uint64_t wal_bytes = 0;    ///< framed bytes appended
  uint64_t wal_fsyncs = 0;   ///< fdatasync calls (group commits)
  uint64_t wal_torn_tail_truncations = 0;  ///< torn tails repaired at open
  uint64_t wal_sync_failures = 0;          ///< failed appends/fsyncs

  /// Counter-wise difference (this - since); used for warm-window deltas.
  PerfCounters DeltaSince(const PerfCounters& since) const {
    PerfCounters d;
#define DPAXOS_PERF_DELTA(field) d.field = field - since.field;
    DPAXOS_PERF_COUNTER_FIELDS(DPAXOS_PERF_DELTA)
#undef DPAXOS_PERF_DELTA
    return d;
  }

  /// Counter-wise accumulation; used to fold per-shard deltas into an
  /// aggregate (always in shard-id order, so reports are deterministic).
  void Add(const PerfCounters& other) {
#define DPAXOS_PERF_ADD(field) field += other.field;
    DPAXOS_PERF_COUNTER_FIELDS(DPAXOS_PERF_ADD)
#undef DPAXOS_PERF_ADD
  }

  /// Multi-line human-readable dump (benches print this after a run).
  std::string ToString() const;
};

/// The calling thread's counter instance. All simulators, transports and
/// codecs driven by this thread increment the same counters; callers
/// measure intervals by snapshotting before/after. Worker threads (shard
/// runners) start from zero; their deltas are folded back into the
/// launching thread by ShardSet::Run.
inline PerfCounters& ThreadPerfCounters() {
  thread_local PerfCounters counters;
  return counters;
}

/// Copy of the calling thread's current counter values (for DeltaSince).
inline PerfCounters SnapshotPerfCounters() { return ThreadPerfCounters(); }

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_PERF_COUNTERS_H_
