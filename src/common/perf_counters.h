// Cheap, always-on performance counters for the simulation hot path.
//
// Every counter is a plain uint64_t increment on a process-wide instance
// (the simulator is single-threaded by design), so instrumentation costs
// one add per event — cheap enough to keep enabled in every build. The
// counters answer two questions:
//   1. How much work did a run do? (events, messages, bytes — the
//      numerator of every events/sec benchmark, see bench/bench_simperf)
//   2. Is the steady-state path allocation-free? (slab_growths,
//      callable_heap_allocs and delivery_pool_growths must stay flat
//      across a warm window — asserted by tests/perf_counters_test.cc)
//
// Counters accumulate across simulators; measure deltas with Snapshot().
#ifndef DPAXOS_COMMON_PERF_COUNTERS_H_
#define DPAXOS_COMMON_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace dpaxos {

/// \brief Process-wide hot-path counters (see GlobalPerfCounters()).
struct PerfCounters {
  // --- simulation kernel (src/sim/simulator.*) -----------------------
  uint64_t events_scheduled = 0;
  uint64_t events_executed = 0;
  uint64_t events_cancelled = 0;  ///< live events removed by Cancel()
  uint64_t stale_cancels = 0;     ///< Cancel() of an already-fired handle
  uint64_t heap_pushes = 0;
  uint64_t heap_pops = 0;
  /// Event-slab slots taken from fresh memory instead of the free list.
  /// Flat across a warm window == the kernel runs allocation-free.
  uint64_t slab_growths = 0;
  /// Closures too large for the EventFn inline buffer (heap fallback).
  uint64_t callable_heap_allocs = 0;

  // --- transport (src/net/transport.*) -------------------------------
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t bytes_sent = 0;
  /// Same-tick deliveries folded into an already-scheduled drain.
  uint64_t deliveries_coalesced = 0;
  /// Delivery batches taken from fresh memory instead of the pool.
  uint64_t delivery_pool_growths = 0;

  // --- wire codec (src/paxos/wire.*) ----------------------------------
  uint64_t wire_encodes = 0;
  uint64_t wire_encode_bytes = 0;
  uint64_t wire_decodes = 0;

  /// Counter-wise difference (this - since); used for warm-window deltas.
  PerfCounters DeltaSince(const PerfCounters& since) const {
    PerfCounters d;
    d.events_scheduled = events_scheduled - since.events_scheduled;
    d.events_executed = events_executed - since.events_executed;
    d.events_cancelled = events_cancelled - since.events_cancelled;
    d.stale_cancels = stale_cancels - since.stale_cancels;
    d.heap_pushes = heap_pushes - since.heap_pushes;
    d.heap_pops = heap_pops - since.heap_pops;
    d.slab_growths = slab_growths - since.slab_growths;
    d.callable_heap_allocs =
        callable_heap_allocs - since.callable_heap_allocs;
    d.messages_sent = messages_sent - since.messages_sent;
    d.messages_delivered = messages_delivered - since.messages_delivered;
    d.bytes_sent = bytes_sent - since.bytes_sent;
    d.deliveries_coalesced =
        deliveries_coalesced - since.deliveries_coalesced;
    d.delivery_pool_growths =
        delivery_pool_growths - since.delivery_pool_growths;
    d.wire_encodes = wire_encodes - since.wire_encodes;
    d.wire_encode_bytes = wire_encode_bytes - since.wire_encode_bytes;
    d.wire_decodes = wire_decodes - since.wire_decodes;
    return d;
  }

  /// Multi-line human-readable dump (benches print this after a run).
  std::string ToString() const;
};

/// The process-wide counter instance. All simulators, transports and
/// codecs in this process increment the same counters; callers measure
/// intervals by snapshotting before/after.
inline PerfCounters& GlobalPerfCounters() {
  static PerfCounters counters;
  return counters;
}

/// Copy of the current counter values (for DeltaSince).
inline PerfCounters SnapshotPerfCounters() { return GlobalPerfCounters(); }

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_PERF_COUNTERS_H_
