// Minimal leveled logger. Disabled below the global threshold at runtime;
// the DPAXOS_LOG macro avoids formatting cost when the level is filtered.
#ifndef DPAXOS_COMMON_LOGGING_H_
#define DPAXOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dpaxos {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

namespace internal {
/// Storage for the global threshold; read through GetLogLevel(). Exposed
/// here only so the level check in DPAXOS_LOG inlines to a single load on
/// the hot path.
extern LogLevel g_log_level;
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

/// Global log threshold; messages below it are dropped. Default: kWarn
/// (the simulator is chatty at kDebug/kTrace).
inline LogLevel GetLogLevel() { return internal::g_log_level; }
void SetLogLevel(LogLevel level);

#define DPAXOS_LOG(level, expr)                                           \
  do {                                                                    \
    if (static_cast<int>(level) >=                                        \
        static_cast<int>(::dpaxos::GetLogLevel())) {                      \
      std::ostringstream _log_oss;                                        \
      _log_oss << expr;                                                   \
      ::dpaxos::internal::LogMessage(level, __FILE__, __LINE__,           \
                                     _log_oss.str());                     \
    }                                                                     \
  } while (0)

#define DPAXOS_TRACE(expr) DPAXOS_LOG(::dpaxos::LogLevel::kTrace, expr)
#define DPAXOS_DEBUG(expr) DPAXOS_LOG(::dpaxos::LogLevel::kDebug, expr)
#define DPAXOS_INFO(expr) DPAXOS_LOG(::dpaxos::LogLevel::kInfo, expr)
#define DPAXOS_WARN(expr) DPAXOS_LOG(::dpaxos::LogLevel::kWarn, expr)
#define DPAXOS_ERROR(expr) DPAXOS_LOG(::dpaxos::LogLevel::kError, expr)

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_LOGGING_H_
