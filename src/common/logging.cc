#include "common/logging.h"

#include <cstdio>

namespace dpaxos {

namespace internal {
LogLevel g_log_level = LogLevel::kWarn;
}  // namespace internal

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { internal::g_log_level = level; }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace dpaxos
