#include "common/logging.h"

#include <cstdio>

namespace dpaxos {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace dpaxos
