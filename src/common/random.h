// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that a simulation run
// is exactly reproducible from its seed. The generator is xoshiro256**,
// seeded via SplitMix64 per the reference recommendation.
#ifndef DPAXOS_COMMON_RANDOM_H_
#define DPAXOS_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace dpaxos {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Deterministic xoshiro256** generator.
///
/// Not thread-safe; each simulation owns one Rng (or derives child Rngs
/// via Fork() for independent streams).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seed the generator. The same seed always yields the same stream.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    DPAXOS_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    DPAXOS_CHECK_LE(lo, hi);
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p in [0, 1].
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derive an independent child generator (e.g. one per node).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_RANDOM_H_
