#include "common/types.h"

#include <cstdio>

namespace dpaxos {

std::string DurationToString(Duration d) {
  char buf[32];
  if (d < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(d));
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs",
                  static_cast<double>(d) / static_cast<double>(kSecond));
  }
  return buf;
}

}  // namespace dpaxos
