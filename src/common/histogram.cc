#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.h"

namespace dpaxos {

void Histogram::Add(Duration sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = true;
}

double Histogram::MeanMillis() const {
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return ToMillis(static_cast<Duration>(sum / samples_.size()));
}

Duration Histogram::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration Histogram::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

Duration Histogram::Percentile(double p) const {
  DPAXOS_CHECK_GE(p, 0.0);
  DPAXOS_CHECK_LE(p, 100.0);
  if (samples_.empty()) return 0;
  EnsureSorted();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2fms p50=%.2fms p99=%.2fms max=%.2fms", count(),
                MeanMillis(), P50Millis(), P99Millis(), ToMillis(Max()));
  return buf;
}

double ThroughputCounter::KilobytesPerSecond() const {
  if (elapsed == 0) return 0.0;
  return static_cast<double>(bytes) / 1024.0 /
         (static_cast<double>(elapsed) / static_cast<double>(kSecond));
}

double ThroughputCounter::OpsPerSecond() const {
  if (elapsed == 0) return 0.0;
  return static_cast<double>(operations) /
         (static_cast<double>(elapsed) / static_cast<double>(kSecond));
}

}  // namespace dpaxos
