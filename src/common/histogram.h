// Latency histogram and throughput counters used by the experiment
// harness and benchmarks.
#ifndef DPAXOS_COMMON_HISTOGRAM_H_
#define DPAXOS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace dpaxos {

/// \brief Reservoir-free exact histogram of durations.
///
/// Stores every sample (experiments record at most a few million);
/// percentile queries sort lazily and cache the sorted order.
class Histogram {
 public:
  Histogram() = default;

  void Add(Duration sample);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Mean of all samples; 0 if empty.
  double MeanMillis() const;
  /// Minimum sample; 0 if empty.
  Duration Min() const;
  /// Maximum sample; 0 if empty.
  Duration Max() const;
  /// Percentile in [0, 100]; 0 if empty.
  Duration Percentile(double p) const;

  double P50Millis() const { return ToMillis(Percentile(50)); }
  double P99Millis() const { return ToMillis(Percentile(99)); }
  double P999Millis() const { return ToMillis(Percentile(99.9)); }

  /// One-line summary, e.g. "n=120 mean=12.1ms p50=11.9ms p99=13.4ms".
  std::string Summary() const;

  /// Every sample in insertion order (the determinism test fingerprints
  /// a run by these exact values).
  const std::vector<Duration>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<Duration> samples_;
  mutable std::vector<Duration> sorted_;
  mutable bool sorted_valid_ = true;
};

/// \brief Bytes/operations committed over a measured virtual interval.
struct ThroughputCounter {
  uint64_t operations = 0;
  uint64_t bytes = 0;
  Duration elapsed = 0;

  void Record(uint64_t ops, uint64_t nbytes) {
    operations += ops;
    bytes += nbytes;
  }

  /// Committed kilobytes per second of virtual time; 0 if no time elapsed.
  double KilobytesPerSecond() const;
  /// Committed operations per second of virtual time; 0 if no time elapsed.
  double OpsPerSecond() const;
};

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_HISTOGRAM_H_
