// Invariant-check macros. A failed check indicates a bug in the library
// (never a recoverable runtime condition) and aborts the process with a
// source location and message.
#ifndef DPAXOS_COMMON_CHECK_H_
#define DPAXOS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dpaxos {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "DPAXOS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dpaxos

#define DPAXOS_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dpaxos::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                   \
  } while (0)

#define DPAXOS_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << msg;                                                      \
      ::dpaxos::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                      _oss.str());                      \
    }                                                                   \
  } while (0)

#define DPAXOS_CHECK_EQ(a, b) DPAXOS_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define DPAXOS_CHECK_NE(a, b) DPAXOS_CHECK_MSG((a) != (b), (a) << " vs " << (b))
#define DPAXOS_CHECK_LT(a, b) DPAXOS_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define DPAXOS_CHECK_LE(a, b) DPAXOS_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define DPAXOS_CHECK_GT(a, b) DPAXOS_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define DPAXOS_CHECK_GE(a, b) DPAXOS_CHECK_MSG((a) >= (b), (a) << " vs " << (b))

#define DPAXOS_UNREACHABLE()                                               \
  ::dpaxos::internal::CheckFailed(__FILE__, __LINE__, "unreachable", "")

#endif  // DPAXOS_COMMON_CHECK_H_
