// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).
//
// Shared by every integrity envelope in the tree: the snapshot envelope
// (smr/snapshot.h) and the TCP frame header (net/tcp/framing.h). Lives
// in common/ so net does not have to link smr just for a checksum.
#ifndef DPAXOS_COMMON_CRC32_H_
#define DPAXOS_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace dpaxos {

uint32_t Crc32(std::string_view bytes);

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_CRC32_H_
