// Status and Result<T>: exception-free error handling for the DPaxos
// library, following the RocksDB/Arrow idiom. Every fallible public
// operation returns a Status (or Result<T> when it also yields a value).
#ifndef DPAXOS_COMMON_STATUS_H_
#define DPAXOS_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace dpaxos {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kAborted,        // lost a race (e.g. preempted by a higher ballot)
  kUnavailable,    // node down / partitioned / quorum unreachable
  kTimedOut,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kInternal,
};

/// Human-readable name of a StatusCode (e.g. "Aborted").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// message string otherwise. Use the factory functions (Status::Aborted(...)
/// etc.) rather than the constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or a non-OK Status.
///
/// Accessing value() on an error result is a fatal programming error.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagate a non-OK status to the caller.
#define DPAXOS_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::dpaxos::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_STATUS_H_
