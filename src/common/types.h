// Fundamental identifier and time types shared across the library.
//
// Simulated time is a virtual clock in microseconds (Timestamp/Duration).
// Node, zone, partition and slot identifiers are small integer types with
// explicit invalid sentinels.
#ifndef DPAXOS_COMMON_TYPES_H_
#define DPAXOS_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace dpaxos {

/// Globally unique node (replica / edge datacenter) identifier.
using NodeId = uint32_t;
/// Zone identifier — a zone is a disjoint set of neighboring edge nodes.
using ZoneId = uint32_t;
/// Data partition identifier; each partition runs its own Paxos instance.
using PartitionId = uint32_t;
/// Position in the replicated command log of a partition.
using SlotId = uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ZoneId kInvalidZone = std::numeric_limits<ZoneId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();
inline constexpr SlotId kInvalidSlot = std::numeric_limits<SlotId>::max();

/// Virtual time in microseconds since simulation start.
using Timestamp = uint64_t;
/// Virtual duration in microseconds.
using Duration = uint64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

/// Convert a virtual duration to fractional milliseconds.
inline double ToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Convert fractional milliseconds to a virtual duration.
inline Duration FromMillis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Pretty-print a duration, e.g. "12.35ms".
std::string DurationToString(Duration d);

}  // namespace dpaxos

#endif  // DPAXOS_COMMON_TYPES_H_
