#include "common/perf_counters.h"

#include <sstream>

namespace dpaxos {

std::string PerfCounters::ToString() const {
  std::ostringstream out;
  out << "sim: scheduled=" << events_scheduled
      << " executed=" << events_executed
      << " cancelled=" << events_cancelled
      << " stale_cancels=" << stale_cancels
      << " heap_pushes=" << heap_pushes << " heap_pops=" << heap_pops
      << " slab_growths=" << slab_growths
      << " callable_heap_allocs=" << callable_heap_allocs << "\n"
      << "net: sent=" << messages_sent
      << " delivered=" << messages_delivered << " bytes=" << bytes_sent
      << " coalesced=" << deliveries_coalesced
      << " pool_growths=" << delivery_pool_growths << "\n"
      << "wire: encodes=" << wire_encodes
      << " encode_bytes=" << wire_encode_bytes
      << " decodes=" << wire_decodes << "\n"
      << "store: steals=" << store_steals
      << " migrations=" << store_partition_migrations
      << " snapshot_transfers=" << store_snapshot_transfers
      << " snapshot_bytes=" << store_snapshot_bytes << "\n"
      << "tcp: bytes_in=" << tcp_bytes_in << " bytes_out=" << tcp_bytes_out
      << " frames_in=" << tcp_frames_in << " frames_out=" << tcp_frames_out
      << " frames_dropped=" << tcp_frames_dropped
      << " reconnects=" << tcp_reconnects << " accepts=" << tcp_accepts
      << " malformed=" << tcp_malformed_frames
      << " writev_calls=" << tcp_writev_calls
      << " frames_coalesced=" << tcp_frames_coalesced << "\n"
      << "reactor: rounds_busy=" << reactor_rounds_busy
      << " rounds_idle=" << reactor_rounds_idle << "\n"
      << "wal: appends=" << wal_appends << " bytes=" << wal_bytes
      << " fsyncs=" << wal_fsyncs
      << " torn_tail_truncations=" << wal_torn_tail_truncations
      << " sync_failures=" << wal_sync_failures;
  return out.str();
}

}  // namespace dpaxos
