#include "common/crc32.h"

#include <array>

namespace dpaxos {

namespace {

// Table-driven CRC-32 (IEEE 802.3 polynomial 0xEDB88320, reflected).
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dpaxos
