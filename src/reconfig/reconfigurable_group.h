// The reconfiguration-based alternative to DPaxos (paper Section B.1(c)).
//
// Instead of zone-centric quorums over all edge nodes, deploy each Paxos
// instance on exactly the minimal member set (2*fd+1 nodes) near its
// users. Mobility then requires a *reconfiguration*: an auxiliary Paxos
// instance (here: centralized in one zone, the paper's first variant)
// decides the new member set, a fresh data group is instantiated, state
// is transferred, and a leader is elected in the new location. DPaxos's
// claim — that this costs strictly more than its Leader Election /
// Handoff — is measured in bench_ablation_reconfig.
#ifndef DPAXOS_RECONFIG_RECONFIGURABLE_GROUP_H_
#define DPAXOS_RECONFIG_RECONFIGURABLE_GROUP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "harness/cluster.h"
#include "paxos/value.h"

namespace dpaxos {

/// \brief One logical replicated object managed by reconfiguration.
class ReconfigurableGroup {
 public:
  using StatusCallback = std::function<void(const Status&)>;
  using CommitCallback = Replica::CommitCallback;

  struct Options {
    /// Partition id of the auxiliary configuration log.
    PartitionId aux_partition = 900;
    /// Data groups use partition ids base+epoch.
    PartitionId data_partition_base = 1000;
    /// Zone hosting the (centralized) auxiliary instance.
    ZoneId aux_home_zone = 0;
  };

  /// `cluster` must outlive the group. Creates the auxiliary instance
  /// (a majority group over the aux zone's nodes).
  ReconfigurableGroup(Cluster* cluster, Options options);

  /// Bootstrap: register the initial member set through the auxiliary
  /// log and elect the first data leader.
  void Start(std::vector<NodeId> members, StatusCallback cb);

  /// Commit a value through the current data group's leader.
  void Submit(Value value, CommitCallback cb);

  /// Reconfigure to `new_members`: decide the new configuration in the
  /// auxiliary log, instantiate the new data group, transfer the
  /// accumulated state as a snapshot value, and elect the new leader.
  /// This is the full cost of "moving" under this design.
  void Move(std::vector<NodeId> new_members, StatusCallback cb);

  uint64_t epoch() const { return epoch_; }
  const std::vector<NodeId>& members() const { return members_; }
  NodeId leader() const { return leader_; }
  PartitionId data_partition() const {
    return options_.data_partition_base + static_cast<PartitionId>(epoch_);
  }
  /// Total payload bytes committed into the current group (transferred
  /// forward as a snapshot on every Move).
  uint64_t state_bytes() const { return state_bytes_; }

 private:
  void DecideConfig(std::vector<NodeId> members,
                    std::function<void(const Status&)> done);
  void InstallEpoch(uint64_t epoch, std::vector<NodeId> members,
                    StatusCallback cb);

  Cluster* cluster_;
  Options options_;
  Replica* aux_leader_ = nullptr;

  uint64_t epoch_ = 0;
  bool started_ = false;
  std::vector<NodeId> members_;
  NodeId leader_ = kInvalidNode;
  uint64_t state_bytes_ = 0;
  uint64_t next_value_id_ = 1;
};

/// Encode/decode a configuration value for the auxiliary log.
std::string EncodeConfig(uint64_t epoch, const std::vector<NodeId>& members);
Result<std::pair<uint64_t, std::vector<NodeId>>> DecodeConfig(
    const std::string& payload);

}  // namespace dpaxos

#endif  // DPAXOS_RECONFIG_RECONFIGURABLE_GROUP_H_
