#include "reconfig/reconfigurable_group.h"

#include <utility>

#include "common/check.h"
#include "common/codec.h"
#include "common/logging.h"

namespace dpaxos {

std::string EncodeConfig(uint64_t epoch, const std::vector<NodeId>& members) {
  std::string out;
  ByteWriter w(&out);
  w.PutU64(epoch);
  w.PutU32(static_cast<uint32_t>(members.size()));
  for (NodeId n : members) w.PutU32(n);
  return out;
}

Result<std::pair<uint64_t, std::vector<NodeId>>> DecodeConfig(
    const std::string& payload) {
  ByteReader r(payload);
  uint64_t epoch = 0;
  uint32_t count = 0;
  if (!r.ReadU64(&epoch) || !r.ReadU32(&count) ||
      count > r.remaining() / 4 + 1) {
    return Status::Corruption("bad config header");
  }
  std::vector<NodeId> members(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.ReadU32(&members[i])) return Status::Corruption("bad member");
  }
  if (!r.AtEnd()) return Status::Corruption("trailing config bytes");
  return std::make_pair(epoch, std::move(members));
}

ReconfigurableGroup::ReconfigurableGroup(Cluster* cluster, Options options)
    : cluster_(cluster), options_(options) {
  DPAXOS_CHECK(cluster != nullptr);
  DPAXOS_CHECK_LT(options_.aux_home_zone, cluster->topology().num_zones());
  // The auxiliary instance: a majority group pinned to the aux zone.
  ReplicaConfig aux_config = cluster->options().replica;
  aux_config.partition = options_.aux_partition;
  const QuorumSystem* aux_qs = cluster_->AddPartition(
      std::make_unique<SubsetMajorityQuorumSystem>(
          &cluster_->topology(), cluster->options().ft,
          cluster_->topology().NodesInZone(options_.aux_home_zone)),
      aux_config);
  (void)aux_qs;
  aux_leader_ = cluster_->replica(
      cluster_->NodeInZone(options_.aux_home_zone), options_.aux_partition);
}

void ReconfigurableGroup::DecideConfig(
    std::vector<NodeId> members, std::function<void(const Status&)> done) {
  const uint64_t new_epoch = started_ ? epoch_ + 1 : 0;
  Value config_value =
      Value::Of(++next_value_id_, EncodeConfig(new_epoch, members));
  // The reconfiguration is DRIVEN from the new location: the request
  // travels to the (possibly distant) auxiliary instance over the real
  // network — the latency the paper holds against this design.
  const NodeId driver = members.front();
  Replica* entry = cluster_->replica(driver, options_.aux_partition);
  entry->set_leader_hint(aux_leader_->id());
  entry->SubmitOrForward(std::move(config_value),
                         [done = std::move(done)](const Status& st, SlotId,
                                                  Duration) { done(st); });
}

void ReconfigurableGroup::InstallEpoch(uint64_t epoch,
                                       std::vector<NodeId> members,
                                       StatusCallback cb) {
  ReplicaConfig config = cluster_->options().replica;
  config.partition =
      options_.data_partition_base + static_cast<PartitionId>(epoch);
  cluster_->AddPartition(
      std::make_unique<SubsetMajorityQuorumSystem>(
          &cluster_->topology(), cluster_->options().ft, members),
      config);

  const NodeId new_leader = members.front();
  Replica* replica = cluster_->replica(new_leader, config.partition);
  replica->TryBecomeLeader([this, epoch, members, new_leader,
                            cb = std::move(cb)](const Status& st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    const uint64_t old_state = state_bytes_;
    const NodeId old_leader = leader_;
    epoch_ = epoch;
    members_ = members;
    leader_ = new_leader;
    started_ = true;
    if (old_state == 0) {
      cb(Status::OK());
      return;
    }
    // State transfer: the OLD location ships the accumulated state to
    // the new leader over the wide-area network, where it is replicated
    // as one snapshot value — the dominating cost for large states.
    Replica* old_site = cluster_->replica(old_leader, data_partition());
    old_site->set_leader_hint(leader_);
    old_site->SubmitOrForward(
        Value::Synthetic(++next_value_id_, old_state),
        [cb, this](const Status& st2, SlotId, Duration) {
          DPAXOS_DEBUG("reconfig state transfer: " << st2.ToString());
          cb(st2);
        });
  });
}

void ReconfigurableGroup::Start(std::vector<NodeId> members,
                                StatusCallback cb) {
  DPAXOS_CHECK(!started_);
  DPAXOS_CHECK(!members.empty());
  DecideConfig(members, [this, members, cb = std::move(cb)](
                            const Status& st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    InstallEpoch(0, members, cb);
  });
}

void ReconfigurableGroup::Submit(Value value, CommitCallback cb) {
  DPAXOS_CHECK_MSG(started_, "Start() the group first");
  const uint64_t bytes = value.size_bytes;
  Replica* replica = cluster_->replica(leader_, data_partition());
  replica->Submit(std::move(value),
                  [this, bytes, cb = std::move(cb)](const Status& st,
                                                    SlotId slot,
                                                    Duration latency) {
                    if (st.ok()) state_bytes_ += bytes;
                    cb(st, slot, latency);
                  });
}

void ReconfigurableGroup::Move(std::vector<NodeId> new_members,
                               StatusCallback cb) {
  DPAXOS_CHECK_MSG(started_, "Start() the group first");
  DPAXOS_CHECK(!new_members.empty());
  const uint64_t new_epoch = epoch_ + 1;
  DecideConfig(new_members, [this, new_epoch, new_members,
                             cb = std::move(cb)](const Status& st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    // The old group is implicitly sealed: clients route by the new
    // config; its members never receive further proposals.
    InstallEpoch(new_epoch, new_members, cb);
  });
}

}  // namespace dpaxos
