// Transport interface and its discrete-event simulation implementation.
//
// SimTransport models, per message:
//   delivery = egress serialization (size / bandwidth, FIFO per sender)
//            + one-way propagation delay (half the topology RTT)
//            + fixed per-hop processing overhead
// plus failure injection: probabilistic drops, directed link partitions and
// node crashes. All delays and drops come from the owning Simulator's
// virtual clock and seeded RNG, so runs are reproducible.
#ifndef DPAXOS_NET_TRANSPORT_H_
#define DPAXOS_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace dpaxos {

/// \brief Abstract message-passing layer between nodes.
class Transport {
 public:
  /// Delivery callback: (sender, message).
  using Handler = std::function<void(NodeId, const MessagePtr&)>;

  virtual ~Transport() = default;

  /// Install the delivery handler for `node`. Replaces any previous one.
  virtual void RegisterHandler(NodeId node, Handler handler) = 0;

  /// Send `msg` from `from` to `to`. Delivery is asynchronous and may
  /// silently fail (drops, partitions, crashes) — exactly-like-UDP
  /// semantics; Paxos tolerates this by design.
  virtual void Send(NodeId from, NodeId to, MessagePtr msg) = 0;
};

/// Tuning knobs for SimTransport.
struct SimTransportOptions {
  /// Egress bandwidth per node in bytes per second; 0 = infinite.
  uint64_t egress_bytes_per_sec = 25 * 1000 * 1000;
  /// Per-link throughput between nodes of *different* zones, in bytes per
  /// second; 0 = infinite. Models the congestion-window-limited rate of a
  /// long-haul TCP connection: wide-area links move large payloads far
  /// slower than intra-datacenter links even when the NIC is idle. Each
  /// directed inter-zone link is a FIFO (transfers serialize), so
  /// pipelined batches queue behind each other.
  uint64_t inter_zone_link_bytes_per_sec = 400 * 1000;
  /// Fixed processing overhead added to every delivery (serialization,
  /// kernel, handler dispatch). Applied once per message.
  Duration processing_delay = 500 * kMicrosecond;
  /// Delivery delay for a message a node sends to itself.
  Duration loopback_delay = 50 * kMicrosecond;
  /// Probability that any remote message is silently dropped.
  double drop_probability = 0.0;
  /// Probability that a delivered remote message is delivered twice (the
  /// duplicate arrives after an extra jittered delay). Protocol handlers
  /// must be idempotent; property tests exercise this.
  double duplicate_probability = 0.0;
  /// Upper bound of uniform extra jitter added per remote message.
  Duration max_jitter = 0;
  /// Round-trip every message through an installed wire codec before
  /// delivery (see SimTransport::set_wire_codec): the receiver gets the
  /// re-decoded object, so any field the codec loses breaks the protocol
  /// visibly. Requires a codec to be installed.
  bool validate_wire_codec = false;
};

/// Per-node traffic counters (see SimTransport::StatsFor).
struct TransportStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_dropped = 0;
};

/// \brief Simulated network on top of a Simulator and a Topology.
class SimTransport : public Transport {
 public:
  /// `sim` and `topology` must outlive the transport.
  SimTransport(Simulator* sim, const Topology* topology,
               SimTransportOptions options = {});

  void RegisterHandler(NodeId node, Handler handler) override;
  void Send(NodeId from, NodeId to, MessagePtr msg) override;

  // --- failure injection ---------------------------------------------

  /// Crash `node`: all its in-flight and future traffic (both directions)
  /// is dropped until Recover().
  void Crash(NodeId node);
  void Recover(NodeId node);
  bool IsCrashed(NodeId node) const;

  /// Cut the directed link a->b (messages from a to b are dropped).
  void PartitionOneWay(NodeId a, NodeId b);
  /// Cut both directions between a and b.
  void Partition(NodeId a, NodeId b);
  /// Heal both directions between a and b.
  void Heal(NodeId a, NodeId b);
  /// Heal every partitioned link.
  void HealAll();

  /// Change the loss model mid-run (e.g. for failure sweeps and nemesis
  /// bursts).
  void set_drop_probability(double p) { options_.drop_probability = p; }
  void set_duplicate_probability(double p) {
    options_.duplicate_probability = p;
  }
  void set_max_jitter(Duration j) { options_.max_jitter = j; }

  /// Codec hooks for validate_wire_codec (kept as std::function so the
  /// net layer does not depend on the protocol's message set).
  using Encoder = std::function<std::string(const Message&)>;
  using Decoder = std::function<MessagePtr(const std::string&)>;
  void set_wire_codec(Encoder encode, Decoder decode) {
    encode_ = std::move(encode);
    decode_ = std::move(decode);
  }

  const SimTransportOptions& options() const { return options_; }
  const TransportStats& StatsFor(NodeId node) const;

  /// Sum of bytes sent by every node.
  uint64_t TotalBytesSent() const;

 private:
  Duration ComputeEgressDelay(NodeId from, uint64_t size_bytes);
  Duration ComputeLinkDelay(NodeId from, NodeId to, uint64_t size_bytes,
                            Timestamp earliest_start);

  Simulator* sim_;
  const Topology* topology_;
  SimTransportOptions options_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<Timestamp> egress_free_at_;  // per-node FIFO NIC model
  // Per-directed-link FIFO for the WAN throughput cap.
  std::map<std::pair<NodeId, NodeId>, Timestamp> link_free_at_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  std::vector<TransportStats> stats_;
  Encoder encode_;
  Decoder decode_;
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TRANSPORT_H_
