// Transport interface and its discrete-event simulation implementation.
//
// SimTransport models, per message:
//   delivery = egress serialization (size / bandwidth, FIFO per sender)
//            + one-way propagation delay (half the topology RTT)
//            + fixed per-hop processing overhead
// plus failure injection: probabilistic drops, directed link partitions and
// node crashes. All delays and drops come from the owning Simulator's
// virtual clock and seeded RNG, so runs are reproducible.
//
// Deliveries are carried by pooled DeliveryBatch objects rather than one
// heap-allocated closure per message, and consecutive same-tick sends to
// one receiver fold into a single scheduled drain when (and only when)
// the simulator proves nothing else was scheduled in between — see
// EnqueueDelivery for why that condition preserves the schedule exactly.
#ifndef DPAXOS_NET_TRANSPORT_H_
#define DPAXOS_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace dpaxos {

/// \brief Abstract message-passing layer between nodes.
class Transport {
 public:
  /// Delivery callback: (sender, message).
  using Handler = std::function<void(NodeId, const MessagePtr&)>;

  virtual ~Transport() = default;

  /// Install the delivery handler for `node`. Replaces any previous one.
  virtual void RegisterHandler(NodeId node, Handler handler) = 0;

  /// Send `msg` from `from` to `to`, asynchronously, under the weakest
  /// useful delivery contract — exactly-like-UDP semantics, which Paxos
  /// tolerates by design:
  ///
  ///   * MAY DROP: delivery can silently fail at any point (simulated
  ///     drops/partitions/crashes; in the TCP implementation: bounded
  ///     outbound queues evicting their oldest frame, frames queued or
  ///     half-written on a connection that dies, messages sent while a
  ///     peer is unreachable).
  ///   * MAY DUPLICATE: a message can be delivered more than once
  ///     (simulated duplicate injection; TCP retransmission after an
  ///     ambiguous connection loss). Handlers must be idempotent.
  ///   * UNORDERED ACROSS PEERS: messages from different senders
  ///     interleave arbitrarily. Within one (from, to) pair an
  ///     implementation may preserve order (TCP does while a single
  ///     connection lives) but callers must not rely on it — a
  ///     reconnect, retransmit or drop reorders the survivors.
  ///   * NEVER INVENTS: everything delivered to `to`'s handler was
  ///     previously passed to Send by the named sender.
  ///
  /// transport_test asserts TcpTransport stays inside this contract
  /// under forced disconnects and queue overflow.
  virtual void Send(NodeId from, NodeId to, MessagePtr msg) = 0;
};

/// Tuning knobs for SimTransport.
struct SimTransportOptions {
  /// Egress bandwidth per node in bytes per second; 0 = infinite.
  uint64_t egress_bytes_per_sec = 25 * 1000 * 1000;
  /// Per-link throughput between nodes of *different* zones, in bytes per
  /// second; 0 = infinite. Models the congestion-window-limited rate of a
  /// long-haul TCP connection: wide-area links move large payloads far
  /// slower than intra-datacenter links even when the NIC is idle. Each
  /// directed inter-zone link is a FIFO (transfers serialize), so
  /// pipelined batches queue behind each other.
  uint64_t inter_zone_link_bytes_per_sec = 400 * 1000;
  /// Fixed processing overhead added to every delivery (serialization,
  /// kernel, handler dispatch). Applied once per message.
  Duration processing_delay = 500 * kMicrosecond;
  /// Delivery delay for a message a node sends to itself.
  Duration loopback_delay = 50 * kMicrosecond;
  /// Probability that any remote message is silently dropped.
  double drop_probability = 0.0;
  /// Probability that a delivered remote message is delivered twice (the
  /// duplicate arrives after an extra jittered delay). Protocol handlers
  /// must be idempotent; property tests exercise this.
  double duplicate_probability = 0.0;
  /// Upper bound of uniform extra jitter added per remote message.
  Duration max_jitter = 0;
  /// Pre-allocate this many pooled DeliveryBatch objects at
  /// construction, so a correctly hinted workload reports
  /// `delivery_pool_growths == 0` over the whole run (the growth
  /// counter only tracks demand the hint failed to cover).
  uint32_t initial_delivery_batches = 0;
  /// Round-trip every message through an installed wire codec before
  /// delivery (see SimTransport::set_wire_codec): the receiver gets the
  /// re-decoded object, so any field the codec loses breaks the protocol
  /// visibly. Requires a codec to be installed.
  bool validate_wire_codec = false;
};

/// Per-node traffic counters (see SimTransport::StatsFor).
struct TransportStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_dropped = 0;
};

/// \brief Simulated network on top of a Simulator and a Topology.
class SimTransport : public Transport {
 public:
  /// `sim` and `topology` must outlive the transport.
  SimTransport(Simulator* sim, const Topology* topology,
               SimTransportOptions options = {});

  void RegisterHandler(NodeId node, Handler handler) override;
  void Send(NodeId from, NodeId to, MessagePtr msg) override;

  // --- failure injection ---------------------------------------------

  /// Crash `node`: all its in-flight and future traffic (both directions)
  /// is dropped until Recover().
  void Crash(NodeId node);
  void Recover(NodeId node);
  bool IsCrashed(NodeId node) const;

  /// Cut the directed link a->b (messages from a to b are dropped).
  void PartitionOneWay(NodeId a, NodeId b);
  /// Cut both directions between a and b.
  void Partition(NodeId a, NodeId b);
  /// Heal both directions between a and b.
  void Heal(NodeId a, NodeId b);
  /// Heal every partitioned link.
  void HealAll();

  /// Change the loss model mid-run (e.g. for failure sweeps and nemesis
  /// bursts).
  void set_drop_probability(double p) { options_.drop_probability = p; }
  void set_duplicate_probability(double p) {
    options_.duplicate_probability = p;
  }
  void set_max_jitter(Duration j) { options_.max_jitter = j; }

  /// Codec hooks for validate_wire_codec (kept as std::function so the
  /// net layer does not depend on the protocol's message set). The
  /// encoder APPENDS to `out` — the transport clears and reuses one
  /// buffer across messages, so conformance mode does not allocate per
  /// send; the decoder reads a view of that buffer.
  using Encoder = std::function<void(const Message&, std::string* out)>;
  using Decoder = std::function<MessagePtr(std::string_view)>;
  void set_wire_codec(Encoder encode, Decoder decode) {
    encode_ = std::move(encode);
    decode_ = std::move(decode);
  }

  const SimTransportOptions& options() const { return options_; }
  const TransportStats& StatsFor(NodeId node) const;

  /// Sum of bytes sent by every node.
  uint64_t TotalBytesSent() const;

 private:
  /// A set of messages for one receiver delivered by one scheduled
  /// drain event. Pooled and recycled; pointers stay stable while the
  /// pool grows (handlers may Send mid-drain).
  struct DeliveryBatch {
    Timestamp at = 0;
    /// Simulator::next_schedule_seq() observed right after this batch's
    /// drain event was scheduled; coalescing is only legal while it
    /// still matches (nothing else has been scheduled since).
    uint64_t seq_after = 0;
    NodeId to = 0;
    std::vector<std::pair<NodeId, MessagePtr>> items;
  };

  Duration ComputeEgressDelay(NodeId from, uint64_t size_bytes);
  Duration ComputeLinkDelay(NodeId from, NodeId to, uint64_t size_bytes,
                            Timestamp earliest_start);
  /// Hand `msg` to the delivery machinery `delay` from now: coalesce
  /// into the receiver's open same-tick batch when provably
  /// order-preserving, else schedule a fresh pooled batch.
  void EnqueueDelivery(NodeId from, NodeId to, Duration delay,
                       MessagePtr msg);
  void DrainBatch(uint32_t index);
  uint32_t AcquireBatch();

  Simulator* sim_;
  const Topology* topology_;
  SimTransportOptions options_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<Timestamp> egress_free_at_;  // per-node FIFO NIC model
  /// Per-directed-link FIFO for the WAN throughput cap, as a flat
  /// num_nodes^2 table (the map it replaces was a hot-path lookup).
  std::vector<Timestamp> link_free_at_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  std::vector<TransportStats> stats_;
  std::vector<std::unique_ptr<DeliveryBatch>> batches_;
  std::vector<uint32_t> free_batches_;
  /// Per receiver: index of the most recently scheduled batch (the only
  /// coalescing candidate), or kNoBatch.
  std::vector<uint32_t> open_batch_;
  Encoder encode_;
  Decoder decode_;
  std::string codec_buffer_;  // reused by validate_wire_codec round-trips
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TRANSPORT_H_
