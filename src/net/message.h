// Base class for everything that travels over a Transport.
//
// Messages are immutable once sent (shared by sender and receiver in the
// simulator), and expose their wire size so the bandwidth model can charge
// transmission time.
#ifndef DPAXOS_NET_MESSAGE_H_
#define DPAXOS_NET_MESSAGE_H_

#include <cstdint>
#include <memory>

namespace dpaxos {

/// \brief Abstract wire message.
class Message {
 public:
  virtual ~Message() = default;

  /// Serialized size in bytes, charged against link bandwidth.
  virtual uint64_t SizeBytes() const = 0;

  /// Stable type name for logging and tests (e.g. "prepare").
  virtual const char* TypeName() const = 0;

  /// Stable one-byte wire tag identifying this type to the codec, or 0
  /// for message types with no wire representation. Serialization
  /// dispatches on this tag (one virtual call) instead of probing the
  /// whole message set with dynamic_cast.
  virtual uint8_t wire_tag() const { return 0; }
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace dpaxos

#endif  // DPAXOS_NET_MESSAGE_H_
