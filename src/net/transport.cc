#include "net/transport.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/perf_counters.h"

namespace dpaxos {

namespace {
constexpr uint32_t kNoBatch = 0xffff'ffffu;
}  // namespace

SimTransport::SimTransport(Simulator* sim, const Topology* topology,
                           SimTransportOptions options)
    : sim_(sim),
      topology_(topology),
      options_(options),
      rng_(sim->rng().Fork()),
      handlers_(topology->num_nodes()),
      crashed_(topology->num_nodes(), false),
      egress_free_at_(topology->num_nodes(), 0),
      link_free_at_(static_cast<size_t>(topology->num_nodes()) *
                        topology->num_nodes(),
                    0),
      stats_(topology->num_nodes()),
      open_batch_(topology->num_nodes(), kNoBatch) {
  DPAXOS_CHECK(sim != nullptr);
  DPAXOS_CHECK(topology != nullptr);
  batches_.reserve(options_.initial_delivery_batches);
  free_batches_.reserve(options_.initial_delivery_batches);
  // Populate the free list back-to-front so batches are handed out in
  // ascending index order, matching what on-demand growth would do.
  for (uint32_t i = options_.initial_delivery_batches; i > 0; --i) {
    batches_.push_back(std::make_unique<DeliveryBatch>());
  }
  for (uint32_t i = options_.initial_delivery_batches; i > 0; --i) {
    free_batches_.push_back(i - 1);
  }
}

void SimTransport::RegisterHandler(NodeId node, Handler handler) {
  DPAXOS_CHECK_LT(node, handlers_.size());
  handlers_[node] = std::move(handler);
}

Duration SimTransport::ComputeEgressDelay(NodeId from, uint64_t size_bytes) {
  if (options_.egress_bytes_per_sec == 0) return 0;
  // Transmission time for this message on the sender's NIC.
  const Duration tx = static_cast<Duration>(
      static_cast<double>(size_bytes) /
      static_cast<double>(options_.egress_bytes_per_sec) *
      static_cast<double>(kSecond));
  // FIFO egress: this message starts after previously queued bytes drain.
  const Timestamp start = std::max(sim_->Now(), egress_free_at_[from]);
  egress_free_at_[from] = start + tx;
  return egress_free_at_[from] - sim_->Now();
}

Duration SimTransport::ComputeLinkDelay(NodeId from, NodeId to,
                                        uint64_t size_bytes,
                                        Timestamp earliest_start) {
  if (options_.inter_zone_link_bytes_per_sec == 0) return 0;
  if (topology_->ZoneOf(from) == topology_->ZoneOf(to)) return 0;
  // The WAN link is a FIFO pipe with a TCP-like throughput cap: this
  // transfer starts once the NIC handed it over (earliest_start) and any
  // earlier transfer on the same directed link drained.
  const Duration tx = static_cast<Duration>(
      static_cast<double>(size_bytes) /
      static_cast<double>(options_.inter_zone_link_bytes_per_sec) *
      static_cast<double>(kSecond));
  Timestamp& free_at =
      link_free_at_[static_cast<size_t>(from) * handlers_.size() + to];
  const Timestamp start = std::max(earliest_start, free_at);
  free_at = start + tx;
  return free_at - earliest_start;
}

uint32_t SimTransport::AcquireBatch() {
  if (!free_batches_.empty()) {
    const uint32_t index = free_batches_.back();
    free_batches_.pop_back();
    return index;
  }
  ++ThreadPerfCounters().delivery_pool_growths;
  batches_.push_back(std::make_unique<DeliveryBatch>());
  return static_cast<uint32_t>(batches_.size() - 1);
}

void SimTransport::EnqueueDelivery(NodeId from, NodeId to, Duration delay,
                                   MessagePtr msg) {
  const Timestamp at = sim_->Now() + delay;
  const uint32_t open = open_batch_[to];
  if (open != kNoBatch) {
    DeliveryBatch& batch = *batches_[open];
    // Coalescing is legal ONLY when this delivery lands on the open
    // batch's tick AND nothing has been scheduled since that batch's
    // drain event. Then, had each delivery been its own event, they
    // would hold consecutive scheduling tickets at one timestamp — the
    // kernel would run them back-to-back with nothing in between, which
    // is exactly what the drain loop does. Any interleaving scheduled
    // event voids the proof, so the batch closes.
    if (batch.at == at && sim_->next_schedule_seq() == batch.seq_after) {
      batch.items.emplace_back(from, std::move(msg));
      ++ThreadPerfCounters().deliveries_coalesced;
      return;
    }
  }
  const uint32_t index = AcquireBatch();
  DeliveryBatch& batch = *batches_[index];
  batch.at = at;
  batch.to = to;
  batch.items.emplace_back(from, std::move(msg));
  sim_->Schedule(delay, [this, index] { DrainBatch(index); });
  batch.seq_after = sim_->next_schedule_seq();
  open_batch_[to] = index;
}

void SimTransport::DrainBatch(uint32_t index) {
  DeliveryBatch& batch = *batches_[index];
  const NodeId to = batch.to;
  // Close the batch before running handlers: a mid-drain Send to `to`
  // must open a fresh batch, not append behind the cursor.
  if (open_batch_[to] == index) open_batch_[to] = kNoBatch;
  PerfCounters& perf = ThreadPerfCounters();
  for (auto& [from, msg] : batch.items) {
    // Crash state is evaluated at delivery time: messages in flight to a
    // node that crashed meanwhile are lost.
    if (crashed_[to]) continue;
    if (!handlers_[to]) continue;
    ++perf.messages_delivered;
    handlers_[to](from, msg);
  }
  batch.items.clear();
  free_batches_.push_back(index);
}

void SimTransport::Send(NodeId from, NodeId to, MessagePtr msg) {
  DPAXOS_CHECK_LT(from, handlers_.size());
  DPAXOS_CHECK_LT(to, handlers_.size());
  DPAXOS_CHECK(msg != nullptr);

  TransportStats& st = stats_[from];
  if (crashed_[from]) {
    ++st.messages_dropped;
    return;  // a crashed node sends nothing
  }

  const uint64_t size_bytes = msg->SizeBytes();
  ++st.messages_sent;
  st.bytes_sent += size_bytes;
  PerfCounters& perf = ThreadPerfCounters();
  ++perf.messages_sent;
  perf.bytes_sent += size_bytes;

  if (options_.validate_wire_codec && from != to) {
    // Conformance mode: the receiver sees the re-decoded bytes, never
    // the sender's object.
    DPAXOS_CHECK_MSG(encode_ != nullptr && decode_ != nullptr,
                     "validate_wire_codec requires set_wire_codec");
    codec_buffer_.clear();
    encode_(*msg, &codec_buffer_);
    MessagePtr decoded = decode_(codec_buffer_);
    DPAXOS_CHECK_MSG(decoded != nullptr, "wire codec rejected a message");
    msg = std::move(decoded);
  }

  if (from == to) {
    // Loopback skips the NIC, drops and partitions.
    EnqueueDelivery(from, to, options_.loopback_delay, std::move(msg));
    return;
  }

  if ((!cut_links_.empty() && cut_links_.count({from, to}) > 0) ||
      (options_.drop_probability > 0 &&
       rng_.NextBool(options_.drop_probability))) {
    ++st.messages_dropped;
    return;
  }

  const Duration egress = ComputeEgressDelay(from, size_bytes);
  const Duration link =
      ComputeLinkDelay(from, to, size_bytes, sim_->Now() + egress);
  Duration delay = egress + link + topology_->OneWayDelay(from, to) +
                   options_.processing_delay;
  if (options_.max_jitter > 0) {
    delay += rng_.NextBounded(options_.max_jitter + 1);
  }

  DPAXOS_TRACE("send " << msg->TypeName() << " " << from << "->" << to
                       << " size=" << size_bytes
                       << " delay=" << DurationToString(delay));
  const bool duplicate = options_.duplicate_probability > 0 &&
                         rng_.NextBool(options_.duplicate_probability);
  if (duplicate) {
    // The network replays the message a little later. Draw the extra
    // delay now, matching the RNG consumption order of the pre-pooling
    // transport (one NextBounded after the duplicate coin flip).
    const Duration extra = 1 + rng_.NextBounded(50 * kMillisecond);
    EnqueueDelivery(from, to, delay, msg);
    EnqueueDelivery(from, to, delay + extra, std::move(msg));
  } else {
    EnqueueDelivery(from, to, delay, std::move(msg));
  }
}

void SimTransport::Crash(NodeId node) {
  DPAXOS_CHECK_LT(node, crashed_.size());
  crashed_[node] = true;
}

void SimTransport::Recover(NodeId node) {
  DPAXOS_CHECK_LT(node, crashed_.size());
  crashed_[node] = false;
}

bool SimTransport::IsCrashed(NodeId node) const {
  DPAXOS_CHECK_LT(node, crashed_.size());
  return crashed_[node];
}

void SimTransport::PartitionOneWay(NodeId a, NodeId b) {
  cut_links_.insert({a, b});
}

void SimTransport::Partition(NodeId a, NodeId b) {
  PartitionOneWay(a, b);
  PartitionOneWay(b, a);
}

void SimTransport::Heal(NodeId a, NodeId b) {
  cut_links_.erase({a, b});
  cut_links_.erase({b, a});
}

void SimTransport::HealAll() { cut_links_.clear(); }

const TransportStats& SimTransport::StatsFor(NodeId node) const {
  DPAXOS_CHECK_LT(node, stats_.size());
  return stats_[node];
}

uint64_t SimTransport::TotalBytesSent() const {
  uint64_t total = 0;
  for (const auto& st : stats_) total += st.bytes_sent;
  return total;
}

}  // namespace dpaxos
