#include "net/transport.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

SimTransport::SimTransport(Simulator* sim, const Topology* topology,
                           SimTransportOptions options)
    : sim_(sim),
      topology_(topology),
      options_(options),
      rng_(sim->rng().Fork()),
      handlers_(topology->num_nodes()),
      crashed_(topology->num_nodes(), false),
      egress_free_at_(topology->num_nodes(), 0),
      stats_(topology->num_nodes()) {
  DPAXOS_CHECK(sim != nullptr);
  DPAXOS_CHECK(topology != nullptr);
}

void SimTransport::RegisterHandler(NodeId node, Handler handler) {
  DPAXOS_CHECK_LT(node, handlers_.size());
  handlers_[node] = std::move(handler);
}

Duration SimTransport::ComputeEgressDelay(NodeId from, uint64_t size_bytes) {
  if (options_.egress_bytes_per_sec == 0) return 0;
  // Transmission time for this message on the sender's NIC.
  const Duration tx = static_cast<Duration>(
      static_cast<double>(size_bytes) /
      static_cast<double>(options_.egress_bytes_per_sec) *
      static_cast<double>(kSecond));
  // FIFO egress: this message starts after previously queued bytes drain.
  const Timestamp start = std::max(sim_->Now(), egress_free_at_[from]);
  egress_free_at_[from] = start + tx;
  return egress_free_at_[from] - sim_->Now();
}

Duration SimTransport::ComputeLinkDelay(NodeId from, NodeId to,
                                        uint64_t size_bytes,
                                        Timestamp earliest_start) {
  if (options_.inter_zone_link_bytes_per_sec == 0) return 0;
  if (topology_->ZoneOf(from) == topology_->ZoneOf(to)) return 0;
  // The WAN link is a FIFO pipe with a TCP-like throughput cap: this
  // transfer starts once the NIC handed it over (earliest_start) and any
  // earlier transfer on the same directed link drained.
  const Duration tx = static_cast<Duration>(
      static_cast<double>(size_bytes) /
      static_cast<double>(options_.inter_zone_link_bytes_per_sec) *
      static_cast<double>(kSecond));
  Timestamp& free_at = link_free_at_[{from, to}];
  const Timestamp start = std::max(earliest_start, free_at);
  free_at = start + tx;
  return free_at - earliest_start;
}

void SimTransport::Send(NodeId from, NodeId to, MessagePtr msg) {
  DPAXOS_CHECK_LT(from, handlers_.size());
  DPAXOS_CHECK_LT(to, handlers_.size());
  DPAXOS_CHECK(msg != nullptr);

  TransportStats& st = stats_[from];
  if (crashed_[from]) {
    ++st.messages_dropped;
    return;  // a crashed node sends nothing
  }

  ++st.messages_sent;
  st.bytes_sent += msg->SizeBytes();

  if (options_.validate_wire_codec && from != to) {
    // Conformance mode: the receiver sees the re-decoded bytes, never
    // the sender's object.
    DPAXOS_CHECK_MSG(encode_ != nullptr && decode_ != nullptr,
                     "validate_wire_codec requires set_wire_codec");
    MessagePtr decoded = decode_(encode_(*msg));
    DPAXOS_CHECK_MSG(decoded != nullptr, "wire codec rejected a message");
    msg = std::move(decoded);
  }

  if (from == to) {
    // Loopback skips the NIC, drops and partitions.
    sim_->Schedule(options_.loopback_delay, [this, from, to, msg] {
      if (crashed_[to]) return;
      if (handlers_[to]) handlers_[to](from, msg);
    });
    return;
  }

  if (cut_links_.count({from, to}) > 0 ||
      (options_.drop_probability > 0 &&
       rng_.NextBool(options_.drop_probability))) {
    ++st.messages_dropped;
    return;
  }

  const Duration egress = ComputeEgressDelay(from, msg->SizeBytes());
  const Duration link =
      ComputeLinkDelay(from, to, msg->SizeBytes(), sim_->Now() + egress);
  Duration delay = egress + link + topology_->OneWayDelay(from, to) +
                   options_.processing_delay;
  if (options_.max_jitter > 0) {
    delay += rng_.NextBounded(options_.max_jitter + 1);
  }

  DPAXOS_TRACE("send " << msg->TypeName() << " " << from << "->" << to
                       << " size=" << msg->SizeBytes()
                       << " delay=" << DurationToString(delay));
  auto deliver = [this, from, to, msg] {
    // Crash state is evaluated at delivery time: messages in flight to a
    // node that crashed meanwhile are lost.
    if (crashed_[to]) return;
    if (handlers_[to]) handlers_[to](from, msg);
  };
  sim_->Schedule(delay, deliver);
  if (options_.duplicate_probability > 0 &&
      rng_.NextBool(options_.duplicate_probability)) {
    // The network replays the message a little later.
    sim_->Schedule(delay + 1 + rng_.NextBounded(50 * kMillisecond), deliver);
  }
}

void SimTransport::Crash(NodeId node) {
  DPAXOS_CHECK_LT(node, crashed_.size());
  crashed_[node] = true;
}

void SimTransport::Recover(NodeId node) {
  DPAXOS_CHECK_LT(node, crashed_.size());
  crashed_[node] = false;
}

bool SimTransport::IsCrashed(NodeId node) const {
  DPAXOS_CHECK_LT(node, crashed_.size());
  return crashed_[node];
}

void SimTransport::PartitionOneWay(NodeId a, NodeId b) {
  cut_links_.insert({a, b});
}

void SimTransport::Partition(NodeId a, NodeId b) {
  PartitionOneWay(a, b);
  PartitionOneWay(b, a);
}

void SimTransport::Heal(NodeId a, NodeId b) {
  cut_links_.erase({a, b});
  cut_links_.erase({b, a});
}

void SimTransport::HealAll() { cut_links_.clear(); }

const TransportStats& SimTransport::StatsFor(NodeId node) const {
  DPAXOS_CHECK_LT(node, stats_.size());
  return stats_[node];
}

uint64_t SimTransport::TotalBytesSent() const {
  uint64_t total = 0;
  for (const auto& st : stats_) total += st.bytes_sent;
  return total;
}

}  // namespace dpaxos
