#include "net/tcp/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dpaxos {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> ResolveV4(const HostPort& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  std::string host = addr.host.empty() ? "127.0.0.1" : addr.host;
  if (host == "localhost") host = "127.0.0.1";
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidArgument("unresolvable host (IPv4 only): " + host);
  }
  return sa;
}

}  // namespace

Result<HostPort> HostPort::Parse(std::string_view spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= spec.size()) {
    return Status::InvalidArgument("endpoint must be host:port: " +
                                   std::string(spec));
  }
  HostPort hp;
  hp.host = std::string(spec.substr(0, colon));
  uint64_t port = 0;
  for (char c : spec.substr(colon + 1)) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in endpoint: " +
                                     std::string(spec));
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range: " +
                                     std::string(spec));
    }
  }
  hp.port = static_cast<uint16_t>(port);
  return hp;
}

std::string HostPort::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<std::vector<HostPort>> ParseClusterSpec(std::string_view csv) {
  std::vector<HostPort> endpoints;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view part = csv.substr(start, comma - start);
    if (part.empty()) {
      return Status::InvalidArgument("empty endpoint in cluster spec");
    }
    Result<HostPort> hp = HostPort::Parse(part);
    if (!hp.ok()) return hp.status();
    endpoints.push_back(std::move(hp.value()));
    start = comma + 1;
    if (comma == csv.size()) break;
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("empty cluster spec");
  }
  return endpoints;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl O_NONBLOCK");
  }
  const int fdflags = fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return ErrnoStatus("fcntl FD_CLOEXEC");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<int> OpenListener(const HostPort& addr, int backlog) {
  Result<sockaddr_in> sa = ResolveV4(addr);
  if (!sa.ok()) return sa.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  Status st = SetNonBlocking(fd);
  if (st.ok() && bind(fd, reinterpret_cast<const sockaddr*>(&sa.value()),
                      sizeof(sockaddr_in)) < 0) {
    st = ErrnoStatus("bind " + addr.ToString());
  }
  if (st.ok() && listen(fd, backlog) < 0) st = ErrnoStatus("listen");
  if (!st.ok()) {
    close(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return ntohs(sa.sin_port);
}

Result<int> StartConnect(const HostPort& addr) {
  Result<sockaddr_in> sa = ResolveV4(addr);
  if (!sa.ok()) return sa.status();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  SetNoDelay(fd);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&sa.value()),
              sizeof(sockaddr_in)) < 0 &&
      errno != EINPROGRESS) {
    Status err = ErrnoStatus("connect " + addr.ToString());
    close(fd);
    return err;
  }
  return fd;
}

Result<std::vector<uint16_t>> PickFreeLoopbackPorts(size_t n) {
  std::vector<int> fds;
  std::vector<uint16_t> ports;
  Status st = Status::OK();
  for (size_t i = 0; i < n && st.ok(); ++i) {
    Result<int> fd = OpenListener(HostPort{"127.0.0.1", 0}, 1);
    if (!fd.ok()) {
      st = fd.status();
      break;
    }
    fds.push_back(fd.value());
    Result<uint16_t> port = BoundPort(fd.value());
    if (!port.ok()) {
      st = port.status();
      break;
    }
    ports.push_back(port.value());
  }
  for (int fd : fds) close(fd);
  if (!st.ok()) return st;
  return ports;
}

}  // namespace dpaxos
