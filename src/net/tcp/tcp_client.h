// Minimal blocking client for the real-network runtime: one TCP
// connection speaking the net/tcp framing, synchronous request/reply.
// Used by `dpaxos_cli --client`, the realnet benchmark driver and the
// multi-process tests — it deliberately has no event loop so it can
// live on the far side of a fork/exec boundary from the servers.
#ifndef DPAXOS_NET_TCP_TCP_CLIENT_H_
#define DPAXOS_NET_TCP_TCP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "net/tcp/framing.h"
#include "net/tcp/socket_util.h"

namespace dpaxos {

/// \brief Blocking framing-level client. Not thread-safe.
class TcpClient {
 public:
  /// `client_id` is carried in the HELLO and tags Put transactions for
  /// server-side exactly-once dedup; pick a distinct id per client.
  explicit TcpClient(uint64_t client_id) : client_id_(client_id) {}
  ~TcpClient() { Close(); }

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connect and send the HELLO. Retries nothing: callers own retry
  /// policy (the harness polls WaitReady around it).
  Status Connect(const HostPort& addr, Duration timeout);
  void Close();
  bool connected() const { return fd_ >= 0; }
  uint64_t client_id() const { return client_id_; }

  /// Send one request and block for its reply (matched by request_id;
  /// stale replies from timed-out predecessors are skipped).
  Result<ClientReply> Call(ClientOp op, std::string_view key,
                           std::string_view value, Duration timeout);

  // Convenience wrappers; non-OK server status codes surface as errors.
  Status Put(std::string_view key, std::string_view value, Duration timeout);
  Result<std::string> Get(std::string_view key, Duration timeout);
  Result<std::string> Stats(Duration timeout);

 private:
  Status SendAll(std::string_view bytes, Timestamp deadline_ms);
  static Timestamp NowMillis();

  uint64_t client_id_;
  uint64_t next_request_id_ = 1;
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_TCP_CLIENT_H_
