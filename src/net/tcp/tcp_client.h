// Minimal blocking client for the real-network runtime: one TCP
// connection speaking the net/tcp framing, synchronous request/reply.
// Used by `dpaxos_cli --client`, the realnet benchmark driver and the
// multi-process tests — it deliberately has no event loop so it can
// live on the far side of a fork/exec boundary from the servers.
#ifndef DPAXOS_NET_TCP_TCP_CLIENT_H_
#define DPAXOS_NET_TCP_TCP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/tcp/framing.h"
#include "net/tcp/socket_util.h"

namespace dpaxos {

/// \brief Blocking framing-level client. Not thread-safe.
class TcpClient {
 public:
  /// `client_id` is carried in the HELLO and tags Put transactions for
  /// server-side exactly-once dedup; pick a distinct id per client.
  explicit TcpClient(uint64_t client_id) : client_id_(client_id) {}
  ~TcpClient() { Close(); }

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connect and send the HELLO. Retries nothing: callers own retry
  /// policy (the harness polls WaitReady around it).
  Status Connect(const HostPort& addr, Duration timeout);
  void Close();
  bool connected() const { return fd_ >= 0; }
  uint64_t client_id() const { return client_id_; }

  /// Zone stamped on every outgoing request (feeds server-side access
  /// statistics in ownership mode). Default: undeclared.
  void set_zone(uint32_t zone) { zone_ = zone; }
  uint32_t zone() const { return zone_; }

  /// Send one request and block for its reply (matched by request_id;
  /// stale replies from timed-out predecessors are skipped).
  Result<ClientReply> Call(ClientOp op, std::string_view key,
                           std::string_view value, Duration timeout);

  /// Call() with a caller-chosen request id. A retried write MUST reuse
  /// its original id: the server dedups on (client_id, request_id), so a
  /// resend after a timeout acks the original commit instead of applying
  /// twice (FailoverTcpClient relies on this across replica failover).
  Result<ClientReply> CallWithId(uint64_t request_id, ClientOp op,
                                 std::string_view key, std::string_view value,
                                 Duration timeout);

  // Convenience wrappers; non-OK server status codes surface as errors.
  Status Put(std::string_view key, std::string_view value, Duration timeout);
  Result<std::string> Get(std::string_view key, Duration timeout);
  Result<std::string> Stats(Duration timeout);

 private:
  Status SendAll(std::string_view bytes, Timestamp deadline_ms);
  static Timestamp NowMillis();

  uint64_t client_id_;
  uint64_t next_request_id_ = 1;
  uint32_t zone_ = kInvalidIdWire;
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// \brief Retry-next-replica wrapper around TcpClient.
///
/// A plain TcpClient pointed at a hung server (SIGSTOP'd process, black-
/// holed link) burns its whole timeout against one replica. This wrapper
/// owns an endpoint list and one connection: every per-attempt timeout,
/// connect failure or retryable server error closes the connection and
/// rotates to the next endpoint until the overall deadline expires.
/// Writes keep the SAME request id across every attempt, so the server's
/// (client_id, seq) dedup turns at-least-once delivery into exactly-once
/// application. Not thread-safe.
class FailoverTcpClient {
 public:
  struct Options {
    Duration connect_timeout = 1 * kSecond;
    /// Per-attempt reply wait before rotating to the next endpoint.
    Duration attempt_timeout = 1 * kSecond;
    /// Whole-operation budget across all attempts and endpoints.
    Duration overall_timeout = 8 * kSecond;
    /// Pause between consecutive failed attempts (keeps a dead cluster
    /// from being hammered in a hot loop).
    Duration retry_backoff = 25 * kMillisecond;
  };

  /// Everything a caller (and a history recorder) needs to know about
  /// one operation's fate.
  struct CallResult {
    Status status = Status::OK();
    ClientReply reply;       ///< valid iff status.ok()
    uint32_t attempts = 0;
    uint32_t failovers = 0;  ///< endpoint rotations performed
    /// True once any attempt reached a live connection: the request may
    /// have taken effect even if no reply came back (indeterminate, not
    /// failed, for history purposes).
    bool ever_sent = false;
  };

  FailoverTcpClient(uint64_t client_id, std::vector<HostPort> endpoints);
  FailoverTcpClient(uint64_t client_id, std::vector<HostPort> endpoints,
                    Options options);

  FailoverTcpClient(const FailoverTcpClient&) = delete;
  FailoverTcpClient& operator=(const FailoverTcpClient&) = delete;

  /// One operation, retried across replicas until success or the overall
  /// deadline. A kGet answered with kNotFound is a successful read of an
  /// absent key, not a retryable error.
  CallResult Call(ClientOp op, std::string_view key, std::string_view value);

  void Close() { client_.Close(); }
  uint64_t client_id() const { return client_.client_id(); }
  uint64_t total_failovers() const { return total_failovers_; }
  /// Endpoint index the next attempt will dial (test introspection).
  size_t current_endpoint() const { return current_; }

  /// Zone stamped on every request (see TcpClient::set_zone).
  void set_zone(uint32_t zone) { client_.set_zone(zone); }
  /// Point the next attempt at a specific endpoint (node id under the
  /// --serve convention) — e.g. a mobile client dialing its new local
  /// replica after moving zones. Out-of-range indices are ignored.
  void set_endpoint(size_t idx) {
    if (idx >= endpoints_.size() || idx == current_) return;
    client_.Close();
    current_ = idx;
  }
  /// Ownership-directory redirect hints acted upon: the endpoint list is
  /// indexed by node id (the --serve convention), so a reply's redirect
  /// rotates the next attempt straight to the partition's owner instead
  /// of round-robining through dead weight.
  uint64_t redirects_followed() const { return redirects_followed_; }

 private:
  std::vector<HostPort> endpoints_;
  Options options_;
  TcpClient client_;
  size_t current_ = 0;
  uint64_t next_request_id_ = 1;
  uint64_t total_failovers_ = 0;
  uint64_t redirects_followed_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_TCP_CLIENT_H_
