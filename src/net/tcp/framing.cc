#include "net/tcp/framing.h"

#include <cstring>
#include <utility>

#include "common/codec.h"
#include "common/crc32.h"

namespace dpaxos {

void AppendFrame(std::string_view body, std::string* out) {
  ByteWriter writer(out);
  writer.Reserve(kFrameHeaderBytes + body.size());
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU32(Crc32(body));
  out->append(body);
}

void AppendNodeMessageFrame(std::string_view wire_bytes, std::string* out) {
  // The body is [type byte | wire bytes]; checksum both without
  // materializing the concatenation: write the header with a zero CRC,
  // append the body, then patch the CRC over the body range in place.
  ByteWriter writer(out);
  writer.Reserve(kFrameHeaderBytes + 1 + wire_bytes.size());
  writer.PutU32(static_cast<uint32_t>(1 + wire_bytes.size()));
  const size_t crc_at = out->size();
  writer.PutU32(0);
  writer.PutU8(static_cast<uint8_t>(FrameType::kNodeMessage));
  out->append(wire_bytes);
  const uint32_t crc =
      Crc32(std::string_view(*out).substr(crc_at + 4, 1 + wire_bytes.size()));
  for (int i = 0; i < 4; ++i) {
    (*out)[crc_at + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
}

std::string EncodeHelloFrame(const Hello& hello) {
  std::string body;
  ByteWriter writer(&body);
  writer.PutU8(static_cast<uint8_t>(FrameType::kHello));
  writer.PutU8(static_cast<uint8_t>(hello.kind));
  writer.PutU64(hello.id);
  std::string frame;
  AppendFrame(body, &frame);
  return frame;
}

std::string EncodeClientRequestFrame(const ClientRequest& req) {
  std::string body;
  ByteWriter writer(&body);
  writer.PutU8(static_cast<uint8_t>(FrameType::kClientRequest));
  writer.PutU64(req.request_id);
  writer.PutU8(static_cast<uint8_t>(req.op));
  writer.PutString(req.key);
  writer.PutString(req.value);
  writer.PutU32(req.zone);
  std::string frame;
  AppendFrame(body, &frame);
  return frame;
}

std::string EncodeClientReplyFrame(const ClientReply& reply) {
  std::string body;
  ByteWriter writer(&body);
  writer.PutU8(static_cast<uint8_t>(FrameType::kClientReply));
  writer.PutU64(reply.request_id);
  writer.PutU8(reply.status_code);
  writer.PutString(reply.value);
  writer.PutU64(reply.watermark);
  writer.PutU32(reply.redirect);
  std::string frame;
  AppendFrame(body, &frame);
  return frame;
}

namespace {

Status FrameCorruption(const char* what) {
  return Status::Corruption(std::string("frame: ") + what);
}

bool ReadType(ByteReader* reader, FrameType expected) {
  uint8_t type = 0;
  return reader->ReadU8(&type) &&
         type == static_cast<uint8_t>(expected);
}

}  // namespace

Result<Hello> ParseHello(std::string_view body) {
  ByteReader reader(body);
  if (!ReadType(&reader, FrameType::kHello)) {
    return FrameCorruption("bad hello type");
  }
  uint8_t kind = 0;
  Hello hello;
  if (!reader.ReadU8(&kind) || kind > 1 || !reader.ReadU64(&hello.id) ||
      !reader.AtEnd()) {
    return FrameCorruption("malformed hello");
  }
  hello.kind = static_cast<PeerKind>(kind);
  return hello;
}

Result<ClientRequest> ParseClientRequest(std::string_view body) {
  ByteReader reader(body);
  if (!ReadType(&reader, FrameType::kClientRequest)) {
    return FrameCorruption("bad request type");
  }
  ClientRequest req;
  uint8_t op = 0;
  if (!reader.ReadU64(&req.request_id) || !reader.ReadU8(&op) || op < 1 ||
      op > 3 || !reader.ReadString(&req.key) ||
      !reader.ReadString(&req.value) || !reader.ReadU32(&req.zone) ||
      !reader.AtEnd()) {
    return FrameCorruption("malformed client request");
  }
  req.op = static_cast<ClientOp>(op);
  return req;
}

Result<ClientReply> ParseClientReply(std::string_view body) {
  ByteReader reader(body);
  if (!ReadType(&reader, FrameType::kClientReply)) {
    return FrameCorruption("bad reply type");
  }
  ClientReply reply;
  if (!reader.ReadU64(&reply.request_id) ||
      !reader.ReadU8(&reply.status_code) || !reader.ReadString(&reply.value) ||
      !reader.ReadU64(&reply.watermark) || !reader.ReadU32(&reply.redirect) ||
      !reader.AtEnd()) {
    return FrameCorruption("malformed client reply");
  }
  return reply;
}

void FrameDecoder::Fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (failed_) return;
  // Compact the consumed prefix before appending so the buffer stays
  // bounded by (one partial frame + one read chunk) regardless of how
  // long the stream runs.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Next FrameDecoder::Pop(std::string_view* body) {
  if (failed_) return Next::kError;
  const size_t available = buffer_.size() - pos_;
  if (available < 4) return Next::kNeedMore;
  uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + pos_, 4);
  // Validate the prefix before using it for anything: a hostile length
  // must not cause a reserve, a wait for gigabytes, or an overflow.
  if (length == 0) {
    Fail("zero-length frame");
    return Next::kError;
  }
  if (length > max_frame_bytes_) {
    Fail("frame exceeds max size");
    return Next::kError;
  }
  if (available < kFrameHeaderBytes) return Next::kNeedMore;
  if (available - kFrameHeaderBytes < length) return Next::kNeedMore;
  uint32_t expected_crc = 0;
  std::memcpy(&expected_crc, buffer_.data() + pos_ + 4, 4);
  const std::string_view candidate =
      std::string_view(buffer_).substr(pos_ + kFrameHeaderBytes, length);
  // Verify before yielding: a frame that was damaged in flight but whose
  // fields would still parse must never reach the caller — mis-learned
  // state (a flipped Decide payload) is unrecoverable, a closed
  // connection is routine.
  if (Crc32(candidate) != expected_crc) {
    Fail("frame checksum mismatch");
    return Next::kError;
  }
  *body = candidate;
  pos_ += kFrameHeaderBytes + static_cast<size_t>(length);
  return Next::kFrame;
}

}  // namespace dpaxos
