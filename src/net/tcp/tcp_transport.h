// Real-socket Transport implementation on top of EventLoop.
//
// One listening socket per node accepts both peer-node and external
// client connections; the first frame on every connection is a HELLO
// declaring which (see net/tcp/framing.h). For node traffic each node
// WRITES only on connections it dialed itself and treats accepted node
// connections as receive-only, so a pair of nodes exchanging messages
// holds two sockets — no simultaneous-open coordination, no connection
// ownership tiebreak.
//
// Delivery contract: exactly the Transport::Send contract (may drop, may
// duplicate, no cross-peer ordering). Concretely this implementation
//   * drops the oldest queued frame when a peer's bounded outbound queue
//     overflows (slow/unreachable peer),
//   * drops whatever was queued or half-written when a connection dies,
//   * redials with jittered exponential backoff (the catch-up retry
//     shape: base * 2^attempt * [1,2), capped).
// Paxos tolerates all of this by design; transport_test asserts the
// implementation stays inside the contract under forced disconnects.
//
// Defensive decoding: frames above the max-size cap, zero-length frames,
// undecodable node messages and protocol-order violations (no HELLO
// first, client frames on node connections) close the offending
// connection and count tcp_malformed_frames — never crash, never block
// other peers.
#ifndef DPAXOS_NET_TCP_TCP_TRANSPORT_H_
#define DPAXOS_NET_TCP_TCP_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/tcp/event_loop.h"
#include "net/tcp/framing.h"
#include "net/tcp/socket_util.h"
#include "net/transport.h"

namespace dpaxos {

struct TcpTransportOptions {
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-peer bound on frames awaiting transmission; overflow evicts the
  /// OLDEST frame (UDP-like may-drop, and old consensus traffic is the
  /// least useful to deliver late).
  size_t max_queued_frames = 1024;
  /// Reconnect backoff: base * 2^attempt * [1, 2), capped.
  Duration reconnect_backoff_base = 50 * kMillisecond;
  Duration reconnect_backoff_cap = 2 * kSecond;
  int listen_backlog = 64;
  /// Delay before a queued frame is flushed to the socket. The default 0
  /// still coalesces: the flush timer fires at the END of the current
  /// poll round, so every frame queued while dispatching one epoll batch
  /// shares a single gather write. Raising it trades latency for bigger
  /// batches under light load.
  Duration flush_delay = 0;
};

/// Instance-level traffic counters (ThreadPerfCounters() mirrors these
/// process-wide; see tcp_* fields in common/perf_counters.h).
struct TcpTransportStats {
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t frames_dropped = 0;
  uint64_t reconnects = 0;
  uint64_t accepts = 0;
  uint64_t malformed_frames = 0;
  uint64_t writev_calls = 0;      ///< gather-write syscalls issued
  uint64_t frames_coalesced = 0;  ///< frames that shared a syscall (batch-1)
};

/// \brief TCP Transport for one node of a real cluster.
class TcpTransport final : public Transport {
 public:
  /// `cluster[n]` is node n's listen endpoint; `cluster[self]` is ours.
  /// `loop` must outlive the transport; all calls are loop-thread only.
  TcpTransport(EventLoop* loop, NodeId self, std::vector<HostPort> cluster,
               TcpTransportOptions options = {});
  ~TcpTransport() override;

  /// Wire codec hooks, same shape as SimTransport::set_wire_codec (the
  /// net layer stays independent of the protocol message set). Must be
  /// installed before the first Send/delivery.
  using Encoder = SimTransport::Encoder;
  using Decoder = SimTransport::Decoder;
  void set_wire_codec(Encoder encode, Decoder decode) {
    encode_ = std::move(encode);
    decode_ = std::move(decode);
  }

  /// Bind + listen on cluster[self]. Call once before the loop runs.
  Status Listen();
  /// The actually-bound listen port (differs from the spec when the
  /// endpoint was given port 0).
  uint16_t listen_port() const { return listen_port_; }

  // --- Transport ------------------------------------------------------
  void RegisterHandler(NodeId node, Handler handler) override;
  void Send(NodeId from, NodeId to, MessagePtr msg) override;

  // --- external clients ----------------------------------------------
  /// `conn` identifies the client connection for SendClientReply;
  /// `client_id` is the id the client declared in its HELLO (servers tag
  /// transactions with it for exactly-once dedup).
  using ClientRequestHandler = std::function<void(
      uint64_t conn, uint64_t client_id, const ClientRequest&)>;
  void set_client_request_handler(ClientRequestHandler handler) {
    client_handler_ = std::move(handler);
  }
  /// Queue a reply on a client connection; no-op if it already closed.
  void SendClientReply(uint64_t conn, const ClientReply& reply);

  // --- introspection & fault injection -------------------------------
  const TcpTransportStats& stats() const { return stats_; }
  size_t open_connections() const { return conns_.size(); }
  NodeId self() const { return self_; }

  /// Hand accepted connections to an external owner (the multi-reactor
  /// pool) instead of serving them on this loop. Called with the fresh
  /// nonblocking fd (TCP_NODELAY already set) before any byte is read;
  /// the callee owns the fd from then on. Accepts still count in stats.
  void set_accept_handoff(std::function<void(int fd)> handoff) {
    accept_handoff_ = std::move(handoff);
  }

  /// Deliver an already-decoded node message to the registered handler as
  /// if it had arrived on a socket owned by this transport — the reinject
  /// path for node frames read on reactor threads.
  void InjectDelivery(NodeId from, const MessagePtr& msg);

  /// Test hook: fix up a peer endpoint after it bound an ephemeral port.
  void UpdatePeerAddress(NodeId node, HostPort addr);

  /// Test hook (forced-disconnect nemesis): hard-close every open
  /// connection. Outbound peers redial with backoff; queued and
  /// half-written frames are dropped, which the Send contract allows.
  void CloseAllConnections();

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    bool inbound = false;
    bool established = false;  ///< TCP connect completed (outbound)
    bool hello_done = false;   ///< inbound: peer identified itself
    PeerKind kind = PeerKind::kNode;
    uint64_t peer_id = 0;   ///< HELLO id (NodeId or client id)
    NodeId peer_node = 0;   ///< outbound: dialed node
    FrameDecoder decoder;
    /// Frames staged for this socket, flushed with one gather write per
    /// syscall. outpos is the bytes of the FRONT frame already written
    /// (partial-write resumption); outq_bytes is the staged total that
    /// bounds refill from the peer queue.
    std::deque<std::string> outq;
    size_t outpos = 0;
    size_t outq_bytes = 0;
    bool want_write = false;
    bool flush_scheduled = false;  ///< a flush timer is pending
  };

  /// Per-peer outbound state; survives connection churn (the queue is
  /// what reconnects drain).
  struct PeerState {
    std::deque<std::string> queue;  ///< encoded frames awaiting a socket
    uint64_t conn_id = 0;           ///< current outbound conn, 0 if none
    EventId reconnect_timer = 0;
    uint32_t attempts = 0;       ///< consecutive failed dials
    bool ever_connected = false;  ///< distinguishes connects from reconnects
  };

  void AcceptReady();
  void ConnEvent(uint64_t conn_id, uint32_t events);
  void ReadReady(Conn* conn);
  bool ConsumeFrame(Conn* conn, std::string_view body);
  void FlushConn(Conn* conn);
  /// Arm the per-conn flush timer (no-op if one is already pending).
  void ScheduleFlush(Conn* conn);
  /// Stage one encoded frame on the conn (counts frames_out).
  void StageFrame(Conn* conn, std::string frame);
  void EnsureConnected(NodeId to);
  void OnOutboundUp(Conn* conn);
  void OnConnError(uint64_t conn_id);
  void CloseConn(uint64_t conn_id);
  void ScheduleReconnect(NodeId to);
  Duration ReconnectDelay(uint32_t attempt);
  void MarkMalformed(Conn* conn, const char* why);
  Conn* FindConn(uint64_t conn_id);
  void UpdateWriteInterest(Conn* conn);

  EventLoop* loop_;
  NodeId self_;
  std::vector<HostPort> cluster_;
  TcpTransportOptions options_;
  Handler handler_;
  ClientRequestHandler client_handler_;
  std::function<void(int fd)> accept_handoff_;
  Encoder encode_;
  Decoder decode_;
  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<PeerState> peers_;
  TcpTransportStats stats_;
  std::string encode_buffer_;  // reused across Send calls
  /// Flipped by the destructor so in-flight self-delivery closures
  /// scheduled on the loop become no-ops instead of use-after-free.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_TCP_TRANSPORT_H_
