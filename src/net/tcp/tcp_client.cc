#include "net/tcp/tcp_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dpaxos {

Timestamp TcpClient::NowMillis() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1000 +
         static_cast<Timestamp>(ts.tv_nsec) / 1'000'000;
}

Status TcpClient::Connect(const HostPort& addr, Duration timeout) {
  Close();
  Result<int> fd = StartConnect(addr);
  if (!fd.ok()) return fd.status();
  pollfd pfd{fd.value(), POLLOUT, 0};
  const int rc = poll(&pfd, 1, static_cast<int>(timeout / kMillisecond));
  if (rc <= 0) {
    close(fd.value());
    return Status::TimedOut("connect " + addr.ToString());
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd.value(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    close(fd.value());
    return Status::Unavailable("connect " + addr.ToString() + ": " +
                               std::strerror(err));
  }
  fd_ = fd.value();
  decoder_ = FrameDecoder();
  Hello hello;
  hello.kind = PeerKind::kClient;
  hello.id = client_id_;
  Status st = SendAll(EncodeHelloFrame(hello),
                      NowMillis() + timeout / kMillisecond);
  if (!st.ok()) Close();
  return st;
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status TcpClient::SendAll(std::string_view bytes, Timestamp deadline_ms) {
  size_t off = 0;
  while (off < bytes.size()) {
    const Timestamp now = NowMillis();
    if (now >= deadline_ms) return Status::TimedOut("send");
    pollfd pfd{fd_, POLLOUT, 0};
    const int rc = poll(&pfd, 1, static_cast<int>(deadline_ms - now));
    if (rc <= 0) return Status::TimedOut("send");
    const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<ClientReply> TcpClient::Call(ClientOp op, std::string_view key,
                                    std::string_view value, Duration timeout) {
  return CallWithId(next_request_id_++, op, key, value, timeout);
}

Result<ClientReply> TcpClient::CallWithId(uint64_t request_id, ClientOp op,
                                          std::string_view key,
                                          std::string_view value,
                                          Duration timeout) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  ClientRequest req;
  req.request_id = request_id;
  req.op = op;
  req.key = std::string(key);
  req.value = std::string(value);
  req.zone = zone_;
  const Timestamp deadline_ms = NowMillis() + timeout / kMillisecond;
  Status st = SendAll(EncodeClientRequestFrame(req), deadline_ms);
  if (!st.ok()) {
    Close();
    return st;
  }
  char buf[65536];
  for (;;) {
    // Drain any buffered frames first.
    std::string_view body;
    for (;;) {
      const FrameDecoder::Next next = decoder_.Pop(&body);
      if (next == FrameDecoder::Next::kError) {
        Close();
        return Status::Corruption("client stream: " + decoder_.error());
      }
      if (next == FrameDecoder::Next::kNeedMore) break;
      Result<ClientReply> reply = ParseClientReply(body);
      if (!reply.ok()) {
        Close();
        return reply.status();
      }
      // Replies to requests we gave up on are skipped, not errors.
      if (reply->request_id == req.request_id) return reply;
    }
    const Timestamp now = NowMillis();
    if (now >= deadline_ms) return Status::TimedOut("call");
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = poll(&pfd, 1, static_cast<int>(deadline_ms - now));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return Status::TimedOut("call");
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    Close();
    return Status::Unavailable("connection closed by server");
  }
}

Status TcpClient::Put(std::string_view key, std::string_view value,
                      Duration timeout) {
  Result<ClientReply> reply = Call(ClientOp::kPut, key, value, timeout);
  if (!reply.ok()) return reply.status();
  if (reply->status_code != 0) {
    return Status::Unavailable("put failed: server status " +
                               std::to_string(reply->status_code) +
                               (reply->value.empty() ? "" : ": ") +
                               reply->value);
  }
  return Status::OK();
}

Result<std::string> TcpClient::Get(std::string_view key, Duration timeout) {
  Result<ClientReply> reply = Call(ClientOp::kGet, key, "", timeout);
  if (!reply.ok()) return reply.status();
  if (reply->status_code != 0) {
    return Status::NotFound("get failed: server status " +
                            std::to_string(reply->status_code));
  }
  return reply->value;
}

Result<std::string> TcpClient::Stats(Duration timeout) {
  Result<ClientReply> reply = Call(ClientOp::kStats, "", "", timeout);
  if (!reply.ok()) return reply.status();
  return reply->value;
}

namespace {

Timestamp MonotonicMillis() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1000 +
         static_cast<Timestamp>(ts.tv_nsec) / 1'000'000;
}

void SleepMicros(Duration us) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(us / kSecond);
  ts.tv_nsec = static_cast<long>((us % kSecond) * 1000);
  nanosleep(&ts, nullptr);
}

}  // namespace

FailoverTcpClient::FailoverTcpClient(uint64_t client_id,
                                     std::vector<HostPort> endpoints)
    : FailoverTcpClient(client_id, std::move(endpoints), Options()) {}

FailoverTcpClient::FailoverTcpClient(uint64_t client_id,
                                     std::vector<HostPort> endpoints,
                                     Options options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      client_(client_id) {}

FailoverTcpClient::CallResult FailoverTcpClient::Call(ClientOp op,
                                                      std::string_view key,
                                                      std::string_view value) {
  CallResult result;
  if (endpoints_.empty()) {
    result.status = Status::FailedPrecondition("no endpoints");
    return result;
  }
  const uint64_t request_id = next_request_id_++;
  const Timestamp deadline_ms =
      MonotonicMillis() + options_.overall_timeout / kMillisecond;
  Status last = Status::Unavailable("never attempted");
  auto rotate = [this, &result] {
    client_.Close();
    current_ = (current_ + 1) % endpoints_.size();
    ++result.failovers;
    ++total_failovers_;
  };
  for (;;) {
    const Timestamp now = MonotonicMillis();
    if (now >= deadline_ms) break;
    const Duration remaining = (deadline_ms - now) * kMillisecond;
    ++result.attempts;
    if (!client_.connected()) {
      const Duration budget = options_.connect_timeout < remaining
                                  ? options_.connect_timeout
                                  : remaining;
      Status st = client_.Connect(endpoints_[current_], budget);
      if (!st.ok()) {
        last = st;
        rotate();
        SleepMicros(options_.retry_backoff);
        continue;
      }
    }
    const Duration budget =
        options_.attempt_timeout < remaining ? options_.attempt_timeout
                                             : remaining;
    Result<ClientReply> reply =
        client_.CallWithId(request_id, op, key, value, budget);
    // The connection was live, so the request (re)send at least reached
    // the kernel: from here on a lost reply is indeterminate, not failed.
    result.ever_sent = true;
    if (reply.ok()) {
      const StatusCode code = static_cast<StatusCode>(reply->status_code);
      if (code == StatusCode::kOk ||
          (op == ClientOp::kGet && code == StatusCode::kNotFound)) {
        result.reply = std::move(reply).value();
        result.status = Status::OK();
        // Ownership redirect hint: the request was still answered (the
        // server forwards misdirected work), but the NEXT operation
        // should dial the partition's owner directly. Endpoint lists
        // follow the --serve convention of index == node id.
        const uint32_t hint = result.reply.redirect;
        if (hint != kInvalidIdWire && hint < endpoints_.size() &&
            hint != current_) {
          client_.Close();
          current_ = hint;
          ++redirects_followed_;
        }
        return result;
      }
      // Definitive server-side error (preempted proposal, forward
      // failure, ...): another replica may fare better.
      last = Status::Unavailable("server status " +
                                 std::to_string(reply->status_code));
    } else {
      last = reply.status();
    }
    rotate();
    SleepMicros(options_.retry_backoff);
  }
  result.status = last.ok() ? Status::TimedOut("call") : last;
  return result;
}

}  // namespace dpaxos
