#include "net/tcp/tcp_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dpaxos {

Timestamp TcpClient::NowMillis() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1000 +
         static_cast<Timestamp>(ts.tv_nsec) / 1'000'000;
}

Status TcpClient::Connect(const HostPort& addr, Duration timeout) {
  Close();
  Result<int> fd = StartConnect(addr);
  if (!fd.ok()) return fd.status();
  pollfd pfd{fd.value(), POLLOUT, 0};
  const int rc = poll(&pfd, 1, static_cast<int>(timeout / kMillisecond));
  if (rc <= 0) {
    close(fd.value());
    return Status::TimedOut("connect " + addr.ToString());
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd.value(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    close(fd.value());
    return Status::Unavailable("connect " + addr.ToString() + ": " +
                               std::strerror(err));
  }
  fd_ = fd.value();
  decoder_ = FrameDecoder();
  Hello hello;
  hello.kind = PeerKind::kClient;
  hello.id = client_id_;
  Status st = SendAll(EncodeHelloFrame(hello),
                      NowMillis() + timeout / kMillisecond);
  if (!st.ok()) Close();
  return st;
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status TcpClient::SendAll(std::string_view bytes, Timestamp deadline_ms) {
  size_t off = 0;
  while (off < bytes.size()) {
    const Timestamp now = NowMillis();
    if (now >= deadline_ms) return Status::TimedOut("send");
    pollfd pfd{fd_, POLLOUT, 0};
    const int rc = poll(&pfd, 1, static_cast<int>(deadline_ms - now));
    if (rc <= 0) return Status::TimedOut("send");
    const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<ClientReply> TcpClient::Call(ClientOp op, std::string_view key,
                                    std::string_view value, Duration timeout) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  ClientRequest req;
  req.request_id = next_request_id_++;
  req.op = op;
  req.key = std::string(key);
  req.value = std::string(value);
  const Timestamp deadline_ms = NowMillis() + timeout / kMillisecond;
  Status st = SendAll(EncodeClientRequestFrame(req), deadline_ms);
  if (!st.ok()) {
    Close();
    return st;
  }
  char buf[65536];
  for (;;) {
    // Drain any buffered frames first.
    std::string_view body;
    for (;;) {
      const FrameDecoder::Next next = decoder_.Pop(&body);
      if (next == FrameDecoder::Next::kError) {
        Close();
        return Status::Corruption("client stream: " + decoder_.error());
      }
      if (next == FrameDecoder::Next::kNeedMore) break;
      Result<ClientReply> reply = ParseClientReply(body);
      if (!reply.ok()) {
        Close();
        return reply.status();
      }
      // Replies to requests we gave up on are skipped, not errors.
      if (reply->request_id == req.request_id) return reply;
    }
    const Timestamp now = NowMillis();
    if (now >= deadline_ms) return Status::TimedOut("call");
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = poll(&pfd, 1, static_cast<int>(deadline_ms - now));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return Status::TimedOut("call");
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    Close();
    return Status::Unavailable("connection closed by server");
  }
}

Status TcpClient::Put(std::string_view key, std::string_view value,
                      Duration timeout) {
  Result<ClientReply> reply = Call(ClientOp::kPut, key, value, timeout);
  if (!reply.ok()) return reply.status();
  if (reply->status_code != 0) {
    return Status::Unavailable("put failed: server status " +
                               std::to_string(reply->status_code) +
                               (reply->value.empty() ? "" : ": ") +
                               reply->value);
  }
  return Status::OK();
}

Result<std::string> TcpClient::Get(std::string_view key, Duration timeout) {
  Result<ClientReply> reply = Call(ClientOp::kGet, key, "", timeout);
  if (!reply.ok()) return reply.status();
  if (reply->status_code != 0) {
    return Status::NotFound("get failed: server status " +
                            std::to_string(reply->status_code));
  }
  return reply->value;
}

Result<std::string> TcpClient::Stats(Duration timeout) {
  Result<ClientReply> reply = Call(ClientOp::kStats, "", "", timeout);
  if (!reply.ok()) return reply.status();
  return reply->value;
}

}  // namespace dpaxos
