// Multi-reactor connection service for NodeServer.
//
// N reactor threads, each running its own EventLoop, own the sockets the
// acceptor hands off (round-robin): they read, frame-decode and
// wire-decode inbound traffic and write replies with the same gather
// (sendmsg) coalescing as TcpTransport. Protocol work stays serialized:
// every decoded node message and client request is posted to the
// replica's HOME loop (EventLoop::PostTask — lock-free MPSC), so Replica
// and the state machine remain single-threaded. One readable event's
// whole drain becomes ONE home task (a batch), amortizing the cross-
// thread handoff the same way the sim's DeliveryBatch pooling amortizes
// dispatch.
//
// Identity: connections served here get tokens with the reactor index in
// the top 16 bits (((reactor+1) << 48) | conn_id), disjoint from
// TcpTransport's conn ids — NodeServer routes SendClientReply on that
// tag. Replies are batched on the home side too: a 0-delay timer folds
// all replies of a home dispatch round into one PostTask per reactor.
//
// Threading contract: Start/Stop/Adopt/SendClientReply and the two
// handlers run on the home thread; everything socket-side runs on the
// owning reactor thread; stats are relaxed atomics readable anywhere.
#ifndef DPAXOS_NET_TCP_REACTOR_POOL_H_
#define DPAXOS_NET_TCP_REACTOR_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/tcp/event_loop.h"
#include "net/tcp/framing.h"
#include "net/transport.h"

namespace dpaxos {

struct ReactorPoolOptions {
  uint32_t reactors = 1;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cluster size, for validating node HELLO ids (0 rejects all node
  /// peers — client-only pools).
  size_t num_nodes = 0;
  uint64_t seed = 1;
  /// Extra hold time before the staged replies cross to the reactors.
  /// 0 flushes at the end of the current home dispatch round (lowest
  /// latency, but under closed-loop load each round often carries a
  /// single reply, so writev coalescing gets nothing to merge). A small
  /// delay (tens of microseconds) widens the coalescing window across
  /// rounds at that much added reply latency; see docs/perf.md.
  Duration reply_flush_delay = 0;
};

/// Aggregated pool counters (one snapshot across all reactors).
struct ReactorPoolStats {
  uint64_t conns_adopted = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t writev_calls = 0;
  uint64_t frames_coalesced = 0;
  uint64_t malformed_frames = 0;
  uint64_t rounds_busy = 0;
  uint64_t rounds_idle = 0;
};

/// \brief Reactor thread pool serving accepted connections.
class ReactorPool {
 public:
  /// `home` is the replica's loop; must outlive the pool.
  ReactorPool(EventLoop* home, ReactorPoolOptions options);
  ~ReactorPool();

  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  /// Decoded node message from a peer connection; runs on the home loop.
  using NodeMessageHandler = std::function<void(NodeId from, MessagePtr msg)>;
  /// Client request with its connection token; runs on the home loop.
  using ClientRequestHandler = std::function<void(
      uint64_t conn_token, uint64_t client_id, const ClientRequest& req)>;

  void set_node_message_handler(NodeMessageHandler handler) {
    node_handler_ = std::move(handler);
  }
  void set_client_request_handler(ClientRequestHandler handler) {
    client_handler_ = std::move(handler);
  }
  /// Wire decoder for node-message bodies. Must be a pure function: it
  /// runs on reactor threads.
  void set_wire_decoder(SimTransport::Decoder decode) {
    decode_ = std::move(decode);
  }

  /// Spawn the reactor threads. Handlers must already be installed.
  void Start();
  /// Stop and join all reactors, closing their connections. Idempotent.
  void Stop();

  /// Take ownership of a freshly accepted fd (nonblocking, NODELAY set)
  /// and pin it to the next reactor round-robin. Home thread.
  void Adopt(int fd);

  /// Queue a reply for a pool-served connection (token from the request
  /// handler). No-op if the connection is gone. Home thread.
  void SendClientReply(uint64_t conn_token, const ClientReply& reply);

  uint32_t reactors() const { return static_cast<uint32_t>(shards_.size()); }
  ReactorPoolStats stats() const;

 private:
  struct RConn {
    uint64_t id = 0;
    int fd = -1;
    bool hello_done = false;
    PeerKind kind = PeerKind::kNode;
    uint64_t peer_id = 0;
    FrameDecoder decoder;
    std::deque<std::string> outq;  ///< staged frames (gather-written)
    size_t outpos = 0;             ///< written bytes of the front frame
    size_t outq_bytes = 0;
    bool want_write = false;
  };

  /// One reactor: loop + thread + the conns pinned to it. The conns map
  /// is touched ONLY by the reactor thread (and by Stop after join).
  struct Shard {
    explicit Shard(uint64_t seed) : loop(seed) {}
    EventLoop loop;
    std::thread thread;
    uint32_t index = 0;
    uint64_t next_conn_id = 1;
    std::unordered_map<uint64_t, std::unique_ptr<RConn>> conns;
  };

  /// One decoded inbound frame, posted home in per-drain batches.
  struct InboundItem {
    bool is_node = false;
    NodeId from = 0;          // node messages
    MessagePtr msg;           // node messages
    uint64_t conn_token = 0;  // client requests
    uint64_t client_id = 0;   // client requests
    ClientRequest req;        // client requests
  };

  void ReactorMain(Shard* shard);
  void AdoptOnReactor(Shard* shard, int fd);
  void ConnEvent(Shard* shard, uint64_t conn_id, uint32_t events);
  void ReadReady(Shard* shard, RConn* conn);
  /// Returns false when the frame poisoned the connection.
  bool ConsumeFrame(Shard* shard, RConn* conn, std::string_view body,
                    std::vector<InboundItem>* batch);
  void DispatchBatch(std::vector<InboundItem> batch);
  void FlushConn(Shard* shard, RConn* conn);
  void CloseConn(Shard* shard, uint64_t conn_id);
  void ScheduleReplyFlush();

  EventLoop* home_;
  ReactorPoolOptions options_;
  NodeMessageHandler node_handler_;
  ClientRequestHandler client_handler_;
  SimTransport::Decoder decode_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint32_t next_shard_ = 0;  ///< round-robin cursor (home thread)
  /// Replies staged per reactor between home flush rounds (home thread).
  std::vector<std::vector<std::pair<uint64_t, std::string>>> pending_replies_;
  bool reply_flush_scheduled_ = false;
  std::atomic<bool> stop_{true};
  bool started_ = false;

  // Pool counters (relaxed; summed into ReactorPoolStats snapshots).
  std::atomic<uint64_t> conns_adopted_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> writev_calls_{0};
  std::atomic<uint64_t> frames_coalesced_{0};
  std::atomic<uint64_t> malformed_frames_{0};
  std::atomic<uint64_t> rounds_busy_{0};
  std::atomic<uint64_t> rounds_idle_{0};
  /// Destructor guard for timers the pool schedules on the home loop.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Token layout: reactor index + 1 in the top 16 bits. TcpTransport conn
/// ids never reach that range, so NodeServer can route replies by tag.
inline uint64_t ReactorConnToken(uint32_t reactor_index, uint64_t conn_id) {
  return (static_cast<uint64_t>(reactor_index + 1) << 48) | conn_id;
}
inline uint32_t ReactorIndexOfToken(uint64_t token) {
  return static_cast<uint32_t>(token >> 48) - 1;
}
inline bool IsReactorConnToken(uint64_t token) { return (token >> 48) != 0; }

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_REACTOR_POOL_H_
