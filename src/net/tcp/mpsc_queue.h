// Lock-free unbounded multi-producer / single-consumer queue (Vyukov's
// intrusive MPSC algorithm, node-per-item variant).
//
// This is the inbound spine of the multi-reactor NodeServer: every
// reactor thread (producer) pushes decoded work at the replica's home
// loop (the single consumer), and the home loop drains between poll
// rounds. Push is wait-free apart from the node allocation: one
// exchange on the head pointer plus one release store to link the
// predecessor. TryPop is consumer-thread-only and never blocks.
//
// Consistency window: a producer that has exchanged the head but not
// yet linked its node leaves the chain momentarily broken — TryPop
// then reports empty even though later pushes exist behind the gap.
// That is safe here because every EventLoop::PostTask pairs its Push
// with a Wakeup() *after* the link completes, so the consumer is
// always re-woken once the chain heals. (tests/mpsc_queue_test.cc
// hammers this with concurrent producers.)
#ifndef DPAXOS_NET_TCP_MPSC_QUEUE_H_
#define DPAXOS_NET_TCP_MPSC_QUEUE_H_

#include <atomic>
#include <utility>

namespace dpaxos {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscQueue() {
    // Consumer-side teardown: drain remaining items, then free the stub.
    T ignored;
    while (TryPop(&ignored)) {
    }
    delete tail_;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Any thread. The item is visible to TryPop once the release store
  /// below completes.
  void Push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer thread only. False when empty (or momentarily broken by
  /// an in-flight Push — see the header comment).
  bool TryPop(T* out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    *out = std::move(next->value);
    tail_ = next;
    delete tail;
    return true;
  }

  /// Consumer-side emptiness hint (same caveat as TryPop).
  bool Empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;  ///< producers append here
  Node* tail_;               ///< consumer pops here (owns the stub)
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_MPSC_QUEUE_H_
