#include "net/tcp/reactor_pool.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

namespace {

// Same gather-write batch limits as TcpTransport::FlushConn.
constexpr size_t kMaxIovPerWrite = 64;
constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

ReactorPool::ReactorPool(EventLoop* home, ReactorPoolOptions options)
    : home_(home), options_(options) {
  DPAXOS_CHECK(options_.reactors >= 1);
}

ReactorPool::~ReactorPool() {
  *alive_ = false;
  Stop();
}

void ReactorPool::Start() {
  DPAXOS_CHECK(!started_);
  started_ = true;
  stop_.store(false, kRelaxed);
  pending_replies_.assign(options_.reactors, {});
  shards_.reserve(options_.reactors);
  for (uint32_t i = 0; i < options_.reactors; ++i) {
    auto shard = std::make_unique<Shard>(options_.seed + 0x9e3779b9u * (i + 1));
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw]() { ReactorMain(raw); });
  }
}

void ReactorPool::Stop() {
  if (!started_) return;
  stop_.store(true, kRelaxed);
  for (auto& shard : shards_) shard->loop.Stop();  // thread-safe wakeup
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Threads are joined: their conns can be torn down from here.
  for (auto& shard : shards_) {
    for (auto& [id, conn] : shard->conns) {
      shard->loop.UnwatchFd(conn->fd);
      close(conn->fd);
    }
    shard->conns.clear();
  }
  shards_.clear();
  pending_replies_.clear();
  started_ = false;
}

void ReactorPool::ReactorMain(Shard* shard) {
  while (!stop_.load(kRelaxed)) {
    if (shard->loop.PollOnce(100 * kMillisecond)) {
      rounds_busy_.fetch_add(1, kRelaxed);
    } else {
      rounds_idle_.fetch_add(1, kRelaxed);
    }
  }
}

ReactorPoolStats ReactorPool::stats() const {
  ReactorPoolStats s;
  s.conns_adopted = conns_adopted_.load(kRelaxed);
  s.bytes_in = bytes_in_.load(kRelaxed);
  s.bytes_out = bytes_out_.load(kRelaxed);
  s.frames_in = frames_in_.load(kRelaxed);
  s.frames_out = frames_out_.load(kRelaxed);
  s.writev_calls = writev_calls_.load(kRelaxed);
  s.frames_coalesced = frames_coalesced_.load(kRelaxed);
  s.malformed_frames = malformed_frames_.load(kRelaxed);
  s.rounds_busy = rounds_busy_.load(kRelaxed);
  s.rounds_idle = rounds_idle_.load(kRelaxed);
  return s;
}

void ReactorPool::Adopt(int fd) {
  if (!started_) {
    close(fd);
    return;
  }
  Shard* shard = shards_[next_shard_ % shards_.size()].get();
  ++next_shard_;
  conns_adopted_.fetch_add(1, kRelaxed);
  shard->loop.PostTask([this, shard, fd]() { AdoptOnReactor(shard, fd); });
}

void ReactorPool::AdoptOnReactor(Shard* shard, int fd) {
  auto conn = std::make_unique<RConn>();
  conn->id = shard->next_conn_id++;
  conn->fd = fd;
  conn->decoder = FrameDecoder(options_.max_frame_bytes);
  const uint64_t id = conn->id;
  shard->conns[id] = std::move(conn);
  Status st = shard->loop.WatchFd(fd, EPOLLIN, [this, shard, id](
                                                   uint32_t events) {
    ConnEvent(shard, id, events);
  });
  if (!st.ok()) CloseConn(shard, id);
}

void ReactorPool::ConnEvent(Shard* shard, uint64_t conn_id, uint32_t events) {
  auto it = shard->conns.find(conn_id);
  if (it == shard->conns.end()) return;
  RConn* conn = it->second.get();
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConn(shard, conn_id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(shard, conn);
    it = shard->conns.find(conn_id);  // flush may have closed it
    if (it == shard->conns.end()) return;
    conn = it->second.get();
  }
  if ((events & EPOLLIN) != 0) ReadReady(shard, conn);
}

void ReactorPool::ReadReady(Shard* shard, RConn* conn) {
  const uint64_t conn_id = conn->id;
  std::vector<InboundItem> batch;
  char buf[65536];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), kRelaxed);
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view body;
      for (;;) {
        const FrameDecoder::Next next = conn->decoder.Pop(&body);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          malformed_frames_.fetch_add(1, kRelaxed);
          CloseConn(shard, conn_id);
          DispatchBatch(std::move(batch));
          return;
        }
        if (!ConsumeFrame(shard, conn, body, &batch)) {
          DispatchBatch(std::move(batch));
          return;  // conn closed
        }
      }
      continue;  // keep draining until EAGAIN
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(shard, conn_id);  // EOF or hard error
    break;
  }
  DispatchBatch(std::move(batch));
}

bool ReactorPool::ConsumeFrame(Shard* shard, RConn* conn,
                               std::string_view body,
                               std::vector<InboundItem>* batch) {
  frames_in_.fetch_add(1, kRelaxed);
  if (!conn->hello_done) {
    Result<Hello> hello = ParseHello(body);
    if (!hello.ok() ||
        (hello->kind == PeerKind::kNode && hello->id >= options_.num_nodes)) {
      malformed_frames_.fetch_add(1, kRelaxed);
      CloseConn(shard, conn->id);
      return false;
    }
    conn->hello_done = true;
    conn->kind = hello->kind;
    conn->peer_id = hello->id;
    return true;
  }
  const FrameType type = static_cast<FrameType>(body[0]);
  switch (type) {
    case FrameType::kNodeMessage: {
      if (conn->kind != PeerKind::kNode) {
        malformed_frames_.fetch_add(1, kRelaxed);
        CloseConn(shard, conn->id);
        return false;
      }
      // Wire decode on the reactor thread (pure function) so the home
      // loop only runs protocol logic on the already-built message.
      MessagePtr msg = decode_(body.substr(1));
      if (msg == nullptr) {
        malformed_frames_.fetch_add(1, kRelaxed);
        CloseConn(shard, conn->id);
        return false;
      }
      InboundItem item;
      item.is_node = true;
      item.from = static_cast<NodeId>(conn->peer_id);
      item.msg = std::move(msg);
      batch->push_back(std::move(item));
      return true;
    }
    case FrameType::kClientRequest: {
      if (conn->kind != PeerKind::kClient) {
        malformed_frames_.fetch_add(1, kRelaxed);
        CloseConn(shard, conn->id);
        return false;
      }
      Result<ClientRequest> req = ParseClientRequest(body);
      if (!req.ok()) {
        malformed_frames_.fetch_add(1, kRelaxed);
        CloseConn(shard, conn->id);
        return false;
      }
      InboundItem item;
      item.conn_token = ReactorConnToken(shard->index, conn->id);
      item.client_id = conn->peer_id;
      item.req = std::move(req.value());
      batch->push_back(std::move(item));
      return true;
    }
    default:
      malformed_frames_.fetch_add(1, kRelaxed);
      CloseConn(shard, conn->id);
      return false;
  }
}

void ReactorPool::DispatchBatch(std::vector<InboundItem> batch) {
  if (batch.empty()) return;
  std::shared_ptr<bool> alive = alive_;
  home_->PostTask([this, alive, batch = std::move(batch)]() mutable {
    if (!*alive) return;
    for (InboundItem& item : batch) {
      if (item.is_node) {
        if (node_handler_) node_handler_(item.from, std::move(item.msg));
      } else {
        if (client_handler_) {
          client_handler_(item.conn_token, item.client_id, item.req);
        }
      }
    }
  });
}

void ReactorPool::SendClientReply(uint64_t conn_token,
                                  const ClientReply& reply) {
  const uint32_t index = ReactorIndexOfToken(conn_token);
  if (!started_ || index >= shards_.size()) return;
  const uint64_t conn_id = conn_token & ((uint64_t{1} << 48) - 1);
  pending_replies_[index].emplace_back(conn_id, EncodeClientReplyFrame(reply));
  ScheduleReplyFlush();
}

void ReactorPool::ScheduleReplyFlush() {
  if (reply_flush_scheduled_) return;
  reply_flush_scheduled_ = true;
  // Default 0-delay: fires at the end of the current home dispatch round,
  // so all replies produced in the round cross to each reactor as ONE
  // task. A tunable delay holds the batch open across rounds, trading
  // reply latency for wider writev coalescing (options_.reply_flush_delay).
  std::shared_ptr<bool> alive = alive_;
  home_->Schedule(options_.reply_flush_delay, [this, alive]() {
    if (!*alive) return;
    reply_flush_scheduled_ = false;
    for (size_t i = 0; i < pending_replies_.size(); ++i) {
      if (pending_replies_[i].empty()) continue;
      auto items = std::move(pending_replies_[i]);
      pending_replies_[i].clear();
      Shard* shard = shards_[i].get();
      shard->loop.PostTask([this, shard, items = std::move(items)]() mutable {
        // Stage everything first, then flush each touched conn once —
        // the batch is the coalescing window.
        for (auto& [conn_id, frame] : items) {
          auto it = shard->conns.find(conn_id);
          if (it == shard->conns.end()) continue;  // client went away
          RConn* conn = it->second.get();
          conn->outq_bytes += frame.size();
          conn->outq.push_back(std::move(frame));
          frames_out_.fetch_add(1, kRelaxed);
        }
        for (auto& [conn_id, frame] : items) {
          (void)frame;
          auto it = shard->conns.find(conn_id);
          if (it == shard->conns.end()) continue;
          if (!it->second->outq.empty()) FlushConn(shard, it->second.get());
        }
      });
    }
  });
}

void ReactorPool::FlushConn(Shard* shard, RConn* conn) {
  for (;;) {
    if (conn->outq.empty()) break;
    iovec iov[kMaxIovPerWrite];
    size_t niov = 0;
    for (const std::string& frame : conn->outq) {
      if (niov == kMaxIovPerWrite) break;
      const size_t skip = niov == 0 ? conn->outpos : 0;
      iov[niov].iov_base = const_cast<char*>(frame.data()) + skip;
      iov[niov].iov_len = frame.size() - skip;
      ++niov;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t n = sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      writev_calls_.fetch_add(1, kRelaxed);
      bytes_out_.fetch_add(static_cast<uint64_t>(n), kRelaxed);
      size_t remaining = static_cast<size_t>(n);
      size_t covered = 0;
      while (remaining > 0) {
        std::string& front = conn->outq.front();
        const size_t left = front.size() - conn->outpos;
        ++covered;
        if (remaining >= left) {
          remaining -= left;
          conn->outq_bytes -= front.size();
          conn->outpos = 0;
          conn->outq.pop_front();
        } else {
          conn->outpos += remaining;
          remaining = 0;
        }
      }
      if (covered > 1) frames_coalesced_.fetch_add(covered - 1, kRelaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        shard->loop.UpdateFd(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(shard, conn->id);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    shard->loop.UpdateFd(conn->fd, EPOLLIN);
  }
}

void ReactorPool::CloseConn(Shard* shard, uint64_t conn_id) {
  auto it = shard->conns.find(conn_id);
  if (it == shard->conns.end()) return;
  shard->loop.UnwatchFd(it->second->fd);
  close(it->second->fd);
  shard->conns.erase(it);
}

}  // namespace dpaxos
