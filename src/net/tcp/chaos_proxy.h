// ChaosProxy: a toxiproxy-style fault-injecting TCP proxy for the
// real-network tier.
//
// One proxy instance fronts a whole cluster: it opens one listener per
// upstream node (ephemeral loopback ports) and relays every accepted
// connection to the real endpoint. The harness hands the *proxy*
// endpoints to the other nodes and to clients (see
// RealClusterOptions::peer_view), so every inter-node and client link
// crosses the proxy and can be faulted per direction:
//
//   * added latency +- jitter        (FIFO per link is preserved)
//   * probabilistic frame drop
//   * bandwidth throttle             (token-bucket pacing per direction)
//   * full / asymmetric partitions   (blackhole by zone or node)
//   * byte corruption                (random bit flips in the encoded
//                                     frame; the downstream FrameDecoder
//                                     or parser must catch it)
//   * slow-close                     (EOF propagation delayed, so the
//                                     surviving side hangs instead of
//                                     promptly redialing)
//
// The relay is frame-aware: each direction runs a FrameDecoder and
// re-emits complete frames, so drop/latency/throttle act on protocol
// frames (the unit the Send contract reasons about), never on arbitrary
// byte boundaries. Link identity comes from passively decoding the HELLO
// that opens every connection (net/tcp/framing.h); the dialed listener
// names the destination node.
//
// Threading: the proxy owns an EventLoop on a dedicated thread. All
// public methods are callable from any thread; mutations are queued and
// applied on the loop thread, stats are atomics.
#ifndef DPAXOS_NET_TCP_CHAOS_PROXY_H_
#define DPAXOS_NET_TCP_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/tcp/event_loop.h"
#include "net/tcp/framing.h"
#include "net/tcp/socket_util.h"

namespace dpaxos {

struct ChaosProxyOptions {
  /// Real node endpoints, in NodeId order. listeners()/endpoint(n) give
  /// the proxied addresses after Start().
  std::vector<HostPort> upstreams;
  /// Zone layout (nodes split evenly in NodeId order) for zone-scoped
  /// selectors.
  uint32_t zones = 1;
  uint64_t seed = 1;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  int listen_backlog = 64;
};

/// One direction's fault set. Unset fields (zeros) inject nothing; when
/// several rules match a link, the strongest value per field wins.
struct LinkFault {
  Duration latency = 0;        ///< added to every frame
  Duration jitter = 0;         ///< extra uniform [0, jitter) per frame
  double drop_rate = 0;        ///< per-frame drop probability
  double corrupt_rate = 0;     ///< per-frame bit-flip probability
  uint64_t bytes_per_sec = 0;  ///< bandwidth throttle; 0 = unlimited
  bool partitioned = false;    ///< blackhole every frame
  /// Delay between one side closing and the other side learning it.
  Duration close_delay = 0;
};

/// Matches directed links (src -> dst). Node/zone fields: kAny matches
/// everything, kClient matches external-client endpoints (clients have
/// no node id or zone), >= 0 matches that node/zone exactly.
struct LinkSelector {
  static constexpr int32_t kAny = -1;
  static constexpr int32_t kClient = -2;

  int32_t src_node = kAny;
  int32_t dst_node = kAny;
  int32_t src_zone = kAny;
  int32_t dst_zone = kAny;
};

/// Monotonic counters, snapshot via stats().
struct ChaosProxyStats {
  uint64_t conns_accepted = 0;
  uint64_t conns_closed = 0;
  uint64_t frames_relayed = 0;
  uint64_t bytes_relayed = 0;
  uint64_t frames_dropped = 0;     ///< random (drop_rate) losses
  uint64_t frames_blackholed = 0;  ///< partition losses
  uint64_t frames_corrupted = 0;
  uint64_t frames_delayed = 0;     ///< held for latency/throttle
  uint64_t links_closed = 0;       ///< connections cut by CloseLinks()

  uint64_t total_faults() const {
    return frames_dropped + frames_blackholed + frames_corrupted +
           frames_delayed + links_closed;
  }
};

/// \brief Fault-injecting TCP proxy for a RealCluster.
class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind all listeners and start the relay thread.
  Status Start();
  /// Stop the relay thread and close every connection. Idempotent.
  void Stop();

  /// The proxied address for upstream `node` (valid after Start()).
  const HostPort& endpoint(NodeId node) const { return endpoints_[node]; }
  const std::vector<HostPort>& endpoints() const { return endpoints_; }

  /// Install a fault rule on every link matching `selector`; returns a
  /// rule id for RemoveFault. Applies to live and future connections.
  uint64_t AddFault(const LinkSelector& selector, const LinkFault& fault);
  void RemoveFault(uint64_t rule_id);
  void ClearFaults();

  /// Hard-close every live connection whose (either) direction matches
  /// `selector` — reconnect churn without a standing fault.
  void CloseLinks(const LinkSelector& selector);

  ChaosProxyStats stats() const;

 private:
  struct Endpoint {
    bool is_client = true;
    NodeId node = 0;  ///< valid when !is_client
  };

  struct Rule {
    uint64_t id = 0;
    LinkSelector selector;
    LinkFault fault;
  };

  struct DelayedFrame {
    Timestamp deliver_at = 0;
    std::string bytes;
  };

  /// One direction of a proxied connection; writes to its own dst fd.
  struct Flow {
    FrameDecoder decoder;
    std::deque<DelayedFrame> delayed;
    EventId delay_timer = 0;
    Timestamp next_ready = 0;  ///< FIFO + throttle floor for deliver_at
    std::string outbuf;
    size_t outpos = 0;
    bool want_write = false;
  };

  struct ProxyConn {
    uint64_t id = 0;
    NodeId dst_node = 0;
    int client_fd = -1;    ///< accepted side
    int upstream_fd = -1;  ///< dialed side
    bool upstream_up = false;
    bool src_known = false;
    Endpoint src;          ///< accepted peer, identified by its HELLO
    Flow forward;          ///< client -> upstream
    Flow backward;         ///< upstream -> client
    EventId close_timer = 0;
  };

  void ThreadMain();
  void Post(std::function<void()> fn);
  void DrainCommands();

  void AcceptReady(size_t listener_index);
  void ConnEvent(uint64_t conn_id, bool client_side, uint32_t events);
  void ReadSide(ProxyConn* conn, bool client_side);
  void ProcessFrame(ProxyConn* conn, bool forward, std::string_view body);
  void EnqueueFrame(ProxyConn* conn, bool forward, std::string bytes,
                    Timestamp deliver_at);
  void ArmDelayTimer(uint64_t conn_id, bool forward);
  void FlushFlow(ProxyConn* conn, bool forward);
  void UpdateInterest(ProxyConn* conn, bool client_side);
  void OnSideDown(uint64_t conn_id, bool client_side);
  void CloseConn(uint64_t conn_id);
  ProxyConn* FindConn(uint64_t conn_id);

  ZoneId ZoneOf(NodeId node) const;
  bool Matches(const LinkSelector& selector, const Endpoint& src,
               const Endpoint& dst) const;
  LinkFault EffectiveFault(const Endpoint& src, const Endpoint& dst) const;
  void Corrupt(std::string* bytes);

  ChaosProxyOptions options_;
  EventLoop loop_;
  std::vector<HostPort> endpoints_;
  std::vector<int> listen_fds_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  std::mutex command_mu_;
  std::vector<std::function<void()>> commands_;
  std::atomic<uint64_t> next_rule_id_{1};

  // Loop-thread state.
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<ProxyConn>> conns_;
  std::vector<Rule> rules_;

  struct AtomicStats {
    std::atomic<uint64_t> conns_accepted{0};
    std::atomic<uint64_t> conns_closed{0};
    std::atomic<uint64_t> frames_relayed{0};
    std::atomic<uint64_t> bytes_relayed{0};
    std::atomic<uint64_t> frames_dropped{0};
    std::atomic<uint64_t> frames_blackholed{0};
    std::atomic<uint64_t> frames_corrupted{0};
    std::atomic<uint64_t> frames_delayed{0};
    std::atomic<uint64_t> links_closed{0};
  };
  AtomicStats stats_;
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_CHAOS_PROXY_H_
