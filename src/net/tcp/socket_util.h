// Small POSIX socket helpers shared by the TCP transport, the blocking
// client and the process harness. Everything returns Status/Result —
// no exceptions, no errno leaks past these functions.
#ifndef DPAXOS_NET_TCP_SOCKET_UTIL_H_
#define DPAXOS_NET_TCP_SOCKET_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dpaxos {

/// A "host:port" endpoint (IPv4 dotted quad or "localhost").
struct HostPort {
  std::string host;
  uint16_t port = 0;

  static Result<HostPort> Parse(std::string_view spec);
  std::string ToString() const;
};

/// Parse "host:port,host:port,..." (one endpoint per cluster node, in
/// NodeId order).
Result<std::vector<HostPort>> ParseClusterSpec(std::string_view csv);

/// Set O_NONBLOCK and FD_CLOEXEC.
Status SetNonBlocking(int fd);

/// Disable Nagle (consensus rounds are latency-bound small frames).
void SetNoDelay(int fd);

/// Create, bind and listen a non-blocking TCP socket. Port 0 binds an
/// ephemeral port; read it back with BoundPort().
Result<int> OpenListener(const HostPort& addr, int backlog);

/// The locally bound port of a socket (after OpenListener with port 0).
Result<uint16_t> BoundPort(int fd);

/// Start a non-blocking connect. Returns the socket; completion is
/// signalled by writability (check SO_ERROR).
Result<int> StartConnect(const HostPort& addr);

/// Reserve `n` distinct free loopback ports by binding ephemeral
/// listeners, recording their ports, then closing them. Racy by nature
/// (another process could grab a port before it is reused) but reliable
/// enough for single-host test harnesses.
Result<std::vector<uint16_t>> PickFreeLoopbackPorts(size_t n);

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_SOCKET_UTIL_H_
