// Length-prefixed, checksummed framing for the real-network runtime.
//
// Stream layout:  repeated [ u32 LE body_length | u32 LE crc32(body) | body ]
// Body layout:    [ u8 FrameType | type-specific fields ]  (LE codec from
// common/codec.h, same primitives as the protocol wire format).
//
// The CRC (common/crc32.h, same IEEE 802.3 checksum as the snapshot
// envelope) exists because a mangled frame that still *decodes* is far
// worse than one that doesn't: a bit-flipped DecideMsg whose fields all
// parse would be learned into one node's decided log and never repaired
// (anti-entropy fills holes, it does not re-audit decided slots). With
// the checksum, any in-flight damage — whether to the header or the
// body — fails the frame and closes the connection, which every caller
// already handles by reconnecting.
//
// Frame types:
//   kHello          — first frame on every connection; declares whether
//                     the peer is a cluster node or an external client
//                     and its id. Node-message frames carry no sender
//                     field: the sender is the connection's HELLO id.
//   kNodeMessage    — one protocol message, encoded by the installed
//                     wire codec (the framing layer never interprets it).
//   kClientRequest  — put/get/stats from an external client.
//   kClientReply    — response matched to the request by request_id.
//
// Defensive decoding: FrameDecoder enforces a max-frame cap and rejects
// zero-length bodies *before* trusting the length prefix — a hostile
// 0xFFFFFFFF prefix can neither drive an allocation nor make the decoder
// read past its buffer — and verifies the body checksum before yielding
// a frame. A decoder error is terminal for the stream (callers close
// the connection); this mirrors the protocol codec's "clean Corruption,
// never crash" contract fuzzed in wire_fuzz_test.
#ifndef DPAXOS_NET_TCP_FRAMING_H_
#define DPAXOS_NET_TCP_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dpaxos {

/// Upper bound on a frame body. Generously above the largest legitimate
/// frame (snapshot chunks are ~32 KiB); anything bigger is hostile or
/// corrupt and closes the connection.
inline constexpr uint32_t kDefaultMaxFrameBytes = 8u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kNodeMessage = 2,
  kClientRequest = 3,
  kClientReply = 4,
};

enum class PeerKind : uint8_t {
  kNode = 0,
  kClient = 1,
};

/// First frame on every connection.
struct Hello {
  PeerKind kind = PeerKind::kNode;
  uint64_t id = 0;  ///< NodeId for nodes, client id for clients
};

/// Client operation codes (ClientRequest::op).
enum class ClientOp : uint8_t {
  kPut = 1,    ///< replicate key=value through consensus
  kGet = 2,    ///< linearizable read (consensus barrier at the server)
  kStats = 3,  ///< server/runtime introspection (key/value unused)
};

/// On-wire encoding of "no zone declared" / "no redirect" (uint32 max,
/// matching kInvalidZone / kInvalidNode without pulling common/types.h
/// into the wire contract).
inline constexpr uint32_t kInvalidIdWire = 0xffffffffu;

struct ClientRequest {
  uint64_t request_id = 0;  ///< echoed in the reply; unique per connection
  ClientOp op = ClientOp::kPut;
  std::string key;
  std::string value;
  /// Zone the client issues from (feeds the server's per-zone access
  /// statistics in ownership mode; see docs/PROTOCOL.md §ownership).
  /// kInvalidIdWire = unknown, the legacy client default.
  uint32_t zone = kInvalidIdWire;
};

struct ClientReply {
  uint64_t request_id = 0;
  uint8_t status_code = 0;  ///< StatusCode cast to a byte (0 == OK)
  std::string value;
  /// Applied-prefix length the serving node observed when answering.
  /// Reads: the watermark the value was read at (session-guarantee
  /// checking). Writes: the commit slot, 0 on failure.
  uint64_t watermark = 0;
  /// Ownership-directory redirect hint: the node id the client should
  /// talk to for this key's partition (kInvalidIdWire = none). Set on
  /// misdirected requests in ownership mode; the request is still
  /// forwarded and answered, so following the hint is an optimization,
  /// never a correctness requirement.
  uint32_t redirect = kInvalidIdWire;
};

/// Bytes of the frame header: u32 body_length + u32 crc32(body).
inline constexpr size_t kFrameHeaderBytes = 8;

/// Append [length | crc | body] to `out` (body supplied whole).
void AppendFrame(std::string_view body, std::string* out);

/// Append a kNodeMessage frame wrapping already-wire-encoded bytes.
void AppendNodeMessageFrame(std::string_view wire_bytes, std::string* out);

std::string EncodeHelloFrame(const Hello& hello);
std::string EncodeClientRequestFrame(const ClientRequest& req);
std::string EncodeClientReplyFrame(const ClientReply& reply);

/// Parsers take a complete frame BODY (including the leading type byte)
/// and return Corruption on any structural violation, including a
/// mismatched frame type or trailing bytes.
Result<Hello> ParseHello(std::string_view body);
Result<ClientRequest> ParseClientRequest(std::string_view body);
Result<ClientReply> ParseClientReply(std::string_view body);

/// \brief Incremental frame splitter over an arbitrary byte stream.
///
/// Pure (no sockets), so the fuzzer drives it directly. Feed() appends
/// received bytes; Pop() yields complete frame bodies in order. Once
/// failed() the decoder stays failed — the caller must drop the
/// connection, since resynchronizing an untrusted stream is hopeless.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(std::string_view bytes);

  enum class Next {
    kFrame,     ///< *body holds the next complete frame body
    kNeedMore,  ///< partial frame buffered; Feed() more bytes
    kError,     ///< stream is poisoned (see error()); close the connection
  };

  /// On kFrame, `*body` views the decoder's internal buffer and stays
  /// valid until the next Feed() or Pop().
  Next Pop(std::string_view* body);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  void Fail(std::string message);

  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t pos_ = 0;  ///< consumed prefix of buffer_
  bool failed_ = false;
  std::string error_;
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_FRAMING_H_
