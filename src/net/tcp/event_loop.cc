#include "net/tcp/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/perf_counters.h"

namespace dpaxos {

namespace {

uint64_t MonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

EventLoop::EventLoop(uint64_t seed) : rng_(seed) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  DPAXOS_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wakeup_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  DPAXOS_CHECK_MSG(wakeup_fd_ >= 0, "eventfd failed");
  clock_origin_ns_ = MonotonicNanos();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  DPAXOS_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) == 0);
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Timestamp EventLoop::Now() const {
  return (MonotonicNanos() - clock_origin_ns_) / 1000;
}

uint32_t EventLoop::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::ReleaseSlot(uint32_t slot) {
  TimerSlot& s = slots_[slot];
  s.fn = EventFn();
  s.pending = false;
  ++s.generation;
  if (s.generation == 0) s.generation = 1;
  free_slots_.push_back(slot);
}

EventId EventLoop::ScheduleAt(Timestamp when, EventFn fn) {
  const uint32_t slot = AcquireSlot();
  TimerSlot& s = slots_[slot];
  s.fn = std::move(fn);
  s.when = when;
  s.seq = next_seq_++;
  s.pending = true;
  // Past-due deadlines land in the cursor's slot, which every sweep
  // revisits — they fire on the next poll round, never get stranded a
  // full wheel revolution away.
  uint64_t tick = when / kTickMicros;
  if (tick < wheel_cursor_) tick = wheel_cursor_;
  const EventId id =
      (static_cast<EventId>(s.generation) << 32) | static_cast<EventId>(slot);
  wheel_[tick % kWheelSlots].push_back(id);
  ++pending_timers_;
  next_deadline_ = std::min(next_deadline_, when);
  ++ThreadPerfCounters().events_scheduled;
  return id;
}

bool EventLoop::Cancel(EventId id) {
  const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || !slots_[slot].pending ||
      slots_[slot].generation != generation) {
    ++ThreadPerfCounters().stale_cancels;
    return false;
  }
  // The wheel entry is removed lazily: the sweep discards ids whose
  // generation no longer matches.
  ReleaseSlot(slot);
  --pending_timers_;
  ++ThreadPerfCounters().events_cancelled;
  return true;
}

void EventLoop::RecomputeNextDeadline() {
  next_deadline_ = kNoDeadline;
  if (pending_timers_ == 0) return;
  for (const TimerSlot& s : slots_) {
    if (s.pending) next_deadline_ = std::min(next_deadline_, s.when);
  }
}

size_t EventLoop::FireDueTimers() {
  const Timestamp now = Now();
  if (pending_timers_ == 0) {
    wheel_cursor_ = now / kTickMicros;
    return 0;
  }
  const uint64_t target = now / kTickMicros;
  const uint64_t first =
      target - wheel_cursor_ + 1 >= kWheelSlots ? target - (kWheelSlots - 1)
                                                : wheel_cursor_;
  struct Due {
    Timestamp when;
    uint64_t seq;
    EventId id;
  };
  std::vector<Due> due;
  for (uint64_t tick = first; tick <= target; ++tick) {
    std::vector<EventId>& cell = wheel_[tick % kWheelSlots];
    size_t kept = 0;
    for (EventId id : cell) {
      const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
      const uint32_t generation = static_cast<uint32_t>(id >> 32);
      const TimerSlot& s = slots_[slot];
      if (!s.pending || s.generation != generation) continue;  // cancelled
      if (s.when > now) {
        cell[kept++] = id;  // later revolution (or later in this tick)
        continue;
      }
      due.push_back(Due{s.when, s.seq, id});
    }
    cell.resize(kept);
  }
  wheel_cursor_ = target;
  if (due.empty()) return 0;
  // Fire in (deadline, scheduling ticket) order — the simulator's total
  // order, so tie handling matches the deterministic tier.
  std::sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  });
  size_t fired = 0;
  for (const Due& d : due) {
    const uint32_t slot = static_cast<uint32_t>(d.id & 0xffffffffu);
    const uint32_t generation = static_cast<uint32_t>(d.id >> 32);
    TimerSlot& s = slots_[slot];
    // A handler fired earlier in this batch may have cancelled this one.
    if (!s.pending || s.generation != generation) continue;
    EventFn fn = std::move(s.fn);
    ReleaseSlot(slot);
    --pending_timers_;
    ++ThreadPerfCounters().events_executed;
    ++fired;
    fn();
  }
  RecomputeNextDeadline();
  return fired;
}

void EventLoop::PostTask(std::function<void()> task) {
  posted_tasks_.Push(std::move(task));
  // The Wakeup follows the queue link (release store inside Push), so a
  // consumer woken by this write always observes the healed chain.
  Wakeup();
}

size_t EventLoop::DrainPostedTasks() {
  size_t ran = 0;
  std::function<void()> task;
  while (posted_tasks_.TryPop(&task)) {
    task();
    ++ran;
  }
  return ran;
}

int EventLoop::EpollTimeoutMs() const {
  if (stop_) return 0;
  if (next_deadline_ == kNoDeadline) return -1;
  const Timestamp now = Now();
  if (next_deadline_ <= now) return 0;
  const uint64_t delta_ms = (next_deadline_ - now + 999) / 1000;
  return static_cast<int>(std::min<uint64_t>(delta_ms, 60'000));
}

bool EventLoop::PollOnce(Duration max_wait) {
  size_t did_work = FireDueTimers() + DrainPostedTasks();
  int timeout_ms = EpollTimeoutMs();
  const int cap_ms = static_cast<int>(
      std::min<Duration>(max_wait / kMillisecond, 60'000));
  if (timeout_ms < 0 || timeout_ms > cap_ms) timeout_ms = cap_ms;
  if (did_work > 0) timeout_ms = 0;  // don't sleep with work already done
  epoll_event events[128];
  const int n = epoll_wait(epoll_fd_, events, 128, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wakeup_fd_) {
      uint64_t drained = 0;
      ssize_t ignored = read(wakeup_fd_, &drained, sizeof(drained));
      (void)ignored;
      continue;
    }
    // Look up at dispatch time (an earlier handler in this batch may
    // have unwatched this fd) and invoke a copy, so a handler that
    // unwatches ITSELF does not destroy the callable mid-call.
    auto it = fd_handlers_.find(fd);
    if (it == fd_handlers_.end()) continue;
    FdHandler handler = it->second;
    handler(events[i].events);
    ++did_work;
  }
  // Tasks posted while we slept in epoll_wait (the Wakeup path), then
  // timers the dispatched handlers armed at 0 delay — this is what makes
  // the 0-delay flush timer coalesce a whole dispatch round into one
  // gather write before the loop sleeps again.
  did_work += DrainPostedTasks();
  did_work += FireDueTimers();
  return did_work > 0;
}

Status EventLoop::WatchFd(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Unavailable("epoll_ctl ADD failed");
  }
  fd_handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EventLoop::UpdateFd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Unavailable("epoll_ctl MOD failed");
  }
  return Status::OK();
}

void EventLoop::UnwatchFd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fd_handlers_.erase(fd);
}

void EventLoop::Run() {
  stop_ = false;
  while (!stop_) PollOnce(1 * kSecond);
}

bool EventLoop::RunUntil(const std::function<bool()>& pred, Duration timeout) {
  const Timestamp deadline = Now() + timeout;
  stop_ = false;
  while (!pred()) {
    const Timestamp now = Now();
    if (now >= deadline || stop_) return pred();
    PollOnce(std::min<Duration>(deadline - now, 50 * kMillisecond));
  }
  return true;
}

void EventLoop::Stop() {
  stop_ = true;
  Wakeup();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  ssize_t ignored = write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace dpaxos
