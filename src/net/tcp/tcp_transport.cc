#include "net/tcp/tcp_transport.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>

#include <cerrno>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/perf_counters.h"

namespace dpaxos {

namespace {

/// Gather-write batch limits: at most this many frames per sendmsg, and
/// refill from the peer queue stops once this many bytes are staged (one
/// flush cannot buffer an unbounded burst in user space).
constexpr size_t kMaxIovPerWrite = 64;
constexpr size_t kFlushSliceBytes = 64 * 1024;

}  // namespace

TcpTransport::TcpTransport(EventLoop* loop, NodeId self,
                           std::vector<HostPort> cluster,
                           TcpTransportOptions options)
    : loop_(loop),
      self_(self),
      cluster_(std::move(cluster)),
      options_(options),
      peers_(cluster_.size()) {
  DPAXOS_CHECK(self_ < cluster_.size());
}

TcpTransport::~TcpTransport() {
  *alive_ = false;
  for (PeerState& peer : peers_) {
    if (peer.reconnect_timer != 0) loop_->Cancel(peer.reconnect_timer);
  }
  for (auto& [id, conn] : conns_) {
    loop_->UnwatchFd(conn->fd);
    close(conn->fd);
  }
  if (listen_fd_ >= 0) {
    loop_->UnwatchFd(listen_fd_);
    close(listen_fd_);
  }
}

Status TcpTransport::Listen() {
  DPAXOS_CHECK(listen_fd_ < 0);
  Result<int> fd = OpenListener(cluster_[self_], options_.listen_backlog);
  if (!fd.ok()) return fd.status();
  listen_fd_ = fd.value();
  Result<uint16_t> port = BoundPort(listen_fd_);
  if (!port.ok()) return port.status();
  listen_port_ = port.value();
  cluster_[self_].port = listen_port_;
  return loop_->WatchFd(listen_fd_, EPOLLIN,
                        [this](uint32_t) { AcceptReady(); });
}

void TcpTransport::RegisterHandler(NodeId node, Handler handler) {
  DPAXOS_CHECK_MSG(node == self_,
                   "TcpTransport hosts exactly one node per process");
  handler_ = std::move(handler);
}

void TcpTransport::Send(NodeId from, NodeId to, MessagePtr msg) {
  DPAXOS_CHECK(from == self_);
  DPAXOS_CHECK(to < cluster_.size());
  PerfCounters& pc = ThreadPerfCounters();
  ++pc.messages_sent;
  if (to == self_) {
    // Local delivery still goes through the loop (never reentrant into
    // the handler), matching the simulator's loopback asynchrony.
    std::shared_ptr<bool> alive = alive_;
    loop_->Schedule(0, [this, alive, from, msg = std::move(msg)]() {
      if (!*alive || !handler_) return;
      ++ThreadPerfCounters().messages_delivered;
      handler_(from, msg);
    });
    return;
  }
  DPAXOS_CHECK_MSG(encode_ != nullptr, "wire codec not installed");
  encode_buffer_.clear();
  encode_(*msg, &encode_buffer_);
  std::string frame;
  AppendNodeMessageFrame(encode_buffer_, &frame);
  PeerState& peer = peers_[to];
  if (peer.queue.size() >= options_.max_queued_frames) {
    peer.queue.pop_front();
    ++stats_.frames_dropped;
    ++pc.tcp_frames_dropped;
  }
  peer.queue.push_back(std::move(frame));
  EnsureConnected(to);
  Conn* conn = FindConn(peer.conn_id);
  // Flush via a timer instead of inline so every Send of the current
  // dispatch round lands in one gather write (the coalescing window).
  if (conn != nullptr && conn->established) ScheduleFlush(conn);
}

void TcpTransport::SendClientReply(uint64_t conn_id,
                                   const ClientReply& reply) {
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr || !conn->inbound || conn->kind != PeerKind::kClient) {
    return;  // client went away; nothing to do
  }
  StageFrame(conn, EncodeClientReplyFrame(reply));
  ScheduleFlush(conn);
}

void TcpTransport::InjectDelivery(NodeId from, const MessagePtr& msg) {
  ++ThreadPerfCounters().messages_delivered;
  if (handler_) handler_(from, msg);
}

void TcpTransport::UpdatePeerAddress(NodeId node, HostPort addr) {
  DPAXOS_CHECK(node < cluster_.size());
  cluster_[node] = std::move(addr);
}

void TcpTransport::CloseAllConnections() {
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) OnConnError(id);
}

TcpTransport::Conn* TcpTransport::FindConn(uint64_t conn_id) {
  if (conn_id == 0) return nullptr;
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void TcpTransport::AcceptReady() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DPAXOS_WARN("accept failed: errno=" << errno);
      return;
    }
    SetNoDelay(fd);
    if (accept_handoff_) {
      ++stats_.accepts;
      ++ThreadPerfCounters().tcp_accepts;
      accept_handoff_(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->inbound = true;
    conn->established = true;
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    const uint64_t id = conn->id;
    conns_[id] = std::move(conn);
    ++stats_.accepts;
    ++ThreadPerfCounters().tcp_accepts;
    Status st = loop_->WatchFd(
        fd, EPOLLIN, [this, id](uint32_t events) { ConnEvent(id, events); });
    if (!st.ok()) CloseConn(id);
  }
}

void TcpTransport::EnsureConnected(NodeId to) {
  PeerState& peer = peers_[to];
  if (peer.conn_id != 0 || peer.reconnect_timer != 0) return;
  Result<int> fd = StartConnect(cluster_[to]);
  if (!fd.ok()) {
    ++peer.attempts;
    ScheduleReconnect(to);
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_++;
  conn->fd = fd.value();
  conn->inbound = false;
  conn->hello_done = true;  // outbound: the peer never sends us a HELLO
  conn->peer_node = to;
  conn->decoder = FrameDecoder(options_.max_frame_bytes);
  // EPOLLOUT is armed below to learn when the connect completes;
  // want_write mirrors that so the first idle flush disarms it (a
  // level-triggered EPOLLOUT on a writable socket never sleeps).
  conn->want_write = true;
  const uint64_t id = conn->id;
  peer.conn_id = id;
  conns_[id] = std::move(conn);
  Status st = loop_->WatchFd(
      fd.value(), EPOLLIN | EPOLLOUT,
      [this, id](uint32_t events) { ConnEvent(id, events); });
  if (!st.ok()) OnConnError(id);
}

Duration TcpTransport::ReconnectDelay(uint32_t attempt) {
  const uint32_t exponent = attempt > 6 ? 6 : (attempt == 0 ? 0 : attempt - 1);
  Duration delay = options_.reconnect_backoff_base << exponent;
  delay = static_cast<Duration>(
      static_cast<double>(delay) * (1.0 + loop_->rng().NextDouble()));
  if (delay > options_.reconnect_backoff_cap) {
    delay = options_.reconnect_backoff_cap;
  }
  return delay;
}

void TcpTransport::ScheduleReconnect(NodeId to) {
  PeerState& peer = peers_[to];
  if (peer.reconnect_timer != 0) return;
  std::shared_ptr<bool> alive = alive_;
  peer.reconnect_timer =
      loop_->Schedule(ReconnectDelay(peer.attempts), [this, alive, to]() {
        if (!*alive) return;
        peers_[to].reconnect_timer = 0;
        if (peers_[to].conn_id == 0) EnsureConnected(to);
      });
}

void TcpTransport::OnOutboundUp(Conn* conn) {
  conn->established = true;
  PeerState& peer = peers_[conn->peer_node];
  peer.attempts = 0;
  if (peer.ever_connected) {
    ++stats_.reconnects;
    ++ThreadPerfCounters().tcp_reconnects;
  }
  peer.ever_connected = true;
  Hello hello;
  hello.kind = PeerKind::kNode;
  hello.id = self_;
  StageFrame(conn, EncodeHelloFrame(hello));
  // Flush inline: the HELLO (plus everything queued while dialing) should
  // hit the wire the moment the connect completes, not a timer later.
  FlushConn(conn);
}

void TcpTransport::StageFrame(Conn* conn, std::string frame) {
  conn->outq_bytes += frame.size();
  conn->outq.push_back(std::move(frame));
  ++stats_.frames_out;
  ++ThreadPerfCounters().tcp_frames_out;
}

void TcpTransport::ScheduleFlush(Conn* conn) {
  if (conn->flush_scheduled) return;
  conn->flush_scheduled = true;
  std::shared_ptr<bool> alive = alive_;
  const uint64_t conn_id = conn->id;
  loop_->Schedule(options_.flush_delay, [this, alive, conn_id]() {
    if (!*alive) return;
    Conn* c = FindConn(conn_id);
    if (c == nullptr) return;
    c->flush_scheduled = false;
    if (c->established) FlushConn(c);
  });
}

void TcpTransport::ConnEvent(uint64_t conn_id, uint32_t events) {
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    OnConnError(conn_id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!conn->established) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        OnConnError(conn_id);
        return;
      }
      OnOutboundUp(conn);
    } else {
      FlushConn(conn);
    }
    conn = FindConn(conn_id);  // Flush may have closed it
    if (conn == nullptr) return;
  }
  if ((events & EPOLLIN) != 0) ReadReady(conn);
}

void TcpTransport::ReadReady(Conn* conn) {
  const uint64_t conn_id = conn->id;
  char buf[65536];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in += static_cast<uint64_t>(n);
      ThreadPerfCounters().tcp_bytes_in += static_cast<uint64_t>(n);
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view body;
      for (;;) {
        const FrameDecoder::Next next = conn->decoder.Pop(&body);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          MarkMalformed(conn, conn->decoder.error().c_str());
          return;
        }
        if (!ConsumeFrame(conn, body)) return;  // conn closed
        if (FindConn(conn_id) == nullptr) return;
      }
      continue;  // keep draining until EAGAIN
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    OnConnError(conn_id);  // EOF or hard error
    return;
  }
}

bool TcpTransport::ConsumeFrame(Conn* conn, std::string_view body) {
  ++stats_.frames_in;
  ++ThreadPerfCounters().tcp_frames_in;
  const FrameType type = static_cast<FrameType>(body[0]);
  if (conn->inbound && !conn->hello_done) {
    Result<Hello> hello = ParseHello(body);
    if (!hello.ok() ||
        (hello->kind == PeerKind::kNode && hello->id >= cluster_.size())) {
      MarkMalformed(conn, "expected valid HELLO first");
      return false;
    }
    conn->hello_done = true;
    conn->kind = hello->kind;
    conn->peer_id = hello->id;
    return true;
  }
  switch (type) {
    case FrameType::kNodeMessage: {
      if (conn->inbound && conn->kind != PeerKind::kNode) {
        MarkMalformed(conn, "node message on client connection");
        return false;
      }
      DPAXOS_CHECK_MSG(decode_ != nullptr, "wire codec not installed");
      MessagePtr msg = decode_(body.substr(1));
      if (msg == nullptr) {
        MarkMalformed(conn, "undecodable node message");
        return false;
      }
      const NodeId sender = conn->inbound
                                ? static_cast<NodeId>(conn->peer_id)
                                : conn->peer_node;
      ++ThreadPerfCounters().messages_delivered;
      if (handler_) handler_(sender, msg);
      return true;
    }
    case FrameType::kClientRequest: {
      if (!conn->inbound || conn->kind != PeerKind::kClient) {
        MarkMalformed(conn, "client request on node connection");
        return false;
      }
      Result<ClientRequest> req = ParseClientRequest(body);
      if (!req.ok()) {
        MarkMalformed(conn, "malformed client request");
        return false;
      }
      if (client_handler_) {
        client_handler_(conn->id, conn->peer_id, req.value());
      }
      return true;
    }
    default:
      MarkMalformed(conn, "unexpected frame type");
      return false;
  }
}

void TcpTransport::MarkMalformed(Conn* conn, const char* why) {
  ++stats_.malformed_frames;
  ++ThreadPerfCounters().tcp_malformed_frames;
  DPAXOS_WARN("tcp: closing conn " << conn->id << ": " << why);
  OnConnError(conn->id);
}

void TcpTransport::FlushConn(Conn* conn) {
  if (!conn->established) return;
  PeerState* peer = (!conn->inbound && conn->kind == PeerKind::kNode)
                        ? &peers_[conn->peer_node]
                        : nullptr;
  PerfCounters& pc = ThreadPerfCounters();
  for (;;) {
    if (peer != nullptr) {
      // Refill in bounded slices so one flush cannot buffer an unbounded
      // burst in user space.
      while (!peer->queue.empty() && conn->outq_bytes < kFlushSliceBytes) {
        std::string frame = std::move(peer->queue.front());
        peer->queue.pop_front();
        StageFrame(conn, std::move(frame));
      }
    }
    if (conn->outq.empty()) break;
    // One gather write covers up to kMaxIovPerWrite staged frames; the
    // front iovec resumes at outpos after a previous partial write.
    // Frames leave the deque strictly front-to-back, so coalescing can
    // never reorder what Send queued (transport_test asserts this).
    iovec iov[kMaxIovPerWrite];
    size_t niov = 0;
    for (const std::string& frame : conn->outq) {
      if (niov == kMaxIovPerWrite) break;
      const size_t skip = niov == 0 ? conn->outpos : 0;
      iov[niov].iov_base = const_cast<char*>(frame.data()) + skip;
      iov[niov].iov_len = frame.size() - skip;
      ++niov;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    // sendmsg, not writev: the flags argument carries MSG_NOSIGNAL.
    const ssize_t n = sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      ++stats_.writev_calls;
      ++pc.tcp_writev_calls;
      stats_.bytes_out += static_cast<uint64_t>(n);
      pc.tcp_bytes_out += static_cast<uint64_t>(n);
      size_t remaining = static_cast<size_t>(n);
      size_t covered = 0;  // frames this syscall touched
      while (remaining > 0) {
        std::string& front = conn->outq.front();
        const size_t left = front.size() - conn->outpos;
        ++covered;
        if (remaining >= left) {
          remaining -= left;
          conn->outq_bytes -= front.size();
          conn->outpos = 0;
          conn->outq.pop_front();
        } else {
          conn->outpos += remaining;
          remaining = 0;
        }
      }
      if (covered > 1) {
        stats_.frames_coalesced += covered - 1;
        pc.tcp_frames_coalesced += covered - 1;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateWriteInterest(conn);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    OnConnError(conn->id);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    UpdateWriteInterest(conn);
  }
}

void TcpTransport::UpdateWriteInterest(Conn* conn) {
  loop_->UpdateFd(conn->fd,
                  EPOLLIN | (conn->want_write ? EPOLLOUT : 0u));
}

void TcpTransport::OnConnError(uint64_t conn_id) {
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr) return;
  const bool outbound_node = !conn->inbound && conn->kind == PeerKind::kNode;
  const NodeId peer_node = conn->peer_node;
  // Anything staged at or below the socket dies with it — within the
  // Send contract (may drop).
  if (!conn->outq.empty()) {
    stats_.frames_dropped += conn->outq.size();
    ThreadPerfCounters().tcp_frames_dropped += conn->outq.size();
  }
  CloseConn(conn_id);
  if (outbound_node) {
    PeerState& peer = peers_[peer_node];
    peer.conn_id = 0;
    ++peer.attempts;
    ScheduleReconnect(peer_node);
  }
}

void TcpTransport::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_->UnwatchFd(it->second->fd);
  close(it->second->fd);
  conns_.erase(it);
}

}  // namespace dpaxos
