#include "net/tcp/chaos_proxy.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)), loop_(options_.seed) {
  DPAXOS_CHECK(!options_.upstreams.empty());
  DPAXOS_CHECK(options_.zones > 0 &&
               options_.upstreams.size() % options_.zones == 0);
}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  DPAXOS_CHECK(!started_);
  started_ = true;
  for (size_t i = 0; i < options_.upstreams.size(); ++i) {
    Result<int> fd = OpenListener(HostPort{"127.0.0.1", 0},
                                  options_.listen_backlog);
    if (!fd.ok()) return fd.status();
    Result<uint16_t> port = BoundPort(fd.value());
    if (!port.ok()) {
      close(fd.value());
      return port.status();
    }
    listen_fds_.push_back(fd.value());
    endpoints_.push_back(HostPort{"127.0.0.1", port.value()});
    Status st = loop_.WatchFd(fd.value(), EPOLLIN,
                              [this, i](uint32_t) { AcceptReady(i); });
    if (!st.ok()) return st;
  }
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::OK();
}

void ChaosProxy::Stop() {
  if (thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_relaxed);
    loop_.Wakeup();
    thread_.join();
  }
  // The loop thread is gone; tear everything down from here.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
  for (int fd : listen_fds_) {
    loop_.UnwatchFd(fd);
    close(fd);
  }
  listen_fds_.clear();
}

void ChaosProxy::ThreadMain() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    loop_.PollOnce(10 * kMillisecond);
    DrainCommands();
  }
}

void ChaosProxy::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    commands_.push_back(std::move(fn));
  }
  loop_.Wakeup();
}

void ChaosProxy::DrainCommands() {
  std::vector<std::function<void()>> pending;
  {
    std::lock_guard<std::mutex> lock(command_mu_);
    pending.swap(commands_);
  }
  for (auto& fn : pending) fn();
}

uint64_t ChaosProxy::AddFault(const LinkSelector& selector,
                              const LinkFault& fault) {
  const uint64_t id = next_rule_id_.fetch_add(1, std::memory_order_relaxed);
  Post([this, id, selector, fault] {
    rules_.push_back(Rule{id, selector, fault});
  });
  return id;
}

void ChaosProxy::RemoveFault(uint64_t rule_id) {
  Post([this, rule_id] {
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].id == rule_id) {
        rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  });
}

void ChaosProxy::ClearFaults() {
  Post([this] { rules_.clear(); });
}

void ChaosProxy::CloseLinks(const LinkSelector& selector) {
  Post([this, selector] {
    std::vector<uint64_t> victims;
    for (const auto& [id, conn] : conns_) {
      const Endpoint node_ep{false, conn->dst_node};
      if (Matches(selector, conn->src, node_ep) ||
          Matches(selector, node_ep, conn->src)) {
        victims.push_back(id);
      }
    }
    for (uint64_t id : victims) {
      ++stats_.links_closed;
      CloseConn(id);
    }
  });
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats s;
  s.conns_accepted = stats_.conns_accepted.load(std::memory_order_relaxed);
  s.conns_closed = stats_.conns_closed.load(std::memory_order_relaxed);
  s.frames_relayed = stats_.frames_relayed.load(std::memory_order_relaxed);
  s.bytes_relayed = stats_.bytes_relayed.load(std::memory_order_relaxed);
  s.frames_dropped = stats_.frames_dropped.load(std::memory_order_relaxed);
  s.frames_blackholed =
      stats_.frames_blackholed.load(std::memory_order_relaxed);
  s.frames_corrupted = stats_.frames_corrupted.load(std::memory_order_relaxed);
  s.frames_delayed = stats_.frames_delayed.load(std::memory_order_relaxed);
  s.links_closed = stats_.links_closed.load(std::memory_order_relaxed);
  return s;
}

ZoneId ChaosProxy::ZoneOf(NodeId node) const {
  const uint32_t nodes_per_zone =
      static_cast<uint32_t>(options_.upstreams.size()) / options_.zones;
  return node / nodes_per_zone;
}

namespace {

bool EndMatches(int32_t want_node, int32_t want_zone, bool is_client,
                NodeId node, ZoneId zone) {
  if (want_node == LinkSelector::kClient || want_zone == LinkSelector::kClient) {
    return is_client;
  }
  if (want_node >= 0 &&
      (is_client || node != static_cast<NodeId>(want_node))) {
    return false;
  }
  if (want_zone >= 0 &&
      (is_client || zone != static_cast<ZoneId>(want_zone))) {
    return false;
  }
  return true;
}

}  // namespace

bool ChaosProxy::Matches(const LinkSelector& selector, const Endpoint& src,
                         const Endpoint& dst) const {
  return EndMatches(selector.src_node, selector.src_zone, src.is_client,
                    src.node, src.is_client ? 0 : ZoneOf(src.node)) &&
         EndMatches(selector.dst_node, selector.dst_zone, dst.is_client,
                    dst.node, dst.is_client ? 0 : ZoneOf(dst.node));
}

LinkFault ChaosProxy::EffectiveFault(const Endpoint& src,
                                     const Endpoint& dst) const {
  LinkFault out;
  for (const Rule& rule : rules_) {
    if (!Matches(rule.selector, src, dst)) continue;
    const LinkFault& f = rule.fault;
    if (f.latency > out.latency) out.latency = f.latency;
    if (f.jitter > out.jitter) out.jitter = f.jitter;
    if (f.drop_rate > out.drop_rate) out.drop_rate = f.drop_rate;
    if (f.corrupt_rate > out.corrupt_rate) out.corrupt_rate = f.corrupt_rate;
    if (f.bytes_per_sec != 0 && (out.bytes_per_sec == 0 ||
                                 f.bytes_per_sec < out.bytes_per_sec)) {
      out.bytes_per_sec = f.bytes_per_sec;
    }
    out.partitioned = out.partitioned || f.partitioned;
    if (f.close_delay > out.close_delay) out.close_delay = f.close_delay;
  }
  return out;
}

void ChaosProxy::Corrupt(std::string* bytes) {
  // Flip 1-3 random bits anywhere in the encoded frame (length prefix
  // included). The receiving FrameDecoder/parsers must reject the
  // damage — that end-to-end property is what chaos_proxy_test pins.
  const uint32_t flips = 1 + static_cast<uint32_t>(loop_.rng().NextBounded(3));
  for (uint32_t i = 0; i < flips; ++i) {
    const size_t pos = loop_.rng().NextBounded(bytes->size());
    (*bytes)[pos] = static_cast<char>(
        (*bytes)[pos] ^ static_cast<char>(1u << loop_.rng().NextBounded(8)));
  }
}

ChaosProxy::ProxyConn* ChaosProxy::FindConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void ChaosProxy::AcceptReady(size_t listener_index) {
  for (;;) {
    const int fd = accept4(listen_fds_[listener_index], nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DPAXOS_WARN("chaos proxy accept failed: errno=" << errno);
      return;
    }
    SetNoDelay(fd);
    Result<int> upstream = StartConnect(options_.upstreams[listener_index]);
    if (!upstream.ok()) {
      close(fd);
      continue;
    }
    auto conn = std::make_unique<ProxyConn>();
    conn->id = next_conn_id_++;
    conn->dst_node = static_cast<NodeId>(listener_index);
    conn->client_fd = fd;
    conn->upstream_fd = upstream.value();
    conn->forward.decoder = FrameDecoder(options_.max_frame_bytes);
    conn->backward.decoder = FrameDecoder(options_.max_frame_bytes);
    const uint64_t id = conn->id;
    conns_[id] = std::move(conn);
    ++stats_.conns_accepted;
    Status st = loop_.WatchFd(fd, EPOLLIN, [this, id](uint32_t events) {
      ConnEvent(id, /*client_side=*/true, events);
    });
    if (st.ok()) {
      st = loop_.WatchFd(upstream.value(), EPOLLIN | EPOLLOUT,
                         [this, id](uint32_t events) {
                           ConnEvent(id, /*client_side=*/false, events);
                         });
    }
    if (!st.ok()) CloseConn(id);
  }
}

void ChaosProxy::ConnEvent(uint64_t conn_id, bool client_side,
                           uint32_t events) {
  ProxyConn* conn = FindConn(conn_id);
  if (conn == nullptr) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    OnSideDown(conn_id, client_side);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!client_side && !conn->upstream_up) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(conn->upstream_fd, SOL_SOCKET, SO_ERROR, &err, &len) !=
              0 ||
          err != 0) {
        OnSideDown(conn_id, /*client_side=*/false);
        return;
      }
      conn->upstream_up = true;
      SetNoDelay(conn->upstream_fd);
      conn->forward.want_write = false;
      UpdateInterest(conn, /*client_side=*/false);
      FlushFlow(conn, /*forward=*/true);
    } else {
      // EPOLLOUT on a side flushes the flow writing TO that side.
      FlushFlow(conn, /*forward=*/!client_side);
    }
    conn = FindConn(conn_id);  // flush may have torn the conn down
    if (conn == nullptr) return;
  }
  if ((events & EPOLLIN) != 0) ReadSide(conn, client_side);
}

void ChaosProxy::ReadSide(ProxyConn* conn, bool client_side) {
  const uint64_t conn_id = conn->id;
  const int fd = client_side ? conn->client_fd : conn->upstream_fd;
  if (fd < 0) return;
  const bool forward = client_side;  // client bytes flow toward upstream
  char buf[65536];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      Flow& flow = forward ? conn->forward : conn->backward;
      flow.decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view body;
      for (;;) {
        const FrameDecoder::Next next = flow.decoder.Pop(&body);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          // The *source* sent an unframeable stream; a proxy cannot relay
          // what it cannot delimit. Tear the connection down.
          OnSideDown(conn_id, client_side);
          return;
        }
        ProcessFrame(conn, forward, body);
        conn = FindConn(conn_id);
        if (conn == nullptr) return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    OnSideDown(conn_id, client_side);  // EOF or hard error
    return;
  }
}

void ChaosProxy::ProcessFrame(ProxyConn* conn, bool forward,
                              std::string_view body) {
  if (forward && !conn->src_known) {
    // First client->upstream frame is the HELLO; decode it passively to
    // learn who dialed us. Unparseable or out-of-range ids stay
    // "client" — the upstream server does its own validation.
    Result<Hello> hello = ParseHello(body);
    conn->src_known = true;
    if (hello.ok() && hello->kind == PeerKind::kNode &&
        hello->id < options_.upstreams.size()) {
      conn->src = Endpoint{false, static_cast<NodeId>(hello->id)};
    } else {
      conn->src = Endpoint{true, 0};
    }
  }
  const Endpoint node_ep{false, conn->dst_node};
  const Endpoint& src = forward ? conn->src : node_ep;
  const Endpoint& dst = forward ? node_ep : conn->src;
  const LinkFault fault = EffectiveFault(src, dst);
  if (fault.partitioned) {
    ++stats_.frames_blackholed;
    return;
  }
  if (fault.drop_rate > 0 && loop_.rng().NextBool(fault.drop_rate)) {
    ++stats_.frames_dropped;
    return;
  }
  std::string bytes;
  AppendFrame(body, &bytes);
  if (fault.corrupt_rate > 0 && loop_.rng().NextBool(fault.corrupt_rate)) {
    Corrupt(&bytes);
    ++stats_.frames_corrupted;
  }
  const Timestamp now = loop_.Now();
  Timestamp deliver_at = now + fault.latency;
  if (fault.jitter > 0) deliver_at += loop_.rng().NextBounded(fault.jitter);
  Flow& flow = forward ? conn->forward : conn->backward;
  if (deliver_at < flow.next_ready) deliver_at = flow.next_ready;
  flow.next_ready = deliver_at;
  if (fault.bytes_per_sec > 0) {
    flow.next_ready +=
        (static_cast<Duration>(bytes.size()) * kSecond) / fault.bytes_per_sec;
  }
  ++stats_.frames_relayed;
  stats_.bytes_relayed += bytes.size();
  EnqueueFrame(conn, forward, std::move(bytes), deliver_at);
}

void ChaosProxy::EnqueueFrame(ProxyConn* conn, bool forward,
                              std::string bytes, Timestamp deliver_at) {
  Flow& flow = forward ? conn->forward : conn->backward;
  if (deliver_at <= loop_.Now() && flow.delayed.empty()) {
    flow.outbuf += bytes;
    FlushFlow(conn, forward);
    return;
  }
  ++stats_.frames_delayed;
  flow.delayed.push_back(DelayedFrame{deliver_at, std::move(bytes)});
  ArmDelayTimer(conn->id, forward);
}

void ChaosProxy::ArmDelayTimer(uint64_t conn_id, bool forward) {
  ProxyConn* conn = FindConn(conn_id);
  if (conn == nullptr) return;
  Flow& flow = forward ? conn->forward : conn->backward;
  if (flow.delay_timer != 0 || flow.delayed.empty()) return;
  flow.delay_timer = loop_.ScheduleAt(
      flow.delayed.front().deliver_at, [this, conn_id, forward] {
        ProxyConn* c = FindConn(conn_id);
        if (c == nullptr) return;
        Flow& f = forward ? c->forward : c->backward;
        f.delay_timer = 0;
        const Timestamp now = loop_.Now();
        while (!f.delayed.empty() && f.delayed.front().deliver_at <= now) {
          f.outbuf += f.delayed.front().bytes;
          f.delayed.pop_front();
        }
        FlushFlow(c, forward);
        ArmDelayTimer(conn_id, forward);
      });
}

void ChaosProxy::FlushFlow(ProxyConn* conn, bool forward) {
  Flow& flow = forward ? conn->forward : conn->backward;
  const int fd = forward ? conn->upstream_fd : conn->client_fd;
  if (fd < 0) {
    // Destination side died; whatever was buffered dies with it.
    flow.outbuf.clear();
    flow.outpos = 0;
    return;
  }
  if (forward && !conn->upstream_up) return;  // connect still in flight
  while (flow.outpos < flow.outbuf.size()) {
    const ssize_t n = send(fd, flow.outbuf.data() + flow.outpos,
                           flow.outbuf.size() - flow.outpos, MSG_NOSIGNAL);
    if (n > 0) {
      flow.outpos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!flow.want_write) {
        flow.want_write = true;
        UpdateInterest(conn, /*client_side=*/!forward);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    OnSideDown(conn->id, /*client_side=*/!forward);
    return;
  }
  flow.outbuf.clear();
  flow.outpos = 0;
  if (flow.want_write) {
    flow.want_write = false;
    UpdateInterest(conn, /*client_side=*/!forward);
  }
}

void ChaosProxy::UpdateInterest(ProxyConn* conn, bool client_side) {
  // Each side is written by exactly one flow: the client fd by the
  // backward flow, the upstream fd by the forward flow.
  const int fd = client_side ? conn->client_fd : conn->upstream_fd;
  if (fd < 0) return;
  const Flow& flow = client_side ? conn->backward : conn->forward;
  loop_.UpdateFd(fd, EPOLLIN | (flow.want_write ? EPOLLOUT : 0u));
}

void ChaosProxy::OnSideDown(uint64_t conn_id, bool client_side) {
  ProxyConn* conn = FindConn(conn_id);
  if (conn == nullptr) return;
  int& fd = client_side ? conn->client_fd : conn->upstream_fd;
  if (fd >= 0) {
    loop_.UnwatchFd(fd);
    close(fd);
    fd = -1;
  }
  if (conn->close_timer != 0) return;  // teardown already scheduled
  // Slow-close: resolve the close_delay from the direction whose source
  // just died, then keep the surviving side dangling for that long.
  const Endpoint node_ep{false, conn->dst_node};
  const Endpoint& src = client_side ? conn->src : node_ep;
  const Endpoint& dst = client_side ? node_ep : conn->src;
  const Duration delay = EffectiveFault(src, dst).close_delay;
  if (delay == 0) {
    CloseConn(conn_id);
    return;
  }
  conn->close_timer =
      loop_.Schedule(delay, [this, conn_id] { CloseConn(conn_id); });
}

void ChaosProxy::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ProxyConn* conn = it->second.get();
  if (conn->close_timer != 0) loop_.Cancel(conn->close_timer);
  if (conn->forward.delay_timer != 0) loop_.Cancel(conn->forward.delay_timer);
  if (conn->backward.delay_timer != 0) {
    loop_.Cancel(conn->backward.delay_timer);
  }
  if (conn->client_fd >= 0) {
    loop_.UnwatchFd(conn->client_fd);
    close(conn->client_fd);
  }
  if (conn->upstream_fd >= 0) {
    loop_.UnwatchFd(conn->upstream_fd);
    close(conn->upstream_fd);
  }
  conns_.erase(it);
  ++stats_.conns_closed;
}

}  // namespace dpaxos
