// Single-threaded epoll event loop implementing EventScheduler on the
// monotonic wall clock — the real-network twin of the Simulator.
//
// Timers live in a hashed timer wheel: 256 slots of 1 ms, each slot a
// small vector of slab indices. The slab mirrors the simulator's design
// (generation-tagged slots recycled through a free list), so EventIds
// have identical semantics on both schedulers: (generation << 32 | slot),
// never 0, stale Cancel() refused in O(1). Due timers fire in
// (deadline, scheduling-ticket) order — the same total order the
// simulator guarantees — so protocol code observes consistent tie
// handling on both clocks.
//
// File descriptors are watched with level-triggered epoll; handlers may
// unwatch/close any fd (including their own) mid-dispatch. Wakeup() is
// async-signal-safe (one eventfd write), which is how SIGTERM reaches a
// blocked loop.
#ifndef DPAXOS_NET_TCP_EVENT_LOOP_H_
#define DPAXOS_NET_TCP_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "net/tcp/mpsc_queue.h"
#include "sim/scheduler.h"

namespace dpaxos {

/// \brief Real-clock EventScheduler + fd readiness dispatcher.
class EventLoop final : public EventScheduler {
 public:
  explicit EventLoop(uint64_t seed = 1);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- EventScheduler -------------------------------------------------

  /// Microseconds of monotonic time since the loop was constructed.
  /// Reads CLOCK_MONOTONIC (vDSO) — always fresh, never cached.
  Timestamp Now() const override;

  EventId ScheduleAt(Timestamp when, EventFn fn) override;
  bool Cancel(EventId id) override;
  Rng& rng() override { return rng_; }

  // --- fd watching ----------------------------------------------------

  /// Readiness callback; `events` is the epoll event mask (EPOLLIN etc.).
  using FdHandler = std::function<void(uint32_t events)>;

  /// Watch `fd` (level-triggered) for `events`. One handler per fd.
  Status WatchFd(int fd, uint32_t events, FdHandler handler);
  /// Change the interest mask of a watched fd.
  Status UpdateFd(int fd, uint32_t events);
  /// Stop watching `fd`. Must be called BEFORE close(fd). Safe from
  /// inside any fd handler, including the fd's own.
  void UnwatchFd(int fd);

  // --- cross-thread work ----------------------------------------------

  /// Enqueue `task` to run on the loop thread and wake the loop. The
  /// ONLY EventLoop entry point (besides Stop/Wakeup) that is safe from
  /// other threads; tasks run between dispatch phases of PollOnce, in
  /// push order per producer. This is the reactor->replica submission
  /// path of the multi-reactor NodeServer (lock-free MPSC underneath,
  /// see net/tcp/mpsc_queue.h).
  void PostTask(std::function<void()> task);

  // --- driving --------------------------------------------------------

  /// Dispatch events until Stop(). Re-entrant calls are a bug.
  void Run();
  /// Run until `pred()` is true or `timeout` elapses. Returns pred().
  bool RunUntil(const std::function<bool()>& pred, Duration timeout);
  /// One poll + dispatch round, blocking at most `max_wait`. Returns
  /// true if any timer fired, fd handler ran or posted task executed
  /// (the busy-vs-idle signal reactor threads account with).
  bool PollOnce(Duration max_wait);

  /// Make Run() return after the current dispatch round. Thread-safe.
  void Stop();
  /// Wake a blocked PollOnce. Async-signal-safe (single write()).
  void Wakeup();
  /// The eventfd written by Wakeup() — for signal handlers that need
  /// the raw fd.
  int wakeup_fd() const { return wakeup_fd_; }

  bool stopped() const { return stop_; }
  size_t pending_timers() const { return pending_timers_; }

 private:
  static constexpr uint64_t kTickMicros = 1000;  // 1 ms wheel resolution
  static constexpr uint32_t kWheelSlots = 256;

  struct TimerSlot {
    EventFn fn;
    Timestamp when = 0;
    uint64_t seq = 0;
    uint32_t generation = 1;  ///< bumped on release; 0 is never issued
    bool pending = false;
  };

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  /// Returns the number of timers fired.
  size_t FireDueTimers();
  /// Drain cross-thread tasks; returns the number executed.
  size_t DrainPostedTasks();
  /// Recompute next_deadline_ by scanning pending slab entries (timer
  /// populations here are tens, not thousands — a replica keeps a
  /// handful of timers alive).
  void RecomputeNextDeadline();
  int EpollTimeoutMs() const;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  uint64_t clock_origin_ns_ = 0;
  /// Stop() is callable from any thread (and from signal handlers via
  /// the flag-only path), so the flag must be an atomic, not volatile —
  /// volatile orders nothing and is a formal data race under TSan.
  std::atomic<bool> stop_{false};

  uint64_t next_seq_ = 1;
  size_t pending_timers_ = 0;
  Timestamp next_deadline_ = kNoDeadline;
  uint64_t wheel_cursor_ = 0;  ///< last tick swept by FireDueTimers
  /// Each cell holds full EventIds (generation + slot), so cancelled
  /// entries are recognized and discarded lazily at sweep time.
  std::vector<std::vector<EventId>> wheel_{kWheelSlots};
  std::vector<TimerSlot> slots_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<int, FdHandler> fd_handlers_;
  MpscQueue<std::function<void()>> posted_tasks_;
  Rng rng_;

  static constexpr Timestamp kNoDeadline = ~Timestamp{0};
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TCP_EVENT_LOOP_H_
