// Cluster topology: zones of edge nodes with a wide-area RTT matrix.
//
// A zone models a collection of neighboring edge datacenters (paper
// Section 3). Inter-zone latency comes from a configurable RTT matrix;
// intra-zone links use a single small RTT (the paper emulates edge nodes
// inside one AWS region with a 10 ms artificial delay).
#ifndef DPAXOS_NET_TOPOLOGY_H_
#define DPAXOS_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/types.h"

namespace dpaxos {

/// Declarative description of a cluster used to build a Topology.
struct TopologyConfig {
  /// Number of edge nodes in each zone; size() is the number of zones.
  std::vector<uint32_t> nodes_per_zone;
  /// Symmetric zone-to-zone RTT in milliseconds; diagonal entries are
  /// ignored (intra-zone RTT is used instead).
  std::vector<std::vector<double>> zone_rtt_ms;
  /// RTT between two distinct nodes of the same zone, in milliseconds.
  double intra_zone_rtt_ms = 10.0;
};

/// \brief Immutable node/zone layout plus pairwise latency.
///
/// Node ids are assigned densely: zone 0 holds nodes [0, n0), zone 1 holds
/// [n0, n0+n1), and so on.
class Topology {
 public:
  /// Validates the config (square symmetric matrix, non-empty zones,
  /// non-negative latencies) and builds the topology.
  static Result<Topology> Create(const TopologyConfig& config);

  /// The paper's evaluation topology: seven zones — California, Oregon,
  /// Virginia, Tokyo, Ireland, Singapore, Mumbai — with the Table 1 RTT
  /// matrix, `nodes_per_zone` nodes each (paper: 3) and 10 ms intra-zone
  /// RTT.
  static Topology AwsSevenZones(uint32_t nodes_per_zone = 3);

  /// A uniform topology: `zones` zones × `nodes_per_zone` nodes with the
  /// same RTT between every pair of distinct zones. Useful for tests.
  static Topology Uniform(uint32_t zones, uint32_t nodes_per_zone,
                          double inter_zone_rtt_ms,
                          double intra_zone_rtt_ms = 10.0);

  /// Parse a zone RTT matrix from CSV text: one row per zone, columns =
  /// RTT in milliseconds to each zone (diagonal ignored). A row may lead
  /// with a non-numeric zone name. Blank lines and '#' comments are
  /// skipped. Useful for loading measured matrices into dpaxos_cli.
  static Result<Topology> FromRttCsv(const std::string& csv,
                                     uint32_t nodes_per_zone,
                                     double intra_zone_rtt_ms = 10.0);

  /// A synthetic planet: `zones` zones placed uniformly at random on a
  /// sphere (seeded), pairwise RTT = great-circle distance at an
  /// effective 2/3 light speed in fiber plus a fixed overhead — the
  /// standard first-order model of internet RTTs. Deterministic per
  /// seed; used by the edge-scale sweeps, where the paper's argument is
  /// that majority quorums become prohibitive as zones multiply.
  static Topology Planet(uint32_t zones, uint32_t nodes_per_zone,
                         uint64_t seed, double intra_zone_rtt_ms = 10.0);

  uint32_t num_zones() const {
    return static_cast<uint32_t>(zone_start_.size());
  }
  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t nodes_in_zone(ZoneId z) const;

  /// Zone that hosts `node`. Called per link-delay computation, so it is
  /// a direct table lookup rather than a search over zone boundaries.
  ZoneId ZoneOf(NodeId node) const {
    DPAXOS_CHECK_LT(node, num_nodes_);
    return node_zone_[node];
  }

  /// All node ids in `zone`, in increasing order.
  std::vector<NodeId> NodesInZone(ZoneId zone) const;

  /// All node ids, in increasing order.
  std::vector<NodeId> AllNodes() const;

  /// Round-trip time between two nodes (0 for a node to itself).
  Duration Rtt(NodeId a, NodeId b) const {
    if (a == b) return 0;
    return ZoneRtt(ZoneOf(a), ZoneOf(b));
  }

  /// One-way propagation delay, i.e. Rtt / 2.
  Duration OneWayDelay(NodeId a, NodeId b) const { return Rtt(a, b) / 2; }

  /// Round-trip time between two zones (intra-zone RTT on the diagonal).
  Duration ZoneRtt(ZoneId a, ZoneId b) const {
    DPAXOS_CHECK_LT(a, num_zones());
    DPAXOS_CHECK_LT(b, num_zones());
    return rtt_[a][b];
  }

  /// Zones ordered by ascending RTT from `zone` (the zone itself first).
  /// Ties break by zone id, keeping the order deterministic.
  std::vector<ZoneId> ZonesByProximity(ZoneId zone) const;

  /// Name for a zone; defaults to "zone<i>", AwsSevenZones installs the
  /// paper's datacenter names.
  const std::string& ZoneName(ZoneId zone) const;

 private:
  Topology() = default;

  uint32_t num_nodes_ = 0;
  std::vector<NodeId> zone_start_;          // first node id of each zone
  std::vector<uint32_t> zone_size_;         // nodes per zone
  std::vector<ZoneId> node_zone_;           // node id -> hosting zone
  std::vector<std::vector<Duration>> rtt_;  // zone x zone, diag = intra
  std::vector<std::string> zone_names_;
};

}  // namespace dpaxos

#endif  // DPAXOS_NET_TOPOLOGY_H_
