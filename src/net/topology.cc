#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace dpaxos {

namespace {

// Paper Table 1: average RTT in milliseconds between the seven AWS
// datacenters — California, Oregon, Virginia, Tokyo, Ireland, Singapore,
// Mumbai (in that order).
constexpr double kAwsRtt[7][7] = {
    // C    O    V    T    I    S    M
    {0, 19, 62, 113, 134, 183, 249},    // California
    {19, 0, 117, 104, 133, 161, 221},   // Oregon
    {62, 117, 0, 172, 81, 244, 182},    // Virginia
    {113, 104, 172, 0, 214, 67, 124},   // Tokyo
    {134, 133, 81, 214, 0, 179, 120},   // Ireland
    {183, 161, 244, 67, 179, 0, 58},    // Singapore
    {249, 221, 182, 124, 120, 58, 0},   // Mumbai
};

const char* const kAwsZoneNames[7] = {"California", "Oregon", "Virginia",
                                      "Tokyo",      "Ireland", "Singapore",
                                      "Mumbai"};

}  // namespace

Result<Topology> Topology::Create(const TopologyConfig& config) {
  const size_t z = config.nodes_per_zone.size();
  if (z == 0) {
    return Status::InvalidArgument("topology needs at least one zone");
  }
  if (config.zone_rtt_ms.size() != z) {
    return Status::InvalidArgument("zone_rtt_ms must be |Z| x |Z|");
  }
  for (const auto& row : config.zone_rtt_ms) {
    if (row.size() != z) {
      return Status::InvalidArgument("zone_rtt_ms must be square");
    }
  }
  for (size_t i = 0; i < z; ++i) {
    if (config.nodes_per_zone[i] == 0) {
      return Status::InvalidArgument("every zone needs at least one node");
    }
    for (size_t j = 0; j < z; ++j) {
      if (config.zone_rtt_ms[i][j] < 0) {
        return Status::InvalidArgument("negative RTT");
      }
      if (config.zone_rtt_ms[i][j] != config.zone_rtt_ms[j][i]) {
        return Status::InvalidArgument("RTT matrix must be symmetric");
      }
    }
  }
  if (config.intra_zone_rtt_ms < 0) {
    return Status::InvalidArgument("negative intra-zone RTT");
  }

  Topology t;
  NodeId next = 0;
  for (size_t i = 0; i < z; ++i) {
    t.zone_start_.push_back(next);
    t.zone_size_.push_back(config.nodes_per_zone[i]);
    next += config.nodes_per_zone[i];
    t.zone_names_.push_back("zone" + std::to_string(i));
    t.node_zone_.insert(t.node_zone_.end(), config.nodes_per_zone[i],
                        static_cast<ZoneId>(i));
  }
  t.num_nodes_ = next;
  t.rtt_.assign(z, std::vector<Duration>(z, 0));
  for (size_t i = 0; i < z; ++i) {
    for (size_t j = 0; j < z; ++j) {
      t.rtt_[i][j] = (i == j) ? FromMillis(config.intra_zone_rtt_ms)
                              : FromMillis(config.zone_rtt_ms[i][j]);
    }
  }
  return t;
}

Topology Topology::AwsSevenZones(uint32_t nodes_per_zone) {
  TopologyConfig config;
  config.nodes_per_zone.assign(7, nodes_per_zone);
  config.zone_rtt_ms.assign(7, std::vector<double>(7, 0));
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) config.zone_rtt_ms[i][j] = kAwsRtt[i][j];
  }
  config.intra_zone_rtt_ms = 10.0;
  Result<Topology> t = Create(config);
  DPAXOS_CHECK(t.ok());
  for (int i = 0; i < 7; ++i) t->zone_names_[i] = kAwsZoneNames[i];
  return std::move(t).value();
}

Topology Topology::Uniform(uint32_t zones, uint32_t nodes_per_zone,
                           double inter_zone_rtt_ms,
                           double intra_zone_rtt_ms) {
  TopologyConfig config;
  config.nodes_per_zone.assign(zones, nodes_per_zone);
  config.zone_rtt_ms.assign(zones, std::vector<double>(zones, 0));
  for (uint32_t i = 0; i < zones; ++i) {
    for (uint32_t j = 0; j < zones; ++j) {
      config.zone_rtt_ms[i][j] = (i == j) ? 0 : inter_zone_rtt_ms;
    }
  }
  config.intra_zone_rtt_ms = intra_zone_rtt_ms;
  Result<Topology> t = Create(config);
  DPAXOS_CHECK(t.ok());
  return std::move(t).value();
}

Result<Topology> Topology::FromRttCsv(const std::string& csv,
                                      uint32_t nodes_per_zone,
                                      double intra_zone_rtt_ms) {
  std::vector<std::string> names;
  std::vector<std::vector<double>> rows;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t eol = csv.find('\n', pos);
    std::string line = csv.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? csv.size() + 1 : eol + 1;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::vector<double> row;
    std::string name;
    size_t cell_start = 0;
    bool first_cell = true;
    while (cell_start <= line.size()) {
      const size_t comma = line.find(',', cell_start);
      std::string cell = line.substr(
          cell_start,
          comma == std::string::npos ? std::string::npos : comma - cell_start);
      cell_start = comma == std::string::npos ? line.size() + 1 : comma + 1;
      // Trim.
      const size_t b = cell.find_first_not_of(" \t\r");
      const size_t e = cell.find_last_not_of(" \t\r");
      cell = b == std::string::npos ? "" : cell.substr(b, e - b + 1);
      if (cell.empty()) continue;
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        if (first_cell) {
          name = cell;  // leading zone label
        } else {
          return Status::InvalidArgument("non-numeric RTT cell: " + cell);
        }
      } else {
        row.push_back(value);
      }
      first_cell = false;
    }
    names.push_back(name.empty() ? "zone" + std::to_string(rows.size())
                                 : name);
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument("empty RTT csv");
  TopologyConfig config;
  config.nodes_per_zone.assign(rows.size(), nodes_per_zone);
  config.zone_rtt_ms = rows;
  config.intra_zone_rtt_ms = intra_zone_rtt_ms;
  Result<Topology> t = Create(config);
  if (!t.ok()) return t.status();
  for (size_t i = 0; i < names.size(); ++i) t->zone_names_[i] = names[i];
  return t;
}

Topology Topology::Planet(uint32_t zones, uint32_t nodes_per_zone,
                          uint64_t seed, double intra_zone_rtt_ms) {
  DPAXOS_CHECK_GT(zones, 0u);
  Rng rng(seed);
  // Uniform points on the unit sphere (Marsaglia via normalized z/phi).
  struct Point {
    double x, y, z;
  };
  std::vector<Point> points;
  points.reserve(zones);
  for (uint32_t i = 0; i < zones; ++i) {
    const double z = 2.0 * rng.NextDouble() - 1.0;
    const double phi = 2.0 * 3.14159265358979323846 * rng.NextDouble();
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    points.push_back({r * std::cos(phi), r * std::sin(phi), z});
  }

  TopologyConfig config;
  config.nodes_per_zone.assign(zones, nodes_per_zone);
  config.zone_rtt_ms.assign(zones, std::vector<double>(zones, 0));
  config.intra_zone_rtt_ms = intra_zone_rtt_ms;
  // Great-circle distance on an Earth-radius sphere; RTT = distance at
  // ~2/3 c in fiber, doubled, plus a 6 ms fixed routing overhead.
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kFiberKmPerMs = 200.0;  // ~2/3 of light speed
  constexpr double kOverheadMs = 6.0;
  for (uint32_t i = 0; i < zones; ++i) {
    for (uint32_t j = i + 1; j < zones; ++j) {
      const Point& a = points[i];
      const Point& b = points[j];
      const double dot =
          std::clamp(a.x * b.x + a.y * b.y + a.z * b.z, -1.0, 1.0);
      const double km = kEarthRadiusKm * std::acos(dot);
      const double rtt = 2.0 * km / kFiberKmPerMs + kOverheadMs;
      config.zone_rtt_ms[i][j] = rtt;
      config.zone_rtt_ms[j][i] = rtt;
    }
  }
  Result<Topology> t = Create(config);
  DPAXOS_CHECK(t.ok());
  return std::move(t).value();
}

uint32_t Topology::nodes_in_zone(ZoneId z) const {
  DPAXOS_CHECK_LT(z, num_zones());
  return zone_size_[z];
}

std::vector<NodeId> Topology::NodesInZone(ZoneId zone) const {
  DPAXOS_CHECK_LT(zone, num_zones());
  std::vector<NodeId> out(zone_size_[zone]);
  std::iota(out.begin(), out.end(), zone_start_[zone]);
  return out;
}

std::vector<NodeId> Topology::AllNodes() const {
  std::vector<NodeId> out(num_nodes_);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

std::vector<ZoneId> Topology::ZonesByProximity(ZoneId zone) const {
  DPAXOS_CHECK_LT(zone, num_zones());
  std::vector<ZoneId> order(num_zones());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ZoneId a, ZoneId b) {
    const Duration ra = (a == zone) ? 0 : rtt_[zone][a];
    const Duration rb = (b == zone) ? 0 : rtt_[zone][b];
    if (ra != rb) return ra < rb;
    return a < b;
  });
  return order;
}

const std::string& Topology::ZoneName(ZoneId zone) const {
  DPAXOS_CHECK_LT(zone, num_zones());
  return zone_names_[zone];
}

}  // namespace dpaxos
