// Slot-indexed accepted-entry storage for the acceptor record.
//
// Accepted slots are log positions: they arrive almost densely from a
// low base and are never erased individually. A base-offset vector
// therefore beats a tree map on every acceptor operation — O(1) find
// and insert with no per-entry node allocation, and the ordered scan
// OnPrepare needs starts directly at the requested slot instead of
// walking the whole container.
#ifndef DPAXOS_STORAGE_ACCEPTED_LOG_H_
#define DPAXOS_STORAGE_ACCEPTED_LOG_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"
#include "paxos/messages.h"

namespace dpaxos {

/// \brief Accepted (slot -> entry) storage, dense in slot.
///
/// Pointers returned by Find() are invalidated by the next Put() —
/// callers use them immediately (the acceptor reads the prior entry
/// before overwriting it, never across a mutation).
class AcceptedLog {
 public:
  /// Entry for `slot`, or nullptr.
  const AcceptedEntry* Find(SlotId slot) const {
    if (entries_.empty() || slot < base_) return nullptr;
    const size_t idx = static_cast<size_t>(slot - base_);
    if (idx >= entries_.size()) return nullptr;
    const Cell& c = entries_[idx];
    return c.present ? &c.entry : nullptr;
  }

  /// Insert or overwrite the entry for `slot`.
  void Put(SlotId slot, AcceptedEntry entry) {
    if (entries_.empty()) {
      base_ = slot;
    } else if (slot < base_) {
      // Rare: an older slot shows up after a higher one (e.g. catch-up
      // proposes arriving out of order). Re-base by prepending gaps.
      entries_.insert(entries_.begin(), static_cast<size_t>(base_ - slot),
                      Cell{});
      base_ = slot;
    }
    const size_t idx = static_cast<size_t>(slot - base_);
    if (idx >= entries_.size()) entries_.resize(idx + 1);
    Cell& c = entries_[idx];
    if (!c.present) {
      c.present = true;
      ++count_;
    }
    c.entry = std::move(entry);
  }

  /// Visit entries with slot >= first_slot in ascending slot order.
  template <typename F>
  void ForEachFrom(SlotId first_slot, F&& f) const {
    size_t i = 0;
    if (!entries_.empty() && first_slot > base_) {
      const size_t skip = static_cast<size_t>(first_slot - base_);
      if (skip >= entries_.size()) return;
      i = skip;
    }
    for (; i < entries_.size(); ++i) {
      if (entries_[i].present) f(entries_[i].entry);
    }
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Largest slot with an entry (kInvalidSlot when empty). The tail cell
  /// is always present — Put never leaves a trailing gap — so this is
  /// O(1) in practice; the loop only guards the general case.
  SlotId MaxSlot() const {
    for (size_t i = entries_.size(); i > 0; --i) {
      if (entries_[i - 1].present) return base_ + (i - 1);
    }
    return kInvalidSlot;
  }

  /// Release every entry with slot < `through` (log compaction: the
  /// prefix is covered by a durable snapshot). Keeps the base aligned so
  /// later Puts at higher slots stay O(1).
  void ReleaseBelow(SlotId through) {
    if (entries_.empty() || through <= base_) return;
    const size_t drop =
        std::min(static_cast<size_t>(through - base_), entries_.size());
    for (size_t i = 0; i < drop; ++i) {
      if (entries_[i].present) --count_;
    }
    entries_.erase(entries_.begin(), entries_.begin() + drop);
    base_ += drop;
  }

  void clear() {
    entries_.clear();
    count_ = 0;
    base_ = 0;
  }

 private:
  struct Cell {
    AcceptedEntry entry;
    bool present = false;
  };

  SlotId base_ = 0;
  std::vector<Cell> entries_;
  size_t count_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_STORAGE_ACCEPTED_LOG_H_
