#include "storage/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/codec.h"
#include "common/crc32.h"
#include "common/perf_counters.h"

namespace dpaxos {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";
constexpr char kManifestHeader[] = "dpaxos-wal v1 start=";
// A frame's body can carry a full checkpoint image including a snapshot
// envelope; anything past this is a corrupt length field, not data.
constexpr uint64_t kMaxRecordBytes = 1ull << 30;

enum RecordTag : uint8_t {
  kTagPromise = 1,
  kTagAccept = 2,
  kTagIntents = 3,
  kTagLease = 4,
  kTagRelinquish = 5,
  kTagGcBallots = 6,
  kTagSnapshot = 7,
  kTagRelease = 8,
  kTagSnapshotDrop = 9,
  kTagCheckpoint = 10,
};

void PutBallot(ByteWriter& w, const Ballot& b) {
  w.PutU64(b.round);
  w.PutU32(b.node);
}

bool ReadBallot(ByteReader& r, Ballot* b) {
  return r.ReadU64(&b->round) && r.ReadU32(&b->node);
}

void PutEntry(ByteWriter& w, const AcceptedEntry& e) {
  w.PutU64(e.slot);
  PutBallot(w, e.ballot);
  w.PutBool(e.fast);
  w.PutU64(e.value.id);
  w.PutU64(e.value.size_bytes);
  w.PutString(e.value.payload);
}

bool ReadEntry(ByteReader& r, AcceptedEntry* e) {
  return r.ReadU64(&e->slot) && ReadBallot(r, &e->ballot) &&
         r.ReadBool(&e->fast) && r.ReadU64(&e->value.id) &&
         r.ReadU64(&e->value.size_bytes) && r.ReadString(&e->value.payload);
}

void PutIntent(ByteWriter& w, const Intent& i) {
  PutBallot(w, i.ballot);
  w.PutU32(i.leader);
  w.PutU32(static_cast<uint32_t>(i.quorum.size()));
  for (NodeId n : i.quorum) w.PutU32(n);
}

bool ReadIntent(ByteReader& r, Intent* i) {
  uint32_t count = 0;
  if (!ReadBallot(r, &i->ballot) || !r.ReadU32(&i->leader) ||
      !r.ReadU32(&count)) {
    return false;
  }
  if (count > r.remaining() / 4) return false;
  i->quorum.resize(count);
  for (uint32_t k = 0; k < count; ++k) {
    if (!r.ReadU32(&i->quorum[k])) return false;
  }
  return true;
}

std::string BodyHeader(RecordTag tag, PartitionId partition) {
  std::string body;
  ByteWriter w(&body);
  w.PutU8(tag);
  w.PutU32(partition);
  return body;
}

Status CorruptionAt(const char* what, uint64_t seq, size_t offset) {
  return Status::Corruption(std::string("wal: ") + what + " in segment " +
                            std::to_string(seq) + " at offset " +
                            std::to_string(offset));
}

}  // namespace

// ---------------------------------------------------------------------
// WalJournal: per-partition journal bound to an AcceptorRecord.

class WalJournal : public AcceptorJournal {
 public:
  WalJournal(Wal* wal, PartitionId partition)
      : wal_(wal), partition_(partition) {}

  void Promised(const Ballot& b) override {
    std::string body = BodyHeader(kTagPromise, partition_);
    ByteWriter w(&body);
    PutBallot(w, b);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void Accepted(const AcceptedEntry& entry) override {
    std::string body = BodyHeader(kTagAccept, partition_);
    ByteWriter w(&body);
    PutEntry(w, entry);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void IntentsChanged(const std::vector<Intent>& intents) override {
    std::string body = BodyHeader(kTagIntents, partition_);
    ByteWriter w(&body);
    w.PutU32(static_cast<uint32_t>(intents.size()));
    for (const Intent& i : intents) PutIntent(w, i);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void LeaseGranted(const Ballot& b, Timestamp until) override {
    std::string body = BodyHeader(kTagLease, partition_);
    ByteWriter w(&body);
    PutBallot(w, b);
    w.PutU64(until);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void RelinquishConsumed(const Ballot& b) override {
    std::string body = BodyHeader(kTagRelinquish, partition_);
    ByteWriter w(&body);
    PutBallot(w, b);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void GcBallots(const Ballot& max_propose,
                 const Ballot& max_recovered) override {
    std::string body = BodyHeader(kTagGcBallots, partition_);
    ByteWriter w(&body);
    PutBallot(w, max_propose);
    PutBallot(w, max_recovered);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void SnapshotStored(SlotId through, std::string_view envelope) override {
    std::string body = BodyHeader(kTagSnapshot, partition_);
    ByteWriter w(&body);
    w.PutU64(through);
    w.PutString(envelope);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void PrefixReleased(SlotId through) override {
    std::string body = BodyHeader(kTagRelease, partition_);
    ByteWriter w(&body);
    w.PutU64(through);
    wal_->AppendRecord(partition_, std::move(body));
  }

  void SnapshotDropped() override {
    wal_->AppendRecord(partition_, BodyHeader(kTagSnapshotDrop, partition_));
  }

 private:
  Wal* wal_;
  PartitionId partition_;
};

namespace {

/// Full-image checkpoint body for one record. sync_writes rides along so
/// the metric survives restarts.
std::string EncodeCheckpoint(PartitionId partition, const AcceptorRecord& rec) {
  std::string body = BodyHeader(kTagCheckpoint, partition);
  ByteWriter w(&body);
  PutBallot(w, rec.promised);
  PutBallot(w, rec.max_propose_ballot);
  PutBallot(w, rec.max_recovered_ballot);
  PutBallot(w, rec.relinquish_consumed);
  PutBallot(w, rec.lease_ballot);
  w.PutU64(rec.lease_until);
  w.PutU64(rec.snapshot_through);
  w.PutU64(rec.compacted_through);
  w.PutU64(rec.sync_writes);
  w.PutString(rec.snapshot_bytes);
  w.PutU32(static_cast<uint32_t>(rec.intents.size()));
  for (const Intent& i : rec.intents) PutIntent(w, i);
  uint32_t accepted = static_cast<uint32_t>(rec.accepted.size());
  w.PutU32(accepted);
  rec.accepted.ForEachFrom(0, [&](const AcceptedEntry& e) { PutEntry(w, e); });
  return body;
}

bool DecodeCheckpoint(ByteReader& r, AcceptorRecord* rec) {
  *rec = AcceptorRecord{};
  uint32_t intents = 0, accepted = 0;
  if (!ReadBallot(r, &rec->promised) ||
      !ReadBallot(r, &rec->max_propose_ballot) ||
      !ReadBallot(r, &rec->max_recovered_ballot) ||
      !ReadBallot(r, &rec->relinquish_consumed) ||
      !ReadBallot(r, &rec->lease_ballot) || !r.ReadU64(&rec->lease_until) ||
      !r.ReadU64(&rec->snapshot_through) ||
      !r.ReadU64(&rec->compacted_through) || !r.ReadU64(&rec->sync_writes) ||
      !r.ReadString(&rec->snapshot_bytes) || !r.ReadU32(&intents)) {
    return false;
  }
  rec->intents.resize(intents);
  for (uint32_t k = 0; k < intents; ++k) {
    if (!ReadIntent(r, &rec->intents[k])) return false;
  }
  if (!r.ReadU32(&accepted)) return false;
  for (uint32_t k = 0; k < accepted; ++k) {
    AcceptedEntry e;
    if (!ReadEntry(r, &e)) return false;
    rec->accepted.Put(e.slot, std::move(e));
  }
  // Entries below the compaction watermark never appear in a checkpoint
  // (released before it was written), but replay re-normalizes anyway.
  if (rec->compacted_through > 0) {
    rec->accepted.ReleaseBelow(rec->compacted_through);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// Wal

std::string Wal::SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

Wal::Wal(Env* env, std::string dir, const WalOptions& options,
         EventScheduler* scheduler)
    : env_(env), dir_(std::move(dir)), options_(options),
      scheduler_(scheduler) {}

Wal::~Wal() {
  if (flush_event_ != 0 && scheduler_ != nullptr) {
    scheduler_->Cancel(flush_event_);
  }
  if (active_ != nullptr) active_->Close().ok();
}

Result<std::unique_ptr<Wal>> Wal::Open(Env* env, const std::string& dir,
                                       const WalOptions& options,
                                       EventScheduler* scheduler) {
  DPAXOS_CHECK(env != nullptr);
  Status st = env->CreateDir(dir);
  if (!st.ok()) return st;

  std::unique_ptr<Wal> wal(new Wal(env, dir, options, scheduler));
  const std::string manifest_path = dir + "/" + kManifestName;

  // Enumerate existing segments.
  auto children = env->GetChildren(dir);
  if (!children.ok()) return children.status();
  std::vector<uint64_t> seqs;
  for (const std::string& name : children.value()) {
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "wal-%06llu.log", &seq) == 1) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());

  if (!env->FileExists(manifest_path)) {
    if (!seqs.empty()) {
      return Status::Corruption("wal: segments exist but MANIFEST missing in " +
                                dir);
    }
    // Fresh log: segment 1, then the manifest naming it, then make both
    // directory entries durable before the first record is ever acked.
    auto file = env->NewWritableFile(dir + "/" + SegmentName(1), true);
    if (!file.ok()) return file.status();
    wal->active_ = std::move(file.value());
    wal->active_seq_ = 1;
    wal->start_seq_ = 1;
    ++wal->stats_.segments_created;
    st = wal->WriteManifest(1);
    if (!st.ok()) return st;
    return wal;
  }

  auto manifest = env->ReadFileToString(manifest_path);
  if (!manifest.ok()) return manifest.status();
  unsigned long long start = 0;
  if (std::sscanf(manifest.value().c_str(),
                  "dpaxos-wal v1 start=%llu", &start) != 1 ||
      start == 0) {
    return Status::Corruption("wal: malformed MANIFEST in " + dir);
  }

  // Sweep segments below the manifest start: leftovers of a checkpoint
  // that crashed after the manifest swap but before the deletes.
  uint64_t max_seq = 0;
  for (uint64_t seq : seqs) {
    if (seq < start) {
      st = env->DeleteFile(dir + "/" + SegmentName(seq));
      if (!st.ok()) return st;
    } else {
      max_seq = std::max(max_seq, seq);
    }
  }
  if (max_seq == 0) {
    return Status::Corruption("wal: MANIFEST names segment " +
                              std::to_string(start) + " but none exist in " +
                              dir);
  }
  for (uint64_t seq = start; seq <= max_seq; ++seq) {
    if (!env->FileExists(dir + "/" + SegmentName(seq))) {
      return Status::Corruption("wal: missing segment " + std::to_string(seq) +
                                " in " + dir);
    }
  }

  // Replay in order; only the highest-numbered segment may have a torn
  // tail (it was the one being appended when the power died).
  for (uint64_t seq = start; seq <= max_seq; ++seq) {
    const std::string path = dir + "/" + SegmentName(seq);
    auto bytes = env->ReadFileToString(path);
    if (!bytes.ok()) return bytes.status();
    const bool sealed = seq != max_seq;
    uint64_t repaired = bytes.value().size();
    st = wal->ReplaySegment(bytes.value(), seq, sealed, &repaired);
    if (!st.ok()) return st;
    if (repaired != bytes.value().size()) {
      st = env->Truncate(path, repaired);
      if (!st.ok()) return st;
      ++wal->stats_.torn_tail_truncations;
      ++ThreadPerfCounters().wal_torn_tail_truncations;
    }
    wal->live_bytes_ += repaired;
    if (seq == max_seq) wal->active_size_ = repaired;
  }

  auto file = env->NewWritableFile(dir + "/" + SegmentName(max_seq), false);
  if (!file.ok()) return file.status();
  wal->active_ = std::move(file.value());
  wal->active_seq_ = max_seq;
  wal->start_seq_ = start;
  return wal;
}

Status Wal::ReplaySegment(const std::string& bytes, uint64_t seq, bool sealed,
                          uint64_t* repaired_size) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    uint32_t len = 0, crc = 0;
    bool torn = false;
    const char* what = nullptr;
    if (remaining < 8) {
      torn = true;
      what = "truncated frame header";
    } else {
      std::memcpy(&len, bytes.data() + offset, 4);
      std::memcpy(&crc, bytes.data() + offset + 4, 4);
      if (len > kMaxRecordBytes || len > remaining - 8) {
        // Either a torn length field or a record cut off by power loss;
        // both end the file, so both are torn-tail candidates.
        torn = true;
        what = "frame length past end of segment";
      }
    }
    if (!torn) {
      const std::string_view body(bytes.data() + offset + 8, len);
      if (Crc32(body) != crc) {
        // A checksum mismatch on the very last record of the active
        // segment is a torn sector; anywhere else it is bit rot.
        if (offset + 8 + len == bytes.size()) {
          torn = true;
          what = "checksum mismatch on final record";
        } else {
          return CorruptionAt("checksum mismatch", seq, offset);
        }
      } else {
        Status st = ApplyBody(body);
        if (!st.ok()) {
          return CorruptionAt(st.message().c_str(), seq, offset);
        }
        offset += 8 + len;
        continue;
      }
    }
    // Torn candidate: legal only at the tail of the active segment.
    if (sealed) return CorruptionAt(what, seq, offset);
    *repaired_size = offset;
    return Status::OK();
  }
  *repaired_size = bytes.size();
  return Status::OK();
}

Status Wal::ApplyBody(std::string_view body) {
  ByteReader r(body);
  uint8_t tag = 0;
  PartitionId partition = 0;
  if (!r.ReadU8(&tag) || !r.ReadU32(&partition)) {
    return Status::Corruption("record header");
  }
  AcceptorRecord* rec = RecoveredFor(partition);
  switch (tag) {
    case kTagPromise:
      if (!ReadBallot(r, &rec->promised)) break;
      return Status::OK();
    case kTagAccept: {
      AcceptedEntry e;
      if (!ReadEntry(r, &e)) break;
      rec->accepted.Put(e.slot, std::move(e));
      return Status::OK();
    }
    case kTagIntents: {
      uint32_t count = 0;
      if (!r.ReadU32(&count)) break;
      std::vector<Intent> intents(count);
      bool ok = true;
      for (uint32_t k = 0; k < count && ok; ++k) {
        ok = ReadIntent(r, &intents[k]);
      }
      if (!ok) break;
      rec->intents = std::move(intents);
      return Status::OK();
    }
    case kTagLease:
      if (!ReadBallot(r, &rec->lease_ballot) || !r.ReadU64(&rec->lease_until)) {
        break;
      }
      return Status::OK();
    case kTagRelinquish:
      if (!ReadBallot(r, &rec->relinquish_consumed)) break;
      return Status::OK();
    case kTagGcBallots:
      if (!ReadBallot(r, &rec->max_propose_ballot) ||
          !ReadBallot(r, &rec->max_recovered_ballot)) {
        break;
      }
      return Status::OK();
    case kTagSnapshot:
      if (!r.ReadU64(&rec->snapshot_through) ||
          !r.ReadString(&rec->snapshot_bytes)) {
        break;
      }
      return Status::OK();
    case kTagRelease: {
      SlotId through = 0;
      if (!r.ReadU64(&through)) break;
      rec->accepted.ReleaseBelow(through);
      rec->compacted_through = std::max(rec->compacted_through, through);
      return Status::OK();
    }
    case kTagSnapshotDrop:
      rec->snapshot_through = 0;
      rec->snapshot_bytes.clear();
      return Status::OK();
    case kTagCheckpoint:
      if (!DecodeCheckpoint(r, rec)) break;
      return Status::OK();
    default:
      return Status::Corruption("unknown record tag");
  }
  return Status::Corruption("truncated record body");
}

AcceptorRecord* Wal::RecoveredFor(PartitionId partition) {
  auto& rec = recovered_[partition];
  if (rec == nullptr) rec = std::make_unique<AcceptorRecord>();
  return rec.get();
}

std::map<PartitionId, std::unique_ptr<AcceptorRecord>> Wal::TakeRecovered() {
  return std::move(recovered_);
}

AcceptorJournal* Wal::Attach(PartitionId partition, AcceptorRecord* rec) {
  attached_[partition] = rec;
  auto& journal = journals_[partition];
  if (journal == nullptr) {
    journal = std::make_unique<WalJournal>(this, partition);
  }
  return journal.get();
}

Status Wal::WriteManifest(uint64_t start_seq) {
  const std::string tmp = dir_ + "/" + kManifestTmpName;
  auto file = env_->NewWritableFile(tmp, true);
  if (!file.ok()) return file.status();
  Status st = file.value()->Append(kManifestHeader +
                                   std::to_string(start_seq) + "\n");
  if (st.ok()) st = file.value()->Sync();
  if (st.ok()) st = file.value()->Close();
  if (!st.ok()) return st;
  st = env_->RenameFile(tmp, dir_ + "/" + kManifestName);
  if (!st.ok()) return st;
  st = env_->SyncDir(dir_);
  if (!st.ok()) return st;
  start_seq_ = start_seq;
  return Status::OK();
}

void Wal::AppendRecord(PartitionId partition, std::string body) {
  if (!health_.ok()) return;  // sticky: nothing is appended after a failure
  ByteWriter w(&pending_);
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutU32(Crc32(body));
  pending_.append(body);
  dirty_.push_back(partition);
  ++stats_.appends;
  stats_.bytes += 8 + body.size();
  ++ThreadPerfCounters().wal_appends;
  ThreadPerfCounters().wal_bytes += 8 + body.size();
}

void Wal::Fail(const Status& st) {
  health_ = st;
  ++stats_.sync_failures;
  ++ThreadPerfCounters().wal_sync_failures;
  // fsyncgate: the dirty pages a failed fsync covered may already be
  // dropped; retrying would report success for data that is gone. The
  // queued replies are never released.
  waiters_.clear();
  if (options_.panic_on_sync_failure) {
    DPAXOS_CHECK_MSG(false, "wal: unrecoverable storage failure in " << dir_
                                << ": " << st.ToString());
  }
}

void Wal::SyncThen(std::function<void()> done) {
  if (!health_.ok()) return;  // reply withheld forever (see Fail)
  waiters_.push_back(std::move(done));
  if (scheduler_ == nullptr) {
    FlushBatch();
    return;
  }
  if (flush_event_ == 0) {
    flush_event_ = scheduler_->Schedule(options_.group_commit_delay, [this] {
      flush_event_ = 0;
      FlushBatch();
    });
  }
}

Status Wal::SyncNow() {
  if (!health_.ok()) return health_;
  if (flush_event_ != 0 && scheduler_ != nullptr) {
    scheduler_->Cancel(flush_event_);
    flush_event_ = 0;
  }
  FlushBatch();
  return health_;
}

void Wal::FlushBatch() {
  if (!health_.ok()) return;
  if (!pending_.empty()) {
    Status st = active_->Append(pending_);
    if (!st.ok()) {
      Fail(st);
      return;
    }
    active_size_ += pending_.size();
    live_bytes_ += pending_.size();
    pending_.clear();
    unsynced_ = true;
  }
  if (unsynced_) {
    Status st = active_->Sync();
    if (!st.ok()) {
      Fail(st);
      return;
    }
    unsynced_ = false;
    ++stats_.fsyncs;
    ++ThreadPerfCounters().wal_fsyncs;
    // sync_writes in WAL mode counts real fdatasyncs per record: every
    // record with a mutation in this batch is credited once.
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    for (PartitionId partition : dirty_) {
      auto it = attached_.find(partition);
      if (it != attached_.end()) ++it->second->sync_writes;
    }
  }
  dirty_.clear();
  std::vector<std::function<void()>> done;
  done.swap(waiters_);
  for (auto& fn : done) fn();

  if (live_bytes_ > options_.checkpoint_bytes) {
    Checkpoint().ok();  // failure already routed through Fail()
  } else if (active_size_ > options_.segment_bytes) {
    Status st = RotateSegment();
    if (!st.ok() && health_.ok()) Fail(st);
  }
}

Status Wal::RotateSegment() {
  // The outgoing segment is sealed: everything in it is already synced
  // (rotation only runs right after a successful fdatasync).
  Status st = active_->Close();
  if (!st.ok()) return st;
  const uint64_t next = active_seq_ + 1;
  auto file = env_->NewWritableFile(dir_ + "/" + SegmentName(next), true);
  if (!file.ok()) return file.status();
  // The new directory entry must be durable before any acked record
  // lands in the file, or a power loss could lose a synced segment.
  st = env_->SyncDir(dir_);
  if (!st.ok()) return st;
  active_ = std::move(file.value());
  active_seq_ = next;
  active_size_ = 0;
  ++stats_.segments_created;
  return Status::OK();
}

Status Wal::Checkpoint() {
  if (!health_.ok()) return health_;
  // Land any buffered deltas in the old segment first so its tail is
  // whole, then start the new segment from full images.
  if (!pending_.empty() || unsynced_ || !waiters_.empty()) {
    Status st = SyncNow();
    if (!st.ok()) return st;
  }
  Status st = active_->Close();
  if (!st.ok()) {
    Fail(st);
    return health_;
  }
  const uint64_t next = active_seq_ + 1;
  auto file = env_->NewWritableFile(dir_ + "/" + SegmentName(next), true);
  if (!file.ok()) {
    Fail(file.status());
    return health_;
  }
  std::string batch;
  for (const auto& [partition, rec] : attached_) {
    std::string body = EncodeCheckpoint(partition, *rec);
    ByteWriter w(&batch);
    w.PutU32(static_cast<uint32_t>(body.size()));
    w.PutU32(Crc32(body));
    batch.append(body);
  }
  st = file.value()->Append(batch);
  if (st.ok()) st = file.value()->Sync();
  if (!st.ok()) {
    Fail(st);
    return health_;
  }
  ++stats_.fsyncs;
  ++ThreadPerfCounters().wal_fsyncs;
  st = env_->SyncDir(dir_);
  if (!st.ok()) {
    Fail(st);
    return health_;
  }
  // Point the manifest at the checkpoint segment (rename-atomic), then
  // reclaim everything older. A crash between the two just leaves dead
  // segments for the next open to sweep.
  const uint64_t old_start = start_seq_;
  st = WriteManifest(next);
  if (!st.ok()) {
    Fail(st);
    return health_;
  }
  for (uint64_t seq = old_start; seq < next; ++seq) {
    env_->DeleteFile(dir_ + "/" + SegmentName(seq)).ok();  // best-effort
  }
  active_ = std::move(file.value());
  active_seq_ = next;
  active_size_ = batch.size();
  live_bytes_ = batch.size();
  ++stats_.segments_created;
  ++stats_.checkpoints;
  return Status::OK();
}

}  // namespace dpaxos
