// Durable acceptor storage.
//
// Paxos safety depends on an acceptor never forgetting its promises or
// accepted values across a process crash. This module models the
// persistent store each node writes synchronously before answering:
// AcceptorRecords survive a node restart (the Replica object — and all
// its volatile proposer/learner state — does not; a restarted replica
// re-learns the decided log via catch-up).
#ifndef DPAXOS_STORAGE_STORAGE_H_
#define DPAXOS_STORAGE_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "paxos/ballot.h"
#include "paxos/intent.h"
#include "paxos/messages.h"

namespace dpaxos {

/// \brief The state an acceptor must persist (per partition).
struct AcceptorRecord {
  Ballot promised;
  std::map<SlotId, AcceptedEntry> accepted;
  std::vector<Intent> intents;
  /// Largest ballot seen in any propose message.
  Ballot max_propose_ballot;
  /// Largest ballot seen in a recovery-complete propose message — the
  /// value the garbage collector polls (see ProposeMsg::recovery_complete).
  Ballot max_recovered_ballot;
  /// Highest relinquish() already consumed: a duplicated or replayed
  /// handoff must never re-activate a dethroned leader.
  Ballot relinquish_consumed;
  // Read-lease promise: not answering foreign prepares until expiry is a
  // durable obligation too (paper Section 4.5).
  Ballot lease_ballot;
  Timestamp lease_until = 0;

  /// Count of synchronous writes ("fsyncs") this record absorbed.
  /// Metrics only; each mutating acceptor step increments it once.
  uint64_t sync_writes = 0;
};

/// \brief One node's persistent store, surviving process restarts.
///
/// Owned by the NodeHost (which outlives replica restarts). Records are
/// created on first access.
class NodeStorage {
 public:
  NodeStorage() = default;
  NodeStorage(const NodeStorage&) = delete;
  NodeStorage& operator=(const NodeStorage&) = delete;

  /// Persistent acceptor record for `partition`; never null.
  AcceptorRecord* RecordFor(PartitionId partition) {
    auto& rec = records_[partition];
    if (rec == nullptr) rec = std::make_unique<AcceptorRecord>();
    return rec.get();
  }

  bool HasRecord(PartitionId partition) const {
    return records_.count(partition) > 0;
  }

  /// Total synchronous writes across all partitions.
  uint64_t TotalSyncWrites() const {
    uint64_t total = 0;
    for (const auto& [p, rec] : records_) total += rec->sync_writes;
    return total;
  }

 private:
  std::map<PartitionId, std::unique_ptr<AcceptorRecord>> records_;
};

}  // namespace dpaxos

#endif  // DPAXOS_STORAGE_STORAGE_H_
