// Durable acceptor storage.
//
// Paxos safety depends on an acceptor never forgetting its promises or
// accepted values across a process crash. This module models the
// persistent store each node writes synchronously before answering:
// AcceptorRecords survive a node restart (the Replica object — and all
// its volatile proposer/learner state — does not; a restarted replica
// re-learns the decided log via catch-up).
#ifndef DPAXOS_STORAGE_STORAGE_H_
#define DPAXOS_STORAGE_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "paxos/ballot.h"
#include "paxos/intent.h"
#include "paxos/messages.h"
#include "storage/accepted_log.h"

namespace dpaxos {

class Wal;

/// \brief Observer of every durable mutation to an AcceptorRecord.
///
/// In WAL mode (storage/wal.h) each record carries a journal that
/// mirrors its mutations into CRC-framed log records; replaying the log
/// at startup rebuilds the exact record. The acceptor calls these hooks
/// at every mutation site, immediately after mutating the in-memory
/// record — the journal encodes the new state, it never re-derives it.
class AcceptorJournal {
 public:
  virtual ~AcceptorJournal() = default;

  /// promised was set to `b`.
  virtual void Promised(const Ballot& b) = 0;
  /// accepted.Put(entry.slot, entry) was applied.
  virtual void Accepted(const AcceptedEntry& entry) = 0;
  /// The stored intent list changed (add or GC); `intents` is the full
  /// new list. Journaling the result, not the rule, keeps replay free of
  /// GC-policy logic.
  virtual void IntentsChanged(const std::vector<Intent>& intents) = 0;
  /// lease_ballot / lease_until were set.
  virtual void LeaseGranted(const Ballot& b, Timestamp until) = 0;
  /// relinquish_consumed was raised to `b`.
  virtual void RelinquishConsumed(const Ballot& b) = 0;
  /// max_propose_ballot / max_recovered_ballot were raised.
  virtual void GcBallots(const Ballot& max_propose,
                         const Ballot& max_recovered) = 0;
  /// snapshot_bytes/snapshot_through were set (envelope already verified).
  virtual void SnapshotStored(SlotId through, std::string_view envelope) = 0;
  /// accepted entries below `through` released; compacted_through raised.
  virtual void PrefixReleased(SlotId through) = 0;
  /// The stored snapshot was discarded (compacted_through survives).
  virtual void SnapshotDropped() = 0;
};

/// \brief The state an acceptor must persist (per partition).
struct AcceptorRecord {
  Ballot promised;
  AcceptedLog accepted;
  std::vector<Intent> intents;
  /// Largest ballot seen in any propose message.
  Ballot max_propose_ballot;
  /// Largest ballot seen in a recovery-complete propose message — the
  /// value the garbage collector polls (see ProposeMsg::recovery_complete).
  Ballot max_recovered_ballot;
  /// Highest relinquish() already consumed: a duplicated or replayed
  /// handoff must never re-activate a dethroned leader.
  Ballot relinquish_consumed;
  // Read-lease promise: not answering foreign prepares until expiry is a
  // durable obligation too (paper Section 4.5).
  Ballot lease_ballot;
  Timestamp lease_until = 0;

  // --- snapshot + compaction (docs/PROTOCOL.md "Log compaction") -------
  //
  // Install order is write-snapshot -> sync -> release-prefix -> sync:
  // a crash between the two syncs leaves a snapshot with an unreleased
  // log prefix, which is consistent (just unreclaimed space). Because
  // MarkSynced/DropUnsynced copy whole records, these fields follow the
  // same crash-fault model as promises and accepted entries.

  /// The verified snapshot envelope at rest (smr/snapshot.h format),
  /// empty when none. Only ever written AFTER its CRC checked out.
  std::string snapshot_bytes;
  /// Slot bound of snapshot_bytes: slots [0, snapshot_through) covered.
  SlotId snapshot_through = 0;
  /// Accepted entries below this slot have been released; a promise must
  /// advertise it so elections never mistake the gap for undecided holes.
  SlotId compacted_through = 0;

  /// Count of synchronous writes ("fsyncs") this record absorbed.
  /// Metrics only. In the in-memory model each mutating acceptor step
  /// counts as one write; in WAL mode the WAL credits one per real
  /// fdatasync that covered a mutation of this record (group commit
  /// batches many mutations into one).
  uint64_t sync_writes = 0;

  /// Non-null in WAL mode: mirrors every mutation into the on-disk log.
  /// Not owned (the WAL is). Copied along with the record by the sim
  /// crash-fault model, which never combines with WAL mode.
  AcceptorJournal* journal = nullptr;

  /// Metrics hook for mutation sites: in the in-memory model every
  /// mutation is its own synchronous write; in WAL mode the real
  /// fdatasync count is credited by the WAL's sync path instead.
  void NoteMutation() {
    if (journal == nullptr) ++sync_writes;
  }
};

/// \brief One node's persistent store, surviving process restarts.
///
/// Owned by the NodeHost (which outlives replica restarts). Records are
/// created on first access.
class NodeStorage {
 public:
  // Out of line: the unique_ptr<Wal> member needs the complete type.
  NodeStorage();
  ~NodeStorage();
  NodeStorage(const NodeStorage&) = delete;
  NodeStorage& operator=(const NodeStorage&) = delete;

  /// Persistent acceptor record for `partition`; never null.
  AcceptorRecord* RecordFor(PartitionId partition) {
    auto& rec = records_[partition];
    if (rec == nullptr) {
      rec = std::make_unique<AcceptorRecord>();
      if (wal_ != nullptr) BindJournal(partition, rec.get());
    }
    return rec.get();
  }

  // --- WAL mode (real durability; storage/wal.h) -----------------------
  //
  // AdoptWal replaces the in-memory records with the ones the WAL
  // recovered from disk and binds a journal to each, so every future
  // acceptor mutation is mirrored to the log. Mutually exclusive with
  // the crash-fault model below: in WAL mode the disk IS the crash-fault
  // model (a restarted process re-opens the WAL and replays it).

  /// Adopt an opened WAL: its recovered records become this store's
  /// records. Must be called before any RecordFor() use by replicas.
  void AdoptWal(std::unique_ptr<Wal> wal);

  /// The adopted WAL, or nullptr in the in-memory model.
  Wal* wal() { return wal_.get(); }

  bool HasRecord(PartitionId partition) const {
    return records_.count(partition) > 0;
  }

  /// Total synchronous writes across all partitions.
  uint64_t TotalSyncWrites() const {
    uint64_t total = 0;
    for (const auto& [p, rec] : records_) total += rec->sync_writes;
    return total;
  }

  // --- crash-fault modelling -------------------------------------------
  //
  // With crash faults enabled, mutations to a record are volatile until
  // MarkSynced(partition) captures them as the durable image (the
  // replica invokes it when a storage sync completes, i.e. when the
  // delayed promise/accept reply is sent). DropUnsynced() then models a
  // power-loss restart: every record rolls back to its last synced
  // image, losing the un-fsynced write suffix. Disabled (the default),
  // MarkSynced is a no-op and restarts keep every write.

  void set_crash_faults(bool enabled) {
    crash_faults_ = enabled;
    // Writes performed before the mode flips on were synced under the
    // old always-durable regime; baseline them so a later lossy restart
    // only loses the suffix written after this point.
    if (enabled) {
      for (const auto& [partition, rec] : records_) synced_[partition] = *rec;
    }
  }
  bool crash_faults() const { return crash_faults_; }

  void MarkSynced(PartitionId partition) {
    if (!crash_faults_) return;
    synced_[partition] = *RecordFor(partition);
  }

  /// Fsync barrier over every partition — what a nemesis "sync all"
  /// step uses to place an explicit durability point.
  void MarkAllSynced() {
    if (!crash_faults_) return;
    for (const auto& [partition, rec] : records_) synced_[partition] = *rec;
  }

  void DropUnsynced() {
    if (!crash_faults_) return;
    for (auto& [partition, rec] : records_) {
      auto it = synced_.find(partition);
      if (it != synced_.end()) {
        *rec = it->second;
      } else {
        *rec = AcceptorRecord{};  // never synced: nothing survives
      }
    }
  }

 private:
  // Out of line: needs the complete Wal type (storage.cc).
  void BindJournal(PartitionId partition, AcceptorRecord* rec);

  std::map<PartitionId, std::unique_ptr<AcceptorRecord>> records_;
  bool crash_faults_ = false;
  std::map<PartitionId, AcceptorRecord> synced_;
  std::unique_ptr<Wal> wal_;
};

}  // namespace dpaxos

#endif  // DPAXOS_STORAGE_STORAGE_H_
