// Durable acceptor storage.
//
// Paxos safety depends on an acceptor never forgetting its promises or
// accepted values across a process crash. This module models the
// persistent store each node writes synchronously before answering:
// AcceptorRecords survive a node restart (the Replica object — and all
// its volatile proposer/learner state — does not; a restarted replica
// re-learns the decided log via catch-up).
#ifndef DPAXOS_STORAGE_STORAGE_H_
#define DPAXOS_STORAGE_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "paxos/ballot.h"
#include "paxos/intent.h"
#include "paxos/messages.h"
#include "storage/accepted_log.h"

namespace dpaxos {

/// \brief The state an acceptor must persist (per partition).
struct AcceptorRecord {
  Ballot promised;
  AcceptedLog accepted;
  std::vector<Intent> intents;
  /// Largest ballot seen in any propose message.
  Ballot max_propose_ballot;
  /// Largest ballot seen in a recovery-complete propose message — the
  /// value the garbage collector polls (see ProposeMsg::recovery_complete).
  Ballot max_recovered_ballot;
  /// Highest relinquish() already consumed: a duplicated or replayed
  /// handoff must never re-activate a dethroned leader.
  Ballot relinquish_consumed;
  // Read-lease promise: not answering foreign prepares until expiry is a
  // durable obligation too (paper Section 4.5).
  Ballot lease_ballot;
  Timestamp lease_until = 0;

  // --- snapshot + compaction (docs/PROTOCOL.md "Log compaction") -------
  //
  // Install order is write-snapshot -> sync -> release-prefix -> sync:
  // a crash between the two syncs leaves a snapshot with an unreleased
  // log prefix, which is consistent (just unreclaimed space). Because
  // MarkSynced/DropUnsynced copy whole records, these fields follow the
  // same crash-fault model as promises and accepted entries.

  /// The verified snapshot envelope at rest (smr/snapshot.h format),
  /// empty when none. Only ever written AFTER its CRC checked out.
  std::string snapshot_bytes;
  /// Slot bound of snapshot_bytes: slots [0, snapshot_through) covered.
  SlotId snapshot_through = 0;
  /// Accepted entries below this slot have been released; a promise must
  /// advertise it so elections never mistake the gap for undecided holes.
  SlotId compacted_through = 0;

  /// Count of synchronous writes ("fsyncs") this record absorbed.
  /// Metrics only; each mutating acceptor step increments it once.
  uint64_t sync_writes = 0;
};

/// \brief One node's persistent store, surviving process restarts.
///
/// Owned by the NodeHost (which outlives replica restarts). Records are
/// created on first access.
class NodeStorage {
 public:
  NodeStorage() = default;
  NodeStorage(const NodeStorage&) = delete;
  NodeStorage& operator=(const NodeStorage&) = delete;

  /// Persistent acceptor record for `partition`; never null.
  AcceptorRecord* RecordFor(PartitionId partition) {
    auto& rec = records_[partition];
    if (rec == nullptr) rec = std::make_unique<AcceptorRecord>();
    return rec.get();
  }

  bool HasRecord(PartitionId partition) const {
    return records_.count(partition) > 0;
  }

  /// Total synchronous writes across all partitions.
  uint64_t TotalSyncWrites() const {
    uint64_t total = 0;
    for (const auto& [p, rec] : records_) total += rec->sync_writes;
    return total;
  }

  // --- crash-fault modelling -------------------------------------------
  //
  // With crash faults enabled, mutations to a record are volatile until
  // MarkSynced(partition) captures them as the durable image (the
  // replica invokes it when a storage sync completes, i.e. when the
  // delayed promise/accept reply is sent). DropUnsynced() then models a
  // power-loss restart: every record rolls back to its last synced
  // image, losing the un-fsynced write suffix. Disabled (the default),
  // MarkSynced is a no-op and restarts keep every write.

  void set_crash_faults(bool enabled) {
    crash_faults_ = enabled;
    // Writes performed before the mode flips on were synced under the
    // old always-durable regime; baseline them so a later lossy restart
    // only loses the suffix written after this point.
    if (enabled) {
      for (const auto& [partition, rec] : records_) synced_[partition] = *rec;
    }
  }
  bool crash_faults() const { return crash_faults_; }

  void MarkSynced(PartitionId partition) {
    if (!crash_faults_) return;
    synced_[partition] = *RecordFor(partition);
  }

  void DropUnsynced() {
    if (!crash_faults_) return;
    for (auto& [partition, rec] : records_) {
      auto it = synced_.find(partition);
      if (it != synced_.end()) {
        *rec = it->second;
      } else {
        *rec = AcceptorRecord{};  // never synced: nothing survives
      }
    }
  }

 private:
  std::map<PartitionId, std::unique_ptr<AcceptorRecord>> records_;
  bool crash_faults_ = false;
  std::map<PartitionId, AcceptorRecord> synced_;
};

}  // namespace dpaxos

#endif  // DPAXOS_STORAGE_STORAGE_H_
