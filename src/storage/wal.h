// Segmented write-ahead log for acceptor records.
//
// Paxos safety requires an acceptor to never forget a promise or an
// accepted value it has answered for. The in-memory NodeStorage model
// (storage.h) only simulates that; this module makes it real: every
// AcceptorRecord mutation is mirrored — via the AcceptorJournal hooks —
// into an append-only log of CRC-32-framed records, and a reply leaves
// the node only after the fdatasync covering its mutations returned.
//
// Layout on disk (one directory per node):
//
//   MANIFEST          "dpaxos-wal v1 start=<seq>"   (swapped by rename)
//   wal-000007.log    segments, replayed in sequence order
//   wal-000008.log    the highest-numbered segment is ACTIVE (appended)
//
// Each log record is framed [u32 len][u32 crc32(body)][body]; the body
// is a tagged encoding of one logical mutation (promise, accept, intent
// set, lease, relinquish, GC ballots, snapshot install, prefix release,
// snapshot drop) or a full-record checkpoint image.
//
// Rotation and checkpointing. The active segment rotates once it
// exceeds segment_bytes. A checkpoint — triggered after log compaction
// (the write-snapshot→sync→release→sync order in docs/PROTOCOL.md) or
// when total live bytes exceed checkpoint_bytes — starts a fresh
// segment with a full image of every record, fsyncs it, swaps the
// MANIFEST by rename to point at it, and only then deletes the older
// segments. A crash at any point leaves either the old manifest (new
// segment replays as a no-op prefix of images) or the new one (old
// segments are dead and swept at the next open).
//
// Recovery. Segments from the manifest's start are replayed in order.
// In SEALED segments (every one but the last) any damage is bit rot —
// the data was fsynced before the segment was abandoned — so recovery
// fails loudly with Status::Corruption. In the ACTIVE segment a bad
// record that extends to end-of-file is a torn tail from power loss:
// the file is truncated back to the last whole record and the node
// carries on (those mutations were never acknowledged — the group
// commit gate had not released their replies). A bad record in the
// middle of the active segment is bit rot again: Corruption.
//
// Group commit. Journal hooks buffer encoded records in memory;
// SyncThen(done) arms one flush event on the node's EventScheduler, so
// every reply delayed in the same batch is released by a single
// append+fdatasync. SyncNow() is the synchronous barrier the compaction
// order uses.
//
// fsync failure policy (fsyncgate): after a failed append or fdatasync
// the WAL enters a sticky failed state and never retries — the page
// cache may have dropped the dirty data, so a later "successful" fsync
// would prove nothing. With panic_on_sync_failure (the production
// default) the process aborts; tests disable it and observe the sticky
// Status plus the withheld callbacks.
#ifndef DPAXOS_STORAGE_WAL_H_
#define DPAXOS_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/scheduler.h"
#include "storage/env.h"
#include "storage/storage.h"

namespace dpaxos {

struct WalOptions {
  /// Rotate the active segment once it exceeds this many bytes.
  uint64_t segment_bytes = 4ull << 20;
  /// Write a checkpoint (full images + manifest swap + old-segment
  /// deletion) once total live bytes exceed this.
  uint64_t checkpoint_bytes = 32ull << 20;
  /// Group-commit window: SyncThen callbacks queued within this delay
  /// share one fdatasync. 0 still batches everything scheduled in the
  /// same event-loop round.
  Duration group_commit_delay = 0;
  /// Abort the process on append/fsync failure (see file comment).
  /// Tests disable this to observe the sticky failed state.
  bool panic_on_sync_failure = true;
};

struct WalStats {
  uint64_t appends = 0;             ///< logical records journaled
  uint64_t bytes = 0;               ///< framed bytes appended
  uint64_t fsyncs = 0;              ///< fdatasync calls issued
  uint64_t torn_tail_truncations = 0;  ///< torn tails repaired at open
  uint64_t sync_failures = 0;       ///< failed appends/fsyncs (sticky)
  uint64_t segments_created = 0;
  uint64_t checkpoints = 0;
};

/// \brief A node's acceptor WAL. See file comment.
///
/// Single-threaded, like everything on a node's event loop.
class Wal {
 public:
  /// Open (or create) the WAL in `dir`, replaying existing segments.
  /// `scheduler` (nullable) drives group commit; without one, SyncThen
  /// degenerates to a synchronous flush per call. Returns Corruption for
  /// damage in sealed segments or a malformed manifest — the caller must
  /// refuse to serve rather than run on a partial record.
  static Result<std::unique_ptr<Wal>> Open(Env* env, const std::string& dir,
                                           const WalOptions& options,
                                           EventScheduler* scheduler);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Records recovered from disk, keyed by partition. NodeStorage::
  /// AdoptWal moves them out and re-attaches each via Attach().
  std::map<PartitionId, std::unique_ptr<AcceptorRecord>> TakeRecovered();

  /// Register `rec` as the live record for `partition` and return the
  /// journal to bind to it. The record must outlive the WAL's use of it
  /// (NodeStorage owns both).
  AcceptorJournal* Attach(PartitionId partition, AcceptorRecord* rec);

  /// Group commit: once every record journaled so far is durable, invoke
  /// `done`. Batched — one fdatasync may release many callbacks. After a
  /// sync failure callbacks are dropped, never invoked (replies stay
  /// withheld; acknowledging after a failed fsync would lie).
  void SyncThen(std::function<void()> done);

  /// Synchronous barrier: flush and fdatasync everything pending. The
  /// compaction order (write-snapshot → sync → release → sync) runs on
  /// this. Returns the sticky failure after a sync failure.
  Status SyncNow();

  /// Roll a checkpoint: fresh segment with full images of every attached
  /// record, manifest swap, old segments deleted. Implies SyncNow().
  Status Checkpoint();

  /// Sticky failure status: OK until the first failed append/fsync.
  const Status& health() const { return health_; }

  const WalStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  /// Sequence number of the active (appended) segment.
  uint64_t active_seq() const { return active_seq_; }

  /// Segment file name for sequence `seq` ("wal-000012.log").
  static std::string SegmentName(uint64_t seq);

 private:
  friend class WalJournal;

  Wal(Env* env, std::string dir, const WalOptions& options,
      EventScheduler* scheduler);

  // Journal entry point: append one framed record for `partition`.
  void AppendRecord(PartitionId partition, std::string body);
  // Flush pending_ to the active segment and fdatasync; run callbacks.
  void FlushBatch();
  // Enter the sticky failed state (abort under panic_on_sync_failure).
  void Fail(const Status& st);
  Status RotateSegment();
  // Replay one segment's bytes into recovered_. `sealed` selects the
  // fail-loud (Corruption) vs. truncate-torn-tail policy; on truncation
  // *repaired_size is set to the surviving byte count.
  Status ReplaySegment(const std::string& bytes, uint64_t seq, bool sealed,
                       uint64_t* repaired_size);
  Status ApplyBody(std::string_view body);
  Status WriteManifest(uint64_t start_seq);

  AcceptorRecord* RecoveredFor(PartitionId partition);

  Env* env_;
  std::string dir_;
  WalOptions options_;
  EventScheduler* scheduler_;

  std::map<PartitionId, std::unique_ptr<AcceptorRecord>> recovered_;
  std::map<PartitionId, AcceptorRecord*> attached_;
  std::map<PartitionId, std::unique_ptr<AcceptorJournal>> journals_;

  std::unique_ptr<WritableFile> active_;
  uint64_t active_seq_ = 0;
  uint64_t active_size_ = 0;   // durable + flushed bytes in the segment
  uint64_t start_seq_ = 0;     // manifest: lowest live segment
  uint64_t live_bytes_ = 0;    // across all live segments
  bool unsynced_ = false;      // bytes appended since the last fdatasync

  std::string pending_;                         // encoded, not yet appended
  std::vector<std::function<void()>> waiters_;  // released by next fsync
  std::vector<PartitionId> dirty_;              // records awaiting credit
  EventId flush_event_ = 0;

  Status health_ = Status::OK();
  WalStats stats_;
};

}  // namespace dpaxos

#endif  // DPAXOS_STORAGE_WAL_H_
