// Filesystem abstraction for the durable storage layer.
//
// Env narrows POSIX to exactly the operations a write-ahead log needs —
// append, fdatasync, rename-atomic manifest swap, directory fsync — so
// the WAL can run either against the real disk (PosixEnv) or against a
// FaultInjectingEnv that models the ways real disks betray you:
//
//   * short writes      — only a prefix of an append reaches the platter
//   * torn tails        — power loss mid-sector leaves a partial record
//   * bit rot           — a sealed file flips a byte at rest
//   * EIO               — read/write/sync fail outright
//   * lying fsync       — fdatasync reports success, data wasn't durable
//
// The fault env tracks, per file, how many bytes are actually durable
// (hardened by a truthful sync) versus merely written to the OS cache.
// CrashAndLose() then simulates power loss: every file is truncated back
// to its durable prefix (plus an optional torn fragment of the unsynced
// tail), which is exactly the state a WAL recovery scan must cope with.
#ifndef DPAXOS_STORAGE_ENV_H_
#define DPAXOS_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpaxos {

/// \brief A sequentially-appended file (WAL segment or manifest temp).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Append bytes at the end of the file. On a short write the Status is
  /// non-OK and the caller must treat the file tail as undefined.
  virtual Status Append(std::string_view data) = 0;

  /// Harden everything appended so far (fdatasync).
  virtual Status Sync() = 0;

  /// Close the descriptor. Does NOT imply Sync().
  virtual Status Close() = 0;
};

/// \brief Minimal filesystem interface (see file comment).
///
/// All paths are plain strings; implementations do not interpret them
/// beyond passing them to the OS (or keying fault state by them).
class Env {
 public:
  virtual ~Env() = default;

  /// Create a directory (and parents). OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Open `path` for appending. `truncate` discards existing contents;
  /// otherwise appends after any existing bytes (recovery reopens the
  /// active segment this way).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Read the whole file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Names (not paths) of directory entries, excluding "." / "..".
  virtual Result<std::vector<std::string>> GetChildren(
      const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomic replace: rename(from, to). The manifest swap depends on this
  /// being all-or-nothing.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Truncate `path` to `size` bytes (torn-tail repair during recovery).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// fsync the directory itself so renames/creates/unlinks are durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual uint64_t FileSize(const std::string& path) = 0;
};

/// Process-wide real-disk Env (thread-safe, stateless).
Env* PosixEnv();

/// Armed fault counters for FaultInjectingEnv; each trips on the next
/// matching operation(s) and decrements toward zero.
struct DiskFaults {
  /// Next N appends fail with EIO before writing anything.
  int eio_appends = 0;
  /// Next N syncs fail with EIO (and harden nothing).
  int eio_syncs = 0;
  /// Next N whole-file reads fail with EIO.
  int eio_reads = 0;
  /// If >= 0: the next append persists only this many bytes of the
  /// payload, then reports EIO (a short write). One-shot.
  int64_t short_write_bytes = -1;
  /// Next N syncs report OK but harden nothing ("lying fsync"). The
  /// betrayal only becomes visible at the next CrashAndLose().
  int lying_syncs = 0;
  /// If >= 0: at the next CrashAndLose(), the file with the largest
  /// unsynced tail keeps this many extra bytes of that tail — a torn
  /// write that stopped mid-record. One-shot.
  int64_t torn_tail_bytes = -1;
};

/// \brief Env wrapper that injects disk faults and simulates power loss.
///
/// Not thread-safe; intended for single-threaded tests and the NodeServer
/// event loop. Tracks written-vs-durable sizes per path so CrashAndLose()
/// can roll files back to what a real disk would have kept.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base);
  ~FaultInjectingEnv() override;

  /// Mutate to arm faults; consumed counters decrement automatically.
  DiskFaults& faults() { return faults_; }

  /// Simulate power loss: truncate every tracked file back to its
  /// durable prefix (plus a torn fragment if torn_tail_bytes armed).
  /// Open handles become invalid — the "process" died with the power.
  Status CrashAndLose();

  /// Truthful syncs forwarded to the base env (lying syncs excluded).
  uint64_t sync_calls() const { return sync_calls_; }

  // Env:
  Status CreateDir(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  uint64_t FileSize(const std::string& path) override;

 private:
  friend class FaultInjectingFile;
  struct FileState {
    uint64_t written = 0;  // bytes the process believes are in the file
    uint64_t durable = 0;  // bytes a power loss would preserve
  };

  Env* base_;
  DiskFaults faults_;
  std::map<std::string, FileState> files_;
  uint64_t sync_calls_ = 0;
};

/// Flip `mask` into the byte at `offset` of `path` (bit rot at rest).
/// Reads, mutates, and rewrites the file through `env`.
Status FlipByteAt(Env* env, const std::string& path, uint64_t offset,
                  uint8_t mask);

}  // namespace dpaxos

#endif  // DPAXOS_STORAGE_ENV_H_
