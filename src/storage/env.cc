#include "storage/env.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dpaxos {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::Unavailable(std::string(op) + " " + path + ": " +
                             strerror(err));
}

// ---------------------------------------------------------------------
// PosixEnv

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnvImpl : public Env {
 public:
  Status CreateDir(const std::string& path) override {
    // Create parents one component at a time (mkdir -p).
    std::string prefix;
    size_t pos = 0;
    while (pos <= path.size()) {
      size_t slash = path.find('/', pos);
      if (slash == std::string::npos) slash = path.size();
      prefix = path.substr(0, slash);
      pos = slash + 1;
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir", prefix, errno);
      }
    }
    return Status::OK();
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= truncate ? O_TRUNC : O_APPEND;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::vector<std::string>> GetChildren(
      const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open(dir)", dir, errno);
    Status st = Status::OK();
    if (::fsync(fd) != 0) st = ErrnoStatus("fsync(dir)", dir, errno);
    ::close(fd);
    return st;
  }

  uint64_t FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }
};

}  // namespace

Env* PosixEnv() {
  static PosixEnvImpl* env = new PosixEnvImpl();
  return env;
}

// ---------------------------------------------------------------------
// FaultInjectingEnv

namespace {
Status EioStatus(const char* op, const std::string& path) {
  return Status::Unavailable(std::string(op) + " " + path +
                             ": injected EIO");
}
}  // namespace

/// Wraps a base WritableFile, routing durability bookkeeping and fault
/// decisions through the owning FaultInjectingEnv.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingEnv* env, std::string path,
                     std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    DiskFaults& f = env_->faults_;
    if (f.eio_appends > 0) {
      --f.eio_appends;
      return EioStatus("write", path_);
    }
    auto& state = env_->files_[path_];
    if (f.short_write_bytes >= 0) {
      // Persist only a prefix, then fail: the classic short write.
      const auto keep = std::min<uint64_t>(
          static_cast<uint64_t>(f.short_write_bytes), data.size());
      f.short_write_bytes = -1;
      Status st = base_->Append(data.substr(0, keep));
      if (st.ok()) state.written += keep;
      return EioStatus("short write", path_);
    }
    Status st = base_->Append(data);
    if (st.ok()) state.written += data.size();
    return st;
  }

  Status Sync() override {
    DiskFaults& f = env_->faults_;
    if (f.eio_syncs > 0) {
      --f.eio_syncs;
      return EioStatus("fdatasync", path_);
    }
    auto& state = env_->files_[path_];
    if (f.lying_syncs > 0) {
      // Report success without hardening anything. A later power loss
      // (CrashAndLose) exposes the hole.
      --f.lying_syncs;
      return Status::OK();
    }
    Status st = base_->Sync();
    if (st.ok()) {
      state.durable = state.written;
      ++env_->sync_calls_;
    }
    return st;
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base) : base_(base) {
  DPAXOS_CHECK(base != nullptr);
}

FaultInjectingEnv::~FaultInjectingEnv() = default;

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  auto& state = files_[path];
  if (truncate) {
    state = FileState{};
  } else {
    // Reopened for append (recovery): whatever is on disk now is the
    // durable baseline — the previous process's unsynced cache is gone.
    state.written = base_->FileSize(path);
    state.durable = state.written;
  }
  return std::unique_ptr<WritableFile>(std::make_unique<FaultInjectingFile>(
      this, path, std::move(base.value())));
}

Result<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  if (faults_.eio_reads > 0) {
    --faults_.eio_reads;
    return EioStatus("read", path);
  }
  return base_->ReadFileToString(path);
}

Result<std::vector<std::string>> FaultInjectingEnv::GetChildren(
    const std::string& dir) {
  return base_->GetChildren(dir);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  files_.erase(path);
  return base_->DeleteFile(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(from);
  }
  return base_->RenameFile(from, to);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::Truncate(const std::string& path, uint64_t size) {
  Status st = base_->Truncate(path, size);
  if (st.ok()) {
    auto it = files_.find(path);
    if (it != files_.end()) {
      it->second.written = std::min(it->second.written, size);
      it->second.durable = std::min(it->second.durable, size);
    }
  }
  return st;
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  return base_->SyncDir(dir);
}

uint64_t FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectingEnv::CrashAndLose() {
  // The file with the largest unsynced tail is where a torn fragment
  // (if armed) lands — in practice that is the active WAL segment.
  std::string torn_victim;
  uint64_t torn_tail = 0;
  for (const auto& [path, state] : files_) {
    if (state.written - state.durable > torn_tail) {
      torn_tail = state.written - state.durable;
      torn_victim = path;
    }
  }
  for (auto& [path, state] : files_) {
    uint64_t keep = state.durable;
    if (path == torn_victim && faults_.torn_tail_bytes >= 0) {
      keep += std::min<uint64_t>(
          static_cast<uint64_t>(faults_.torn_tail_bytes), torn_tail);
    }
    if (!base_->FileExists(path)) continue;
    if (base_->FileSize(path) > keep) {
      Status st = base_->Truncate(path, keep);
      if (!st.ok()) return st;
    }
    state.written = keep;
    state.durable = keep;
  }
  faults_.torn_tail_bytes = -1;
  return Status::OK();
}

Status FlipByteAt(Env* env, const std::string& path, uint64_t offset,
                  uint8_t mask) {
  auto bytes = env->ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  std::string data = std::move(bytes.value());
  if (offset >= data.size()) {
    return Status::OutOfRange("FlipByteAt: offset past EOF of " + path);
  }
  data[offset] = static_cast<char>(static_cast<uint8_t>(data[offset]) ^ mask);
  auto file = env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status st = file.value()->Append(data);
  if (!st.ok()) return st;
  st = file.value()->Sync();
  if (!st.ok()) return st;
  return file.value()->Close();
}

}  // namespace dpaxos
