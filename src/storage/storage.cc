#include "storage/storage.h"

#include "common/check.h"
#include "storage/wal.h"

namespace dpaxos {

NodeStorage::NodeStorage() = default;
NodeStorage::~NodeStorage() = default;

void NodeStorage::AdoptWal(std::unique_ptr<Wal> wal) {
  DPAXOS_CHECK_MSG(!crash_faults_,
                   "WAL mode and the in-memory crash-fault model are "
                   "mutually exclusive");
  DPAXOS_CHECK(wal_ == nullptr && records_.empty());
  wal_ = std::move(wal);
  records_ = wal_->TakeRecovered();
  for (auto& [partition, rec] : records_) {
    rec->journal = wal_->Attach(partition, rec.get());
  }
}

void NodeStorage::BindJournal(PartitionId partition, AcceptorRecord* rec) {
  rec->journal = wal_->Attach(partition, rec);
}

}  // namespace dpaxos
