#include "paxos/node_host.h"

#include "common/check.h"
#include "common/logging.h"
#include "paxos/garbage_collector.h"

namespace dpaxos {

NodeHost::NodeHost(EventScheduler* sim, Transport* transport,
                   const Topology* topology, NodeId id)
    : sim_(sim), transport_(transport), topology_(topology), id_(id) {
  DPAXOS_CHECK(sim && transport && topology);
  DPAXOS_CHECK_LT(id, topology->num_nodes());
  transport_->RegisterHandler(
      id_, [this](NodeId from, const MessagePtr& msg) { OnMessage(from, msg); });
}

Replica* NodeHost::AddReplica(const QuorumSystem* quorums,
                              const ReplicaConfig& config) {
  DPAXOS_CHECK_MSG(replicas_.count(config.partition) == 0,
                   "partition " << config.partition << " already hosted");
  auto replica =
      std::make_unique<Replica>(sim_, transport_, topology_, quorums, id_,
                                config, storage_.RecordFor(config.partition));
  Replica* ptr = replica.get();
  const PartitionId partition = config.partition;
  ptr->set_sync_hook([this, partition] { storage_.MarkSynced(partition); });
  replicas_[partition] = std::move(replica);
  blueprints_[partition] = {quorums, config};
  return ptr;
}

void NodeHost::Restart(bool lose_unsynced) {
  replicas_.clear();  // volatile state dies with the process
  if (lose_unsynced) storage_.DropUnsynced();
  for (const auto& [partition, blueprint] : blueprints_) {
    const auto& [quorums, config] = blueprint;
    auto replica = std::make_unique<Replica>(sim_, transport_, topology_,
                                             quorums, id_, config,
                                             storage_.RecordFor(partition));
    replica->set_sync_hook(
        [this, partition] { storage_.MarkSynced(partition); });
    replicas_[partition] = std::move(replica);
  }
}

Replica* NodeHost::replica(PartitionId partition) const {
  auto it = replicas_.find(partition);
  return it == replicas_.end() ? nullptr : it->second.get();
}

void NodeHost::AttachGarbageCollector(GarbageCollector* gc) {
  DPAXOS_CHECK(gc != nullptr);
  DPAXOS_CHECK_EQ(gc->host(), id_);
  collectors_[gc->partition()] = gc;
}

void NodeHost::OnMessage(NodeId from, const MessagePtr& msg) {
  auto* pm = dynamic_cast<const PaxosMessage*>(msg.get());
  if (pm == nullptr) {
    DPAXOS_WARN("node " << id_ << " received non-paxos message "
                        << msg->TypeName());
    return;
  }
  // GC poll replies go to the co-located collector, not the replica.
  if (auto* reply = dynamic_cast<const GcPollReplyMsg*>(pm)) {
    auto it = collectors_.find(reply->partition);
    if (it != collectors_.end()) it->second->OnPollReply(from, *reply);
    return;
  }
  auto it = replicas_.find(pm->partition);
  if (it == replicas_.end()) {
    DPAXOS_DEBUG("node " << id_ << " hosts no replica for partition "
                         << pm->partition);
    return;
  }
  it->second->HandleMessage(from, msg);
}

}  // namespace dpaxos
