// Values decided by the consensus log.
#ifndef DPAXOS_PAXOS_VALUE_H_
#define DPAXOS_PAXOS_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

namespace dpaxos {

/// \brief An opaque command (or batch of commands) proposed to a slot.
///
/// `payload` carries serialized application commands (see src/txn); the
/// benchmark harness often leaves it empty and sets only `size_bytes`,
/// which is what the bandwidth model charges. id 0 is reserved for the
/// no-op value a new leader uses to fill log gaps.
struct Value {
  uint64_t id = 0;
  uint64_t size_bytes = 0;
  std::string payload;

  static Value NoOp() { return Value{}; }

  static Value Of(uint64_t id, std::string payload) {
    Value v;
    v.id = id;
    v.size_bytes = payload.size();
    v.payload = std::move(payload);
    return v;
  }

  /// A value with a synthetic size and no materialized payload; used by
  /// benchmarks to model large batches without allocating them.
  static Value Synthetic(uint64_t id, uint64_t size_bytes) {
    Value v;
    v.id = id;
    v.size_bytes = size_bytes;
    return v;
  }

  bool is_noop() const { return id == 0; }

  bool operator==(const Value& o) const {
    return id == o.id && size_bytes == o.size_bytes && payload == o.payload;
  }
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_VALUE_H_
