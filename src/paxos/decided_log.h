// The learner's decided log: a dense slot -> value window.
//
// Decided slots form a nearly contiguous run that only ever grows at the
// tail and is trimmed from the front by snapshots/GC. A base-offset deque
// of cells therefore replaces the former std::map: insert, lookup and the
// watermark advance are O(1) with no per-entry tree nodes, while the
// ordered iteration and lower_bound the catch-up server (and the tests)
// rely on keep their map-like shape.
#ifndef DPAXOS_PAXOS_DECIDED_LOG_H_
#define DPAXOS_PAXOS_DECIDED_LOG_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/check.h"
#include "common/types.h"
#include "paxos/value.h"

namespace dpaxos {

/// \brief Slot-indexed decided values with a std::map-shaped read API.
class DecidedLog {
 public:
  using value_type = std::pair<SlotId, Value>;

  /// Forward iterator over present entries in ascending slot order.
  class const_iterator {
   public:
    const_iterator() = default;

    const value_type& operator*() const { return log_->cells_[i_].kv; }
    const value_type* operator->() const { return &log_->cells_[i_].kv; }

    const_iterator& operator++() {
      ++i_;
      Settle();
      return *this;
    }

    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    friend class DecidedLog;
    const_iterator(const DecidedLog* log, size_t i) : log_(log), i_(i) {
      Settle();
    }
    void Settle() {
      while (i_ < log_->cells_.size() && !log_->cells_[i_].present) ++i_;
    }

    const DecidedLog* log_ = nullptr;
    size_t i_ = 0;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, cells_.size()}; }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool Contains(SlotId slot) const {
    if (cells_.empty() || slot < base_) return false;
    const size_t idx = static_cast<size_t>(slot - base_);
    return idx < cells_.size() && cells_[idx].present;
  }
  size_t count(SlotId slot) const { return Contains(slot) ? 1 : 0; }

  const_iterator find(SlotId slot) const {
    if (!Contains(slot)) return end();
    return {this, static_cast<size_t>(slot - base_)};
  }

  /// First entry with slot >= `slot` (end() if none).
  const_iterator lower_bound(SlotId slot) const {
    if (cells_.empty() || slot <= base_) return begin();
    const size_t idx = static_cast<size_t>(slot - base_);
    return {this, idx < cells_.size() ? idx : cells_.size()};
  }

  const Value& at(SlotId slot) const {
    const_iterator it = find(slot);
    DPAXOS_CHECK_MSG(it != end(), "no decided value in slot " << slot);
    return it->second;
  }

  /// Insert unless the slot is already present; mirrors map::emplace.
  std::pair<const_iterator, bool> emplace(SlotId slot, const Value& value) {
    if (cells_.empty()) {
      base_ = slot;
      cells_.emplace_back();
    } else if (slot < base_) {
      // Decides can arrive out of order; extend the window downward.
      for (SlotId s = base_; s > slot; --s) cells_.emplace_front();
      base_ = slot;
    } else if (slot - base_ >= cells_.size()) {
      cells_.resize(static_cast<size_t>(slot - base_) + 1);
    }
    const size_t idx = static_cast<size_t>(slot - base_);
    Cell& c = cells_[idx];
    if (c.present) return {const_iterator(this, idx), false};
    c.present = true;
    c.kv.first = slot;
    c.kv.second = value;
    ++count_;
    return {const_iterator(this, idx), true};
  }

  /// Compaction alias: drop the prefix a snapshot now covers.
  void TruncateTo(SlotId through) { EraseBelow(through); }

  /// Drop every entry with slot < `through` (a trimmed prefix never
  /// comes back: LearnDecided ignores slots below log_start_).
  void EraseBelow(SlotId through) {
    while (!cells_.empty() && base_ < through) {
      if (cells_.front().present) --count_;
      cells_.pop_front();
      ++base_;
    }
    if (cells_.empty()) base_ = through;
  }

 private:
  struct Cell {
    value_type kv{0, Value{}};
    bool present = false;
  };

  SlotId base_ = 0;
  std::deque<Cell> cells_;
  size_t count_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_DECIDED_LOG_H_
