#include "paxos/garbage_collector.h"

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

GarbageCollector::GarbageCollector(EventScheduler* sim, Transport* transport,
                                   const Topology* topology, NodeId host,
                                   PartitionId partition,
                                   Duration poll_period)
    : sim_(sim),
      transport_(transport),
      topology_(topology),
      host_(host),
      partition_(partition),
      poll_period_(poll_period) {
  DPAXOS_CHECK(sim && transport && topology);
  DPAXOS_CHECK_LT(host, topology->num_nodes());
  DPAXOS_CHECK_GT(poll_period, 0u);
}

void GarbageCollector::Start() {
  if (running_) return;
  running_ = true;
  PollNext();
}

void GarbageCollector::Stop() {
  running_ = false;
  if (timer_ != 0) {
    sim_->Cancel(timer_);
    timer_ = 0;
  }
}

void GarbageCollector::PollNext() {
  if (!running_) return;
  const NodeId target =
      static_cast<NodeId>(next_target_ % topology_->num_nodes());
  next_target_ = (next_target_ + 1) % topology_->num_nodes();
  transport_->Send(host_, target, std::make_shared<GcPollMsg>(partition_));
  ++polls_sent_;
  timer_ = sim_->Schedule(poll_period_, [this] {
    timer_ = 0;
    PollNext();
  });
}

void GarbageCollector::SweepOnce() {
  for (NodeId n = 0; n < topology_->num_nodes(); ++n) {
    transport_->Send(host_, n, std::make_shared<GcPollMsg>(partition_));
    ++polls_sent_;
  }
}

void GarbageCollector::OnPollReply(NodeId from, const GcPollReplyMsg& msg) {
  (void)from;
  if (msg.partition != partition_) return;
  if (msg.max_propose_ballot > threshold_) {
    threshold_ = msg.max_propose_ballot;
    DPAXOS_DEBUG("gc@" << host_ << " raises threshold to "
                       << threshold_.ToString());
    BroadcastThreshold();
  }
}

void GarbageCollector::BroadcastThreshold() {
  auto msg = std::make_shared<GcThresholdMsg>(partition_, threshold_);
  for (NodeId n : topology_->AllNodes()) transport_->Send(host_, n, msg);
}

}  // namespace dpaxos
