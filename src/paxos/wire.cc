#include "paxos/wire.h"

#include <memory>

#include "common/check.h"
#include "common/codec.h"
#include "paxos/messages.h"

namespace dpaxos {

namespace {

// --- field-group helpers -------------------------------------------------

void PutBallot(ByteWriter& w, const Ballot& b) {
  w.PutU64(b.round);
  w.PutU32(b.node);
}

bool ReadBallot(ByteReader& r, Ballot* b) {
  return r.ReadU64(&b->round) && r.ReadU32(&b->node);
}

void PutValue(ByteWriter& w, const Value& v) {
  w.PutU64(v.id);
  w.PutU64(v.size_bytes);
  w.PutString(v.payload);
}

bool ReadValue(ByteReader& r, Value* v) {
  return r.ReadU64(&v->id) && r.ReadU64(&v->size_bytes) &&
         r.ReadString(&v->payload);
}

void PutView(ByteWriter& w, const LeaderZoneView& view) {
  w.PutU64(view.epoch);
  w.PutU32(view.current);
  w.PutU32(view.next);
}

bool ReadView(ByteReader& r, LeaderZoneView* view) {
  return r.ReadU64(&view->epoch) && r.ReadU32(&view->current) &&
         r.ReadU32(&view->next);
}

void PutIntent(ByteWriter& w, const Intent& intent) {
  PutBallot(w, intent.ballot);
  w.PutU32(intent.leader);
  w.PutU32(static_cast<uint32_t>(intent.quorum.size()));
  for (NodeId n : intent.quorum) w.PutU32(n);
}

bool ReadIntent(ByteReader& r, Intent* intent) {
  uint32_t size = 0;
  if (!ReadBallot(r, &intent->ballot) || !r.ReadU32(&intent->leader) ||
      !r.ReadU32(&size)) {
    return false;
  }
  if (size > r.remaining() / 4 + 1) return false;  // hostile count
  intent->quorum.resize(size);
  for (uint32_t i = 0; i < size; ++i) {
    if (!r.ReadU32(&intent->quorum[i])) return false;
  }
  return true;
}

void PutIntents(ByteWriter& w, const std::vector<Intent>& intents) {
  w.PutU32(static_cast<uint32_t>(intents.size()));
  for (const Intent& in : intents) PutIntent(w, in);
}

bool ReadIntents(ByteReader& r, std::vector<Intent>* intents) {
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return false;
  if (count > r.remaining() / 20 + 1) return false;
  intents->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadIntent(r, &(*intents)[i])) return false;
  }
  return true;
}

void PutAcceptedEntry(ByteWriter& w, const AcceptedEntry& e) {
  w.PutU64(e.slot);
  PutBallot(w, e.ballot);
  PutValue(w, e.value);
}

bool ReadAcceptedEntry(ByteReader& r, AcceptedEntry* e) {
  return r.ReadU64(&e->slot) && ReadBallot(r, &e->ballot) &&
         ReadValue(r, &e->value);
}

// --- per-type encoders ----------------------------------------------------

void Encode(ByteWriter& w, const PrepareMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.first_slot);
  PutIntents(w, m.intents);
  w.PutBool(m.expansion);
  PutView(w, m.lz_view);
}

void Encode(ByteWriter& w, const PromiseMsg& m) {
  PutBallot(w, m.ballot);
  w.PutBool(m.expansion);
  w.PutU32(static_cast<uint32_t>(m.accepted.size()));
  for (const AcceptedEntry& e : m.accepted) PutAcceptedEntry(w, e);
  PutIntents(w, m.intents);
  PutView(w, m.lz_view);
}

void Encode(ByteWriter& w, const PrepareNackMsg& m) {
  PutBallot(w, m.ballot);
  PutBallot(w, m.promised);
  w.PutU64(m.lease_until);
  PutView(w, m.lz_view);
}

void Encode(ByteWriter& w, const ProposeMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  PutValue(w, m.value);
  w.PutBool(m.lease_request);
  w.PutU64(m.lease_until);
  w.PutBool(m.recovery_complete);
}

void Encode(ByteWriter& w, const AcceptMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  w.PutBool(m.lease_vote);
  w.PutU64(m.lease_until);
}

void Encode(ByteWriter& w, const AcceptNackMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  PutBallot(w, m.promised);
}

void Encode(ByteWriter& w, const DecideMsg& m) {
  w.PutU64(m.slot);
  PutValue(w, m.value);
}

void Encode(ByteWriter&, const HandoffRequestMsg&) {}

void Encode(ByteWriter& w, const HeartbeatMsg& m) { PutBallot(w, m.ballot); }

void Encode(ByteWriter& w, const RelinquishMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.next_slot);
  PutIntents(w, m.intents);
  PutView(w, m.lz_view);
}

void Encode(ByteWriter&, const GcPollMsg&) {}

void Encode(ByteWriter& w, const GcPollReplyMsg& m) {
  PutBallot(w, m.max_propose_ballot);
}

void Encode(ByteWriter& w, const GcThresholdMsg& m) {
  PutBallot(w, m.threshold);
}

void Encode(ByteWriter& w, const LzPrepareMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
}

void Encode(ByteWriter& w, const LzPromiseMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  PutBallot(w, m.accepted_ballot);
  w.PutU32(m.accepted_zone);
}

void Encode(ByteWriter& w, const LzProposeMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  w.PutU32(m.next_zone);
}

void Encode(ByteWriter& w, const LzAcceptMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  w.PutU32(m.next_zone);
}

void Encode(ByteWriter& w, const LzNackMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  PutBallot(w, m.promised);
  PutView(w, m.lz_view);
}

void Encode(ByteWriter& w, const LzTransitionMsg& m) {
  w.PutU64(m.epoch);
  w.PutU32(m.next_zone);
}

void Encode(ByteWriter& w, const LzTransitionAckMsg& m) {
  w.PutU64(m.epoch);
  PutIntents(w, m.intents);
}

void Encode(ByteWriter& w, const LzStoreIntentsMsg& m) {
  w.PutU64(m.epoch);
  w.PutU32(m.next_zone);
  PutIntents(w, m.intents);
}

void Encode(ByteWriter& w, const LzStoreAckMsg& m) { w.PutU64(m.epoch); }

void Encode(ByteWriter& w, const LzAnnounceMsg& m) { PutView(w, m.view); }

void Encode(ByteWriter& w, const ForwardMsg& m) {
  w.PutU64(m.request_id);
  PutValue(w, m.value);
}

void Encode(ByteWriter& w, const ForwardReplyMsg& m) {
  w.PutU64(m.request_id);
  w.PutU8(static_cast<uint8_t>(m.code));
  w.PutU64(m.slot);
  w.PutU32(m.leader_hint);
}

void Encode(ByteWriter& w, const LearnRequestMsg& m) {
  w.PutU64(m.from_slot);
  w.PutU32(m.max_entries);
}

void Encode(ByteWriter& w, const LearnReplyMsg& m) {
  w.PutU64(m.from_slot);
  w.PutU32(static_cast<uint32_t>(m.entries.size()));
  for (const DecidedEntryWire& e : m.entries) {
    w.PutU64(e.slot);
    PutValue(w, e.value);
  }
  w.PutU64(m.peer_watermark);
  w.PutU64(m.first_available);
}

void Encode(ByteWriter&, const SnapshotRequestMsg&) {}

void Encode(ByteWriter& w, const SnapshotReplyMsg& m) {
  w.PutU64(m.through_slot);
  w.PutString(m.snapshot);
}

template <typename T>
bool TrySerialize(const Message& msg, WireType type, ByteWriter& w,
                  std::string* out, bool* matched) {
  const T* typed = dynamic_cast<const T*>(&msg);
  if (typed == nullptr) return false;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(typed->partition);
  Encode(w, *typed);
  *matched = true;
  (void)out;
  return true;
}

// --- per-type decoders ------------------------------------------------------

MessagePtr DecodePrepare(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t first_slot = 0;
  std::vector<Intent> intents;
  bool expansion = false;
  LeaderZoneView view;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&first_slot) ||
      !ReadIntents(r, &intents) || !r.ReadBool(&expansion) ||
      !ReadView(r, &view)) {
    return nullptr;
  }
  return std::make_shared<PrepareMsg>(p, ballot, first_slot,
                                      std::move(intents), expansion, view);
}

MessagePtr DecodePromise(ByteReader& r, PartitionId p) {
  Ballot ballot;
  bool expansion = false;
  if (!ReadBallot(r, &ballot) || !r.ReadBool(&expansion)) return nullptr;
  auto msg = std::make_shared<PromiseMsg>(p, ballot, expansion);
  uint32_t count = 0;
  if (!r.ReadU32(&count) || count > r.remaining() / 20 + 1) return nullptr;
  msg->accepted.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadAcceptedEntry(r, &msg->accepted[i])) return nullptr;
  }
  if (!ReadIntents(r, &msg->intents) || !ReadView(r, &msg->lz_view)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodePrepareNack(ByteReader& r, PartitionId p) {
  Ballot ballot;
  if (!ReadBallot(r, &ballot)) return nullptr;
  auto msg = std::make_shared<PrepareNackMsg>(p, ballot);
  if (!ReadBallot(r, &msg->promised) || !r.ReadU64(&msg->lease_until) ||
      !ReadView(r, &msg->lz_view)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodePropose(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t slot = 0;
  Value value;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot) || !ReadValue(r, &value)) {
    return nullptr;
  }
  auto msg = std::make_shared<ProposeMsg>(p, ballot, slot, std::move(value));
  if (!r.ReadBool(&msg->lease_request) || !r.ReadU64(&msg->lease_until) ||
      !r.ReadBool(&msg->recovery_complete)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeAccept(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t slot = 0;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot)) return nullptr;
  auto msg = std::make_shared<AcceptMsg>(p, ballot, slot);
  if (!r.ReadBool(&msg->lease_vote) || !r.ReadU64(&msg->lease_until)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeAcceptNack(ByteReader& r, PartitionId p) {
  Ballot ballot, promised;
  uint64_t slot = 0;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot) ||
      !ReadBallot(r, &promised)) {
    return nullptr;
  }
  return std::make_shared<AcceptNackMsg>(p, ballot, slot, promised);
}

MessagePtr DecodeDecide(ByteReader& r, PartitionId p) {
  uint64_t slot = 0;
  Value value;
  if (!r.ReadU64(&slot) || !ReadValue(r, &value)) return nullptr;
  return std::make_shared<DecideMsg>(p, slot, std::move(value));
}

MessagePtr DecodeRelinquish(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t next_slot = 0;
  std::vector<Intent> intents;
  LeaderZoneView view;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&next_slot) ||
      !ReadIntents(r, &intents) || !ReadView(r, &view)) {
    return nullptr;
  }
  return std::make_shared<RelinquishMsg>(p, ballot, next_slot,
                                         std::move(intents), view);
}

MessagePtr DecodeGcPollReply(ByteReader& r, PartitionId p) {
  Ballot ballot;
  if (!ReadBallot(r, &ballot)) return nullptr;
  return std::make_shared<GcPollReplyMsg>(p, ballot);
}

MessagePtr DecodeGcThreshold(ByteReader& r, PartitionId p) {
  Ballot ballot;
  if (!ReadBallot(r, &ballot)) return nullptr;
  return std::make_shared<GcThresholdMsg>(p, ballot);
}

MessagePtr DecodeLzPrepare(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot)) return nullptr;
  return std::make_shared<LzPrepareMsg>(p, epoch, ballot);
}

MessagePtr DecodeLzPromise(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot)) return nullptr;
  auto msg = std::make_shared<LzPromiseMsg>(p, epoch, ballot);
  if (!ReadBallot(r, &msg->accepted_ballot) ||
      !r.ReadU32(&msg->accepted_zone)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeLzPropose(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  uint32_t zone = 0;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot) || !r.ReadU32(&zone)) {
    return nullptr;
  }
  return std::make_shared<LzProposeMsg>(p, epoch, ballot, zone);
}

MessagePtr DecodeLzAccept(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  uint32_t zone = 0;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot) || !r.ReadU32(&zone)) {
    return nullptr;
  }
  return std::make_shared<LzAcceptMsg>(p, epoch, ballot, zone);
}

MessagePtr DecodeLzNack(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot, promised;
  LeaderZoneView view;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot) ||
      !ReadBallot(r, &promised) || !ReadView(r, &view)) {
    return nullptr;
  }
  return std::make_shared<LzNackMsg>(p, epoch, ballot, promised, view);
}

MessagePtr DecodeLzTransition(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  uint32_t zone = 0;
  if (!r.ReadU64(&epoch) || !r.ReadU32(&zone)) return nullptr;
  return std::make_shared<LzTransitionMsg>(p, epoch, zone);
}

MessagePtr DecodeLzTransitionAck(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  std::vector<Intent> intents;
  if (!r.ReadU64(&epoch) || !ReadIntents(r, &intents)) return nullptr;
  return std::make_shared<LzTransitionAckMsg>(p, epoch, std::move(intents));
}

MessagePtr DecodeLzStoreIntents(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  uint32_t zone = 0;
  std::vector<Intent> intents;
  if (!r.ReadU64(&epoch) || !r.ReadU32(&zone) || !ReadIntents(r, &intents)) {
    return nullptr;
  }
  return std::make_shared<LzStoreIntentsMsg>(p, epoch, zone,
                                             std::move(intents));
}

MessagePtr DecodeLzStoreAck(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  if (!r.ReadU64(&epoch)) return nullptr;
  return std::make_shared<LzStoreAckMsg>(p, epoch);
}

MessagePtr DecodeLzAnnounce(ByteReader& r, PartitionId p) {
  LeaderZoneView view;
  if (!ReadView(r, &view)) return nullptr;
  return std::make_shared<LzAnnounceMsg>(p, view);
}

MessagePtr DecodeForward(ByteReader& r, PartitionId p) {
  uint64_t request_id = 0;
  Value value;
  if (!r.ReadU64(&request_id) || !ReadValue(r, &value)) return nullptr;
  return std::make_shared<ForwardMsg>(p, request_id, std::move(value));
}

MessagePtr DecodeForwardReply(ByteReader& r, PartitionId p) {
  uint64_t request_id = 0;
  if (!r.ReadU64(&request_id)) return nullptr;
  auto msg = std::make_shared<ForwardReplyMsg>(p, request_id);
  uint8_t code = 0;
  if (!r.ReadU8(&code) ||
      code > static_cast<uint8_t>(StatusCode::kInternal) ||
      !r.ReadU64(&msg->slot) || !r.ReadU32(&msg->leader_hint)) {
    return nullptr;
  }
  msg->code = static_cast<StatusCode>(code);
  return msg;
}

MessagePtr DecodeLearnRequest(ByteReader& r, PartitionId p) {
  uint64_t from_slot = 0;
  uint32_t max_entries = 0;
  if (!r.ReadU64(&from_slot) || !r.ReadU32(&max_entries)) return nullptr;
  return std::make_shared<LearnRequestMsg>(p, from_slot, max_entries);
}

MessagePtr DecodeLearnReply(ByteReader& r, PartitionId p) {
  auto msg = std::make_shared<LearnReplyMsg>(p);
  uint32_t count = 0;
  if (!r.ReadU64(&msg->from_slot) || !r.ReadU32(&count) ||
      count > r.remaining() / 24 + 1) {
    return nullptr;
  }
  msg->entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.ReadU64(&msg->entries[i].slot) ||
        !ReadValue(r, &msg->entries[i].value)) {
      return nullptr;
    }
  }
  if (!r.ReadU64(&msg->peer_watermark) || !r.ReadU64(&msg->first_available)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeSnapshotReply(ByteReader& r, PartitionId p) {
  uint64_t through = 0;
  std::string snapshot;
  if (!r.ReadU64(&through) || !r.ReadString(&snapshot)) return nullptr;
  return std::make_shared<SnapshotReplyMsg>(p, through, std::move(snapshot));
}

}  // namespace

std::string SerializeMessage(const Message& msg) {
  std::string out;
  ByteWriter w(&out);
  bool matched = false;
  TrySerialize<PrepareMsg>(msg, WireType::kPrepare, w, &out, &matched) ||
      TrySerialize<PromiseMsg>(msg, WireType::kPromise, w, &out, &matched) ||
      TrySerialize<PrepareNackMsg>(msg, WireType::kPrepareNack, w, &out,
                                   &matched) ||
      TrySerialize<ProposeMsg>(msg, WireType::kPropose, w, &out, &matched) ||
      TrySerialize<AcceptMsg>(msg, WireType::kAccept, w, &out, &matched) ||
      TrySerialize<AcceptNackMsg>(msg, WireType::kAcceptNack, w, &out,
                                  &matched) ||
      TrySerialize<DecideMsg>(msg, WireType::kDecide, w, &out, &matched) ||
      TrySerialize<HandoffRequestMsg>(msg, WireType::kHandoffRequest, w,
                                      &out, &matched) ||
      TrySerialize<RelinquishMsg>(msg, WireType::kRelinquish, w, &out,
                                  &matched) ||
      TrySerialize<GcPollMsg>(msg, WireType::kGcPoll, w, &out, &matched) ||
      TrySerialize<GcPollReplyMsg>(msg, WireType::kGcPollReply, w, &out,
                                   &matched) ||
      TrySerialize<GcThresholdMsg>(msg, WireType::kGcThreshold, w, &out,
                                   &matched) ||
      TrySerialize<LzPrepareMsg>(msg, WireType::kLzPrepare, w, &out,
                                 &matched) ||
      TrySerialize<LzPromiseMsg>(msg, WireType::kLzPromise, w, &out,
                                 &matched) ||
      TrySerialize<LzProposeMsg>(msg, WireType::kLzPropose, w, &out,
                                 &matched) ||
      TrySerialize<LzAcceptMsg>(msg, WireType::kLzAccept, w, &out,
                                &matched) ||
      TrySerialize<LzNackMsg>(msg, WireType::kLzNack, w, &out, &matched) ||
      TrySerialize<LzTransitionMsg>(msg, WireType::kLzTransition, w, &out,
                                    &matched) ||
      TrySerialize<LzTransitionAckMsg>(msg, WireType::kLzTransitionAck, w,
                                       &out, &matched) ||
      TrySerialize<LzStoreIntentsMsg>(msg, WireType::kLzStoreIntents, w,
                                      &out, &matched) ||
      TrySerialize<LzStoreAckMsg>(msg, WireType::kLzStoreAck, w, &out,
                                  &matched) ||
      TrySerialize<LzAnnounceMsg>(msg, WireType::kLzAnnounce, w, &out,
                                  &matched) ||
      TrySerialize<ForwardMsg>(msg, WireType::kForward, w, &out, &matched) ||
      TrySerialize<ForwardReplyMsg>(msg, WireType::kForwardReply, w, &out,
                                    &matched) ||
      TrySerialize<LearnRequestMsg>(msg, WireType::kLearnRequest, w, &out,
                                    &matched) ||
      TrySerialize<LearnReplyMsg>(msg, WireType::kLearnReply, w, &out,
                                  &matched) ||
      TrySerialize<SnapshotRequestMsg>(msg, WireType::kSnapshotRequest, w,
                                       &out, &matched) ||
      TrySerialize<SnapshotReplyMsg>(msg, WireType::kSnapshotReply, w, &out,
                                     &matched) ||
      TrySerialize<HeartbeatMsg>(msg, WireType::kHeartbeat, w, &out,
                                 &matched);
  DPAXOS_CHECK_MSG(matched, "unserializable message " << msg.TypeName());
  return out;
}

Result<MessagePtr> DeserializeMessage(const std::string& bytes) {
  ByteReader r(bytes);
  uint8_t tag = 0;
  PartitionId partition = 0;
  if (!r.ReadU8(&tag) || !r.ReadU32(&partition)) {
    return Status::Corruption("truncated wire header");
  }
  MessagePtr msg;
  switch (static_cast<WireType>(tag)) {
    case WireType::kPrepare:
      msg = DecodePrepare(r, partition);
      break;
    case WireType::kPromise:
      msg = DecodePromise(r, partition);
      break;
    case WireType::kPrepareNack:
      msg = DecodePrepareNack(r, partition);
      break;
    case WireType::kPropose:
      msg = DecodePropose(r, partition);
      break;
    case WireType::kAccept:
      msg = DecodeAccept(r, partition);
      break;
    case WireType::kAcceptNack:
      msg = DecodeAcceptNack(r, partition);
      break;
    case WireType::kDecide:
      msg = DecodeDecide(r, partition);
      break;
    case WireType::kHandoffRequest:
      msg = std::make_shared<HandoffRequestMsg>(partition);
      break;
    case WireType::kRelinquish:
      msg = DecodeRelinquish(r, partition);
      break;
    case WireType::kGcPoll:
      msg = std::make_shared<GcPollMsg>(partition);
      break;
    case WireType::kGcPollReply:
      msg = DecodeGcPollReply(r, partition);
      break;
    case WireType::kGcThreshold:
      msg = DecodeGcThreshold(r, partition);
      break;
    case WireType::kLzPrepare:
      msg = DecodeLzPrepare(r, partition);
      break;
    case WireType::kLzPromise:
      msg = DecodeLzPromise(r, partition);
      break;
    case WireType::kLzPropose:
      msg = DecodeLzPropose(r, partition);
      break;
    case WireType::kLzAccept:
      msg = DecodeLzAccept(r, partition);
      break;
    case WireType::kLzNack:
      msg = DecodeLzNack(r, partition);
      break;
    case WireType::kLzTransition:
      msg = DecodeLzTransition(r, partition);
      break;
    case WireType::kLzTransitionAck:
      msg = DecodeLzTransitionAck(r, partition);
      break;
    case WireType::kLzStoreIntents:
      msg = DecodeLzStoreIntents(r, partition);
      break;
    case WireType::kLzStoreAck:
      msg = DecodeLzStoreAck(r, partition);
      break;
    case WireType::kLzAnnounce:
      msg = DecodeLzAnnounce(r, partition);
      break;
    case WireType::kForward:
      msg = DecodeForward(r, partition);
      break;
    case WireType::kForwardReply:
      msg = DecodeForwardReply(r, partition);
      break;
    case WireType::kLearnRequest:
      msg = DecodeLearnRequest(r, partition);
      break;
    case WireType::kLearnReply:
      msg = DecodeLearnReply(r, partition);
      break;
    case WireType::kSnapshotRequest:
      msg = std::make_shared<SnapshotRequestMsg>(partition);
      break;
    case WireType::kSnapshotReply:
      msg = DecodeSnapshotReply(r, partition);
      break;
    case WireType::kHeartbeat: {
      Ballot ballot;
      if (ReadBallot(r, &ballot)) {
        msg = std::make_shared<HeartbeatMsg>(partition, ballot);
      }
      break;
    }
    default:
      return Status::Corruption("unknown wire type tag");
  }
  if (msg == nullptr) return Status::Corruption("truncated message body");
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after message");
  return msg;
}

}  // namespace dpaxos
