#include "paxos/wire.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "common/codec.h"
#include "common/perf_counters.h"
#include "paxos/messages.h"

namespace dpaxos {

namespace {

// --- field-group helpers -------------------------------------------------
//
// Every Put helper (and per-type Encode below) is templated on the writer
// so each runs twice per message: once with CountingWriter to size the
// output, once with ByteWriter to emit into the exactly-reserved buffer.

template <typename W>
void PutBallot(W& w, const Ballot& b) {
  w.PutU64(b.round);
  w.PutU32(b.node);
}

bool ReadBallot(ByteReader& r, Ballot* b) {
  return r.ReadU64(&b->round) && r.ReadU32(&b->node);
}

template <typename W>
void PutValue(W& w, const Value& v) {
  w.PutU64(v.id);
  w.PutU64(v.size_bytes);
  w.PutString(v.payload);
}

bool ReadValue(ByteReader& r, Value* v) {
  return r.ReadU64(&v->id) && r.ReadU64(&v->size_bytes) &&
         r.ReadString(&v->payload);
}

template <typename W>
void PutView(W& w, const LeaderZoneView& view) {
  w.PutU64(view.epoch);
  w.PutU32(view.current);
  w.PutU32(view.next);
}

bool ReadView(ByteReader& r, LeaderZoneView* view) {
  return r.ReadU64(&view->epoch) && r.ReadU32(&view->current) &&
         r.ReadU32(&view->next);
}

template <typename W>
void PutIntent(W& w, const Intent& intent) {
  PutBallot(w, intent.ballot);
  w.PutU32(intent.leader);
  w.PutU32(static_cast<uint32_t>(intent.quorum.size()));
  for (NodeId n : intent.quorum) w.PutU32(n);
}

bool ReadIntent(ByteReader& r, Intent* intent) {
  uint32_t size = 0;
  if (!ReadBallot(r, &intent->ballot) || !r.ReadU32(&intent->leader) ||
      !r.ReadU32(&size)) {
    return false;
  }
  if (size > r.remaining() / 4 + 1) return false;  // hostile count
  intent->quorum.resize(size);
  for (uint32_t i = 0; i < size; ++i) {
    if (!r.ReadU32(&intent->quorum[i])) return false;
  }
  return true;
}

template <typename W>
void PutIntents(W& w, const std::vector<Intent>& intents) {
  w.PutU32(static_cast<uint32_t>(intents.size()));
  for (const Intent& in : intents) PutIntent(w, in);
}

bool ReadIntents(ByteReader& r, std::vector<Intent>* intents) {
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return false;
  if (count > r.remaining() / 20 + 1) return false;
  intents->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadIntent(r, &(*intents)[i])) return false;
  }
  return true;
}

template <typename W>
void PutAcceptedEntry(W& w, const AcceptedEntry& e) {
  w.PutU64(e.slot);
  PutBallot(w, e.ballot);
  PutValue(w, e.value);
  w.PutBool(e.fast);
}

bool ReadAcceptedEntry(ByteReader& r, AcceptedEntry* e) {
  return r.ReadU64(&e->slot) && ReadBallot(r, &e->ballot) &&
         ReadValue(r, &e->value) && r.ReadBool(&e->fast);
}

// --- per-type encoders ----------------------------------------------------

template <typename W>
void Encode(W& w, const PrepareMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.first_slot);
  PutIntents(w, m.intents);
  w.PutBool(m.expansion);
  PutView(w, m.lz_view);
}

template <typename W>
void Encode(W& w, const PromiseMsg& m) {
  PutBallot(w, m.ballot);
  w.PutBool(m.expansion);
  w.PutU32(static_cast<uint32_t>(m.accepted.size()));
  for (const AcceptedEntry& e : m.accepted) PutAcceptedEntry(w, e);
  PutIntents(w, m.intents);
  PutView(w, m.lz_view);
  w.PutU64(m.compacted_through);
}

template <typename W>
void Encode(W& w, const PrepareNackMsg& m) {
  PutBallot(w, m.ballot);
  PutBallot(w, m.promised);
  w.PutU64(m.lease_until);
  PutView(w, m.lz_view);
}

template <typename W>
void Encode(W& w, const ProposeMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  PutValue(w, m.value);
  w.PutBool(m.lease_request);
  w.PutU64(m.lease_until);
  w.PutBool(m.recovery_complete);
}

template <typename W>
void Encode(W& w, const AcceptMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  w.PutBool(m.lease_vote);
  w.PutU64(m.lease_until);
}

template <typename W>
void Encode(W& w, const AcceptNackMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  PutBallot(w, m.promised);
}

template <typename W>
void Encode(W& w, const DecideMsg& m) {
  w.PutU64(m.slot);
  PutValue(w, m.value);
}

template <typename W>
void Encode(W&, const HandoffRequestMsg&) {}

template <typename W>
void Encode(W& w, const HeartbeatMsg& m) {
  PutBallot(w, m.ballot);
}

template <typename W>
void Encode(W& w, const RelinquishMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.next_slot);
  PutIntents(w, m.intents);
  PutView(w, m.lz_view);
}

template <typename W>
void Encode(W&, const GcPollMsg&) {}

template <typename W>
void Encode(W& w, const GcPollReplyMsg& m) {
  PutBallot(w, m.max_propose_ballot);
}

template <typename W>
void Encode(W& w, const GcThresholdMsg& m) {
  PutBallot(w, m.threshold);
}

template <typename W>
void Encode(W& w, const LzPrepareMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
}

template <typename W>
void Encode(W& w, const LzPromiseMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  PutBallot(w, m.accepted_ballot);
  w.PutU32(m.accepted_zone);
}

template <typename W>
void Encode(W& w, const LzProposeMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  w.PutU32(m.next_zone);
}

template <typename W>
void Encode(W& w, const LzAcceptMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  w.PutU32(m.next_zone);
}

template <typename W>
void Encode(W& w, const LzNackMsg& m) {
  w.PutU64(m.epoch);
  PutBallot(w, m.ballot);
  PutBallot(w, m.promised);
  PutView(w, m.lz_view);
}

template <typename W>
void Encode(W& w, const LzTransitionMsg& m) {
  w.PutU64(m.epoch);
  w.PutU32(m.next_zone);
}

template <typename W>
void Encode(W& w, const LzTransitionAckMsg& m) {
  w.PutU64(m.epoch);
  PutIntents(w, m.intents);
}

template <typename W>
void Encode(W& w, const LzStoreIntentsMsg& m) {
  w.PutU64(m.epoch);
  w.PutU32(m.next_zone);
  PutIntents(w, m.intents);
}

template <typename W>
void Encode(W& w, const LzStoreAckMsg& m) {
  w.PutU64(m.epoch);
}

template <typename W>
void Encode(W& w, const LzAnnounceMsg& m) {
  PutView(w, m.view);
}

template <typename W>
void Encode(W& w, const ForwardMsg& m) {
  w.PutU64(m.request_id);
  PutValue(w, m.value);
}

template <typename W>
void Encode(W& w, const ForwardReplyMsg& m) {
  w.PutU64(m.request_id);
  w.PutU8(static_cast<uint8_t>(m.code));
  w.PutU64(m.slot);
  w.PutU32(m.leader_hint);
}

template <typename W>
void Encode(W& w, const LearnRequestMsg& m) {
  w.PutU64(m.from_slot);
  w.PutU32(m.max_entries);
}

template <typename W>
void Encode(W& w, const LearnReplyMsg& m) {
  w.PutU64(m.from_slot);
  w.PutU32(static_cast<uint32_t>(m.entries.size()));
  for (const DecidedEntryWire& e : m.entries) {
    w.PutU64(e.slot);
    PutValue(w, e.value);
  }
  w.PutU64(m.peer_watermark);
  w.PutU64(m.first_available);
}

template <typename W>
void Encode(W& w, const SnapshotRequestMsg& m) {
  w.PutU64(m.offset);
}

template <typename W>
void Encode(W& w, const FastGrantMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.first_slot);
  w.PutU32(static_cast<uint32_t>(m.quorum.size()));
  for (NodeId n : m.quorum) w.PutU32(n);
}

template <typename W>
void Encode(W& w, const FastAcceptMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.request_id);
  PutValue(w, m.value);
}

template <typename W>
void Encode(W& w, const FastAcceptedMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU64(m.slot);
  w.PutU32(m.proposer);
  w.PutU64(m.request_id);
  PutValue(w, m.value);
}

template <typename W>
void Encode(W& w, const FastNackMsg& m) {
  PutBallot(w, m.ballot);
  PutBallot(w, m.promised);
  w.PutU64(m.request_id);
  w.PutU32(m.leader_hint);
}

template <typename W>
void Encode(W& w, const StealRequestMsg& m) {
  PutBallot(w, m.ballot);
  w.PutU32(m.thief_zone);
  w.PutBool(m.invite);
}

template <typename W>
void Encode(W& w, const OwnershipGrantMsg& m) {
  w.PutBool(m.granted);
  w.PutU8(static_cast<uint8_t>(m.reason));
  PutBallot(w, m.ballot);
  w.PutU64(m.next_slot);
  w.PutU64(m.decided_size);
  w.PutBool(m.snapshot_ready);
  w.PutU32(m.leader_hint);
}

template <typename W>
void Encode(W& w, const SnapshotChunkMsg& m) {
  w.PutU64(m.through_slot);
  w.PutU64(m.offset);
  w.PutU64(m.total_bytes);
  w.PutString(m.data);
}

/// Encode the body (everything after the tag+partition header) of `msg`,
/// whose dynamic type is identified by `type` (its wire_tag()). The tag
/// was placed on each message by its own class, so the static_cast per
/// case is exact — this replaces a 29-way dynamic_cast probe with one
/// virtual call and a jump table.
template <typename W>
void EncodeBody(W& w, const Message& msg, WireType type) {
  switch (type) {
    case WireType::kPrepare:
      Encode(w, static_cast<const PrepareMsg&>(msg));
      return;
    case WireType::kPromise:
      Encode(w, static_cast<const PromiseMsg&>(msg));
      return;
    case WireType::kPrepareNack:
      Encode(w, static_cast<const PrepareNackMsg&>(msg));
      return;
    case WireType::kPropose:
      Encode(w, static_cast<const ProposeMsg&>(msg));
      return;
    case WireType::kAccept:
      Encode(w, static_cast<const AcceptMsg&>(msg));
      return;
    case WireType::kAcceptNack:
      Encode(w, static_cast<const AcceptNackMsg&>(msg));
      return;
    case WireType::kDecide:
      Encode(w, static_cast<const DecideMsg&>(msg));
      return;
    case WireType::kHandoffRequest:
      Encode(w, static_cast<const HandoffRequestMsg&>(msg));
      return;
    case WireType::kRelinquish:
      Encode(w, static_cast<const RelinquishMsg&>(msg));
      return;
    case WireType::kGcPoll:
      Encode(w, static_cast<const GcPollMsg&>(msg));
      return;
    case WireType::kGcPollReply:
      Encode(w, static_cast<const GcPollReplyMsg&>(msg));
      return;
    case WireType::kGcThreshold:
      Encode(w, static_cast<const GcThresholdMsg&>(msg));
      return;
    case WireType::kLzPrepare:
      Encode(w, static_cast<const LzPrepareMsg&>(msg));
      return;
    case WireType::kLzPromise:
      Encode(w, static_cast<const LzPromiseMsg&>(msg));
      return;
    case WireType::kLzPropose:
      Encode(w, static_cast<const LzProposeMsg&>(msg));
      return;
    case WireType::kLzAccept:
      Encode(w, static_cast<const LzAcceptMsg&>(msg));
      return;
    case WireType::kLzNack:
      Encode(w, static_cast<const LzNackMsg&>(msg));
      return;
    case WireType::kLzTransition:
      Encode(w, static_cast<const LzTransitionMsg&>(msg));
      return;
    case WireType::kLzTransitionAck:
      Encode(w, static_cast<const LzTransitionAckMsg&>(msg));
      return;
    case WireType::kLzStoreIntents:
      Encode(w, static_cast<const LzStoreIntentsMsg&>(msg));
      return;
    case WireType::kLzStoreAck:
      Encode(w, static_cast<const LzStoreAckMsg&>(msg));
      return;
    case WireType::kLzAnnounce:
      Encode(w, static_cast<const LzAnnounceMsg&>(msg));
      return;
    case WireType::kForward:
      Encode(w, static_cast<const ForwardMsg&>(msg));
      return;
    case WireType::kForwardReply:
      Encode(w, static_cast<const ForwardReplyMsg&>(msg));
      return;
    case WireType::kLearnRequest:
      Encode(w, static_cast<const LearnRequestMsg&>(msg));
      return;
    case WireType::kLearnReply:
      Encode(w, static_cast<const LearnReplyMsg&>(msg));
      return;
    case WireType::kSnapshotRequest:
      Encode(w, static_cast<const SnapshotRequestMsg&>(msg));
      return;
    case WireType::kSnapshotChunk:
      Encode(w, static_cast<const SnapshotChunkMsg&>(msg));
      return;
    case WireType::kHeartbeat:
      Encode(w, static_cast<const HeartbeatMsg&>(msg));
      return;
    case WireType::kFastGrant:
      Encode(w, static_cast<const FastGrantMsg&>(msg));
      return;
    case WireType::kFastAccept:
      Encode(w, static_cast<const FastAcceptMsg&>(msg));
      return;
    case WireType::kFastAccepted:
      Encode(w, static_cast<const FastAcceptedMsg&>(msg));
      return;
    case WireType::kFastNack:
      Encode(w, static_cast<const FastNackMsg&>(msg));
      return;
    case WireType::kStealRequest:
      Encode(w, static_cast<const StealRequestMsg&>(msg));
      return;
    case WireType::kOwnershipGrant:
      Encode(w, static_cast<const OwnershipGrantMsg&>(msg));
      return;
  }
  DPAXOS_CHECK_MSG(false, "unserializable message " << msg.TypeName());
}

// --- per-type decoders ------------------------------------------------------

MessagePtr DecodePrepare(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t first_slot = 0;
  std::vector<Intent> intents;
  bool expansion = false;
  LeaderZoneView view;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&first_slot) ||
      !ReadIntents(r, &intents) || !r.ReadBool(&expansion) ||
      !ReadView(r, &view)) {
    return nullptr;
  }
  return std::make_shared<PrepareMsg>(p, ballot, first_slot,
                                      std::move(intents), expansion, view);
}

MessagePtr DecodePromise(ByteReader& r, PartitionId p) {
  Ballot ballot;
  bool expansion = false;
  if (!ReadBallot(r, &ballot) || !r.ReadBool(&expansion)) return nullptr;
  auto msg = std::make_shared<PromiseMsg>(p, ballot, expansion);
  uint32_t count = 0;
  if (!r.ReadU32(&count) || count > r.remaining() / 20 + 1) return nullptr;
  msg->accepted.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadAcceptedEntry(r, &msg->accepted[i])) return nullptr;
  }
  if (!ReadIntents(r, &msg->intents) || !ReadView(r, &msg->lz_view) ||
      !r.ReadU64(&msg->compacted_through)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodePrepareNack(ByteReader& r, PartitionId p) {
  Ballot ballot;
  if (!ReadBallot(r, &ballot)) return nullptr;
  auto msg = std::make_shared<PrepareNackMsg>(p, ballot);
  if (!ReadBallot(r, &msg->promised) || !r.ReadU64(&msg->lease_until) ||
      !ReadView(r, &msg->lz_view)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodePropose(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t slot = 0;
  Value value;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot) || !ReadValue(r, &value)) {
    return nullptr;
  }
  auto msg = std::make_shared<ProposeMsg>(p, ballot, slot, std::move(value));
  if (!r.ReadBool(&msg->lease_request) || !r.ReadU64(&msg->lease_until) ||
      !r.ReadBool(&msg->recovery_complete)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeAccept(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t slot = 0;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot)) return nullptr;
  auto msg = std::make_shared<AcceptMsg>(p, ballot, slot);
  if (!r.ReadBool(&msg->lease_vote) || !r.ReadU64(&msg->lease_until)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeAcceptNack(ByteReader& r, PartitionId p) {
  Ballot ballot, promised;
  uint64_t slot = 0;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot) ||
      !ReadBallot(r, &promised)) {
    return nullptr;
  }
  return std::make_shared<AcceptNackMsg>(p, ballot, slot, promised);
}

MessagePtr DecodeDecide(ByteReader& r, PartitionId p) {
  uint64_t slot = 0;
  Value value;
  if (!r.ReadU64(&slot) || !ReadValue(r, &value)) return nullptr;
  return std::make_shared<DecideMsg>(p, slot, std::move(value));
}

MessagePtr DecodeRelinquish(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t next_slot = 0;
  std::vector<Intent> intents;
  LeaderZoneView view;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&next_slot) ||
      !ReadIntents(r, &intents) || !ReadView(r, &view)) {
    return nullptr;
  }
  return std::make_shared<RelinquishMsg>(p, ballot, next_slot,
                                         std::move(intents), view);
}

MessagePtr DecodeGcPollReply(ByteReader& r, PartitionId p) {
  Ballot ballot;
  if (!ReadBallot(r, &ballot)) return nullptr;
  return std::make_shared<GcPollReplyMsg>(p, ballot);
}

MessagePtr DecodeGcThreshold(ByteReader& r, PartitionId p) {
  Ballot ballot;
  if (!ReadBallot(r, &ballot)) return nullptr;
  return std::make_shared<GcThresholdMsg>(p, ballot);
}

MessagePtr DecodeLzPrepare(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot)) return nullptr;
  return std::make_shared<LzPrepareMsg>(p, epoch, ballot);
}

MessagePtr DecodeLzPromise(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot)) return nullptr;
  auto msg = std::make_shared<LzPromiseMsg>(p, epoch, ballot);
  if (!ReadBallot(r, &msg->accepted_ballot) ||
      !r.ReadU32(&msg->accepted_zone)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeLzPropose(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  uint32_t zone = 0;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot) || !r.ReadU32(&zone)) {
    return nullptr;
  }
  return std::make_shared<LzProposeMsg>(p, epoch, ballot, zone);
}

MessagePtr DecodeLzAccept(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot;
  uint32_t zone = 0;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot) || !r.ReadU32(&zone)) {
    return nullptr;
  }
  return std::make_shared<LzAcceptMsg>(p, epoch, ballot, zone);
}

MessagePtr DecodeLzNack(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  Ballot ballot, promised;
  LeaderZoneView view;
  if (!r.ReadU64(&epoch) || !ReadBallot(r, &ballot) ||
      !ReadBallot(r, &promised) || !ReadView(r, &view)) {
    return nullptr;
  }
  return std::make_shared<LzNackMsg>(p, epoch, ballot, promised, view);
}

MessagePtr DecodeLzTransition(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  uint32_t zone = 0;
  if (!r.ReadU64(&epoch) || !r.ReadU32(&zone)) return nullptr;
  return std::make_shared<LzTransitionMsg>(p, epoch, zone);
}

MessagePtr DecodeLzTransitionAck(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  std::vector<Intent> intents;
  if (!r.ReadU64(&epoch) || !ReadIntents(r, &intents)) return nullptr;
  return std::make_shared<LzTransitionAckMsg>(p, epoch, std::move(intents));
}

MessagePtr DecodeLzStoreIntents(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  uint32_t zone = 0;
  std::vector<Intent> intents;
  if (!r.ReadU64(&epoch) || !r.ReadU32(&zone) || !ReadIntents(r, &intents)) {
    return nullptr;
  }
  return std::make_shared<LzStoreIntentsMsg>(p, epoch, zone,
                                             std::move(intents));
}

MessagePtr DecodeLzStoreAck(ByteReader& r, PartitionId p) {
  uint64_t epoch = 0;
  if (!r.ReadU64(&epoch)) return nullptr;
  return std::make_shared<LzStoreAckMsg>(p, epoch);
}

MessagePtr DecodeLzAnnounce(ByteReader& r, PartitionId p) {
  LeaderZoneView view;
  if (!ReadView(r, &view)) return nullptr;
  return std::make_shared<LzAnnounceMsg>(p, view);
}

MessagePtr DecodeForward(ByteReader& r, PartitionId p) {
  uint64_t request_id = 0;
  Value value;
  if (!r.ReadU64(&request_id) || !ReadValue(r, &value)) return nullptr;
  return std::make_shared<ForwardMsg>(p, request_id, std::move(value));
}

MessagePtr DecodeForwardReply(ByteReader& r, PartitionId p) {
  uint64_t request_id = 0;
  if (!r.ReadU64(&request_id)) return nullptr;
  auto msg = std::make_shared<ForwardReplyMsg>(p, request_id);
  uint8_t code = 0;
  if (!r.ReadU8(&code) ||
      code > static_cast<uint8_t>(StatusCode::kInternal) ||
      !r.ReadU64(&msg->slot) || !r.ReadU32(&msg->leader_hint)) {
    return nullptr;
  }
  msg->code = static_cast<StatusCode>(code);
  return msg;
}

MessagePtr DecodeLearnRequest(ByteReader& r, PartitionId p) {
  uint64_t from_slot = 0;
  uint32_t max_entries = 0;
  if (!r.ReadU64(&from_slot) || !r.ReadU32(&max_entries)) return nullptr;
  return std::make_shared<LearnRequestMsg>(p, from_slot, max_entries);
}

MessagePtr DecodeLearnReply(ByteReader& r, PartitionId p) {
  auto msg = std::make_shared<LearnReplyMsg>(p);
  uint32_t count = 0;
  if (!r.ReadU64(&msg->from_slot) || !r.ReadU32(&count) ||
      count > r.remaining() / 24 + 1) {
    return nullptr;
  }
  msg->entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.ReadU64(&msg->entries[i].slot) ||
        !ReadValue(r, &msg->entries[i].value)) {
      return nullptr;
    }
  }
  if (!r.ReadU64(&msg->peer_watermark) || !r.ReadU64(&msg->first_available)) {
    return nullptr;
  }
  return msg;
}

MessagePtr DecodeFastGrant(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t first_slot = 0;
  uint32_t count = 0;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&first_slot) ||
      !r.ReadU32(&count) || count > r.remaining() / 4 + 1) {
    return nullptr;
  }
  std::vector<NodeId> quorum(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.ReadU32(&quorum[i])) return nullptr;
  }
  return std::make_shared<FastGrantMsg>(p, ballot, first_slot,
                                        std::move(quorum));
}

MessagePtr DecodeFastAccept(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t request_id = 0;
  Value value;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&request_id) ||
      !ReadValue(r, &value)) {
    return nullptr;
  }
  return std::make_shared<FastAcceptMsg>(p, ballot, request_id,
                                         std::move(value));
}

MessagePtr DecodeFastAccepted(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint64_t slot = 0, request_id = 0;
  uint32_t proposer = 0;
  Value value;
  if (!ReadBallot(r, &ballot) || !r.ReadU64(&slot) || !r.ReadU32(&proposer) ||
      !r.ReadU64(&request_id) || !ReadValue(r, &value)) {
    return nullptr;
  }
  return std::make_shared<FastAcceptedMsg>(p, ballot, slot, proposer,
                                           request_id, std::move(value));
}

MessagePtr DecodeFastNack(ByteReader& r, PartitionId p) {
  Ballot ballot, promised;
  uint64_t request_id = 0;
  if (!ReadBallot(r, &ballot) || !ReadBallot(r, &promised) ||
      !r.ReadU64(&request_id)) {
    return nullptr;
  }
  auto msg = std::make_shared<FastNackMsg>(p, ballot, promised, request_id);
  if (!r.ReadU32(&msg->leader_hint)) return nullptr;
  return msg;
}

MessagePtr DecodeStealRequest(ByteReader& r, PartitionId p) {
  Ballot ballot;
  uint32_t zone = 0;
  bool invite = false;
  if (!ReadBallot(r, &ballot) || !r.ReadU32(&zone) || !r.ReadBool(&invite)) {
    return nullptr;
  }
  return std::make_shared<StealRequestMsg>(p, ballot, zone, invite);
}

MessagePtr DecodeOwnershipGrant(ByteReader& r, PartitionId p) {
  bool granted = false;
  uint8_t reason = 0;
  Ballot ballot;
  uint64_t next_slot = 0, decided = 0;
  bool snapshot_ready = false;
  uint32_t leader_hint = 0;
  if (!r.ReadBool(&granted) || !r.ReadU8(&reason) ||
      reason > static_cast<uint8_t>(StealRefusal::kFastGrant) ||
      !ReadBallot(r, &ballot) || !r.ReadU64(&next_slot) ||
      !r.ReadU64(&decided) || !r.ReadBool(&snapshot_ready) ||
      !r.ReadU32(&leader_hint)) {
    return nullptr;
  }
  return std::make_shared<OwnershipGrantMsg>(
      p, granted, static_cast<StealRefusal>(reason), ballot, next_slot,
      decided, snapshot_ready, leader_hint);
}

MessagePtr DecodeSnapshotRequest(ByteReader& r, PartitionId p) {
  uint64_t offset = 0;
  if (!r.ReadU64(&offset)) return nullptr;
  return std::make_shared<SnapshotRequestMsg>(p, offset);
}

MessagePtr DecodeSnapshotChunk(ByteReader& r, PartitionId p) {
  uint64_t through = 0, offset = 0, total = 0;
  std::string data;
  if (!r.ReadU64(&through) || !r.ReadU64(&offset) || !r.ReadU64(&total) ||
      !r.ReadString(&data)) {
    return nullptr;
  }
  return std::make_shared<SnapshotChunkMsg>(p, through, offset, total,
                                            std::move(data));
}

/// tag (u8) + partition (u32).
constexpr size_t kWireHeaderBytes = 5;

}  // namespace

void SerializeMessageInto(const Message& msg, std::string* out) {
  const uint8_t tag = msg.wire_tag();
  DPAXOS_CHECK_MSG(tag != 0, "unserializable message " << msg.TypeName());
  const WireType type = static_cast<WireType>(tag);
  // Pass 1: exact body size, so pass 2 appends into reserved capacity.
  CountingWriter counter;
  EncodeBody(counter, msg, type);
  const size_t encoded = kWireHeaderBytes + counter.size();
  out->reserve(out->size() + encoded);
  ByteWriter w(out);
  w.PutU8(tag);
  // Only PaxosMessage subclasses carry non-zero wire tags.
  w.PutU32(static_cast<const PaxosMessage&>(msg).partition);
  EncodeBody(w, msg, type);
  PerfCounters& perf = ThreadPerfCounters();
  ++perf.wire_encodes;
  perf.wire_encode_bytes += encoded;
}

std::string SerializeMessage(const Message& msg) {
  std::string out;
  SerializeMessageInto(msg, &out);
  return out;
}

Result<MessagePtr> DeserializeMessage(std::string_view bytes) {
  ++ThreadPerfCounters().wire_decodes;
  ByteReader r(bytes);
  uint8_t tag = 0;
  PartitionId partition = 0;
  if (!r.ReadU8(&tag) || !r.ReadU32(&partition)) {
    return Status::Corruption("truncated wire header");
  }
  MessagePtr msg;
  switch (static_cast<WireType>(tag)) {
    case WireType::kPrepare:
      msg = DecodePrepare(r, partition);
      break;
    case WireType::kPromise:
      msg = DecodePromise(r, partition);
      break;
    case WireType::kPrepareNack:
      msg = DecodePrepareNack(r, partition);
      break;
    case WireType::kPropose:
      msg = DecodePropose(r, partition);
      break;
    case WireType::kAccept:
      msg = DecodeAccept(r, partition);
      break;
    case WireType::kAcceptNack:
      msg = DecodeAcceptNack(r, partition);
      break;
    case WireType::kDecide:
      msg = DecodeDecide(r, partition);
      break;
    case WireType::kHandoffRequest:
      msg = std::make_shared<HandoffRequestMsg>(partition);
      break;
    case WireType::kRelinquish:
      msg = DecodeRelinquish(r, partition);
      break;
    case WireType::kGcPoll:
      msg = std::make_shared<GcPollMsg>(partition);
      break;
    case WireType::kGcPollReply:
      msg = DecodeGcPollReply(r, partition);
      break;
    case WireType::kGcThreshold:
      msg = DecodeGcThreshold(r, partition);
      break;
    case WireType::kLzPrepare:
      msg = DecodeLzPrepare(r, partition);
      break;
    case WireType::kLzPromise:
      msg = DecodeLzPromise(r, partition);
      break;
    case WireType::kLzPropose:
      msg = DecodeLzPropose(r, partition);
      break;
    case WireType::kLzAccept:
      msg = DecodeLzAccept(r, partition);
      break;
    case WireType::kLzNack:
      msg = DecodeLzNack(r, partition);
      break;
    case WireType::kLzTransition:
      msg = DecodeLzTransition(r, partition);
      break;
    case WireType::kLzTransitionAck:
      msg = DecodeLzTransitionAck(r, partition);
      break;
    case WireType::kLzStoreIntents:
      msg = DecodeLzStoreIntents(r, partition);
      break;
    case WireType::kLzStoreAck:
      msg = DecodeLzStoreAck(r, partition);
      break;
    case WireType::kLzAnnounce:
      msg = DecodeLzAnnounce(r, partition);
      break;
    case WireType::kForward:
      msg = DecodeForward(r, partition);
      break;
    case WireType::kForwardReply:
      msg = DecodeForwardReply(r, partition);
      break;
    case WireType::kLearnRequest:
      msg = DecodeLearnRequest(r, partition);
      break;
    case WireType::kLearnReply:
      msg = DecodeLearnReply(r, partition);
      break;
    case WireType::kSnapshotRequest:
      msg = DecodeSnapshotRequest(r, partition);
      break;
    case WireType::kSnapshotChunk:
      msg = DecodeSnapshotChunk(r, partition);
      break;
    case WireType::kHeartbeat: {
      Ballot ballot;
      if (ReadBallot(r, &ballot)) {
        msg = std::make_shared<HeartbeatMsg>(partition, ballot);
      }
      break;
    }
    case WireType::kFastGrant:
      msg = DecodeFastGrant(r, partition);
      break;
    case WireType::kFastAccept:
      msg = DecodeFastAccept(r, partition);
      break;
    case WireType::kFastAccepted:
      msg = DecodeFastAccepted(r, partition);
      break;
    case WireType::kFastNack:
      msg = DecodeFastNack(r, partition);
      break;
    case WireType::kStealRequest:
      msg = DecodeStealRequest(r, partition);
      break;
    case WireType::kOwnershipGrant:
      msg = DecodeOwnershipGrant(r, partition);
      break;
    default:
      return Status::Corruption("unknown wire type tag");
  }
  if (msg == nullptr) return Status::Corruption("truncated message body");
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after message");
  return msg;
}

}  // namespace dpaxos
