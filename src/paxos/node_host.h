// NodeHost: one physical node's endpoint on the transport, hosting one
// Replica per partition plus optional co-located components (garbage
// collectors). Demultiplexes incoming messages by partition.
#ifndef DPAXOS_PAXOS_NODE_HOST_H_
#define DPAXOS_PAXOS_NODE_HOST_H_

#include <map>
#include <memory>

#include "common/types.h"
#include "net/transport.h"
#include "paxos/replica.h"
#include "storage/storage.h"

namespace dpaxos {

class GarbageCollector;

/// \brief A node: transport endpoint + per-partition replicas.
class NodeHost {
 public:
  /// Registers this host as `id`'s handler on the transport.
  NodeHost(EventScheduler* sim, Transport* transport, const Topology* topology,
           NodeId id);

  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  /// Create (and own) the replica for `config.partition` on this node.
  /// The replica's acceptor state lives in this host's durable storage.
  Replica* AddReplica(const QuorumSystem* quorums, const ReplicaConfig& config);

  Replica* replica(PartitionId partition) const;

  /// Simulate a process restart: every replica is destroyed (volatile
  /// proposer/learner state lost, pending timers dropped) and recreated
  /// from the durable acceptor records. The transport identity and
  /// storage survive. Decide callbacks and snapshot hooks must be
  /// re-wired by the caller. With `lose_unsynced` (requires the
  /// storage's crash-fault mode) the acceptor records first roll back
  /// to their last completed sync, modelling a power loss that eats the
  /// un-fsynced write suffix.
  void Restart(bool lose_unsynced = false);

  /// This node's durable store (survives Restart()).
  NodeStorage& storage() { return storage_; }

  /// Attach a co-located garbage collector for one partition: GC poll
  /// replies for that partition are routed to it instead of the replica.
  void AttachGarbageCollector(GarbageCollector* gc);

  NodeId id() const { return id_; }
  ZoneId zone() const { return topology_->ZoneOf(id_); }

 private:
  void OnMessage(NodeId from, const MessagePtr& msg);

  EventScheduler* sim_;
  Transport* transport_;
  const Topology* topology_;
  NodeId id_;
  NodeStorage storage_;
  std::map<PartitionId, std::unique_ptr<Replica>> replicas_;
  // Construction parameters retained so Restart() can rebuild replicas.
  std::map<PartitionId, std::pair<const QuorumSystem*, ReplicaConfig>>
      blueprints_;
  std::map<PartitionId, GarbageCollector*> collectors_;
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_NODE_HOST_H_
