// Wire messages of the DPaxos protocol family.
//
// One partition = one Paxos instance; every message carries the partition
// id so a NodeHost can demultiplex. SizeBytes() models serialized size
// for the bandwidth model: a fixed header plus per-field payloads.
#ifndef DPAXOS_PAXOS_MESSAGES_H_
#define DPAXOS_PAXOS_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "paxos/ballot.h"
#include "paxos/intent.h"
#include "paxos/value.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

/// Fixed per-message framing overhead (headers, type tag, partition id).
inline constexpr uint64_t kMessageHeaderBytes = 64;

/// Stable one-byte tags identifying each message type on the wire.
/// Each message's wire_tag() override returns its entry; the codec
/// (paxos/wire.h) dispatches encode and decode on it.
enum class WireType : uint8_t {
  kPrepare = 1,
  kPromise = 2,
  kPrepareNack = 3,
  kPropose = 4,
  kAccept = 5,
  kAcceptNack = 6,
  kDecide = 7,
  kHandoffRequest = 8,
  kRelinquish = 9,
  kGcPoll = 10,
  kGcPollReply = 11,
  kGcThreshold = 12,
  kLzPrepare = 13,
  kLzPromise = 14,
  kLzPropose = 15,
  kLzAccept = 16,
  kLzNack = 17,
  kLzTransition = 18,
  kLzTransitionAck = 19,
  kLzStoreIntents = 20,
  kLzStoreAck = 21,
  kLzAnnounce = 22,
  kForward = 23,
  kForwardReply = 24,
  kLearnRequest = 25,
  kLearnReply = 26,
  kSnapshotRequest = 27,
  // 28 was the single-message kSnapshotReply, superseded by chunked
  // transfer; the tag is retired (decodes as unknown), never reused.
  kHeartbeat = 29,
  kSnapshotChunk = 30,
  kFastAccept = 31,
  kFastAccepted = 32,
  kFastNack = 33,
  kFastGrant = 34,
  kStealRequest = 35,
  kOwnershipGrant = 36,
};

/// \brief Common base: every protocol message belongs to a partition.
struct PaxosMessage : Message {
  explicit PaxosMessage(PartitionId p) : partition(p) {}
  PartitionId partition;
};

inline uint64_t IntentsWireSize(const std::vector<Intent>& intents) {
  uint64_t total = 0;
  for (const Intent& i : intents) total += i.WireSize();
  return total;
}

// ---------------------------------------------------------------------
// Leader Election phase

/// prepare(p, intents): Leader Election round (paper Algorithm 1 line 6).
/// `expansion` marks the second round sent to detected intents' quorums;
/// it carries the same ballot and intents as the first round.
struct PrepareMsg final : PaxosMessage {
  PrepareMsg(PartitionId p, Ballot b, SlotId first, std::vector<Intent> in,
             bool exp, LeaderZoneView view)
      : PaxosMessage(p),
        ballot(b),
        first_slot(first),
        intents(std::move(in)),
        expansion(exp),
        lz_view(view) {}

  Ballot ballot;
  SlotId first_slot;
  std::vector<Intent> intents;
  bool expansion;
  LeaderZoneView lz_view;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 24 + IntentsWireSize(intents);
  }
  const char* TypeName() const override { return "prepare"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kPrepare);
  }
};

/// An accepted (slot, ballot, value) triple reported in a promise.
/// `fast` marks fast-round votes (acceptor-assigned slot, no leader
/// relay): during recovery a classic entry beats a fast entry at the
/// same ballot, because the leader only classic-proposes over fast votes
/// once no fast value can reach unanimity (docs/PROTOCOL.md).
struct AcceptedEntry {
  SlotId slot;
  Ballot ballot;
  Value value;
  bool fast = false;
};

/// promise(q, v_q, p, intents): positive Leader Election vote.
struct PromiseMsg final : PaxosMessage {
  PromiseMsg(PartitionId p, Ballot b, bool exp)
      : PaxosMessage(p), ballot(b), expansion(exp) {}

  /// The prepare ballot being answered.
  Ballot ballot;
  /// Echo of PrepareMsg::expansion, so the candidate can tell which round
  /// this vote belongs to (intents from expansion-round promises may be
  /// discarded, paper Section 4.3.1).
  bool expansion;
  /// Previously accepted entries for slots >= the prepare's first_slot.
  std::vector<AcceptedEntry> accepted;
  /// Previously stored intents (paper: "list of previously received
  /// intents"), excluding the one just declared by this prepare.
  std::vector<Intent> intents;
  /// Piggybacked Leader Zone information (paper Algorithm 2 lines 5-10).
  LeaderZoneView lz_view;
  /// The acceptor's durable compaction watermark: it has released every
  /// accepted entry below this slot (all covered by its snapshot). A
  /// candidate must not treat those slots as undecided holes — see the
  /// compaction rule in docs/PROTOCOL.md.
  SlotId compacted_through = 0;

  uint64_t SizeBytes() const override {
    uint64_t sz = kMessageHeaderBytes + 16 + IntentsWireSize(intents);
    // The fast flag is modeled only on fast entries, so fast-path-off
    // runs keep their historical bandwidth schedule bit-for-bit.
    for (const AcceptedEntry& e : accepted) {
      sz += 32 + e.value.size_bytes + (e.fast ? 1 : 0);
    }
    // Modeled only when compaction is active, so compaction-off runs keep
    // their historical bandwidth schedule bit-for-bit.
    if (compacted_through != 0) sz += 8;
    return sz;
  }
  const char* TypeName() const override { return "promise"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kPromise);
  }
};

/// Negative Leader Election vote: a higher ballot was already promised,
/// a read lease blocks elections, or the aspirant's Leader Zone view is
/// stale (redirect).
struct PrepareNackMsg final : PaxosMessage {
  PrepareNackMsg(PartitionId p, Ballot b) : PaxosMessage(p), ballot(b) {}

  /// The prepare ballot being rejected.
  Ballot ballot;
  /// The conflicting promised ballot (null if rejected for another reason).
  Ballot promised;
  /// If a read lease blocks this election, when it expires (else 0).
  Timestamp lease_until = 0;
  /// The responder's Leader Zone view (redirection, paper Step 3).
  LeaderZoneView lz_view;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 40; }
  const char* TypeName() const override { return "prepare-nack"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kPrepareNack);
  }
};

// ---------------------------------------------------------------------
// Replication phase

/// propose(p, v) for one slot (the paper's accept-request).
struct ProposeMsg final : PaxosMessage {
  ProposeMsg(PartitionId p, Ballot b, SlotId s, Value v)
      : PaxosMessage(p), ballot(b), slot(s), value(std::move(v)) {}

  Ballot ballot;
  SlotId slot;
  Value value;
  /// Piggybacked read-lease request (paper Section 4.5): an accept doubles
  /// as a lease vote valid until `lease_until`.
  bool lease_request = false;
  Timestamp lease_until = 0;
  /// True once this leader finished re-committing every value it adopted
  /// during its Leader Election. The garbage-collection threshold only
  /// advances on flagged proposes: collecting an intent before its
  /// decided values were re-secured at the new leader's quorum could
  /// lose them (a strengthening of the paper's Algorithm 3 — see
  /// docs/PROTOCOL.md).
  bool recovery_complete = false;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 32 + value.size_bytes;
  }
  const char* TypeName() const override { return "propose"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kPropose);
  }
};

/// accept(p): positive Replication vote for one slot.
struct AcceptMsg final : PaxosMessage {
  AcceptMsg(PartitionId p, Ballot b, SlotId s)
      : PaxosMessage(p), ballot(b), slot(s) {}

  Ballot ballot;
  SlotId slot;
  /// Piggybacked lease vote (paper Section 4.5).
  bool lease_vote = false;
  Timestamp lease_until = 0;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 32; }
  const char* TypeName() const override { return "accept"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kAccept);
  }
};

/// Negative Replication vote: the acceptor promised a higher ballot.
struct AcceptNackMsg final : PaxosMessage {
  AcceptNackMsg(PartitionId p, Ballot b, SlotId s, Ballot prom)
      : PaxosMessage(p), ballot(b), slot(s), promised(prom) {}

  Ballot ballot;
  SlotId slot;
  Ballot promised;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 40; }
  const char* TypeName() const override { return "accept-nack"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kAcceptNack);
  }
};

/// Commit notification from the leader to learners.
struct DecideMsg final : PaxosMessage {
  DecideMsg(PartitionId p, SlotId s, Value v)
      : PaxosMessage(p), slot(s), value(std::move(v)) {}

  SlotId slot;
  Value value;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 16 + value.size_bytes;
  }
  const char* TypeName() const override { return "decide"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kDecide);
  }
};

/// Leader liveness beacon to its replication quorum (failure detector).
struct HeartbeatMsg final : PaxosMessage {
  HeartbeatMsg(PartitionId p, Ballot b) : PaxosMessage(p), ballot(b) {}

  Ballot ballot;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 16; }
  const char* TypeName() const override { return "heartbeat"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kHeartbeat);
  }
};

// ---------------------------------------------------------------------
// Fast path (relaxed quorum intersection; docs/PROTOCOL.md §fast-path)
//
// After winning an election with enable_fast_path on, the leader grants
// a pinned fast quorum to every node. An edge proposer then sends
// FastAccept straight to the fast quorum's acceptors; each acceptor
// assigns the next free slot, votes durably, and answers the proposer
// (and the leader, which tracks unanimity / conflicts). A value is
// fast-committed when ALL fast-quorum members voted it into one slot —
// one proposer->acceptors->proposer round trip, no leader relay.

/// Leader -> everyone: arms fast-path proposing under `ballot`. Doubles
/// as a prepare-lite (receivers promise the ballot); `first_slot` fences
/// fast votes above every slot committed at earlier ballots.
struct FastGrantMsg final : PaxosMessage {
  FastGrantMsg(PartitionId p, Ballot b, SlotId first, std::vector<NodeId> q)
      : PaxosMessage(p), ballot(b), first_slot(first), quorum(std::move(q)) {}

  Ballot ballot;
  SlotId first_slot;
  /// The pinned fast quorum of this ballot (sorted, includes the leader).
  std::vector<NodeId> quorum;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 24 + 4 * quorum.size();
  }
  const char* TypeName() const override { return "fast-grant"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kFastGrant);
  }
};

/// Proposer -> fast-quorum acceptor: vote `value` into your next free
/// slot at `ballot`. `request_id` identifies the proposer's attempt so
/// the leader can answer its fallback resolution like a forward.
struct FastAcceptMsg final : PaxosMessage {
  FastAcceptMsg(PartitionId p, Ballot b, uint64_t id, Value v)
      : PaxosMessage(p), ballot(b), request_id(id), value(std::move(v)) {}

  Ballot ballot;
  uint64_t request_id;
  Value value;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 24 + value.size_bytes;
  }
  const char* TypeName() const override { return "fast-accept"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kFastAccept);
  }
};

/// Acceptor -> proposer AND leader: durably voted (ballot, slot, value).
/// Carries the value so the leader can classic-repropose it on conflict
/// or timeout without another fetch.
struct FastAcceptedMsg final : PaxosMessage {
  FastAcceptedMsg(PartitionId p, Ballot b, SlotId s, NodeId prop,
                  uint64_t id, Value v)
      : PaxosMessage(p),
        ballot(b),
        slot(s),
        proposer(prop),
        request_id(id),
        value(std::move(v)) {}

  Ballot ballot;
  SlotId slot;
  NodeId proposer;
  uint64_t request_id;
  Value value;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 36 + value.size_bytes;
  }
  const char* TypeName() const override { return "fast-accepted"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kFastAccepted);
  }
};

/// Acceptor -> proposer: fast vote refused (stale grant ballot, no grant
/// armed, or a higher promise). The proposer falls back to the classic
/// forward path, toward `leader_hint` when known.
struct FastNackMsg final : PaxosMessage {
  FastNackMsg(PartitionId p, Ballot b, Ballot prom, uint64_t id)
      : PaxosMessage(p), ballot(b), promised(prom), request_id(id) {}

  Ballot ballot;
  Ballot promised;
  uint64_t request_id;
  NodeId leader_hint = kInvalidNode;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 44; }
  const char* TypeName() const override { return "fast-nack"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kFastNack);
  }
};

// ---------------------------------------------------------------------
// Request forwarding (remote clients, paper Section 5.3 / Figure 10b)

/// A non-leader replica forwards a client value to the partition leader.
struct ForwardMsg final : PaxosMessage {
  ForwardMsg(PartitionId p, uint64_t id, Value v)
      : PaxosMessage(p), request_id(id), value(std::move(v)) {}

  uint64_t request_id;
  Value value;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 8 + value.size_bytes;
  }
  const char* TypeName() const override { return "forward"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kForward);
  }
};

/// Answer to a forwarded request: committed, failed, or a redirect to the
/// node the responder believes is the leader.
struct ForwardReplyMsg final : PaxosMessage {
  ForwardReplyMsg(PartitionId p, uint64_t id)
      : PaxosMessage(p), request_id(id) {}

  uint64_t request_id;
  StatusCode code = StatusCode::kOk;
  SlotId slot = kInvalidSlot;
  /// On kFailedPrecondition: where to retry (kInvalidNode if unknown).
  NodeId leader_hint = kInvalidNode;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 24; }
  const char* TypeName() const override { return "forward-reply"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kForwardReply);
  }
};

// ---------------------------------------------------------------------
// Learner catch-up and snapshot transfer
//
// A lagging or recovered replica pulls decided entries from a peer; if
// the peer already truncated its log below the requested slot, the
// requester falls back to an application snapshot.

/// One decided (slot, value) pair shipped during catch-up.
struct DecidedEntryWire {
  SlotId slot;
  Value value;
};

/// Ask a peer for its decided entries starting at `from_slot`.
struct LearnRequestMsg final : PaxosMessage {
  LearnRequestMsg(PartitionId p, SlotId from, uint32_t max)
      : PaxosMessage(p), from_slot(from), max_entries(max) {}

  SlotId from_slot;
  uint32_t max_entries;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 12; }
  const char* TypeName() const override { return "learn-request"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLearnRequest);
  }
};

/// Catch-up answer: a page of decided entries, or a snapshot referral
/// when the requested prefix was already truncated away.
struct LearnReplyMsg final : PaxosMessage {
  explicit LearnReplyMsg(PartitionId p) : PaxosMessage(p) {}

  SlotId from_slot = 0;
  std::vector<DecidedEntryWire> entries;
  /// The responder's contiguous decided watermark.
  SlotId peer_watermark = 0;
  /// Lowest slot the responder can still serve; if it exceeds the request
  /// slot, the requester needs a snapshot instead.
  SlotId first_available = 0;

  uint64_t SizeBytes() const override {
    uint64_t sz = kMessageHeaderBytes + 24;
    for (const DecidedEntryWire& e : entries) sz += 36 + e.value.size_bytes;
    return sz;
  }
  const char* TypeName() const override { return "learn-reply"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLearnReply);
  }
};

/// Ask a peer for an application snapshot (log prefix truncated),
/// starting at byte `offset` of the peer's current snapshot image.
/// offset 0 starts a fresh transfer; the peer regenerates its image.
struct SnapshotRequestMsg final : PaxosMessage {
  explicit SnapshotRequestMsg(PartitionId p, uint64_t off = 0)
      : PaxosMessage(p), offset(off) {}

  uint64_t offset;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 8; }
  const char* TypeName() const override { return "snapshot-request"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kSnapshotRequest);
  }
};

/// One chunk of a checksummed snapshot envelope (smr/snapshot.h)
/// covering all slots below `through_slot`. The requester reassembles
/// chunks by offset until `total_bytes` arrive, then verifies the CRC of
/// the whole envelope before installing anything.
struct SnapshotChunkMsg final : PaxosMessage {
  SnapshotChunkMsg(PartitionId p, SlotId through, uint64_t off,
                   uint64_t total, std::string bytes)
      : PaxosMessage(p),
        through_slot(through),
        offset(off),
        total_bytes(total),
        data(std::move(bytes)) {}

  SlotId through_slot;
  /// Byte position of `data` within the envelope.
  uint64_t offset;
  /// Size of the full envelope; the last chunk satisfies
  /// offset + data.size() == total_bytes.
  uint64_t total_bytes;
  std::string data;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 24 + data.size();
  }
  const char* TypeName() const override { return "snapshot-chunk"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kSnapshotChunk);
  }
};

// ---------------------------------------------------------------------
// Leader Handoff (paper Section 4.4)

/// Ask the current leader to relinquish leadership to the sender.
struct HandoffRequestMsg final : PaxosMessage {
  explicit HandoffRequestMsg(PartitionId p) : PaxosMessage(p) {}

  uint64_t SizeBytes() const override { return kMessageHeaderBytes; }
  const char* TypeName() const override { return "handoff-request"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kHandoffRequest);
  }
};

/// relinquish(): transfers the logical leader role. Sent at most once per
/// slot range; after sending, the old leader stops acting as a leader.
struct RelinquishMsg final : PaxosMessage {
  RelinquishMsg(PartitionId p, Ballot b, SlotId next,
                std::vector<Intent> in, LeaderZoneView view)
      : PaxosMessage(p),
        ballot(b),
        next_slot(next),
        intents(std::move(in)),
        lz_view(view) {}

  /// The leadership ballot being transferred.
  Ballot ballot;
  /// First slot the new leader may propose to.
  SlotId next_slot;
  /// The declared intents; the new leader may only replicate on these
  /// quorums (restriction when combined with Expanding Quorums).
  std::vector<Intent> intents;
  LeaderZoneView lz_view;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 24 + IntentsWireSize(intents);
  }
  const char* TypeName() const override { return "relinquish"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kRelinquish);
  }
};

// ---------------------------------------------------------------------
// Partition ownership steals (docs/PROTOCOL.md §ownership)

/// Why an ownership steal was refused (OwnershipGrantMsg::reason).
enum class StealRefusal : uint8_t {
  kNone = 0,       ///< granted
  kNotLeader = 1,  ///< recipient does not lead; see leader_hint
  kBusy = 2,       ///< in-flight/pending proposals; retry later
  kFastGrant = 3,  ///< fast-path grant outstanding; elect instead
};

/// Ask the incumbent leader to cede partition ownership to the sender
/// (thief side of a steal), or — with `invite` set — the incumbent's
/// placement sweep asking the recipient to initiate a steal back at it.
struct StealRequestMsg final : PaxosMessage {
  StealRequestMsg(PartitionId p, Ballot b, ZoneId zone, bool inv)
      : PaxosMessage(p), ballot(b), thief_zone(zone), invite(inv) {}

  /// The thief's current ballot, for the incumbent's ObserveBallot;
  /// concurrent steals are ultimately ordered by their election ballots.
  Ballot ballot;
  ZoneId thief_zone;
  bool invite;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 17; }
  const char* TypeName() const override { return "steal-request"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kStealRequest);
  }
};

/// The incumbent's answer. A grant fences the incumbent's log — it has
/// already stopped proposing when this message is sent — and carries
/// what the thief needs to catch up before its takeover election.
struct OwnershipGrantMsg final : PaxosMessage {
  OwnershipGrantMsg(PartitionId p, bool g, StealRefusal r, Ballot b,
                    SlotId next, uint64_t decided, bool snap, NodeId hint)
      : PaxosMessage(p),
        granted(g),
        reason(r),
        ballot(b),
        next_slot(next),
        decided_size(decided),
        snapshot_ready(snap),
        leader_hint(hint) {}

  bool granted;
  StealRefusal reason;
  /// The incumbent's leadership ballot (grant) or its highest observed
  /// ballot (refusal); the thief elects above it either way.
  Ballot ballot;
  /// Fence: the incumbent proposed nothing at or above this slot.
  SlotId next_slot;
  /// Incumbent's decided-log size, for the thief's catch-up gap.
  uint64_t decided_size;
  /// Incumbent can serve a snapshot transfer for the catch-up.
  bool snapshot_ready;
  /// On kNotLeader refusals: who the refuser believes leads.
  NodeId leader_hint;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 40; }
  const char* TypeName() const override { return "ownership-grant"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kOwnershipGrant);
  }
};

// ---------------------------------------------------------------------
// Intents garbage collection (paper Section 4.3.4, Algorithm 3)

/// GC poll: "largest proposal id received in a propose message?"
struct GcPollMsg final : PaxosMessage {
  explicit GcPollMsg(PartitionId p) : PaxosMessage(p) {}

  uint64_t SizeBytes() const override { return kMessageHeaderBytes; }
  const char* TypeName() const override { return "gc-poll"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kGcPoll);
  }
};

/// GC poll answer.
struct GcPollReplyMsg final : PaxosMessage {
  GcPollReplyMsg(PartitionId p, Ballot b)
      : PaxosMessage(p), max_propose_ballot(b) {}

  /// P_i: largest ballot this acceptor has seen in a *recovery-complete*
  /// propose message (NOT prepare messages — the distinction matters for
  /// Theorem 3; the recovery gate is our strengthening of Algorithm 3).
  Ballot max_propose_ballot;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 16; }
  const char* TypeName() const override { return "gc-poll-reply"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kGcPollReply);
  }
};

/// Asynchronous broadcast of the new GC threshold P; receivers drop all
/// intents with ballot < P.
struct GcThresholdMsg final : PaxosMessage {
  GcThresholdMsg(PartitionId p, Ballot b) : PaxosMessage(p), threshold(b) {}

  Ballot threshold;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 16; }
  const char* TypeName() const override { return "gc-threshold"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kGcThreshold);
  }
};

// ---------------------------------------------------------------------
// Leader Zone migration (paper Section 4.3.2)
//
// Step 1 runs a dedicated synod (single-decree Paxos) among the current
// Leader Zone's nodes — the "Leader Zone Instance" — deciding the next
// Leader Zone for migration epoch `epoch`.

/// Phase 1 of the Leader Zone Instance synod.
struct LzPrepareMsg final : PaxosMessage {
  LzPrepareMsg(PartitionId p, uint64_t e, Ballot b)
      : PaxosMessage(p), epoch(e), ballot(b) {}

  uint64_t epoch;
  Ballot ballot;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 24; }
  const char* TypeName() const override { return "lz-prepare"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzPrepare);
  }
};

struct LzPromiseMsg final : PaxosMessage {
  LzPromiseMsg(PartitionId p, uint64_t e, Ballot b)
      : PaxosMessage(p), epoch(e), ballot(b) {}

  uint64_t epoch;
  Ballot ballot;
  /// Previously accepted (ballot, zone), if any.
  Ballot accepted_ballot;
  ZoneId accepted_zone = kInvalidZone;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 44; }
  const char* TypeName() const override { return "lz-promise"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzPromise);
  }
};

/// Phase 2 of the Leader Zone Instance synod: propose `next_zone`.
struct LzProposeMsg final : PaxosMessage {
  LzProposeMsg(PartitionId p, uint64_t e, Ballot b, ZoneId z)
      : PaxosMessage(p), epoch(e), ballot(b), next_zone(z) {}

  uint64_t epoch;
  Ballot ballot;
  ZoneId next_zone;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 28; }
  const char* TypeName() const override { return "lz-propose"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzPropose);
  }
};

struct LzAcceptMsg final : PaxosMessage {
  LzAcceptMsg(PartitionId p, uint64_t e, Ballot b, ZoneId z)
      : PaxosMessage(p), epoch(e), ballot(b), next_zone(z) {}

  uint64_t epoch;
  Ballot ballot;
  ZoneId next_zone;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 28; }
  const char* TypeName() const override { return "lz-accept"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzAccept);
  }
};

struct LzNackMsg final : PaxosMessage {
  LzNackMsg(PartitionId p, uint64_t e, Ballot b, Ballot prom,
            LeaderZoneView view)
      : PaxosMessage(p), epoch(e), ballot(b), promised(prom), lz_view(view) {}

  uint64_t epoch;
  Ballot ballot;
  Ballot promised;
  /// The responder's view — redirects a driver whose view is stale.
  LeaderZoneView lz_view;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 56; }
  const char* TypeName() const override { return "lz-nack"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzNack);
  }
};

/// Step 2: ask a node of the old Leader Zone to enter the transition
/// phase — return its stored intents, stop storing new ones, and piggyback
/// the transition in future promises.
struct LzTransitionMsg final : PaxosMessage {
  LzTransitionMsg(PartitionId p, uint64_t e, ZoneId z)
      : PaxosMessage(p), epoch(e), next_zone(z) {}

  uint64_t epoch;
  ZoneId next_zone;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 12; }
  const char* TypeName() const override { return "lz-transition"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzTransition);
  }
};

struct LzTransitionAckMsg final : PaxosMessage {
  LzTransitionAckMsg(PartitionId p, uint64_t e, std::vector<Intent> in)
      : PaxosMessage(p), epoch(e), intents(std::move(in)) {}

  uint64_t epoch;
  /// The old zone node's stored intents, to be re-homed in the next zone.
  std::vector<Intent> intents;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 8 + IntentsWireSize(intents);
  }
  const char* TypeName() const override { return "lz-transition-ack"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzTransitionAck);
  }
};

/// Step 2 (continued): store the old zone's intents at the next zone.
struct LzStoreIntentsMsg final : PaxosMessage {
  LzStoreIntentsMsg(PartitionId p, uint64_t e, ZoneId z,
                    std::vector<Intent> in)
      : PaxosMessage(p), epoch(e), next_zone(z), intents(std::move(in)) {}

  uint64_t epoch;
  ZoneId next_zone;
  std::vector<Intent> intents;

  uint64_t SizeBytes() const override {
    return kMessageHeaderBytes + 12 + IntentsWireSize(intents);
  }
  const char* TypeName() const override { return "lz-store-intents"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzStoreIntents);
  }
};

struct LzStoreAckMsg final : PaxosMessage {
  LzStoreAckMsg(PartitionId p, uint64_t e) : PaxosMessage(p), epoch(e) {}

  uint64_t epoch;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 8; }
  const char* TypeName() const override { return "lz-store-ack"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzStoreAck);
  }
};

/// Step 3: lazily broadcast announcement that the transition completed.
struct LzAnnounceMsg final : PaxosMessage {
  LzAnnounceMsg(PartitionId p, LeaderZoneView v)
      : PaxosMessage(p), view(v) {}

  /// The completed view: epoch bumped, current = new zone, no transition.
  LeaderZoneView view;

  uint64_t SizeBytes() const override { return kMessageHeaderBytes + 16; }
  const char* TypeName() const override { return "lz-announce"; }
  uint8_t wire_tag() const override {
    return static_cast<uint8_t>(WireType::kLzAnnounce);
  }
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_MESSAGES_H_
