#include "paxos/replica.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

namespace {

// Internal commit callback for no-op / adopted-value re-proposals.
void IgnoreCommit(const Status&, SlotId, Duration) {}

}  // namespace

Replica::Replica(EventScheduler* sim, Transport* transport,
                 const Topology* topology, const QuorumSystem* quorums,
                 NodeId id, ReplicaConfig config, AcceptorRecord* record)
    : sim_(sim),
      transport_(transport),
      topology_(topology),
      quorums_(quorums),
      id_(id),
      config_(config),
      rng_(sim->rng().Fork()),
      acceptor_(quorums->mode() == ProtocolMode::kLeaderless, record),
      // A pure function of (node, partition): never forked from rng_ or
      // sim->rng(), whose draw sequences existing schedules depend on.
      catchup_rng_(0x9e3779b97f4a7c15ULL * (id + 1) + config.partition) {
  DPAXOS_CHECK(sim && transport && topology && quorums);
  lz_view_.current = config_.initial_leader_zone;
  // A restarted acceptor remembers its promises (durable record); the
  // proposer must never reuse a round it might have promised away.
  ObserveBallot(acceptor_.promised());
  ObserveBallot(acceptor_.max_propose_ballot());
  // A durable snapshot means the log prefix it covers was released:
  // resume the learner at the snapshot boundary. The slot bound is
  // trusted because records only ever store CRC-verified envelopes (the
  // harness re-verifies the bytes and calls DropInstalledSnapshot() if
  // the image at rest rotted).
  if (acceptor_.snapshot_through() > 0) {
    log_start_ = acceptor_.snapshot_through();
    watermark_ = acceptor_.snapshot_through();
    decided_.EraseBelow(log_start_);
  }
  if (quorums_->mode() == ProtocolMode::kLeaderless) {
    DPAXOS_CHECK_GT(config_.leaderless_total, 0u);
    DPAXOS_CHECK_LT(config_.leaderless_index, config_.leaderless_total);
    ballot_ = Ballot{1, id_};
    leaderless_next_ = config_.leaderless_index;
  }
}

Replica::~Replica() { *alive_ = false; }

// -----------------------------------------------------------------------
// Helpers

EventId Replica::ScheduleSafe(Duration delay, std::function<void()> fn) {
  return sim_->Schedule(
      delay, [alive = alive_, fn = std::move(fn)] {
        if (*alive) fn();
      });
}

void Replica::SendToAll(const std::vector<NodeId>& targets,
                        const MessagePtr& msg) {
  for (NodeId t : targets) transport_->Send(id_, t, msg);
}

void Replica::SyncThenDeliver(std::function<void()> deliver) {
  if (persist_gate_) {
    // WAL mode: the gate releases `deliver` once the journaled mutations
    // are on disk (one group-commit fdatasync may release a batch). The
    // callback can outlive this replica — the WAL lives in NodeStorage —
    // so it guards on alive_ like every deferred closure.
    persist_gate_([this, alive = alive_, deliver = std::move(deliver)] {
      if (!*alive) return;
      if (sync_hook_) sync_hook_();
      deliver();
    });
    return;
  }
  if (config_.storage_sync_delay > 0) {
    ScheduleSafe(config_.storage_sync_delay,
                 [this, deliver = std::move(deliver)] {
                   if (sync_hook_) sync_hook_();
                   deliver();
                 });
  } else {
    if (sync_hook_) sync_hook_();
    deliver();
  }
}

void Replica::ObserveBallot(const Ballot& ballot) {
  max_round_seen_ = std::max(max_round_seen_, ballot.round);
}

Duration Replica::BackoffFor(uint32_t attempt) {
  const uint32_t shift = std::min(attempt, 6u);
  const Duration base = config_.retry_backoff_base * (1ull << shift);
  // Jitter in [0.5, 1.5) de-synchronizes dueling proposers.
  return static_cast<Duration>(static_cast<double>(base) *
                               (0.5 + rng_.NextDouble()));
}

SlotId Replica::DecidedWatermark() const { return watermark_; }

QuorumRule Replica::CurrentLeaderElectionRule() const {
  return quorums_->LeaderElectionRule(id_, lz_view_);
}

const QuorumRule& Replica::ReplicationRule() const {
  if (!replication_rule_valid_) {
    if (quorums_->UsesIntents()) {
      DPAXOS_CHECK(!declared_intents_.empty());
      DPAXOS_CHECK_LT(active_intent_, declared_intents_.size());
      cached_replication_rule_ = QuorumSystem::ReplicationRuleForIntent(
          declared_intents_[active_intent_].quorum);
    } else {
      cached_replication_rule_ = quorums_->DefaultReplicationRule(id_);
    }
    cached_replication_targets_ = cached_replication_rule_.Targets();
    replication_rule_valid_ = true;
  }
  return cached_replication_rule_;
}

const std::vector<NodeId>& Replica::ReplicationTargets() const {
  ReplicationRule();  // refresh the cache if stale
  return cached_replication_targets_;
}

std::vector<Intent> Replica::BuildIntents() const {
  if (!quorums_->UsesIntents()) return {};
  std::vector<Intent> intents;
  const std::vector<NodeId> primary = quorums_->IntentQuorum(id_);
  intents.push_back(Intent{ballot_, id_, primary});
  // Additional intents (paper Section 4.6): alternate fd-companions from
  // the home zone, giving the leader failover replication quorums.
  const ZoneId home = topology_->ZoneOf(id_);
  std::vector<NodeId> peers;
  for (NodeId n : topology_->NodesInZone(home)) {
    if (n != id_) peers.push_back(n);
  }
  const uint32_t fd = quorums_->fault_tolerance().fd;
  for (uint32_t k = 1; k < config_.num_intents; ++k) {
    if (peers.size() < fd) break;
    std::vector<NodeId> quorum = primary;
    // Swap the home-zone companions for a rotated selection.
    std::set<NodeId> drop;
    for (NodeId n : primary) {
      if (topology_->ZoneOf(n) == home && n != id_) drop.insert(n);
    }
    std::erase_if(quorum, [&](NodeId n) { return drop.count(n) > 0; });
    uint32_t added = 0;
    for (uint32_t i = 0; i < peers.size() && added < fd; ++i) {
      const NodeId candidate = peers[(k + i) % peers.size()];
      if (std::find(quorum.begin(), quorum.end(), candidate) ==
          quorum.end()) {
        quorum.push_back(candidate);
        ++added;
      }
    }
    if (added < fd) break;
    std::sort(quorum.begin(), quorum.end());
    const bool duplicate =
        std::any_of(intents.begin(), intents.end(), [&](const Intent& have) {
          return have.quorum == quorum;
        });
    if (duplicate) continue;
    intents.push_back(Intent{ballot_, id_, std::move(quorum)});
  }
  return intents;
}

// -----------------------------------------------------------------------
// Client API

void Replica::Submit(Value value, CommitCallback orig_cb) {
  // Commit latency is measured from submission, so it includes queueing
  // and any Leader Election the submission triggered.
  CommitCallback cb = [this, submitted = sim_->Now(),
                       inner = std::move(orig_cb)](
                          const Status& st, SlotId slot, Duration) {
    if (inner) inner(st, slot, sim_->Now() - submitted);
  };
  if (quorums_->mode() == ProtocolMode::kLeaderless) {
    SubmitLeaderless(std::move(value), std::move(cb));
    return;
  }
  if (role_ == Role::kLeader) {
    if (inflight_.size() <
        static_cast<size_t>(std::max(config_.max_inflight, 1u))) {
      StartPropose(next_slot_++, std::move(value), std::move(cb));
    } else {
      pending_.emplace_back(std::move(value), std::move(cb));
    }
    return;
  }
  if (role_ == Role::kCandidate) {
    pending_.emplace_back(std::move(value), std::move(cb));
    return;
  }
  if (!config_.auto_elect_on_submit) {
    cb(Status::FailedPrecondition("not the leader"), kInvalidSlot, 0);
    return;
  }
  pending_.emplace_back(std::move(value), std::move(cb));
  TryBecomeLeader([this](const Status& st) {
    if (!st.ok()) {
      // DrainPending never ran; fail queued submissions.
      auto queued = std::move(pending_);
      pending_.clear();
      for (auto& [v, cb2] : queued) cb2(st, kInvalidSlot, 0);
    }
  });
}

void Replica::SubmitLeaderless(Value value, CommitCallback cb) {
  if (inflight_.size() <
      static_cast<size_t>(std::max(config_.max_inflight, 1u))) {
    const SlotId slot = leaderless_next_;
    leaderless_next_ += config_.leaderless_total;
    StartPropose(slot, std::move(value), std::move(cb));
  } else {
    pending_.emplace_back(std::move(value), std::move(cb));
  }
}

void Replica::TryBecomeLeader(StatusCallback cb) {
  if (quorums_->mode() == ProtocolMode::kLeaderless) {
    cb(Status::NotSupported("leaderless mode has no leader election"));
    return;
  }
  if (role_ == Role::kLeader) {
    cb(Status::OK());
    return;
  }
  if (role_ == Role::kCandidate) {
    cb(Status::Aborted("election already in progress"));
    return;
  }
  StartElection(std::move(cb), 0);
}

void Replica::RefreshLeadership(StatusCallback cb) {
  if (quorums_->mode() == ProtocolMode::kLeaderless) {
    cb(Status::NotSupported("leaderless mode has no leader"));
    return;
  }
  if (role_ != Role::kLeader) {
    TryBecomeLeader(std::move(cb));
    return;
  }
  if (!inflight_.empty() || !pending_.empty()) {
    cb(Status::FailedPrecondition("in-flight proposals pending"));
    return;
  }
  role_ = Role::kFollower;  // step down voluntarily, then re-elect
  StartElection(std::move(cb), 0);
}

// -----------------------------------------------------------------------
// Leader Election (paper Algorithms 1 and 2)

void Replica::StartElection(StatusCallback cb, uint32_t attempt) {
  DPAXOS_CHECK(role_ == Role::kFollower);
  role_ = Role::kCandidate;
  ballot_ = Ballot{max_round_seen_ + 1, id_};
  max_round_seen_ = ballot_.round;

  declared_intents_ = BuildIntents();
  active_intent_ = 0;
  InvalidateReplicationRule();
  ++counters_.elections_started;

  election_ = std::make_unique<Election>();
  election_->cb = std::move(cb);
  election_->attempt = attempt;
  election_->first_slot = DecidedWatermark();
  election_->base_rule = CurrentLeaderElectionRule();
  election_->effective_rule = election_->base_rule;

  // First attempt: the preferred (nearest) target set. Retries fall back
  // to every rule candidate for liveness under failures.
  std::vector<NodeId> targets;
  if (config_.consolidate_le_rounds) {
    targets = topology_->AllNodes();
  } else if (attempt == 0) {
    targets = quorums_->LeaderElectionTargets(id_, lz_view_);
  } else {
    targets = election_->base_rule.Targets();
  }
  election_->round1_targets = targets;
  auto prepare = std::make_shared<PrepareMsg>(
      config_.partition, ballot_, election_->first_slot, declared_intents_,
      /*expansion=*/false, lz_view_);
  for (NodeId t : targets) {
    election_->contacted.insert(t);
    SendTo(t, prepare);
  }

  election_->timer = ScheduleSafe(config_.le_timeout, [this] {
    if (election_ != nullptr) {
      election_->timer = 0;
      FailElection(Status::TimedOut("leader election timed out"),
                   BackoffFor(election_->attempt));
    }
  });
  DPAXOS_DEBUG("node " << id_ << " starts election " << ballot_.ToString()
                       << " rule=" << election_->base_rule.ToString());
}

void Replica::OnPromise(NodeId from, const PromiseMsg& msg) {
  ObserveBallot(msg.ballot);
  AdoptView(msg.lz_view);
  if (election_ == nullptr || role_ != Role::kCandidate ||
      msg.ballot != ballot_) {
    return;  // stale vote for an abandoned attempt
  }
  election_->promises.insert(from);

  // A promise from a compacted acceptor: slots below its watermark were
  // released because its durable snapshot covers them (all decided), so
  // the election must not treat them as undecided holes.
  election_->max_compacted =
      std::max(election_->max_compacted, msg.compacted_through);

  // Adopt previously accepted values: highest ballot wins per slot. At
  // equal ballots a classic entry beats a fast one (the leader only ever
  // classic-proposes over a fast slot when unanimity was impossible —
  // see docs/PROTOCOL.md §fast-path), and disagreeing all-fast entries
  // are broken by smallest value id: deterministic, and safe because a
  // disagreement proves the slot was never fast-committed.
  for (const AcceptedEntry& e : msg.accepted) {
    auto it = election_->adopted.find(e.slot);
    if (it == election_->adopted.end()) {
      election_->adopted[e.slot] = e;
      continue;
    }
    AcceptedEntry& cur = it->second;
    if (e.ballot > cur.ballot) {
      cur = e;
    } else if (e.ballot == cur.ballot && cur.fast) {
      if (!e.fast || e.value.id < cur.value.id) cur = e;
    }
  }

  // Intents from expansion-round promises may be discarded (paper
  // Section 4.3.1): their declaring leaders are guaranteed to observe
  // our intent and defer to our higher ballot.
  if (!msg.expansion) {
    for (const Intent& intent : msg.intents) {
      if (intent.ballot == ballot_) continue;  // our own declaration
      if (election_->detected_intents.count(intent.ballot) > 0) continue;
      election_->detected_intents[intent.ballot] = intent;
      ++counters_.intents_detected;
      // The LE quorum must expand to intersect this intent's replication
      // quorum in at least one node.
      election_->effective_rule = election_->effective_rule.MergedWith(
          QuorumRule::Simple(intent.quorum, 1));
      DPAXOS_DEBUG("node " << id_ << " detected " << intent.ToString());
    }
  }
  CheckElectionProgress();
}

void Replica::CheckElectionProgress() {
  DPAXOS_CHECK(election_ != nullptr);
  if (election_->effective_rule.IsSatisfied(election_->promises)) {
    FinishElection();
    return;
  }
  // (Re)send prepares to any first-round targets we have not contacted —
  // this happens after a Leader Zone view upgrade changed the rule.
  std::vector<NodeId> round1;
  for (NodeId t : election_->round1_targets) {
    if (election_->contacted.insert(t).second) round1.push_back(t);
  }
  if (!round1.empty()) {
    auto prepare = std::make_shared<PrepareMsg>(
        config_.partition, ballot_, election_->first_slot, declared_intents_,
        /*expansion=*/false, lz_view_);
    SendToAll(round1, prepare);
  }
  // Expansion round: once the base quorum has promised, contact every
  // detected intent's replication quorum (paper: the second round).
  if (!election_->base_rule.IsSatisfied(election_->promises)) return;
  std::vector<NodeId> expansion;
  for (const auto& [b, intent] : election_->detected_intents) {
    for (NodeId t : intent.quorum) {
      if (election_->contacted.insert(t).second) expansion.push_back(t);
    }
  }
  if (!expansion.empty()) {
    ++expansion_rounds_;
    election_->expanded = true;
    auto prepare = std::make_shared<PrepareMsg>(
        config_.partition, ballot_, election_->first_slot, declared_intents_,
        /*expansion=*/true, lz_view_);
    SendToAll(expansion, prepare);
    DPAXOS_DEBUG("node " << id_ << " expands LE quorum to " << expansion.size()
                         << " more nodes");
  }
}

void Replica::FinishElection() {
  DPAXOS_CHECK(election_ != nullptr);
  if (election_->timer != 0) sim_->Cancel(election_->timer);
  role_ = Role::kLeader;
  ++elections_won_;
  leader_hint_ = id_;
  lease_votes_.clear();
  lease_until_ = 0;

  // Fast-forward past the highest compaction watermark any voter
  // advertised: those slots are decided-and-released, and filling them
  // with no-ops would conflict with the decided history (safe by quorum
  // intersection — see docs/PROTOCOL.md "Log compaction").
  const SlotId first =
      std::max(election_->first_slot, election_->max_compacted);
  next_slot_ = first;
  bool has_adopted = false;
  SlotId max_adopted = 0;
  for (const auto& [slot, e] : election_->adopted) {
    if (slot < first) continue;
    has_adopted = true;
    max_adopted = std::max(max_adopted, slot);
  }

  StatusCallback cb = std::move(election_->cb);
  auto adopted = std::move(election_->adopted);
  election_.reset();
  recovery_pending_ = 0;

  if (has_adopted) {
    // Re-propose adopted values under our ballot; fill gaps with no-ops
    // so the log becomes contiguous (standard Multi-Paxos recovery).
    // These are marked: until all of them commit, our proposes do not
    // advance the GC threshold (see ProposeMsg::recovery_complete).
    for (SlotId slot = first; slot <= max_adopted; ++slot) {
      if (decided_.count(slot) > 0) continue;
      auto it = adopted.find(slot);
      Value v = (it != adopted.end()) ? it->second.value : Value::NoOp();
      StartPropose(slot, std::move(v), IgnoreCommit,
                   /*adopted_recovery=*/true);
    }
    next_slot_ = max_adopted + 1;
  }
  if (RecoveryComplete()) OnRecoveryProgress();

  // Fast path: pin this regime's fast quorum and fence it above every
  // slot a lower ballot could have committed (everything below next_slot_
  // was either adopted and re-proposed above, or provably undecided).
  ClearFastSlots();
  if (config_.enable_fast_path &&
      quorums_->mode() != ProtocolMode::kLeaderless) {
    std::vector<NodeId> fq = quorums_->FastQuorum(id_);
    std::sort(fq.begin(), fq.end());
    if (!fq.empty() &&
        std::binary_search(fq.begin(), fq.end(), id_)) {
      fast_grant_.ballot = ballot_;
      fast_grant_.first_slot = next_slot_;
      fast_grant_.quorum = fq;
      auto grant = std::make_shared<FastGrantMsg>(config_.partition, ballot_,
                                                  next_slot_, std::move(fq));
      for (NodeId t : topology_->AllNodes()) {
        if (t != id_) SendTo(t, grant);
      }
    }
  }

  if (config_.enable_failure_detector) {
    if (watchdog_timer_ != 0) {
      sim_->Cancel(watchdog_timer_);
      watchdog_timer_ = 0;
    }
    SendHeartbeats();
  }
  DPAXOS_DEBUG("node " << id_ << " elected leader " << ballot_.ToString()
                       << " next_slot=" << next_slot_);
  if (cb) cb(Status::OK());
  DrainPending();
}

// --- failure detector ----------------------------------------------------

void Replica::SendHeartbeats() {
  heartbeat_timer_ = 0;
  if (!config_.enable_failure_detector || role_ != Role::kLeader) return;
  auto hb = std::make_shared<HeartbeatMsg>(config_.partition, ballot_);
  for (NodeId t : ReplicationTargets()) {
    if (t != id_) SendTo(t, hb);
  }
  heartbeat_timer_ = ScheduleSafe(config_.heartbeat_interval,
                                  [this] { SendHeartbeats(); });
}

void Replica::ArmWatchdog() {
  if (!config_.enable_failure_detector) return;
  if (watchdog_timer_ != 0) sim_->Cancel(watchdog_timer_);
  // Randomized in [timeout, 2*timeout): staggers rival candidacies.
  const Duration wait =
      config_.election_timeout +
      rng_.NextBounded(std::max<Duration>(config_.election_timeout, 1));
  watchdog_timer_ =
      ScheduleSafe(wait, [this] {
        watchdog_timer_ = 0;
        OnLeaderSilence();
      });
}

void Replica::OnLeaderSilence() {
  if (role_ != Role::kFollower) return;
  DPAXOS_DEBUG("node " << id_ << " suspects the leader; electing itself");
  TryBecomeLeader([this](const Status& st) {
    if (!st.ok()) ArmWatchdog();  // keep watching if we lost the race
  });
}

void Replica::OnHeartbeat(NodeId from, const HeartbeatMsg& msg) {
  (void)from;
  ObserveBallot(msg.ballot);
  if (quorums_->mode() != ProtocolMode::kLeaderless) {
    leader_hint_ = msg.ballot.node;
  }
  ArmWatchdog();  // the leader is alive; push the election out
}

void Replica::OnRecoveryProgress() {
  // All adopted values are re-secured at our quorum: from here on our
  // proposes advance the GC threshold, and the aggressive variant may
  // broadcast the threshold outright.
  if (config_.leader_broadcasts_gc_threshold && role_ == Role::kLeader) {
    auto gc = std::make_shared<GcThresholdMsg>(config_.partition, ballot_);
    SendToAll(topology_->AllNodes(), gc);
  }
}

void Replica::FailElection(const Status& status, Duration retry_after) {
  DPAXOS_CHECK(election_ != nullptr);
  if (election_->timer != 0) sim_->Cancel(election_->timer);
  StatusCallback cb = std::move(election_->cb);
  const uint32_t attempt = election_->attempt;
  election_.reset();
  role_ = Role::kFollower;

  if (attempt + 1 >= config_.max_le_attempts) {
    DPAXOS_DEBUG("node " << id_ << " gives up election: "
                         << status.ToString());
    if (cb) cb(status);
    return;
  }
  ScheduleSafe(retry_after, [this, cb = std::move(cb), attempt]() mutable {
    if (role_ == Role::kFollower) {
      StartElection(std::move(cb), attempt + 1);
    } else if (cb) {
      // Another role change intervened (e.g. a relinquish arrived).
      cb(role_ == Role::kLeader
             ? Status::OK()
             : Status::Aborted("election preempted during backoff"));
    }
  });
}

void Replica::OnPrepare(NodeId from, const PrepareMsg& msg) {
  ObserveBallot(msg.ballot);
  ++counters_.prepares_received;

  if (quorums_->mode() == ProtocolMode::kLeaderZone &&
      lz_view_.epoch > msg.lz_view.epoch) {
    // The aspirant's Leader Zone view is a whole migration behind: do not
    // vote; redirect it to the new Leader Zone (paper Step 3).
    auto nack = std::make_shared<PrepareNackMsg>(config_.partition, msg.ballot);
    nack->lz_view = lz_view_;
    ++counters_.prepare_nacks_sent;
    SendTo(from, nack);
    return;
  }
  AdoptView(msg.lz_view);

  Acceptor::PrepareOutcome out = acceptor_.OnPrepare(msg, sim_->Now());
  if (!out.promised) {
    auto nack = std::make_shared<PrepareNackMsg>(config_.partition, msg.ballot);
    nack->promised = out.promised_ballot;
    nack->lease_until = out.lease_until;
    nack->lz_view = lz_view_;
    ++counters_.prepare_nacks_sent;
    SendTo(from, nack);
    return;
  }
  // Promising a strictly higher ballot dethrones us locally.
  if (msg.ballot > ballot_ && role_ != Role::kFollower &&
      msg.ballot.node != id_) {
    StepDown(msg.ballot);
  }
  auto promise = std::make_shared<PromiseMsg>(config_.partition, msg.ballot,
                                              msg.expansion);
  promise->accepted = std::move(out.accepted);
  promise->intents = std::move(out.intents);
  promise->lz_view = lz_view_;
  // Advertise the durable compaction watermark (0 until the first
  // compaction, keeping legacy message sizes bit-identical).
  promise->compacted_through = acceptor_.compacted_through();
  ++counters_.promises_sent;
  // The promise is durable before it is answered.
  SyncThenDeliver([this, from, promise] { SendTo(from, promise); });
}

void Replica::OnPrepareNack(NodeId from, const PrepareNackMsg& msg) {
  (void)from;
  ObserveBallot(msg.promised);
  AdoptView(msg.lz_view);
  if (election_ == nullptr || role_ != Role::kCandidate ||
      msg.ballot != ballot_) {
    return;
  }
  if (!msg.promised.is_null() && msg.promised > ballot_) {
    // First preemption usually means our ballot was stale, not that a
    // live contender is racing us: retry immediately with a higher ballot
    // (we just observed the conflicting one). Repeated preemptions back
    // off to break proposer duels.
    const Duration wait =
        election_->attempt == 0 ? 0 : BackoffFor(election_->attempt);
    FailElection(Status::Aborted("preempted by " + msg.promised.ToString()),
                 wait);
    return;
  }
  if (msg.lease_until > 0) {
    // A read lease blocks elections until it expires (paper Section 4.5).
    const Duration wait = msg.lease_until > sim_->Now()
                              ? msg.lease_until - sim_->Now() + kMillisecond
                              : kMillisecond;
    FailElection(Status::Unavailable("blocked by read lease"), wait);
    return;
  }
  // Redirect nack: AdoptView above updated the rule; contact new targets.
  CheckElectionProgress();
}

// -----------------------------------------------------------------------
// Replication phase

void Replica::StartPropose(SlotId slot, Value value, CommitCallback cb,
                           bool adopted_recovery) {
  DPAXOS_CHECK(role_ == Role::kLeader ||
               quorums_->mode() == ProtocolMode::kLeaderless);
  DPAXOS_CHECK_MSG(inflight_.count(slot) == 0, "slot " << slot);

  InFlight& fl = inflight_[slot];
  fl.value = value;
  fl.cb = std::move(cb);
  fl.start = sim_->Now();
  fl.lease_requested = config_.enable_leases;
  fl.adopted_recovery = adopted_recovery;
  if (adopted_recovery) ++recovery_pending_;

  auto propose =
      std::make_shared<ProposeMsg>(config_.partition, ballot_, slot, value);
  propose->recovery_complete = RecoveryComplete();
  if (fl.lease_requested) {
    propose->lease_request = true;
    propose->lease_until = sim_->Now() + config_.lease_duration;
  }
  ++counters_.proposes_sent;
  SendToAll(ReplicationTargets(), propose);

  fl.timer = ScheduleSafe(config_.propose_timeout,
                            [this, slot] { RetransmitPropose(slot); });
}

void Replica::RetransmitPropose(SlotId slot) {
  auto it = inflight_.find(slot);
  if (it == inflight_.end()) return;
  InFlight& fl = it->second;
  fl.timer = 0;
  ++fl.retries;
  ++counters_.retransmits;
  if (fl.retries > config_.max_propose_retries) {
    // The declared replication quorum is unreachable. With multiple
    // declared intents we fail over to an alternate quorum (paper
    // Section 4.6); otherwise only a new Leader Election can change the
    // quorum, so we step down.
    if (quorums_->UsesIntents() &&
        active_intent_ + 1 < declared_intents_.size()) {
      ++active_intent_;
      InvalidateReplicationRule();
      DPAXOS_DEBUG("node " << id_ << " fails over to intent "
                           << active_intent_);
      for (auto& [s, f] : inflight_) f.retries = 0;
    } else {
      DPAXOS_DEBUG("node " << id_ << " cannot reach replication quorum");
      StepDown(ballot_);
      return;
    }
  }
  auto propose = std::make_shared<ProposeMsg>(config_.partition, ballot_,
                                              slot, fl.value);
  propose->recovery_complete = RecoveryComplete();
  if (fl.lease_requested) {
    propose->lease_request = true;
    propose->lease_until = sim_->Now() + config_.lease_duration;
  }
  for (NodeId t : ReplicationTargets()) {
    if (!std::binary_search(fl.acks.begin(), fl.acks.end(), t)) {
      SendTo(t, propose);
    }
  }
  fl.timer = ScheduleSafe(config_.propose_timeout,
                            [this, slot] { RetransmitPropose(slot); });
}

void Replica::OnPropose(NodeId from, const ProposeMsg& msg) {
  ObserveBallot(msg.ballot);
  ++counters_.proposes_received;
  if (msg.ballot.node != id_) ArmWatchdog();  // write traffic = liveness
  // Propose traffic reveals the acting leader — remember it for
  // forwarding.
  if (quorums_->mode() != ProtocolMode::kLeaderless) {
    leader_hint_ = msg.ballot.node;
  }
  Acceptor::ProposeOutcome out = acceptor_.OnPropose(msg, sim_->Now());
  if (!out.accepted) {
    ++counters_.accept_nacks_sent;
    SendTo(from, std::make_shared<AcceptNackMsg>(config_.partition,
                                                 msg.ballot, msg.slot,
                                                 out.promised_ballot));
    return;
  }
  if (msg.ballot > ballot_ && role_ != Role::kFollower &&
      msg.ballot.node != id_) {
    StepDown(msg.ballot);
  }
  auto accept =
      std::make_shared<AcceptMsg>(config_.partition, msg.ballot, msg.slot);
  accept->lease_vote = out.lease_vote;
  accept->lease_until = out.lease_until;
  ++counters_.accepts_sent;
  // The acceptance is durable before it is answered.
  SyncThenDeliver([this, from, accept] { SendTo(from, accept); });
}

void Replica::OnAccept(NodeId from, const AcceptMsg& msg) {
  if (msg.ballot != ballot_) return;
  auto it = inflight_.find(msg.slot);
  if (it == inflight_.end()) return;  // already decided or failed
  InFlight& fl = it->second;
  const auto pos = std::lower_bound(fl.acks.begin(), fl.acks.end(), from);
  if (pos == fl.acks.end() || *pos != from) fl.acks.insert(pos, from);
  if (msg.lease_vote) {
    Timestamp& have = lease_votes_[from];
    have = std::max(have, msg.lease_until);
    RecomputeLeaseExpiry();
  }
  if (ReplicationRule().IsSatisfiedSorted(fl.acks)) {
    Decide(msg.slot);
  }
}

void Replica::OnAcceptNack(NodeId from, const AcceptNackMsg& msg) {
  (void)from;
  ObserveBallot(msg.promised);
  if (msg.ballot != ballot_) return;
  if (inflight_.count(msg.slot) == 0) return;
  StepDown(msg.promised);
}

void Replica::Decide(SlotId slot) {
  auto it = inflight_.find(slot);
  DPAXOS_CHECK(it != inflight_.end());
  InFlight fl = std::move(it->second);
  inflight_.erase(it);
  if (fl.timer != 0) sim_->Cancel(fl.timer);
  if (fl.adopted_recovery) {
    DPAXOS_CHECK_GT(recovery_pending_, 0u);
    if (--recovery_pending_ == 0) OnRecoveryProgress();
  }

  const Value& value = fl.value;
  LearnDecided(slot, value);
  if (fl.cb) {
    // Under the lease fence the ack waits for watermark coverage; in
    // every other configuration DeferOrAck fires it inline here.
    DeferOrAck(slot, [this, cb = std::move(fl.cb), slot, start = fl.start] {
      cb(Status::OK(), slot, sim_->Now() - start);
    });
  }
  AnnounceDecide(slot, value);
  DrainPending();
}

void Replica::AnnounceDecide(SlotId slot, const Value& value) {
  // Commit notification to learners.
  std::vector<NodeId> learners;
  switch (config_.decide_policy) {
    case DecidePolicy::kNone:
      break;
    case DecidePolicy::kQuorum:
      learners = ReplicationTargets();
      break;
    case DecidePolicy::kZone:
      learners = topology_->NodesInZone(topology_->ZoneOf(id_));
      break;
    case DecidePolicy::kAll:
      learners = topology_->AllNodes();
      break;
  }
  if (!learners.empty()) {
    auto decide = std::make_shared<DecideMsg>(config_.partition, slot, value);
    for (NodeId t : learners) {
      if (t != id_) SendTo(t, decide);
    }
  }
}

void Replica::OnDecide(NodeId from, const DecideMsg& msg) {
  (void)from;
  LearnDecided(msg.slot, msg.value);
}

// Upper bound on how far beyond the local watermark a decide slot may
// land. Legitimate run-ahead is the in-flight window (tens of slots);
// anything past this is a corrupt-but-parseable slot field, and feeding
// it to DecidedLog would force an allocation proportional to the gap.
constexpr SlotId kMaxDecideHorizon = 1u << 20;

void Replica::LearnDecided(SlotId slot, const Value& value) {
  if (slot < log_start_) return;  // baked into an installed snapshot
  if (slot > watermark_ && slot - watermark_ > kMaxDecideHorizon) {
    // Reached from OnDecide/OnLearnReply with unauthenticated fields: a
    // bit flip in the slot can clear any bound. Dropping a real decide
    // is always safe (the anti-entropy sweep re-learns it); crashing on
    // a deque resize of 2^50 cells is not.
    ++counters_.suspect_msgs_rejected;
    DPAXOS_WARN("node " << id_ << " rejected decide in implausible slot "
                        << slot << " (watermark " << watermark_ << ")");
    return;
  }
  auto [it, inserted] = decided_.emplace(slot, value);
  if (!inserted) {
    if (it->second != value) {
      // Either an agreement violation (protocol bug) or a corrupted
      // value field on the wire — indistinguishable here, so drop and
      // count rather than abort; the harnesses' cluster-checksum
      // convergence check is the agreement oracle for both tiers.
      ++counters_.suspect_msgs_rejected;
      DPAXOS_WARN("node " << id_ << " dropped conflicting decision in slot "
                          << slot);
    }
    return;
  }
  // Advance over the contiguous decided run; each step is one O(1)
  // window probe.
  while (decided_.Contains(watermark_)) ++watermark_;
  FlushDeferredAcks();
  if (decide_cb_) decide_cb_(slot, value);
}

void Replica::DeferOrAck(SlotId slot, std::function<void()> ack) {
  if (!(config_.enable_leases && config_.enable_fast_path) ||
      watermark_ > slot) {
    ack();
    return;
  }
  deferred_acks_.emplace(slot, std::move(ack));
}

void Replica::FlushDeferredAcks() {
  while (!deferred_acks_.empty() &&
         deferred_acks_.begin()->first < watermark_) {
    auto fn = std::move(deferred_acks_.begin()->second);
    deferred_acks_.erase(deferred_acks_.begin());
    fn();  // may reenter (FinishForward -> client resubmit); entry gone
  }
}

void Replica::DrainPending() {
  const size_t window = std::max(config_.max_inflight, 1u);
  while (!pending_.empty() && inflight_.size() < window &&
         (role_ == Role::kLeader ||
          quorums_->mode() == ProtocolMode::kLeaderless)) {
    auto [value, cb] = std::move(pending_.front());
    pending_.pop_front();
    SlotId slot;
    if (quorums_->mode() == ProtocolMode::kLeaderless) {
      slot = leaderless_next_;
      leaderless_next_ += config_.leaderless_total;
    } else {
      slot = next_slot_++;
    }
    StartPropose(slot, std::move(value), std::move(cb));
  }
}

void Replica::StepDown(const Ballot& preemptor) {
  ObserveBallot(preemptor);
  if (quorums_->mode() == ProtocolMode::kLeaderless) return;
  ++counters_.step_downs;
  DPAXOS_DEBUG("node " << id_ << " steps down (preempted by "
                       << preemptor.ToString() << ")");
  role_ = Role::kFollower;
  if (preemptor.node != id_ && !preemptor.is_null()) {
    leader_hint_ = preemptor.node;
  }
  lease_until_ = 0;
  lease_votes_.clear();
  // The fast-slot tracker is a leader structure; a deposed leader's
  // unresolved fast votes are recovered by the next election. The grant
  // itself stays: completed unanimities under it remain safe and visible
  // to any later election (docs/PROTOCOL.md §fast-path).
  ClearFastSlots();
  FailInFlight(Status::Aborted("leadership preempted"));
  auto queued = std::move(pending_);
  pending_.clear();
  for (auto& [v, cb] : queued) cb(Status::Aborted("leadership preempted"),
                                  kInvalidSlot, 0);
}

void Replica::FailInFlight(const Status& status) {
  recovery_pending_ = 0;
  auto inflight = std::move(inflight_);
  inflight_.clear();
  for (auto& [slot, fl] : inflight) {
    if (fl.timer != 0) sim_->Cancel(fl.timer);
    if (fl.cb) fl.cb(status, slot, sim_->Now() - fl.start);
  }
}

// -----------------------------------------------------------------------
// Read leases (paper Section 4.5)

void Replica::RecomputeLeaseExpiry() {
  // The lease holds until t iff the nodes whose lease votes extend past t
  // satisfy the replication quorum rule. Scan vote expiries descending.
  std::vector<Timestamp> expiries;
  expiries.reserve(lease_votes_.size());
  for (const auto& [n, t] : lease_votes_) expiries.push_back(t);
  std::sort(expiries.rbegin(), expiries.rend());
  const QuorumRule& rule = ReplicationRule();
  for (Timestamp t : expiries) {
    std::set<NodeId> voters;
    for (const auto& [n, exp] : lease_votes_) {
      if (exp >= t) voters.insert(n);
    }
    if (rule.IsSatisfied(voters)) {
      lease_until_ = std::max(lease_until_, t);
      return;
    }
  }
}

bool Replica::CanServeLocalRead() const {
  return role_ == Role::kLeader && config_.enable_leases &&
         lease_until_ > sim_->Now();
}

bool Replica::CanServeQuorumRead() const {
  if (!config_.enable_quorum_reads || !config_.enable_leases) return false;
  if (CanServeLocalRead()) return true;  // the leader always qualifies
  // A member that granted the active lease sees every write (the intent
  // requires all members to accept). It may answer reads only when its
  // learned prefix covers everything it has accepted: a write committed
  // before this read started was accepted here earlier, so either it is
  // below the watermark (learned, visible) or it would show up as a
  // pending accepted entry and block the read.
  if (!acceptor_.HasActiveLease(sim_->Now())) return false;
  if (acceptor_.accepted_count() == 0) return watermark_ == 0;
  return acceptor_.HighestAcceptedSlot() < watermark_;
}

// -----------------------------------------------------------------------
// Leader Handoff (paper Section 4.4)

Status Replica::HandoffTo(NodeId new_leader) {
  if (role_ != Role::kLeader) {
    return Status::FailedPrecondition("only a leader can relinquish");
  }
  if (!inflight_.empty() || !pending_.empty()) {
    return Status::FailedPrecondition("in-flight proposals pending");
  }
  if (new_leader == id_) {
    return Status::InvalidArgument("cannot hand off to self");
  }
  if (config_.enable_fast_path && fast_grant_.valid() &&
      fast_grant_.ballot == ballot_) {
    // A handoff continues the same ballot with no promise barrier, so the
    // new leader could classic-propose over a fast commit it never saw.
    // Refusing forces the requester into an election, whose prepare round
    // observes every fast vote.
    return Status::FailedPrecondition("fast grant outstanding; elect instead");
  }
  auto msg = std::make_shared<RelinquishMsg>(
      config_.partition, ballot_, next_slot_, declared_intents_, lz_view_);
  SendTo(new_leader, msg);
  // After sending relinquish(), the old leader refrains from acting as a
  // leader for the relinquished slots — even if the message is lost.
  ++counters_.handoffs_sent;
  role_ = Role::kFollower;
  DPAXOS_DEBUG("node " << id_ << " relinquished leadership to "
                       << new_leader);
  return Status::OK();
}

void Replica::RequestHandoffFrom(NodeId old_leader, StatusCallback cb) {
  if (role_ == Role::kLeader) {
    cb(Status::OK());
    return;
  }
  if (handoff_cb_) {
    cb(Status::Aborted("handoff already in progress"));
    return;
  }
  handoff_cb_ = std::move(cb);
  SendTo(old_leader, std::make_shared<HandoffRequestMsg>(config_.partition));
  handoff_timer_ = ScheduleSafe(config_.propose_timeout, [this] {
    handoff_timer_ = 0;
    if (handoff_cb_) {
      // Lost request or relinquish: neither node may lead now; the
      // caller must fall back to a Leader Election (paper Section 4.4).
      auto cb = std::move(handoff_cb_);
      handoff_cb_ = nullptr;
      cb(Status::TimedOut("handoff timed out; leader election required"));
    }
  });
}

void Replica::OnHandoffRequest(NodeId from, const HandoffRequestMsg& msg) {
  (void)msg;
  if (role_ != Role::kLeader) return;
  const Status st = HandoffTo(from);
  if (!st.ok()) {
    DPAXOS_DEBUG("node " << id_ << " refuses handoff: " << st.ToString());
  }
}

void Replica::OnRelinquish(NodeId from, const RelinquishMsg& msg) {
  (void)from;
  ObserveBallot(msg.ballot);
  AdoptView(msg.lz_view);
  if (role_ == Role::kLeader) return;  // already leading; ignore
  if (acceptor_.promised() > msg.ballot) {
    // A higher ballot superseded this leadership line; assuming it would
    // only produce doomed proposals.
    return;
  }
  if (!acceptor_.ConsumeRelinquish(msg.ballot)) {
    // Duplicate delivery (or a replay after we already consumed this
    // handoff and possibly lost the role again): never re-activate.
    return;
  }
  if (role_ == Role::kCandidate && election_ != nullptr) {
    // The relinquish supersedes our own election attempt.
    if (election_->timer != 0) sim_->Cancel(election_->timer);
    StatusCallback cb = std::move(election_->cb);
    election_.reset();
    if (cb) cb(Status::OK());
  }
  ++counters_.handoffs_received;
  role_ = Role::kLeader;
  ballot_ = msg.ballot;
  next_slot_ = msg.next_slot;
  recovery_pending_ = 0;  // the old leader only relinquishes when idle
  // The new leader may only use the relinquished leader's declared
  // replication quorums (restriction under Expanding Quorums).
  declared_intents_ = msg.intents;
  active_intent_ = 0;
  InvalidateReplicationRule();
  if (config_.enable_failure_detector) {
    if (watchdog_timer_ != 0) {
      sim_->Cancel(watchdog_timer_);
      watchdog_timer_ = 0;
    }
    SendHeartbeats();
  }
  lease_votes_.clear();
  lease_until_ = 0;
  DPAXOS_DEBUG("node " << id_ << " received leadership via handoff, ballot "
                       << ballot_.ToString());
  if (handoff_cb_) {
    if (handoff_timer_ != 0) sim_->Cancel(handoff_timer_);
    handoff_timer_ = 0;
    auto cb = std::move(handoff_cb_);
    handoff_cb_ = nullptr;
    cb(Status::OK());
  }
  DrainPending();
}

// -----------------------------------------------------------------------
// Partition ownership steals (docs/PROTOCOL.md §ownership)

void Replica::StealOwnershipFrom(NodeId incumbent, Value transfer_record,
                                 StatusCallback cb) {
  if (steal_cb_) {
    if (cb) cb(Status::Aborted("steal already in progress"));
    return;
  }
  if (incumbent == id_) {
    if (cb) cb(Status::InvalidArgument("cannot steal from self"));
    return;
  }
  steal_cb_ = std::move(cb);
  steal_record_ = std::move(transfer_record);
  if (role_ == Role::kLeader) {
    // Degenerate steal: we already hold the log (e.g. a directory lagging
    // a crash-recovery election). Just commit the transfer record.
    StealElectAndRecord();
    return;
  }
  ++counters_.steal_requests_sent;
  SendTo(incumbent,
         std::make_shared<StealRequestMsg>(config_.partition, ballot_, zone(),
                                           /*invite=*/false));
  steal_timer_ = ScheduleSafe(config_.propose_timeout, [this] {
    steal_timer_ = 0;
    if (!steal_cb_) return;
    // Lost request, lost grant, or incumbent crash mid-handoff. If the
    // incumbent fenced before dying, nobody leads now; if our request
    // never arrived, the election preempts the incumbent by ballot
    // order. Either way an ordinary Leader Election is safe and
    // sufficient (docs/PROTOCOL.md §ownership).
    StealElectAndRecord();
  });
}

void Replica::InviteSteal(NodeId thief) {
  if (thief == id_) return;
  SendTo(thief, std::make_shared<StealRequestMsg>(config_.partition, ballot_,
                                                  zone(), /*invite=*/true));
}

void Replica::OnStealRequest(NodeId from, const StealRequestMsg& msg) {
  ++counters_.steal_requests_received;
  ObserveBallot(msg.ballot);
  if (msg.invite) {
    // Incumbent -> would-be thief invitation (placement sweep). Acting on
    // it is the host's decision; mid-steal or already-leading replicas
    // ignore it.
    if (steal_invite_cb_ && !steal_cb_ && role_ != Role::kLeader) {
      steal_invite_cb_(from);
    }
    return;
  }
  StealRefusal refusal = StealRefusal::kNone;
  if (role_ != Role::kLeader) {
    refusal = StealRefusal::kNotLeader;
  } else if (!inflight_.empty() || !pending_.empty()) {
    refusal = StealRefusal::kBusy;
  } else if (config_.enable_fast_path && fast_grant_.valid() &&
             fast_grant_.ballot == ballot_) {
    // Same hazard as HandoffTo: with a fast grant outstanding there may
    // be fast commits only an election's prepare round observes, so the
    // thief must win one rather than inherit the regime.
    refusal = StealRefusal::kFastGrant;
  }
  if (refusal != StealRefusal::kNone) {
    ++counters_.steals_refused;
    SendTo(from, std::make_shared<OwnershipGrantMsg>(
                     config_.partition, /*granted=*/false, refusal, ballot_,
                     next_slot_, DecidedWatermark(), /*snapshot_ready=*/false,
                     role_ == Role::kLeader ? id_ : leader_hint_));
    return;
  }
  auto grant = std::make_shared<OwnershipGrantMsg>(
      config_.partition, /*granted=*/true, StealRefusal::kNone, ballot_,
      next_slot_, DecidedWatermark(), snapshot_serve_ready(), id_);
  SendTo(from, grant);
  ++counters_.steals_granted;
  // Fence: after the grant is sent this replica stops acting as leader
  // even if the grant is lost — the relinquish discipline. Unlike a
  // handoff, leadership itself transfers by the thief's election, whose
  // prepare round supersedes this ballot.
  role_ = Role::kFollower;
  leader_hint_ = from;
  DPAXOS_DEBUG("node " << id_ << " granted ownership steal to " << from);
}

void Replica::OnOwnershipGrant(NodeId from, const OwnershipGrantMsg& msg) {
  ObserveBallot(msg.ballot);
  if (!steal_cb_) return;  // stale or duplicate grant
  if (steal_timer_ != 0) {
    sim_->Cancel(steal_timer_);
    steal_timer_ = 0;
  }
  if (!msg.granted) {
    if (msg.leader_hint != kInvalidNode && msg.leader_hint != id_) {
      leader_hint_ = msg.leader_hint;
    }
    const char* why = msg.reason == StealRefusal::kNotLeader ? "not leader"
                      : msg.reason == StealRefusal::kBusy
                          ? "in-flight proposals pending"
                          : "fast grant outstanding";
    FinishSteal(Status::FailedPrecondition(std::string("steal refused: ") +
                                           why));
    return;
  }
  // The incumbent fenced its log. Catch up to its decided prefix before
  // electing, so the election adopts little and the transfer record
  // lands right at the fence; a failed catch-up is not fatal because the
  // prepare round adopts whatever we missed.
  const SlotId mine = DecidedWatermark();
  const uint64_t gap = msg.decided_size > mine ? msg.decided_size - mine : 0;
  StatusCallback next = [this](const Status&) { StealElectAndRecord(); };
  if (msg.snapshot_ready && snapshot_transfer_ready() &&
      gap >= config_.steal_snapshot_min_slots) {
    CatchUpViaSnapshot({from}, std::move(next));
  } else if (gap > 0) {
    CatchUpFrom(from, std::move(next));
  } else {
    StealElectAndRecord();
  }
}

void Replica::StealElectAndRecord() {
  TryBecomeLeader([this](const Status& st) {
    if (!st.ok()) {
      FinishSteal(st);
      return;
    }
    ++counters_.steals_won;
    Value record = std::move(steal_record_);
    steal_record_ = Value();
    Submit(std::move(record),
           [this](const Status& cst, SlotId, Duration) { FinishSteal(cst); });
  });
}

void Replica::FinishSteal(const Status& status) {
  if (steal_timer_ != 0) {
    sim_->Cancel(steal_timer_);
    steal_timer_ = 0;
  }
  steal_record_ = Value();
  if (!steal_cb_) return;
  auto cb = std::move(steal_cb_);
  steal_cb_ = nullptr;
  cb(status);
}

// -----------------------------------------------------------------------
// Request forwarding (remote clients)

void Replica::SubmitOrForward(Value value, CommitCallback cb) {
  // Fast path: with a grant armed, skip the leader relay and send the
  // value straight to the fast quorum's acceptors; any nack, conflict or
  // timeout falls back to the classic forward below (same request id).
  if (config_.enable_fast_path && !is_leader() &&
      quorums_->mode() != ProtocolMode::kLeaderless && fast_grant_.valid()) {
    const uint64_t request_id = next_forward_id_++;
    PendingForward& fw = pending_forwards_[request_id];
    fw.value = std::move(value);
    const Timestamp submitted = sim_->Now();
    fw.cb = [this, submitted, inner = std::move(cb)](
                const Status& st, SlotId slot, Duration) {
      if (inner) inner(st, slot, sim_->Now() - submitted);
    };
    StartFastAttempt(request_id);
    return;
  }
  if (is_leader() || quorums_->mode() == ProtocolMode::kLeaderless ||
      leader_hint_ == kInvalidNode || leader_hint_ == id_) {
    Submit(std::move(value), std::move(cb));
    return;
  }
  // Latency is end-to-end at the origin: forward + commit + reply.
  const uint64_t request_id = next_forward_id_++;
  PendingForward& fw = pending_forwards_[request_id];
  fw.value = std::move(value);
  const Timestamp submitted = sim_->Now();
  fw.cb = [this, submitted, inner = std::move(cb)](
              const Status& st, SlotId slot, Duration) {
    if (inner) inner(st, slot, sim_->Now() - submitted);
  };
  SendForward(request_id);
}

void Replica::SendForward(uint64_t request_id) {
  auto it = pending_forwards_.find(request_id);
  DPAXOS_CHECK(it != pending_forwards_.end());
  PendingForward& fw = it->second;
  SendTo(leader_hint_, std::make_shared<ForwardMsg>(config_.partition,
                                                    request_id, fw.value));
  fw.timer = ScheduleSafe(config_.propose_timeout, [this, request_id] {
    auto it2 = pending_forwards_.find(request_id);
    if (it2 == pending_forwards_.end()) return;
    it2->second.timer = 0;
    if (++it2->second.attempts > config_.max_propose_retries) {
      FinishForward(request_id,
                    Status::TimedOut("forwarded request timed out"),
                    kInvalidSlot);
      return;
    }
    SendForward(request_id);
  });
}

void Replica::FinishForward(uint64_t request_id, const Status& status,
                            SlotId slot) {
  CancelFastAttempt(request_id);  // the request is resolved either way
  auto it = pending_forwards_.find(request_id);
  if (it == pending_forwards_.end()) return;
  PendingForward fw = std::move(it->second);
  pending_forwards_.erase(it);
  if (fw.timer != 0) sim_->Cancel(fw.timer);
  if (fw.cb) fw.cb(status, slot, 0);
}

void Replica::OnForward(NodeId from, const ForwardMsg& msg) {
  const uint64_t request_id = msg.request_id;
  if (!is_leader() && quorums_->mode() != ProtocolMode::kLeaderless &&
      leader_hint_ != kInvalidNode && leader_hint_ != id_) {
    // Never forward a forward (no chains): redirect to the better hint.
    // Without one we fall through to Submit below, which elects us if
    // the configuration allows (auto_elect_on_submit).
    auto reply =
        std::make_shared<ForwardReplyMsg>(config_.partition, request_id);
    reply->code = StatusCode::kFailedPrecondition;
    reply->leader_hint = leader_hint_;
    ++counters_.redirects_sent;
    SendTo(from, reply);
    return;
  }
  ++counters_.forwards_handled;
  Submit(msg.value, [this, from, request_id](const Status& st, SlotId slot,
                                             Duration /*latency*/) {
    auto reply =
        std::make_shared<ForwardReplyMsg>(config_.partition, request_id);
    reply->code = st.code();
    reply->slot = slot;
    reply->leader_hint = is_leader() ? id_ : leader_hint_;
    SendTo(from, reply);
  });
}

void Replica::OnForwardReply(NodeId from, const ForwardReplyMsg& msg) {
  (void)from;
  // A reply for a live fast attempt resolves it: OK means the leader's
  // tracker committed for us; anything else (a conflict-loser bounce) is
  // a fallback, and the retry logic below re-drives it classically.
  if (auto fa = fast_attempts_.find(msg.request_id);
      fa != fast_attempts_.end()) {
    if (fa->second.timer != 0) sim_->Cancel(fa->second.timer);
    fast_attempts_.erase(fa);
    if (msg.code != StatusCode::kOk) {
      ++counters_.fast_fallbacks;
    } else {
      // Leader-acked fast commit: the safety-net reply resolved the
      // attempt before (or instead of, under enable_leases) our own
      // tally.
      ++counters_.fast_commits;
    }
  }
  auto it = pending_forwards_.find(msg.request_id);
  if (it == pending_forwards_.end()) return;  // duplicate / late reply
  if (msg.code == StatusCode::kOk) {
    FinishForward(msg.request_id, Status::OK(), msg.slot);
    return;
  }
  // Redirect or transient failure: retry against the fresher hint.
  if (msg.leader_hint != kInvalidNode && msg.leader_hint != id_) {
    leader_hint_ = msg.leader_hint;
  }
  PendingForward& fw = it->second;
  if (fw.timer != 0) sim_->Cancel(fw.timer);
  fw.timer = 0;
  if (++fw.attempts > config_.max_propose_retries ||
      leader_hint_ == kInvalidNode) {
    FinishForward(msg.request_id,
                  Status::Unavailable("no reachable leader (last: " +
                                      std::string(StatusCodeToString(
                                          msg.code)) +
                                      ")"),
                  kInvalidSlot);
    return;
  }
  if (leader_hint_ == id_) {
    // We are supposedly the leader now; commit locally.
    PendingForward local = std::move(fw);
    pending_forwards_.erase(it);
    Submit(std::move(local.value),
           [cb = std::move(local.cb)](const Status& st, SlotId slot,
                                      Duration d) { cb(st, slot, d); });
    return;
  }
  SendForward(msg.request_id);
}

// -----------------------------------------------------------------------
// Fast path (enable_fast_path; docs/PROTOCOL.md §fast-path)

void Replica::StartFastAttempt(uint64_t request_id) {
  auto fw = pending_forwards_.find(request_id);
  DPAXOS_CHECK(fw != pending_forwards_.end());
  FastAttempt& fa = fast_attempts_[request_id];
  fa.ballot = fast_grant_.ballot;
  fa.quorum_size = fast_grant_.quorum.size();
  auto msg = std::make_shared<FastAcceptMsg>(
      config_.partition, fast_grant_.ballot, request_id, fw->second.value);
  // One round trip: straight to the fast quorum's acceptors (the leader
  // is a member and tracks votes from its own copy's replies).
  SendToAll(fast_grant_.quorum, msg);
  fa.timer = ScheduleSafe(FastTimeout(), [this, request_id] {
    auto it = fast_attempts_.find(request_id);
    if (it == fast_attempts_.end()) return;
    it->second.timer = 0;
    FastFallback(request_id);
  });
}

void Replica::FastFallback(uint64_t request_id) {
  auto it = fast_attempts_.find(request_id);
  if (it == fast_attempts_.end()) return;
  if (it->second.timer != 0) sim_->Cancel(it->second.timer);
  fast_attempts_.erase(it);
  ++counters_.fast_fallbacks;
  auto fw = pending_forwards_.find(request_id);
  if (fw == pending_forwards_.end()) return;  // already resolved
  if (!is_leader() && quorums_->mode() != ProtocolMode::kLeaderless &&
      leader_hint_ != kInvalidNode && leader_hint_ != id_) {
    SendForward(request_id);  // classic relay, same request id
    return;
  }
  // No usable hint (or we got elected meanwhile): commit locally.
  PendingForward local = std::move(fw->second);
  pending_forwards_.erase(fw);
  if (local.timer != 0) sim_->Cancel(local.timer);
  Submit(std::move(local.value), std::move(local.cb));
}

void Replica::CancelFastAttempt(uint64_t request_id) {
  auto it = fast_attempts_.find(request_id);
  if (it == fast_attempts_.end()) return;
  if (it->second.timer != 0) sim_->Cancel(it->second.timer);
  fast_attempts_.erase(it);
}

void Replica::OnFastGrant(NodeId from, const FastGrantMsg& msg) {
  (void)from;
  ObserveBallot(msg.ballot);
  if (!config_.enable_fast_path) return;
  if (fast_grant_.valid() && msg.ballot < fast_grant_.ballot) return;
  // Prepare-lite: promising the grant ballot keeps a deposed leader's
  // classic proposals from landing under fast votes it cannot see.
  if (acceptor_.PromiseAtLeast(msg.ballot) && sync_hook_) sync_hook_();
  if (msg.ballot > ballot_ && role_ != Role::kFollower &&
      msg.ballot.node != id_) {
    StepDown(msg.ballot);
  }
  if (quorums_->mode() != ProtocolMode::kLeaderless) {
    leader_hint_ = msg.ballot.node;
  }
  fast_grant_.ballot = msg.ballot;
  fast_grant_.first_slot = msg.first_slot;
  fast_grant_.quorum = msg.quorum;
  DPAXOS_CHECK(std::is_sorted(fast_grant_.quorum.begin(),
                              fast_grant_.quorum.end()));
}

void Replica::OnFastAccept(NodeId from, const FastAcceptMsg& msg) {
  ObserveBallot(msg.ballot);
  const bool eligible =
      config_.enable_fast_path && fast_grant_.valid() &&
      msg.ballot == fast_grant_.ballot &&
      std::binary_search(fast_grant_.quorum.begin(), fast_grant_.quorum.end(),
                         id_);
  Acceptor::FastVoteOutcome out;
  if (eligible) {
    // Fence fast votes above every slot committed below the grant ballot
    // (first_slot) and above what this node already knows decided; the
    // leader additionally fences its own classic allocation cursor so a
    // concurrent classic propose never lands under a local fast vote.
    SlotId min_slot = std::max(fast_grant_.first_slot, watermark_);
    if (role_ == Role::kLeader) min_slot = std::max(min_slot, next_slot_);
    out = acceptor_.OnFastAccept(msg.ballot, msg.value, min_slot);
  } else {
    out.promised_ballot = acceptor_.promised();
  }
  if (!out.voted) {
    auto nack = std::make_shared<FastNackMsg>(
        config_.partition, msg.ballot, out.promised_ballot, msg.request_id);
    nack->leader_hint = leader_hint_;
    SendTo(from, nack);
    return;
  }
  ++counters_.fast_votes;
  if (role_ == Role::kLeader) {
    next_slot_ = std::max(next_slot_, out.slot + 1);
  }
  auto reply = std::make_shared<FastAcceptedMsg>(
      config_.partition, msg.ballot, out.slot, from, msg.request_id,
      msg.value);
  const NodeId leader = fast_grant_.ballot.node;
  // The vote is durable before it is answered.
  SyncThenDeliver([this, from, leader, reply] {
    SendTo(from, reply);
    // The grant leader tracks every vote (unanimity and conflicts); our
    // own copy reaches the local tracker through the loopback transport.
    if (leader != from) SendTo(leader, reply);
  });
}

void Replica::OnFastAccepted(NodeId from, const FastAcceptedMsg& msg) {
  ObserveBallot(msg.ballot);
  // Proposer-side tally (this copy was addressed to the proposer).
  if (msg.proposer == id_) {
    auto it = fast_attempts_.find(msg.request_id);
    if (it != fast_attempts_.end() && msg.ballot == it->second.ballot) {
      FastAttempt& fa = it->second;
      fa.voters.insert(from);
      std::set<NodeId>& slot_votes = fa.votes[msg.slot];
      slot_votes.insert(from);
      if (slot_votes.size() >= fa.quorum_size) {
        if (config_.enable_leases) {
          // Lease-local reads serve the leaseholder's decided prefix,
          // so the commit point must be the LEADER's unanimity: an
          // origin-side ack here could let the client read at the
          // leaseholder before the leader observed the final vote.
          // Wait for the safety-net ForwardReply (OnForwardReply
          // finishes; the attempt timer still guards liveness).
          return;
        }
        // Unanimity on one slot: committed in a single round trip.
        if (fa.timer != 0) sim_->Cancel(fa.timer);
        fast_attempts_.erase(it);
        ++counters_.fast_commits;
        FinishForward(msg.request_id, Status::OK(), msg.slot);
        return;
      }
      if (fa.voters.size() >= fa.quorum_size) {
        // Every member voted, but across different slots: unanimity is
        // now impossible — do not wait out the timer.
        FastFallback(msg.request_id);
        return;
      }
    }
  }
  // Leader-side tracker (this copy was addressed to the grant leader).
  if (role_ == Role::kLeader && msg.ballot == ballot_) {
    TrackFastVote(from, msg.slot, msg.value, msg.proposer, msg.request_id);
  }
}

void Replica::OnFastNack(NodeId from, const FastNackMsg& msg) {
  (void)from;
  ObserveBallot(msg.promised);
  if (fast_attempts_.count(msg.request_id) == 0) return;
  if (msg.leader_hint != kInvalidNode && msg.leader_hint != id_) {
    leader_hint_ = msg.leader_hint;
  }
  FastFallback(msg.request_id);
}

void Replica::TrackFastVote(NodeId voter, SlotId slot, const Value& value,
                            NodeId proposer, uint64_t request_id) {
  if (!fast_grant_.valid() || fast_grant_.ballot != ballot_) return;
  if (!std::binary_search(fast_grant_.quorum.begin(),
                          fast_grant_.quorum.end(), voter)) {
    return;
  }
  if (decided_.count(slot) > 0) return;  // already resolved
  FastSlot& fs = fast_slots_[slot];
  fs.votes[voter] = value.id;
  fs.values.emplace(value.id, value);
  fs.origins.emplace(value.id, std::make_pair(proposer, request_id));
  if (fs.timer == 0) {
    // Liveness net: a slot that never reaches unanimity (lost votes,
    // nacked members) is resolved classically so the log has no holes.
    fs.timer = ScheduleSafe(FastTimeout(), [this, slot] {
      auto it = fast_slots_.find(slot);
      if (it == fast_slots_.end()) return;
      it->second.timer = 0;
      ResolveFastSlot(slot);
    });
  }
  if (fs.values.size() > 1) {
    ResolveFastSlot(slot);  // two values on one slot: conflict
    return;
  }
  if (fs.votes.size() >= fast_grant_.quorum.size()) {
    // Unanimous: committed. (Our own acceptor is a member, so its vote —
    // which advanced next_slot_ — is part of this count.)
    FastSlot done = std::move(fs);
    fast_slots_.erase(slot);
    if (done.timer != 0) sim_->Cancel(done.timer);
    next_slot_ = std::max(next_slot_, slot + 1);
    const Value v = done.values.begin()->second;
    LearnDecided(slot, v);
    AnnounceDecide(slot, v);
    // Safety net: resolve the proposer's forward even if its own tally
    // copies were lost (duplicate replies are ignored there). Under the
    // lease fence this reply IS the commit ack, so it too waits for
    // watermark coverage.
    DeferOrAck(slot, [this, proposer, request_id, slot] {
      auto reply =
          std::make_shared<ForwardReplyMsg>(config_.partition, request_id);
      reply->code = StatusCode::kOk;
      reply->slot = slot;
      reply->leader_hint = id_;
      SendTo(proposer, reply);
    });
    DrainPending();
  }
}

void Replica::ResolveFastSlot(SlotId slot) {
  auto it = fast_slots_.find(slot);
  if (it == fast_slots_.end()) return;
  FastSlot fs = std::move(it->second);
  fast_slots_.erase(it);
  if (fs.timer != 0) sim_->Cancel(fs.timer);
  if (role_ != Role::kLeader) return;  // a later election recovers
  if (fs.values.size() > 1) ++counters_.fast_conflicts;

  const bool slot_taken =
      decided_.count(slot) > 0 || inflight_.count(slot) > 0;
  // Winner: the value our own acceptor fast-voted here if any (every
  // fast-committable value must include our vote), else the smallest
  // value id — deterministic without any RNG draw.
  uint64_t winner_id = fs.values.begin()->first;
  const AcceptedEntry* own = acceptor_.AcceptedFor(slot);
  if (own != nullptr && own->fast && own->ballot == ballot_ &&
      fs.values.count(own->value.id) > 0) {
    winner_id = own->value.id;
  }
  // Bounce the losers (and, if the slot is already spoken for, everyone)
  // back to their proposers: they re-drive the same request classically,
  // which avoids committing a fallback value twice.
  for (const auto& [vid, origin] : fs.origins) {
    if (!slot_taken && vid == winner_id) continue;
    auto reply =
        std::make_shared<ForwardReplyMsg>(config_.partition, origin.second);
    reply->code = StatusCode::kAborted;
    reply->leader_hint = id_;
    SendTo(origin.first, reply);
  }
  if (slot_taken) return;

  next_slot_ = std::max(next_slot_, slot + 1);
  Value winner = fs.values.at(winner_id);
  CommitCallback cb = IgnoreCommit;
  if (auto origin = fs.origins.find(winner_id); origin != fs.origins.end()) {
    const NodeId prop = origin->second.first;
    const uint64_t rid = origin->second.second;
    cb = [this, prop, rid](const Status& st, SlotId s, Duration) {
      auto reply = std::make_shared<ForwardReplyMsg>(config_.partition, rid);
      reply->code = st.code();
      reply->slot = s;
      reply->leader_hint = id_;
      SendTo(prop, reply);
    };
  }
  StartPropose(slot, std::move(winner), std::move(cb));
}

void Replica::ClearFastSlots() {
  for (auto& [slot, fs] : fast_slots_) {
    if (fs.timer != 0) sim_->Cancel(fs.timer);
  }
  fast_slots_.clear();
}

// -----------------------------------------------------------------------
// Learner catch-up, log truncation and snapshots

namespace {
// Entries shipped per learn-reply page.
constexpr uint32_t kCatchUpPageSize = 256;
}  // namespace

void Replica::CatchUpFrom(NodeId peer, StatusCallback cb) {
  CatchUpFrom(std::vector<NodeId>{peer}, std::move(cb));
}

void Replica::CatchUpFrom(std::vector<NodeId> peers, StatusCallback cb) {
  if (catchup_ != nullptr) {
    cb(Status::Aborted("catch-up already in progress"));
    return;
  }
  std::erase(peers, id_);
  if (peers.empty()) {
    cb(Status::InvalidArgument("cannot catch up from self"));
    return;
  }
  catchup_ = std::make_unique<CatchUp>();
  catchup_->peers = std::move(peers);
  catchup_->cb = std::move(cb);
  CatchUpRequestNext();
}

void Replica::CatchUpViaSnapshot(std::vector<NodeId> peers, StatusCallback cb) {
  if (snapshot_installer_ == nullptr) {
    // No installer wired: degrade to the ordinary log-page path.
    CatchUpFrom(std::move(peers), std::move(cb));
    return;
  }
  if (catchup_ != nullptr) {
    cb(Status::Aborted("catch-up already in progress"));
    return;
  }
  std::erase(peers, id_);
  if (peers.empty()) {
    cb(Status::InvalidArgument("cannot catch up from self"));
    return;
  }
  catchup_ = std::make_unique<CatchUp>();
  catchup_->peers = std::move(peers);
  catchup_->cb = std::move(cb);
  catchup_->snapshotting = true;
  CatchUpRequestNext();
}

void Replica::CatchUpRequestNext() {
  DPAXOS_CHECK(catchup_ != nullptr);
  CatchUp& cu = *catchup_;
  if (cu.snapshotting) {
    SendTo(cu.peer(), std::make_shared<SnapshotRequestMsg>(
                          config_.partition, cu.snap_buffer.size()));
  } else {
    SendTo(cu.peer(), std::make_shared<LearnRequestMsg>(
                          config_.partition, watermark_, kCatchUpPageSize));
  }
  CatchUpArmTimer();
}

void Replica::CatchUpArmTimer() {
  catchup_->timer =
      ScheduleSafe(config_.propose_timeout, [this] { CatchUpTimeout(); });
}

void Replica::CatchUpTimeout() {
  if (catchup_ == nullptr) return;
  CatchUp& cu = *catchup_;
  cu.timer = 0;
  if (++cu.attempts > config_.catchup_retry_limit) {
    CatchUpFailover(Status::TimedOut("catch-up peer unresponsive"));
    return;
  }
  if (config_.catchup_backoff_base == 0) {
    // Legacy spacing: the propose_timeout wait itself paces retries.
    CatchUpRequestNext();
    return;
  }
  // Jittered exponential backoff from the dedicated catch-up stream
  // (rng_ draws would shift every schedule that shares it).
  const uint32_t shift = std::min(cu.attempts - 1, 6u);
  Duration wait = config_.catchup_backoff_base * (1ull << shift);
  wait = static_cast<Duration>(static_cast<double>(wait) *
                               (1.0 + catchup_rng_.NextDouble()));
  wait = std::min(wait, config_.catchup_backoff_cap);
  cu.timer = ScheduleSafe(wait, [this] {
    if (catchup_ == nullptr) return;
    catchup_->timer = 0;
    CatchUpRequestNext();
  });
}

void Replica::CatchUpFailover(const Status& status) {
  DPAXOS_CHECK(catchup_ != nullptr);
  CatchUp& cu = *catchup_;
  if (cu.timer != 0) {
    sim_->Cancel(cu.timer);
    cu.timer = 0;
  }
  if (cu.index + 1 >= cu.peers.size()) {
    CatchUpFinish(status);
    return;
  }
  ++cu.index;
  cu.attempts = 0;
  // Any half-reassembled snapshot belonged to the old peer's image.
  cu.snapshotting = false;
  cu.snap_buffer.clear();
  cu.snap_through = 0;
  cu.snap_total = 0;
  ++counters_.catchup_failovers;
  DPAXOS_DEBUG("node " << id_ << " catch-up fails over to node " << cu.peer()
                       << " after: " << status.ToString());
  CatchUpRequestNext();
}

void Replica::CatchUpFinish(const Status& status) {
  DPAXOS_CHECK(catchup_ != nullptr);
  if (catchup_->timer != 0) sim_->Cancel(catchup_->timer);
  StatusCallback cb = std::move(catchup_->cb);
  catchup_.reset();
  if (cb) cb(status);
}

Status Replica::TruncateDecidedBelow(SlotId slot) {
  if (slot > watermark_) {
    return Status::FailedPrecondition(
        "cannot truncate beyond the contiguous watermark");
  }
  if (slot > log_start_ && snapshot_provider_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot hooks required before truncating history");
  }
  decided_.EraseBelow(slot);
  log_start_ = std::max(log_start_, slot);
  return Status::OK();
}

Status Replica::Compact(SlotId through) {
  if (!config_.enable_compaction) {
    return Status::FailedPrecondition("compaction is disabled");
  }
  if (snapshot_provider_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot hooks required before compacting history");
  }
  // Snapshot first: everything we drop must be covered by a durable,
  // CRC-protected image. The provider reports the true coverage slot,
  // which may exceed the requested compaction point.
  SlotId covered = 0;
  std::string envelope = snapshot_provider_(&covered);
  const SlotId point = std::min({through, watermark_, covered});
  if (point <= log_start_) return Status::OK();  // nothing new to release
  acceptor_.StoreSnapshot(covered, std::move(envelope));
  StorageBarrier();
  // Snapshot durable: releasing the prefix is now crash-safe.
  decided_.TruncateTo(point);
  log_start_ = point;
  acceptor_.ReleaseAcceptedBelow(point);
  StorageBarrier();
  ++counters_.log_compactions;
  return Status::OK();
}

void Replica::DropInstalledSnapshot() {
  acceptor_.DropStoredSnapshot();
  StorageBarrier();
  // The compaction watermark survives: the prefix is gone either way,
  // so this replica must relearn state from its peers.
  decided_ = DecidedLog();
  log_start_ = 0;
  watermark_ = 0;
}

void Replica::OnLearnRequest(NodeId from, const LearnRequestMsg& msg) {
  auto reply = std::make_shared<LearnReplyMsg>(config_.partition);
  reply->from_slot = msg.from_slot;
  reply->peer_watermark = watermark_;
  reply->first_available = log_start_;
  if (msg.from_slot >= log_start_) {
    uint32_t count = 0;
    for (auto it = decided_.lower_bound(msg.from_slot);
         it != decided_.end() && count < msg.max_entries; ++it, ++count) {
      reply->entries.push_back(DecidedEntryWire{it->first, it->second});
    }
  }
  SendTo(from, reply);
}

void Replica::OnLearnReply(NodeId from, const LearnReplyMsg& msg) {
  if (catchup_ == nullptr || from != catchup_->peer() ||
      catchup_->snapshotting) {
    return;
  }
  if (msg.from_slot != watermark_) return;  // stale page
  if (catchup_->timer != 0) sim_->Cancel(catchup_->timer);
  catchup_->timer = 0;
  catchup_->attempts = 0;

  if (msg.first_available > watermark_) {
    // The peer compacted this prefix away: fall back to a snapshot.
    if (snapshot_installer_ == nullptr) {
      CatchUpFinish(Status::FailedPrecondition(
          "peer truncated its log and no snapshot installer is wired"));
      return;
    }
    catchup_->snapshotting = true;
    catchup_->snap_buffer.clear();
    catchup_->snap_through = 0;
    catchup_->snap_total = 0;
    CatchUpRequestNext();
    return;
  }

  for (const DecidedEntryWire& e : msg.entries) {
    LearnDecided(e.slot, e.value);
  }
  if (watermark_ >= msg.peer_watermark) {
    CatchUpFinish(Status::OK());
    return;
  }
  if (msg.entries.empty()) {
    // The peer has a gap too; nothing more to pull from it.
    CatchUpFinish(Status::Unavailable("peer cannot provide further slots"));
    return;
  }
  CatchUpRequestNext();
}

void Replica::OnSnapshotRequest(NodeId from, const SnapshotRequestMsg& msg) {
  if (snapshot_provider_ == nullptr) return;  // cannot serve
  if (msg.offset == 0 || snapshot_cache_.bytes.empty()) {
    // Fresh transfer: regenerate, so every later chunk comes from one
    // consistent image.
    SlotId through = 0;
    snapshot_cache_.bytes = snapshot_provider_(&through);
    snapshot_cache_.through = through;
    ++counters_.snapshots_served;
    // Nemesis fault injection: corrupt the image we are about to serve.
    // The requester's CRC check must catch either mutation.
    if (snapshot_fault_ == SnapshotFault::kBitFlip &&
        !snapshot_cache_.bytes.empty()) {
      snapshot_cache_.bytes[snapshot_cache_.bytes.size() / 2] ^= 0x01;
      snapshot_fault_ = SnapshotFault::kNone;
    } else if (snapshot_fault_ == SnapshotFault::kTruncate) {
      const size_t torn = snapshot_cache_.bytes.size() / 2;
      snapshot_cache_.bytes.resize(torn);
      snapshot_fault_ = SnapshotFault::kNone;
    }
  }
  if (msg.offset >= snapshot_cache_.bytes.size()) return;  // stale offset
  const uint64_t chunk = std::max<uint64_t>(config_.snapshot_chunk_bytes, 1);
  auto reply = std::make_shared<SnapshotChunkMsg>(
      config_.partition, snapshot_cache_.through, msg.offset,
      snapshot_cache_.bytes.size(),
      snapshot_cache_.bytes.substr(msg.offset, chunk));
  ++counters_.snapshot_chunks_sent;
  SendTo(from, reply);
}

void Replica::OnSnapshotChunk(NodeId from, const SnapshotChunkMsg& msg) {
  if (catchup_ == nullptr || !catchup_->snapshotting ||
      from != catchup_->peer()) {
    return;
  }
  CatchUp& cu = *catchup_;
  if (msg.offset == 0) {
    // First chunk (or the peer regenerated its image): start over.
    cu.snap_buffer.clear();
    cu.snap_through = msg.through_slot;
    cu.snap_total = msg.total_bytes;
  } else if (msg.through_slot != cu.snap_through ||
             msg.total_bytes != cu.snap_total ||
             msg.offset != cu.snap_buffer.size()) {
    // Duplicate, reordered or cross-image chunk: ignore; the retry
    // timer re-requests from our current offset.
    return;
  }
  if (cu.timer != 0) sim_->Cancel(cu.timer);
  cu.timer = 0;
  cu.attempts = 0;
  cu.snap_buffer.append(msg.data);
  counters_.snapshot_bytes_received += msg.data.size();
  if (cu.snap_buffer.size() < cu.snap_total) {
    CatchUpRequestNext();
    return;
  }
  InstallReassembledSnapshot();
}

void Replica::InstallReassembledSnapshot() {
  DPAXOS_CHECK(catchup_ != nullptr && snapshot_installer_ != nullptr);
  CatchUp& cu = *catchup_;
  const SlotId through = cu.snap_through;
  std::string envelope = std::move(cu.snap_buffer);
  cu.snapshotting = false;
  cu.snap_buffer.clear();
  cu.snap_through = 0;
  cu.snap_total = 0;

  // The installer verifies the envelope CRC before touching any state;
  // a corrupt transfer must never be applied silently.
  const Status st = snapshot_installer_(through, envelope);
  if (!st.ok()) {
    ++counters_.snapshot_corruptions_detected;
    DPAXOS_WARN("node " << id_ << " rejected snapshot through " << through
                        << ": " << st.ToString());
    CatchUpFailover(st);
    return;
  }
  ++counters_.snapshots_installed;
  if (through > watermark_) {
    // Crash-consistent install: persist the verified envelope, sync,
    // THEN truncate. A lossy restart between the two syncs keeps the
    // snapshot and merely re-releases the prefix.
    acceptor_.StoreSnapshot(through, std::move(envelope));
    StorageBarrier();
    decided_.TruncateTo(through);
    log_start_ = std::max(log_start_, through);
    watermark_ = std::max(watermark_, through);
    while (decided_.Contains(watermark_)) ++watermark_;
    FlushDeferredAcks();
    acceptor_.ReleaseAcceptedBelow(through);
    StorageBarrier();
  }
  // Resume pulling the residual log tail above the snapshot.
  CatchUpRequestNext();
}

// -----------------------------------------------------------------------
// Intents garbage collection (paper Section 4.3.4)

void Replica::OnGcPoll(NodeId from, const GcPollMsg& msg) {
  (void)msg;
  SendTo(from, std::make_shared<GcPollReplyMsg>(
                   config_.partition, acceptor_.gc_poll_ballot()));
}

void Replica::OnGcThreshold(NodeId from, const GcThresholdMsg& msg) {
  (void)from;
  acceptor_.ApplyGcThreshold(msg.threshold, sim_->Now());
}

// -----------------------------------------------------------------------
// Leader Zone migration (paper Section 4.3.2)

void Replica::MigrateLeaderZone(ZoneId next_zone, StatusCallback cb) {
  if (quorums_->mode() != ProtocolMode::kLeaderZone) {
    cb(Status::NotSupported("leader zone migration requires kLeaderZone"));
    return;
  }
  if (next_zone >= topology_->num_zones()) {
    cb(Status::InvalidArgument("no such zone"));
    return;
  }
  if (lz_migration_ != nullptr) {
    cb(Status::Aborted("migration already in progress"));
    return;
  }
  if (next_zone == lz_view_.current && !lz_view_.in_transition()) {
    cb(Status::OK());
    return;
  }
  lz_migration_ = std::make_unique<LzMigration>();
  lz_migration_->cb = std::move(cb);
  lz_migration_->epoch = lz_view_.epoch + 1;
  lz_migration_->synod_zone = lz_view_.current;
  lz_migration_->requested = next_zone;
  lz_migration_->ballot = Ballot{max_round_seen_ + 1, id_};
  max_round_seen_ = lz_migration_->ballot.round;
  lz_migration_->step = 1;
  LzSendCurrentStep();
  LzArmTimer();
}

void Replica::LzSendCurrentStep() {
  LzMigration& m = *lz_migration_;
  const PartitionId p = config_.partition;
  std::vector<NodeId> targets;
  MessagePtr msg;
  switch (m.step) {
    case 1:
      targets = topology_->NodesInZone(m.synod_zone);
      msg = std::make_shared<LzPrepareMsg>(p, m.epoch, m.ballot);
      break;
    case 2:
      targets = topology_->NodesInZone(m.synod_zone);
      msg = std::make_shared<LzProposeMsg>(p, m.epoch, m.ballot, m.target);
      break;
    case 3:
      targets = topology_->NodesInZone(m.synod_zone);
      msg = std::make_shared<LzTransitionMsg>(p, m.epoch, m.target);
      break;
    case 4:
      targets = topology_->NodesInZone(m.target);
      msg = std::make_shared<LzStoreIntentsMsg>(p, m.epoch, m.target,
                                                m.transferred);
      break;
    default:
      DPAXOS_UNREACHABLE();
  }
  for (NodeId t : targets) {
    if (m.acks.count(t) == 0) SendTo(t, msg);
  }
}

void Replica::LzArmTimer() {
  LzMigration& m = *lz_migration_;
  m.timer = ScheduleSafe(config_.propose_timeout, [this] {
    if (lz_migration_ == nullptr) return;
    lz_migration_->timer = 0;
    if (++lz_migration_->attempt > config_.max_propose_retries) {
      LzFinish(Status::TimedOut("leader zone migration timed out"));
      return;
    }
    LzSendCurrentStep();
    LzArmTimer();
  });
}

void Replica::LzAdvance() {
  LzMigration& m = *lz_migration_;
  if (m.timer != 0) sim_->Cancel(m.timer);
  m.timer = 0;
  m.acks.clear();
  m.attempt = 0;
  ++m.step;
  if (m.step == 5) {
    // Step 3 of the paper: the transition is complete; lazily announce
    // the new Leader Zone to everyone.
    LeaderZoneView view;
    view.epoch = m.epoch;
    view.current = m.target;
    view.next = kInvalidZone;
    auto announce = std::make_shared<LzAnnounceMsg>(config_.partition, view);
    SendToAll(topology_->AllNodes(), announce);
    const bool won = m.target == m.requested;
    AdoptView(view);
    LzFinish(won ? Status::OK()
                 : Status::Aborted("another migration won the synod"));
    return;
  }
  LzSendCurrentStep();
  LzArmTimer();
}

void Replica::LzFinish(const Status& status) {
  DPAXOS_CHECK(lz_migration_ != nullptr);
  if (lz_migration_->timer != 0) sim_->Cancel(lz_migration_->timer);
  StatusCallback cb = std::move(lz_migration_->cb);
  lz_migration_.reset();
  if (cb) cb(status);
}

void Replica::OnLzPrepare(NodeId from, const LzPrepareMsg& msg) {
  const PartitionId p = config_.partition;
  if (msg.epoch != lz_view_.epoch + 1 || topology_->ZoneOf(id_) != lz_view_.current) {
    auto nack = std::make_shared<LzNackMsg>(p, msg.epoch, msg.ballot,
                                            Ballot{}, lz_view_);
    SendTo(from, nack);
    return;
  }
  if (lz_synod_.epoch != msg.epoch) lz_synod_ = LzSynod{msg.epoch, {}, {}, kInvalidZone};
  if (msg.ballot >= lz_synod_.promised) {
    lz_synod_.promised = msg.ballot;
    auto promise = std::make_shared<LzPromiseMsg>(p, msg.epoch, msg.ballot);
    promise->accepted_ballot = lz_synod_.accepted_ballot;
    promise->accepted_zone = lz_synod_.accepted_zone;
    SendTo(from, promise);
  } else {
    SendTo(from, std::make_shared<LzNackMsg>(p, msg.epoch, msg.ballot,
                                             lz_synod_.promised, lz_view_));
  }
}

void Replica::OnLzPromise(NodeId from, const LzPromiseMsg& msg) {
  if (lz_migration_ == nullptr || lz_migration_->step != 1) return;
  LzMigration& m = *lz_migration_;
  if (msg.epoch != m.epoch || msg.ballot != m.ballot) return;
  m.acks.insert(from);
  if (!msg.accepted_ballot.is_null() &&
      msg.accepted_ballot > m.best_accepted) {
    m.best_accepted = msg.accepted_ballot;
    m.best_accepted_zone = msg.accepted_zone;
  }
  if (m.acks.size() >= MajorityOf(topology_->nodes_in_zone(m.synod_zone))) {
    // Synod value: a previously accepted zone wins over our request.
    m.target = (m.best_accepted_zone != kInvalidZone) ? m.best_accepted_zone
                                                      : m.requested;
    LzAdvance();  // -> step 2 (synod propose)
  }
}

void Replica::OnLzPropose(NodeId from, const LzProposeMsg& msg) {
  const PartitionId p = config_.partition;
  if (msg.epoch != lz_view_.epoch + 1 ||
      topology_->ZoneOf(id_) != lz_view_.current) {
    SendTo(from, std::make_shared<LzNackMsg>(p, msg.epoch, msg.ballot,
                                             Ballot{}, lz_view_));
    return;
  }
  if (lz_synod_.epoch != msg.epoch) lz_synod_ = LzSynod{msg.epoch, {}, {}, kInvalidZone};
  if (msg.ballot >= lz_synod_.promised) {
    lz_synod_.promised = msg.ballot;
    lz_synod_.accepted_ballot = msg.ballot;
    lz_synod_.accepted_zone = msg.next_zone;
    SendTo(from, std::make_shared<LzAcceptMsg>(p, msg.epoch, msg.ballot,
                                               msg.next_zone));
  } else {
    SendTo(from, std::make_shared<LzNackMsg>(p, msg.epoch, msg.ballot,
                                             lz_synod_.promised, lz_view_));
  }
}

void Replica::OnLzAccept(NodeId from, const LzAcceptMsg& msg) {
  if (lz_migration_ == nullptr || lz_migration_->step != 2) return;
  LzMigration& m = *lz_migration_;
  if (msg.epoch != m.epoch || msg.ballot != m.ballot ||
      msg.next_zone != m.target) {
    return;
  }
  m.acks.insert(from);
  if (m.acks.size() >= MajorityOf(topology_->nodes_in_zone(m.synod_zone))) {
    // The next Leader Zone is registered (paper Step 1 complete).
    LzAdvance();  // -> step 3 (transition phase)
  }
}

void Replica::OnLzNack(NodeId from, const LzNackMsg& msg) {
  (void)from;
  AdoptView(msg.lz_view);
  if (lz_migration_ == nullptr) return;
  LzMigration& m = *lz_migration_;
  if (msg.epoch != m.epoch) return;
  if (lz_view_.epoch >= m.epoch) {
    // Migration for this epoch completed elsewhere while we were running.
    LzFinish(lz_view_.current == m.requested
                 ? Status::OK()
                 : Status::Aborted("another migration won the epoch"));
    return;
  }
  if (!msg.promised.is_null() && msg.promised > m.ballot && m.step <= 2) {
    // Synod preempted: retry phase 1 with a higher ballot after backoff.
    if (m.timer != 0) sim_->Cancel(m.timer);
    m.timer = 0;
    m.step = 1;
    m.acks.clear();
    m.best_accepted = Ballot{};
    m.best_accepted_zone = kInvalidZone;
    m.ballot = Ballot{std::max(max_round_seen_, msg.promised.round) + 1, id_};
    max_round_seen_ = m.ballot.round;
    const Duration backoff = BackoffFor(m.attempt++);
    ScheduleSafe(backoff, [this] {
      if (lz_migration_ != nullptr && lz_migration_->step == 1) {
        LzSendCurrentStep();
        LzArmTimer();
      }
    });
  }
}

void Replica::OnLzTransition(NodeId from, const LzTransitionMsg& msg) {
  if (msg.epoch == lz_view_.epoch + 1 &&
      topology_->ZoneOf(id_) == lz_view_.current && !lz_view_.in_transition()) {
    // Enter the transition phase: future promises piggyback the next
    // zone; new intents are no longer stored here (paper Step 2).
    LeaderZoneView view = lz_view_;
    view.next = msg.next_zone;
    AdoptView(view);
  }
  // Reply with our stored intents regardless (idempotent; a retransmit
  // after completion still answers so the driver can make progress).
  SendTo(from, std::make_shared<LzTransitionAckMsg>(
                   config_.partition, msg.epoch,
                   std::vector<Intent>(acceptor_.intents())));
}

void Replica::OnLzTransitionAck(NodeId from, const LzTransitionAckMsg& msg) {
  if (lz_migration_ == nullptr || lz_migration_->step != 3) return;
  LzMigration& m = *lz_migration_;
  if (msg.epoch != m.epoch) return;
  m.acks.insert(from);
  for (const Intent& i : msg.intents) {
    const bool dup = std::any_of(
        m.transferred.begin(), m.transferred.end(),
        [&](const Intent& have) { return have.ballot == i.ballot; });
    if (!dup) m.transferred.push_back(i);
  }
  if (m.acks.size() >= MajorityOf(topology_->nodes_in_zone(m.synod_zone))) {
    LzAdvance();  // -> step 4 (store intents at the next zone)
  }
}

void Replica::OnLzStoreIntents(NodeId from, const LzStoreIntentsMsg& msg) {
  acceptor_.AddIntents(msg.intents);
  if (msg.epoch == lz_view_.epoch + 1 && !lz_view_.in_transition()) {
    // Learn about the in-progress transition early.
    LeaderZoneView view = lz_view_;
    view.next = msg.next_zone;
    AdoptView(view);
  }
  SendTo(from,
         std::make_shared<LzStoreAckMsg>(config_.partition, msg.epoch));
}

void Replica::OnLzStoreAck(NodeId from, const LzStoreAckMsg& msg) {
  if (lz_migration_ == nullptr || lz_migration_->step != 4) return;
  LzMigration& m = *lz_migration_;
  if (msg.epoch != m.epoch) return;
  m.acks.insert(from);
  if (m.acks.size() >= MajorityOf(topology_->nodes_in_zone(m.target))) {
    LzAdvance();  // -> step 5 (announce completion)
  }
}

void Replica::OnLzAnnounce(NodeId from, const LzAnnounceMsg& msg) {
  (void)from;
  AdoptView(msg.view);
}

void Replica::AdoptView(const LeaderZoneView& view) {
  if (!view.IsNewerThan(lz_view_)) return;
  lz_view_ = view;
  // Old-Leader-Zone nodes stop storing new intents during the transition
  // (paper Step 2); everyone else stores normally.
  if (lz_view_.in_transition() &&
      topology_->ZoneOf(id_) == lz_view_.current) {
    acceptor_.PauseIntentStorage();
  } else {
    acceptor_.ResumeIntentStorage();
  }
  // A completed migration invalidates synod state for older epochs.
  if (lz_synod_.epoch <= lz_view_.epoch) lz_synod_ = LzSynod{};
  // An in-progress election must follow the new view: its quorum rule
  // changes (transition requires both zones; completion moves the zone).
  if (election_ != nullptr && role_ == Role::kCandidate) {
    election_->base_rule = CurrentLeaderElectionRule();
    election_->round1_targets = quorums_->LeaderElectionTargets(id_, lz_view_);
    election_->effective_rule = election_->base_rule;
    for (const auto& [b, intent] : election_->detected_intents) {
      election_->effective_rule = election_->effective_rule.MergedWith(
          QuorumRule::Simple(intent.quorum, 1));
    }
    CheckElectionProgress();
  }
}

// -----------------------------------------------------------------------
// Message dispatch

void Replica::HandleMessage(NodeId from, const MessagePtr& msg) {
  const Message& m = *msg;
  // One virtual call picks the handler; the tag is authoritative for the
  // concrete type (each message class returns its own WireType), so the
  // static_casts replace the former dynamic_cast probe chain.
  switch (static_cast<WireType>(m.wire_tag())) {
    case WireType::kPrepare:
      return OnPrepare(from, static_cast<const PrepareMsg&>(m));
    case WireType::kPromise:
      return OnPromise(from, static_cast<const PromiseMsg&>(m));
    case WireType::kPrepareNack:
      return OnPrepareNack(from, static_cast<const PrepareNackMsg&>(m));
    case WireType::kPropose:
      return OnPropose(from, static_cast<const ProposeMsg&>(m));
    case WireType::kAccept:
      return OnAccept(from, static_cast<const AcceptMsg&>(m));
    case WireType::kAcceptNack:
      return OnAcceptNack(from, static_cast<const AcceptNackMsg&>(m));
    case WireType::kDecide:
      return OnDecide(from, static_cast<const DecideMsg&>(m));
    case WireType::kHandoffRequest:
      return OnHandoffRequest(from, static_cast<const HandoffRequestMsg&>(m));
    case WireType::kHeartbeat:
      return OnHeartbeat(from, static_cast<const HeartbeatMsg&>(m));
    case WireType::kRelinquish:
      return OnRelinquish(from, static_cast<const RelinquishMsg&>(m));
    case WireType::kStealRequest:
      return OnStealRequest(from, static_cast<const StealRequestMsg&>(m));
    case WireType::kOwnershipGrant:
      return OnOwnershipGrant(from, static_cast<const OwnershipGrantMsg&>(m));
    case WireType::kForward:
      return OnForward(from, static_cast<const ForwardMsg&>(m));
    case WireType::kForwardReply:
      return OnForwardReply(from, static_cast<const ForwardReplyMsg&>(m));
    case WireType::kLearnRequest:
      return OnLearnRequest(from, static_cast<const LearnRequestMsg&>(m));
    case WireType::kLearnReply:
      return OnLearnReply(from, static_cast<const LearnReplyMsg&>(m));
    case WireType::kSnapshotRequest:
      return OnSnapshotRequest(from, static_cast<const SnapshotRequestMsg&>(m));
    case WireType::kSnapshotChunk:
      return OnSnapshotChunk(from, static_cast<const SnapshotChunkMsg&>(m));
    case WireType::kGcPoll:
      return OnGcPoll(from, static_cast<const GcPollMsg&>(m));
    case WireType::kGcThreshold:
      return OnGcThreshold(from, static_cast<const GcThresholdMsg&>(m));
    case WireType::kLzPrepare:
      return OnLzPrepare(from, static_cast<const LzPrepareMsg&>(m));
    case WireType::kLzPromise:
      return OnLzPromise(from, static_cast<const LzPromiseMsg&>(m));
    case WireType::kLzPropose:
      return OnLzPropose(from, static_cast<const LzProposeMsg&>(m));
    case WireType::kLzAccept:
      return OnLzAccept(from, static_cast<const LzAcceptMsg&>(m));
    case WireType::kLzNack:
      return OnLzNack(from, static_cast<const LzNackMsg&>(m));
    case WireType::kLzTransition:
      return OnLzTransition(from, static_cast<const LzTransitionMsg&>(m));
    case WireType::kLzTransitionAck:
      return OnLzTransitionAck(from, static_cast<const LzTransitionAckMsg&>(m));
    case WireType::kLzStoreIntents:
      return OnLzStoreIntents(from, static_cast<const LzStoreIntentsMsg&>(m));
    case WireType::kLzStoreAck:
      return OnLzStoreAck(from, static_cast<const LzStoreAckMsg&>(m));
    case WireType::kLzAnnounce:
      return OnLzAnnounce(from, static_cast<const LzAnnounceMsg&>(m));
    case WireType::kFastGrant:
      return OnFastGrant(from, static_cast<const FastGrantMsg&>(m));
    case WireType::kFastAccept:
      return OnFastAccept(from, static_cast<const FastAcceptMsg&>(m));
    case WireType::kFastAccepted:
      return OnFastAccepted(from, static_cast<const FastAcceptedMsg&>(m));
    case WireType::kFastNack:
      return OnFastNack(from, static_cast<const FastNackMsg&>(m));
    default:
      break;  // e.g. a GC poll reply, which the replica never consumes
  }
  DPAXOS_WARN("node " << id_ << " ignores unknown message "
              << m.TypeName());
}
}  // namespace dpaxos
