// Replication-quorum intents (paper Section 4.3).
//
// An intent is the concrete replication quorum an aspiring leader declares
// in its prepare() messages. Acceptors store intents attached to positive
// promises; later aspiring leaders must expand their Leader Election
// quorums to intersect every intent they are handed back.
#ifndef DPAXOS_PAXOS_INTENT_H_
#define DPAXOS_PAXOS_INTENT_H_

#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "paxos/ballot.h"

namespace dpaxos {

/// \brief A declared replication quorum, keyed by the declaring ballot.
struct Intent {
  /// Proposal id of the leader-election attempt that declared it. Also
  /// the garbage-collection key: an intent is obsolete once the GC
  /// threshold P exceeds this ballot (paper Algorithm 3).
  Ballot ballot;
  /// The declaring (aspiring) leader.
  NodeId leader = kInvalidNode;
  /// Concrete replication quorum: (fd+1) x (fz+1) nodes, sorted.
  std::vector<NodeId> quorum;

  bool operator==(const Intent& o) const {
    return ballot == o.ballot && leader == o.leader && quorum == o.quorum;
  }

  std::set<NodeId> QuorumSet() const { return {quorum.begin(), quorum.end()}; }

  std::string ToString() const {
    std::string s = "intent{b=" + ballot.ToString() + " q=[";
    for (size_t i = 0; i < quorum.size(); ++i) {
      if (i > 0) s += " ";
      s += std::to_string(quorum[i]);
    }
    return s + "]}";
  }

  /// Approximate wire size: ballot + leader + node list.
  uint64_t WireSize() const { return 16 + 4 + 4 * quorum.size(); }
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_INTENT_H_
