// The Paxos acceptor role: a pure state machine with no I/O.
//
// The Replica feeds incoming prepare/propose messages in and turns the
// returned outcome structs into reply messages, which keeps every
// acceptance rule — ballot comparison, intent storage, read-lease
// blocking, garbage collection — directly unit-testable.
#ifndef DPAXOS_PAXOS_ACCEPTOR_H_
#define DPAXOS_PAXOS_ACCEPTOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "paxos/ballot.h"
#include "paxos/messages.h"
#include "quorum/quorum_system.h"
#include "storage/storage.h"

namespace dpaxos {

/// \brief Per-partition acceptor state (paper Sections 2, 4.3, 4.5).
class Acceptor {
 public:
  /// `leaderless` relaxes the single-promise discipline to per-slot
  /// acceptance, modelling the paper's idealized leaderless baseline
  /// (Section 5: "the optimal case ... may lead to inconsistency, but
  /// nonetheless would provide a benchmark of the best-case performance").
  ///
  /// `record` points at this acceptor's durable state (promises,
  /// accepted values, intents — everything Paxos requires to survive a
  /// crash). Pass the node's NodeStorage record so a restarted replica
  /// resumes from it; with nullptr the acceptor owns a private record
  /// (volatile — convenient for unit tests).
  explicit Acceptor(bool leaderless = false,
                    AcceptorRecord* record = nullptr)
      : leaderless_(leaderless), rec_(record) {
    if (rec_ == nullptr) {
      owned_ = std::make_unique<AcceptorRecord>();
      rec_ = owned_.get();
    }
  }

  /// Outcome of processing a prepare message.
  struct PrepareOutcome {
    bool promised = false;
    /// On rejection: the conflicting promised ballot (null if the
    /// rejection was lease-induced).
    Ballot promised_ballot;
    /// On lease-induced rejection: when the blocking lease expires.
    Timestamp lease_until = 0;
    /// On promise: previously accepted entries with slot >= first_slot.
    std::vector<AcceptedEntry> accepted;
    /// On promise: previously stored intents (excluding the ones declared
    /// by this very prepare).
    std::vector<Intent> intents;
  };

  /// Handle prepare(p, intents). Promises iff p >= the highest promised
  /// ballot and no foreign read lease is active; on a positive promise,
  /// stores the declared intents (unless intent storage is paused by a
  /// Leader Zone transition).
  PrepareOutcome OnPrepare(const PrepareMsg& msg, Timestamp now);

  /// Outcome of processing a propose (accept-request) message.
  struct ProposeOutcome {
    bool accepted = false;
    Ballot promised_ballot;  ///< on rejection: the conflicting promise
    bool lease_vote = false;
    Timestamp lease_until = 0;
  };

  /// Handle propose(p, v) for one slot. Accepts iff p >= the highest
  /// promised ballot (per-slot in leaderless mode); accepting also
  /// promises p. Grants the piggybacked lease request on acceptance.
  ProposeOutcome OnPropose(const ProposeMsg& msg, Timestamp now);

  // --- fast path (docs/PROTOCOL.md §fast-path) -------------------------

  /// Outcome of a fast-round vote request.
  struct FastVoteOutcome {
    bool voted = false;
    /// On vote: the slot this acceptor assigned to the value.
    SlotId slot = 0;
    /// On refusal: the conflicting promised ballot.
    Ballot promised_ballot;
  };

  /// Vote `value` into this acceptor's next free slot at `ballot`, but
  /// never below `min_slot` (the grant's fence plus the replica's decided
  /// watermark — keeps fast votes out of slots committed at lower
  /// ballots). The replica validates the grant (armed, right ballot,
  /// membership) before calling; here we only enforce the promise
  /// discipline and slot mechanics. Voting also promises `ballot`.
  FastVoteOutcome OnFastAccept(const Ballot& ballot, const Value& value,
                               SlotId min_slot);

  /// Prepare-lite: raise the promised ballot to at least `ballot`
  /// (durable when it actually rises). Fast grants carry this so a
  /// lagging acceptor cannot later accept classic proposals from a
  /// deposed leader whose ballot the grant supersedes.
  bool PromiseAtLeast(const Ballot& ballot) {
    if (ballot <= rec_->promised) return false;
    rec_->promised = ballot;
    rec_->NoteMutation();
    if (rec_->journal) rec_->journal->Promised(rec_->promised);
    return true;
  }

  /// Apply a GC threshold P: drop stored intents with ballot < P
  /// (paper Algorithm 3). The active lease holder's intent survives
  /// (Section 4.5: leases protect their intent from collection).
  void ApplyGcThreshold(const Ballot& threshold, Timestamp now);

  /// Largest ballot seen in any propose message. Independent of whether
  /// the propose was accepted.
  const Ballot& max_propose_ballot() const {
    return rec_->max_propose_ballot;
  }

  /// P_i: what the garbage collector polls — the largest ballot seen in
  /// a propose flagged recovery_complete, i.e. from a leader that had
  /// already re-secured every adopted value. Collecting intents below
  /// this is safe even across leader crashes mid-recovery.
  const Ballot& gc_poll_ballot() const { return rec_->max_recovered_ballot; }

  /// Record that a relinquish with `ballot` was consumed; returns false
  /// (and consumes nothing) if one at or above it was already consumed —
  /// duplicate handoff deliveries must not re-activate leadership.
  bool ConsumeRelinquish(const Ballot& ballot) {
    if (ballot <= rec_->relinquish_consumed) return false;
    rec_->relinquish_consumed = ballot;
    rec_->NoteMutation();
    if (rec_->journal) rec_->journal->RelinquishConsumed(ballot);
    return true;
  }

  const Ballot& promised() const { return rec_->promised; }
  const std::vector<Intent>& intents() const { return rec_->intents; }

  /// Highest-ballot accepted entry for `slot`, or nullptr.
  const AcceptedEntry* AcceptedFor(SlotId slot) const;

  // --- Leader Zone transition controls (paper Step 2) -----------------

  /// Stop adding intents from future prepares to the stored list.
  void PauseIntentStorage() { store_intents_ = false; }
  void ResumeIntentStorage() { store_intents_ = true; }
  bool intent_storage_paused() const { return !store_intents_; }

  /// Merge externally transferred intents (next-Leader-Zone side).
  void AddIntents(const std::vector<Intent>& intents);

  // --- snapshot + log compaction (docs/PROTOCOL.md) -------------------

  /// Persist a verified snapshot envelope covering slots [0, through).
  /// Step 1 of the crash-consistent install order; the caller must sync
  /// before releasing any log prefix.
  void StoreSnapshot(SlotId through, std::string bytes) {
    rec_->snapshot_through = through;
    rec_->snapshot_bytes = std::move(bytes);
    rec_->NoteMutation();
    if (rec_->journal) {
      rec_->journal->SnapshotStored(through, rec_->snapshot_bytes);
    }
  }

  /// Release accepted entries below `through` and record the durable
  /// compaction watermark future promises must advertise. Step 2; only
  /// legal once a snapshot with snapshot_through >= through is durable.
  void ReleaseAcceptedBelow(SlotId through) {
    rec_->accepted.ReleaseBelow(through);
    if (through > rec_->compacted_through) rec_->compacted_through = through;
    rec_->NoteMutation();
    if (rec_->journal) rec_->journal->PrefixReleased(through);
  }

  /// Discard the stored snapshot (e.g. it failed its CRC after a lossy
  /// restart). The compaction watermark survives: the log prefix is
  /// still gone, so promises must keep advertising it.
  void DropStoredSnapshot() {
    rec_->snapshot_through = 0;
    rec_->snapshot_bytes.clear();
    rec_->NoteMutation();
    if (rec_->journal) rec_->journal->SnapshotDropped();
  }

  SlotId snapshot_through() const { return rec_->snapshot_through; }
  const std::string& snapshot_bytes() const { return rec_->snapshot_bytes; }
  SlotId compacted_through() const { return rec_->compacted_through; }

  // --- introspection for tests and metrics ----------------------------

  size_t accepted_count() const { return rec_->accepted.size(); }
  /// Largest slot with an accepted entry (kInvalidSlot when none).
  SlotId HighestAcceptedSlot() const { return rec_->accepted.MaxSlot(); }
  bool HasActiveLease(Timestamp now) const {
    return rec_->lease_until > now && !rec_->lease_ballot.is_null();
  }
  const Ballot& lease_ballot() const { return rec_->lease_ballot; }
  uint64_t sync_writes() const { return rec_->sync_writes; }

 private:
  bool leaderless_;
  AcceptorRecord* rec_;
  std::unique_ptr<AcceptorRecord> owned_;
  // Volatile: the Leader-Zone transition pause is re-learned from
  // protocol traffic after a restart (storing extra intents is safe).
  bool store_intents_ = true;
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_ACCEPTOR_H_
