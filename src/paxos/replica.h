// The DPaxos replica: one node's participation in one partition's
// consensus instance.
//
// A Replica combines
//   - the acceptor role (delegated to the pure Acceptor state machine),
//   - the proposer/leader role generic over a QuorumSystem — Multi-Paxos,
//     Flexible Paxos, DPaxos Delegate, DPaxos Leader-Zone, or the
//     leaderless baseline,
//   - the learner role (decided log + commit notifications),
//   - DPaxos extensions: Expanding Quorums (intent declaration, detection
//     and LE-quorum expansion), Leader Handoff, leader-based read leases,
//     and the Leader Zone migration protocol.
//
// All I/O goes through the Transport; all time through the EventScheduler
// (virtual-clock Simulator or the real-clock net/tcp EventLoop).
#ifndef DPAXOS_PAXOS_REPLICA_H_
#define DPAXOS_PAXOS_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "net/transport.h"
#include "paxos/acceptor.h"
#include "paxos/decided_log.h"
#include "paxos/messages.h"
#include "paxos/replica_config.h"
#include "paxos/value.h"
#include "quorum/quorum_system.h"
#include "sim/scheduler.h"

namespace dpaxos {

/// \brief Per-replica protocol counters (observability; see
/// Replica::counters). All monotonically increasing.
struct ProtocolCounters {
  // Acceptor side.
  uint64_t prepares_received = 0;
  uint64_t promises_sent = 0;
  uint64_t prepare_nacks_sent = 0;
  uint64_t proposes_received = 0;
  uint64_t accepts_sent = 0;
  uint64_t accept_nacks_sent = 0;
  // Proposer side.
  uint64_t elections_started = 0;
  uint64_t proposes_sent = 0;
  uint64_t retransmits = 0;
  uint64_t step_downs = 0;
  // DPaxos extensions.
  uint64_t intents_detected = 0;
  uint64_t handoffs_sent = 0;
  uint64_t handoffs_received = 0;
  uint64_t forwards_handled = 0;
  uint64_t redirects_sent = 0;
  // Snapshot transfer & log compaction (docs/fault_model.md).
  uint64_t snapshots_served = 0;     ///< full envelopes generated for peers
  uint64_t snapshot_chunks_sent = 0;
  uint64_t snapshot_bytes_received = 0;  ///< chunk payload bytes accepted
  uint64_t snapshots_installed = 0;  ///< CRC-verified installs completed
  uint64_t snapshot_corruptions_detected = 0;
  uint64_t catchup_failovers = 0;    ///< catch-ups retargeted to a new peer
  uint64_t log_compactions = 0;      ///< successful Compact() truncations
  /// Structurally valid messages dropped as semantically implausible
  /// (decide slot beyond the horizon, value conflict on a decided slot).
  /// Nonzero under on-the-wire corruption; see LearnDecided.
  uint64_t suspect_msgs_rejected = 0;
  // Fast path (enable_fast_path; docs/PROTOCOL.md §fast-path).
  uint64_t fast_commits = 0;    ///< proposer: one-round-trip completions
  uint64_t fast_fallbacks = 0;  ///< proposer: attempts that left the fast path
  uint64_t fast_votes = 0;      ///< acceptor: fast-round votes cast
  uint64_t fast_conflicts = 0;  ///< leader: conflicting-vote resolutions
  // Partition ownership steals (docs/PROTOCOL.md §ownership).
  uint64_t steal_requests_sent = 0;      ///< thief: StealRequest issued
  uint64_t steal_requests_received = 0;  ///< incumbent: requests + invites
  uint64_t steals_granted = 0;  ///< incumbent: grants sent (log fenced)
  uint64_t steals_refused = 0;  ///< incumbent: refusals sent
  uint64_t steals_won = 0;      ///< thief: takeover elections completed
};

/// \brief One replica of one partition.
class Replica {
 public:
  /// (status, slot, commit latency). slot/latency are meaningful on OK.
  using CommitCallback = std::function<void(const Status&, SlotId, Duration)>;
  using StatusCallback = std::function<void(const Status&)>;
  /// Invoked once per newly learned decided slot (possibly out of order;
  /// see smr::LogApplier for in-order application).
  using DecideCallback = std::function<void(SlotId, const Value&)>;

  /// All pointers must outlive the replica. `quorums` must match the
  /// protocol family the whole partition runs. `record` is the durable
  /// acceptor state (see NodeStorage); nullptr gives the replica a
  /// private volatile record.
  Replica(EventScheduler* sim, Transport* transport, const Topology* topology,
          const QuorumSystem* quorums, NodeId id, ReplicaConfig config,
          AcceptorRecord* record = nullptr);

  /// Cancels this replica's pending timers/closures: events scheduled by
  /// a destroyed replica never fire (safe node restarts).
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // --- client API -------------------------------------------------------

  /// Submit a value for commitment. If this replica leads, it replicates
  /// (respecting the multi-programming window, queueing any excess); if
  /// not, it either elects itself first (auto_elect_on_submit) or fails
  /// with FailedPrecondition. In leaderless mode it proposes directly on
  /// its next owned slot.
  void Submit(Value value, CommitCallback cb);

  /// Submit a value from a (possibly remote) client attached to this
  /// replica: if this replica leads, it commits locally; otherwise the
  /// value is forwarded to the known leader over the network and the
  /// callback fires when the leader's reply returns — the paper's remote
  /// request model (Section 5.3). Redirects and retries are handled
  /// internally; without any leader hint this falls back to Submit().
  void SubmitOrForward(Value value, CommitCallback cb);

  /// Install/replace the leader hint used by SubmitOrForward (normally
  /// learned from protocol traffic or cluster metadata).
  void set_leader_hint(NodeId hint) { leader_hint_ = hint; }
  NodeId leader_hint() const { return leader_hint_; }

  /// Run a Leader Election for this replica (paper Algorithms 1 and 2).
  /// Completes OK once the (possibly expanded) LE quorum promised, after
  /// which is_leader() holds and adopted values are re-proposed.
  void TryBecomeLeader(StatusCallback cb);

  /// Leader Handoff, pull side: ask `old_leader` to relinquish to us with
  /// a single round of messaging (paper Section 4.4). Fails TimedOut if
  /// the request or relinquish message is lost (then only a Leader
  /// Election can recover, exactly as the paper specifies).
  void RequestHandoffFrom(NodeId old_leader, StatusCallback cb);

  /// Leader Handoff, push side: relinquish our leadership to `new_leader`.
  /// Only permitted while leading with no in-flight proposals. After the
  /// relinquish message is sent this replica stops acting as leader even
  /// if the message is lost.
  Status HandoffTo(NodeId new_leader);

  /// Partition ownership steal, thief side (docs/PROTOCOL.md
  /// §ownership): ask `incumbent` to fence its log and grant us the
  /// partition, catch up to its decided prefix (via snapshot transfer
  /// when the gap warrants it), win a Leader Election, and commit
  /// `transfer_record` — an opaque consensus value built by the host,
  /// normally MakeOwnershipTransferValue — as the first entry of the new
  /// regime. A refusal fails the callback with FailedPrecondition; a
  /// lost request/grant or an incumbent crash mid-handoff falls back to
  /// an ordinary Leader Election after propose_timeout and still commits
  /// the record on victory.
  void StealOwnershipFrom(NodeId incumbent, Value transfer_record,
                          StatusCallback cb);

  /// Ownership steal, incumbent side: invite `thief` to steal this
  /// partition (the placement sweep runs on the owner, which cannot
  /// grant to itself). The thief's steal-invite callback decides whether
  /// to act; the invitation itself changes no state.
  void InviteSteal(NodeId thief);

  /// Invoked on a replica that received a steal invitation (InviteSteal)
  /// while not leading and not already mid-steal. The host builds the
  /// transfer record and calls StealOwnershipFrom(incumbent, ...).
  using StealInviteCallback = std::function<void(NodeId incumbent)>;
  void set_steal_invite_callback(StealInviteCallback cb) {
    steal_invite_cb_ = std::move(cb);
  }

  /// Voluntarily re-run a Leader Election while already leading, with no
  /// in-flight proposals. Declares fresh intents for the CURRENT location
  /// — the way a leader that received the role via handoff re-homes its
  /// replication quorum near itself (a handoff recipient is restricted to
  /// the relinquished intents, Section 4.4/4.6).
  void RefreshLeadership(StatusCallback cb);

  /// Migrate the Leader Zone to `next_zone` (kLeaderZone mode only):
  /// registers the next zone through the Leader Zone Instance synod,
  /// runs the transition phase, and lazily announces completion
  /// (paper Section 4.3.2 Steps 1-3).
  void MigrateLeaderZone(ZoneId next_zone, StatusCallback cb);

  /// True if this replica can currently serve linearizable reads locally:
  /// it leads and holds a quorum-confirmed read lease (Section 4.5).
  bool CanServeLocalRead() const;

  /// Quorum-lease read (enable_quorum_reads): true if this replica is a
  /// lease-granting replication-quorum member whose learned prefix
  /// provably contains every committed write — it granted an active
  /// lease and has no accepted entry beyond its decided watermark.
  /// Writes cannot commit without this member's accept, so a quiet
  /// acceptor state implies the committed prefix is fully learned.
  bool CanServeQuorumRead() const;

  /// Feed an externally learned ballot (gossip, cluster metadata). A
  /// primed aspirant picks its first election ballot above the hint,
  /// avoiding one guaranteed-preempted round against a live leader whose
  /// traffic it never observed. Purely an optimization; never unsafe.
  void PrimeBallot(const Ballot& hint) { ObserveBallot(hint); }

  // --- learner ------------------------------------------------------------

  void set_decide_callback(DecideCallback cb) { decide_cb_ = std::move(cb); }

  /// Invoked whenever a synchronous storage write completes (i.e. just
  /// before the durable promise/accept reply is sent). The NodeHost uses
  /// it to checkpoint the acceptor record for crash-fault modelling.
  void set_sync_hook(std::function<void()> hook) {
    sync_hook_ = std::move(hook);
  }

  /// Real-durability gate (WAL mode, storage/wal.h). `gate(done)` must
  /// make every acceptor mutation journaled so far durable and then
  /// invoke `done` — typically Wal::SyncThen, which batches many callers
  /// behind one fdatasync (group commit). When set, it replaces the
  /// modelled storage_sync_delay at every reply-gated sync point: the
  /// promise/accept/fast-vote reply is only sent once the disk confirms.
  void set_persist_gate(std::function<void(std::function<void()>)> gate) {
    persist_gate_ = std::move(gate);
  }

  /// Synchronous durability barrier (WAL mode): flush + fdatasync now.
  /// Used by the crash-consistent compaction/install order, which needs
  /// write-snapshot → barrier → release-prefix → barrier.
  void set_persist_barrier(std::function<void()> barrier) {
    persist_barrier_ = std::move(barrier);
  }
  const DecidedLog& decided() const { return decided_; }
  /// Lowest slot id not yet known decided (contiguous watermark).
  SlotId DecidedWatermark() const;

  // --- catch-up, truncation and snapshots ---------------------------------

  /// Produces a checksummed snapshot envelope (smr/snapshot.h format) of
  /// all applied state and reports the slot it covers (exclusive):
  /// everything below it is baked in.
  using SnapshotProvider = std::function<std::string(SlotId* through_slot)>;
  /// Verifies and installs a received snapshot envelope covering slots
  /// below `through_slot`. Must return Status::Corruption (and leave the
  /// application state untouched) when the envelope fails its CRC; the
  /// replica then fails over to another peer instead of applying it.
  using SnapshotInstaller =
      std::function<Status(SlotId through_slot, const std::string& snapshot)>;

  /// Wire the application's snapshot hooks (both or neither). Without
  /// them, log truncation still works but peers that fell behind the
  /// truncation point cannot recover from this replica.
  void set_snapshot_hooks(SnapshotProvider provider,
                          SnapshotInstaller installer) {
    snapshot_provider_ = std::move(provider);
    snapshot_installer_ = std::move(installer);
  }

  /// Pull decided entries (and, if needed, a snapshot) from `peer` until
  /// this replica's watermark reaches the peer's. Used by recovered or
  /// lagging replicas.
  void CatchUpFrom(NodeId peer, StatusCallback cb);

  /// Catch up with failover: peers are tried in order, each with its own
  /// catchup_retry_limit budget; a timeout or corrupted snapshot moves on
  /// to the next peer. Fails with the last peer's status when the list is
  /// exhausted.
  void CatchUpFrom(std::vector<NodeId> peers, StatusCallback cb);

  /// Like CatchUpFrom, but opens with a snapshot transfer instead of log
  /// pages — cheaper when the peer's log is long relative to its state
  /// (e.g. a partition handover). Requires the snapshot installer; the
  /// residual log above the snapshot is still paged afterwards.
  void CatchUpViaSnapshot(std::vector<NodeId> peers, StatusCallback cb);

  /// True when this replica can install snapshots from peers.
  bool snapshot_transfer_ready() const {
    return snapshot_installer_ != nullptr;
  }
  /// True when this replica can serve snapshots to peers.
  bool snapshot_serve_ready() const { return snapshot_provider_ != nullptr; }

  /// Drop decided log entries below `slot` (which must not exceed the
  /// contiguous watermark). After truncation this replica serves
  /// catch-ups only from `slot` upward; earlier history requires the
  /// snapshot hooks.
  Status TruncateDecidedBelow(SlotId slot);

  /// Log compaction (enable_compaction): snapshot the applied state via
  /// the provider, persist the envelope durably, then truncate the
  /// decided log and release the accepted prefix below
  /// min(through, provider coverage, contiguous watermark), keeping
  /// compaction_retained_suffix entries of slack for ordinary laggards.
  /// The crash-consistent order is write-snapshot -> sync -> release ->
  /// sync (see docs/PROTOCOL.md). No-op OK when nothing can be released.
  Status Compact(SlotId through);

  /// Discard the durable snapshot persisted by Compact()/installs —
  /// the harness calls this when the envelope at rest fails its CRC
  /// after a restart. Resets the learner to slot 0 so recovery refetches
  /// everything from peers; the acceptor's compaction watermark stays.
  void DropInstalledSnapshot();

  /// One-shot fault injection: corrupt the NEXT snapshot envelope this
  /// replica generates for a peer (nemesis CorruptSnapshot action).
  enum class SnapshotFault { kNone, kBitFlip, kTruncate };
  void InjectSnapshotFault(SnapshotFault fault) { snapshot_fault_ = fault; }

  /// Lowest decided slot still retained in the log.
  SlotId log_start() const { return log_start_; }
  /// Durable compaction watermark (accepted prefix released below this).
  SlotId compacted_through() const { return acceptor_.compacted_through(); }

  // --- introspection --------------------------------------------------------

  NodeId id() const { return id_; }
  ZoneId zone() const { return topology_->ZoneOf(id_); }
  bool is_leader() const { return role_ == Role::kLeader; }
  bool is_candidate() const { return role_ == Role::kCandidate; }
  const Ballot& ballot() const { return ballot_; }
  SlotId next_slot() const { return next_slot_; }
  const LeaderZoneView& lz_view() const { return lz_view_; }
  const Acceptor& acceptor() const { return acceptor_; }
  const std::vector<Intent>& declared_intents() const {
    return declared_intents_;
  }
  const ReplicaConfig& config() const { return config_; }

  /// True once this leader has re-committed every value it adopted in
  /// its election; until then its proposes do not advance the garbage
  /// collection threshold (see ProposeMsg::recovery_complete).
  bool RecoveryComplete() const { return recovery_pending_ == 0; }

  /// Monotonic protocol event counters for observability.
  const ProtocolCounters& counters() const { return counters_; }

  /// The fast-path grant this node currently holds (enable_fast_path):
  /// the leader regime's ballot, the pinned fast quorum, and the slot
  /// fence below which fast votes may not land. Volatile by design — a
  /// restarted node nacks fast accepts until the next grant, which only
  /// costs the proposer a classic fallback.
  struct FastGrant {
    Ballot ballot;
    SlotId first_slot = 0;
    std::vector<NodeId> quorum;  ///< sorted; empty = no grant armed
    bool valid() const { return !quorum.empty(); }
  };
  const FastGrant& fast_grant() const { return fast_grant_; }

  /// Leader Election rounds this replica has completed successfully.
  uint64_t elections_won() const { return elections_won_; }
  /// Expansion rounds (second LE phases) this replica has issued.
  uint64_t expansion_rounds() const { return expansion_rounds_; }

  // --- wiring ---------------------------------------------------------------

  /// Entry point for every message addressed to this (node, partition);
  /// normally invoked by NodeHost.
  void HandleMessage(NodeId from, const MessagePtr& msg);

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  // Per-slot leader-side replication state.
  struct InFlight {
    Value value;
    std::vector<NodeId> acks;  // sorted, unique (a handful of nodes)
    CommitCallback cb;
    Timestamp start = 0;
    uint32_t retries = 0;
    EventId timer = 0;
    bool lease_requested = false;
    // True for re-proposals of values adopted during Leader Election;
    // the leader's recovery completes when none remain.
    bool adopted_recovery = false;
  };

  // Candidate-side election state.
  struct Election {
    StatusCallback cb;
    QuorumRule base_rule;
    QuorumRule effective_rule;  // base + detected intent intersections
    std::vector<NodeId> round1_targets;
    std::set<NodeId> promises;
    std::set<NodeId> contacted;
    std::map<Ballot, Intent> detected_intents;
    std::map<SlotId, AcceptedEntry> adopted;
    SlotId first_slot = 0;
    /// Highest compaction watermark advertised by any promise: slots
    /// below it were released by a quorum member because its snapshot
    /// covers them, so the new leader must not fill them as holes.
    SlotId max_compacted = 0;
    uint32_t attempt = 0;
    bool expanded = false;
    EventId timer = 0;
  };

  // Leader Zone migration driver state (Steps 1-3).
  struct LzMigration {
    StatusCallback cb;
    uint64_t epoch = 0;        // the epoch being decided (view.epoch + 1)
    ZoneId synod_zone = kInvalidZone;  // the Leader Zone running the synod
    ZoneId requested = kInvalidZone;   // what we asked for
    ZoneId target = kInvalidZone;      // what the synod decided
    Ballot ballot;             // synod ballot
    int step = 1;              // 1 synod-prepare, 2 synod-propose,
                               // 3 transition, 4 store-intents
    std::set<NodeId> acks;
    Ballot best_accepted;              // highest accepted synod ballot seen
    ZoneId best_accepted_zone = kInvalidZone;
    std::vector<Intent> transferred;   // union of old-zone intents
    uint32_t attempt = 0;
    EventId timer = 0;
  };

  // Synod acceptor state for the Leader Zone Instance (next epoch only).
  struct LzSynod {
    uint64_t epoch = 0;
    Ballot promised;
    Ballot accepted_ballot;
    ZoneId accepted_zone = kInvalidZone;
  };

  // --- message handlers ---
  void OnPrepare(NodeId from, const PrepareMsg& msg);
  void OnPromise(NodeId from, const PromiseMsg& msg);
  void OnPrepareNack(NodeId from, const PrepareNackMsg& msg);
  void OnPropose(NodeId from, const ProposeMsg& msg);
  void OnAccept(NodeId from, const AcceptMsg& msg);
  void OnAcceptNack(NodeId from, const AcceptNackMsg& msg);
  void OnDecide(NodeId from, const DecideMsg& msg);
  void OnHandoffRequest(NodeId from, const HandoffRequestMsg& msg);
  void OnHeartbeat(NodeId from, const HeartbeatMsg& msg);
  void OnRelinquish(NodeId from, const RelinquishMsg& msg);
  void OnStealRequest(NodeId from, const StealRequestMsg& msg);
  void OnOwnershipGrant(NodeId from, const OwnershipGrantMsg& msg);
  void OnForward(NodeId from, const ForwardMsg& msg);
  void OnForwardReply(NodeId from, const ForwardReplyMsg& msg);
  void OnFastGrant(NodeId from, const FastGrantMsg& msg);
  void OnFastAccept(NodeId from, const FastAcceptMsg& msg);
  void OnFastAccepted(NodeId from, const FastAcceptedMsg& msg);
  void OnFastNack(NodeId from, const FastNackMsg& msg);
  void OnLearnRequest(NodeId from, const LearnRequestMsg& msg);
  void OnLearnReply(NodeId from, const LearnReplyMsg& msg);
  void OnSnapshotRequest(NodeId from, const SnapshotRequestMsg& msg);
  void OnSnapshotChunk(NodeId from, const SnapshotChunkMsg& msg);
  void OnGcPoll(NodeId from, const GcPollMsg& msg);
  void OnGcThreshold(NodeId from, const GcThresholdMsg& msg);
  void OnLzPrepare(NodeId from, const LzPrepareMsg& msg);
  void OnLzPromise(NodeId from, const LzPromiseMsg& msg);
  void OnLzPropose(NodeId from, const LzProposeMsg& msg);
  void OnLzAccept(NodeId from, const LzAcceptMsg& msg);
  void OnLzNack(NodeId from, const LzNackMsg& msg);
  void OnLzTransition(NodeId from, const LzTransitionMsg& msg);
  void OnLzTransitionAck(NodeId from, const LzTransitionAckMsg& msg);
  void OnLzStoreIntents(NodeId from, const LzStoreIntentsMsg& msg);
  void OnLzStoreAck(NodeId from, const LzStoreAckMsg& msg);
  void OnLzAnnounce(NodeId from, const LzAnnounceMsg& msg);

  // --- election internals ---
  void StartElection(StatusCallback cb, uint32_t attempt);
  void CheckElectionProgress();
  void FinishElection();
  void FailElection(const Status& status, Duration retry_after);
  std::vector<Intent> BuildIntents() const;
  QuorumRule CurrentLeaderElectionRule() const;

  // --- leader internals ---
  void StartPropose(SlotId slot, Value value, CommitCallback cb,
                    bool adopted_recovery = false);
  void OnRecoveryProgress();
  void RetransmitPropose(SlotId slot);
  void Decide(SlotId slot);
  /// Commit-notification fan-out per decide_policy (factored out of
  /// Decide so fast unanimity commits share it).
  void AnnounceDecide(SlotId slot, const Value& value);
  void LearnDecided(SlotId slot, const Value& value);
  void DrainPending();
  void StepDown(const Ballot& preemptor);
  void FailInFlight(const Status& status);
  const QuorumRule& ReplicationRule() const;
  /// ReplicationRule().Targets(), cached alongside the rule (the hot
  /// path reads it once per propose/retransmit/heartbeat fan-out).
  const std::vector<NodeId>& ReplicationTargets() const;
  /// Must be called whenever declared_intents_ or active_intent_
  /// changes; the cached rule is rebuilt on next use.
  void InvalidateReplicationRule() { replication_rule_valid_ = false; }
  void RecomputeLeaseExpiry();

  // --- leaderless ---
  void SubmitLeaderless(Value value, CommitCallback cb);

  // --- leader zone migration internals ---
  void LzAdvance();
  void LzSendCurrentStep();
  void LzArmTimer();
  void LzFinish(const Status& status);
  void AdoptView(const LeaderZoneView& view);

  // --- helpers ---
  void SendTo(NodeId to, MessagePtr msg) {
    transport_->Send(id_, to, std::move(msg));
  }
  /// Schedule a closure that is dropped if this replica is destroyed
  /// before it fires (e.g. across a simulated process restart).
  EventId ScheduleSafe(Duration delay, std::function<void()> fn);
  void SendToAll(const std::vector<NodeId>& targets, const MessagePtr& msg);
  void ObserveBallot(const Ballot& ballot);
  Duration BackoffFor(uint32_t attempt);

  EventScheduler* sim_;
  Transport* transport_;
  const Topology* topology_;
  const QuorumSystem* quorums_;
  const NodeId id_;
  ReplicaConfig config_;
  Rng rng_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  Acceptor acceptor_;
  Role role_ = Role::kFollower;
  Ballot ballot_;
  uint64_t max_round_seen_ = 0;
  LeaderZoneView lz_view_;
  LzSynod lz_synod_;
  std::unique_ptr<LzMigration> lz_migration_;

  // Leader state.
  SlotId next_slot_ = 0;
  // Adopted re-proposals still in flight; recovery_complete once 0.
  uint32_t recovery_pending_ = 0;
  std::vector<Intent> declared_intents_;
  size_t active_intent_ = 0;
  // Cache of ReplicationRule()/Targets() for the current intent; the
  // old code rebuilt the rule (vector-of-vectors churn) on every accept
  // ack, which dominated the load-phase profile.
  mutable bool replication_rule_valid_ = false;
  mutable QuorumRule cached_replication_rule_;
  mutable std::vector<NodeId> cached_replication_targets_;
  std::map<SlotId, InFlight> inflight_;
  std::deque<std::pair<Value, CommitCallback>> pending_;
  std::map<NodeId, Timestamp> lease_votes_;
  Timestamp lease_until_ = 0;

  // Candidate state.
  std::unique_ptr<Election> election_;

  // Handoff state.
  StatusCallback handoff_cb_;
  EventId handoff_timer_ = 0;

  // Ownership steal state (thief side; docs/PROTOCOL.md §ownership).
  StatusCallback steal_cb_;
  EventId steal_timer_ = 0;
  Value steal_record_;  ///< transfer record to commit on victory
  StealInviteCallback steal_invite_cb_;
  /// Election + transfer-record commit (grant received, catch-up done,
  /// or timeout fallback).
  void StealElectAndRecord();
  void FinishSteal(const Status& status);

  // Failure detector (enable_failure_detector).
  EventId heartbeat_timer_ = 0;   // leader side: periodic beacons
  EventId watchdog_timer_ = 0;    // member side: election on silence
  void SendHeartbeats();
  void ArmWatchdog();
  void OnLeaderSilence();

  // Learner state.
  DecidedLog decided_;
  SlotId watermark_ = 0;   // lowest slot not yet known decided
  /// Lease fence (enable_leases && enable_fast_path): lease-local reads
  /// serve the contiguous decided prefix [0, watermark_), so a commit
  /// ack may only leave the leader once the watermark covers its slot.
  /// Fast-mode decides complete out of order (a conflicted slot waits
  /// out its fast timeout while higher slots commit unanimously), so
  /// acks for slots above a hole park here until LearnDecided advances
  /// the watermark past them.
  std::multimap<SlotId, std::function<void()>> deferred_acks_;
  void DeferOrAck(SlotId slot, std::function<void()> ack);
  void FlushDeferredAcks();
  SlotId log_start_ = 0;   // lowest retained decided slot (truncation)
  DecideCallback decide_cb_;
  std::function<void()> sync_hook_;
  std::function<void(std::function<void()>)> persist_gate_;
  std::function<void()> persist_barrier_;

  /// Run `deliver` once the acceptor mutations behind it are durable:
  /// through the persist gate (WAL mode), after the modelled
  /// storage_sync_delay, or inline. Fires sync_hook_ first in all paths.
  void SyncThenDeliver(std::function<void()> deliver);

  /// Storage barrier at the compaction/install sync points: marks the
  /// modelled sync and, in WAL mode, fsyncs the journal synchronously.
  void StorageBarrier() {
    if (sync_hook_) sync_hook_();
    if (persist_barrier_) persist_barrier_();
  }

  // Forwarding state (origin side).
  struct PendingForward {
    Value value;
    CommitCallback cb;
    uint32_t attempts = 0;
    EventId timer = 0;
  };
  NodeId leader_hint_ = kInvalidNode;
  uint64_t next_forward_id_ = 1;
  std::map<uint64_t, PendingForward> pending_forwards_;
  void SendForward(uint64_t request_id);
  void FinishForward(uint64_t request_id, const Status& status, SlotId slot);

  // Fast path (enable_fast_path; docs/PROTOCOL.md §fast-path).
  //
  // Proposer-side attempt: rides the pending_forwards_ entry of the same
  // request_id (fallback re-drives SendForward; the leader's conflict
  // resolutions answer with ordinary ForwardReply messages).
  struct FastAttempt {
    Ballot ballot;           ///< the grant ballot this attempt targets
    size_t quorum_size = 0;  ///< unanimity threshold (|fast quorum|)
    std::map<SlotId, std::set<NodeId>> votes;  ///< voters per slot
    std::set<NodeId> voters;                   ///< all members heard from
    EventId timer = 0;
  };
  // Leader-side per-slot vote tracker: detects unanimity (commit) and
  // conflicting values (classic re-proposal on the same slot).
  struct FastSlot {
    std::map<NodeId, uint64_t> votes;  ///< voter -> value id
    std::map<uint64_t, Value> values;  ///< distinct values seen (by id)
    /// value id -> (proposer, request id), for ForwardReply routing.
    std::map<uint64_t, std::pair<NodeId, uint64_t>> origins;
    EventId timer = 0;
  };
  FastGrant fast_grant_;
  std::map<uint64_t, FastAttempt> fast_attempts_;
  std::map<SlotId, FastSlot> fast_slots_;
  void StartFastAttempt(uint64_t request_id);
  /// Leave the fast path for `request_id` and re-drive it classically.
  void FastFallback(uint64_t request_id);
  /// Drop the attempt without re-driving (the forward already resolved).
  void CancelFastAttempt(uint64_t request_id);
  void TrackFastVote(NodeId voter, SlotId slot, const Value& value,
                     NodeId proposer, uint64_t request_id);
  /// Conflict/timeout resolution: classic-propose the winner on the same
  /// slot, bounce the losers back to their proposers.
  void ResolveFastSlot(SlotId slot);
  void ClearFastSlots();
  Duration FastTimeout() const {
    return config_.fast_timeout > 0 ? config_.fast_timeout
                                    : config_.propose_timeout;
  }

  // Catch-up state.
  struct CatchUp {
    std::vector<NodeId> peers;  // failover order; peers[index] is current
    size_t index = 0;
    StatusCallback cb;
    uint32_t attempts = 0;  // retries against the CURRENT peer
    EventId timer = 0;
    // Snapshot reassembly (chunked transfer).
    bool snapshotting = false;
    std::string snap_buffer;
    SlotId snap_through = 0;
    uint64_t snap_total = 0;

    NodeId peer() const { return peers[index]; }
  };
  std::unique_ptr<CatchUp> catchup_;
  SnapshotProvider snapshot_provider_;
  SnapshotInstaller snapshot_installer_;
  // Serving-side cache of the envelope a peer is currently fetching:
  // regenerated on every offset-0 request so later chunks come from one
  // consistent image.
  struct SnapshotServe {
    SlotId through = 0;
    std::string bytes;
  };
  SnapshotServe snapshot_cache_;
  SnapshotFault snapshot_fault_ = SnapshotFault::kNone;
  // Dedicated deterministic stream for catch-up backoff jitter, seeded as
  // a pure function of (node, partition) — never forked from rng_, whose
  // draw sequence legacy golden schedules depend on.
  Rng catchup_rng_;
  void CatchUpRequestNext();
  void CatchUpArmTimer();
  void CatchUpTimeout();
  void CatchUpFailover(const Status& status);
  void CatchUpFinish(const Status& status);
  void InstallReassembledSnapshot();

  // Leaderless proposer state.
  SlotId leaderless_next_ = 0;

  // Metrics.
  ProtocolCounters counters_;
  uint64_t elections_won_ = 0;
  uint64_t expansion_rounds_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_REPLICA_H_
