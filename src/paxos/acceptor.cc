#include "paxos/acceptor.h"

#include <algorithm>

#include "common/check.h"

namespace dpaxos {

Acceptor::PrepareOutcome Acceptor::OnPrepare(const PrepareMsg& msg,
                                             Timestamp now) {
  PrepareOutcome out;

  // A lease vote is an implicit promise not to participate in Leader
  // Election until the lease expires (paper Section 4.5). The lease
  // holder itself may still run elections (e.g. to raise its ballot).
  if (rec_->lease_until > now && !rec_->lease_ballot.is_null() &&
      msg.ballot.node != rec_->lease_ballot.node) {
    out.promised = false;
    out.lease_until = rec_->lease_until;
    return out;
  }

  if (msg.ballot < rec_->promised) {
    out.promised = false;
    out.promised_ballot = rec_->promised;
    return out;
  }

  // msg.ballot >= rec_->promised: promise. Equality happens on expansion
  // rounds and retransmissions of the same attempt; re-promising is
  // idempotent and required so an expansion-round target can vote.
  rec_->promised = msg.ballot;
  rec_->NoteMutation();  // the promise is durable before we answer
  if (rec_->journal) rec_->journal->Promised(rec_->promised);
  out.promised = true;
  rec_->accepted.ForEachFrom(msg.first_slot, [&](const AcceptedEntry& entry) {
    out.accepted.push_back(entry);
  });
  // Return previously stored intents, excluding the ones this very
  // prepare declares (the aspirant need not intersect itself).
  for (const Intent& stored : rec_->intents) {
    if (stored.ballot != msg.ballot) out.intents.push_back(stored);
  }
  // Store the newly declared intents attached to this positive promise.
  if (store_intents_) AddIntents(msg.intents);
  return out;
}

Acceptor::ProposeOutcome Acceptor::OnPropose(const ProposeMsg& msg,
                                             Timestamp now) {
  // GC polling observes every received propose, accepted or not: the
  // sender necessarily completed a Leader Election with this ballot,
  // which is all Theorem 3 needs.
  const Ballot prior_propose = rec_->max_propose_ballot;
  const Ballot prior_recovered = rec_->max_recovered_ballot;
  rec_->max_propose_ballot = std::max(rec_->max_propose_ballot, msg.ballot);
  if (msg.recovery_complete) {
    rec_->max_recovered_ballot =
        std::max(rec_->max_recovered_ballot, msg.ballot);
  }
  if (rec_->journal && (rec_->max_propose_ballot != prior_propose ||
                        rec_->max_recovered_ballot != prior_recovered)) {
    rec_->journal->GcBallots(rec_->max_propose_ballot,
                             rec_->max_recovered_ballot);
  }

  ProposeOutcome out;
  const AcceptedEntry* prior = AcceptedFor(msg.slot);
  const bool ok = leaderless_
                      ? (prior == nullptr || msg.ballot >= prior->ballot)
                      : (msg.ballot >= rec_->promised);
  if (!ok) {
    out.accepted = false;
    out.promised_ballot = leaderless_ ? prior->ballot : rec_->promised;
    return out;
  }

  if (!leaderless_ && msg.ballot > rec_->promised) {
    rec_->promised = msg.ballot;
    if (rec_->journal) rec_->journal->Promised(rec_->promised);
  }
  const AcceptedEntry entry{msg.slot, msg.ballot, msg.value};
  rec_->accepted.Put(msg.slot, entry);
  rec_->NoteMutation();  // the acceptance is durable before we answer
  if (rec_->journal) rec_->journal->Accepted(entry);
  out.accepted = true;

  if (msg.lease_request) {
    // Granting the lease: an implicit promise not to answer other nodes'
    // prepares until it expires.
    rec_->lease_ballot = msg.ballot;
    rec_->lease_until = std::max(rec_->lease_until, msg.lease_until);
    if (rec_->journal) {
      rec_->journal->LeaseGranted(rec_->lease_ballot, rec_->lease_until);
    }
    out.lease_vote = true;
    out.lease_until = rec_->lease_until;
  }
  (void)now;
  return out;
}

Acceptor::FastVoteOutcome Acceptor::OnFastAccept(const Ballot& ballot,
                                                 const Value& value,
                                                 SlotId min_slot) {
  FastVoteOutcome out;
  if (ballot < rec_->promised) {
    out.promised_ballot = rec_->promised;
    return out;
  }
  if (ballot > rec_->promised) {
    rec_->promised = ballot;
    if (rec_->journal) rec_->journal->Promised(rec_->promised);
  }

  // Next free slot: past everything this acceptor has ever accepted and
  // past the caller's fence. Monotone per acceptor, so two values fast-
  // voted here never collide on a slot.
  SlotId slot = min_slot;
  const SlotId highest = HighestAcceptedSlot();
  if (highest != kInvalidSlot && highest + 1 > slot) slot = highest + 1;

  const AcceptedEntry entry{slot, ballot, value, /*fast=*/true};
  rec_->accepted.Put(slot, entry);
  rec_->NoteMutation();  // the vote is durable before we answer
  if (rec_->journal) rec_->journal->Accepted(entry);
  out.voted = true;
  out.slot = slot;
  return out;
}

void Acceptor::ApplyGcThreshold(const Ballot& threshold, Timestamp now) {
  const size_t collected = std::erase_if(rec_->intents, [&](const Intent& i) {
    if (i.ballot >= threshold) return false;
    // The current lease holder's intent cannot be collected while the
    // lease is active: no other node can be elected before expiry, so
    // the intent is by definition not obsolete (paper Section 4.5).
    if (rec_->lease_until > now && i.ballot == rec_->lease_ballot) return false;
    return true;
  });
  if (collected > 0 && rec_->journal) {
    rec_->journal->IntentsChanged(rec_->intents);
  }
}

const AcceptedEntry* Acceptor::AcceptedFor(SlotId slot) const {
  return rec_->accepted.Find(slot);
}

void Acceptor::AddIntents(const std::vector<Intent>& intents) {
  bool added = false;
  for (const Intent& in : intents) {
    const bool dup =
        std::any_of(rec_->intents.begin(), rec_->intents.end(),
                    [&](const Intent& have) { return have.ballot == in.ballot; });
    if (!dup) {
      rec_->intents.push_back(in);
      added = true;
    }
  }
  if (added && rec_->journal) rec_->journal->IntentsChanged(rec_->intents);
}

}  // namespace dpaxos
