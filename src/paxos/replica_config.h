// Per-replica protocol configuration.
#ifndef DPAXOS_PAXOS_REPLICA_CONFIG_H_
#define DPAXOS_PAXOS_REPLICA_CONFIG_H_

#include <cstdint>

#include "common/types.h"
#include "quorum/fault_tolerance.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

/// Who receives DecideMsg commit notifications from the leader.
enum class DecidePolicy {
  kNone,    ///< nobody (pure benchmark of the decision path)
  kQuorum,  ///< the replication quorum members (default)
  kZone,    ///< every node in the leader's zone
  kAll,     ///< every node (full state machine replication)
};

/// \brief Knobs shared by every replica of a partition.
struct ReplicaConfig {
  PartitionId partition = 0;

  /// All nodes of a partition must agree on the initial Leader Zone
  /// (kLeaderZone mode; paper Section 4.3.2 "Initial Leader Zone").
  ZoneId initial_leader_zone = 0;

  // --- Expanding Quorums ----------------------------------------------

  /// Send the first Leader Election round to every node instead of only
  /// the base quorum, consolidating the expansion round into the first
  /// (paper Section 4.6 "Consolidate multiple rounds into a single
  /// round"; evaluated in Figure 14 as "combined").
  bool consolidate_le_rounds = false;

  /// Number of replication-quorum intents declared per Leader Election
  /// (paper Section 4.6 "Use of multiple intents"). Extra intents give
  /// the leader failover quorums at the cost of larger future
  /// intersection requirements.
  uint32_t num_intents = 1;

  // --- Read leases (paper Section 4.5) ---------------------------------

  bool enable_leases = false;
  Duration lease_duration = 10 * kSecond;

  /// Quorum leases (Moraru et al., discussed as an adaptable alternative
  /// in paper Section 4.5): every replication-quorum member that granted
  /// the lease may serve linearizable local reads, not just the leader.
  /// A member only answers while it has no accepted-but-unlearned slot
  /// (all writes channel through it, so a quiet acceptor provably holds
  /// the full committed prefix); otherwise callers fall back to the
  /// leader path. Requires enable_leases and a decide policy that
  /// notifies quorum members (kQuorum or wider).
  bool enable_quorum_reads = false;

  // --- Execution --------------------------------------------------------

  /// Multi-programming level: slots the leader replicates concurrently
  /// (paper Section A.3).
  uint32_t max_inflight = 1;

  DecidePolicy decide_policy = DecidePolicy::kQuorum;

  /// If true, a Submit() on a non-leader follower triggers a leader
  /// election and queues the value; if false it fails fast.
  bool auto_elect_on_submit = true;

  // --- Failure detection ---------------------------------------------------

  /// Autonomous failover: the leader heartbeats its replication quorum;
  /// a member that hears neither heartbeats nor proposals for a randomized
  /// interval in [election_timeout, 2*election_timeout) elects itself.
  /// Off by default (benchmarks drive leadership explicitly).
  bool enable_failure_detector = false;
  Duration heartbeat_interval = 500 * kMillisecond;
  Duration election_timeout = 2 * kSecond;

  // --- Fast path (docs/PROTOCOL.md §fast-path) -----------------------------

  /// Commit uncontended writes in one proposer->acceptors->proposer round
  /// trip: the elected leader grants a pinned fast quorum, edge proposers
  /// send FastAccept straight to its acceptors, and unanimity commits.
  /// Conflicts, nacks and timeouts fall back to the classic forward path.
  /// Off by default — fast-off runs are message-for-message identical to
  /// the legacy protocol (golden schedules preserved).
  bool enable_fast_path = false;

  /// How long a proposer waits for fast-quorum unanimity before falling
  /// back to the classic path. 0 borrows propose_timeout.
  Duration fast_timeout = 0;

  // --- Liveness timers ---------------------------------------------------

  Duration le_timeout = 2 * kSecond;
  Duration propose_timeout = 2 * kSecond;
  uint32_t max_le_attempts = 16;
  uint32_t max_propose_retries = 8;
  Duration retry_backoff_base = 50 * kMillisecond;

  // --- Catch-up & snapshot transfer ---------------------------------------

  /// Retry budget for one catch-up attempt against one peer (timeouts of
  /// learn pages or snapshot chunks). Matches the historical behaviour of
  /// borrowing max_propose_retries.
  uint32_t catchup_retry_limit = 8;

  /// Base of the jittered exponential backoff between catch-up retries.
  /// 0 keeps the legacy fixed spacing of `propose_timeout` per retry with
  /// no jitter (and no RNG draws — existing schedules are bit-preserved);
  /// nonzero waits backoff * 2^attempt * [1.0, 2.0) jitter, capped at
  /// catchup_backoff_cap, drawn from a dedicated deterministic stream.
  Duration catchup_backoff_base = 0;
  Duration catchup_backoff_cap = 2 * kSecond;

  /// Snapshot transfer chunk size. Small values force multi-chunk
  /// reassembly (exercised by tests); the default moves typical KV
  /// snapshots in a handful of messages.
  uint64_t snapshot_chunk_bytes = 32768;

  // --- Partition ownership steals (docs/PROTOCOL.md §ownership) -----------

  /// Decided-slot gap above which a granted thief opens its catch-up
  /// with a snapshot transfer instead of log pages (requires both sides
  /// snapshot-capable). Mirrors the harness-level snapshot handover
  /// threshold in ShardedStore.
  uint64_t steal_snapshot_min_slots = 512;

  // --- Log compaction (default off; docs/PROTOCOL.md) ----------------------

  /// Allow Compact() to truncate the decided log and release the
  /// accepted prefix once a snapshot is durable. Off preserves the
  /// unbounded-log legacy behaviour (and its golden schedules).
  bool enable_compaction = false;

  /// Decided entries retained behind the compaction point, so ordinary
  /// laggards catch up from the log without a snapshot transfer.
  uint64_t compaction_retained_suffix = 64;

  // --- Durability ---------------------------------------------------------

  /// Time to persist an acceptor-state mutation before answering
  /// (promise or accept). 0 models battery-backed/async-safe storage;
  /// set ~100us for NVMe, ~1ms for SSD, ~5-10ms for disk. Charged once
  /// per positive acceptor reply.
  Duration storage_sync_delay = 0;

  // --- Garbage collection -----------------------------------------------

  /// Aggressive variant (paper Section 4.3.4): a newly elected leader
  /// broadcasts its own ballot as the GC threshold, because completing
  /// its Leader Election phase proves all lower-ballot intents obsolete.
  bool leader_broadcasts_gc_threshold = false;

  // --- Leaderless baseline ------------------------------------------------

  /// Slot striping so concurrent leaderless proposers never collide
  /// (the paper's "optimal case" idealization): this proposer owns slots
  /// congruent to `leaderless_index` modulo `leaderless_total`.
  uint32_t leaderless_index = 0;
  uint32_t leaderless_total = 1;
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_REPLICA_CONFIG_H_
