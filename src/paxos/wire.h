// Wire format: serialize/deserialize every protocol message.
//
// The simulator passes message objects by pointer, so serialization is
// not needed for correctness there — but a production port of Transport
// to real sockets needs a codec, and exercising it end-to-end catches
// fields that would silently not survive the wire. SimTransport can be
// configured (SimTransportOptions::validate_wire_codec) to round-trip
// every remote message through this codec, so the entire protocol test
// suite doubles as a codec conformance test.
//
// The wire tag of each type lives with the messages themselves (WireType
// in paxos/messages.h, returned by Message::wire_tag()); this header owns
// only the encode/decode entry points.
#ifndef DPAXOS_PAXOS_WIRE_H_
#define DPAXOS_PAXOS_WIRE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "paxos/messages.h"

namespace dpaxos {

/// Serialize any protocol message, appending to `*out`. The encoded size
/// is computed up front (a counting pass over the message) and reserved
/// in one shot, so a cleared, reused buffer never reallocates in steady
/// state. Aborts (DPAXOS_CHECK) on a message type outside the protocol
/// set — a programming error.
void SerializeMessageInto(const Message& msg, std::string* out);

/// Convenience wrapper returning a fresh string.
std::string SerializeMessage(const Message& msg);

/// Parse bytes produced by SerializeMessage. Returns Corruption on any
/// malformed input (unknown tag, truncation, trailing bytes). The bytes
/// are only read during the call; the returned message owns its data.
Result<MessagePtr> DeserializeMessage(std::string_view bytes);

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_WIRE_H_
