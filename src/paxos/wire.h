// Wire format: serialize/deserialize every protocol message.
//
// The simulator passes message objects by pointer, so serialization is
// not needed for correctness there — but a production port of Transport
// to real sockets needs a codec, and exercising it end-to-end catches
// fields that would silently not survive the wire. SimTransport can be
// configured (SimTransportOptions::validate_wire_codec) to round-trip
// every remote message through this codec, so the entire protocol test
// suite doubles as a codec conformance test.
#ifndef DPAXOS_PAXOS_WIRE_H_
#define DPAXOS_PAXOS_WIRE_H_

#include <string>

#include "common/status.h"
#include "net/message.h"

namespace dpaxos {

/// Stable one-byte tags identifying each message type on the wire.
enum class WireType : uint8_t {
  kPrepare = 1,
  kPromise = 2,
  kPrepareNack = 3,
  kPropose = 4,
  kAccept = 5,
  kAcceptNack = 6,
  kDecide = 7,
  kHandoffRequest = 8,
  kRelinquish = 9,
  kGcPoll = 10,
  kGcPollReply = 11,
  kGcThreshold = 12,
  kLzPrepare = 13,
  kLzPromise = 14,
  kLzPropose = 15,
  kLzAccept = 16,
  kLzNack = 17,
  kLzTransition = 18,
  kLzTransitionAck = 19,
  kLzStoreIntents = 20,
  kLzStoreAck = 21,
  kLzAnnounce = 22,
  kForward = 23,
  kForwardReply = 24,
  kLearnRequest = 25,
  kLearnReply = 26,
  kSnapshotRequest = 27,
  kSnapshotReply = 28,
  kHeartbeat = 29,
};

/// Serialize any protocol message. Aborts (DPAXOS_CHECK) on a message
/// type outside the protocol set — a programming error.
std::string SerializeMessage(const Message& msg);

/// Parse bytes produced by SerializeMessage. Returns Corruption on any
/// malformed input (unknown tag, truncation, trailing bytes).
Result<MessagePtr> DeserializeMessage(const std::string& bytes);

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_WIRE_H_
