// The intents garbage-collection process (paper Section 4.3.4,
// Algorithm 3).
//
// A collector is co-located with a node (it uses that node's transport
// identity) and repeatedly: picks an acceptor round-robin, polls its
// largest ballot seen in a propose message (P_i), raises the global
// threshold P = max(P, P_i), and asynchronously broadcasts P to all
// acceptors, which drop every stored intent with a lower ballot.
// Collectors can start and stop arbitrarily, and several may coexist.
#ifndef DPAXOS_PAXOS_GARBAGE_COLLECTOR_H_
#define DPAXOS_PAXOS_GARBAGE_COLLECTOR_H_

#include <vector>

#include "common/types.h"
#include "net/transport.h"
#include "paxos/ballot.h"
#include "paxos/messages.h"
#include "sim/scheduler.h"

namespace dpaxos {

/// \brief One garbage-collection process for one partition.
class GarbageCollector {
 public:
  /// `host` is the node this collector is co-located with; polls and
  /// threshold broadcasts are sent from its transport identity.
  GarbageCollector(EventScheduler* sim, Transport* transport,
                   const Topology* topology, NodeId host,
                   PartitionId partition,
                   Duration poll_period = 500 * kMillisecond);

  /// Begin periodic polling. Idempotent.
  void Start();
  /// Stop polling; a later Start() resumes where it left off (threshold
  /// state is retained, matching the paper's "shutdown and resumed
  /// arbitrarily").
  void Stop();
  bool running() const { return running_; }

  /// Poll every node once and broadcast the resulting threshold — a
  /// deterministic full sweep used by tests and benches.
  void SweepOnce();

  /// Current threshold P.
  const Ballot& threshold() const { return threshold_; }
  PartitionId partition() const { return partition_; }
  NodeId host() const { return host_; }
  uint64_t polls_sent() const { return polls_sent_; }

  /// Route for GcPollReplyMsg, invoked by the co-located NodeHost.
  void OnPollReply(NodeId from, const GcPollReplyMsg& msg);

 private:
  void PollNext();
  void BroadcastThreshold();

  EventScheduler* sim_;
  Transport* transport_;
  const Topology* topology_;
  NodeId host_;
  PartitionId partition_;
  Duration poll_period_;

  bool running_ = false;
  EventId timer_ = 0;
  size_t next_target_ = 0;  // round-robin cursor
  Ballot threshold_;
  uint64_t polls_sent_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_GARBAGE_COLLECTOR_H_
