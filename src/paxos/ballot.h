// Ballots (proposal ids): totally ordered, globally unique per proposer.
#ifndef DPAXOS_PAXOS_BALLOT_H_
#define DPAXOS_PAXOS_BALLOT_H_

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace dpaxos {

/// \brief A Paxos proposal id: (round, proposing node).
///
/// Rounds start at 1; the default-constructed Ballot (round 0) is the
/// "null" ballot, ordered below every real ballot. Ordering is
/// lexicographic on (round, node), making concurrently chosen ballots
/// comparable and unique.
struct Ballot {
  uint64_t round = 0;
  NodeId node = 0;

  constexpr bool is_null() const { return round == 0; }

  friend constexpr auto operator<=>(const Ballot&, const Ballot&) = default;

  std::string ToString() const {
    return "(" + std::to_string(round) + "," + std::to_string(node) + ")";
  }
};

}  // namespace dpaxos

#endif  // DPAXOS_PAXOS_BALLOT_H_
