// Open-loop asynchronous client driver for the real-network tier.
//
// The blocking TcpClient measures a closed loop of depth 1: each request
// waits for its predecessor, so the reported "throughput" is really
// 1/latency and percentiles hide every queueing effect. LoadGen instead
// drives an EventLoop with many connections, each pipelining hundreds of
// in-flight puts, in one of two modes:
//
//   rate == 0  closed-loop at the configured pipeline depth: every reply
//              immediately funds the next request. Measures capacity
//              (the saturation throughput of the serving path).
//   rate  > 0  open-loop at `rate` ops/s: arrivals follow the clock, NOT
//              the server. Latency is measured from each request's
//              INTENDED arrival time, so coordinated omission shows up
//              as queueing delay instead of silently vanishing — the
//              honest p50/p99/p999 the bench records.
//
// Connection errors fail the in-flight requests (counted, not retried)
// and redial with a short backoff, which is what lets the soak cell run
// through RealNemesis fault schedules without wedging.
#ifndef DPAXOS_HARNESS_LOAD_GEN_H_
#define DPAXOS_HARNESS_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "net/tcp/socket_util.h"

namespace dpaxos {

struct LoadGenOptions {
  /// Target endpoints; connections are spread round-robin across them.
  std::vector<HostPort> endpoints;
  uint32_t connections = 4;
  /// Closed-loop depth per connection (rate == 0), and the top-up bound
  /// that keeps an open-loop run from buffering unboundedly when the
  /// server falls behind for the whole run.
  uint32_t pipeline = 256;
  /// Offered load in ops/s across all connections; 0 = closed loop.
  double rate = 0;
  /// Stop after this many completed (ok + failed) ops. 0 = run for
  /// `duration` instead.
  uint64_t total_ops = 10000;
  /// Wall-clock run length for duration mode (total_ops == 0).
  Duration duration = 0;
  /// Hard overall deadline; expiring marks the result !completed.
  Duration timeout = 60 * kSecond;
  std::string key_prefix = "k";
  uint32_t key_space = 512;
  /// HELLO client ids are client_id_base + connection index; keep ranges
  /// disjoint from other clients sharing the cluster (dedup keys on it).
  uint64_t client_id_base = 7100;
  uint64_t seed = 1;
};

struct LoadGenResult {
  uint64_t ops_ok = 0;
  uint64_t ops_failed = 0;   ///< error replies + ops failed by dead conns
  uint64_t conn_errors = 0;  ///< connection-level failures observed
  double elapsed_seconds = 0;
  double achieved_ops = 0;  ///< ops_ok / elapsed
  double offered_ops = 0;   ///< the configured rate (0 for closed loop)
  Histogram latency;        ///< from intended arrival to reply
  /// False when the overall timeout expired before the workload did.
  bool completed = false;
};

/// Run the workload to completion on the calling thread (it owns an
/// internal EventLoop for the duration of the call).
Result<LoadGenResult> RunLoadGen(const LoadGenOptions& options);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_LOAD_GEN_H_
