#include "harness/cluster.h"

#include <optional>

#include "common/check.h"
#include "paxos/wire.h"

namespace dpaxos {

Cluster::Cluster(Topology topology, ProtocolMode mode, ClusterOptions options)
    : topology_(std::move(topology)), options_(std::move(options)) {
  const FaultTolerance& ft = options_.ft;
  DPAXOS_CHECK_MSG(topology_.num_zones() >= 2 * ft.fz + 1,
                   "need at least 2*fz+1 zones");
  for (ZoneId z = 0; z < topology_.num_zones(); ++z) {
    DPAXOS_CHECK_MSG(topology_.nodes_in_zone(z) >= 2 * ft.fd + 1,
                     "zone " << z << " needs at least 2*fd+1 nodes");
  }
  DPAXOS_CHECK(!options_.partitions.empty());

  sim_ = std::make_unique<Simulator>(options_.seed);
  if (options_.expected_pending_events > 0) {
    sim_->Reserve(options_.expected_pending_events);
  }
  transport_ =
      std::make_unique<SimTransport>(sim_.get(), &topology_, options_.transport);
  if (options_.transport.validate_wire_codec) {
    transport_->set_wire_codec(
        [](const Message& m, std::string* out) {
          SerializeMessageInto(m, out);
        },
        [](std::string_view bytes) -> MessagePtr {
          Result<MessagePtr> r = DeserializeMessage(bytes);
          return r.ok() ? r.value() : nullptr;
        });
  }
  quorums_ = MakeQuorumSystem(mode, &topology_, ft);

  hosts_.reserve(topology_.num_nodes());
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    hosts_.push_back(
        std::make_unique<NodeHost>(sim_.get(), transport_.get(), &topology_, n));
    for (PartitionId p : options_.partitions) {
      ReplicaConfig config = options_.replica;
      config.partition = p;
      if (mode == ProtocolMode::kLeaderless) {
        config.leaderless_index = n;
        config.leaderless_total = topology_.num_nodes();
      }
      hosts_.back()->AddReplica(quorums_.get(), config);
    }
  }
}

Cluster::~Cluster() {
  for (auto& gc : collectors_) gc->Stop();
}

Replica* Cluster::replica(NodeId node, PartitionId partition) const {
  DPAXOS_CHECK_LT(node, hosts_.size());
  Replica* r = hosts_[node]->replica(partition);
  DPAXOS_CHECK_MSG(r != nullptr, "no replica for partition " << partition);
  return r;
}

NodeId Cluster::NodeInZone(ZoneId zone, uint32_t index) const {
  const std::vector<NodeId> nodes = topology_.NodesInZone(zone);
  DPAXOS_CHECK_LT(index, nodes.size());
  return nodes[index];
}

Replica* Cluster::ReplicaInZone(ZoneId zone, uint32_t index,
                                PartitionId partition) const {
  return replica(NodeInZone(zone, index), partition);
}

const QuorumSystem* Cluster::AddPartition(
    std::unique_ptr<QuorumSystem> quorums, ReplicaConfig config) {
  DPAXOS_CHECK(quorums != nullptr);
  const QuorumSystem* qs = quorums.get();
  extra_quorums_.push_back(std::move(quorums));
  for (auto& host : hosts_) host->AddReplica(qs, config);
  return qs;
}

void Cluster::RestartNode(NodeId node, bool lose_unsynced) {
  DPAXOS_CHECK_LT(node, hosts_.size());
  hosts_[node]->Restart(lose_unsynced);
}

NodeHost* Cluster::host(NodeId node) const {
  DPAXOS_CHECK_LT(node, hosts_.size());
  return hosts_[node].get();
}

GarbageCollector* Cluster::AddGarbageCollector(NodeId host,
                                               PartitionId partition,
                                               Duration poll_period) {
  auto gc = std::make_unique<GarbageCollector>(
      sim_.get(), transport_.get(), &topology_, host, partition, poll_period);
  GarbageCollector* ptr = gc.get();
  DPAXOS_CHECK_LT(host, hosts_.size());
  hosts_[host]->AttachGarbageCollector(ptr);
  collectors_.push_back(std::move(gc));
  return ptr;
}

Result<Duration> Cluster::ElectLeader(NodeId node, PartitionId partition) {
  Replica* r = replica(node, partition);
  std::optional<Status> done;
  const Timestamp start = sim_->Now();
  r->TryBecomeLeader([&](const Status& st) { done = st; });
  while (!done.has_value() && sim_->Step()) {
  }
  if (!done.has_value()) {
    return Status::Internal("simulation quiesced before election finished");
  }
  if (!done->ok()) return *done;
  return sim_->Now() - start;
}

Result<Duration> Cluster::Commit(NodeId node, Value value,
                                 PartitionId partition) {
  Replica* r = replica(node, partition);
  std::optional<Status> done;
  Duration latency = 0;
  r->Submit(std::move(value),
            [&](const Status& st, SlotId /*slot*/, Duration lat) {
              done = st;
              latency = lat;
            });
  while (!done.has_value() && sim_->Step()) {
  }
  if (!done.has_value()) {
    return Status::Internal("simulation quiesced before commit finished");
  }
  if (!done->ok()) return *done;
  return latency;
}

bool Cluster::RunUntil(const std::function<bool()>& pred,
                       Duration max_virtual_time) {
  const Timestamp deadline = sim_->Now() + max_virtual_time;
  while (!pred()) {
    if (sim_->Now() >= deadline) return false;
    if (!sim_->Step()) return pred();
  }
  return true;
}

}  // namespace dpaxos
