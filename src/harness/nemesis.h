// Nemesis: a composable, deterministic fault scheduler for a Cluster.
//
// Chaos tests used to hand-roll their fault choreography (crash loops in
// failure_test, restart storms in restart_test, the kitchen-sink wave
// machine in soak_test). The nemesis replaces that with a declarative
// schedule: a list of (virtual time, action) steps armed on the
// simulator, all randomness drawn from one seeded Rng so a (schedule,
// seed) pair replays identically. Actions respect the cluster's fault
// budget: at most `ft.fd` simultaneously crashed nodes per zone, and at
// most `ft.fz` simultaneously isolated zones.
#ifndef DPAXOS_HARNESS_NEMESIS_H_
#define DPAXOS_HARNESS_NEMESIS_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "harness/cluster.h"

namespace dpaxos {

/// \brief Deterministic declarative fault injector.
class Nemesis {
 public:
  enum class Op : uint8_t {
    kCrashNode = 0,     // crash a random node within the per-zone budget
    kRestartNode,       // restart + recover a random crashed node
    kRestartNodeLossy,  // ...dropping writes newer than the last sync
    kRecoverAll,        // restart + recover every crashed node
    kIsolateZone,       // partition a random zone off from the rest
    kHealPartitions,    // heal every cut link
    kLossBurst,         // set drop AND duplicate probability to `arg`
    kJitterBurst,       // set max link jitter to `arg` microseconds
    kClearLoss,         // restore the cluster's baseline loss model
    kMigrateLeaderZone, // force a Leader-Zone move to a random other zone
    kHandoff,           // current leader hands off to a random peer
    kElectLeader,       // a random healthy node runs Leader Election
    kForceCompaction,   // trigger the harness's compaction sweep now
    kCorruptSnapshot,   // next snapshot served by a random node is corrupt
    kCrashDuringInstall,// crash a node, then lossy-restart it `arg` us later
                        // (default 100ms) — tears any in-flight snapshot
                        // install and drops its unsynced writes
    kSyncAll,           // fsync barrier: mark every node's storage synced
    kPowerLossAll,      // crash EVERY node at once (rack power loss), then
                        // lossy-restart them all `arg` us later (default
                        // 200ms) — only writes synced at a protocol sync
                        // point survive, cluster-wide
  };

  struct Step {
    Duration at = 0;  // relative to Arm()
    Op op = Op::kCrashNode;
    double arg = 0;
    PartitionId partition = 0;
  };

  /// `cluster` must outlive the nemesis.
  Nemesis(Cluster* cluster, uint64_t seed);

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  // --- schedule building ------------------------------------------------

  Nemesis& Add(Duration at, Op op, double arg = 0);
  /// `count` repetitions of `op` starting at `start`, `period` apart.
  Nemesis& Repeat(Duration start, Duration period, uint32_t count, Op op,
                  double arg = 0);

  /// Append one of the named schedules over [start, start + horizon).
  /// Every named schedule includes crashes, a zone partition and a
  /// forced Leader-Zone migration; they differ in emphasis:
  ///   "mixed"      — everything interleaved (the default)
  ///   "storm"      — crash/restart churn
  ///   "partitions" — repeated zone isolations
  ///   "lossy"      — drop/duplicate/jitter bursts + lossy restarts
  ///   "moves"      — migration and handoff churn
  ///   "recovery"   — compaction sweeps, corrupted snapshots, lossy
  ///                  restarts and crash-during-install tears
  ///   "disk"       — durability emphasis: sync barriers, lossy restarts
  ///                  and whole-cluster power losses (every acked write
  ///                  must survive because acks follow sync points)
  /// Returns false (and adds nothing) for an unknown name.
  bool AddNamedSchedule(const std::string& name, Duration start,
                        Duration horizon);
  static std::vector<std::string> ScheduleNames();

  /// Arm every step on the simulator, offsets relative to now. Steps
  /// using lossy restarts flip the affected storages into crash-fault
  /// mode here.
  void Arm();

  /// Undo all standing faults immediately: recover + restart crashed
  /// nodes, heal partitions, restore the baseline loss model.
  void Quiesce();

  /// Invoked after every node restart so the harness can re-wire decide
  /// callbacks / appliers (NodeHost::Restart drops them).
  void set_restart_hook(std::function<void(NodeId)> hook) {
    restart_hook_ = std::move(hook);
  }

  /// Invoked by kForceCompaction: the harness owns the compaction policy
  /// (quorum watermark, retained suffix), the nemesis only picks when.
  void set_compaction_hook(std::function<void()> hook) {
    compaction_hook_ = std::move(hook);
  }

  // --- imperative primitives (also usable directly from tests) ----------

  bool CrashRandomNode();
  bool RestartRandomCrashedNode(bool lose_unsynced);
  void RecoverAll();
  bool IsolateRandomZone();
  void HealPartitions();
  void LossBurst(double p);
  void JitterBurst(Duration max_jitter);
  void ClearLoss();
  bool MigrateLeaderZoneRandom(PartitionId partition = 0);
  bool HandoffRandom(PartitionId partition = 0);
  bool ElectRandomLeader(PartitionId partition = 0);
  void ForceCompaction();
  /// Arms a one-shot fault on a random healthy node: the next snapshot
  /// it serves is corrupted (bit flip or truncation, coin-flipped).
  bool CorruptRandomSnapshot(PartitionId partition = 0);
  /// Fsync barrier: capture every node's current state as its durable
  /// image (no-op unless crash faults are on).
  void SyncAll();
  /// Whole-cluster power loss: crash every node simultaneously, then
  /// lossy-restart all of them `restart_after` later (default 200ms).
  /// Survives only what the crash-fault model had marked synced — the
  /// sim twin of SIGKILLing a durable RealCluster and restarting from
  /// the WAL directories alone.
  void PowerLossAll(Duration restart_after = 0);

  // --- targeted primitives (surgical failure tests) ---------------------
  // No randomness and no fault-budget enforcement: these trust the
  // caller, which is exactly what a test crashing "the quorum companion"
  // needs. They still keep the crashed-set bookkeeping and action log.

  void Crash(NodeId node);
  /// Network-level recovery only: the process (and its volatile state)
  /// survives. Use Restart() to model a process death + reboot.
  void Recover(NodeId node);
  void Restart(NodeId node, bool lose_unsynced = false);
  void CrashZone(ZoneId zone);
  /// Cut every link between `node` and the nodes of `zone`.
  void IsolateNodeFromZone(NodeId node, ZoneId zone);

  // --- introspection ----------------------------------------------------

  const std::set<NodeId>& crashed() const { return crashed_; }
  const std::vector<std::string>& action_log() const { return action_log_; }
  uint64_t actions_executed() const { return action_log_.size(); }

 private:
  void Execute(const Step& step);
  Replica* CurrentLeader(PartitionId partition) const;
  bool IsHealthy(NodeId node) const { return crashed_.count(node) == 0; }
  void Note(const std::string& what);

  Cluster* cluster_;
  Rng rng_;
  std::vector<Step> steps_;
  std::set<NodeId> crashed_;
  std::set<ZoneId> isolated_zones_;
  SimTransportOptions baseline_;  // loss model to restore on ClearLoss
  std::function<void(NodeId)> restart_hook_;
  std::function<void()> compaction_hook_;
  std::vector<std::string> action_log_;
  bool armed_ = false;
};

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_NEMESIS_H_
