#include "harness/real_chaos.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "harness/load_gen.h"
#include "harness/real_cluster.h"
#include "harness/real_nemesis.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {

namespace {

Timestamp NowMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * kSecond + ts.tv_nsec / 1000;
}

void SleepMicros(Duration us) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(us / kSecond);
  ts.tv_nsec = static_cast<long>((us % kSecond) * 1000);
  nanosleep(&ts, nullptr);
}

uint64_t StatsU64(const std::string& stats, const std::string& key) {
  const std::string field = StatsField(stats, key);
  return field.empty() ? 0 : strtoull(field.c_str(), nullptr, 10);
}

/// One client thread: issue ops against the proxied cluster until told
/// to stop, recording every invocation/completion in the shared history.
struct ClientCtx {
  uint64_t client_id = 0;
  Rng rng{1};
  FailoverTcpClient* client = nullptr;
  uint64_t next_op = 1;
  /// Ownership runs: wall-clock instant at which this client "moves" —
  /// re-dials `move_endpoint` and declares `move_zone` from then on (0 =
  /// never). The locality shift is what gives the placement sweep a
  /// reason to steal mid-chaos.
  Timestamp move_at = 0;
  uint32_t move_zone = 0;
  size_t move_endpoint = 0;
  bool moved = false;
};

struct SharedState {
  std::mutex mu;  // guards recorder + latency (HistoryRecorder is not
                  // thread-safe; contention is think-time bounded)
  HistoryRecorder recorder;
  Histogram latency;
  std::atomic<bool> stop{false};
};

void ClientLoop(const RealChaosOptions& options, ClientCtx* ctx,
                SharedState* shared) {
  while (!shared->stop.load(std::memory_order_relaxed)) {
    if (!ctx->moved && ctx->move_at != 0 && NowMicros() >= ctx->move_at) {
      ctx->client->set_zone(ctx->move_zone);
      ctx->client->set_endpoint(ctx->move_endpoint);
      ctx->moved = true;
    }
    const bool is_read = ctx->rng.NextBool(options.read_fraction);
    const std::string key =
        "k" + std::to_string(ctx->rng.NextBounded(options.num_keys));
    // Written values are unique per (client, op) — the linearizability
    // search requires distinguishable writes per key.
    const std::string value =
        is_read ? ""
                : "c" + std::to_string(ctx->client_id) + "-" +
                      std::to_string(ctx->next_op);
    ++ctx->next_op;

    size_t index;
    const Timestamp invoked = NowMicros();
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      index = shared->recorder.Invoke(ctx->client_id, ctx->next_op, is_read,
                                      key, value, invoked);
    }
    FailoverTcpClient::CallResult result = ctx->client->Call(
        is_read ? ClientOp::kGet : ClientOp::kPut, key, value);
    const Timestamp completed = NowMicros();
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      HistoryOp& op = shared->recorder.op(index);
      if (result.status.ok()) {
        const StatusCode code =
            static_cast<StatusCode>(result.reply.status_code);
        if (is_read) {
          if (code == StatusCode::kOk) op.observed = result.reply.value;
          // kNotFound leaves observed == nullopt: a definite "absent".
          op.observed_watermark = result.reply.watermark;
        } else {
          op.slot = result.reply.watermark;
        }
        shared->recorder.Complete(index, HistoryOutcome::kOk, completed);
        shared->latency.Add(completed - invoked);
      } else if (is_read || !result.ever_sent) {
        // Reads have no effect; writes that never reached a live
        // connection definitely did not happen.
        shared->recorder.Complete(index, HistoryOutcome::kFail, completed);
      } else {
        // The write reached a server and no definitive answer came
        // back — it may commit any time later.
        shared->recorder.Complete(index, HistoryOutcome::kIndeterminate,
                                  completed);
      }
    }
    if (shared->stop.load(std::memory_order_relaxed)) break;
    const Duration think =
        options.think_time / 2 + ctx->rng.NextBounded(options.think_time);
    SleepMicros(think);
  }
}

/// Poll direct (non-proxied) stats until every node reports the same
/// checksum at the same watermark.
bool AwaitConvergence(RealCluster& cluster, Duration budget,
                      std::string* detail) {
  const Timestamp deadline = NowMicros() + budget;
  while (NowMicros() < deadline) {
    std::string first_checksum;
    uint64_t min_watermark = ~0ull, max_watermark = 0;
    bool all_answered = true, checksums_match = true;
    std::string states;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      Result<std::string> stats = cluster.Stats(n);
      if (!stats.ok()) {
        all_answered = false;
        states += " node" + std::to_string(n) + "=unreachable";
        continue;
      }
      const std::string checksum = StatsField(stats.value(), "checksum");
      const uint64_t watermark = StatsU64(stats.value(), "watermark");
      if (first_checksum.empty()) {
        first_checksum = checksum;
      } else if (checksum != first_checksum) {
        checksums_match = false;
      }
      if (watermark < min_watermark) min_watermark = watermark;
      if (watermark > max_watermark) max_watermark = watermark;
      states += " node" + std::to_string(n) + "=w" +
                std::to_string(watermark) + "/" + checksum;
    }
    *detail = states;
    if (all_answered && checksums_match && min_watermark == max_watermark) {
      return true;
    }
    SleepMicros(200 * kMillisecond);
  }
  return false;
}

}  // namespace

RealChaosReport RunRealChaos(const RealChaosOptions& options) {
  RealChaosReport report;
  auto fail = [&report](const std::string& what) -> RealChaosReport& {
    report.error = what;
    DPAXOS_WARN("realchaos: " << what);
    return report;
  };

  const uint32_t num_nodes = options.zones * options.nodes_per_zone;

  // Keep every key's op count under the checker's 63-op bitmask bound:
  // expected ops ~= clients * duration / think_time, and ~2x headroom
  // against think-time jitter and fast retries.
  uint32_t num_keys = options.num_keys;
  if (options.think_time > 0) {
    const uint64_t expected_ops = options.num_clients *
                                  (options.duration / options.think_time + 1);
    const uint32_t floor_keys =
        static_cast<uint32_t>(expected_ops / 24 + 1);
    if (num_keys < floor_keys) num_keys = floor_keys;
  }

  // 1. Real endpoints first, so the proxy can wrap them before spawn.
  Result<std::vector<uint16_t>> ports = PickFreeLoopbackPorts(num_nodes);
  if (!ports.ok()) return fail("ports: " + ports.status().ToString());
  std::vector<HostPort> real_endpoints;
  for (uint16_t port : ports.value()) {
    real_endpoints.push_back(HostPort{"127.0.0.1", port});
  }

  ChaosProxyOptions popts;
  popts.upstreams = real_endpoints;
  popts.zones = options.zones;
  popts.seed = options.seed;
  ChaosProxy proxy(popts);
  Status st = proxy.Start();
  if (!st.ok()) return fail("proxy: " + st.ToString());

  // 2. Cluster: every node binds its real endpoint but dials peers (and
  // is dialed by clients) through the proxy.
  RealClusterOptions copts;
  copts.server_binary = options.server_binary;
  copts.zones = options.zones;
  copts.nodes_per_zone = options.nodes_per_zone;
  copts.mode = options.mode;
  copts.seed = options.seed;
  copts.leader_hint = 0;
  copts.enable_compaction = true;
  copts.log_dir = options.log_dir;
  copts.listen_endpoints = real_endpoints;
  copts.peer_view = proxy.endpoints();
  if (options.fast_path) copts.extra_args.push_back("--fast-path");
  const bool ownership = options.ownership || options.schedule == "mobility";
  if (ownership) {
    copts.extra_args.push_back("--ownership");
    copts.extra_args.push_back(
        "--placement-sweep-ms=" +
        std::to_string(options.placement_sweep / kMillisecond));
    copts.extra_args.push_back(
        "--steal-cooldown-ms=" +
        std::to_string(options.steal_cooldown / kMillisecond));
  }
  if (options.durable) {
    if (options.data_dir_base.empty()) {
      return fail("durable mode requires data_dir_base");
    }
    copts.data_dir_base = options.data_dir_base;
    copts.disk_faults = true;
    copts.wal_commit_delay = options.wal_commit_delay;
  }
  RealCluster cluster(copts);
  st = cluster.Start();
  if (!st.ok()) return fail("cluster: " + st.ToString());

  // 3. Nemesis schedule (validated before any thread starts).
  RealNemesis nemesis(&cluster, &proxy, options.seed);
  if (options.schedule != "none" &&
      !nemesis.AddNamedSchedule(options.schedule, 0, options.duration)) {
    return fail("unknown schedule '" + options.schedule + "'");
  }

  // 4. Clients against the PROXIED endpoints, so client links share the
  // cluster's fault surface.
  SharedState shared;
  std::vector<ClientCtx> ctxs(options.num_clients);
  std::vector<std::unique_ptr<FailoverTcpClient>> clients;
  RealChaosOptions effective = options;
  effective.num_keys = num_keys;
  FailoverTcpClient::Options fopts;
  fopts.overall_timeout = options.op_timeout;
  for (uint32_t c = 0; c < options.num_clients; ++c) {
    ctxs[c].client_id = c + 1;
    ctxs[c].rng = Rng(options.seed + 7919 * (c + 1));
    // With the fast path on, stagger each client's home replica (the
    // zone-local entry DPaxos optimizes for): a client parked on the
    // leader never drives a fast round, it just submits classically.
    std::vector<HostPort> eps = proxy.endpoints();
    if (options.fast_path) {
      std::rotate(eps.begin(), eps.begin() + (c % eps.size()), eps.end());
    }
    clients.push_back(std::make_unique<FailoverTcpClient>(
        ctxs[c].client_id, std::move(eps), fopts));
    ctxs[c].client = clients.back().get();
    if (ownership) {
      // The checked clients start parked in zone 0 (the leader hint's
      // zone) and later migrate to zone 1, so the placement sweep sees
      // the locality shift through real request arrivals.
      ctxs[c].client->set_zone(0);
      if (options.client_move_frac > 0 && options.zones > 1) {
        ctxs[c].move_at =
            NowMicros() + static_cast<Timestamp>(
                              static_cast<double>(options.duration) *
                              options.client_move_frac);
        ctxs[c].move_zone = 1;
        ctxs[c].move_endpoint =
            options.nodes_per_zone + (c % options.nodes_per_zone);
      }
    }
  }
  std::vector<std::thread> client_threads;
  for (uint32_t c = 0; c < options.num_clients; ++c) {
    client_threads.emplace_back(ClientLoop, std::cref(effective), &ctxs[c],
                                &shared);
  }
  std::thread nemesis_thread([&nemesis] { nemesis.Run(); });

  // 4b. Optional sustained-load soak: the open-loop async driver runs
  // against the same proxied endpoints for the whole faulty phase, on a
  // disjoint key prefix and client-id range so the checked history stays
  // untouched. It redials through kills/partitions on its own.
  Result<LoadGenResult> soak = LoadGenResult{};
  std::thread soak_thread;
  if (options.soak_connections > 0) {
    LoadGenOptions sopts;
    sopts.endpoints = proxy.endpoints();
    sopts.connections = options.soak_connections;
    sopts.pipeline = options.soak_pipeline;
    sopts.rate = options.soak_rate;
    sopts.total_ops = 0;
    sopts.duration = options.duration;
    sopts.timeout = options.duration + 30 * kSecond;
    sopts.key_prefix = "soak";
    sopts.key_space = 64;
    sopts.client_id_base = 500;
    sopts.seed = options.seed + 104729;
    soak_thread = std::thread(
        [&soak, sopts] { soak = RunLoadGen(sopts); });
  }

  // 5. Let the faulty phase run its course, then drain.
  SleepMicros(options.duration);
  nemesis_thread.join();
  shared.stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : client_threads) t.join();
  for (auto& client : clients) client->Close();
  if (soak_thread.joinable()) {
    soak_thread.join();
    if (soak.ok()) {
      report.soak_ops_ok = soak->ops_ok;
      report.soak_ops_failed = soak->ops_failed;
      report.soak_conn_errors = soak->conn_errors;
      report.soak_achieved_ops = soak->achieved_ops;
      report.soak_p99_ms = soak->latency.P99Millis();
    } else if (report.error.empty()) {
      report.error = "soak: " + soak.status().ToString();
    }
  }

  // 6. Heal the world and wait for one identical state everywhere.
  nemesis.Quiesce();
  std::string converge_detail;
  report.converged =
      AwaitConvergence(cluster, options.settle, &converge_detail);
  if (!report.converged) {
    DPAXOS_WARN("realchaos: no convergence:" << converge_detail);
  }

  // 7. Node-side damage counters (direct, not proxied).
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    Result<std::string> stats = cluster.Stats(n);
    if (!stats.ok()) continue;
    report.tcp_reconnects += StatsU64(stats.value(), "tcp_reconnects");
    report.tcp_dropped_frames += StatsU64(stats.value(), "tcp_frames_dropped");
    report.tcp_malformed_frames +=
        StatsU64(stats.value(), "tcp_malformed_frames");
    report.fast_commits += StatsU64(stats.value(), "fast_commits");
    report.fast_fallbacks += StatsU64(stats.value(), "fast_fallbacks");
    report.wal_fsyncs += StatsU64(stats.value(), "wal_fsyncs");
    report.wal_torn_tail_truncations +=
        StatsU64(stats.value(), "wal_torn_tail_truncations");
    report.steals_attempted +=
        StatsU64(stats.value(), "placement_steals_attempted");
    report.steals_completed +=
        StatsU64(stats.value(), "placement_steals_completed");
    report.steals_rejected +=
        StatsU64(stats.value(), "placement_steals_rejected");
    report.pingpongs_suppressed +=
        StatsU64(stats.value(), "placement_pingpongs_suppressed");
    report.placement_rescues += StatsU64(stats.value(), "placement_rescues");
    report.steals_won += StatsU64(stats.value(), "steals_won");
    const uint64_t records = StatsU64(stats.value(), "ownership_records");
    if (records > report.ownership_records) {
      report.ownership_records = records;
    }
  }

  // 8. Verdicts.
  report.consistency = CheckHistory(shared.recorder.ops());
  report.ops_invoked = shared.recorder.size();
  report.ops_committed = shared.recorder.CountOutcome(HistoryOutcome::kOk);
  report.ops_failed = shared.recorder.CountOutcome(HistoryOutcome::kFail);
  report.ops_indeterminate =
      shared.recorder.CountOutcome(HistoryOutcome::kIndeterminate);
  report.latency = shared.latency;
  for (const auto& client : clients) {
    report.client_failovers += client->total_failovers();
  }
  report.proxy = proxy.stats();
  report.nemesis_actions = nemesis.actions_executed();
  report.nemesis_partitions = nemesis.partitions();
  report.nemesis_pauses = nemesis.pauses();
  report.nemesis_kills = nemesis.kills();
  report.nemesis_restarts = nemesis.restarts();
  report.nemesis_corrupt_bursts = nemesis.corrupt_bursts();
  report.nemesis_disk_faults = nemesis.disk_faults_armed();
  report.nemesis_power_losses = nemesis.power_losses();
  report.nemesis_log = nemesis.action_log();

  st = cluster.ShutdownAll();
  if (!st.ok() && report.error.empty()) {
    report.error = "shutdown: " + st.ToString();
  }
  proxy.Stop();
  return report;
}

std::string RealChaosReport::Summary() const {
  char buf[160];
  std::string out;
  snprintf(buf, sizeof(buf),
           "ops=%llu ok=%llu fail=%llu indet=%llu failovers=%llu\n",
           static_cast<unsigned long long>(ops_invoked),
           static_cast<unsigned long long>(ops_committed),
           static_cast<unsigned long long>(ops_failed),
           static_cast<unsigned long long>(ops_indeterminate),
           static_cast<unsigned long long>(client_failovers));
  out += buf;
  snprintf(buf, sizeof(buf),
           "latency under fault: p50=%.1fms p99=%.1fms max=%.1fms\n",
           latency.P50Millis(), latency.P99Millis(), ToMillis(latency.Max()));
  out += buf;
  snprintf(buf, sizeof(buf),
           "proxy faults=%llu (dropped=%llu blackholed=%llu corrupted=%llu "
           "delayed=%llu cut=%llu)\n",
           static_cast<unsigned long long>(proxy.total_faults()),
           static_cast<unsigned long long>(proxy.frames_dropped),
           static_cast<unsigned long long>(proxy.frames_blackholed),
           static_cast<unsigned long long>(proxy.frames_corrupted),
           static_cast<unsigned long long>(proxy.frames_delayed),
           static_cast<unsigned long long>(proxy.links_closed));
  out += buf;
  snprintf(buf, sizeof(buf),
           "nemesis actions=%llu (partitions=%llu pauses=%llu kills=%llu "
           "restarts=%llu corrupt-bursts=%llu)\n",
           static_cast<unsigned long long>(nemesis_actions),
           static_cast<unsigned long long>(nemesis_partitions),
           static_cast<unsigned long long>(nemesis_pauses),
           static_cast<unsigned long long>(nemesis_kills),
           static_cast<unsigned long long>(nemesis_restarts),
           static_cast<unsigned long long>(nemesis_corrupt_bursts));
  out += buf;
  snprintf(buf, sizeof(buf),
           "node tcp: reconnects=%llu dropped=%llu malformed=%llu\n",
           static_cast<unsigned long long>(tcp_reconnects),
           static_cast<unsigned long long>(tcp_dropped_frames),
           static_cast<unsigned long long>(tcp_malformed_frames));
  out += buf;
  if (nemesis_disk_faults > 0 || nemesis_power_losses > 0 || wal_fsyncs > 0) {
    snprintf(buf, sizeof(buf),
             "disk: faults_armed=%llu power_losses=%llu wal_fsyncs=%llu "
             "torn_tail_truncations=%llu\n",
             static_cast<unsigned long long>(nemesis_disk_faults),
             static_cast<unsigned long long>(nemesis_power_losses),
             static_cast<unsigned long long>(wal_fsyncs),
             static_cast<unsigned long long>(wal_torn_tail_truncations));
    out += buf;
  }
  if (fast_commits > 0 || fast_fallbacks > 0) {
    snprintf(buf, sizeof(buf), "fast path: commits=%llu fallbacks=%llu\n",
             static_cast<unsigned long long>(fast_commits),
             static_cast<unsigned long long>(fast_fallbacks));
    out += buf;
  }
  if (steals_attempted > 0 || ownership_records > 0) {
    snprintf(buf, sizeof(buf),
             "ownership: steals=%llu/%llu rejected=%llu rescues=%llu "
             "pingpongs_suppressed=%llu records=%llu\n",
             static_cast<unsigned long long>(steals_completed),
             static_cast<unsigned long long>(steals_attempted),
             static_cast<unsigned long long>(steals_rejected),
             static_cast<unsigned long long>(placement_rescues),
             static_cast<unsigned long long>(pingpongs_suppressed),
             static_cast<unsigned long long>(ownership_records));
    out += buf;
  }
  if (soak_ops_ok + soak_ops_failed > 0) {
    snprintf(buf, sizeof(buf),
             "soak: ok=%llu failed=%llu conn_errors=%llu achieved=%.1f/s "
             "p99=%.1fms\n",
             static_cast<unsigned long long>(soak_ops_ok),
             static_cast<unsigned long long>(soak_ops_failed),
             static_cast<unsigned long long>(soak_conn_errors),
             soak_achieved_ops, soak_p99_ms);
    out += buf;
  }
  out += consistency.Summary();
  if (!out.empty() && out.back() != '\n') out += '\n';
  out += converged ? "converged: yes\n" : "converged: NO\n";
  if (!error.empty()) out += "error: " + error + "\n";
  out += ok() ? "REALCHAOS OK\n" : "REALCHAOS FAILED\n";
  return out;
}

std::string RealChaosSectionJson(const RealChaosOptions& options,
                                 const RealChaosReport& report) {
  char buf[192];
  std::string out = "{\n";
  snprintf(buf, sizeof(buf),
           "    \"mode\": \"%s\", \"schedule\": \"%s\", \"seed\": %llu, "
           "\"duration_s\": %.1f, \"fast_path\": %s, \"durable\": %s,\n",
           ProtocolModeName(options.mode), options.schedule.c_str(),
           static_cast<unsigned long long>(options.seed),
           static_cast<double>(options.duration) / 1e6,
           options.fast_path ? "true" : "false",
           options.durable ? "true" : "false");
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"ops\": {\"invoked\": %llu, \"ok\": %llu, \"failed\": %llu, "
           "\"indeterminate\": %llu, \"failovers\": %llu},\n",
           static_cast<unsigned long long>(report.ops_invoked),
           static_cast<unsigned long long>(report.ops_committed),
           static_cast<unsigned long long>(report.ops_failed),
           static_cast<unsigned long long>(report.ops_indeterminate),
           static_cast<unsigned long long>(report.client_failovers));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"latency_under_fault_ms\": {\"p50\": %.3f, \"p99\": %.3f, "
           "\"max\": %.3f},\n",
           report.latency.P50Millis(), report.latency.P99Millis(),
           ToMillis(report.latency.Max()));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"faults\": {\"total\": %llu, \"dropped\": %llu, "
           "\"blackholed\": %llu, \"corrupted\": %llu, \"delayed\": %llu, "
           "\"links_cut\": %llu,\n",
           static_cast<unsigned long long>(report.proxy.total_faults()),
           static_cast<unsigned long long>(report.proxy.frames_dropped),
           static_cast<unsigned long long>(report.proxy.frames_blackholed),
           static_cast<unsigned long long>(report.proxy.frames_corrupted),
           static_cast<unsigned long long>(report.proxy.frames_delayed),
           static_cast<unsigned long long>(report.proxy.links_closed));
  out += buf;
  snprintf(buf, sizeof(buf),
           "      \"partitions\": %llu, \"pauses\": %llu, \"kills\": %llu, "
           "\"restarts\": %llu, \"corrupt_bursts\": %llu},\n",
           static_cast<unsigned long long>(report.nemesis_partitions),
           static_cast<unsigned long long>(report.nemesis_pauses),
           static_cast<unsigned long long>(report.nemesis_kills),
           static_cast<unsigned long long>(report.nemesis_restarts),
           static_cast<unsigned long long>(report.nemesis_corrupt_bursts));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"tcp\": {\"reconnects\": %llu, \"dropped_frames\": %llu, "
           "\"malformed_frames\": %llu},\n",
           static_cast<unsigned long long>(report.tcp_reconnects),
           static_cast<unsigned long long>(report.tcp_dropped_frames),
           static_cast<unsigned long long>(report.tcp_malformed_frames));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"fast\": {\"commits\": %llu, \"fallbacks\": %llu},\n",
           static_cast<unsigned long long>(report.fast_commits),
           static_cast<unsigned long long>(report.fast_fallbacks));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"ownership\": {\"steals_attempted\": %llu, "
           "\"steals_completed\": %llu, \"steals_rejected\": %llu, "
           "\"rescues\": %llu, \"pingpongs_suppressed\": %llu, "
           "\"steals_won\": %llu, \"records\": %llu},\n",
           static_cast<unsigned long long>(report.steals_attempted),
           static_cast<unsigned long long>(report.steals_completed),
           static_cast<unsigned long long>(report.steals_rejected),
           static_cast<unsigned long long>(report.placement_rescues),
           static_cast<unsigned long long>(report.pingpongs_suppressed),
           static_cast<unsigned long long>(report.steals_won),
           static_cast<unsigned long long>(report.ownership_records));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"disk\": {\"faults_armed\": %llu, \"power_losses\": %llu, "
           "\"wal_fsyncs\": %llu, \"torn_tail_truncations\": %llu},\n",
           static_cast<unsigned long long>(report.nemesis_disk_faults),
           static_cast<unsigned long long>(report.nemesis_power_losses),
           static_cast<unsigned long long>(report.wal_fsyncs),
           static_cast<unsigned long long>(report.wal_torn_tail_truncations));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"checkers\": {\"violations\": %llu, \"keys_checked\": %llu, "
           "\"reads_checked\": %llu, \"writes_checked\": %llu},\n",
           static_cast<unsigned long long>(report.consistency.violations.size()),
           static_cast<unsigned long long>(report.consistency.keys_checked),
           static_cast<unsigned long long>(report.consistency.reads_checked),
           static_cast<unsigned long long>(report.consistency.writes_checked));
  out += buf;
  snprintf(buf, sizeof(buf),
           "    \"soak\": {\"connections\": %u, \"rate_ops\": %.1f, "
           "\"ok\": %llu, \"failed\": %llu, \"conn_errors\": %llu, "
           "\"achieved_ops\": %.1f, \"p99_ms\": %.3f},\n",
           options.soak_connections, options.soak_rate,
           static_cast<unsigned long long>(report.soak_ops_ok),
           static_cast<unsigned long long>(report.soak_ops_failed),
           static_cast<unsigned long long>(report.soak_conn_errors),
           report.soak_achieved_ops, report.soak_p99_ms);
  out += buf;
  out += std::string("    \"converged\": ") +
         (report.converged ? "true" : "false") + ",\n";
  out += std::string("    \"ok\": ") + (report.ok() ? "true" : "false") +
         "\n  }";
  return out;
}

std::string MergeChaosIntoBenchJson(const std::string& existing,
                                    const std::string& chaos_section) {
  const std::string entry = "  \"chaos\": " + chaos_section;
  // No (usable) existing document: emit a fresh one.
  const size_t close = existing.rfind('}');
  if (close == std::string::npos) {
    return "{\n" + entry + "\n}\n";
  }
  std::string head = existing.substr(0, close);
  // Strip a previous chaos section: from its key through its balanced
  // closing brace (and one trailing comma/newline run, if present).
  const size_t key = head.find("\"chaos\":");
  if (key != std::string::npos) {
    size_t start = head.find_last_not_of(" \t", key - 1);
    start = (start == std::string::npos) ? 0 : start + 1;
    size_t pos = head.find('{', key);
    if (pos != std::string::npos) {
      int depth = 0;
      size_t end = pos;
      for (; end < head.size(); ++end) {
        if (head[end] == '{') ++depth;
        if (head[end] == '}' && --depth == 0) break;
      }
      if (depth == 0) {
        ++end;
        while (end < head.size() &&
               (head[end] == ',' || head[end] == '\n' || head[end] == ' ')) {
          ++end;
        }
        head.erase(start, end - start);
      }
    }
  }
  // Ensure the preceding member is comma-terminated.
  size_t last = head.find_last_not_of(" \t\n");
  if (last != std::string::npos && head[last] != ',' && head[last] != '{') {
    head.insert(last + 1, ",");
  }
  if (!head.empty() && head.back() != '\n') head += "\n";
  return head + entry + "\n" + existing.substr(close);
}

}  // namespace dpaxos
