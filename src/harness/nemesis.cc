#include "harness/nemesis.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

Nemesis::Nemesis(Cluster* cluster, uint64_t seed)
    : cluster_(cluster),
      rng_(seed * 0x9e3779b97f4a7c15ULL + 1),
      baseline_(cluster->transport().options()) {
  DPAXOS_CHECK(cluster != nullptr);
}

Nemesis& Nemesis::Add(Duration at, Op op, double arg) {
  DPAXOS_CHECK_MSG(!armed_, "schedule is already armed");
  steps_.push_back(Step{at, op, arg, 0});
  return *this;
}

Nemesis& Nemesis::Repeat(Duration start, Duration period, uint32_t count,
                         Op op, double arg) {
  for (uint32_t i = 0; i < count; ++i) Add(start + i * period, op, arg);
  return *this;
}

std::vector<std::string> Nemesis::ScheduleNames() {
  return {"mixed", "storm", "partitions", "lossy", "moves", "recovery",
          "disk"};
}

bool Nemesis::AddNamedSchedule(const std::string& name, Duration start,
                               Duration horizon) {
  const auto at = [&](double f) {
    return start + static_cast<Duration>(f * static_cast<double>(horizon));
  };
  if (name == "mixed") {
    Add(at(0.05), Op::kCrashNode);
    Add(at(0.10), Op::kLossBurst, 0.10);
    Add(at(0.15), Op::kIsolateZone);
    Add(at(0.20), Op::kMigrateLeaderZone);
    Add(at(0.25), Op::kRestartNode);
    Add(at(0.30), Op::kHealPartitions);
    Add(at(0.35), Op::kCrashNode);
    Add(at(0.45), Op::kHandoff);
    Add(at(0.50), Op::kClearLoss);
    Add(at(0.55), Op::kRestartNode);
    Add(at(0.60), Op::kIsolateZone);
    Add(at(0.65), Op::kMigrateLeaderZone);
    Add(at(0.70), Op::kHealPartitions);
    Add(at(0.75), Op::kElectLeader);
    Add(at(0.80), Op::kRecoverAll);
  } else if (name == "storm") {
    Repeat(at(0.05), at(0.10) - start, 5, Op::kCrashNode);
    Repeat(at(0.20), at(0.15) - start, 4, Op::kRestartNode);
    Add(at(0.30), Op::kIsolateZone);
    Add(at(0.45), Op::kHealPartitions);
    Add(at(0.60), Op::kMigrateLeaderZone);
    Add(at(0.80), Op::kRecoverAll);
    Add(at(0.85), Op::kElectLeader);
  } else if (name == "partitions") {
    Add(at(0.10), Op::kIsolateZone);
    Add(at(0.20), Op::kCrashNode);
    Add(at(0.25), Op::kHealPartitions);
    Add(at(0.30), Op::kIsolateZone);
    Add(at(0.40), Op::kRestartNode);
    Add(at(0.45), Op::kHealPartitions);
    Add(at(0.50), Op::kMigrateLeaderZone);
    Add(at(0.55), Op::kIsolateZone);
    Add(at(0.70), Op::kHealPartitions);
    Add(at(0.75), Op::kElectLeader);
    Add(at(0.80), Op::kRecoverAll);
  } else if (name == "lossy") {
    Add(at(0.05), Op::kLossBurst, 0.15);
    Add(at(0.05), Op::kJitterBurst, 20 * kMillisecond);
    Add(at(0.15), Op::kCrashNode);
    Add(at(0.30), Op::kRestartNodeLossy);
    Add(at(0.35), Op::kClearLoss);
    Add(at(0.40), Op::kIsolateZone);
    Add(at(0.45), Op::kCrashNode);
    Add(at(0.50), Op::kMigrateLeaderZone);
    Add(at(0.55), Op::kHealPartitions);
    Add(at(0.60), Op::kRestartNodeLossy);
    Add(at(0.65), Op::kLossBurst, 0.08);
    Add(at(0.75), Op::kClearLoss);
    Add(at(0.80), Op::kRecoverAll);
  } else if (name == "moves") {
    Add(at(0.10), Op::kMigrateLeaderZone);
    Add(at(0.20), Op::kHandoff);
    Add(at(0.25), Op::kCrashNode);
    Add(at(0.30), Op::kMigrateLeaderZone);
    Add(at(0.35), Op::kIsolateZone);
    Add(at(0.40), Op::kHandoff);
    Add(at(0.45), Op::kRestartNode);
    Add(at(0.50), Op::kHealPartitions);
    Add(at(0.55), Op::kMigrateLeaderZone);
    Add(at(0.65), Op::kHandoff);
    Add(at(0.75), Op::kElectLeader);
    Add(at(0.80), Op::kRecoverAll);
  } else if (name == "recovery") {
    // Exercise the snapshot + compaction + recovery path: logs are
    // repeatedly compacted away, so restarted nodes are forced through
    // snapshot transfers, including corrupted and torn ones.
    Add(at(0.05), Op::kForceCompaction);
    Add(at(0.10), Op::kCrashNode);
    Add(at(0.15), Op::kCorruptSnapshot);
    Add(at(0.20), Op::kRestartNodeLossy);
    Add(at(0.25), Op::kForceCompaction);
    Add(at(0.30), Op::kCrashDuringInstall);
    Add(at(0.40), Op::kIsolateZone);
    Add(at(0.45), Op::kForceCompaction);
    Add(at(0.50), Op::kHealPartitions);
    Add(at(0.55), Op::kCrashNode);
    Add(at(0.60), Op::kCorruptSnapshot);
    Add(at(0.65), Op::kRestartNodeLossy);
    Add(at(0.70), Op::kForceCompaction);
    Add(at(0.75), Op::kElectLeader);
    Add(at(0.80), Op::kRecoverAll);
  } else if (name == "disk") {
    // Durability emphasis: the crash-fault model is the sim twin of the
    // on-disk WAL, so acked writes must ride out lossy restarts and even
    // a whole-cluster power loss (acks only follow sync points).
    Add(at(0.05), Op::kSyncAll);
    Add(at(0.10), Op::kCrashNode);
    Add(at(0.15), Op::kRestartNodeLossy);
    Add(at(0.20), Op::kPowerLossAll);
    Add(at(0.35), Op::kForceCompaction);
    Add(at(0.40), Op::kSyncAll);
    Add(at(0.45), Op::kCrashNode);
    Add(at(0.50), Op::kIsolateZone);
    Add(at(0.55), Op::kRestartNodeLossy);
    Add(at(0.60), Op::kHealPartitions);
    Add(at(0.65), Op::kPowerLossAll);
    Add(at(0.80), Op::kSyncAll);
    Add(at(0.85), Op::kRecoverAll);
  } else {
    return false;
  }
  return true;
}

void Nemesis::Arm() {
  DPAXOS_CHECK_MSG(!armed_, "Arm() called twice");
  armed_ = true;
  bool lossy = false;
  for (const Step& s : steps_) {
    lossy |= (s.op == Op::kRestartNodeLossy ||
              s.op == Op::kCrashDuringInstall || s.op == Op::kPowerLossAll ||
              s.op == Op::kSyncAll);
  }
  if (lossy) {
    for (NodeId n : cluster_->topology().AllNodes()) {
      cluster_->host(n)->storage().set_crash_faults(true);
    }
  }
  for (const Step& step : steps_) {
    cluster_->sim().Schedule(step.at, [this, step] { Execute(step); });
  }
}

void Nemesis::Execute(const Step& step) {
  switch (step.op) {
    case Op::kCrashNode:
      CrashRandomNode();
      break;
    case Op::kRestartNode:
      RestartRandomCrashedNode(/*lose_unsynced=*/false);
      break;
    case Op::kRestartNodeLossy:
      RestartRandomCrashedNode(/*lose_unsynced=*/true);
      break;
    case Op::kRecoverAll:
      RecoverAll();
      break;
    case Op::kIsolateZone:
      IsolateRandomZone();
      break;
    case Op::kHealPartitions:
      HealPartitions();
      break;
    case Op::kLossBurst:
      LossBurst(step.arg);
      break;
    case Op::kJitterBurst:
      JitterBurst(static_cast<Duration>(step.arg));
      break;
    case Op::kClearLoss:
      ClearLoss();
      break;
    case Op::kMigrateLeaderZone:
      MigrateLeaderZoneRandom(step.partition);
      break;
    case Op::kHandoff:
      HandoffRandom(step.partition);
      break;
    case Op::kElectLeader:
      ElectRandomLeader(step.partition);
      break;
    case Op::kForceCompaction:
      ForceCompaction();
      break;
    case Op::kCorruptSnapshot:
      CorruptRandomSnapshot(step.partition);
      break;
    case Op::kSyncAll:
      SyncAll();
      break;
    case Op::kPowerLossAll:
      PowerLossAll(static_cast<Duration>(step.arg));
      break;
    case Op::kCrashDuringInstall: {
      // Tear a node mid-recovery: crash it now, then bring it back with
      // a lossy restart so in-flight snapshot installs lose whatever
      // was not synced. The delay defaults to 100ms.
      if (!CrashRandomNode()) break;
      const Duration delay =
          step.arg > 0 ? static_cast<Duration>(step.arg) : 100 * kMillisecond;
      cluster_->sim().Schedule(delay, [this] {
        RestartRandomCrashedNode(/*lose_unsynced=*/true);
      });
      break;
    }
  }
}

void Nemesis::Note(const std::string& what) {
  std::ostringstream os;
  os << "[t=" << cluster_->sim().Now() / kMillisecond << "ms] " << what;
  action_log_.push_back(os.str());
  DPAXOS_DEBUG("nemesis " << os.str());
}

bool Nemesis::CrashRandomNode() {
  const uint32_t budget = cluster_->options().ft.fd;
  if (budget == 0) return false;
  std::vector<NodeId> candidates;
  for (NodeId n : cluster_->topology().AllNodes()) {
    if (!IsHealthy(n)) continue;
    uint32_t zone_crashed = 0;
    for (NodeId c : crashed_) {
      if (cluster_->topology().ZoneOf(c) == cluster_->topology().ZoneOf(n)) {
        ++zone_crashed;
      }
    }
    if (zone_crashed < budget) candidates.push_back(n);
  }
  if (candidates.empty()) return false;
  const NodeId victim = candidates[rng_.NextBounded(candidates.size())];
  cluster_->transport().Crash(victim);
  crashed_.insert(victim);
  Note("crash node " + std::to_string(victim));
  return true;
}

bool Nemesis::RestartRandomCrashedNode(bool lose_unsynced) {
  if (crashed_.empty()) return false;
  auto it = crashed_.begin();
  std::advance(it, rng_.NextBounded(crashed_.size()));
  const NodeId node = *it;
  crashed_.erase(it);
  cluster_->RestartNode(node, lose_unsynced);
  cluster_->transport().Recover(node);
  if (restart_hook_) restart_hook_(node);
  Note(std::string(lose_unsynced ? "lossy restart node " : "restart node ") +
       std::to_string(node));
  return true;
}

void Nemesis::RecoverAll() {
  while (!crashed_.empty()) {
    RestartRandomCrashedNode(/*lose_unsynced=*/false);
  }
}

bool Nemesis::IsolateRandomZone() {
  const uint32_t limit = std::max<uint32_t>(1, cluster_->options().ft.fz);
  if (isolated_zones_.size() >= limit) return false;
  std::vector<ZoneId> candidates;
  for (ZoneId z = 0; z < cluster_->topology().num_zones(); ++z) {
    if (isolated_zones_.count(z) == 0) candidates.push_back(z);
  }
  if (candidates.empty()) return false;
  const ZoneId zone = candidates[rng_.NextBounded(candidates.size())];
  for (NodeId a : cluster_->topology().NodesInZone(zone)) {
    for (NodeId b : cluster_->topology().AllNodes()) {
      if (cluster_->topology().ZoneOf(b) != zone) {
        cluster_->transport().Partition(a, b);
      }
    }
  }
  isolated_zones_.insert(zone);
  Note("isolate zone " + std::to_string(zone));
  return true;
}

void Nemesis::HealPartitions() {
  cluster_->transport().HealAll();
  isolated_zones_.clear();
  Note("heal partitions");
}

void Nemesis::LossBurst(double p) {
  cluster_->transport().set_drop_probability(p);
  cluster_->transport().set_duplicate_probability(p);
  Note("loss burst p=" + std::to_string(p));
}

void Nemesis::JitterBurst(Duration max_jitter) {
  cluster_->transport().set_max_jitter(max_jitter);
  Note("jitter burst " + std::to_string(max_jitter / kMillisecond) + "ms");
}

void Nemesis::ClearLoss() {
  cluster_->transport().set_drop_probability(baseline_.drop_probability);
  cluster_->transport().set_duplicate_probability(
      baseline_.duplicate_probability);
  cluster_->transport().set_max_jitter(baseline_.max_jitter);
  Note("clear loss bursts");
}

Replica* Nemesis::CurrentLeader(PartitionId partition) const {
  for (NodeId n : cluster_->topology().AllNodes()) {
    Replica* r = cluster_->replica(n, partition);
    if (r != nullptr && r->is_leader() && IsHealthy(n)) return r;
  }
  return nullptr;
}

bool Nemesis::MigrateLeaderZoneRandom(PartitionId partition) {
  Replica* leader = CurrentLeader(partition);
  const ZoneId num_zones = cluster_->topology().num_zones();
  if (num_zones < 2) return false;
  const ZoneId from = leader != nullptr ? leader->zone() : kInvalidZone;
  ZoneId target = static_cast<ZoneId>(rng_.NextBounded(num_zones));
  if (target == from) target = (target + 1) % num_zones;
  if (leader != nullptr && cluster_->mode() == ProtocolMode::kLeaderZone) {
    // The real thing: the Leader-Zone migration synod (paper Section 4.3).
    leader->MigrateLeaderZone(target, [](const Status&) {});
    Note("migrate leader zone -> " + std::to_string(target));
    return true;
  }
  // Other modes move leadership by electing a replica in the target zone.
  for (NodeId n : cluster_->topology().NodesInZone(target)) {
    if (IsHealthy(n)) {
      cluster_->replica(n, partition)->TryBecomeLeader([](const Status&) {});
      Note("force leader move -> node " + std::to_string(n));
      return true;
    }
  }
  return false;
}

bool Nemesis::HandoffRandom(PartitionId partition) {
  Replica* leader = CurrentLeader(partition);
  if (leader == nullptr) return false;
  std::vector<NodeId> candidates;
  for (NodeId n : cluster_->topology().AllNodes()) {
    if (n != leader->id() && IsHealthy(n)) candidates.push_back(n);
  }
  if (candidates.empty()) return false;
  const NodeId to = candidates[rng_.NextBounded(candidates.size())];
  (void)leader->HandoffTo(to);
  Note("handoff " + std::to_string(leader->id()) + " -> " +
       std::to_string(to));
  return true;
}

bool Nemesis::ElectRandomLeader(PartitionId partition) {
  std::vector<NodeId> candidates;
  for (NodeId n : cluster_->topology().AllNodes()) {
    if (IsHealthy(n)) candidates.push_back(n);
  }
  if (candidates.empty()) return false;
  const NodeId node = candidates[rng_.NextBounded(candidates.size())];
  cluster_->replica(node, partition)->TryBecomeLeader([](const Status&) {});
  Note("elect node " + std::to_string(node));
  return true;
}

void Nemesis::ForceCompaction() {
  if (!compaction_hook_) return;
  compaction_hook_();
  Note("force compaction sweep");
}

bool Nemesis::CorruptRandomSnapshot(PartitionId partition) {
  std::vector<Replica*> candidates;
  for (NodeId n : cluster_->topology().AllNodes()) {
    Replica* r = cluster_->replica(n, partition);
    if (r != nullptr && IsHealthy(n)) candidates.push_back(r);
  }
  if (candidates.empty()) return false;
  Replica* victim = candidates[rng_.NextBounded(candidates.size())];
  const bool flip = rng_.NextBounded(2) == 0;
  victim->InjectSnapshotFault(flip ? Replica::SnapshotFault::kBitFlip
                                   : Replica::SnapshotFault::kTruncate);
  Note(std::string(flip ? "arm bit-flip" : "arm truncation") +
       " on next snapshot served by node " + std::to_string(victim->id()));
  return true;
}

void Nemesis::SyncAll() {
  for (NodeId n : cluster_->topology().AllNodes()) {
    if (IsHealthy(n)) cluster_->host(n)->storage().MarkAllSynced();
  }
  Note("sync all storages");
}

void Nemesis::PowerLossAll(Duration restart_after) {
  // Deliberately ignores the per-zone fault budget: a rack power loss
  // does not respect ft. Every node crashes NOW; the delayed wave of
  // lossy restarts rolls each storage back to its last synced image.
  for (NodeId n : cluster_->topology().AllNodes()) {
    if (IsHealthy(n)) {
      cluster_->transport().Crash(n);
      crashed_.insert(n);
    }
  }
  Note("whole-cluster power loss");
  const Duration delay =
      restart_after > 0 ? restart_after : 200 * kMillisecond;
  cluster_->sim().Schedule(delay, [this] {
    while (!crashed_.empty()) {
      RestartRandomCrashedNode(/*lose_unsynced=*/true);
    }
  });
}

void Nemesis::Crash(NodeId node) {
  if (!IsHealthy(node)) return;
  cluster_->transport().Crash(node);
  crashed_.insert(node);
  Note("crash node " + std::to_string(node));
}

void Nemesis::Recover(NodeId node) {
  cluster_->transport().Recover(node);
  crashed_.erase(node);
  Note("recover node " + std::to_string(node));
}

void Nemesis::Restart(NodeId node, bool lose_unsynced) {
  crashed_.erase(node);
  cluster_->RestartNode(node, lose_unsynced);
  cluster_->transport().Recover(node);
  if (restart_hook_) restart_hook_(node);
  Note(std::string(lose_unsynced ? "lossy restart node " : "restart node ") +
       std::to_string(node));
}

void Nemesis::CrashZone(ZoneId zone) {
  for (NodeId n : cluster_->topology().NodesInZone(zone)) Crash(n);
}

void Nemesis::IsolateNodeFromZone(NodeId node, ZoneId zone) {
  for (NodeId n : cluster_->topology().NodesInZone(zone)) {
    if (n != node) cluster_->transport().Partition(node, n);
  }
  Note("isolate node " + std::to_string(node) + " from zone " +
       std::to_string(zone));
}

void Nemesis::Quiesce() {
  RecoverAll();
  HealPartitions();
  ClearLoss();
  Note("quiesce");
}

}  // namespace dpaxos
