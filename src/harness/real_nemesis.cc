#include "harness/real_nemesis.h"

#include <stdio.h>
#include <time.h>

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/logging.h"

namespace dpaxos {

namespace {

Timestamp NowMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * kSecond + ts.tv_nsec / 1000;
}

void SleepMicros(Duration us) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(us / kSecond);
  ts.tv_nsec = static_cast<long>((us % kSecond) * 1000);
  nanosleep(&ts, nullptr);
}

}  // namespace

RealNemesis::RealNemesis(RealCluster* cluster, ChaosProxy* proxy,
                         uint64_t seed)
    : cluster_(cluster), proxy_(proxy), rng_(seed) {
  DPAXOS_CHECK(cluster_ != nullptr);
  DPAXOS_CHECK(proxy_ != nullptr);
}

RealNemesis& RealNemesis::Add(Duration at, Op op, double arg) {
  steps_.push_back(Step{at, op, arg});
  return *this;
}

std::vector<std::string> RealNemesis::ScheduleNames() {
  return {"mixed", "partitions", "process", "lossy", "disk", "mobility"};
}

bool RealNemesis::AddNamedSchedule(const std::string& name, Duration start,
                                   Duration horizon) {
  const uint32_t nodes = cluster_->num_nodes();
  const uint32_t zones = cluster_->options().zones;
  // Victims avoid node 0 (the leader hint; see the header) and the
  // partitioned zone avoids zone 0 for the same reason.
  const NodeId victim =
      nodes > 1 ? 1 + static_cast<NodeId>(rng_.NextBounded(nodes - 1)) : 0;
  const double vzone = zones > 1 ? static_cast<double>(zones - 1) : 0;
  auto at = [&](double frac) {
    return start + static_cast<Duration>(static_cast<double>(horizon) * frac);
  };
  if (name == "mixed") {
    Add(at(0.05), Op::kDelayBurst, 15);
    Add(at(0.15), Op::kPartitionZone, vzone);
    Add(at(0.28), Op::kHeal);
    Add(at(0.32), Op::kPauseNode, victim);
    Add(at(0.44), Op::kResumeNode, victim);
    Add(at(0.48), Op::kCloseLinks);
    Add(at(0.52), Op::kKillNode, victim);
    Add(at(0.58), Op::kCorruptBurst, 0.03);
    Add(at(0.62), Op::kRestartNode, victim);  // rejoins through the burst
    Add(at(0.74), Op::kClearFaults);
    Add(at(0.78), Op::kDropBurst, 0.05);
    Add(at(0.90), Op::kClearFaults);
    return true;
  }
  if (name == "partitions") {
    Add(at(0.10), Op::kPartitionZone, vzone);
    Add(at(0.25), Op::kHeal);
    Add(at(0.40), Op::kPartitionAsym, vzone);
    Add(at(0.55), Op::kHeal);
    Add(at(0.70), Op::kPartitionZone, vzone);
    Add(at(0.85), Op::kHeal);
    return true;
  }
  if (name == "process") {
    Add(at(0.10), Op::kPauseNode, victim);
    Add(at(0.25), Op::kResumeNode, victim);
    Add(at(0.35), Op::kKillNode, victim);
    Add(at(0.45), Op::kRestartNode, victim);
    Add(at(0.60), Op::kPauseNode, victim);
    Add(at(0.72), Op::kResumeNode, victim);
    Add(at(0.80), Op::kCloseLinks);
    return true;
  }
  if (name == "lossy") {
    Add(at(0.05), Op::kDelayBurst, 25);
    Add(at(0.25), Op::kDropBurst, 0.08);
    Add(at(0.40), Op::kClearFaults);
    Add(at(0.45), Op::kCorruptBurst, 0.05);
    Add(at(0.60), Op::kClearFaults);
    Add(at(0.65), Op::kThrottle, 256 * 1024);
    Add(at(0.85), Op::kClearFaults);
    return true;
  }
  if (name == "disk") {
    // The disk joins the fault model. Torn write and fsync EIO both
    // panic the victim (fail-stop); each is followed by a restart that
    // reaps the self-exited process and recovers from its WAL. The
    // finale kills the WHOLE cluster at once and restarts it from the
    // per-node directories alone.
    Add(at(0.05), Op::kDiskLyingFsync, victim);
    Add(at(0.15), Op::kDiskTornWrite, victim);
    Add(at(0.30), Op::kRestartNode, victim);
    Add(at(0.42), Op::kDiskEioSync, victim);
    Add(at(0.55), Op::kRestartNode, victim);
    Add(at(0.70), Op::kPowerLossAll);
    return true;
  }
  if (name == "mobility") {
    // The one schedule that deliberately targets node 0: it assumes the
    // cluster runs with --ownership, where the stalled-partition rescue
    // steal IS the failure detector. Killing the incumbent leader
    // mid-run forces a protocol steal whose incumbent is dead — the
    // thief's StealRequest times out into an ordinary election that
    // still commits the transfer record — and the restart then rejoins
    // as a follower learning the new owner from its own log. A latency
    // burst is laid over the steal window so the handoff happens on
    // degraded links, not a quiet network.
    Add(at(0.10), Op::kDelayBurst, 10);
    Add(at(0.20), Op::kKillNode, 0);
    Add(at(0.55), Op::kClearFaults);
    Add(at(0.65), Op::kRestartNode, 0);
    return true;
  }
  return false;
}

NodeId RealNemesis::ClampNode(double arg) const {
  const uint32_t nodes = cluster_->num_nodes();
  NodeId node = static_cast<NodeId>(arg < 0 ? 0 : arg);
  if (node >= nodes) node = nodes - 1;
  return node;
}

void RealNemesis::Note(const std::string& what) {
  action_log_.push_back(what);
  DPAXOS_INFO("real-nemesis: " << what);
}

void RealNemesis::Execute(const Step& step) {
  switch (step.op) {
    case Op::kPartitionZone: {
      const int32_t zone = static_cast<int32_t>(step.arg);
      LinkSelector out;
      out.src_zone = zone;
      LinkSelector in;
      in.dst_zone = zone;
      LinkFault cut;
      cut.partitioned = true;
      partition_rules_.push_back(proxy_->AddFault(out, cut));
      partition_rules_.push_back(proxy_->AddFault(in, cut));
      ++partitions_;
      Note("partition zone " + std::to_string(zone));
      return;
    }
    case Op::kPartitionAsym: {
      const int32_t zone = static_cast<int32_t>(step.arg);
      LinkSelector in;
      in.dst_zone = zone;
      LinkFault cut;
      cut.partitioned = true;
      partition_rules_.push_back(proxy_->AddFault(in, cut));
      ++partitions_;
      Note("asymmetric partition into zone " + std::to_string(zone));
      return;
    }
    case Op::kHeal: {
      for (uint64_t id : partition_rules_) proxy_->RemoveFault(id);
      partition_rules_.clear();
      Note("heal partitions");
      return;
    }
    case Op::kDelayBurst: {
      LinkFault f;
      f.latency = static_cast<Duration>(step.arg) * kMillisecond;
      f.jitter = f.latency / 2;
      proxy_->AddFault(LinkSelector{}, f);
      Note("delay burst " + std::to_string(step.arg) + "ms");
      return;
    }
    case Op::kDropBurst: {
      LinkFault f;
      f.drop_rate = step.arg;
      proxy_->AddFault(LinkSelector{}, f);
      Note("drop burst p=" + std::to_string(step.arg));
      return;
    }
    case Op::kThrottle: {
      LinkFault f;
      f.bytes_per_sec = static_cast<uint64_t>(step.arg);
      proxy_->AddFault(LinkSelector{}, f);
      Note("throttle " + std::to_string(f.bytes_per_sec) + " B/s");
      return;
    }
    case Op::kCorruptBurst: {
      LinkFault f;
      f.corrupt_rate = step.arg;
      proxy_->AddFault(LinkSelector{}, f);
      ++corrupt_bursts_;
      Note("corruption burst p=" + std::to_string(step.arg));
      return;
    }
    case Op::kClearFaults: {
      proxy_->ClearFaults();
      partition_rules_.clear();
      Note("clear faults");
      return;
    }
    case Op::kKillNode: {
      const NodeId node = ClampNode(step.arg);
      Status st = cluster_->Kill(node);
      if (st.ok()) ++kills_;
      Note("kill node " + std::to_string(node) +
           (st.ok() ? "" : " (skipped: " + st.ToString() + ")"));
      return;
    }
    case Op::kRestartNode: {
      const NodeId node = ClampNode(step.arg);
      // A WAL panic aborts the process on its own; reap the zombie so
      // the respawn below is legal after disk-fault steps too.
      cluster_->ReapIfExited(node);
      // Readiness is probed on the node's REAL endpoint, so a standing
      // proxy fault cannot make a healthy respawn look dead.
      Status st = cluster_->Restart(node, 15 * kSecond);
      if (st.ok()) ++restarts_;
      Note("restart node " + std::to_string(node) +
           (st.ok() ? "" : " (failed: " + st.ToString() + ")"));
      return;
    }
    case Op::kPauseNode: {
      const NodeId node = ClampNode(step.arg);
      Status st = cluster_->Pause(node);
      if (st.ok()) ++pauses_;
      Note("pause node " + std::to_string(node) +
           (st.ok() ? "" : " (skipped: " + st.ToString() + ")"));
      return;
    }
    case Op::kResumeNode: {
      const NodeId node = ClampNode(step.arg);
      Status st = cluster_->Resume(node);
      Note("resume node " + std::to_string(node) +
           (st.ok() ? "" : " (skipped: " + st.ToString() + ")"));
      return;
    }
    case Op::kCloseLinks: {
      proxy_->CloseLinks(LinkSelector{});
      Note("close all links");
      return;
    }
    case Op::kDiskTornWrite: {
      const NodeId node = ClampNode(step.arg);
      const bool armed = ArmDiskFault(node, "short_write=1\n");
      Note("arm torn write on node " + std::to_string(node) +
           (armed ? "" : " (skipped: not durable)"));
      return;
    }
    case Op::kDiskEioSync: {
      const NodeId node = ClampNode(step.arg);
      const bool armed = ArmDiskFault(node, "eio_syncs=1\n");
      Note("arm fsync EIO on node " + std::to_string(node) +
           (armed ? "" : " (skipped: not durable)"));
      return;
    }
    case Op::kDiskLyingFsync: {
      const NodeId node = ClampNode(step.arg);
      const bool armed = ArmDiskFault(node, "lying_syncs=4\n");
      Note("arm lying fsyncs on node " + std::to_string(node) +
           (armed ? "" : " (skipped: not durable)"));
      return;
    }
    case Op::kPowerLossAll: {
      if (cluster_->node_data_dir(0).empty()) {
        // Without WAL directories nothing would survive: a power loss
        // on a volatile cluster is state wipe, not a durability test.
        Note("power loss skipped: cluster not durable");
        return;
      }
      for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
        cluster_->ReapIfExited(n);
        if (cluster_->alive(n) && cluster_->Kill(n).ok()) ++kills_;
      }
      ++power_losses_;
      Note("whole-cluster power loss");
      for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
        Status st = cluster_->Restart(n, 15 * kSecond);
        if (st.ok()) ++restarts_;
        Note("power-loss restart node " + std::to_string(n) +
             (st.ok() ? "" : " (failed: " + st.ToString() + ")"));
      }
      return;
    }
  }
}

bool RealNemesis::ArmDiskFault(NodeId node, const std::string& line) {
  const std::string dir = cluster_->node_data_dir(node);
  if (dir.empty()) return false;
  const std::string tmp = dir + "/FAULTS.tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = fwrite(line.data(), 1, line.size(), f) == line.size();
  fclose(f);
  if (!wrote || rename(tmp.c_str(), (dir + "/FAULTS").c_str()) != 0) {
    remove(tmp.c_str());
    return false;
  }
  ++disk_faults_armed_;
  return true;
}

void RealNemesis::Run() {
  std::stable_sort(
      steps_.begin(), steps_.end(),
      [](const Step& a, const Step& b) { return a.at < b.at; });
  const Timestamp origin = NowMicros();
  for (const Step& step : steps_) {
    const Timestamp due = origin + step.at;
    const Timestamp now = NowMicros();
    if (due > now) SleepMicros(due - now);
    Execute(step);
  }
}

void RealNemesis::Quiesce() {
  proxy_->ClearFaults();
  partition_rules_.clear();
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->alive(n) && cluster_->paused(n)) {
      cluster_->Resume(n);
      Note("quiesce: resume node " + std::to_string(n));
    }
  }
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    cluster_->ReapIfExited(n);  // a WAL panic leaves a zombie behind
    if (!cluster_->alive(n)) {
      Status st = cluster_->Restart(n, 15 * kSecond);
      Note("quiesce: restart node " + std::to_string(n) +
           (st.ok() ? "" : " (failed: " + st.ToString() + ")"));
    }
  }
}

}  // namespace dpaxos
