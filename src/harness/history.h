// Jepsen-style operation history: every client request is recorded as an
// invoke event and (usually) a completion event with virtual timestamps,
// producing the input for the linearizability and session-guarantee
// checkers (src/harness/lin_checker.h).
#ifndef DPAXOS_HARNESS_HISTORY_H_
#define DPAXOS_HARNESS_HISTORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace dpaxos {

/// \brief Final disposition of a recorded operation.
enum class HistoryOutcome : uint8_t {
  kPending = 0,       // invoked, never completed (treated as indeterminate)
  kOk = 1,            // definitely took effect (reads: value observed)
  kFail = 2,          // definitely did not take effect
  kIndeterminate = 3  // may or may not have taken effect, any time later
};

/// \brief One single-key client operation, from invoke to completion.
struct HistoryOp {
  uint64_t client_id = 0;
  uint64_t seq = 0;
  bool is_read = false;
  std::string key;
  std::string written;  // writes: the value put
  std::optional<std::string> observed;  // reads: the value seen (nullopt =
                                        // key absent)
  Timestamp invoke = 0;
  Timestamp complete = 0;  // meaningless while outcome == kPending
  HistoryOutcome outcome = HistoryOutcome::kPending;
  SlotId slot = 0;                // writes: commit slot when known
  SlotId observed_watermark = 0;  // reads: applied prefix length observed
  bool local_read = false;        // served under a lease
};

/// \brief Append-only recorder shared by all clients of one chaos run.
class HistoryRecorder {
 public:
  /// Record an invocation; returns the op's index for Complete().
  size_t Invoke(uint64_t client_id, uint64_t seq, bool is_read,
                std::string key, std::string written, Timestamp now) {
    HistoryOp op;
    op.client_id = client_id;
    op.seq = seq;
    op.is_read = is_read;
    op.key = std::move(key);
    op.written = std::move(written);
    op.invoke = now;
    ops_.push_back(std::move(op));
    return ops_.size() - 1;
  }

  void Complete(size_t index, HistoryOutcome outcome, Timestamp now) {
    HistoryOp& op = ops_[index];
    op.outcome = outcome;
    op.complete = now;
  }

  HistoryOp& op(size_t index) { return ops_[index]; }
  const std::vector<HistoryOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  uint64_t CountOutcome(HistoryOutcome o) const {
    uint64_t n = 0;
    for (const HistoryOp& op : ops_) n += (op.outcome == o) ? 1 : 0;
    return n;
  }

 private:
  std::vector<HistoryOp> ops_;
};

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_HISTORY_H_
