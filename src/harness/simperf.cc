#include "harness/simperf.h"

#include <sys/resource.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/chaos.h"
#include "harness/cluster.h"
#include "harness/load_driver.h"

namespace dpaxos {

namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

long PeakRssKb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// Time one phase, attributing the perf-counter delta to it.
template <typename Fn>
void RunPhase(SimperfReport* report, const std::string& name, Fn&& body) {
  const PerfCounters before = SnapshotPerfCounters();
  const auto start = std::chrono::steady_clock::now();
  body();
  SimperfPhase phase;
  phase.name = name;
  phase.wall_ms = WallMsSince(start);
  const PerfCounters delta = SnapshotPerfCounters().DeltaSince(before);
  phase.events = delta.events_executed;
  phase.messages = delta.messages_sent;
  report->phases.push_back(phase);
}

/// One closed-loop phase: the paper's seven-zone deployment driven at
/// window=32 from zone 0 (heavy timer + message traffic; leases off so
/// every request crosses the replication pipeline).
void RunLoadPhase(ProtocolMode mode, const SimperfOptions& options,
                  Duration duration) {
  ClusterOptions cluster_options;
  cluster_options.ft = FaultTolerance{1, 0};
  cluster_options.seed = options.seed;
  cluster_options.replica.max_inflight = 32;
  cluster_options.replica.decide_policy = DecidePolicy::kQuorum;
  Cluster cluster(Topology::AwsSevenZones(), mode, cluster_options);

  Replica* proposer = cluster.ReplicaInZone(0);
  Result<Duration> elected = cluster.ElectLeader(proposer->id());
  if (!elected.ok()) {
    std::cerr << "simperf: election failed for "
              << ProtocolModeName(mode) << ": "
              << elected.status().ToString() << "\n";
    std::abort();
  }

  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = duration;
  load.window = 32;
  const LoadResult result = RunClosedLoop(cluster, proposer, load);
  if (result.committed == 0) {
    std::cerr << "simperf: no commits in " << ProtocolModeName(mode)
              << " phase — workload broken\n";
    std::abort();
  }
}

/// One chaos cell: nemesis faults, retrying clients, full checker stack —
/// the most closure- and timer-heavy path in the repo.
void RunChaosPhase(const SimperfOptions& options, Duration duration) {
  ChaosOptions chaos;
  chaos.mode = ProtocolMode::kLeaderZone;
  chaos.schedule = "mixed";
  chaos.seed = options.seed;
  chaos.duration = duration;
  const ChaosReport report = RunChaos(chaos);
  if (!report.ok()) {
    std::cerr << "simperf: chaos cell failed consistency: "
              << report.Summary() << "\n";
    std::abort();
  }
}

}  // namespace

SimperfReport RunSimperf(const SimperfOptions& options) {
  SimperfReport report;
  const Duration load_duration =
      options.smoke ? 2 * kSecond : 15 * kSecond;
  const Duration chaos_duration =
      options.smoke ? 4 * kSecond : 20 * kSecond;

  const PerfCounters before = SnapshotPerfCounters();
  const auto start = std::chrono::steady_clock::now();

  for (ProtocolMode mode : {ProtocolMode::kLeaderZone,
                            ProtocolMode::kDelegate,
                            ProtocolMode::kMultiPaxos}) {
    RunPhase(&report,
             std::string("load/") + ProtocolModeName(mode) + "/w32",
             [&] { RunLoadPhase(mode, options, load_duration); });
  }
  RunPhase(&report, "chaos/leaderzone/mixed",
           [&] { RunChaosPhase(options, chaos_duration); });

  report.wall_ms = WallMsSince(start);
  report.counters = SnapshotPerfCounters().DeltaSince(before);
  report.events = report.counters.events_executed;
  report.messages = report.counters.messages_sent;
  report.bytes = report.counters.bytes_sent;
  report.peak_rss_kb = PeakRssKb();
  return report;
}

std::string SimperfReport::ToJson(double baseline_events_per_sec) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"baseline\": {\"events_per_sec\": " << baseline_events_per_sec
      << "},\n";
  out << "  \"current\": {\n"
      << "    \"events_per_sec\": " << EventsPerSec() << ",\n"
      << "    \"msgs_per_sec\": " << MessagesPerSec() << ",\n"
      << "    \"wall_ms\": " << wall_ms << ",\n"
      << "    \"peak_rss_kb\": " << peak_rss_kb << ",\n"
      << "    \"events\": " << events << ",\n"
      << "    \"messages\": " << messages << ",\n"
      << "    \"bytes\": " << bytes << ",\n"
      << "    \"slab_growths\": " << counters.slab_growths << ",\n"
      << "    \"callable_heap_allocs\": " << counters.callable_heap_allocs
      << ",\n"
      << "    \"deliveries_coalesced\": " << counters.deliveries_coalesced
      << "\n  },\n";
  out << "  \"speedup_vs_baseline\": "
      << (baseline_events_per_sec > 0
              ? EventsPerSec() / baseline_events_per_sec
              : 0)
      << ",\n";
  out << "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const SimperfPhase& p = phases[i];
    out << "    {\"name\": \"" << p.name << "\", \"wall_ms\": " << p.wall_ms
        << ", \"events\": " << p.events << ", \"messages\": " << p.messages
        << "}" << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

bool WriteSimperfJson(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "simperf: cannot write " << path << "\n";
    return false;
  }
  out << json;
  return true;
}

}  // namespace dpaxos
