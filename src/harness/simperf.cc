#include "harness/simperf.h"

#include <sys/resource.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/check.h"
#include "common/histogram.h"
#include "directory/sharded_store.h"
#include "harness/chaos.h"
#include "harness/cluster.h"
#include "harness/load_driver.h"
#include "sim/shard_runner.h"
#include "workload/mobility.h"

namespace dpaxos {

namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

long PeakRssKb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// Workload hints for every simperf cluster: peaks measured empirically
/// with margin, so a full run reports zero slab/pool growth (asserted by
/// tests/perf_counters_test.cc).
void PresizeForSimperf(ClusterOptions* options, uint32_t partitions) {
  options->expected_pending_events = 16384 + 2048 * partitions;
  options->transport.initial_delivery_batches = 8192 + 512 * partitions;
}

/// Time one phase, attributing the perf-counter delta to it.
template <typename Fn>
void RunPhase(SimperfReport* report, const std::string& name, Fn&& body) {
  const PerfCounters before = SnapshotPerfCounters();
  const auto start = std::chrono::steady_clock::now();
  body();
  SimperfPhase phase;
  phase.name = name;
  phase.wall_ms = WallMsSince(start);
  const PerfCounters delta = SnapshotPerfCounters().DeltaSince(before);
  phase.events = delta.events_executed;
  phase.messages = delta.messages_sent;
  report->phases.push_back(phase);
}

/// One closed-loop phase: the paper's seven-zone deployment driven at
/// window=32 from zone 0 (heavy timer + message traffic; leases off so
/// every request crosses the replication pipeline).
void RunLoadPhase(ProtocolMode mode, const SimperfOptions& options,
                  Duration duration) {
  ClusterOptions cluster_options;
  cluster_options.ft = FaultTolerance{1, 0};
  cluster_options.seed = options.seed;
  cluster_options.replica.max_inflight = 32;
  cluster_options.replica.decide_policy = DecidePolicy::kQuorum;
  PresizeForSimperf(&cluster_options, 1);
  Cluster cluster(Topology::AwsSevenZones(), mode, cluster_options);

  Replica* proposer = cluster.ReplicaInZone(0);
  Result<Duration> elected = cluster.ElectLeader(proposer->id());
  if (!elected.ok()) {
    std::cerr << "simperf: election failed for "
              << ProtocolModeName(mode) << ": "
              << elected.status().ToString() << "\n";
    std::abort();
  }

  LoadOptions load;
  load.batch_bytes = 1024;
  load.duration = duration;
  load.window = 32;
  const LoadResult result = RunClosedLoop(cluster, proposer, load);
  if (result.committed == 0) {
    std::cerr << "simperf: no commits in " << ProtocolModeName(mode)
              << " phase — workload broken\n";
    std::abort();
  }
}

/// One chaos cell: nemesis faults, retrying clients, full checker stack —
/// the most closure- and timer-heavy path in the repo.
void RunChaosPhase(const SimperfOptions& options, Duration duration) {
  ChaosOptions chaos;
  chaos.mode = ProtocolMode::kLeaderZone;
  chaos.schedule = "mixed";
  chaos.seed = options.seed;
  chaos.duration = duration;
  const ChaosReport report = RunChaos(chaos);
  if (!report.ok()) {
    std::cerr << "simperf: chaos cell failed consistency: "
              << report.Summary() << "\n";
    std::abort();
  }
}

// --- shard-parallel workload -------------------------------------------

/// FNV-1a, the repo's stable fingerprint primitive.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ULL;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

/// Deterministic results a shard body reports beside its counter delta.
struct ShardWork {
  uint32_t partitions = 0;
  uint64_t committed = 0;
  Timestamp virtual_end = 0;
};

/// Contiguous [first, first+count) slice of the global partition space
/// owned by `shard_id`, remainder spread over the lowest shard ids.
void ShardPartitionRange(const SimperfOptions& options, uint32_t shard_id,
                         uint32_t* first, uint32_t* count) {
  const uint32_t base = options.partitions / options.shards;
  const uint32_t remainder = options.partitions % options.shards;
  *count = base + (shard_id < remainder ? 1 : 0);
  *first = shard_id * base + std::min(shard_id, remainder);
}

/// Deterministic key that ShardedStore hashes onto `partition`.
std::string KeyForPartition(const ShardedStore& store,
                            PartitionId partition) {
  for (uint64_t i = 0;; ++i) {
    std::string key = "k" + std::to_string(i);
    if (store.PartitionOf(key) == partition) return key;
  }
}

/// One shard: a full seven-zone cluster hosting this shard's partitions,
/// (1) leaders claimed through the ShardedStore (spread across zones),
/// (2) every partition driven closed-loop concurrently, (3) rounds of
/// keyed transactions from rotating zones so the WPaxos-style stealing
/// layer migrates partitions. Everything below is a pure function of
/// ctx.seed and the workload shape.
void RunShardWorkload(const SimperfOptions& options, const ShardContext& ctx,
                      ShardWork* out) {
  uint32_t first = 0;
  uint32_t count = 0;
  ShardPartitionRange(options, ctx.shard_id, &first, &count);
  DPAXOS_CHECK_GT(count, 0u);
  out->partitions = count;

  const Duration load_duration =
      options.smoke ? 1 * kSecond : 4 * kSecond;

  ClusterOptions cluster_options;
  cluster_options.ft = FaultTolerance{1, 0};
  cluster_options.seed = ctx.seed;
  cluster_options.replica.max_inflight = std::max(32u, options.window);
  cluster_options.replica.decide_policy = DecidePolicy::kQuorum;
  // Steal elections after the load phase recover the undecided tail of
  // a long log (the store catches the thief up first, but the in-flight
  // window still crosses the WAN in the promises); at the default 2s
  // le_timeout a slow recovery fails mid-flight, preempting the
  // incumbent's ballot and leaving the partition leaderless. Give the
  // elections room instead — the bound only matters on actual failure.
  cluster_options.replica.le_timeout = 30 * kSecond;
  cluster_options.partitions.clear();
  for (uint32_t p = 0; p < count; ++p) {
    cluster_options.partitions.push_back(first + p);
  }
  PresizeForSimperf(&cluster_options, count);
  Cluster cluster(Topology::AwsSevenZones(), ProtocolMode::kLeaderZone,
                  cluster_options);
  const uint32_t zones = cluster.topology().num_zones();

  ShardedStore::Options store_options;
  store_options.num_partitions = count;
  store_options.min_improvement = 0.2;
  store_options.min_weight = 2.0;
  ShardedStore store(
      &cluster.sim(), &cluster.topology(),
      [&cluster, first](NodeId n, PartitionId p) {
        return cluster.replica(n, first + p);
      },
      store_options);

  // Keys are a function of the hash and partition count only — identical
  // across shards of equal size, which is fine: clusters are disjoint.
  std::vector<std::string> keys;
  keys.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    keys.push_back(KeyForPartition(store, p));
  }

  uint64_t txn_id = 0;
  // Execute one keyed put synchronously (drives the shard's simulator).
  auto run_txn = [&](uint32_t local_partition, ZoneId zone) {
    Transaction txn;
    txn.id = ++txn_id;
    txn.ops = {Operation::Put(keys[local_partition], "v")};
    std::optional<Status> done;
    store.Execute(txn, zone, [&](const Status& st, Duration) { done = st; });
    while (!done.has_value() && cluster.sim().Step()) {
    }
    if (done.has_value() && done->ok()) ++out->committed;
  };

  // Phase 1 — claim: each partition's first access comes from a zone
  // spread by shard id and partition index, so ownership starts scattered
  // across the deployment like a real multi-tenant key space.
  for (uint32_t p = 0; p < count; ++p) {
    run_txn(p, static_cast<ZoneId>((ctx.shard_id + p) % zones));
  }

  // Phase 2 — closed-loop load at every partition's owner concurrently.
  // The aggregate client population is window * count, split by
  // SplitLoad so it scales with the shard's slice of the key space.
  std::vector<Replica*> proposers;
  proposers.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    const NodeId owner = store.LeaderOf(p);
    DPAXOS_CHECK_NE(owner, kInvalidNode);
    proposers.push_back(cluster.replica(owner, first + p));
  }
  LoadOptions base;
  base.batch_bytes = 1024;
  base.duration = load_duration;
  base.window = options.window * count;
  const std::vector<LoadResult> results =
      RunClosedLoops(cluster, proposers, SplitLoad(base, count));
  for (const LoadResult& r : results) out->committed += r.committed;

  // Phase 3 — stealing: rounds of accesses from rotating zones shift
  // each partition's access locality until the placement advisor moves
  // it (store_steals / store_partition_migrations counters).
  // Enough rotated-zone accesses to outweigh the (duration-scaled)
  // owner-zone history the closed-loop phase left in the stats.
  const uint32_t rounds = 3;
  const uint32_t accesses_per_round = options.smoke ? 4 : 16;
  for (uint32_t r = 0; r < rounds; ++r) {
    for (uint32_t p = 0; p < count; ++p) {
      const ZoneId zone =
          static_cast<ZoneId>((ctx.shard_id + p + 2 * (r + 1)) % zones);
      for (uint32_t a = 0; a < accesses_per_round; ++a) run_txn(p, zone);
    }
  }

  out->virtual_end = cluster.sim().Now();
}

uint64_t ShardFingerprint(const SimperfShard& shard,
                          const PerfCounters& counters) {
  Fnv fnv;
  fnv.Mix(shard.shard_id);
  fnv.Mix(shard.seed);
  fnv.Mix(shard.partitions);
  fnv.Mix(shard.committed);
  fnv.Mix(shard.virtual_end);
#define DPAXOS_PERF_MIX(field) fnv.Mix(counters.field);
  DPAXOS_PERF_COUNTER_FIELDS(DPAXOS_PERF_MIX)
#undef DPAXOS_PERF_MIX
  return fnv.h;
}

void AppendShardLine(std::ostringstream& out, const SimperfShard& s) {
  out << "shard " << s.shard_id << ": seed=" << s.seed
      << " partitions=" << s.partitions << " events=" << s.events
      << " messages=" << s.messages << " bytes=" << s.bytes
      << " committed=" << s.committed << " steals=" << s.steals
      << " migrations=" << s.migrations
      << " snapshot_transfers=" << s.snapshot_transfers
      << " snapshot_bytes=" << s.snapshot_bytes
      << " virtual_end=" << s.virtual_end
      << " fp=" << s.fingerprint << "\n";
}

}  // namespace

SimperfReport RunSimperf(const SimperfOptions& options) {
  SimperfReport report;
  const Duration load_duration =
      options.smoke ? 2 * kSecond : 15 * kSecond;
  const Duration chaos_duration =
      options.smoke ? 4 * kSecond : 20 * kSecond;

  const PerfCounters before = SnapshotPerfCounters();
  const auto start = std::chrono::steady_clock::now();

  for (ProtocolMode mode : {ProtocolMode::kLeaderZone,
                            ProtocolMode::kDelegate,
                            ProtocolMode::kMultiPaxos}) {
    RunPhase(&report,
             std::string("load/") + ProtocolModeName(mode) + "/w32",
             [&] { RunLoadPhase(mode, options, load_duration); });
  }
  RunPhase(&report, "chaos/leaderzone/mixed",
           [&] { RunChaosPhase(options, chaos_duration); });

  report.wall_ms = WallMsSince(start);
  report.counters = SnapshotPerfCounters().DeltaSince(before);
  report.events = report.counters.events_executed;
  report.messages = report.counters.messages_sent;
  report.bytes = report.counters.bytes_sent;
  report.peak_rss_kb = PeakRssKb();
  return report;
}

ShardedSimperfReport RunSimperfSharded(const SimperfOptions& options) {
  DPAXOS_CHECK_GT(options.shards, 0u);
  DPAXOS_CHECK_GE(options.partitions, options.shards);
  DPAXOS_CHECK_GE(options.window, 1u);

  ShardedSimperfReport report;
  report.shards = options.shards;
  report.partitions = options.partitions;
  report.window = options.window;

  ShardSetOptions pool;
  pool.shards = options.shards;
  pool.threads = options.threads;
  pool.master_seed = options.seed;
  ShardSet set(pool);
  report.threads = set.threads();

  std::vector<ShardWork> work(options.shards);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ShardResult> results = set.Run(
      [&options, &work](const ShardContext& ctx) {
        RunShardWorkload(options, ctx, &work[ctx.shard_id]);
      });
  report.wall_ms = WallMsSince(start);

  report.per_shard.reserve(options.shards);
  for (uint32_t i = 0; i < options.shards; ++i) {
    const ShardResult& r = results[i];
    SimperfShard shard;
    shard.shard_id = r.shard_id;
    shard.seed = r.seed;
    shard.partitions = work[i].partitions;
    shard.wall_ms = r.wall_ms;
    shard.events = r.counters.events_executed;
    shard.messages = r.counters.messages_sent;
    shard.bytes = r.counters.bytes_sent;
    shard.committed = work[i].committed;
    shard.steals = r.counters.store_steals;
    shard.migrations = r.counters.store_partition_migrations;
    shard.snapshot_transfers = r.counters.store_snapshot_transfers;
    shard.snapshot_bytes = r.counters.store_snapshot_bytes;
    shard.virtual_end = work[i].virtual_end;
    shard.fingerprint = ShardFingerprint(shard, r.counters);
    report.per_shard.push_back(shard);

    report.counters.Add(r.counters);
    report.events += shard.events;
    report.messages += shard.messages;
    report.bytes += shard.bytes;
    report.committed += shard.committed;
    report.steals += shard.steals;
    report.migrations += shard.migrations;
    report.snapshot_transfers += shard.snapshot_transfers;
    report.snapshot_bytes += shard.snapshot_bytes;
  }
  report.peak_rss_kb = PeakRssKb();
  return report;
}

uint64_t ShardedSimperfReport::Fingerprint() const {
  Fnv fnv;
  for (const SimperfShard& s : per_shard) fnv.Mix(s.fingerprint);
  return fnv.h;
}

std::string ShardedSimperfReport::DeterminismString() const {
  std::ostringstream out;
  out << "sharded-simperf v1 shards=" << shards
      << " partitions=" << partitions << " window=" << window << "\n";
  for (const SimperfShard& s : per_shard) AppendShardLine(out, s);
  out << "aggregate: events=" << events << " messages=" << messages
      << " bytes=" << bytes << " committed=" << committed
      << " steals=" << steals << " migrations=" << migrations
      << " snapshot_transfers=" << snapshot_transfers
      << " snapshot_bytes=" << snapshot_bytes
      << " fp=" << Fingerprint() << "\n";
  return out.str();
}

double SimperfScaling::SpeedupAt(uint32_t t) const {
  for (const SimperfScalingPoint& p : points) {
    if (p.threads == t) return p.speedup_vs_one_thread;
  }
  return 0;
}

SimperfScaling RunSimperfScaling(
    const SimperfOptions& options,
    const std::vector<uint32_t>& thread_counts) {
  DPAXOS_CHECK(!thread_counts.empty());
  SimperfScaling scaling;
  scaling.shards = options.shards;
  scaling.partitions = options.partitions;
  scaling.window = options.window;
  scaling.hardware_threads = ShardSet::HardwareThreads();
  scaling.deterministic_across_threads = true;

  std::string golden;
  for (uint32_t threads : thread_counts) {
    SimperfOptions point_options = options;
    point_options.threads = threads;
    const ShardedSimperfReport report = RunSimperfSharded(point_options);
    if (golden.empty()) {
      golden = report.DeterminismString();
      scaling.fingerprint = report.Fingerprint();
    } else if (report.DeterminismString() != golden) {
      // Thread-count invariance is a hard engine guarantee, not a
      // statistical property — a mismatch means cross-shard state leaked.
      scaling.deterministic_across_threads = false;
      DPAXOS_CHECK_MSG(false,
                       "sharded simperf diverged at threads="
                           << report.threads
                           << " — shard isolation is broken");
    }
    SimperfScalingPoint point;
    point.threads = report.threads;
    point.wall_ms = report.wall_ms;
    point.events_per_sec = report.EventsPerSec();
    scaling.points.push_back(point);
  }
  const double base = scaling.points.front().events_per_sec;
  for (SimperfScalingPoint& p : scaling.points) {
    p.speedup_vs_one_thread = base > 0 ? p.events_per_sec / base : 0;
  }
  return scaling;
}

namespace {

/// One mobility cell: a single client touring zones 0 -> 1 -> 2 over a
/// uniform 3-zone topology, one partition behind a ShardedStore. The
/// adaptive variant runs the ownership/stealing layer; the static one
/// claims the partition in zone 0 and never moves it.
SimperfMobilityCell RunMobilityCellSim(const SimperfOptions& options,
                                       bool adaptive) {
  const Duration dwell = options.smoke ? 20 * kSecond : 60 * kSecond;
  const Duration think = 400 * kMillisecond;

  SimperfMobilityCell cell;
  cell.label = adaptive ? "adaptive" : "static";
  cell.adaptive = adaptive;
  const PerfCounters perf_before = SnapshotPerfCounters();

  const Topology topology = Topology::Uniform(/*zones=*/3,
                                              /*nodes_per_zone=*/2,
                                              /*inter_zone_rtt_ms=*/80.0,
                                              /*intra_zone_rtt_ms=*/4.0);
  ClusterOptions cluster_options;
  cluster_options.ft = FaultTolerance{0, 0};
  cluster_options.seed = options.seed;
  cluster_options.replica.decide_policy = DecidePolicy::kQuorum;
  // Handoff elections recover a long undecided tail; the default bound
  // preempts them mid-flight (see RunShardWorkload).
  cluster_options.replica.le_timeout = 30 * kSecond;
  cluster_options.partitions = {0};
  PresizeForSimperf(&cluster_options, 1);
  Cluster cluster(topology, ProtocolMode::kLeaderZone, cluster_options);

  ShardedStore::Options store_options;
  store_options.num_partitions = 1;
  store_options.min_improvement = 0.2;
  store_options.min_weight = 3.0;
  store_options.stats_half_life = 10 * kSecond;
  store_options.auto_steal = adaptive;
  store_options.ownership = adaptive;
  store_options.steal_cooldown = 5 * kSecond;
  ShardedStore store(
      &cluster.sim(), &cluster.topology(),
      [&cluster](NodeId n, PartitionId p) { return cluster.replica(n, p); },
      store_options);
  const std::string key = KeyForPartition(store, 0);

  const MobilitySchedule tour = MobilitySchedule::Tour({0, 1, 2}, dwell);
  const size_t num_segments = tour.segments().size();
  std::vector<Histogram> full(num_segments);
  std::vector<Histogram> tail(num_segments);

  uint64_t txn_id = 0;
  const uint64_t total_ops =
      static_cast<uint64_t>(num_segments) * (dwell / think);
  for (uint64_t i = 0; i < total_ops; ++i) {
    const Timestamp tick = static_cast<Timestamp>(i) * think;
    // A steal + election near a segment boundary can outlast the think
    // time, leaving Now() past the next tick; issue the op immediately
    // rather than rewinding the clock.
    if (tick > cluster.sim().Now()) cluster.sim().RunUntil(tick);
    const ZoneId zone = tour.ZoneAt(tick);
    const size_t segment = static_cast<size_t>(tick / dwell);

    Transaction txn;
    txn.id = ++txn_id;
    txn.ops = {Operation::Put(key, "v")};
    std::optional<Status> done;
    const Timestamp t0 = cluster.sim().Now();
    store.Execute(txn, zone,
                  [&done](const Status& st, Duration) { done = st; });
    while (!done.has_value() && cluster.sim().Step()) {
    }
    if (!done.has_value() || !done->ok()) continue;
    // Client-perceived commit latency in virtual time, forwarding and
    // handoffs included.
    const Duration latency = cluster.sim().Now() - t0;
    full[segment].Add(latency);
    const Timestamp segment_start = static_cast<Timestamp>(segment) * dwell;
    if (tick >= segment_start + dwell / 2) tail[segment].Add(latency);
  }

  for (size_t s = 0; s < num_segments; ++s) {
    SimperfMobilitySegment seg;
    seg.zone = tour.segments()[s].zone;
    seg.ops = full[s].count();
    seg.p50_ms = full[s].P50Millis();
    seg.p99_ms = full[s].P99Millis();
    seg.tail_ops = tail[s].count();
    seg.tail_p50_ms = tail[s].P50Millis();
    seg.tail_p99_ms = tail[s].P99Millis();
    cell.segments.push_back(seg);
  }
  cell.steals = store.steals();
  cell.ownership_records = store.directory().records_observed();
  const PerfCounters delta =
      SnapshotPerfCounters().DeltaSince(perf_before);
  cell.steals_attempted = delta.placement_steals_attempted;
  cell.steals_completed = delta.placement_steals_completed;
  cell.steals_rejected = delta.placement_steals_rejected;
  cell.pingpongs_suppressed = delta.placement_pingpongs_suppressed;
  return cell;
}

}  // namespace

SimperfMobilityReport RunSimperfMobility(const SimperfOptions& options) {
  SimperfMobilityReport report;
  report.zones = 3;
  report.inter_zone_rtt_ms = 80.0;
  report.intra_zone_rtt_ms = 4.0;
  for (bool adaptive : {false, true}) {
    report.cells.push_back(RunMobilityCellSim(options, adaptive));
  }
  // The gate: once the client settles in a new zone (second half of each
  // post-move segment), the adaptive cell commits near-local while the
  // static leader keeps paying the WAN forward.
  const SimperfMobilityCell& fixed = report.cells[0];
  const SimperfMobilityCell& adaptive = report.cells[1];
  bool ok = adaptive.steals >= 2 && adaptive.ownership_records >= 2 &&
            fixed.segments.size() == adaptive.segments.size();
  for (size_t s = 1; ok && s < adaptive.segments.size(); ++s) {
    ok = adaptive.segments[s].tail_ops > 0 &&
         fixed.segments[s].tail_ops > 0 &&
         adaptive.segments[s].tail_p50_ms * 2 <
             fixed.segments[s].tail_p50_ms;
  }
  report.adaptive_tracks_client = ok;
  return report;
}

std::string SimperfJson(const SimperfReport& report,
                        double baseline_events_per_sec,
                        const SimperfJsonExtras& extras) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"baseline\": {\"events_per_sec\": " << baseline_events_per_sec
      << "},\n";
  out << "  \"current\": {\n"
      << "    \"events_per_sec\": " << report.EventsPerSec() << ",\n"
      << "    \"msgs_per_sec\": " << report.MessagesPerSec() << ",\n"
      << "    \"wall_ms\": " << report.wall_ms << ",\n"
      << "    \"peak_rss_kb\": " << report.peak_rss_kb << ",\n"
      << "    \"events\": " << report.events << ",\n"
      << "    \"messages\": " << report.messages << ",\n"
      << "    \"bytes\": " << report.bytes << ",\n"
      << "    \"slab_growths\": " << report.counters.slab_growths << ",\n"
      << "    \"callable_heap_allocs\": "
      << report.counters.callable_heap_allocs << ",\n"
      << "    \"deliveries_coalesced\": "
      << report.counters.deliveries_coalesced << "\n  },\n";
  // Always recomputed from the "current" section at write time, so the
  // two can never disagree (the stale-speedup bug this replaces).
  out << "  \"speedup_vs_baseline\": "
      << (baseline_events_per_sec > 0
              ? report.EventsPerSec() / baseline_events_per_sec
              : 0)
      << ",\n";
  const double best = extras.best_events_per_sec > 0
                          ? extras.best_events_per_sec
                          : report.EventsPerSec();
  out << "  \"repeat\": " << (extras.repeat > 0 ? extras.repeat : 1)
      << ",\n"
      << "  \"best\": {\"events_per_sec\": " << best
      << ", \"speedup_vs_baseline\": "
      << (baseline_events_per_sec > 0 ? best / baseline_events_per_sec : 0)
      << "},\n";
  out << "  \"phases\": [\n";
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const SimperfPhase& p = report.phases[i];
    out << "    {\"name\": \"" << p.name << "\", \"wall_ms\": " << p.wall_ms
        << ", \"events\": " << p.events << ", \"messages\": " << p.messages
        << "}" << (i + 1 < report.phases.size() ? "," : "") << "\n";
  }
  out << "  ]";

  if (extras.sharded != nullptr) {
    const ShardedSimperfReport& s = *extras.sharded;
    out << ",\n  \"sharded\": {\n"
        << "    \"shards\": " << s.shards << ",\n"
        << "    \"threads\": " << s.threads << ",\n"
        << "    \"partitions\": " << s.partitions << ",\n"
        << "    \"window_per_partition\": " << s.window << ",\n"
        << "    \"wall_ms\": " << s.wall_ms << ",\n"
        << "    \"events\": " << s.events << ",\n"
        << "    \"messages\": " << s.messages << ",\n"
        << "    \"bytes\": " << s.bytes << ",\n"
        << "    \"events_per_sec\": " << s.EventsPerSec() << ",\n"
        << "    \"msgs_per_sec\": " << s.MessagesPerSec() << ",\n"
        << "    \"peak_rss_kb\": " << s.peak_rss_kb << ",\n"
        << "    \"committed\": " << s.committed << ",\n"
        << "    \"steals\": " << s.steals << ",\n"
        << "    \"partition_migrations\": " << s.migrations << ",\n"
        << "    \"snapshot_transfers\": " << s.snapshot_transfers << ",\n"
        << "    \"snapshot_bytes\": " << s.snapshot_bytes << ",\n"
        << "    \"slab_growths\": " << s.counters.slab_growths << ",\n"
        << "    \"fingerprint\": \"" << s.Fingerprint() << "\",\n"
        << "    \"per_shard\": [\n";
    for (size_t i = 0; i < s.per_shard.size(); ++i) {
      const SimperfShard& sh = s.per_shard[i];
      out << "      {\"shard\": " << sh.shard_id << ", \"seed\": "
          << sh.seed << ", \"partitions\": " << sh.partitions
          << ", \"wall_ms\": " << sh.wall_ms << ", \"events\": "
          << sh.events << ", \"messages\": " << sh.messages
          << ", \"committed\": " << sh.committed << ", \"steals\": "
          << sh.steals << ", \"migrations\": " << sh.migrations
          << ", \"fingerprint\": \"" << sh.fingerprint << "\"}"
          << (i + 1 < s.per_shard.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }";
  }

  if (extras.scaling != nullptr) {
    const SimperfScaling& sc = *extras.scaling;
    out << ",\n  \"scaling\": {\n"
        << "    \"shards\": " << sc.shards << ",\n"
        << "    \"partitions\": " << sc.partitions << ",\n"
        << "    \"window_per_partition\": " << sc.window << ",\n"
        << "    \"hardware_threads\": " << sc.hardware_threads << ",\n"
        << "    \"deterministic_across_threads\": "
        << (sc.deterministic_across_threads ? "true" : "false") << ",\n"
        << "    \"fingerprint\": \"" << sc.fingerprint << "\",\n"
        << "    \"points\": [\n";
    for (size_t i = 0; i < sc.points.size(); ++i) {
      const SimperfScalingPoint& p = sc.points[i];
      out << "      {\"threads\": " << p.threads << ", \"wall_ms\": "
          << p.wall_ms << ", \"events_per_sec\": " << p.events_per_sec
          << ", \"speedup_vs_one_thread\": " << p.speedup_vs_one_thread
          << "}" << (i + 1 < sc.points.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }";
  }

  if (extras.mobility != nullptr) {
    const SimperfMobilityReport& m = *extras.mobility;
    out << ",\n  \"mobility\": {\n"
        << "    \"zones\": " << m.zones << ",\n"
        << "    \"inter_zone_rtt_ms\": " << m.inter_zone_rtt_ms << ",\n"
        << "    \"intra_zone_rtt_ms\": " << m.intra_zone_rtt_ms << ",\n"
        << "    \"adaptive_tracks_client\": "
        << (m.adaptive_tracks_client ? "true" : "false") << ",\n"
        << "    \"cells\": [\n";
    for (size_t c = 0; c < m.cells.size(); ++c) {
      const SimperfMobilityCell& cell = m.cells[c];
      out << "      {\"label\": \"" << cell.label << "\", \"adaptive\": "
          << (cell.adaptive ? "true" : "false") << ", \"steals\": "
          << cell.steals << ", \"ownership_records\": "
          << cell.ownership_records << ",\n       \"steals_attempted\": "
          << cell.steals_attempted << ", \"steals_completed\": "
          << cell.steals_completed << ", \"steals_rejected\": "
          << cell.steals_rejected << ", \"pingpongs_suppressed\": "
          << cell.pingpongs_suppressed << ",\n       \"segments\": [\n";
      for (size_t s = 0; s < cell.segments.size(); ++s) {
        const SimperfMobilitySegment& seg = cell.segments[s];
        out << "        {\"zone\": " << seg.zone << ", \"ops\": " << seg.ops
            << ", \"p50_ms\": " << seg.p50_ms << ", \"p99_ms\": "
            << seg.p99_ms << ", \"tail_p50_ms\": " << seg.tail_p50_ms
            << ", \"tail_p99_ms\": " << seg.tail_p99_ms << "}"
            << (s + 1 < cell.segments.size() ? "," : "") << "\n";
      }
      out << "       ]}" << (c + 1 < m.cells.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }";
  }

  out << "\n}\n";
  return out.str();
}

std::string SimperfReport::ToJson(double baseline_events_per_sec) const {
  return SimperfJson(*this, baseline_events_per_sec, {});
}

bool WriteSimperfJson(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "simperf: cannot write " << path << "\n";
    return false;
  }
  out << json;
  return true;
}

}  // namespace dpaxos
