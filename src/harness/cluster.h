// Cluster: one-stop construction of a simulated DPaxos deployment —
// simulator, topology, transport, quorum system, per-node hosts and
// per-partition replicas — plus synchronous helpers that drive the
// simulation until an asynchronous protocol action completes.
#ifndef DPAXOS_HARNESS_CLUSTER_H_
#define DPAXOS_HARNESS_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/topology.h"
#include "net/transport.h"
#include "paxos/garbage_collector.h"
#include "paxos/node_host.h"
#include "paxos/replica.h"
#include "quorum/quorum_system.h"
#include "sim/simulator.h"

namespace dpaxos {

/// Cluster-wide construction options.
struct ClusterOptions {
  FaultTolerance ft{1, 0};
  SimTransportOptions transport;
  /// Template applied to every replica; `partition` and the leaderless
  /// striping fields are overridden per replica.
  ReplicaConfig replica;
  /// Partitions hosted by every node.
  std::vector<PartitionId> partitions{0};
  uint64_t seed = 42;
  /// Workload hint: peak simultaneously pending simulator events. When
  /// non-zero the event slab is pre-sized (Simulator::Reserve) so the
  /// whole run reports slab_growths == 0; pair with
  /// transport.initial_delivery_batches for the delivery pool.
  size_t expected_pending_events = 0;
};

/// \brief A fully wired simulated deployment of one protocol.
class Cluster {
 public:
  /// Validates the fault-tolerance assumptions of the paper (Section 3):
  /// at least 2*fd+1 nodes per zone and 2*fz+1 zones.
  Cluster(Topology topology, ProtocolMode mode, ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator& sim() { return *sim_; }
  SimTransport& transport() { return *transport_; }
  const Topology& topology() const { return topology_; }
  const QuorumSystem& quorums() const { return *quorums_; }
  ProtocolMode mode() const { return quorums_->mode(); }
  const ClusterOptions& options() const { return options_; }

  /// Replica of `partition` on `node`.
  Replica* replica(NodeId node, PartitionId partition = 0) const;

  /// The `index`-th node of `zone` (by ascending node id).
  NodeId NodeInZone(ZoneId zone, uint32_t index = 0) const;
  Replica* ReplicaInZone(ZoneId zone, uint32_t index = 0,
                         PartitionId partition = 0) const;

  /// Add a partition at runtime with its own quorum system — e.g. a
  /// SubsetMajorityQuorumSystem for a reconfiguration group (src/reconfig).
  /// Replicas are created on every node (non-members of a subset system
  /// simply never get contacted). The cluster takes ownership of the
  /// quorum system.
  const QuorumSystem* AddPartition(std::unique_ptr<QuorumSystem> quorums,
                                   ReplicaConfig config);

  /// Simulate a process restart of `node`: its replicas are rebuilt from
  /// durable storage (promises/accepted values/intents survive; roles,
  /// in-flight proposals, the decided log and all callbacks do not).
  /// Does NOT touch the transport crash state — pair with
  /// transport().Crash()/Recover() to model downtime. `lose_unsynced`
  /// additionally rolls the acceptor records back to their last
  /// completed sync (requires NodeStorage crash-fault mode).
  void RestartNode(NodeId node, bool lose_unsynced = false);

  /// The host of `node` (durable storage, replica demux); never null.
  NodeHost* host(NodeId node) const;

  /// Create, attach and return a garbage collector co-located at `host`.
  /// The cluster owns it. It is NOT started.
  GarbageCollector* AddGarbageCollector(NodeId host,
                                        PartitionId partition = 0,
                                        Duration poll_period = 500 *
                                                               kMillisecond);

  // --- synchronous drivers (run the simulation until completion) --------

  /// Elect `node` leader of `partition`; returns the election latency.
  Result<Duration> ElectLeader(NodeId node, PartitionId partition = 0);

  /// Submit one value at `node` and wait for commitment; returns the
  /// commit latency.
  Result<Duration> Commit(NodeId node, Value value,
                          PartitionId partition = 0);

  /// Run the simulation until `pred()` holds, stepping events; gives up
  /// after `max_virtual_time`. Returns false on timeout / quiescence.
  bool RunUntil(const std::function<bool()>& pred,
                Duration max_virtual_time = 60 * kSecond);

 private:
  Topology topology_;
  ClusterOptions options_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<QuorumSystem> quorums_;
  std::vector<std::unique_ptr<QuorumSystem>> extra_quorums_;
  std::vector<std::unique_ptr<NodeHost>> hosts_;
  std::vector<std::unique_ptr<GarbageCollector>> collectors_;
};

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_CLUSTER_H_
