#include "harness/load_driver.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "common/random.h"

#include "common/check.h"
#include "paxos/value.h"

namespace dpaxos {

namespace {

// Service time of a lease-local read at the leader (paper Section A.2
// reports sub-millisecond read-only latency).
constexpr Duration kLocalReadServiceTime = 500 * kMicrosecond;

// One proposer's closed loop: issues up to `window` outstanding batches
// until the deadline, collecting results. Heap-allocated and shared with
// the in-flight callbacks so it may outlive the launching scope.
struct ClosedLoop : std::enable_shared_from_this<ClosedLoop> {
  Simulator* sim = nullptr;
  Replica* proposer = nullptr;
  LoadOptions options;
  Timestamp deadline = 0;
  uint64_t replicated_bytes = 0;
  uint64_t next_id = 0;
  uint32_t outstanding = 0;
  LoadResult result;

  void Launch() {
    replicated_bytes = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(options.batch_bytes) *
                                 (1.0 - options.read_only_fraction)));
    for (uint32_t i = 0; i < options.window; ++i) {
      ++outstanding;
      Issue();
    }
  }

  void Issue() {
    if (sim->Now() >= deadline) {
      --outstanding;
      return;
    }
    // The read-only share of each batch is answered from the leader's
    // lease-protected state and never enters the Replication phase
    // (paper Sections 4.5, A.2).
    const bool reads_local =
        options.read_only_fraction > 0.0 && proposer->CanServeLocalRead();
    const uint64_t to_replicate =
        reads_local ? replicated_bytes : options.batch_bytes;
    if (reads_local) {
      result.read_latency.Add(kLocalReadServiceTime);
      ++result.reads_served;
    }
    auto self = shared_from_this();
    proposer->Submit(Value::Synthetic(++next_id, to_replicate),
                     [self](const Status& st, SlotId, Duration latency) {
                       if (st.ok()) {
                         self->result.commit_latency.Add(latency);
                         ++self->result.committed;
                         self->result.throughput.Record(
                             1, self->options.batch_bytes);
                       } else {
                         ++self->result.failed;
                       }
                       self->Issue();
                     });
  }
};

}  // namespace

std::vector<LoadResult> RunClosedLoops(
    Cluster& cluster, const std::vector<Replica*>& proposers,
    const std::vector<LoadOptions>& loops) {
  DPAXOS_CHECK_EQ(proposers.size(), loops.size());
  DPAXOS_CHECK(!proposers.empty());

  Simulator& sim = cluster.sim();
  const Timestamp start = sim.Now();
  Duration max_duration = 0;

  std::vector<std::shared_ptr<ClosedLoop>> clients;
  for (size_t i = 0; i < proposers.size(); ++i) {
    DPAXOS_CHECK(proposers[i] != nullptr);
    DPAXOS_CHECK_GE(loops[i].window, 1u);
    DPAXOS_CHECK_GT(loops[i].batch_bytes, 0u);
    DPAXOS_CHECK_GE(loops[i].read_only_fraction, 0.0);
    DPAXOS_CHECK_LE(loops[i].read_only_fraction, 1.0);
    auto client = std::make_shared<ClosedLoop>();
    client->sim = &sim;
    client->proposer = proposers[i];
    client->options = loops[i];
    client->deadline = start + loops[i].duration;
    clients.push_back(std::move(client));
    max_duration = std::max(max_duration, loops[i].duration);
  }
  for (auto& client : clients) client->Launch();

  sim.RunUntil(start + max_duration);
  // Drain in-flight proposals (bounded: background timers may persist).
  const Timestamp drain_deadline = start + max_duration + 30 * kSecond;
  auto all_idle = [&] {
    for (const auto& client : clients) {
      if (client->outstanding > 0) return false;
    }
    return true;
  };
  while (!all_idle() && sim.Now() < drain_deadline && sim.Step()) {
  }

  std::vector<LoadResult> results;
  results.reserve(clients.size());
  for (auto& client : clients) {
    client->result.throughput.elapsed = sim.Now() - start;
    results.push_back(std::move(client->result));
  }
  return results;
}

std::vector<LoadOptions> SplitLoad(const LoadOptions& base, uint32_t loops) {
  DPAXOS_CHECK_GE(loops, 1u);
  std::vector<LoadOptions> split(loops, base);
  const uint32_t each = base.window / loops;
  const uint32_t remainder = base.window % loops;
  for (uint32_t i = 0; i < loops; ++i) {
    split[i].window = std::max<uint32_t>(1, each + (i < remainder ? 1 : 0));
  }
  return split;
}

LoadResult RunOpenLoop(Cluster& cluster, Replica* proposer,
                       const OpenLoadOptions& options) {
  DPAXOS_CHECK(proposer != nullptr);
  DPAXOS_CHECK_GT(options.batch_bytes, 0u);
  DPAXOS_CHECK_GT(options.arrivals_per_sec, 0.0);

  Simulator& sim = cluster.sim();
  const Timestamp start = sim.Now();
  const Timestamp deadline = start + options.duration;
  auto result = std::make_shared<LoadResult>();
  auto outstanding = std::make_shared<uint32_t>(0);
  auto rng = std::make_shared<Rng>(options.seed);
  auto next_id = std::make_shared<uint64_t>(0);

  // Exponential inter-arrival times around the offered rate.
  auto next_gap = [rng, &options]() -> Duration {
    const double u = std::max(1e-12, rng->NextDouble());
    const double secs = -std::log(u) / options.arrivals_per_sec;
    return static_cast<Duration>(secs * static_cast<double>(kSecond));
  };

  auto arrive = std::make_shared<std::function<void()>>();
  *arrive = [&sim, proposer, options, result, outstanding, next_id, arrive,
             next_gap, deadline] {
    if (sim.Now() >= deadline) return;
    ++*outstanding;
    proposer->Submit(Value::Synthetic(++*next_id, options.batch_bytes),
                     [result, options, outstanding](const Status& st, SlotId,
                                                    Duration latency) {
                       --*outstanding;
                       if (st.ok()) {
                         result->commit_latency.Add(latency);
                         ++result->committed;
                         result->throughput.Record(1, options.batch_bytes);
                       } else {
                         ++result->failed;
                       }
                     });
    sim.Schedule(next_gap(), *arrive);
  };
  sim.Schedule(next_gap(), *arrive);

  sim.RunUntil(deadline);
  const Timestamp drain_deadline = deadline + 60 * kSecond;
  while (*outstanding > 0 && sim.Now() < drain_deadline && sim.Step()) {
  }
  result->throughput.elapsed = sim.Now() - start;
  return std::move(*result);
}

LoadResult RunClosedLoop(Cluster& cluster, Replica* proposer,
                         const LoadOptions& options) {
  std::vector<LoadResult> results =
      RunClosedLoops(cluster, {proposer}, {options});
  return std::move(results.front());
}

}  // namespace dpaxos
