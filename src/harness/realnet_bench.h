// Realnet benchmark: drives a real multi-process cluster (RealCluster)
// through each protocol mode over loopback TCP, measures per-request
// commit latency and throughput from a blocking client, then exercises
// the crash path (SIGKILL a follower, keep committing, restart it,
// verify it rejoins via snapshot transfer) and a clean SIGTERM
// shutdown. Results land in BENCH_realnet.json.
#ifndef DPAXOS_HARNESS_REALNET_BENCH_H_
#define DPAXOS_HARNESS_REALNET_BENCH_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

struct RealnetBenchOptions {
  /// Server binary to exec (dpaxos_cli; the CLI passes /proc/self/exe).
  std::string server_binary;
  /// Committed puts measured per mode (before the kill phase).
  uint64_t requests = 10000;
  /// Additional puts committed while the killed node is down.
  uint64_t requests_while_down = 500;
  uint64_t seed = 1;
  std::vector<ProtocolMode> modes = {ProtocolMode::kLeaderZone,
                                     ProtocolMode::kDelegate,
                                     ProtocolMode::kMultiPaxos};
  /// Output path; empty skips the file.
  std::string json_path = "BENCH_realnet.json";
  /// Directory for per-node server logs; empty inherits stdio.
  std::string log_dir;
};

struct RealnetModeResult {
  ProtocolMode mode = ProtocolMode::kLeaderZone;
  uint64_t committed = 0;
  double elapsed_seconds = 0;
  double throughput_ops = 0;
  Histogram latency;  ///< per-request commit latency
  uint64_t snapshots_installed = 0;  ///< on the restarted node
  uint64_t restarted_watermark = 0;
  uint64_t leader_watermark = 0;
  uint64_t checksum_match = 0;  ///< 1 iff restarted node converged
  uint64_t tcp_reconnects = 0;  ///< summed over surviving nodes
  uint64_t tcp_frames_dropped = 0;
  uint64_t tcp_malformed_frames = 0;
  uint64_t tcp_bytes_out = 0;
};

struct RealnetBenchReport {
  std::vector<RealnetModeResult> results;
  bool clean_shutdown = true;
};

/// Run the full benchmark. Returns the report, or the first hard error
/// (a mode that cannot start, a node that cannot rejoin, ...).
Result<RealnetBenchReport> RunRealnetBench(const RealnetBenchOptions& options);

/// Serialize a report to the BENCH_realnet.json schema.
std::string RealnetReportToJson(const RealnetBenchOptions& options,
                                const RealnetBenchReport& report);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_REALNET_BENCH_H_
