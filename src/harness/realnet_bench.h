// Realnet benchmark: drives a real multi-process cluster (RealCluster)
// through each protocol mode over loopback TCP. The measured phase runs
// the open-loop async LoadGen (pipelined connections, honest
// p50/p99/p999 from intended arrival times) against the leader; then the
// crash path is exercised with a blocking client (SIGKILL a follower,
// keep committing, restart it, verify it rejoins via snapshot transfer)
// and a clean SIGTERM shutdown. Results land in BENCH_realnet.json.
#ifndef DPAXOS_HARNESS_REALNET_BENCH_H_
#define DPAXOS_HARNESS_REALNET_BENCH_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

struct RealnetBenchOptions {
  /// Server binary to exec (dpaxos_cli; the CLI passes /proc/self/exe).
  std::string server_binary;
  /// Client ops completed in the measured phase per mode.
  uint64_t requests = 10000;
  /// Additional puts committed while the killed node is down (blocking
  /// client, retried — this phase probes recovery, not throughput).
  uint64_t requests_while_down = 500;
  uint64_t seed = 1;
  std::vector<ProtocolMode> modes = {ProtocolMode::kLeaderZone,
                                     ProtocolMode::kDelegate,
                                     ProtocolMode::kMultiPaxos};
  /// Measured-phase driver shape (see harness/load_gen.h).
  uint32_t connections = 4;
  uint32_t pipeline = 256;
  /// Offered ops/s; 0 = closed loop at the pipeline depth.
  double rate = 0;
  /// Reactor threads per server process (passed as --reactors).
  uint32_t reactors = 2;
  /// Reply-batch hold time in microseconds (passed as --reply-flush-us
  /// when nonzero); widens the writev coalescing window, see
  /// docs/perf.md.
  uint32_t reply_flush_us = 0;
  /// Add the edge-write comparison cells: the same open-loop load aimed
  /// at a NON-leader node, once classic (forwarded to the leader) and
  /// once with --fast-path (origin drives the fast quorum directly).
  /// The pair is what shows the collapsed round trip in the JSON.
  bool fast_path_cells = true;
  /// Which node the edge cells target (must not be the leader hint and
  /// must survive the kill phase; the 2x2 cluster uses zone 1's first
  /// node).
  NodeId edge_node = 2;
  /// Add the durability cell: the first mode re-run with per-node
  /// acceptor WALs (every ack waits for a real fdatasync), so the JSON
  /// shows the fsync cost next to the volatile row. The killed node
  /// then restarts from its disk instead of empty.
  bool durable_cell = true;
  /// WAL directory base for the durable cell (node N gets
  /// `<base>/node<N>`); empty = a fresh temp dir per run.
  std::string data_dir_base;
  /// Group-commit window for the durable cell (--wal-commit-us).
  Duration wal_commit_delay = 0;
  /// Output path; empty skips the file.
  std::string json_path = "BENCH_realnet.json";
  /// Directory for per-node server logs; empty inherits stdio.
  std::string log_dir;
  /// Add the mobility pair: a 2x2 Leader Zone cluster behind a
  /// latency-shaping ChaosProxy (inter-zone links slow, intra-zone links
  /// fast), with a blocking client that starts in the leader's zone and
  /// then "moves" to the far zone. The static cell leaves the leader
  /// where it started; the adaptive cell runs --ownership, so the far
  /// zone's replica steals the partition via the protocol and commit
  /// latency falls back to near-local. The gate: adaptive post-migration
  /// p50 < 2x the intra-zone RTT.
  bool mobility = false;
  /// Ops per mobility phase (local / moved / post).
  uint64_t mobility_phase_ops = 150;
  /// One-way proxy latencies shaping the zone asymmetry.
  double mobility_inter_oneway_ms = 25.0;
  double mobility_intra_oneway_ms = 3.0;
  /// How long the adaptive moved phase waits for the protocol steal.
  Duration mobility_steal_wait = 60 * kSecond;
};

struct RealnetModeResult {
  ProtocolMode mode = ProtocolMode::kLeaderZone;
  /// Row label in the table/JSON: the mode name for the standard cells,
  /// "<mode>/edge-classic" or "<mode>/edge-fast" for the edge pair.
  std::string label;
  bool fast_path = false;       ///< servers ran with --fast-path
  NodeId target_node = 0;       ///< node the measured load was aimed at
  /// Client ops acknowledged OK in the measured (healthy-cluster) phase.
  /// Separate from any internal/recovery traffic by construction.
  uint64_t measured_ops = 0;
  uint64_t measured_ops_failed = 0;
  /// Blocking-client puts committed during the kill phase.
  uint64_t ops_while_down = 0;
  double elapsed_seconds = 0;
  double throughput_ops = 0;  ///< measured_ops / elapsed_seconds
  double offered_ops = 0;     ///< configured open-loop rate (0 = closed)
  Histogram latency;          ///< measured phase, intended-arrival based
  uint64_t snapshots_installed = 0;  ///< on the restarted node
  uint64_t restarted_watermark = 0;
  uint64_t leader_watermark = 0;
  uint64_t checksum_match = 0;  ///< 1 iff restarted node converged
  uint64_t tcp_reconnects = 0;  ///< summed over all nodes at mode end
  uint64_t tcp_frames_dropped = 0;
  uint64_t tcp_malformed_frames = 0;
  uint64_t tcp_bytes_out = 0;
  uint64_t tcp_writev_calls = 0;
  uint64_t tcp_frames_coalesced = 0;
  /// Fast-path protocol counters summed over all nodes at mode end
  /// (zero unless the cell ran with --fast-path).
  uint64_t fast_commits = 0;
  uint64_t fast_fallbacks = 0;
  /// Durability: whether this cell ran with acceptor WALs, and the WAL
  /// counters summed over all nodes at mode end (zero when volatile).
  bool durable = false;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
};

/// One phase of a mobility cell: a contiguous run of blocking puts from
/// one (zone, endpoint) vantage.
struct RealnetMobilityPhase {
  std::string name;  ///< "local", "moved", "post"
  uint64_t ops = 0;
  uint64_t ops_failed = 0;
  Histogram latency;  ///< per-op wall time, OK replies only
};

/// One mobility cell (static baseline or adaptive ownership).
struct RealnetMobilityResult {
  bool adaptive = false;  ///< servers ran with --ownership
  std::string label;      ///< "mobility/static" or "mobility/adaptive"
  std::vector<RealnetMobilityPhase> phases;
  double inter_oneway_ms = 0;  ///< proxy-imposed inter-zone one-way
  double intra_rtt_ms = 0;     ///< 2x intra-zone one-way (the gate base)
  /// Adaptive: moved-phase seconds until the first completed protocol
  /// steal was observed (0 for the static cell).
  double migration_seconds = 0;
  // Placement + steal counters summed over all nodes at cell end.
  uint64_t steals_attempted = 0;
  uint64_t steals_completed = 0;
  uint64_t steals_rejected = 0;
  uint64_t pingpongs_suppressed = 0;
  uint64_t steal_requests_sent = 0;
  uint64_t steals_granted = 0;
  uint64_t steals_won = 0;
  uint64_t ownership_records = 0;  ///< max over nodes (directory depth)
  /// Redirect hints followed by the post-steal straggler client that
  /// still dialed the old leader's zone.
  uint64_t redirects_followed = 0;
  /// Adaptive: post-migration p50 < 2x intra-zone RTT. Static cells
  /// carry no gate and report true.
  bool gate_pass = true;
};

struct RealnetBenchReport {
  std::vector<RealnetModeResult> results;
  std::vector<RealnetMobilityResult> mobility;
  bool clean_shutdown = true;
};

/// Run the full benchmark. Returns the report, or the first hard error
/// (a mode that cannot start, a node that cannot rejoin, ...).
Result<RealnetBenchReport> RunRealnetBench(const RealnetBenchOptions& options);

/// Serialize a report to the BENCH_realnet.json schema.
std::string RealnetReportToJson(const RealnetBenchOptions& options,
                                const RealnetBenchReport& report);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_REALNET_BENCH_H_
