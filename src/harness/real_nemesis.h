// RealNemesis: the real-network twin of harness/Nemesis.
//
// Drives faults against a live multi-process cluster from the same
// declarative (at, op, arg) schedule format the sim nemesis uses —
// network faults through a ChaosProxy (partitions, latency, loss,
// corruption, throttling, link cuts) and process faults through the
// RealCluster (SIGKILL + respawn, SIGSTOP/SIGCONT pauses). Unlike the
// simulator there is no virtual clock to arm events on: Run() blocks a
// dedicated harness thread and sleeps between steps on the wall clock,
// so "deterministic" here means the *sequence* of actions replays
// identically for a (schedule, seed) pair while their real timing
// naturally wobbles.
#ifndef DPAXOS_HARNESS_REAL_NEMESIS_H_
#define DPAXOS_HARNESS_REAL_NEMESIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "harness/real_cluster.h"
#include "net/tcp/chaos_proxy.h"

namespace dpaxos {

/// \brief Declarative fault driver for a proxied RealCluster.
class RealNemesis {
 public:
  enum class Op : uint8_t {
    kPartitionZone = 0,  // blackhole zone `arg` in both directions
    kPartitionAsym,      // blackhole only traffic INTO zone `arg`
    kHeal,               // remove standing partition rules (bursts stay)
    kDelayBurst,         // +arg ms latency (plus arg/2 ms jitter), all links
    kDropBurst,          // drop_rate = arg on all links
    kThrottle,           // bytes_per_sec = arg on all links
    kCorruptBurst,       // corrupt_rate = arg on all links (bit flips the
                         // receiving FrameDecoder must reject)
    kClearFaults,        // remove every proxy rule
    kKillNode,           // SIGKILL node `arg` (stays down until restarted)
    kRestartNode,        // respawn node `arg` (snapshot catch-up rejoin)
    kPauseNode,          // SIGSTOP node `arg` (hung, not dead)
    kResumeNode,         // SIGCONT node `arg`
    kCloseLinks,         // hard-close every live proxied connection

    // Disk ops (durable clusters only: data_dir_base + --disk-faults).
    // Faults are armed by dropping a FAULTS control file into node
    // `arg`'s WAL directory; the server polls and applies it within
    // ~50ms. Torn writes and fsync EIOs make the node panic (fail-stop
    // per the fsyncgate policy), so schedules pair them with a
    // kRestartNode that reaps the self-exited process first.
    kDiskTornWrite,      // node arg: next WAL append tears (prefix lands,
                         // then EIO) — panic; recovery truncates the tail
    kDiskEioSync,        // node arg: next fdatasync returns EIO — panic,
                         // no retry, withheld replies stay withheld
    kDiskLyingFsync,     // node arg: next 4 fdatasyncs lie (no-op OK);
                         // benign under SIGKILL (the page cache survives
                         // process death) but exercises the accounting
    kPowerLossAll,       // SIGKILL every node at once, then restart all —
                         // recovery happens from the WAL directories alone
  };

  struct Step {
    Duration at = 0;  // relative to Run()
    Op op = Op::kHeal;
    double arg = 0;
  };

  /// `cluster` and `proxy` must outlive the nemesis. The proxy must be
  /// the one carrying the cluster's peer_view links.
  RealNemesis(RealCluster* cluster, ChaosProxy* proxy, uint64_t seed);

  RealNemesis(const RealNemesis&) = delete;
  RealNemesis& operator=(const RealNemesis&) = delete;

  // --- schedule building ------------------------------------------------

  RealNemesis& Add(Duration at, Op op, double arg = 0);

  /// Append a named schedule over [start, start + horizon). All named
  /// schedules spare node 0: the harness points every node's leader hint
  /// there and runs without a failure detector, so impairing the hinted
  /// leader would stall writes for the whole horizon instead of
  /// exercising failover. Schedules:
  ///   "mixed"      — one of everything: partition + heal, a pause, a
  ///                  kill + restart with a corruption burst laid over
  ///                  the rejoin, link churn, a drop burst (default)
  ///   "partitions" — repeated zone isolation / heal cycles, one asym
  ///   "process"    — kill/restart + pause/resume churn
  ///   "lossy"      — latency, drop, corruption and throttle bursts
  ///   "disk"       — durable clusters: lying fsyncs, a torn write and a
  ///                  fsync EIO (each panicking the victim, which is
  ///                  then reaped + restarted to recover from its WAL),
  ///                  capped by a whole-cluster power loss
  ///   "mobility"   — the exception to the spare-node-0 rule: SIGKILL
  ///                  the incumbent leader mid-run (requires --ownership
  ///                  servers, whose stalled-partition rescue steal
  ///                  restores liveness), restart it late to rejoin
  ///                  under the new owner
  /// Returns false (and adds nothing) for an unknown name.
  bool AddNamedSchedule(const std::string& name, Duration start,
                        Duration horizon);
  static std::vector<std::string> ScheduleNames();

  // --- driving ----------------------------------------------------------

  /// Execute every step in `at` order, sleeping on the wall clock
  /// between them. Blocks until the last step ran; call from a dedicated
  /// thread while clients run elsewhere.
  void Run();

  /// Undo standing faults: SIGCONT anything paused, respawn anything
  /// dead, clear every proxy rule. Call after Run()'s thread is joined.
  void Quiesce();

  // --- introspection (read after the Run() thread is joined) ------------

  const std::vector<std::string>& action_log() const { return action_log_; }
  uint64_t actions_executed() const { return action_log_.size(); }
  uint64_t partitions() const { return partitions_; }
  uint64_t pauses() const { return pauses_; }
  uint64_t kills() const { return kills_; }
  uint64_t restarts() const { return restarts_; }
  uint64_t corrupt_bursts() const { return corrupt_bursts_; }
  uint64_t disk_faults_armed() const { return disk_faults_armed_; }
  uint64_t power_losses() const { return power_losses_; }

 private:
  void Execute(const Step& step);
  void Note(const std::string& what);
  NodeId ClampNode(double arg) const;
  /// Drop `line` into node's <data_dir>/FAULTS (tmp + rename, so the
  /// server's poll never sees a half-written file). False if the
  /// cluster is not durable or the write failed.
  bool ArmDiskFault(NodeId node, const std::string& line);

  RealCluster* cluster_;
  ChaosProxy* proxy_;
  Rng rng_;
  std::vector<Step> steps_;
  /// Standing partition rule ids, removed by kHeal.
  std::vector<uint64_t> partition_rules_;
  std::vector<std::string> action_log_;

  uint64_t partitions_ = 0;
  uint64_t pauses_ = 0;
  uint64_t kills_ = 0;
  uint64_t restarts_ = 0;
  uint64_t corrupt_bursts_ = 0;
  uint64_t disk_faults_armed_ = 0;
  uint64_t power_losses_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_REAL_NEMESIS_H_
