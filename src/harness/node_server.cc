#include "harness/node_server.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/perf_counters.h"
#include "paxos/wire.h"
#include "smr/snapshot.h"
#include "txn/transaction.h"

namespace dpaxos {

namespace {

// Signal -> loop bridge. Handlers may only do async-signal-safe work, so
// they record the signal and write the loop's eventfd; Run() picks the
// flag up after the poll wakes.
volatile sig_atomic_t g_signal_received = 0;
int g_signal_wakeup_fd = -1;

void HandleStopSignal(int signo) {
  g_signal_received = signo;
  if (g_signal_wakeup_fd >= 0) {
    const uint64_t one = 1;
    // Best effort: a full eventfd counter still wakes the loop.
    ssize_t ignored = write(g_signal_wakeup_fd, &one, sizeof(one));
    (void)ignored;
  }
}

}  // namespace

NodeServer::NodeServer(NodeServerOptions options)
    : options_(std::move(options)), loop_(options_.seed) {
  DPAXOS_CHECK(!options_.cluster.empty());
  DPAXOS_CHECK_LT(options_.node, options_.cluster.size());
  DPAXOS_CHECK(options_.zones > 0 &&
               options_.cluster.size() % options_.zones == 0);
}

NodeServer::~NodeServer() = default;

Status NodeServer::Start() {
  DPAXOS_CHECK(!started_);
  started_ = true;

  // Latencies in the topology only matter to the simulator; the quorum
  // construction just needs the zone layout.
  const uint32_t nodes_per_zone =
      static_cast<uint32_t>(options_.cluster.size()) / options_.zones;
  topology_ = Topology::Uniform(options_.zones, nodes_per_zone,
                                /*inter_zone_rtt_ms=*/1.0,
                                /*intra_zone_rtt_ms=*/1.0);
  quorums_ = MakeQuorumSystem(options_.mode, &*topology_, options_.ft);

  transport_ = std::make_unique<TcpTransport>(&loop_, options_.node,
                                              options_.cluster, options_.tcp);
  transport_->set_wire_codec(
      [](const Message& m, std::string* out) { SerializeMessageInto(m, out); },
      [](std::string_view bytes) -> MessagePtr {
        Result<MessagePtr> r = DeserializeMessage(bytes);
        return r.ok() ? r.value() : nullptr;
      });
  Status st = transport_->Listen();
  if (!st.ok()) return st;

  host_ = std::make_unique<NodeHost>(&loop_, transport_.get(), &*topology_,
                                     options_.node);
  if (!options_.data_dir.empty()) {
    // Recover BEFORE AddReplica: the replica binds to the recovered
    // record and resumes from its promises/accepted values/snapshot.
    st = OpenWal();
    if (!st.ok()) return st;
  }
  ReplicaConfig config = options_.replica;
  // Every node applies the full log locally (serves reads + snapshots).
  config.decide_policy = DecidePolicy::kAll;
  if (options_.mode == ProtocolMode::kLeaderless) {
    config.leaderless_index = options_.node;
    config.leaderless_total = topology_->num_nodes();
  }
  replica_ = host_->AddReplica(quorums_.get(), config);
  replica_->set_decide_callback([this](SlotId slot, const Value& value) {
    // Ownership transfers are learned from the same decided stream the
    // state machine consumes; the record value itself applies as a no-op.
    if (directory_.has_value()) ObserveOwnership(slot, value);
    applier_.OnDecided(slot, value);
  });
  replica_->set_snapshot_hooks(
      [this](SlotId* through) {
        *through = applier_.applied_watermark();
        return EncodeSnapshot(*through, kv_.SerializeFull());
      },
      [this](SlotId through, const std::string& envelope) {
        Result<Snapshot> snap = DecodeSnapshot(envelope);
        if (!snap.ok()) return snap.status();
        // `through` rode the chunk messages unauthenticated; the copy
        // inside the envelope is CRC-protected. A mismatch means a
        // corrupted through_slot field — installing would teleport the
        // watermark to a fiction.
        if (snap->through_slot != through) {
          return Status::Corruption("snapshot coverage mismatch");
        }
        Status restored = kv_.RestoreFull(snap->payload);
        if (!restored.ok()) return restored;
        applier_.FastForwardTo(through);
        return Status::OK();
      });
  if (options_.leader_hint != kInvalidNode) {
    replica_->set_leader_hint(options_.leader_hint);
  }
  if (wal_ != nullptr) {
    // Reply-gated sync points ride the group commit; the compaction/
    // install order uses the synchronous barrier. An fsync failure
    // aborts the process inside the WAL (panic_on_sync_failure), so the
    // barrier's sticky status here is only ever a shutdown race.
    replica_->set_persist_gate(
        [this](std::function<void()> done) { wal_->SyncThen(std::move(done)); });
    replica_->set_persist_barrier([this] {
      Status barrier = wal_->SyncNow();
      if (!barrier.ok()) {
        DPAXOS_WARN("node " << options_.node
                            << " wal barrier failed: " << barrier.ToString());
      }
    });
    // Restore the applied prefix from the snapshot at rest. After a
    // whole-cluster power loss there is no live peer to pull it from:
    // the disk is the only source, which is the point of WAL mode.
    const std::string& durable = replica_->acceptor().snapshot_bytes();
    if (!durable.empty()) {
      Result<Snapshot> snap = DecodeSnapshot(durable);
      Status restored =
          snap.ok() ? kv_.RestoreFull(snap.value().payload) : snap.status();
      if (restored.ok()) {
        applier_.FastForwardTo(replica_->acceptor().snapshot_through());
        DPAXOS_INFO("node " << options_.node
                            << " restored snapshot from wal through "
                            << replica_->acceptor().snapshot_through());
      } else {
        // The image at rest rotted. The compaction watermark survives
        // (the log prefix is gone either way); relearn from peers.
        DPAXOS_WARN("node " << options_.node << " dropped rotten snapshot: "
                            << restored.ToString());
        replica_->DropInstalledSnapshot();
      }
    }
  }

  transport_->set_client_request_handler(
      [this](uint64_t conn, uint64_t client_id, const ClientRequest& req) {
        OnClientRequest(conn, client_id, req);
      });

  if (options_.reactors > 0) {
    ReactorPoolOptions rp;
    rp.reactors = options_.reactors;
    rp.max_frame_bytes = options_.tcp.max_frame_bytes;
    rp.num_nodes = options_.cluster.size();
    rp.seed = options_.seed;
    rp.reply_flush_delay = options_.reply_flush_delay;
    reactors_ = std::make_unique<ReactorPool>(&loop_, rp);
    reactors_->set_wire_decoder([](std::string_view bytes) -> MessagePtr {
      Result<MessagePtr> r = DeserializeMessage(bytes);
      return r.ok() ? r.value() : nullptr;
    });
    // Node frames are wire-decoded on the reactor; the home-loop handler
    // reinjects them so the replica sees the usual transport delivery.
    reactors_->set_node_message_handler([this](NodeId from, MessagePtr msg) {
      transport_->InjectDelivery(from, msg);
    });
    reactors_->set_client_request_handler(
        [this](uint64_t conn, uint64_t client_id, const ClientRequest& req) {
          OnClientRequest(conn, client_id, req);
        });
    reactors_->Start();
    transport_->set_accept_handoff([this](int fd) { reactors_->Adopt(fd); });
  }

  if (options_.ownership) {
    directory_.emplace(/*num_partitions=*/1);
    access_stats_.emplace(options_.zones, options_.placement_stats_half_life);
    advisor_topology_ = Topology::Uniform(options_.zones, nodes_per_zone,
                                          options_.placement_inter_zone_rtt_ms,
                                          options_.placement_intra_zone_rtt_ms);
    advisor_.emplace(&*advisor_topology_, options_.placement_min_improvement,
                     options_.placement_min_weight);
    replica_->set_steal_invite_callback(
        [this](NodeId incumbent) { StartProtocolSteal(incumbent); });
    if (options_.placement_sweep_interval > 0) SchedulePlacementSweep();
  }

  if (options_.catchup_on_start) {
    loop_.Schedule(options_.catchup_delay, [this] { StartCatchUp(); });
  }
  if (options_.compaction_interval > 0 && config.enable_compaction) {
    ScheduleCompactionSweep();
  }
  if (options_.anti_entropy_interval > 0 && options_.cluster.size() > 1) {
    ScheduleAntiEntropySweep();
  }
  DPAXOS_INFO("node " << options_.node << " serving "
                      << ProtocolModeName(options_.mode) << " on port "
                      << transport_->listen_port());
  return Status::OK();
}

void NodeServer::OnClientRequest(uint64_t conn, uint64_t client_id,
                                 const ClientRequest& req) {
  switch (req.op) {
    case ClientOp::kPut: {
      if (options_.ownership) {
        // Feed the placement loop from real request arrivals. Legacy
        // clients (no declared zone) still commit, they just don't
        // steer placement.
        if (req.zone != kInvalidIdWire && req.zone < options_.zones) {
          access_stats_->Record(req.zone, loop_.Now());
        }
        ++puts_since_sweep_;
      }
      Transaction txn;
      txn.id = ((static_cast<uint64_t>(options_.node) + 1) << 40) |
               next_value_id_++;
      txn.client_id = client_id;
      txn.seq = req.request_id;
      txn.ops.push_back(Operation::Put(req.key, req.value));
      Value value = Value::Of(txn.id, EncodeBatch({txn}));
      const uint64_t request_id = req.request_id;
      replica_->SubmitOrForward(
          std::move(value),
          [this, conn, request_id](const Status& st, SlotId slot, Duration) {
            ClientReply reply;
            reply.request_id = request_id;
            reply.status_code = static_cast<uint8_t>(st.code());
            reply.value = st.ok() ? std::to_string(slot) : st.ToString();
            reply.watermark = st.ok() ? slot : 0;
            // Misdirected request in ownership mode: it was still
            // forwarded and answered, but hint the client toward the
            // partition's owner for its next operation.
            if (directory_.has_value() && directory_->has_owner(0) &&
                directory_->owner_node(0) != options_.node) {
              reply.redirect = directory_->owner_node(0);
            }
            SendReply(conn, reply);
          });
      return;
    }
    case ClientOp::kGet: {
      // Linearizable read: commit an empty-batch barrier through
      // consensus and answer only after the local applier has crossed the
      // barrier's slot. A dirty local read would serve stale state from a
      // lagging follower after failover — exactly the violation the
      // chaos checkers exist to catch.
      Value barrier =
          Value::Of(((static_cast<uint64_t>(options_.node) + 1) << 40) |
                        next_value_id_++,
                    EncodeBatch({}));
      const uint64_t request_id = req.request_id;
      std::string key = req.key;
      replica_->SubmitOrForward(
          std::move(barrier),
          [this, conn, request_id, key = std::move(key)](
              const Status& st, SlotId slot, Duration) mutable {
            if (!st.ok()) {
              ClientReply reply;
              reply.request_id = request_id;
              reply.status_code = static_cast<uint8_t>(st.code());
              reply.value = st.ToString();
              SendReply(conn, reply);
              return;
            }
            AnswerReadAtSlot(conn, request_id, std::move(key), slot,
                             loop_.Now() + 5 * kSecond);
          });
      return;
    }
    case ClientOp::kStats: {
      ClientReply reply;
      reply.request_id = req.request_id;
      reply.status_code = static_cast<uint8_t>(StatusCode::kOk);
      reply.value = StatsString();
      SendReply(conn, reply);
      return;
    }
  }
  // Unknown op byte: framing-level validation rejects it before we get
  // here, but answer defensively rather than dropping the request.
  ClientReply reply;
  reply.request_id = req.request_id;
  reply.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
  SendReply(conn, reply);
}

void NodeServer::SendReply(uint64_t conn, const ClientReply& reply) {
  if (reactors_ != nullptr && IsReactorConnToken(conn)) {
    reactors_->SendClientReply(conn, reply);
  } else {
    transport_->SendClientReply(conn, reply);
  }
}

void NodeServer::AnswerReadAtSlot(uint64_t conn, uint64_t request_id,
                                  std::string key, SlotId slot,
                                  Timestamp deadline) {
  if (applier_.applied_watermark() >= slot) {
    ClientReply reply;
    reply.request_id = request_id;
    std::optional<std::string> found = kv_.Get(key);
    if (found.has_value()) {
      reply.status_code = static_cast<uint8_t>(StatusCode::kOk);
      reply.value = std::move(*found);
    } else {
      reply.status_code = static_cast<uint8_t>(StatusCode::kNotFound);
    }
    reply.watermark = applier_.applied_watermark();
    SendReply(conn, reply);
    return;
  }
  if (loop_.Now() >= deadline) {
    // The applier never crossed the barrier (log hole, lost decide
    // traffic): let the client fail over to a healthier replica.
    ClientReply reply;
    reply.request_id = request_id;
    reply.status_code = static_cast<uint8_t>(StatusCode::kTimedOut);
    reply.value = "read barrier not applied";
    SendReply(conn, reply);
    return;
  }
  loop_.Schedule(2 * kMillisecond,
                 [this, conn, request_id, key = std::move(key), slot,
                  deadline]() mutable {
                   AnswerReadAtSlot(conn, request_id, std::move(key), slot,
                                    deadline);
                 });
}

void NodeServer::StartCatchUp() {
  std::vector<NodeId> peers;
  for (NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n != options_.node) peers.push_back(n);
  }
  if (peers.empty()) return;
  replica_->CatchUpViaSnapshot(peers, [this](const Status& st) {
    if (st.ok()) {
      ++catchups_completed_;
      DPAXOS_INFO("node " << options_.node << " caught up; watermark="
                          << applier_.applied_watermark());
    } else {
      // Normal on a fresh cluster (peers have nothing yet): log and move
      // on; ordinary decide traffic keeps us current from here.
      DPAXOS_INFO("node " << options_.node
                          << " catch-up did not complete: " << st.ToString());
    }
  });
}

void NodeServer::ScheduleCompactionSweep() {
  loop_.Schedule(options_.compaction_interval, [this] {
    const SlotId watermark = applier_.applied_watermark();
    const uint64_t retained = options_.replica.compaction_retained_suffix;
    if (watermark > retained) {
      Status st = replica_->Compact(watermark - retained);
      if (!st.ok() && !st.IsFailedPrecondition()) {
        DPAXOS_WARN("compaction failed: " << st.ToString());
      }
      if (st.ok() && wal_ != nullptr) {
        // The log prefix just shrank; fold the WAL down to full images
        // so recovery time tracks the live state, not history.
        Status ck = wal_->Checkpoint();
        if (!ck.ok()) {
          DPAXOS_WARN("wal checkpoint failed: " << ck.ToString());
        }
      }
    }
    ScheduleCompactionSweep();
  });
}

Status NodeServer::OpenWal() {
  Env* env = PosixEnv();
  if (options_.disk_faults) {
    fault_env_ = std::make_unique<FaultInjectingEnv>(PosixEnv());
    env = fault_env_.get();
  }
  WalOptions wopts;
  wopts.group_commit_delay = options_.wal_commit_delay;
  Result<std::unique_ptr<Wal>> wal =
      Wal::Open(env, options_.data_dir, wopts, &loop_);
  if (!wal.ok()) {
    // Corruption in a sealed segment (bit rot at rest): refuse to serve.
    // A node running on a damaged promise record can break Paxos safety.
    DPAXOS_WARN("node " << options_.node
                        << " wal open failed: " << wal.status().ToString());
    return wal.status();
  }
  host_->storage().AdoptWal(std::move(wal.value()));
  wal_ = host_->storage().wal();
  DPAXOS_INFO("node " << options_.node << " wal at " << options_.data_dir
                      << " seq=" << wal_->active_seq() << " torn_repairs="
                      << wal_->stats().torn_tail_truncations);
  if (options_.disk_faults) ScheduleFaultPoll();
  return Status::OK();
}

void NodeServer::ScheduleFaultPoll() {
  loop_.Schedule(50 * kMillisecond, [this] {
    // The control file is read through the REAL env: an armed eio_reads
    // fault must not be able to sever the channel that armed it.
    const std::string path = options_.data_dir + "/FAULTS";
    if (PosixEnv()->FileExists(path)) {
      Result<std::string> bytes = PosixEnv()->ReadFileToString(path);
      if (bytes.ok()) {
        DiskFaults& faults = fault_env_->faults();
        const std::string& text = bytes.value();
        size_t pos = 0;
        while (pos < text.size()) {
          size_t eol = text.find('\n', pos);
          if (eol == std::string::npos) eol = text.size();
          const std::string line = text.substr(pos, eol - pos);
          pos = eol + 1;
          long long n = 0;
          if (sscanf(line.c_str(), "eio_appends=%lld", &n) == 1) {
            faults.eio_appends = static_cast<int>(n);
          } else if (sscanf(line.c_str(), "eio_syncs=%lld", &n) == 1) {
            faults.eio_syncs = static_cast<int>(n);
          } else if (sscanf(line.c_str(), "eio_reads=%lld", &n) == 1) {
            faults.eio_reads = static_cast<int>(n);
          } else if (sscanf(line.c_str(), "lying_syncs=%lld", &n) == 1) {
            faults.lying_syncs = static_cast<int>(n);
          } else if (sscanf(line.c_str(), "short_write=%lld", &n) == 1) {
            faults.short_write_bytes = n;
          } else if (sscanf(line.c_str(), "torn_tail=%lld", &n) == 1) {
            faults.torn_tail_bytes = n;
          } else if (!line.empty()) {
            DPAXOS_WARN("node " << options_.node
                                << " ignoring fault command: " << line);
          }
        }
        DPAXOS_INFO("node " << options_.node << " armed disk faults");
      }
      PosixEnv()->DeleteFile(path);
    }
    ScheduleFaultPoll();
  });
}

void NodeServer::ScheduleAntiEntropySweep() {
  loop_.Schedule(options_.anti_entropy_interval, [this] {
    const SlotId watermark = applier_.applied_watermark();
    if (watermark == last_sweep_watermark_) {
      // No progress for a whole interval: either the cluster is idle (the
      // pull returns empty and costs one round trip) or we are wedged on a
      // log hole and the pull is what unwedges us. CatchUpFrom rejects
      // re-entry with Aborted, so firing every sweep is safe.
      std::vector<NodeId> peers;
      for (NodeId n = 0; n < topology_->num_nodes(); ++n) {
        if (n != options_.node) peers.push_back(n);
      }
      if (!peers.empty()) {
        std::rotate(peers.begin(),
                    peers.begin() + (sweep_count_ % peers.size()),
                    peers.end());
        ++catchup_repairs_;
        replica_->CatchUpFrom(peers, [](const Status&) {});
      }
    }
    last_sweep_watermark_ = applier_.applied_watermark();
    ++sweep_count_;
    ScheduleAntiEntropySweep();
  });
}

void NodeServer::ObserveOwnership(SlotId slot, const Value& value) {
  if (!IsOwnershipValueId(value.id)) return;
  std::optional<OwnershipRecord> record = DecodeOwnershipRecord(value);
  // A NodeServer hosts exactly partition 0; a record naming any other
  // partition in this log is hostile or corrupt, never applicable.
  if (!record.has_value() || record->partition != 0) return;
  if (!directory_->Observe(slot, *record)) return;
  last_transfer_time_ = loop_.Now();
  stalled_sweeps_ = 0;
  if (record->node == options_.node) steal_inflight_ = false;
  if (record->node != options_.node && record->node != kInvalidNode) {
    // Route future submissions straight at the new owner.
    replica_->set_leader_hint(record->node);
  }
  DPAXOS_INFO("node " << options_.node << " observed ownership transfer: owner="
                      << record->node << " zone=" << record->zone
                      << " epoch=" << record->epoch << " slot=" << slot);
}

void NodeServer::SchedulePlacementSweep() {
  loop_.Schedule(options_.placement_sweep_interval, [this] {
    const Timestamp now = loop_.Now();
    const ZoneId my_zone = topology_->ZoneOf(options_.node);
    const bool cooling = last_transfer_time_ != 0 &&
                         now - last_transfer_time_ < options_.steal_cooldown;
    // The incumbent this node would steal from: the directory's owner, or
    // (before any transfer record exists) the configured initial leader.
    NodeId incumbent = kInvalidNode;
    ZoneId incumbent_zone = my_zone;
    if (directory_->has_owner(0)) {
      incumbent = directory_->owner_node(0);
      incumbent_zone = directory_->owner_zone(0);
    } else if (options_.leader_hint != kInvalidNode) {
      incumbent = options_.leader_hint;
      incumbent_zone = topology_->ZoneOf(options_.leader_hint);
    }
    if (replica_->is_leader()) {
      // Owner side: each node only sees its own clients' arrivals, so
      // the owner's advice covers traffic that reached it directly
      // (centralized deployments); remote-zone arrivals trigger the
      // thief side below on the nodes that actually receive them.
      stalled_sweeps_ = 0;
      const PlacementAdvice advice =
          advisor_->Advise(*access_stats_, my_zone, now);
      if (advice.should_move) {
        if (cooling) {
          ++pingpongs_suppressed_;
          ++ThreadPerfCounters().placement_pingpongs_suppressed;
        } else {
          const NodeId thief =
              topology_->NodesInZone(advice.best_zone).front();
          if (thief != options_.node) {
            DPAXOS_INFO("node " << options_.node << " placement: inviting "
                                << thief << " (zone " << advice.best_zone
                                << ") to steal; cost "
                                << advice.current_cost_ms << "ms -> "
                                << advice.best_cost_ms << "ms");
            replica_->InviteSteal(thief);
          }
        }
      }
    } else if (incumbent != kInvalidNode && incumbent != options_.node) {
      // Thief side: local arrivals say this zone is where the traffic
      // is, yet the partition is owned elsewhere. The advisor's
      // hysteresis (min_weight, min_improvement) and the post-transfer
      // cooldown keep an even split from ping-ponging ownership.
      if (!steal_inflight_ && incumbent_zone != my_zone) {
        const PlacementAdvice advice =
            advisor_->Advise(*access_stats_, incumbent_zone, now);
        if (advice.should_move && advice.best_zone == my_zone) {
          if (cooling) {
            ++pingpongs_suppressed_;
            ++ThreadPerfCounters().placement_pingpongs_suppressed;
          } else {
            StartProtocolSteal(incumbent);
          }
        }
      }
      // Rescue path: clients keep arriving here and the applied
      // watermark is frozen — the incumbent is likely dead. Steal from
      // it; if it really is dead the steal times out into an ordinary
      // election and still commits the transfer record.
      const SlotId wm = applier_.applied_watermark();
      const bool stalled = options_.rescue_stalled_sweeps > 0 &&
                           wm == placement_sweep_watermark_ &&
                           puts_since_sweep_ > 0;
      if (stalled) {
        if (++stalled_sweeps_ >= options_.rescue_stalled_sweeps &&
            !steal_inflight_) {
          stalled_sweeps_ = 0;
          ++rescues_started_;
          DPAXOS_INFO("node " << options_.node
                              << " placement: rescuing stalled partition from "
                              << incumbent);
          StartProtocolSteal(incumbent);
        }
      } else {
        stalled_sweeps_ = 0;
      }
    }
    placement_sweep_watermark_ = applier_.applied_watermark();
    puts_since_sweep_ = 0;
    SchedulePlacementSweep();
  });
}

void NodeServer::StartProtocolSteal(NodeId incumbent) {
  if (!options_.ownership || steal_inflight_) return;
  if (incumbent == options_.node || replica_->is_leader()) return;
  steal_inflight_ = true;
  ++steals_attempted_;
  ++ThreadPerfCounters().placement_steals_attempted;
  OwnershipRecord record;
  record.partition = 0;
  record.zone = topology_->ZoneOf(options_.node);
  record.node = options_.node;
  record.epoch = directory_->epoch(0) + 1;
  // Node id in the high bits keeps transfer value ids unique across
  // concurrent thieves.
  const uint64_t seq =
      (static_cast<uint64_t>(options_.node) << 32) | ++transfer_seq_;
  replica_->StealOwnershipFrom(
      incumbent, MakeOwnershipTransferValue(record, seq),
      [this, incumbent](const Status& st) {
        steal_inflight_ = false;
        if (st.ok()) {
          ++steals_completed_;
          ++ThreadPerfCounters().placement_steals_completed;
          DPAXOS_INFO("node " << options_.node << " stole partition from "
                              << incumbent);
        } else {
          if (st.IsFailedPrecondition()) {
            ++steals_rejected_;
            ++ThreadPerfCounters().placement_steals_rejected;
          }
          DPAXOS_INFO("node " << options_.node << " steal from " << incumbent
                              << " failed: " << st.ToString());
        }
      });
}

std::string NodeServer::StatsString() const {
  const ProtocolCounters& pc = replica_->counters();
  const TcpTransportStats& ts = transport_->stats();
  std::string out;
  out += "node=" + std::to_string(options_.node);
  out += " mode=";
  out += ProtocolModeName(options_.mode);
  out += " is_leader=" + std::to_string(replica_->is_leader() ? 1 : 0);
  out += " watermark=" + std::to_string(applier_.applied_watermark());
  out += " applied=" + std::to_string(kv_.applied_commands());
  out += " keys=" + std::to_string(kv_.size());
  out += " checksum=" + std::to_string(kv_.Checksum());
  out += " snapshots_installed=" + std::to_string(pc.snapshots_installed);
  out += " log_compactions=" + std::to_string(pc.log_compactions);
  out += " catchups=" + std::to_string(catchups_completed_);
  out += " catchup_repairs=" + std::to_string(catchup_repairs_);
  out += " suspect_msgs=" + std::to_string(pc.suspect_msgs_rejected);
  out += " fast_commits=" + std::to_string(pc.fast_commits);
  out += " fast_fallbacks=" + std::to_string(pc.fast_fallbacks);
  out += " fast_votes=" + std::to_string(pc.fast_votes);
  out += " fast_conflicts=" + std::to_string(pc.fast_conflicts);
  // Ownership / placement fields: always emitted (zeros with ownership
  // off) so bench parsing never branches on the mode.
  out += " ownership=" + std::to_string(options_.ownership ? 1 : 0);
  const bool have_owner = directory_.has_value() && directory_->has_owner(0);
  out += " owner=" +
         std::to_string(have_owner ? directory_->owner_node(0) : kInvalidNode);
  out += " ownership_records=" +
         std::to_string(directory_.has_value() ? directory_->records_observed()
                                               : 0);
  out += " steal_requests_sent=" + std::to_string(pc.steal_requests_sent);
  out += " steal_requests_received=" +
         std::to_string(pc.steal_requests_received);
  out += " steals_granted=" + std::to_string(pc.steals_granted);
  out += " steals_refused=" + std::to_string(pc.steals_refused);
  out += " steals_won=" + std::to_string(pc.steals_won);
  out += " placement_steals_attempted=" + std::to_string(steals_attempted_);
  out += " placement_steals_completed=" + std::to_string(steals_completed_);
  out += " placement_steals_rejected=" + std::to_string(steals_rejected_);
  out += " placement_pingpongs_suppressed=" +
         std::to_string(pingpongs_suppressed_);
  out += " placement_rescues=" + std::to_string(rescues_started_);
  out += " tcp_bytes_in=" + std::to_string(ts.bytes_in);
  out += " tcp_bytes_out=" + std::to_string(ts.bytes_out);
  out += " tcp_reconnects=" + std::to_string(ts.reconnects);
  out += " tcp_frames_dropped=" + std::to_string(ts.frames_dropped);
  out += " tcp_malformed_frames=" + std::to_string(ts.malformed_frames);
  out += " tcp_accepts=" + std::to_string(ts.accepts);
  // Gather-write metrics are transport + reactor-pool combined: with
  // reactors on, client traffic flows through the pool while node
  // dialing stays on the transport.
  uint64_t writev_calls = ts.writev_calls;
  uint64_t frames_coalesced = ts.frames_coalesced;
  uint64_t rounds_busy = 0;
  uint64_t rounds_idle = 0;
  uint32_t reactors = 0;
  if (reactors_ != nullptr) {
    const ReactorPoolStats rs = reactors_->stats();
    writev_calls += rs.writev_calls;
    frames_coalesced += rs.frames_coalesced;
    rounds_busy = rs.rounds_busy;
    rounds_idle = rs.rounds_idle;
    reactors = reactors_->reactors();
  }
  out += " tcp_writev_calls=" + std::to_string(writev_calls);
  out += " tcp_frames_coalesced=" + std::to_string(frames_coalesced);
  out += " reactors=" + std::to_string(reactors);
  out += " reactor_rounds_busy=" + std::to_string(rounds_busy);
  out += " reactor_rounds_idle=" + std::to_string(rounds_idle);
  // Always emitted (zeros without --data-dir) so bench/checker parsing
  // never has to branch on durability mode.
  const WalStats ws = wal_ != nullptr ? wal_->stats() : WalStats{};
  out += " wal=" + std::to_string(wal_ != nullptr ? 1 : 0);
  out += " wal_appends=" + std::to_string(ws.appends);
  out += " wal_bytes=" + std::to_string(ws.bytes);
  out += " wal_fsyncs=" + std::to_string(ws.fsyncs);
  out += " wal_torn_tail_truncations=" + std::to_string(ws.torn_tail_truncations);
  out += " wal_sync_failures=" + std::to_string(ws.sync_failures);
  out += " wal_segments=" + std::to_string(ws.segments_created);
  out += " wal_checkpoints=" + std::to_string(ws.checkpoints);
  return out;
}

void NodeServer::InstallSignalHandlers() {
  g_signal_received = 0;
  g_signal_wakeup_fd = loop_.wakeup_fd();
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

int NodeServer::Run() {
  DPAXOS_CHECK(started_);
  while (!loop_.stopped() && g_signal_received == 0) {
    loop_.PollOnce(1 * kSecond);
  }
  const int signo = g_signal_received;
  if (signo != 0) {
    DPAXOS_INFO("node " << options_.node << " stopping on signal " << signo);
  }
  return signo;
}

void NodeServer::Shutdown() { loop_.Stop(); }

}  // namespace dpaxos
