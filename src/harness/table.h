// Plain-text aligned table output for the benchmark harness.
#ifndef DPAXOS_HARNESS_TABLE_H_
#define DPAXOS_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace dpaxos {

/// \brief Collects rows and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper: Fmt(12.345, 1) == "12.3".
std::string Fmt(double v, int precision = 1);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_TABLE_H_
