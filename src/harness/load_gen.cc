#include "harness/load_gen.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/tcp/event_loop.h"
#include "net/tcp/framing.h"

namespace dpaxos {

namespace {

constexpr size_t kMaxIovPerWrite = 64;
constexpr Duration kRedialDelay = 100 * kMillisecond;
constexpr Duration kArrivalTick = 1 * kMillisecond;
/// Duration-mode grace for draining in-flight requests past the end.
constexpr Duration kDrainGrace = 5 * kSecond;

class Driver {
 public:
  explicit Driver(const LoadGenOptions& options)
      : options_(options), loop_(options.seed) {}

  Result<LoadGenResult> Run();

 private:
  struct GenConn {
    uint32_t index = 0;
    size_t endpoint = 0;
    uint64_t client_id = 0;
    int fd = -1;
    bool established = false;
    bool want_write = false;
    bool flush_scheduled = false;
    uint64_t next_request_id = 1;
    FrameDecoder decoder;
    std::deque<std::string> outq;  ///< staged frames, gather-written
    size_t outpos = 0;
    /// request_id -> intended arrival (open loop) / issue time (closed).
    std::unordered_map<uint64_t, Timestamp> inflight;
    EventId redial_timer = 0;
  };

  void Dial(GenConn* conn);
  void ScheduleRedial(GenConn* conn);
  void ConnEvent(GenConn* conn, uint32_t events);
  void ReadReady(GenConn* conn);
  void OnReply(GenConn* conn, const ClientReply& reply);
  void OnConnError(GenConn* conn);
  void IssueOp(GenConn* conn, Timestamp intended_start);
  void TopUpClosedLoop(GenConn* conn);
  void IssueDueArrivals();
  void ScheduleArrivalTick();
  void ScheduleFlush(GenConn* conn);
  void FlushConn(GenConn* conn);
  bool StopIssuing() const;
  bool Done() const;
  uint64_t InflightTotal() const;

  const LoadGenOptions& options_;
  EventLoop loop_;
  std::vector<std::unique_ptr<GenConn>> conns_;
  Timestamp start_ = 0;
  uint64_t ops_issued_ = 0;
  uint64_t arrivals_issued_ = 0;  ///< open loop: arrivals already assigned
  uint64_t next_value_ = 1;
  uint64_t ops_ok_ = 0;
  uint64_t ops_failed_ = 0;
  uint64_t conn_errors_ = 0;
  Histogram latency_;
};

bool Driver::StopIssuing() const {
  if (options_.total_ops > 0) return ops_issued_ >= options_.total_ops;
  return loop_.Now() >= start_ + options_.duration;
}

uint64_t Driver::InflightTotal() const {
  uint64_t n = 0;
  for (const auto& conn : conns_) n += conn->inflight.size();
  return n;
}

bool Driver::Done() const {
  if (options_.total_ops > 0) {
    return ops_ok_ + ops_failed_ >= options_.total_ops;
  }
  if (loop_.Now() < start_ + options_.duration) return false;
  return InflightTotal() == 0 ||
         loop_.Now() >= start_ + options_.duration + kDrainGrace;
}

void Driver::Dial(GenConn* conn) {
  Result<int> fd = StartConnect(options_.endpoints[conn->endpoint]);
  if (!fd.ok()) {
    ++conn_errors_;
    ScheduleRedial(conn);
    return;
  }
  conn->fd = fd.value();
  conn->established = false;
  conn->want_write = true;  // EPOLLOUT armed to learn connect completion
  conn->decoder = FrameDecoder();
  conn->outq.clear();
  conn->outpos = 0;
  Status st = loop_.WatchFd(conn->fd, EPOLLIN | EPOLLOUT,
                            [this, conn](uint32_t ev) { ConnEvent(conn, ev); });
  if (!st.ok()) OnConnError(conn);
}

void Driver::ScheduleRedial(GenConn* conn) {
  if (conn->redial_timer != 0) return;
  conn->redial_timer = loop_.Schedule(kRedialDelay, [this, conn]() {
    conn->redial_timer = 0;
    // Rotate endpoints so a dead replica doesn't pin this connection.
    conn->endpoint = (conn->endpoint + 1) % options_.endpoints.size();
    if (!Done()) Dial(conn);
  });
}

void Driver::ConnEvent(GenConn* conn, uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    OnConnError(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!conn->established) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        OnConnError(conn);
        return;
      }
      SetNoDelay(conn->fd);
      conn->established = true;
      Hello hello;
      hello.kind = PeerKind::kClient;
      hello.id = conn->client_id;
      conn->outq.push_back(EncodeHelloFrame(hello));
      if (options_.rate == 0) TopUpClosedLoop(conn);
    }
    FlushConn(conn);
    if (conn->fd < 0) return;  // flush error closed it
  }
  if ((events & EPOLLIN) != 0) ReadReady(conn);
}

void Driver::ReadReady(GenConn* conn) {
  char buf[65536];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view body;
      for (;;) {
        const FrameDecoder::Next next = conn->decoder.Pop(&body);
        if (next == FrameDecoder::Next::kNeedMore) break;
        if (next == FrameDecoder::Next::kError) {
          OnConnError(conn);
          return;
        }
        Result<ClientReply> reply = ParseClientReply(body);
        if (!reply.ok()) {
          OnConnError(conn);
          return;
        }
        OnReply(conn, reply.value());
        if (conn->fd < 0) return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    OnConnError(conn);
    return;
  }
}

void Driver::OnReply(GenConn* conn, const ClientReply& reply) {
  auto it = conn->inflight.find(reply.request_id);
  if (it == conn->inflight.end()) return;  // stale (post-redial) reply
  const Timestamp intended = it->second;
  conn->inflight.erase(it);
  if (reply.status_code == 0) {
    ++ops_ok_;
    latency_.Add(loop_.Now() - intended);
  } else {
    ++ops_failed_;
  }
  if (options_.rate == 0) TopUpClosedLoop(conn);
}

void Driver::OnConnError(GenConn* conn) {
  if (conn->fd < 0) return;
  ++conn_errors_;
  // In-flight requests die with the connection: counted as failures,
  // never retried (an open-loop driver measures, it doesn't heal).
  ops_failed_ += conn->inflight.size();
  conn->inflight.clear();
  loop_.UnwatchFd(conn->fd);
  close(conn->fd);
  conn->fd = -1;
  conn->established = false;
  conn->want_write = false;
  conn->outq.clear();
  conn->outpos = 0;
  ScheduleRedial(conn);
}

void Driver::IssueOp(GenConn* conn, Timestamp intended_start) {
  ClientRequest req;
  req.request_id = conn->next_request_id++;
  req.op = ClientOp::kPut;
  req.key = options_.key_prefix +
            std::to_string(loop_.rng().NextBounded(
                options_.key_space == 0 ? 1 : options_.key_space));
  req.value = "v" + std::to_string(next_value_++);
  conn->inflight.emplace(req.request_id, intended_start);
  conn->outq.push_back(EncodeClientRequestFrame(req));
  ++ops_issued_;
  ScheduleFlush(conn);
}

void Driver::TopUpClosedLoop(GenConn* conn) {
  if (!conn->established) return;
  while (conn->inflight.size() < options_.pipeline && !StopIssuing()) {
    IssueOp(conn, loop_.Now());
  }
}

void Driver::IssueDueArrivals() {
  const Timestamp now = loop_.Now();
  const double per_op_us = 1e6 / options_.rate;
  const uint64_t target = static_cast<uint64_t>(
      static_cast<double>(now - start_) / per_op_us);
  while (arrivals_issued_ < target && !StopIssuing()) {
    // The arrival clock, not the send time, is the latency origin: if
    // every connection is at its pipeline cap the arrival simply waits,
    // and the wait is charged to the op (no coordinated omission).
    GenConn* picked = nullptr;
    for (size_t probe = 0; probe < conns_.size(); ++probe) {
      GenConn* cand =
          conns_[(arrivals_issued_ + probe) % conns_.size()].get();
      if (cand->established && cand->inflight.size() < options_.pipeline) {
        picked = cand;
        break;
      }
    }
    if (picked == nullptr) return;  // all saturated; arrears carry over
    const Timestamp intended =
        start_ + static_cast<Timestamp>(arrivals_issued_ * per_op_us);
    ++arrivals_issued_;
    IssueOp(picked, intended);
  }
}

void Driver::ScheduleArrivalTick() {
  loop_.Schedule(kArrivalTick, [this]() {
    IssueDueArrivals();
    if (!StopIssuing()) ScheduleArrivalTick();
  });
}

void Driver::ScheduleFlush(GenConn* conn) {
  if (conn->flush_scheduled) return;
  conn->flush_scheduled = true;
  // 0-delay: all frames staged in this dispatch round share one flush.
  loop_.Schedule(0, [this, conn]() {
    conn->flush_scheduled = false;
    if (conn->fd >= 0 && conn->established) FlushConn(conn);
  });
}

void Driver::FlushConn(GenConn* conn) {
  for (;;) {
    if (conn->outq.empty()) break;
    iovec iov[kMaxIovPerWrite];
    size_t niov = 0;
    for (const std::string& frame : conn->outq) {
      if (niov == kMaxIovPerWrite) break;
      const size_t skip = niov == 0 ? conn->outpos : 0;
      iov[niov].iov_base = const_cast<char*>(frame.data()) + skip;
      iov[niov].iov_len = frame.size() - skip;
      ++niov;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t n = sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      size_t remaining = static_cast<size_t>(n);
      while (remaining > 0) {
        std::string& front = conn->outq.front();
        const size_t left = front.size() - conn->outpos;
        if (remaining >= left) {
          remaining -= left;
          conn->outpos = 0;
          conn->outq.pop_front();
        } else {
          conn->outpos += remaining;
          remaining = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        loop_.UpdateFd(conn->fd, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    OnConnError(conn);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.UpdateFd(conn->fd, EPOLLIN);
  }
}

Result<LoadGenResult> Driver::Run() {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("load_gen: no endpoints");
  }
  if (options_.connections == 0) {
    return Status::InvalidArgument("load_gen: connections must be >= 1");
  }
  if (options_.total_ops == 0 && options_.duration == 0) {
    return Status::InvalidArgument("load_gen: no total_ops and no duration");
  }
  conns_.reserve(options_.connections);
  for (uint32_t i = 0; i < options_.connections; ++i) {
    auto conn = std::make_unique<GenConn>();
    conn->index = i;
    conn->endpoint = i % options_.endpoints.size();
    conn->client_id = options_.client_id_base + i;
    conns_.push_back(std::move(conn));
  }
  start_ = loop_.Now();
  for (auto& conn : conns_) Dial(conn.get());
  if (options_.rate > 0) ScheduleArrivalTick();
  const bool finished =
      loop_.RunUntil([this]() { return Done(); }, options_.timeout);
  const Timestamp end = loop_.Now();
  // Tear down sockets before the loop goes away.
  for (auto& conn : conns_) {
    if (conn->redial_timer != 0) loop_.Cancel(conn->redial_timer);
    if (conn->fd >= 0) {
      loop_.UnwatchFd(conn->fd);
      close(conn->fd);
      conn->fd = -1;
    }
  }
  LoadGenResult result;
  result.ops_ok = ops_ok_;
  result.ops_failed = ops_failed_ + InflightTotal();
  result.conn_errors = conn_errors_;
  result.elapsed_seconds = static_cast<double>(end - start_) / 1e6;
  result.achieved_ops = result.elapsed_seconds > 0
                            ? static_cast<double>(ops_ok_) /
                                  result.elapsed_seconds
                            : 0;
  result.offered_ops = options_.rate;
  result.latency = std::move(latency_);
  result.completed = finished;
  return result;
}

}  // namespace

Result<LoadGenResult> RunLoadGen(const LoadGenOptions& options) {
  Driver driver(options);
  return driver.Run();
}

}  // namespace dpaxos
