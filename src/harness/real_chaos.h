// End-to-end chaos for the real-network tier: a proxied multi-process
// cluster (RealCluster behind a ChaosProxy), a pool of retrying
// FailoverTcpClients recording a Jepsen-style history over the wall
// clock, a RealNemesis executing a declarative fault schedule, and the
// SAME Wing–Gong linearizability + session-guarantee checkers that
// judge the simulator tier (src/harness/lin_checker.h). Shared by
// tests/real_chaos_test.cc and `dpaxos_cli --experiment=realchaos`.
#ifndef DPAXOS_HARNESS_REAL_CHAOS_H_
#define DPAXOS_HARNESS_REAL_CHAOS_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "harness/lin_checker.h"
#include "net/tcp/chaos_proxy.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

struct RealChaosOptions {
  /// Server binary to exec (tests pass DPAXOS_CLI_PATH; the CLI passes
  /// /proc/self/exe).
  std::string server_binary;
  ProtocolMode mode = ProtocolMode::kLeaderZone;
  /// RealNemesis schedule name (see RealNemesis::ScheduleNames()), or
  /// "none" for a fault-free soak over the proxied links.
  std::string schedule = "mixed";
  uint64_t seed = 1;

  uint32_t zones = 2;
  uint32_t nodes_per_zone = 2;

  /// Run the servers with --fast-path: follower origins drive the fast
  /// quorum directly and fall back to classic forwarding on conflict or
  /// timeout (docs/PROTOCOL.md §fast-path). The checkers judge the
  /// resulting history exactly as in classic runs.
  bool fast_path = false;

  uint32_t num_clients = 4;
  /// Key-pool size. Sized so no key collects more than ~63 ops: the
  /// per-key linearizability search is bitmask based and reports
  /// over-long histories as failures (RunRealChaos widens the pool
  /// automatically if duration/think_time would overflow it).
  uint32_t num_keys = 32;
  double read_fraction = 0.4;
  /// Mean think time between a client's completion and its next op.
  Duration think_time = 50 * kMillisecond;

  /// Faulty phase length (nemesis horizon and workload span).
  Duration duration = 10 * kSecond;
  /// Post-quiesce budget for converging the appliers.
  Duration settle = 30 * kSecond;

  /// Per-operation failover budget (FailoverTcpClient overall timeout).
  Duration op_timeout = 4 * kSecond;

  /// Sustained-load soak riding alongside the checked workload: an
  /// open-loop LoadGen (harness/load_gen.h) against the proxied
  /// endpoints for the whole faulty phase. 0 connections disables. Soak
  /// traffic uses its own key prefix ("soak") and client-id range, so it
  /// pressures the serving path without polluting the checked history.
  uint32_t soak_connections = 0;
  uint32_t soak_pipeline = 64;
  double soak_rate = 500;  ///< offered ops/s across soak connections

  /// Directory for per-node server logs; empty inherits stdio.
  std::string log_dir;

  /// Durable mode: run every node with an acceptor WAL under
  /// `<data_dir_base>/node<N>` and with --disk-faults, so disk nemesis
  /// ops (and the "disk" schedule's whole-cluster power loss) apply.
  /// Requires data_dir_base to be set.
  bool durable = false;
  std::string data_dir_base;
  /// WAL group-commit window (forwarded as --wal-commit-us).
  Duration wal_commit_delay = 0;

  /// Run every node with --ownership (partition ownership directory +
  /// placement sweep). Required by — and forced on for — the "mobility"
  /// schedule, which SIGKILLs the incumbent leader mid-run: with no
  /// failure detector in the harness, the stalled-partition rescue steal
  /// is what restores liveness, and the checkers then judge the history
  /// across the ownership transfer.
  bool ownership = false;
  /// Placement sweep cadence / post-transfer cooldown forwarded to the
  /// servers (--placement-sweep-ms / --steal-cooldown-ms).
  Duration placement_sweep = 500 * kMillisecond;
  Duration steal_cooldown = 5 * kSecond;
  /// Ownership runs only: fraction of the run after which every checked
  /// client "moves" — re-dials a zone-1 replica and declares zone 1 on
  /// its requests — giving the placement sweep a locality shift to act
  /// on. Sequenced after the mobility schedule's kill of node 0 (at
  /// 20%), the steal this provokes finds its incumbent already dead and
  /// must fall back to an ordinary takeover election. <= 0 disables.
  double client_move_frac = 0.30;
};

struct RealChaosReport {
  ConsistencyReport consistency;

  uint64_t ops_invoked = 0;
  uint64_t ops_committed = 0;
  uint64_t ops_failed = 0;
  uint64_t ops_indeterminate = 0;
  uint64_t client_failovers = 0;  ///< endpoint rotations, all clients
  Histogram latency;  ///< completed-op latency under fault (microseconds)

  ChaosProxyStats proxy;       ///< fault-injection totals
  uint64_t nemesis_actions = 0;
  uint64_t nemesis_partitions = 0;
  uint64_t nemesis_pauses = 0;
  uint64_t nemesis_kills = 0;
  uint64_t nemesis_restarts = 0;
  uint64_t nemesis_corrupt_bursts = 0;
  uint64_t nemesis_disk_faults = 0;
  uint64_t nemesis_power_losses = 0;
  std::vector<std::string> nemesis_log;

  /// WAL counters summed post-quiesce (durable runs only; restarted
  /// nodes reset theirs, so lower bounds — but recovery re-journals the
  /// recovered state, so nonzero proves the WAL path was live).
  uint64_t wal_fsyncs = 0;
  uint64_t wal_torn_tail_truncations = 0;

  /// Node-side TCP damage counters, summed post-quiesce (restarted
  /// nodes reset theirs, so these are lower bounds under kill
  /// schedules).
  uint64_t tcp_reconnects = 0;
  uint64_t tcp_dropped_frames = 0;
  uint64_t tcp_malformed_frames = 0;

  /// Fast-path counters summed post-quiesce (same lower-bound caveat as
  /// the tcp counters; zero unless fast_path was on).
  uint64_t fast_commits = 0;
  uint64_t fast_fallbacks = 0;

  /// Ownership/steal counters summed post-quiesce (zero unless
  /// ownership was on; same lower-bound caveat for killed nodes).
  uint64_t steals_attempted = 0;
  uint64_t steals_completed = 0;
  uint64_t steals_rejected = 0;
  uint64_t pingpongs_suppressed = 0;
  uint64_t placement_rescues = 0;
  uint64_t steals_won = 0;
  uint64_t ownership_records = 0;  ///< max over nodes (directory depth)

  /// Soak-driver results (zero when the soak was disabled).
  uint64_t soak_ops_ok = 0;
  uint64_t soak_ops_failed = 0;
  uint64_t soak_conn_errors = 0;
  double soak_achieved_ops = 0;
  double soak_p99_ms = 0;

  bool converged = false;  ///< all nodes reached one identical state
  std::string error;       ///< non-empty if the run aborted early

  bool ok() const {
    return error.empty() && consistency.ok() && converged;
  }
  std::string Summary() const;
};

/// Run one real-network chaos scenario end to end.
RealChaosReport RunRealChaos(const RealChaosOptions& options);

/// The BENCH_realnet.json "chaos" section for one run (a complete JSON
/// object value, no trailing newline).
std::string RealChaosSectionJson(const RealChaosOptions& options,
                                 const RealChaosReport& report);

/// Splice `"chaos": <section>` into an existing BENCH_realnet.json
/// document, replacing any previous chaos section. `existing` may be
/// empty or unparseable — the result is then a fresh document holding
/// only the chaos section. Pure string transform (unit-tested in
/// tier-1); callers own file IO.
std::string MergeChaosIntoBenchJson(const std::string& existing,
                                    const std::string& chaos_section);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_REAL_CHAOS_H_
