#include "harness/realnet_bench.h"

#include <stdlib.h>
#include <time.h>

#include <cstdio>
#include <functional>
#include <thread>

#include "common/logging.h"
#include "harness/load_gen.h"
#include "harness/real_cluster.h"
#include "net/tcp/chaos_proxy.h"
#include "net/tcp/socket_util.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {

namespace {

Timestamp NowMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void SleepMillis(uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  nanosleep(&ts, nullptr);
}

uint64_t StatsU64(const std::string& stats, const std::string& key) {
  const std::string field = StatsField(stats, key);
  return field.empty() ? 0 : strtoull(field.c_str(), nullptr, 10);
}

// Commit `count` puts through `client`, retrying each request until it
// commits (leader elections and forwards surface as transient errors the
// first few times). Used for warmup and the degraded-cluster phase; the
// measured phase runs LoadGen instead.
Status CommitPuts(TcpClient& client, uint64_t count, uint64_t key_base,
                  uint64_t* committed) {
  for (uint64_t i = 0; i < count; ++i) {
    const std::string key = "k" + std::to_string((key_base + i) % 512);
    const std::string value = "v" + std::to_string(key_base + i);
    Status st;
    for (int attempt = 0; attempt < 50; ++attempt) {
      st = client.Put(key, value, 2 * kSecond);
      if (st.ok()) break;
      SleepMillis(20 + 10 * attempt);
    }
    if (!st.ok()) {
      return Status::Unavailable("put " + std::to_string(key_base + i) +
                                 " never committed: " + st.ToString());
    }
    if (committed != nullptr) ++(*committed);
  }
  return Status::OK();
}

// Poll `node`'s stats until its watermark reaches `target` and it
// reports at least one snapshot install.
Result<std::string> AwaitCatchUp(RealCluster& cluster, NodeId node,
                                 uint64_t target, Duration timeout) {
  const Timestamp deadline = NowMicros() + timeout;
  std::string last;
  while (NowMicros() < deadline) {
    Result<std::string> stats = cluster.Stats(node);
    if (stats.ok()) {
      last = stats.value();
      if (StatsU64(last, "watermark") >= target &&
          StatsU64(last, "snapshots_installed") >= 1) {
        return last;
      }
    }
    SleepMillis(100);
  }
  return Status::TimedOut("node " + std::to_string(node) +
                          " did not catch up; last stats: " + last);
}

/// One benchmark cell: which mode, whether the servers run the fast
/// path, and which node takes the measured load.
struct CellSpec {
  ProtocolMode mode = ProtocolMode::kLeaderZone;
  bool fast_path = false;
  NodeId target = 0;
  std::string label;
  /// Durable cell: per-node WALs under `<data_dir_base>/<label>/nodeN`.
  bool durable = false;
  std::string data_dir_base;
};

Result<RealnetModeResult> RunMode(const RealnetBenchOptions& options,
                                  const CellSpec& cell) {
  const ProtocolMode mode = cell.mode;
  RealClusterOptions copts;
  copts.server_binary = options.server_binary;
  copts.zones = 2;
  copts.nodes_per_zone = 2;
  copts.mode = mode;
  copts.seed = options.seed;
  copts.leader_hint = 0;
  copts.enable_compaction = true;
  copts.log_dir = options.log_dir;
  if (options.reactors > 0) {
    copts.extra_args.push_back("--reactors=" +
                               std::to_string(options.reactors));
  }
  if (options.reply_flush_us > 0) {
    copts.extra_args.push_back("--reply-flush-us=" +
                               std::to_string(options.reply_flush_us));
  }
  if (cell.fast_path) copts.extra_args.push_back("--fast-path");
  if (cell.durable) {
    copts.data_dir_base = cell.data_dir_base;
    copts.wal_commit_delay = options.wal_commit_delay;
  }
  RealCluster cluster(copts);
  Status st = cluster.Start();
  if (!st.ok()) return st;

  RealnetModeResult result;
  result.mode = mode;
  result.label = cell.label.empty() ? ProtocolModeName(mode) : cell.label;
  result.fast_path = cell.fast_path;
  result.target_node = cell.target;
  result.durable = cell.durable;

  // Warmup with a blocking client: absorb the initial leader election so
  // the measured phase starts against a settled cluster.
  TcpClient client(/*client_id=*/7001);
  st = client.Connect(cluster.endpoint(0), 2 * kSecond);
  if (!st.ok()) return st;
  st = CommitPuts(client, 8, 900000, nullptr);
  if (!st.ok()) return st;

  // Phase 1: measured open-loop async load against the cell's target
  // (the leader for the standard cells, an edge follower for the
  // edge-classic/edge-fast pair).
  LoadGenOptions lg;
  lg.endpoints = {cluster.endpoint(cell.target)};
  lg.connections = options.connections;
  lg.pipeline = options.pipeline;
  lg.rate = options.rate;
  lg.total_ops = options.requests;
  lg.timeout = 180 * kSecond;
  lg.client_id_base = 7100;
  lg.seed = options.seed;
  Result<LoadGenResult> load = RunLoadGen(lg);
  if (!load.ok()) return load.status();
  if (!load->completed || load->ops_ok == 0) {
    return Status::Unavailable(
        "measured phase did not complete: ok=" + std::to_string(load->ops_ok) +
        " failed=" + std::to_string(load->ops_failed));
  }
  result.measured_ops = load->ops_ok;
  result.measured_ops_failed = load->ops_failed;
  result.elapsed_seconds = load->elapsed_seconds;
  result.throughput_ops = load->achieved_ops;
  // In a closed loop every reply funds the next request, so offered ==
  // achieved by construction; reporting the configured 0 made the JSON
  // rows read as "no load was offered".
  result.offered_ops =
      options.rate > 0 ? load->offered_ops : load->achieved_ops;
  result.latency = std::move(load->latency);

  // Phase 2: SIGKILL the last follower (zone 1 keeps a live node, so
  // ft{0,0} quorums in every mode survive), keep committing.
  const NodeId victim = cluster.num_nodes() - 1;
  st = cluster.Kill(victim);
  if (!st.ok()) return st;
  st = CommitPuts(client, options.requests_while_down, options.requests,
                  &result.ops_while_down);
  if (!st.ok()) return st;

  // Phase 3: restart it with empty state. Compaction on the survivors
  // has truncated the log past what replay could serve, so rejoining
  // requires a genuine snapshot transfer over TCP.
  st = cluster.Restart(victim);
  if (!st.ok()) return st;
  Result<std::string> leader_stats = cluster.Stats(0);
  if (!leader_stats.ok()) return leader_stats.status();
  result.leader_watermark = StatsU64(leader_stats.value(), "watermark");
  Result<std::string> caught = AwaitCatchUp(cluster, victim,
                                            result.leader_watermark,
                                            30 * kSecond);
  if (!caught.ok()) return caught.status();
  result.snapshots_installed = StatsU64(caught.value(), "snapshots_installed");
  result.restarted_watermark = StatsU64(caught.value(), "watermark");
  // Re-read the leader AFTER the rejoin so both checksums cover the
  // same committed prefix (commits stopped before the restart).
  leader_stats = cluster.Stats(0);
  if (!leader_stats.ok()) return leader_stats.status();
  result.checksum_match =
      !StatsField(caught.value(), "checksum").empty() &&
              StatsField(caught.value(), "checksum") ==
                  StatsField(leader_stats.value(), "checksum")
          ? 1
          : 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    Result<std::string> stats = cluster.Stats(n);
    if (!stats.ok()) continue;
    result.tcp_reconnects += StatsU64(stats.value(), "tcp_reconnects");
    result.tcp_frames_dropped += StatsU64(stats.value(), "tcp_frames_dropped");
    result.tcp_malformed_frames +=
        StatsU64(stats.value(), "tcp_malformed_frames");
    result.tcp_bytes_out += StatsU64(stats.value(), "tcp_bytes_out");
    result.tcp_writev_calls += StatsU64(stats.value(), "tcp_writev_calls");
    result.tcp_frames_coalesced +=
        StatsU64(stats.value(), "tcp_frames_coalesced");
    result.fast_commits += StatsU64(stats.value(), "fast_commits");
    result.fast_fallbacks += StatsU64(stats.value(), "fast_fallbacks");
    result.wal_appends += StatsU64(stats.value(), "wal_appends");
    result.wal_bytes += StatsU64(stats.value(), "wal_bytes");
    result.wal_fsyncs += StatsU64(stats.value(), "wal_fsyncs");
  }

  client.Close();
  st = cluster.ShutdownAll();
  if (!st.ok()) return st;
  return result;
}

// Drive one mobility phase: `ops` blocking puts through `client`,
// per-op wall time into the phase histogram. The optional `stop` poll
// ends the phase early (the adaptive moved phase runs until the steal
// completes, not a fixed op count).
RealnetMobilityPhase RunMobilityPhase(
    FailoverTcpClient& client, const std::string& name, uint64_t ops,
    uint64_t key_base, const std::function<bool(uint64_t)>& stop) {
  RealnetMobilityPhase phase;
  phase.name = name;
  for (uint64_t i = 0; i < ops; ++i) {
    const std::string key = "m" + std::to_string((key_base + i) % 512);
    const std::string value = "v" + std::to_string(key_base + i);
    const Timestamp t0 = NowMicros();
    FailoverTcpClient::CallResult r =
        client.Call(ClientOp::kPut, key, value);
    if (r.status.ok()) {
      phase.latency.Add(NowMicros() - t0);
      ++phase.ops;
    } else {
      ++phase.ops_failed;
    }
    if (stop && stop(i)) break;
  }
  return phase;
}

// One mobility cell: 2x2 Leader Zone cluster, every inter-node link
// through a latency-shaping proxy (inter-zone slow, intra-zone fast),
// clients dialing their zone's replica DIRECTLY (the client link models
// "nearest edge", the proxied peer links model the WAN). The client
// commits from zone 0, moves to zone 1, and keeps committing. Adaptive
// cells run --ownership: zone 1's replica sees the local traffic, the
// placement sweep clears hysteresis, and it steals the partition via
// the StealRequest/OwnershipGrant exchange — after which commits close
// inside zone 1's quorum.
Result<RealnetMobilityResult> RunMobilityCell(
    const RealnetBenchOptions& options, bool adaptive) {
  const uint32_t kNodes = 4;
  Result<std::vector<uint16_t>> ports = PickFreeLoopbackPorts(kNodes);
  if (!ports.ok()) return ports.status();
  std::vector<HostPort> real_endpoints;
  for (uint16_t port : ports.value()) {
    real_endpoints.push_back(HostPort{"127.0.0.1", port});
  }

  ChaosProxyOptions popts;
  popts.upstreams = real_endpoints;
  popts.zones = 2;
  popts.seed = options.seed;
  ChaosProxy proxy(popts);
  Status st = proxy.Start();
  if (!st.ok()) return st;
  auto shape = [&proxy](int32_t src_zone, int32_t dst_zone, double ms) {
    LinkSelector sel;
    sel.src_zone = src_zone;
    sel.dst_zone = dst_zone;
    LinkFault f;
    f.latency = static_cast<Duration>(ms * static_cast<double>(kMillisecond));
    proxy.AddFault(sel, f);
  };
  shape(0, 1, options.mobility_inter_oneway_ms);
  shape(1, 0, options.mobility_inter_oneway_ms);
  shape(0, 0, options.mobility_intra_oneway_ms);
  shape(1, 1, options.mobility_intra_oneway_ms);

  RealClusterOptions copts;
  copts.server_binary = options.server_binary;
  copts.zones = 2;
  copts.nodes_per_zone = 2;
  copts.mode = ProtocolMode::kLeaderZone;  // zone-local commit quorums
  copts.seed = options.seed;
  copts.leader_hint = 0;
  copts.enable_compaction = true;
  copts.log_dir = options.log_dir;
  copts.listen_endpoints = real_endpoints;
  copts.peer_view = proxy.endpoints();
  if (options.reactors > 0) {
    copts.extra_args.push_back("--reactors=" +
                               std::to_string(options.reactors));
  }
  if (adaptive) {
    copts.extra_args.push_back("--ownership");
    copts.extra_args.push_back("--placement-sweep-ms=300");
    copts.extra_args.push_back("--steal-cooldown-ms=2000");
  }
  RealCluster cluster(copts);
  st = cluster.Start();
  if (!st.ok()) {
    proxy.Stop();
    return st;
  }

  RealnetMobilityResult result;
  result.adaptive = adaptive;
  result.label = adaptive ? "mobility/adaptive" : "mobility/static";
  result.inter_oneway_ms = options.mobility_inter_oneway_ms;
  result.intra_rtt_ms = 2 * options.mobility_intra_oneway_ms;

  auto cleanup_fail = [&](const Status& why) -> Status {
    cluster.ShutdownAll();
    proxy.Stop();
    return Status::Internal(result.label + ": " + why.ToString());
  };

  // Warmup: settle the initial leader at node 0 (zone 0).
  TcpClient warm(/*client_id=*/7301);
  st = warm.Connect(cluster.endpoint(0), 2 * kSecond);
  if (!st.ok()) return cleanup_fail(st);
  st = CommitPuts(warm, 8, 910000, nullptr);
  if (!st.ok()) return cleanup_fail(st);
  warm.Close();

  // The mobile client: one identity for the whole tour, endpoint list
  // indexed by node id so redirect hints resolve.
  FailoverTcpClient mobile(/*client_id=*/7302, real_endpoints);
  const uint64_t ops = options.mobility_phase_ops;

  // Phase "local": the client lives in zone 0, dials node 0.
  mobile.set_zone(0);
  mobile.set_endpoint(0);
  result.phases.push_back(
      RunMobilityPhase(mobile, "local", ops, 0, nullptr));

  // Phase "moved": the client moves to zone 1 and dials node 2. Static:
  // every put is forwarded across the WAN to the stale leader. Adaptive:
  // node 2's sweep sees the zone-1 traffic and steals the partition;
  // the phase runs until the first completed steal shows in its stats.
  mobile.set_zone(1);
  mobile.set_endpoint(2);
  const Timestamp moved_start = NowMicros();
  std::function<bool(uint64_t)> stop;
  if (adaptive) {
    const Timestamp steal_deadline = moved_start + options.mobility_steal_wait;
    stop = [&](uint64_t i) {
      if ((i + 1) % 4 != 0) return false;
      Result<std::string> stats = cluster.Stats(2);
      if (stats.ok() &&
          StatsU64(stats.value(), "placement_steals_completed") >= 1) {
        return true;
      }
      return NowMicros() >= steal_deadline;
    };
  }
  const uint64_t moved_ops = adaptive ? 100000 : ops;
  result.phases.push_back(
      RunMobilityPhase(mobile, "moved", moved_ops, 1000, stop));
  if (adaptive) {
    result.migration_seconds =
        static_cast<double>(NowMicros() - moved_start) / 1e6;
    Result<std::string> stats = cluster.Stats(2);
    if (!stats.ok() ||
        StatsU64(stats.value(), "placement_steals_completed") < 1) {
      return cleanup_fail(Status::TimedOut(
          "no protocol steal completed within the moved phase"));
    }
  }

  // Phase "post": steady state after the move — the gated histogram.
  result.phases.push_back(
      RunMobilityPhase(mobile, "post", ops, 2000, nullptr));
  mobile.Close();

  // Straggler: a zone-0 client still dialing node 0 after the steal. In
  // the adaptive cell its first reply carries a redirect hint to the new
  // owner, which the failover client follows.
  FailoverTcpClient straggler(/*client_id=*/7303, real_endpoints);
  straggler.set_zone(0);
  straggler.set_endpoint(0);
  for (uint64_t i = 0; i < 5; ++i) {
    straggler.Call(ClientOp::kPut, "m-straggler", "v" + std::to_string(i));
  }
  result.redirects_followed = straggler.redirects_followed();
  straggler.Close();

  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    Result<std::string> stats = cluster.Stats(n);
    if (!stats.ok()) continue;
    const std::string& s = stats.value();
    result.steals_attempted += StatsU64(s, "placement_steals_attempted");
    result.steals_completed += StatsU64(s, "placement_steals_completed");
    result.steals_rejected += StatsU64(s, "placement_steals_rejected");
    result.pingpongs_suppressed += StatsU64(s, "placement_pingpongs_suppressed");
    result.steal_requests_sent += StatsU64(s, "steal_requests_sent");
    result.steals_granted += StatsU64(s, "steals_granted");
    result.steals_won += StatsU64(s, "steals_won");
    const uint64_t records = StatsU64(s, "ownership_records");
    if (records > result.ownership_records) result.ownership_records = records;
  }

  if (adaptive) {
    const RealnetMobilityPhase& post = result.phases.back();
    result.gate_pass = post.ops > 0 &&
                       post.latency.P50Millis() < 2 * result.intra_rtt_ms;
  }

  st = cluster.ShutdownAll();
  proxy.Stop();
  if (!st.ok()) return Status::Internal(result.label + ": " + st.ToString());
  return result;
}

}  // namespace

Result<RealnetBenchReport> RunRealnetBench(const RealnetBenchOptions& options) {
  RealnetBenchReport report;
  std::vector<CellSpec> cells;
  for (ProtocolMode mode : options.modes) {
    cells.push_back(CellSpec{mode, /*fast_path=*/false, /*target=*/0, ""});
  }
  if (options.fast_path_cells && !options.modes.empty()) {
    // The edge pair runs the first mode with the load aimed at a
    // follower: "edge-classic" pays forward-to-leader + classic commit,
    // "edge-fast" lets the origin drive the fast quorum directly — the
    // round trip the fast path collapses.
    const ProtocolMode mode = options.modes.front();
    const std::string base = ProtocolModeName(mode);
    cells.push_back(CellSpec{mode, /*fast_path=*/false, options.edge_node,
                             base + "/edge-classic"});
    cells.push_back(CellSpec{mode, /*fast_path=*/true, options.edge_node,
                             base + "/edge-fast"});
  }
  if (options.durable_cell && !options.modes.empty()) {
    // The durability cell: the first mode again, but every ack waits
    // for a real fdatasync into a per-node WAL. Against the volatile
    // row of the same mode this is the measured price of durability —
    // and the killed node restarts from its disk instead of empty.
    std::string base = options.data_dir_base;
    if (base.empty()) {
      char tmpl[] = "/tmp/dpaxos_bench_wal.XXXXXX";
      const char* made = mkdtemp(tmpl);
      if (made == nullptr) {
        return Status::Unavailable("mkdtemp for the durable cell failed");
      }
      base = made;
    }
    const ProtocolMode mode = options.modes.front();
    CellSpec cell{mode, /*fast_path=*/false, /*target=*/0,
                  std::string(ProtocolModeName(mode)) + "/durable"};
    cell.durable = true;
    cell.data_dir_base = base;
    cells.push_back(cell);
  }
  for (const CellSpec& cell : cells) {
    const std::string label =
        cell.label.empty() ? ProtocolModeName(cell.mode) : cell.label;
    DPAXOS_INFO("realnet: running cell " << label);
    Result<RealnetModeResult> result = RunMode(options, cell);
    if (!result.ok()) {
      return Status::Internal(label + ": " + result.status().ToString());
    }
    report.results.push_back(std::move(result.value()));
  }
  if (options.mobility) {
    // The pair shares one seed and one latency shape; only --ownership
    // differs, so the adaptive row's post-migration drop is attributable
    // to the protocol steal alone.
    for (bool adaptive : {false, true}) {
      DPAXOS_INFO("realnet: running cell mobility/"
                  << (adaptive ? "adaptive" : "static"));
      Result<RealnetMobilityResult> cell = RunMobilityCell(options, adaptive);
      if (!cell.ok()) return cell.status();
      report.mobility.push_back(std::move(cell.value()));
    }
  }
  return report;
}

std::string RealnetReportToJson(const RealnetBenchOptions& options,
                                const RealnetBenchReport& report) {
  char buf[320];
  std::string out = "{\n  \"benchmark\": \"realnet\",\n";
  snprintf(buf, sizeof(buf),
           "  \"requests_per_mode\": %llu,\n"
           "  \"hardware_threads\": %u,\n  \"reactors\": %u,\n"
           "  \"open_loop\": {\"connections\": %u, \"pipeline\": %u, "
           "\"rate_ops\": %.1f},\n  \"modes\": [\n",
           static_cast<unsigned long long>(options.requests),
           std::thread::hardware_concurrency(), options.reactors,
           options.connections, options.pipeline, options.rate);
  out += buf;
  for (size_t i = 0; i < report.results.size(); ++i) {
    const RealnetModeResult& r = report.results[i];
    snprintf(buf, sizeof(buf),
             "    {\"mode\": \"%s\", \"label\": \"%s\", "
             "\"fast_path\": %s, \"target_node\": %u,\n"
             "     \"measured_ops\": %llu, "
             "\"measured_ops_failed\": %llu, \"ops_while_down\": %llu,\n"
             "     \"elapsed_s\": %.3f, \"throughput_ops\": %.1f, "
             "\"offered_ops\": %.1f,\n",
             ProtocolModeName(r.mode),
             r.label.empty() ? ProtocolModeName(r.mode) : r.label.c_str(),
             r.fast_path ? "true" : "false", r.target_node,
             static_cast<unsigned long long>(r.measured_ops),
             static_cast<unsigned long long>(r.measured_ops_failed),
             static_cast<unsigned long long>(r.ops_while_down),
             r.elapsed_seconds, r.throughput_ops, r.offered_ops);
    out += buf;
    snprintf(buf, sizeof(buf),
             "     \"fast\": {\"commits\": %llu, \"fallbacks\": %llu},\n",
             static_cast<unsigned long long>(r.fast_commits),
             static_cast<unsigned long long>(r.fast_fallbacks));
    out += buf;
    const double fsyncs_per_op =
        r.measured_ops > 0
            ? static_cast<double>(r.wal_fsyncs) /
                  static_cast<double>(r.measured_ops)
            : 0;
    snprintf(buf, sizeof(buf),
             "     \"durability\": {\"durable\": %s, \"wal_appends\": %llu, "
             "\"wal_bytes\": %llu, \"wal_fsyncs\": %llu, "
             "\"fsyncs_per_op\": %.3f},\n",
             r.durable ? "true" : "false",
             static_cast<unsigned long long>(r.wal_appends),
             static_cast<unsigned long long>(r.wal_bytes),
             static_cast<unsigned long long>(r.wal_fsyncs), fsyncs_per_op);
    out += buf;
    snprintf(buf, sizeof(buf),
             "     \"latency_ms\": {\"mean\": %.3f, \"p50\": %.3f, "
             "\"p99\": %.3f, \"p999\": %.3f, \"max\": %.3f},\n",
             r.latency.MeanMillis(), r.latency.P50Millis(),
             r.latency.P99Millis(), r.latency.P999Millis(),
             ToMillis(r.latency.Max()));
    out += buf;
    snprintf(buf, sizeof(buf),
             "     \"recovery\": {\"snapshots_installed\": %llu, "
             "\"restarted_watermark\": %llu, \"leader_watermark\": %llu, "
             "\"checksum_match\": %llu},\n",
             static_cast<unsigned long long>(r.snapshots_installed),
             static_cast<unsigned long long>(r.restarted_watermark),
             static_cast<unsigned long long>(r.leader_watermark),
             static_cast<unsigned long long>(r.checksum_match));
    out += buf;
    const double frames_per_writev =
        r.tcp_writev_calls > 0
            ? static_cast<double>(r.tcp_writev_calls + r.tcp_frames_coalesced) /
                  static_cast<double>(r.tcp_writev_calls)
            : 0;
    snprintf(buf, sizeof(buf),
             "     \"tcp\": {\"reconnects\": %llu, \"frames_dropped\": %llu, "
             "\"malformed_frames\": %llu, \"bytes_out\": %llu,\n"
             "      \"writev_calls\": %llu, \"frames_coalesced\": %llu, "
             "\"frames_per_writev\": %.2f}}%s\n",
             static_cast<unsigned long long>(r.tcp_reconnects),
             static_cast<unsigned long long>(r.tcp_frames_dropped),
             static_cast<unsigned long long>(r.tcp_malformed_frames),
             static_cast<unsigned long long>(r.tcp_bytes_out),
             static_cast<unsigned long long>(r.tcp_writev_calls),
             static_cast<unsigned long long>(r.tcp_frames_coalesced),
             frames_per_writev, i + 1 < report.results.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  if (!report.mobility.empty()) {
    out += "  \"mobility\": [\n";
    for (size_t i = 0; i < report.mobility.size(); ++i) {
      const RealnetMobilityResult& m = report.mobility[i];
      snprintf(buf, sizeof(buf),
               "    {\"label\": \"%s\", \"adaptive\": %s, "
               "\"inter_oneway_ms\": %.1f, \"intra_rtt_ms\": %.1f, "
               "\"gate_ms\": %.1f, \"gate_pass\": %s,\n"
               "     \"migration_s\": %.3f, \"redirects_followed\": %llu,\n",
               m.label.c_str(), m.adaptive ? "true" : "false",
               m.inter_oneway_ms, m.intra_rtt_ms, 2 * m.intra_rtt_ms,
               m.gate_pass ? "true" : "false", m.migration_seconds,
               static_cast<unsigned long long>(m.redirects_followed));
      out += buf;
      snprintf(buf, sizeof(buf),
               "     \"steals\": {\"attempted\": %llu, \"completed\": %llu, "
               "\"rejected\": %llu, \"pingpongs_suppressed\": %llu,\n"
               "      \"requests_sent\": %llu, \"granted\": %llu, "
               "\"won\": %llu, \"ownership_records\": %llu},\n",
               static_cast<unsigned long long>(m.steals_attempted),
               static_cast<unsigned long long>(m.steals_completed),
               static_cast<unsigned long long>(m.steals_rejected),
               static_cast<unsigned long long>(m.pingpongs_suppressed),
               static_cast<unsigned long long>(m.steal_requests_sent),
               static_cast<unsigned long long>(m.steals_granted),
               static_cast<unsigned long long>(m.steals_won),
               static_cast<unsigned long long>(m.ownership_records));
      out += buf;
      out += "     \"phases\": [\n";
      for (size_t p = 0; p < m.phases.size(); ++p) {
        const RealnetMobilityPhase& ph = m.phases[p];
        snprintf(buf, sizeof(buf),
                 "      {\"name\": \"%s\", \"ops\": %llu, "
                 "\"ops_failed\": %llu, \"latency_ms\": "
                 "{\"mean\": %.3f, \"p50\": %.3f, \"p99\": %.3f, "
                 "\"max\": %.3f}}%s\n",
                 ph.name.c_str(), static_cast<unsigned long long>(ph.ops),
                 static_cast<unsigned long long>(ph.ops_failed),
                 ph.latency.MeanMillis(), ph.latency.P50Millis(),
                 ph.latency.P99Millis(), ToMillis(ph.latency.Max()),
                 p + 1 < m.phases.size() ? "," : "");
        out += buf;
      }
      out += std::string("     ]}") +
             (i + 1 < report.mobility.size() ? "," : "") + "\n";
    }
    out += "  ],\n";
  }
  out += std::string("  \"clean_shutdown\": ") +
         (report.clean_shutdown ? "true" : "false") + "\n}\n";
  return out;
}

}  // namespace dpaxos
