#include "harness/table.h"

#include <algorithm>
#include <cstdio>

namespace dpaxos {

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace dpaxos
