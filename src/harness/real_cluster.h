// RealCluster: fork/exec harness for a multi-process DPaxos cluster on
// loopback. Each node is one `dpaxos_cli --serve` child process; the
// harness owns their lifecycle (spawn, kill -9, respawn with identical
// argv, graceful SIGTERM shutdown) so tests and the realnet benchmark
// can exercise crash/recovery over real sockets.
#ifndef DPAXOS_HARNESS_REAL_CLUSTER_H_
#define DPAXOS_HARNESS_REAL_CLUSTER_H_

#include <string>
#include <sys/types.h>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/tcp/socket_util.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

struct RealClusterOptions {
  /// Path to the server binary (dpaxos_cli). Tests compile it in via
  /// DPAXOS_CLI_PATH; the CLI's own realnet experiment uses
  /// /proc/self/exe.
  std::string server_binary;
  uint32_t zones = 2;
  uint32_t nodes_per_zone = 2;
  ProtocolMode mode = ProtocolMode::kLeaderZone;
  uint64_t seed = 1;
  /// Forwarding hint handed to every node (writes to a follower forward
  /// here instead of triggering a competing election).
  NodeId leader_hint = 0;
  /// Enable periodic server-side compaction so a restarted node must
  /// catch up via snapshot transfer, not log replay.
  bool enable_compaction = true;
  uint64_t compaction_retained_suffix = 64;
  Duration compaction_interval = 200 * kMillisecond;
  Duration catchup_delay = 200 * kMillisecond;
  /// Non-empty = durable mode: node N runs with
  /// `--data-dir=<data_dir_base>/node<N>` (acceptor WAL, storage/wal.h).
  /// A killed-and-restarted node then recovers from its disk instead of
  /// starting empty — which is what makes whole-cluster power loss
  /// (every node SIGKILLed at once) survivable.
  std::string data_dir_base;
  /// Durable mode: run children with --disk-faults so tests can arm
  /// injected disk faults by writing <data_dir>/FAULTS control files.
  bool disk_faults = false;
  /// WAL group-commit window forwarded as --wal-commit-us.
  Duration wal_commit_delay = 0;
  /// Extra `--flag=value` style args appended to every child's argv.
  std::vector<std::string> extra_args;
  /// Where child stdout/stderr goes: empty = inherit (interleaved on
  /// the test's output), else one `<dir>/node<N>.log` per child.
  std::string log_dir;
  /// Pre-assigned listen endpoints (one per node, in NodeId order).
  /// Empty = Start() picks free loopback ports itself. Chaos harnesses
  /// pre-pick so a ChaosProxy can be built around the real addresses
  /// before any child spawns.
  std::vector<HostPort> listen_endpoints;
  /// What node i dials to reach node j (j != i): peer_view[j]. Empty =
  /// the real listen endpoints. Pointing this at ChaosProxy::endpoints()
  /// routes every inter-node link through the proxy; each node still
  /// binds its own REAL endpoint (its own cluster slot is never
  /// substituted).
  std::vector<HostPort> peer_view;
};

/// \brief Owns N `dpaxos_cli --serve` child processes on 127.0.0.1.
class RealCluster {
 public:
  explicit RealCluster(RealClusterOptions options);
  /// Kills (SIGKILL) any children still alive.
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Pick ports, spawn every node, and wait until all answer a Stats
  /// round-trip (or `ready_timeout` expires).
  Status Start(Duration ready_timeout = 10 * kSecond);

  uint32_t num_nodes() const {
    return options_.zones * options_.nodes_per_zone;
  }
  const RealClusterOptions& options() const { return options_; }
  const HostPort& endpoint(NodeId node) const { return endpoints_[node]; }
  bool alive(NodeId node) const { return pids_[node] > 0; }
  bool paused(NodeId node) const { return paused_[node]; }
  pid_t pid(NodeId node) const { return pids_[node]; }

  /// SIGKILL one node (crash fault: no shutdown path runs).
  Status Kill(NodeId node);

  /// Reap a child that exited on its own (a WAL fsync-failure panic
  /// aborts the process, for example). Returns true when the node is no
  /// longer running — Restart() is then legal. False = still alive.
  bool ReapIfExited(NodeId node);

  /// Durable mode: node `n`'s WAL directory ("" when data_dir_base is
  /// unset).
  std::string node_data_dir(NodeId node) const {
    if (options_.data_dir_base.empty()) return "";
    return options_.data_dir_base + "/node" + std::to_string(node);
  }

  /// SIGSTOP one node: the process is wedged mid-execution — sockets
  /// stay open and accept()ed but nothing is read, which is a *hung*
  /// server, not a dead one (clients need receive timeouts + failover
  /// to survive it, unlike a crash's prompt RST/EOF).
  Status Pause(NodeId node);
  /// SIGCONT a paused node; it resumes exactly where it stopped.
  Status Resume(NodeId node);

  /// Respawn a previously killed node with its original argv — same
  /// identity, same port, empty state. Its server pulls a snapshot from
  /// the survivors on startup.
  Status Restart(NodeId node, Duration ready_timeout = 10 * kSecond);

  /// Blocking Stats round-trip against one node.
  Result<std::string> Stats(NodeId node, Duration timeout = 2 * kSecond);

  /// SIGTERM every child and reap it. Fails if any child did not exit
  /// cleanly (nonzero status or forced SIGKILL after `grace`).
  Status ShutdownAll(Duration grace = 5 * kSecond);

 private:
  Status SpawnNode(NodeId node);
  Status WaitReady(NodeId node, Duration timeout);
  std::vector<std::string> BuildArgv(NodeId node) const;

  RealClusterOptions options_;
  std::vector<HostPort> endpoints_;
  std::vector<pid_t> pids_;
  /// char, not bool: vector<bool> proxies break the &paused_[n] idiom.
  std::vector<char> paused_;
};

/// Parse one `key=value ...` stats line (as served by the kStats op)
/// into the value for `key`, or "" if absent.
std::string StatsField(const std::string& stats, const std::string& key);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_REAL_CLUSTER_H_
