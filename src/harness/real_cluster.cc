#include "harness/real_cluster.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "net/tcp/tcp_client.h"

namespace dpaxos {

namespace {

// CLI spelling of a protocol mode (ParseMode in tools/dpaxos_cli.cc).
const char* ModeFlag(ProtocolMode mode) {
  switch (mode) {
    case ProtocolMode::kLeaderZone:
      return "leaderzone";
    case ProtocolMode::kDelegate:
      return "delegate";
    case ProtocolMode::kFlexiblePaxos:
      return "fpaxos";
    case ProtocolMode::kMultiPaxos:
      return "multipaxos";
    case ProtocolMode::kLeaderless:
      return "leaderless";
  }
  return "leaderzone";
}

Timestamp NowMillis() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void SleepMillis(uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  nanosleep(&ts, nullptr);
}

}  // namespace

std::string StatsField(const std::string& stats, const std::string& key) {
  const std::string needle = key + "=";
  size_t pos = 0;
  while (pos < stats.size()) {
    size_t end = stats.find(' ', pos);
    if (end == std::string::npos) end = stats.size();
    if (stats.compare(pos, needle.size(), needle) == 0) {
      return stats.substr(pos + needle.size(), end - pos - needle.size());
    }
    pos = end + 1;
  }
  return "";
}

RealCluster::RealCluster(RealClusterOptions options)
    : options_(std::move(options)) {
  DPAXOS_CHECK(!options_.server_binary.empty());
  DPAXOS_CHECK(options_.listen_endpoints.empty() ||
               options_.listen_endpoints.size() == num_nodes());
  DPAXOS_CHECK(options_.peer_view.empty() ||
               options_.peer_view.size() == num_nodes());
  pids_.assign(num_nodes(), -1);
  paused_.assign(num_nodes(), 0);
}

RealCluster::~RealCluster() {
  for (NodeId n = 0; n < pids_.size(); ++n) {
    if (pids_[n] > 0) {
      if (paused_[n]) kill(pids_[n], SIGCONT);
      kill(pids_[n], SIGKILL);
      waitpid(pids_[n], nullptr, 0);
      pids_[n] = -1;
    }
  }
}

std::vector<std::string> RealCluster::BuildArgv(NodeId node) const {
  // Each child sees its OWN slot as the real bind address; other slots
  // come from peer_view when set (the chaos proxy's listeners), so every
  // inter-node dial crosses the proxy while the listener stays real.
  std::string cluster_csv;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    if (i > 0) cluster_csv += ",";
    const bool proxied = !options_.peer_view.empty() && i != node;
    cluster_csv +=
        (proxied ? options_.peer_view[i] : endpoints_[i]).ToString();
  }
  std::vector<std::string> argv;
  argv.push_back(options_.server_binary);
  argv.push_back("--serve");
  argv.push_back("--node=" + std::to_string(node));
  argv.push_back("--cluster=" + cluster_csv);
  argv.push_back("--zones=" + std::to_string(options_.zones));
  argv.push_back(std::string("--mode=") + ModeFlag(options_.mode));
  argv.push_back("--seed=" +
                 std::to_string(options_.seed + 1000 * (node + 1)));
  argv.push_back("--hint=" + std::to_string(options_.leader_hint));
  argv.push_back("--catchup-delay-ms=" +
                 std::to_string(options_.catchup_delay / kMillisecond));
  if (options_.enable_compaction) {
    argv.push_back("--compaction-interval-ms=" +
                   std::to_string(options_.compaction_interval / kMillisecond));
    argv.push_back("--compaction-retain=" +
                   std::to_string(options_.compaction_retained_suffix));
  }
  if (!options_.data_dir_base.empty()) {
    argv.push_back("--data-dir=" + node_data_dir(node));
    if (options_.wal_commit_delay > 0) {
      argv.push_back("--wal-commit-us=" +
                     std::to_string(options_.wal_commit_delay / kMicrosecond));
    }
    if (options_.disk_faults) argv.push_back("--disk-faults");
  }
  for (const std::string& extra : options_.extra_args) argv.push_back(extra);
  return argv;
}

Status RealCluster::SpawnNode(NodeId node) {
  std::vector<std::string> argv = BuildArgv(node);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& arg : argv) cargv.push_back(arg.data());
  cargv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    return Status::Unavailable(std::string("fork: ") + strerror(errno));
  }
  if (pid == 0) {
    if (!options_.log_dir.empty()) {
      const std::string path =
          options_.log_dir + "/node" + std::to_string(node) + ".log";
      int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
    }
    execv(cargv[0], cargv.data());
    // Only reached on exec failure; _exit avoids running parent atexit
    // hooks twice.
    fprintf(stderr, "execv %s: %s\n", cargv[0], strerror(errno));
    _exit(127);
  }
  pids_[node] = pid;
  return Status::OK();
}

Status RealCluster::WaitReady(NodeId node, Duration timeout) {
  const Timestamp deadline = NowMillis() + timeout / kMillisecond;
  while (NowMillis() < deadline) {
    // Fail fast if the child already died (bad flags, port stolen, ...).
    int wstatus = 0;
    pid_t reaped = waitpid(pids_[node], &wstatus, WNOHANG);
    if (reaped == pids_[node]) {
      pids_[node] = -1;
      return Status::Unavailable("node " + std::to_string(node) +
                                 " exited during startup (status " +
                                 std::to_string(wstatus) + ")");
    }
    TcpClient probe(/*client_id=*/0xFEED0000 + node);
    if (probe.Connect(endpoints_[node], 500 * kMillisecond).ok() &&
        probe.Stats(500 * kMillisecond).ok()) {
      return Status::OK();
    }
    SleepMillis(50);
  }
  return Status::TimedOut("node " + std::to_string(node) +
                          " not ready in time");
}

Status RealCluster::Start(Duration ready_timeout) {
  DPAXOS_CHECK(endpoints_.empty());
  if (!options_.listen_endpoints.empty()) {
    endpoints_ = options_.listen_endpoints;
  } else {
    Result<std::vector<uint16_t>> ports = PickFreeLoopbackPorts(num_nodes());
    if (!ports.ok()) return ports.status();
    endpoints_.reserve(num_nodes());
    for (uint16_t port : ports.value()) {
      endpoints_.push_back(HostPort{"127.0.0.1", port});
    }
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    Status st = SpawnNode(n);
    if (!st.ok()) return st;
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    Status st = WaitReady(n, ready_timeout);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status RealCluster::Kill(NodeId node) {
  DPAXOS_CHECK_LT(node, pids_.size());
  if (pids_[node] <= 0) {
    return Status::FailedPrecondition("node not running");
  }
  if (paused_[node]) {
    // A stopped process still dies to SIGKILL, but clear the bookkeeping.
    kill(pids_[node], SIGCONT);
    paused_[node] = 0;
  }
  kill(pids_[node], SIGKILL);
  waitpid(pids_[node], nullptr, 0);
  pids_[node] = -1;
  return Status::OK();
}

bool RealCluster::ReapIfExited(NodeId node) {
  DPAXOS_CHECK_LT(node, pids_.size());
  if (pids_[node] <= 0) return true;
  int wstatus = 0;
  pid_t reaped = waitpid(pids_[node], &wstatus, WNOHANG);
  if (reaped == pids_[node]) {
    DPAXOS_INFO("node " << node << " self-exited (status " << wstatus << ")");
    pids_[node] = -1;
    paused_[node] = 0;
    return true;
  }
  return false;
}

Status RealCluster::Pause(NodeId node) {
  DPAXOS_CHECK_LT(node, pids_.size());
  if (pids_[node] <= 0) {
    return Status::FailedPrecondition("node not running");
  }
  if (paused_[node]) return Status::AlreadyExists("node already paused");
  if (kill(pids_[node], SIGSTOP) != 0) {
    return Status::Unavailable(std::string("SIGSTOP: ") + strerror(errno));
  }
  paused_[node] = 1;
  return Status::OK();
}

Status RealCluster::Resume(NodeId node) {
  DPAXOS_CHECK_LT(node, pids_.size());
  if (pids_[node] <= 0) {
    return Status::FailedPrecondition("node not running");
  }
  if (!paused_[node]) return Status::FailedPrecondition("node not paused");
  if (kill(pids_[node], SIGCONT) != 0) {
    return Status::Unavailable(std::string("SIGCONT: ") + strerror(errno));
  }
  paused_[node] = 0;
  return Status::OK();
}

Status RealCluster::Restart(NodeId node, Duration ready_timeout) {
  DPAXOS_CHECK_LT(node, pids_.size());
  if (pids_[node] > 0) {
    return Status::FailedPrecondition("node still running");
  }
  Status st = SpawnNode(node);
  if (!st.ok()) return st;
  return WaitReady(node, ready_timeout);
}

Result<std::string> RealCluster::Stats(NodeId node, Duration timeout) {
  TcpClient client(/*client_id=*/0xFEED1000 + node);
  Status st = client.Connect(endpoints_[node], timeout);
  if (!st.ok()) return st;
  return client.Stats(timeout);
}

Status RealCluster::ShutdownAll(Duration grace) {
  Status result = Status::OK();
  for (NodeId n = 0; n < pids_.size(); ++n) {
    // A stopped child cannot run its SIGTERM handler; wake it first.
    if (pids_[n] > 0 && paused_[n]) {
      kill(pids_[n], SIGCONT);
      paused_[n] = 0;
    }
    if (pids_[n] > 0) kill(pids_[n], SIGTERM);
  }
  const Timestamp deadline = NowMillis() + grace / kMillisecond;
  for (NodeId n = 0; n < pids_.size(); ++n) {
    if (pids_[n] <= 0) continue;
    int wstatus = 0;
    for (;;) {
      pid_t reaped = waitpid(pids_[n], &wstatus, WNOHANG);
      if (reaped == pids_[n]) {
        if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
          result = Status::Internal("node " + std::to_string(n) +
                                    " exited uncleanly (status " +
                                    std::to_string(wstatus) + ")");
        }
        break;
      }
      if (NowMillis() >= deadline) {
        kill(pids_[n], SIGKILL);
        waitpid(pids_[n], nullptr, 0);
        result = Status::TimedOut("node " + std::to_string(n) +
                                  " ignored SIGTERM; killed");
        break;
      }
      SleepMillis(20);
    }
    pids_[n] = -1;
  }
  return result;
}

}  // namespace dpaxos
