#include "harness/chaos.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "client/client.h"
#include "harness/cluster.h"
#include "harness/history.h"
#include "harness/nemesis.h"
#include "net/topology.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "smr/snapshot.h"
#include "txn/transaction.h"

namespace dpaxos {

namespace {

// One line per op, every field included: any schedule divergence between
// two kernels shows up as a text diff of this dump.
std::string DumpHistory(const std::vector<HistoryOp>& ops) {
  std::ostringstream os;
  for (const HistoryOp& op : ops) {
    os << "c" << op.client_id << " seq=" << op.seq
       << (op.is_read ? " r " : " w ") << op.key;
    if (op.is_read) {
      os << " saw=" << (op.observed.has_value() ? *op.observed : "<none>");
    } else {
      os << " put=" << op.written;
    }
    os << " invoke=" << op.invoke << " complete=" << op.complete
       << " outcome=" << static_cast<int>(op.outcome) << " slot=" << op.slot
       << " wm=" << op.observed_watermark
       << " local=" << (op.local_read ? 1 : 0) << "\n";
  }
  return os.str();
}

HistoryOutcome ToHistoryOutcome(ClientOutcome outcome) {
  switch (outcome) {
    case ClientOutcome::kCommitted:
      return HistoryOutcome::kOk;
    case ClientOutcome::kFailed:
      return HistoryOutcome::kFail;
    case ClientOutcome::kIndeterminate:
      return HistoryOutcome::kIndeterminate;
  }
  return HistoryOutcome::kIndeterminate;
}

// Per-node application stack (survives replica restarts: a restarted
// node restores its state machine from local applied state and
// re-learns the missing log suffix via catch-up).
struct NodeApp {
  KvStateMachine sm;
  LogApplier applier{&sm};
};

class ChaosRun {
 public:
  explicit ChaosRun(const ChaosOptions& options) : options_(options) {}

  ChaosReport Run();

 private:
  struct ClientCtx {
    std::unique_ptr<Client> client;
    Rng rng{0};
    uint64_t ops_issued = 0;
    bool stopped = false;
  };

  void WireNode(NodeId node);
  void OnNodeRestart(NodeId node);
  void StartRepairLoop();
  void CompactionSweep();
  void StartCompactionLoop();
  void IssueNext(size_t ci);
  void RecordCompletion(size_t history_index, bool is_read,
                        const OpResult& r);
  bool Converged() const;

  const ChaosOptions& options_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Nemesis> nemesis_;
  std::vector<std::unique_ptr<NodeApp>> apps_;
  std::vector<std::unique_ptr<ClientCtx>> clients_;
  HistoryRecorder recorder_;
  Timestamp workload_end_ = 0;
  uint64_t pending_ = 0;
};

void ChaosRun::WireNode(NodeId node) {
  NodeApp* app = apps_[node].get();
  Replica* replica = cluster_->replica(node);
  replica->set_decide_callback([app](SlotId slot, const Value& value) {
    app->applier.OnDecided(slot, value);
  });
  if (!options_.enable_compaction) return;
  // Snapshot hooks close over `this` + node, not the NodeApp pointer:
  // a restart replaces the app, and a stale capture would serve (or
  // install into) the dead instance.
  replica->set_snapshot_hooks(
      [this, node](SlotId* through) {
        NodeApp& a = *apps_[node];
        *through = a.applier.applied_watermark();
        return EncodeSnapshot(*through, a.sm.SerializeFull());
      },
      [this, node](SlotId through, const std::string& envelope) {
        Result<Snapshot> snap = DecodeSnapshot(envelope);
        if (!snap.ok()) return snap.status();
        if (snap->through_slot != through) {
          return Status::Corruption("snapshot coverage mismatch");
        }
        NodeApp& a = *apps_[node];
        Status st = a.sm.RestoreFull(snap->payload);
        if (!st.ok()) return st;
        a.applier.FastForwardTo(through);
        return Status::OK();
      });
}

void ChaosRun::OnNodeRestart(NodeId node) {
  if (options_.enable_compaction) {
    // Model a true process death: the volatile applied state is gone.
    // Rebuild from the node's own durable snapshot, re-verifying its
    // CRC — a torn install must surface as Corruption here, never as
    // silently wrong state. On failure the replica sheds the snapshot
    // and recovers from its peers instead.
    apps_[node] = std::make_unique<NodeApp>();
    Replica* replica = cluster_->replica(node);
    const std::string& durable = replica->acceptor().snapshot_bytes();
    if (!durable.empty()) {
      Result<Snapshot> snap = DecodeSnapshot(durable);
      Status st = snap.ok() ? apps_[node]->sm.RestoreFull(snap->payload)
                            : snap.status();
      if (st.ok()) {
        apps_[node]->applier.FastForwardTo(replica->acceptor().snapshot_through());
      } else {
        replica->DropInstalledSnapshot();
      }
    }
  }
  WireNode(node);  // NodeHost::Restart dropped the decide callback
}

void ChaosRun::StartRepairLoop() {
  // Anti-entropy: periodically pull lagging nodes up to the most applied
  // node. This is what lets a restarted replica (whose decided log died
  // with the process) refill its applier.
  cluster_->sim().Schedule(1 * kSecond, [this] {
    NodeId best = 0, second = 0;
    SlotId best_wm = 0, second_wm = 0;
    for (NodeId n : cluster_->topology().AllNodes()) {
      const SlotId wm = apps_[n]->applier.applied_watermark();
      if (wm > best_wm) {
        second_wm = best_wm;
        second = best;
        best_wm = wm;
        best = n;
      } else if (wm > second_wm) {
        second_wm = wm;
        second = n;
      }
    }
    for (NodeId n : cluster_->topology().AllNodes()) {
      if (n == best || cluster_->transport().IsCrashed(n)) continue;
      if (cluster_->replica(n)->DecidedWatermark() < best_wm) {
        if (options_.enable_compaction && second != best && second != n &&
            second_wm > 0) {
          // Failover list: a corrupted or unresponsive snapshot source
          // must not strand the laggard until the next sweep.
          cluster_->replica(n)->CatchUpFrom(std::vector<NodeId>{best, second},
                                            [](const Status&) {});
        } else {
          cluster_->replica(n)->CatchUpFrom(best, [](const Status&) {});
        }
      }
    }
    StartRepairLoop();
  });
}

void ChaosRun::CompactionSweep() {
  // Quorum applied watermark: the (majority)-th highest applier
  // watermark. Every slot below it is applied by a majority, so with the
  // retained suffix subtracted the remaining log still lets any minority
  // laggard catch up without a snapshot (see docs/PROTOCOL.md).
  std::vector<SlotId> wms;
  for (NodeId n : cluster_->topology().AllNodes()) {
    wms.push_back(apps_[n]->applier.applied_watermark());
  }
  std::sort(wms.begin(), wms.end(), std::greater<SlotId>());
  const SlotId quorum_wm = wms[wms.size() / 2];
  if (quorum_wm <= options_.compaction_retained_suffix) return;
  const SlotId point = quorum_wm - options_.compaction_retained_suffix;
  for (NodeId n : cluster_->topology().AllNodes()) {
    if (cluster_->transport().IsCrashed(n)) continue;
    (void)cluster_->replica(n)->Compact(point);
  }
}

void ChaosRun::StartCompactionLoop() {
  cluster_->sim().Schedule(options_.compaction_interval, [this] {
    CompactionSweep();
    StartCompactionLoop();
  });
}

void ChaosRun::RecordCompletion(size_t history_index, bool is_read,
                                const OpResult& r) {
  recorder_.Complete(history_index, ToHistoryOutcome(r.outcome),
                     cluster_->sim().Now());
  HistoryOp& op = recorder_.op(history_index);
  op.seq = r.seq;
  op.slot = r.slot;
  op.observed_watermark = r.observed_watermark;
  op.local_read = r.local_read;
  if (is_read) {
    if (r.outcome == ClientOutcome::kCommitted && !r.reads.empty()) {
      op.observed = r.reads[0];
    } else if (r.outcome == ClientOutcome::kCommitted) {
      // Committed but nothing observed (no hooks): useless for the
      // checker; demote to a failed read so it constrains nothing.
      op.outcome = HistoryOutcome::kFail;
    }
  }
}

void ChaosRun::IssueNext(size_t ci) {
  ClientCtx& ctx = *clients_[ci];
  if (ctx.stopped || cluster_->sim().Now() >= workload_end_) {
    ctx.stopped = true;
    return;
  }
  const uint64_t cid = ctx.client->client_id();
  const std::string key =
      "k" + std::to_string(ctx.rng.NextBounded(options_.num_keys));
  const bool is_read = ctx.rng.NextBool(options_.read_fraction);
  ++ctx.ops_issued;
  ++pending_;
  const Timestamp now = cluster_->sim().Now();

  auto on_done = [this, ci, is_read](size_t history_index) {
    return [this, ci, is_read, history_index](const OpResult& r) {
      RecordCompletion(history_index, is_read, r);
      --pending_;
      ClientCtx& c = *clients_[ci];
      const Duration think =
          options_.think_time / 2 + c.rng.NextBounded(options_.think_time);
      cluster_->sim().Schedule(think, [this, ci] { IssueNext(ci); });
    };
  };

  if (is_read) {
    Transaction txn;
    txn.id = (cid << 32) | ctx.ops_issued;
    txn.ops.push_back(Operation::Get(key));
    const size_t idx =
        recorder_.Invoke(cid, 0, /*is_read=*/true, key, "", now);
    ctx.client->ExecuteReadOnlyWithRetry(std::move(txn), on_done(idx));
  } else {
    const std::string value =
        "c" + std::to_string(cid) + "-" + std::to_string(ctx.ops_issued);
    Transaction txn;
    txn.id = (cid << 32) | ctx.ops_issued;
    txn.ops.push_back(Operation::Put(key, value));
    const size_t idx =
        recorder_.Invoke(cid, 0, /*is_read=*/false, key, value, now);
    ctx.client->ExecuteWithRetry(std::move(txn), on_done(idx));
  }
}

bool ChaosRun::Converged() const {
  const auto nodes = cluster_->topology().AllNodes();
  const SlotId wm = apps_[nodes[0]]->applier.applied_watermark();
  const uint64_t checksum = apps_[nodes[0]]->sm.Checksum();
  for (NodeId n : nodes) {
    if (apps_[n]->applier.applied_watermark() != wm) return false;
    if (apps_[n]->sm.Checksum() != checksum) return false;
  }
  return true;
}

ChaosReport ChaosRun::Run() {
  ChaosReport report;

  ClusterOptions copts;
  copts.seed = options_.seed;
  // Chaos is the most timer-heavy workload in the repo (failure
  // detectors, leases, nemesis schedules, retrying clients); pre-size
  // the event slab and delivery pool so even this cell runs with zero
  // pool growth (see docs/perf.md, "Pre-sizing from workload hints").
  copts.expected_pending_events = 4096;
  copts.transport.initial_delivery_batches = 4096;
  copts.transport.drop_probability = options_.drop_probability;
  copts.transport.duplicate_probability = options_.duplicate_probability;
  copts.transport.max_jitter = 5 * kMillisecond;
  copts.replica.le_timeout = 800 * kMillisecond;
  copts.replica.propose_timeout = 400 * kMillisecond;
  copts.replica.num_intents = 2;
  copts.replica.storage_sync_delay = 100 * kMicrosecond;
  copts.replica.decide_policy = DecidePolicy::kAll;
  copts.replica.enable_leases = true;
  copts.replica.lease_duration = 1 * kSecond;
  copts.replica.enable_failure_detector = true;
  copts.replica.heartbeat_interval = 300 * kMillisecond;
  copts.replica.election_timeout = 2 * kSecond;
  copts.replica.enable_fast_path = options_.enable_fast_path;
  copts.replica.enable_compaction = options_.enable_compaction;
  copts.replica.compaction_retained_suffix =
      options_.compaction_retained_suffix;
  if (options_.enable_compaction) {
    copts.replica.snapshot_chunk_bytes = options_.snapshot_chunk_bytes;
  }
  cluster_ = std::make_unique<Cluster>(
      Topology::Uniform(options_.zones, options_.nodes_per_zone,
                        options_.inter_zone_rtt_ms),
      options_.mode, copts);

  const uint32_t num_nodes = cluster_->topology().num_nodes();
  apps_.resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    apps_[n] = std::make_unique<NodeApp>();
    WireNode(n);
  }

  nemesis_ = std::make_unique<Nemesis>(cluster_.get(), options_.seed);
  nemesis_->set_restart_hook([this](NodeId node) { OnNodeRestart(node); });
  if (options_.enable_compaction) {
    nemesis_->set_compaction_hook([this] { CompactionSweep(); });
  }
  if (options_.schedule != "none") {
    if (!nemesis_->AddNamedSchedule(options_.schedule, 1 * kSecond,
                                    options_.duration)) {
      report.consistency.violations.push_back("unknown nemesis schedule '" +
                                              options_.schedule + "'");
      return report;
    }
  }

  // Clients: one per zone round-robin, each with failover access points
  // in the other zones.
  Rng workload_rng(options_.seed * 7919 + 11);
  for (uint32_t i = 0; i < options_.num_clients; ++i) {
    const ZoneId zone = i % options_.zones;
    Replica* access = cluster_->ReplicaInZone(
        zone, (i / options_.zones) % options_.nodes_per_zone);
    Client::Options copts_client;
    // Pin client ids per run: the auto-allocator is process-global, and
    // the golden history (tests/determinism_golden_test.cc) must not
    // depend on how many clients earlier runs in the process created.
    copts_client.client_id = i + 1;
    copts_client.request_deadline = options_.request_deadline;
    copts_client.retry_backoff_base = 20 * kMillisecond;
    copts_client.retry_backoff_cap = 400 * kMillisecond;
    auto ctx = std::make_unique<ClientCtx>();
    ctx->client =
        std::make_unique<Client>(&cluster_->sim(), access, copts_client);
    ctx->rng = workload_rng.Fork();
    for (uint32_t z = 1; z <= 3 && z < options_.zones; ++z) {
      ctx->client->AddFailoverAccess(
          cluster_->ReplicaInZone((zone + z) % options_.zones, 0));
    }
    Client::StateHooks hooks;
    hooks.get = [this](NodeId node, const std::string& key) {
      return apps_[node]->sm.Get(key);
    };
    hooks.applied_watermark = [this](NodeId node) {
      return apps_[node]->applier.applied_watermark();
    };
    hooks.resolve = [this](NodeId node) { return cluster_->replica(node); };
    ctx->client->set_state_hooks(std::move(hooks));
    clients_.push_back(std::move(ctx));
  }

  StartRepairLoop();
  if (options_.enable_compaction) StartCompactionLoop();
  (void)cluster_->ElectLeader(cluster_->NodeInZone(0, 0));

  workload_end_ = cluster_->sim().Now() + options_.duration;
  nemesis_->Arm();
  for (size_t i = 0; i < clients_.size(); ++i) {
    cluster_->sim().Schedule(10 * kMillisecond * (i + 1),
                             [this, i] { IssueNext(i); });
  }
  cluster_->sim().RunFor(options_.duration + 2 * kSecond);

  // Quiesce: stop the faults, drain the clients, converge the appliers.
  nemesis_->Quiesce();
  cluster_->RunUntil([this] { return pending_ == 0; }, options_.settle);
  // Drive one election + commit probe so the final leader's recovery
  // fills any log holes left by interrupted proposals.
  (void)cluster_->ElectLeader(cluster_->NodeInZone(0, 0));
  (void)cluster_->Commit(cluster_->NodeInZone(0, 0),
                         Value::Of(~0ULL, EncodeBatch({})));
  cluster_->RunUntil([this] { return pending_ == 0 && Converged(); },
                     options_.settle);

  // --- report -----------------------------------------------------------
  report.converged = Converged() && pending_ == 0;
  report.ops_invoked = recorder_.size();
  report.ops_committed = recorder_.CountOutcome(HistoryOutcome::kOk);
  report.ops_failed = recorder_.CountOutcome(HistoryOutcome::kFail);
  report.ops_indeterminate =
      recorder_.CountOutcome(HistoryOutcome::kIndeterminate) +
      recorder_.CountOutcome(HistoryOutcome::kPending);

  NodeId best = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const NodeApp& app = *apps_[n];
    report.duplicates_skipped += app.sm.duplicates_skipped();
    report.max_applied_commands =
        std::max(report.max_applied_commands, app.sm.applied_commands());
    if (app.applier.applied_watermark() >
        apps_[best]->applier.applied_watermark()) {
      best = n;
    }
  }
  const KvStateMachine& final_sm = apps_[best]->sm;
  report.applied_writes = final_sm.applied_writes();
  for (const HistoryOp& op : recorder_.ops()) {
    if (op.is_read) continue;
    ++report.writes_invoked;
    if (op.outcome == HistoryOutcome::kOk) ++report.writes_committed;
    if (op.seq != 0 && final_sm.WasApplied(op.client_id, op.seq)) {
      ++report.writes_eventually_applied;
    }
  }
  for (const auto& ctx : clients_) {
    report.client_retries += ctx->client->retries();
    report.local_reads += ctx->client->local_reads();
  }
  report.nemesis_actions = nemesis_->actions_executed();
  report.nemesis_log = nemesis_->action_log();
  for (NodeId n = 0; n < num_nodes; ++n) {
    const ProtocolCounters& pc = cluster_->replica(n)->counters();
    report.snapshots_served += pc.snapshots_served;
    report.fast_commits += pc.fast_commits;
    report.fast_fallbacks += pc.fast_fallbacks;
    report.snapshots_installed += pc.snapshots_installed;
    report.snapshot_corruptions_detected += pc.snapshot_corruptions_detected;
    report.log_compactions += pc.log_compactions;
    report.catchup_failovers += pc.catchup_failovers;
    report.max_resident_decided = std::max<uint64_t>(
        report.max_resident_decided, cluster_->replica(n)->decided().size());
    std::ostringstream os;
    os << "node " << n << ": applied="
       << apps_[n]->applier.applied_watermark()
       << " decided=" << cluster_->replica(n)->DecidedWatermark()
       << " checksum=" << std::hex << apps_[n]->sm.Checksum();
    report.node_states.push_back(os.str());
  }
  report.consistency = CheckHistory(recorder_.ops());
  report.history_text = DumpHistory(recorder_.ops());
  return report;
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "VIOLATIONS") << ": " << ops_invoked << " ops ("
     << ops_committed << " committed, " << ops_failed << " failed, "
     << ops_indeterminate << " indeterminate), " << client_retries
     << " retries, " << local_reads << " lease reads; writes "
     << writes_eventually_applied << "/" << writes_invoked
     << " eventually applied (" << applied_writes
     << " puts executed); " << duplicates_skipped
     << " duplicate applies skipped; converged="
     << (converged ? "yes" : "no") << "; nemesis actions="
     << nemesis_actions;
  if (fast_commits > 0 || fast_fallbacks > 0) {
    os << "; fast commits/fallbacks=" << fast_commits << "/"
       << fast_fallbacks;
  }
  if (log_compactions > 0 || snapshots_installed > 0 ||
      snapshot_corruptions_detected > 0) {
    os << "; compactions=" << log_compactions << " snapshots served/installed="
       << snapshots_served << "/" << snapshots_installed
       << " corruptions detected=" << snapshot_corruptions_detected
       << " catch-up failovers=" << catchup_failovers
       << " max resident decided=" << max_resident_decided;
  }
  os << "\nconsistency: " << consistency.Summary();
  return os.str();
}

ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosRun run(options);
  return run.Run();
}

}  // namespace dpaxos
