// End-to-end chaos runner: a cluster with per-node state machines, a
// pool of retrying clients issuing single-key reads/writes, a nemesis
// executing a named fault schedule, and the history/consistency
// checkers judging what the clients observed. Shared by
// tests/chaos_test.cc and `dpaxos_cli chaos`.
#ifndef DPAXOS_HARNESS_CHAOS_H_
#define DPAXOS_HARNESS_CHAOS_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "harness/lin_checker.h"
#include "quorum/quorum_system.h"

namespace dpaxos {

struct ChaosOptions {
  ProtocolMode mode = ProtocolMode::kLeaderZone;
  /// Nemesis schedule name (see Nemesis::ScheduleNames()), or "none" to
  /// run fault-free over the baseline transport loss model.
  std::string schedule = "mixed";
  uint64_t seed = 1;

  uint32_t zones = 5;
  uint32_t nodes_per_zone = 3;
  double inter_zone_rtt_ms = 50.0;

  uint32_t num_clients = 4;
  /// Key-pool size. Keep it large enough that no single key collects
  /// more than 63 ops — the per-key linearizability search is bitmask
  /// based and reports over-long histories as failures.
  uint32_t num_keys = 16;
  double read_fraction = 0.4;
  /// Mean think time between a client's completion and its next op.
  Duration think_time = 100 * kMillisecond;

  /// Faulty phase length (nemesis horizon and workload span).
  Duration duration = 20 * kSecond;
  /// Post-quiesce budget for draining clients and converging appliers.
  Duration settle = 60 * kSecond;

  Duration request_deadline = 5 * kSecond;

  /// Baseline transport loss (bursts on top come from the nemesis).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;

  // --- log compaction + snapshot recovery (default off: legacy
  // behaviour and the golden schedules are bit-preserved) ---------------

  /// Run a periodic compaction sweep: snapshot each node's applied state
  /// and truncate the log up to (quorum applied watermark − retained
  /// suffix). Restarted nodes then recover through checksummed snapshot
  /// transfers instead of full log replay, and a process restart rebuilds
  /// the state machine from the node's own durable snapshot.
  bool enable_compaction = false;
  uint64_t compaction_retained_suffix = 64;
  Duration compaction_interval = 2 * kSecond;
  /// Snapshot transfer chunk size (small values force multi-chunk
  /// reassembly under fire).
  uint64_t snapshot_chunk_bytes = 4096;

  /// Run the fast commit path (docs/PROTOCOL.md §fast-path): follower
  /// origins drive the leader's fast quorum directly and fall back to
  /// classic forwarding on conflict/timeout. Default off: the golden
  /// schedules are bit-preserved.
  bool enable_fast_path = false;
};

struct ChaosReport {
  ConsistencyReport consistency;

  uint64_t ops_invoked = 0;
  uint64_t ops_committed = 0;
  uint64_t ops_failed = 0;
  uint64_t ops_indeterminate = 0;
  uint64_t local_reads = 0;
  uint64_t client_retries = 0;

  uint64_t writes_invoked = 0;
  uint64_t writes_committed = 0;
  /// Writes whose (client_id, seq) is in the final applied state —
  /// includes indeterminate writes that committed after the client gave
  /// up. The honest "eventual commit" numerator.
  uint64_t writes_eventually_applied = 0;

  uint64_t duplicates_skipped = 0;  // summed over all state machines
  /// Put operations actually executed on the most-applied node. With
  /// exactly-once semantics this equals writes_eventually_applied: a
  /// double-applied retry would push it higher.
  uint64_t applied_writes = 0;
  uint64_t max_applied_commands = 0;
  bool converged = false;  // all appliers reached one identical state

  /// Snapshot + compaction activity, summed over all live replicas at
  /// the end of the run (a restart resets that node's counters, so these
  /// are lower bounds under crash schedules).
  uint64_t snapshots_served = 0;
  uint64_t snapshots_installed = 0;
  uint64_t snapshot_corruptions_detected = 0;
  uint64_t log_compactions = 0;
  uint64_t catchup_failovers = 0;
  /// Largest decided-log size observed across nodes at the end: with
  /// compaction on, bounded by the retained suffix + churn slack.
  uint64_t max_resident_decided = 0;

  /// Fast-path activity summed over live replicas at the end (zero with
  /// enable_fast_path off). Under faults, fast_fallbacks > 0 is the
  /// evidence the classic fallback actually ran — not that the schedule
  /// simply never contended.
  uint64_t fast_commits = 0;
  uint64_t fast_fallbacks = 0;

  uint64_t nemesis_actions = 0;
  std::vector<std::string> nemesis_log;
  /// The full Jepsen-style operation history, one line per op with
  /// virtual timestamps. Byte-identical across runs with equal options —
  /// the payload of the golden determinism test
  /// (tests/determinism_golden_test.cc).
  std::string history_text;
  /// Per-node "applied/decided/checksum" snapshot at the end of the run
  /// (diagnosis aid when converged is false).
  std::vector<std::string> node_states;

  bool ok() const { return consistency.ok() && converged; }
  double EventualCommitRate() const {
    return writes_invoked == 0
               ? 1.0
               : static_cast<double>(writes_eventually_applied) /
                     static_cast<double>(writes_invoked);
  }
  std::string Summary() const;
};

/// Run one fully deterministic chaos scenario.
ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_CHAOS_H_
