// Wall-clock throughput benchmark of the simulation kernel itself.
//
// Unlike the bench_fig* experiments (which report *virtual-time* protocol
// metrics), simperf measures how fast the host retires simulation events.
// Two workloads share this harness:
//
//   * the LEGACY single-shard workload — the paper's seven-zone topology
//     driven closed-loop at window=32 under all three protocol modes,
//     plus one chaos cell — timed with the host clock. Its events/sec
//     number is the repo's historical wall-clock baseline and the
//     regression gate for every hot-path change (see docs/perf.md);
//   * the SHARD-PARALLEL workload — K independent cluster shards
//     covering a 32-partition key space, driven concurrently across a
//     fixed worker pool (src/sim/shard_runner.h). Aggregate events/sec
//     scales with cores while every per-shard number stays bit-identical
//     for any thread count.
//
// Shared by bench/bench_simperf.cc and `dpaxos_cli --experiment=simperf`.
#ifndef DPAXOS_HARNESS_SIMPERF_H_
#define DPAXOS_HARNESS_SIMPERF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/perf_counters.h"
#include "common/types.h"

namespace dpaxos {

/// Pre-PR kernel throughput on the reference machine, recorded when the
/// simperf harness was introduced (copy-on-pop priority_queue kernel,
/// per-message shared_ptr closures, RelWithDebInfo, Linux x86-64). The
/// acceptance bar for the slab-kernel PR was >= 3x this number; keep it
/// as the historical "baseline" field of BENCH_simperf.json so every
/// future run shows cumulative speedup over the original kernel.
inline constexpr double kSimperfRecordedBaselineEventsPerSec = 1185000.0;

struct SimperfOptions {
  /// Short mode for per-build smoke runs (seconds of virtual time per
  /// phase instead of tens; same phases, same topology).
  bool smoke = false;
  uint64_t seed = 42;
  /// Baseline events/sec written to the JSON "baseline" field. Defaults
  /// to the recorded pre-PR number; override to compare two local builds.
  double baseline_events_per_sec = kSimperfRecordedBaselineEventsPerSec;

  // --- shard-parallel workload (RunSimperfSharded) --------------------
  /// Independent cluster shards; the `partitions` key space is split
  /// contiguously across them. Must be <= partitions.
  uint32_t shards = 8;
  /// Worker threads driving the shards (0 = hardware concurrency).
  /// Changes wall-clock numbers ONLY — never any simulated result.
  uint32_t threads = 1;
  /// Total partitions across all shards (the "32-partition workload").
  uint32_t partitions = 32;
  /// Closed-loop clients per partition; a shard's client population is
  /// window * its partition count (see SplitLoad in load_driver.h).
  uint32_t window = 8;
};

/// One timed phase of the simperf workload.
struct SimperfPhase {
  std::string name;
  double wall_ms = 0;
  uint64_t events = 0;    ///< simulator events executed
  uint64_t messages = 0;  ///< transport messages sent
};

struct SimperfReport {
  std::vector<SimperfPhase> phases;
  double wall_ms = 0;
  uint64_t events = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  long peak_rss_kb = 0;
  /// Counter delta over the whole run (allocation-freedom evidence).
  PerfCounters counters;

  double EventsPerSec() const {
    return wall_ms > 0 ? events / (wall_ms / 1000.0) : 0;
  }
  double MessagesPerSec() const {
    return wall_ms > 0 ? messages / (wall_ms / 1000.0) : 0;
  }

  /// BENCH_simperf.json body: {"baseline": .., "current": .., ...}.
  /// Equivalent to SimperfJson(*this, baseline_events_per_sec, {}).
  std::string ToJson(double baseline_events_per_sec) const;
};

/// Run the fixed legacy workload and time it. Deterministic in virtual
/// time for a given seed; only the wall-clock figures vary across hosts.
SimperfReport RunSimperf(const SimperfOptions& options = {});

// --- shard-parallel workload -----------------------------------------

/// Everything one shard produced. All fields except `wall_ms` are pure
/// functions of (seed, workload shape) — identical for any thread count.
struct SimperfShard {
  uint32_t shard_id = 0;
  uint64_t seed = 0;
  uint32_t partitions = 0;  ///< partitions this shard hosts
  double wall_ms = 0;       ///< host time on this shard's worker thread
  uint64_t events = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t committed = 0;   ///< load batches + store transactions
  uint64_t steals = 0;      ///< ShardedStore steal elections
  uint64_t migrations = 0;  ///< steals away from a live remote leader
  uint64_t snapshot_transfers = 0;  ///< handovers shipped as snapshots
  uint64_t snapshot_bytes = 0;      ///< snapshot chunk payload bytes
  Timestamp virtual_end = 0;
  /// FNV-1a over every deterministic field above (wall_ms excluded).
  uint64_t fingerprint = 0;
};

/// Aggregate + per-shard outcome of one shard-parallel run.
struct ShardedSimperfReport {
  uint32_t shards = 0;
  uint32_t threads = 0;  ///< pool size actually used (wall-clock only)
  uint32_t partitions = 0;
  uint32_t window = 0;
  std::vector<SimperfShard> per_shard;  ///< shard-id order
  double wall_ms = 0;                   ///< whole-pool wall time
  long peak_rss_kb = 0;
  PerfCounters counters;  ///< per-shard deltas summed in shard-id order
  uint64_t events = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t committed = 0;
  uint64_t steals = 0;
  uint64_t migrations = 0;
  uint64_t snapshot_transfers = 0;
  uint64_t snapshot_bytes = 0;

  double EventsPerSec() const {
    return wall_ms > 0 ? events / (wall_ms / 1000.0) : 0;
  }
  double MessagesPerSec() const {
    return wall_ms > 0 ? messages / (wall_ms / 1000.0) : 0;
  }
  /// Combined per-shard fingerprints, folded in shard-id order.
  uint64_t Fingerprint() const;
  /// Canonical text of every deterministic field (no wall-clock, no
  /// thread count). Byte-identical across `threads` values — the golden
  /// the determinism tests and the scaling sweep compare.
  std::string DeterminismString() const;
};

/// Run the shard-parallel workload: options.shards independent clusters
/// covering options.partitions partitions, each shard seeded from
/// (options.seed, shard_id), driven closed-loop plus a ShardedStore
/// object-stealing phase, across options.threads workers.
ShardedSimperfReport RunSimperfSharded(const SimperfOptions& options);

/// One sweep point of the thread-scaling experiment.
struct SimperfScalingPoint {
  uint32_t threads = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  double speedup_vs_one_thread = 0;
};

/// The "scaling" section of BENCH_simperf.json: the same sharded
/// workload at increasing thread counts.
struct SimperfScaling {
  uint32_t shards = 0;
  uint32_t partitions = 0;
  uint32_t window = 0;
  uint32_t hardware_threads = 0;  ///< what this host exposes
  /// True when every sweep point produced a byte-identical
  /// DeterminismString (also CHECKed at run time).
  bool deterministic_across_threads = false;
  uint64_t fingerprint = 0;
  std::vector<SimperfScalingPoint> points;

  /// Speedup recorded at `threads`, or 0 if that point was not run.
  double SpeedupAt(uint32_t threads) const;
};

/// Run the sharded workload once per entry of `thread_counts` (first
/// entry should be 1 so speedups have a base) and record the sweep.
SimperfScaling RunSimperfScaling(const SimperfOptions& options,
                                 const std::vector<uint32_t>& thread_counts);

// --- mobility workload -------------------------------------------------

/// One dwell segment of the mobility tour: the client parked in `zone`,
/// commit latency split into the whole segment and its second half (the
/// post-handoff steady state the paper's mobility story is about).
struct SimperfMobilitySegment {
  ZoneId zone = 0;
  uint64_t ops = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t tail_ops = 0;
  double tail_p50_ms = 0;  ///< second half of the segment only
  double tail_p99_ms = 0;
};

/// One mobility cell: the same tour over the same topology, with the
/// ownership/stealing layer either off (static leader) or on.
struct SimperfMobilityCell {
  std::string label;  ///< "static" or "adaptive"
  bool adaptive = false;
  uint64_t steals = 0;
  uint64_t ownership_records = 0;  ///< directory records observed
  uint64_t steals_attempted = 0;   ///< placement_steals_attempted delta
  uint64_t steals_completed = 0;   ///< placement_steals_completed delta
  uint64_t steals_rejected = 0;    ///< placement_steals_rejected delta
  uint64_t pingpongs_suppressed = 0;
  std::vector<SimperfMobilitySegment> segments;
};

/// The "mobility" section of BENCH_simperf.json: a single-client tour
/// across a uniform 3-zone topology, static-leader baseline vs adaptive
/// protocol-steal placement, per-segment commit p50/p99 in virtual time.
struct SimperfMobilityReport {
  uint32_t zones = 0;
  double inter_zone_rtt_ms = 0;
  double intra_zone_rtt_ms = 0;
  std::vector<SimperfMobilityCell> cells;  ///< [static, adaptive]
  /// Gate: in every post-move segment, the adaptive cell's tail p50 is
  /// under half the static cell's (latency returned to near-local).
  bool adaptive_tracks_client = false;
};

/// Run the mobility tour twice (static, adaptive). Deterministic in
/// virtual time for a given seed.
SimperfMobilityReport RunSimperfMobility(const SimperfOptions& options);

// --- JSON --------------------------------------------------------------

/// Optional sections of BENCH_simperf.json beyond baseline/current.
struct SimperfJsonExtras {
  /// How many full runs the reported numbers were selected from, and the
  /// best events/sec among them (0 = single run; the report itself is
  /// already the best run). Written so the JSON is self-describing —
  /// `speedup_vs_baseline` is always recomputed from the `current`
  /// section at write time, never copied from an earlier run.
  uint64_t repeat = 1;
  double best_events_per_sec = 0;
  const ShardedSimperfReport* sharded = nullptr;
  const SimperfScaling* scaling = nullptr;
  const SimperfMobilityReport* mobility = nullptr;
};

/// Render the full BENCH_simperf.json body.
std::string SimperfJson(const SimperfReport& report,
                        double baseline_events_per_sec,
                        const SimperfJsonExtras& extras = {});

/// Write `json` to `path`; returns false (and logs) on I/O failure.
bool WriteSimperfJson(const std::string& path, const std::string& json);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_SIMPERF_H_
