// Wall-clock throughput benchmark of the simulation kernel itself.
//
// Unlike the bench_fig* experiments (which report *virtual-time* protocol
// metrics), simperf measures how fast the host retires simulation events:
// a fixed heavy workload — the paper's seven-zone topology driven closed-
// loop at window=32 under all three protocol modes, plus one chaos cell —
// timed with the host clock. The resulting events/sec number is the
// repo's wall-clock baseline and the regression gate for every future
// hot-path change (see docs/perf.md). Shared by bench/bench_simperf.cc
// and `dpaxos_cli --experiment=simperf`.
#ifndef DPAXOS_HARNESS_SIMPERF_H_
#define DPAXOS_HARNESS_SIMPERF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/perf_counters.h"

namespace dpaxos {

/// Pre-PR kernel throughput on the reference machine, recorded when the
/// simperf harness was introduced (copy-on-pop priority_queue kernel,
/// per-message shared_ptr closures, RelWithDebInfo, Linux x86-64). The
/// acceptance bar for the slab-kernel PR was >= 3x this number; keep it
/// as the historical "baseline" field of BENCH_simperf.json so every
/// future run shows cumulative speedup over the original kernel.
inline constexpr double kSimperfRecordedBaselineEventsPerSec = 1185000.0;

struct SimperfOptions {
  /// Short mode for per-build smoke runs (seconds of virtual time per
  /// phase instead of tens; same phases, same topology).
  bool smoke = false;
  uint64_t seed = 42;
  /// Baseline events/sec written to the JSON "baseline" field. Defaults
  /// to the recorded pre-PR number; override to compare two local builds.
  double baseline_events_per_sec = kSimperfRecordedBaselineEventsPerSec;
};

/// One timed phase of the simperf workload.
struct SimperfPhase {
  std::string name;
  double wall_ms = 0;
  uint64_t events = 0;    ///< simulator events executed
  uint64_t messages = 0;  ///< transport messages sent
};

struct SimperfReport {
  std::vector<SimperfPhase> phases;
  double wall_ms = 0;
  uint64_t events = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  long peak_rss_kb = 0;
  /// Counter delta over the whole run (allocation-freedom evidence).
  PerfCounters counters;

  double EventsPerSec() const {
    return wall_ms > 0 ? events / (wall_ms / 1000.0) : 0;
  }
  double MessagesPerSec() const {
    return wall_ms > 0 ? messages / (wall_ms / 1000.0) : 0;
  }

  /// BENCH_simperf.json body: {"baseline": .., "current": .., ...}.
  std::string ToJson(double baseline_events_per_sec) const;
};

/// Run the fixed workload and time it. Deterministic in virtual time for
/// a given seed; only the wall-clock figures vary across hosts.
SimperfReport RunSimperf(const SimperfOptions& options = {});

/// Write `json` to `path`; returns false (and logs) on I/O failure.
bool WriteSimperfJson(const std::string& path, const std::string& json);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_SIMPERF_H_
