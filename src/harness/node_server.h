// NodeServer: one DPaxos replica hosted in one real OS process.
//
// Composition (the real-network mirror of harness/Cluster, minus the
// simulator): EventLoop (real clock) + TcpTransport (real sockets) +
// NodeHost/Replica (partition 0) + KvStateMachine behind a LogApplier,
// with the same snapshot hooks and (client_id, seq) exactly-once dedup
// the chaos harness wires in the simulator tier.
//
// Lifecycle:
//   NodeServer server(options);
//   server.Start();                  // bind, wire, schedule catch-up
//   server.InstallSignalHandlers();  // SIGTERM/SIGINT -> graceful stop
//   server.Run();                    // blocks until Shutdown()/signal
//
// A (re)started server assumes nothing survived: storage is in-memory,
// so Start() schedules CatchUpViaSnapshot from its peers — over real
// sockets — which is exactly how a killed-and-restarted process rejoins
// (tests/real_cluster_test.cc proves the full cycle).
#ifndef DPAXOS_HARNESS_NODE_SERVER_H_
#define DPAXOS_HARNESS_NODE_SERVER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/tcp/event_loop.h"
#include "net/tcp/reactor_pool.h"
#include "net/tcp/tcp_transport.h"
#include "net/topology.h"
#include "paxos/node_host.h"
#include "paxos/replica.h"
#include "placement/ownership.h"
#include "placement/placement.h"
#include "quorum/quorum_system.h"
#include "smr/kv_store.h"
#include "smr/log_applier.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace dpaxos {

struct NodeServerOptions {
  NodeId node = 0;
  /// cluster[n] = node n's listen endpoint; size = cluster size.
  std::vector<HostPort> cluster;
  uint32_t zones = 1;
  ProtocolMode mode = ProtocolMode::kMultiPaxos;
  FaultTolerance ft{0, 0};
  uint64_t seed = 1;
  /// Where SubmitOrForward routes client writes before any protocol
  /// traffic reveals a leader. kInvalidNode = no hint (first write
  /// triggers self-election via auto_elect_on_submit).
  NodeId leader_hint = kInvalidNode;
  ReplicaConfig replica;  ///< decide_policy is forced to kAll (full SMR)
  TcpTransportOptions tcp;
  /// Pull state from peers shortly after start (snapshot-first).
  bool catchup_on_start = true;
  Duration catchup_delay = 300 * kMillisecond;
  /// Periodic Compact() sweep; 0 disables. Requires
  /// replica.enable_compaction.
  Duration compaction_interval = 0;
  /// Anti-entropy: when the applied watermark makes no progress across
  /// one interval, pull decided entries from a peer (rotating). This is
  /// what heals log holes torn by dropped decide traffic — without it a
  /// follower that lost frames during a partition stays wedged forever
  /// once the fault clears. 0 disables.
  Duration anti_entropy_interval = 1 * kSecond;
  /// Reactor threads serving accepted connections (see
  /// net/tcp/reactor_pool.h). 0 = single-threaded: every socket lives on
  /// the replica's own loop, exactly the pre-multi-reactor behavior.
  uint32_t reactors = 0;
  /// Reply-batch hold time forwarded to the reactor pool (ignored when
  /// reactors == 0); see ReactorPoolOptions::reply_flush_delay.
  Duration reply_flush_delay = 0;
  /// WAL mode (real durability, storage/wal.h): non-empty = open an
  /// acceptor write-ahead log in this directory. Every promise/accept/
  /// fast-vote reply then waits for the group-commit fdatasync, and a
  /// restarted process recovers its acceptor state (and the applied
  /// prefix, via the durable snapshot) from disk alone. Recovery
  /// failures (Corruption in a sealed segment) make Start() fail: a node
  /// with damaged durable state must not serve.
  std::string data_dir;
  /// Wrap the disk in a FaultInjectingEnv and poll <data_dir>/FAULTS for
  /// fault commands (see docs/fault_model.md). Requires data_dir.
  bool disk_faults = false;
  /// Group-commit window for the WAL (WalOptions::group_commit_delay).
  Duration wal_commit_delay = 0;
  /// Partition ownership mode (docs/PROTOCOL.md §ownership): learn the
  /// owner from decided transfer records, stamp redirect hints on
  /// misdirected requests, feed per-zone access stats from request
  /// arrivals, and run the placement sweep — the owner invites protocol
  /// steals toward the hottest zone; a non-owner seeing local traffic
  /// with a stalled log rescues a dead incumbent by stealing from it.
  bool ownership = false;
  Duration placement_sweep_interval = 1 * kSecond;
  /// Post-transfer cooldown before the sweep may move the partition
  /// again (anti-ping-pong; counted as placement_pingpongs_suppressed).
  Duration steal_cooldown = 10 * kSecond;
  /// Advisor hysteresis (see PlacementAdvisor).
  double placement_min_improvement = 0.3;
  double placement_min_weight = 3.0;
  Duration placement_stats_half_life = 10 * kSecond;
  /// RTTs the advisor ranks zones by. The serving topology carries
  /// placeholder latencies (real sockets impose their own), so the
  /// advisor gets a dedicated topology reflecting the deployment's
  /// actual zone asymmetry.
  double placement_inter_zone_rtt_ms = 50.0;
  double placement_intra_zone_rtt_ms = 2.0;
  /// Consecutive stalled sweeps (no applied progress while local client
  /// traffic keeps arriving) before a non-owner starts a rescue steal
  /// against the incumbent.
  uint32_t rescue_stalled_sweeps = 3;
};

/// \brief One-process replica server speaking the net/tcp framing.
class NodeServer {
 public:
  explicit NodeServer(NodeServerOptions options);
  ~NodeServer();

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Bind the listener and wire replica <-> state machine <-> clients.
  Status Start();

  /// Route SIGTERM/SIGINT to a graceful Shutdown() of THIS server (one
  /// live NodeServer per process).
  void InstallSignalHandlers();

  /// Drive the loop until Shutdown() (or a routed signal). Returns the
  /// signal number that stopped it, or 0 for a programmatic stop.
  int Run();

  /// Stop the loop after the current dispatch round. Loop-thread safe;
  /// for cross-thread/signal use, the handlers installed above.
  void Shutdown();

  EventLoop& loop() { return loop_; }
  TcpTransport& transport() { return *transport_; }
  Replica* replica() { return replica_; }
  const KvStateMachine& kv() const { return kv_; }
  uint16_t listen_port() const { return transport_->listen_port(); }

  /// Key=value introspection line, also served to clients as the
  /// "stats" op (see docs/realnet.md for the fields).
  std::string StatsString() const;

 private:
  void OnClientRequest(uint64_t conn, uint64_t client_id,
                       const ClientRequest& req);
  /// Route a reply to whoever owns the connection: reactor tokens go to
  /// the pool, plain ids to the transport.
  void SendReply(uint64_t conn, const ClientReply& reply);
  /// Serve a read once the local applier reaches `slot` (the read
  /// barrier's commit position); polls the applier until `deadline`.
  void AnswerReadAtSlot(uint64_t conn, uint64_t request_id, std::string key,
                        SlotId slot, Timestamp deadline);
  void StartCatchUp();
  void ScheduleCompactionSweep();
  void ScheduleAntiEntropySweep();
  /// Ownership mode: decide-callback tap that feeds the directory (and
  /// the forwarding hint) from decided transfer records.
  void ObserveOwnership(SlotId slot, const Value& value);
  /// Ownership mode: periodic placement sweep (owner side: advisor +
  /// steal invitations; non-owner side: dead-incumbent rescue).
  void SchedulePlacementSweep();
  /// Thief side of a protocol steal (invited, or rescuing).
  void StartProtocolSteal(NodeId incumbent);
  /// WAL mode: open + recover the log, adopt it into the host's storage,
  /// restore the applied prefix from the durable snapshot.
  Status OpenWal();
  /// disk_faults: poll <data_dir>/FAULTS for armed fault commands.
  void ScheduleFaultPoll();

  NodeServerOptions options_;
  EventLoop loop_;
  std::optional<Topology> topology_;  ///< set by Start()
  std::unique_ptr<QuorumSystem> quorums_;
  /// Declared before host_: the WAL (owned by the host's NodeStorage)
  /// writes through this env, so it must be destroyed after the host.
  std::unique_ptr<FaultInjectingEnv> fault_env_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<NodeHost> host_;
  Replica* replica_ = nullptr;
  Wal* wal_ = nullptr;  ///< owned by host_->storage(); null without data_dir
  KvStateMachine kv_;
  LogApplier applier_{&kv_};
  uint64_t next_value_id_ = 1;
  uint64_t catchups_completed_ = 0;
  SlotId last_sweep_watermark_ = 0;
  uint64_t sweep_count_ = 0;
  uint64_t catchup_repairs_ = 0;
  bool started_ = false;
  // Ownership mode state (options_.ownership; partition 0 is the only
  // partition a NodeServer hosts).
  std::optional<OwnershipDirectory> directory_;
  std::optional<AccessStats> access_stats_;
  std::optional<Topology> advisor_topology_;  ///< declared before advisor_
  std::optional<PlacementAdvisor> advisor_;
  bool steal_inflight_ = false;
  uint64_t transfer_seq_ = 0;
  Timestamp last_transfer_time_ = 0;  ///< loop time of last directory change
  uint32_t stalled_sweeps_ = 0;
  uint64_t puts_since_sweep_ = 0;
  SlotId placement_sweep_watermark_ = 0;
  uint64_t steals_attempted_ = 0;
  uint64_t steals_completed_ = 0;
  uint64_t steals_rejected_ = 0;
  uint64_t pingpongs_suppressed_ = 0;
  uint64_t rescues_started_ = 0;
  /// Declared LAST: destroyed first, which joins the reactor threads
  /// while the loop and transport they post to are still alive.
  std::unique_ptr<ReactorPool> reactors_;
};

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_NODE_SERVER_H_
