// Consistency checkers over a recorded operation history.
//
// CheckLinearizability runs a Wing–Gong style search per key over the
// single-key register history: it tries to find a total order of
// operations that (a) respects real-time precedence (an op completed
// before another was invoked must precede it), and (b) is legal for a
// read/write register (every read observes the latest preceding write,
// or the initial absent state). Indeterminate operations (client gave
// up; the value may still commit) are "maybe" ops: they may linearize at
// any point after their invocation or never; failed writes must never be
// observed.
//
// CheckSessionGuarantees verifies read-your-writes and monotonic reads
// per client using log positions: every read carries the applied prefix
// length it was served from, every committed write its commit slot.
#ifndef DPAXOS_HARNESS_LIN_CHECKER_H_
#define DPAXOS_HARNESS_LIN_CHECKER_H_

#include <string>
#include <vector>

#include "harness/history.h"

namespace dpaxos {

/// \brief Checker verdict: empty `violations` means the history passed.
struct ConsistencyReport {
  std::vector<std::string> violations;
  uint64_t keys_checked = 0;
  uint64_t reads_checked = 0;
  uint64_t writes_checked = 0;
  uint64_t indeterminate_writes = 0;

  bool ok() const { return violations.empty(); }
  void Merge(const ConsistencyReport& other);
  std::string Summary() const;
};

/// Per-key linearizability of the register history. Search effort is
/// bounded (`max_states_per_key` memoized states); exceeding the bound
/// reports a violation ("search exhausted") rather than silently
/// passing.
ConsistencyReport CheckLinearizability(const std::vector<HistoryOp>& ops,
                                       uint64_t max_states_per_key = 2000000);

/// Session guarantees: read-your-writes and monotonic reads, per client,
/// via log positions.
ConsistencyReport CheckSessionGuarantees(const std::vector<HistoryOp>& ops);

/// Both checkers, merged.
ConsistencyReport CheckHistory(const std::vector<HistoryOp>& ops);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_LIN_CHECKER_H_
