// Closed-loop load driver: keeps a configurable number of batch proposals
// outstanding at one proposer for a span of virtual time, collecting
// commit latency and throughput — the measurement methodology behind the
// paper's Figures 8 and 11-13.
#ifndef DPAXOS_HARNESS_LOAD_DRIVER_H_
#define DPAXOS_HARNESS_LOAD_DRIVER_H_

#include <cstdint>

#include "common/histogram.h"
#include "harness/cluster.h"

namespace dpaxos {

/// Parameters of one closed-loop run.
struct LoadOptions {
  /// Synthetic batch size in bytes (the consensus value's wire payload).
  uint64_t batch_bytes = 1024;
  /// Virtual time to run (paper: each experiment runs for 1 minute).
  Duration duration = 10 * kSecond;
  /// Outstanding proposals (multi-programming level, Section A.3).
  /// Must be <= the replica's configured max_inflight.
  uint32_t window = 1;
  /// Fraction of client requests that are read-only and served locally
  /// when the proposer holds a read lease (Section 4.5 / A.2). Read-only
  /// requests bypass replication; their latency is recorded separately.
  double read_only_fraction = 0.0;
};

/// Results of one closed-loop run.
struct LoadResult {
  Histogram commit_latency;    ///< read-write (replicated) requests
  Histogram read_latency;      ///< lease-served read-only requests
  ThroughputCounter throughput;  ///< committed payload bytes
  uint64_t committed = 0;
  uint64_t reads_served = 0;
  uint64_t failed = 0;

  double ThroughputKBps() const { return throughput.KilobytesPerSecond(); }
};

/// Run a closed loop of synthetic batch proposals at `proposer`.
///
/// The proposer should already be the partition's leader (or the cluster
/// must allow auto-election); batches are Value::Synthetic so only the
/// bandwidth model sees their size. Read-only requests are modelled as
/// lease-local reads: sub-millisecond service at the leader, never
/// entering the replication pipeline (they still consume a client slot
/// so read-heavy workloads relieve pressure exactly as in Section A.2).
LoadResult RunClosedLoop(Cluster& cluster, Replica* proposer,
                         const LoadOptions& options);

/// Open-loop load: batches arrive at a fixed offered rate regardless of
/// completions (exponential inter-arrival times), the standard way to
/// measure a latency-vs-throughput curve and find the saturation knee.
struct OpenLoadOptions {
  uint64_t batch_bytes = 1024;
  Duration duration = 10 * kSecond;
  /// Offered load in batches per second of virtual time.
  double arrivals_per_sec = 50.0;
  uint64_t seed = 7;
};

/// Drive `proposer` open-loop; in-flight requests above the replica's
/// multi-programming window queue at the leader, so latency inflates as
/// the offered rate approaches service capacity.
LoadResult RunOpenLoop(Cluster& cluster, Replica* proposer,
                       const OpenLoadOptions& options);

/// Run several closed loops CONCURRENTLY over the same simulation — the
/// paper's Figure 8 setup, where seven partitions are each driven at
/// their own datacenter at the same time and share the network.
/// `loops[i]` drives `proposers[i]`; results are index-aligned.
std::vector<LoadResult> RunClosedLoops(Cluster& cluster,
                                       const std::vector<Replica*>& proposers,
                                       const std::vector<LoadOptions>& loops);

/// Split one aggregate closed-loop client population across `loops`
/// concurrent drivers (e.g. one per partition of a simulation shard):
/// `base.window` is divided as evenly as possible, remainder to the
/// lowest-indexed loops, every loop getting at least one client — so a
/// shard's total multiprogramming level scales with the population hint,
/// not with how many partitions it happens to host. All other options
/// are copied unchanged. Deterministic (pure arithmetic).
std::vector<LoadOptions> SplitLoad(const LoadOptions& base, uint32_t loops);

}  // namespace dpaxos

#endif  // DPAXOS_HARNESS_LOAD_DRIVER_H_
