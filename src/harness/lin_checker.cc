#include "harness/lin_checker.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace dpaxos {

namespace {

constexpr Timestamp kNever = ~0ULL;

// One key's history prepared for the search.
struct KeyHistory {
  // Parallel arrays over the included ops.
  std::vector<const HistoryOp*> ops;
  std::vector<Timestamp> invoke;
  std::vector<Timestamp> complete;  // kNever for maybe-ops
  std::vector<bool> required;       // must appear in the linearization
  std::vector<int> value;           // writes: value index; reads: observed
  std::vector<bool> is_read;
  uint64_t required_mask = 0;
};

constexpr int kAbsentValue = 0;  // index of the initial "key absent" state

/// Wing–Gong search with memoization on (done-set, register value).
class Searcher {
 public:
  Searcher(const KeyHistory& h, uint64_t max_states)
      : h_(h), max_states_(max_states) {}

  enum class Verdict { kLinearizable, kViolation, kExhausted };

  Verdict Run() {
    const bool found = Search(0, kAbsentValue);
    if (found) return Verdict::kLinearizable;
    return exhausted_ ? Verdict::kExhausted : Verdict::kViolation;
  }

 private:
  bool Search(uint64_t done, int val) {
    if ((done & h_.required_mask) == h_.required_mask) return true;
    if (exhausted_) return false;
    uint64_t& seen = visited_[done];
    const uint64_t val_bit = 1ULL << val;
    if (seen & val_bit) return false;
    seen |= val_bit;
    if (++states_ > max_states_) {
      exhausted_ = true;
      return false;
    }
    const size_t n = h_.ops.size();
    Timestamp min_complete = kNever;
    for (size_t i = 0; i < n; ++i) {
      if (done & (1ULL << i)) continue;
      min_complete = std::min(min_complete, h_.complete[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bit = 1ULL << i;
      if (done & bit) continue;
      // Real-time order: i may go next only if no remaining op finished
      // before i was invoked.
      if (h_.invoke[i] > min_complete) continue;
      int next_val = val;
      if (h_.is_read[i]) {
        if (h_.value[i] != val) continue;  // illegal read here
      } else {
        next_val = h_.value[i];
      }
      if (Search(done | bit, next_val)) return true;
    }
    return false;
  }

  const KeyHistory& h_;
  const uint64_t max_states_;
  uint64_t states_ = 0;
  bool exhausted_ = false;
  // done-mask -> bitmask of register values already explored there.
  std::unordered_map<uint64_t, uint64_t> visited_;
};

std::string Describe(const HistoryOp& op) {
  std::ostringstream os;
  os << (op.is_read ? "read" : "write") << " key=" << op.key << " client="
     << op.client_id << " seq=" << op.seq;
  return os.str();
}

}  // namespace

void ConsistencyReport::Merge(const ConsistencyReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  keys_checked += other.keys_checked;
  reads_checked += other.reads_checked;
  writes_checked += other.writes_checked;
  indeterminate_writes += other.indeterminate_writes;
}

std::string ConsistencyReport::Summary() const {
  std::ostringstream os;
  os << (ok() ? "PASS" : "FAIL") << ": " << keys_checked << " keys, "
     << writes_checked << " writes (" << indeterminate_writes
     << " indeterminate), " << reads_checked << " reads, "
     << violations.size() << " violations";
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

ConsistencyReport CheckLinearizability(const std::vector<HistoryOp>& ops,
                                       uint64_t max_states_per_key) {
  ConsistencyReport report;
  std::map<std::string, std::vector<const HistoryOp*>> by_key;
  for (const HistoryOp& op : ops) by_key[op.key].push_back(&op);

  for (auto& [key, key_ops] : by_key) {
    ++report.keys_checked;
    KeyHistory h;
    std::map<std::string, int> value_index;  // written value -> index
    std::map<std::string, const HistoryOp*> failed_writes;

    // First pass: assign value indices to every write that may take
    // effect, and remember definitely-failed writes.
    for (const HistoryOp* op : key_ops) {
      if (op->is_read) continue;
      if (op->outcome == HistoryOutcome::kFail) {
        failed_writes[op->written] = op;
        continue;
      }
      if (value_index.count(op->written)) {
        report.violations.push_back("key " + key +
                                    ": duplicate written value '" +
                                    op->written +
                                    "' breaks checker precondition");
        continue;
      }
      value_index[op->written] = static_cast<int>(value_index.size()) + 1;
    }

    // Second pass: build the searchable history.
    bool key_broken = false;
    for (const HistoryOp* op : key_ops) {
      if (op->is_read) {
        if (op->outcome != HistoryOutcome::kOk) continue;  // no observation
        ++report.reads_checked;
        int observed;
        if (!op->observed.has_value()) {
          observed = kAbsentValue;
        } else if (value_index.count(*op->observed)) {
          observed = value_index[*op->observed];
        } else if (failed_writes.count(*op->observed)) {
          report.violations.push_back(
              "key " + key + ": " + Describe(*op) +
              " observed value of a FAILED write (client " +
              std::to_string(failed_writes[*op->observed]->client_id) +
              " seq " +
              std::to_string(failed_writes[*op->observed]->seq) + ")");
          key_broken = true;
          continue;
        } else {
          report.violations.push_back("key " + key + ": " + Describe(*op) +
                                      " observed unknown value '" +
                                      *op->observed + "'");
          key_broken = true;
          continue;
        }
        h.ops.push_back(op);
        h.invoke.push_back(op->invoke);
        h.complete.push_back(op->complete);
        h.required.push_back(true);
        h.value.push_back(observed);
        h.is_read.push_back(true);
      } else {
        if (op->outcome == HistoryOutcome::kFail) continue;
        if (!value_index.count(op->written)) continue;  // dup, reported
        ++report.writes_checked;
        const bool certain = op->outcome == HistoryOutcome::kOk;
        if (!certain) ++report.indeterminate_writes;
        h.ops.push_back(op);
        h.invoke.push_back(op->invoke);
        // An indeterminate write may commit any time later — it never
        // constrains the order, and need not appear at all.
        h.complete.push_back(certain ? op->complete : kNever);
        h.required.push_back(certain);
        h.value.push_back(value_index[op->written]);
        h.is_read.push_back(false);
      }
    }

    if (key_broken) continue;  // already reported; the search would lie
    if (h.ops.size() > 63 || value_index.size() > 62) {
      report.violations.push_back(
          "key " + key + ": history too large for the checker (" +
          std::to_string(h.ops.size()) + " ops)");
      continue;
    }
    for (size_t i = 0; i < h.ops.size(); ++i) {
      if (h.required[i]) h.required_mask |= 1ULL << i;
    }

    Searcher searcher(h, max_states_per_key);
    switch (searcher.Run()) {
      case Searcher::Verdict::kLinearizable:
        break;
      case Searcher::Verdict::kViolation:
        report.violations.push_back(
            "key " + key + ": NOT linearizable (" +
            std::to_string(h.ops.size()) + " ops)");
        break;
      case Searcher::Verdict::kExhausted:
        report.violations.push_back(
            "key " + key + ": linearizability search exhausted after " +
            std::to_string(max_states_per_key) + " states");
        break;
    }
  }
  return report;
}

ConsistencyReport CheckSessionGuarantees(const std::vector<HistoryOp>& ops) {
  ConsistencyReport report;
  // Per (client, key): highest committed write slot and highest read
  // position seen so far. Client ops are issued sequentially, so history
  // order (invoke order) is session order.
  struct SessionState {
    SlotId max_write_slot = 0;
    SlotId max_read_watermark = 0;
  };
  std::map<std::pair<uint64_t, std::string>, SessionState> sessions;

  for (const HistoryOp& op : ops) {
    if (op.outcome != HistoryOutcome::kOk) continue;
    SessionState& s = sessions[{op.client_id, op.key}];
    if (!op.is_read) {
      if (op.slot > 0) s.max_write_slot = std::max(s.max_write_slot, op.slot);
      continue;
    }
    if (op.observed_watermark == 0) continue;  // no observation hooks
    ++report.reads_checked;
    // Read-your-writes: the read's applied prefix must cover every
    // committed write this client acked earlier on this key.
    if (s.max_write_slot > 0 && op.observed_watermark <= s.max_write_slot) {
      report.violations.push_back(
          Describe(op) + ": read-your-writes violated (prefix " +
          std::to_string(op.observed_watermark) + " misses own write slot " +
          std::to_string(s.max_write_slot) + ")");
    }
    // Monotonic reads: successive reads never observe an older prefix.
    if (op.observed_watermark < s.max_read_watermark) {
      report.violations.push_back(
          Describe(op) + ": monotonic reads violated (prefix " +
          std::to_string(op.observed_watermark) + " after prefix " +
          std::to_string(s.max_read_watermark) + ")");
    }
    s.max_read_watermark =
        std::max(s.max_read_watermark, op.observed_watermark);
  }
  return report;
}

ConsistencyReport CheckHistory(const std::vector<HistoryOp>& ops) {
  ConsistencyReport report = CheckLinearizability(ops);
  report.Merge(CheckSessionGuarantees(ops));
  return report;
}

}  // namespace dpaxos
