// Client sessions: the application-facing entry point of the store.
//
// A Client attaches to its nearest edge node's replica (its access
// point). Writes (read-write transactions) are committed through the
// replica — locally when it leads, otherwise forwarded to the leader over
// the real (simulated) network, exactly the paper's remote-request model.
// Reads are served from the access replica when it holds a valid master
// lease; otherwise they are routed like writes.
//
// Two submission surfaces coexist:
//   - Execute/ExecuteBatch/ExecuteReadOnly: single-attempt, fire the
//     legacy (Status, latency) callback. Kept for throughput drivers
//     that manage their own redundancy.
//   - ExecuteWithRetry/ExecuteReadOnlyWithRetry: deadline-bounded with
//     capped exponential backoff, jittered re-submission and access
//     failover. Every transaction is tagged with a (client_id, seq)
//     request id so the state machine can deduplicate retries, and the
//     final OpResult distinguishes kCommitted / kFailed /
//     kIndeterminate honestly: kIndeterminate means at least one
//     attempt reached the network and may commit later.
#ifndef DPAXOS_CLIENT_CLIENT_H_
#define DPAXOS_CLIENT_CLIENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "paxos/replica.h"
#include "txn/batch.h"
#include "txn/transaction.h"

namespace dpaxos {

/// \brief Final disposition of a retried client operation.
enum class ClientOutcome : uint8_t {
  kCommitted = 0,     // definitely applied exactly once
  kFailed = 1,        // definitely not applied
  kIndeterminate = 2  // a submission reached the network; may yet commit
};

const char* ToString(ClientOutcome outcome);

/// \brief Everything the application learns about one retried operation.
struct OpResult {
  ClientOutcome outcome = ClientOutcome::kFailed;
  Status status = Status::OK();  // last underlying error when not committed
  Duration latency = 0;          // invoke-to-completion, virtual time
  uint64_t seq = 0;              // request id assigned by the client
  uint32_t attempts = 0;         // submission attempts performed
  bool local_read = false;       // served under a lease, no replication

  /// Commit slot for writes (when known).
  SlotId slot = 0;

  /// For reads: length of the contiguously applied log prefix at the
  /// moment the values were observed. Comparable across nodes, so the
  /// consistency checker can order observations.
  SlotId observed_watermark = 0;

  /// For reads: one entry per kGet operation, in transaction order.
  std::vector<std::optional<std::string>> reads;
};

/// \brief One application session bound to an access replica.
class Client {
 public:
  /// (status, commit latency as observed by this client).
  using Callback = std::function<void(const Status&, Duration)>;
  using ResultCallback = std::function<void(const OpResult&)>;

  struct Options {
    /// Transactions submitted through SubmitBatched() accumulate until
    /// the encoded batch reaches this size...
    uint64_t batch_target_bytes = 4 * 1024;
    /// ...or this much virtual time passes since the first queued
    /// transaction, whichever comes first (paper Section A.1: batching
    /// trades latency for throughput).
    Duration batch_flush_interval = 5 * kMillisecond;

    /// Stable identity for request tagging. 0 auto-assigns a unique
    /// nonzero id at construction.
    uint64_t client_id = 0;
    /// Per-request budget for the retry surface. Within the deadline the
    /// client re-submits with backoff; at the deadline it reports
    /// kFailed or kIndeterminate.
    Duration request_deadline = 5 * kSecond;
    /// First retry delay; doubles per attempt up to the cap, each delay
    /// jittered to [0.5x, 1.5x).
    Duration retry_backoff_base = 10 * kMillisecond;
    Duration retry_backoff_cap = 320 * kMillisecond;
    uint32_t max_attempts = 16;
    /// Watchdog per submission attempt: if the commit callback has not
    /// fired by then the attempt is treated as failed-but-maybe-applied
    /// and retried. Necessary because a node restart destroys the
    /// replica object along with every callback it held.
    Duration attempt_timeout = 1 * kSecond;
  };

  /// Harness-installed hooks that let the client observe applied state
  /// and survive node restarts. All optional; without them reads report
  /// status only and access failover is pointer-based.
  struct StateHooks {
    /// Applied value of `key` at `node` (nullopt = absent).
    std::function<std::optional<std::string>(NodeId, const std::string&)> get;
    /// Contiguously applied log prefix length at `node`.
    std::function<SlotId(NodeId)> applied_watermark;
    /// Fresh replica pointer for `node` (survives NodeHost::Restart,
    /// which destroys replica objects).
    std::function<Replica*(NodeId)> resolve;
  };

  /// `access` must outlive the client; `sim` is the shared clock.
  Client(Simulator* sim, Replica* access);
  Client(Simulator* sim, Replica* access, Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Execute a read-write transaction: encode, commit through the access
  /// replica (forwarding to the leader if needed). Single attempt.
  void Execute(const Transaction& txn, Callback cb);

  /// Execute a batch of transactions as one consensus value.
  void ExecuteBatch(const std::vector<Transaction>& batch, Callback cb);

  /// Execute a read-only transaction: served locally when the access
  /// replica is a lease-holding leader (paper Section 4.5), else routed
  /// through the commit path like a write. Single attempt.
  void ExecuteReadOnly(const Transaction& txn, Callback cb);

  /// Deadline-bounded write with retries, request tagging and failover.
  /// The transaction's client_id/seq fields are overwritten with this
  /// session's identity.
  void ExecuteWithRetry(Transaction txn, ResultCallback cb);

  /// Deadline-bounded read. Under a valid lease the values come from the
  /// access replica's applied state once it covers the replica's decided
  /// watermark; otherwise the read occupies a log slot like a write and
  /// the values are observed after the access replica applies that slot.
  void ExecuteReadOnlyWithRetry(Transaction txn, ResultCallback cb);

  /// Additional access replicas to rotate through when attempts time
  /// out (e.g. one per zone). The constructor access point is tried
  /// first.
  void AddFailoverAccess(Replica* replica);

  void set_state_hooks(StateHooks hooks) { hooks_ = std::move(hooks); }

  /// Queue a transaction into the client-side batch; the batch commits
  /// as one consensus value once it reaches batch_target_bytes or the
  /// flush interval elapses. Every queued transaction's callback fires
  /// with the batch's outcome.
  void SubmitBatched(Transaction txn, Callback cb);

  /// Flush any queued transactions immediately.
  void FlushBatch();

  /// Batches committed via SubmitBatched.
  uint64_t batches_flushed() const { return batches_flushed_; }

  Replica* access() const { return access_; }
  uint64_t client_id() const { return options_.client_id; }

  // --- session statistics ---------------------------------------------

  uint64_t committed() const { return committed_; }
  uint64_t failed() const { return failed_; }
  uint64_t indeterminate() const { return indeterminate_; }
  uint64_t retries() const { return retries_; }
  uint64_t local_reads() const { return local_reads_; }
  const Histogram& latency() const { return latency_; }

 private:
  struct PendingOp;

  void Track(const Status& st, Duration latency, Callback& cb);

  // Retry-surface internals (see client.cc).
  void StartAttempt(const std::shared_ptr<PendingOp>& op);
  void HandleAttemptFailure(const std::shared_ptr<PendingOp>& op,
                            const Status& st, bool maybe_applied);
  void FinishOp(const std::shared_ptr<PendingOp>& op, ClientOutcome outcome,
                const Status& st);
  void ObserveAndFinish(const std::shared_ptr<PendingOp>& op, NodeId node);
  void WaitForWatermark(const std::shared_ptr<PendingOp>& op, NodeId node,
                        SlotId want, Duration poll,
                        const std::function<void()>& then);
  Replica* ResolveAccess(size_t index);
  void ScheduleGuarded(Duration delay, std::function<void()> fn);

  Simulator* sim_;
  Replica* access_;
  Options options_;
  StateHooks hooks_;
  uint64_t next_value_id_;
  uint64_t next_seq_ = 0;
  std::vector<NodeId> access_nodes_;      // [0] = constructor access point
  std::vector<Replica*> access_replicas_;  // parallel; used without resolve
  size_t access_index_ = 0;
  Rng rng_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  BatchBuilder batch_builder_{4 * 1024};
  std::vector<Callback> batch_callbacks_;
  EventId flush_timer_ = 0;
  uint64_t batches_flushed_ = 0;
  uint64_t committed_ = 0;
  uint64_t failed_ = 0;
  uint64_t indeterminate_ = 0;
  uint64_t retries_ = 0;
  uint64_t local_reads_ = 0;
  Histogram latency_;
};

}  // namespace dpaxos

#endif  // DPAXOS_CLIENT_CLIENT_H_
