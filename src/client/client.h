// Client sessions: the application-facing entry point of the store.
//
// A Client attaches to its nearest edge node's replica (its access
// point). Writes (read-write transactions) are committed through the
// replica — locally when it leads, otherwise forwarded to the leader over
// the real (simulated) network, exactly the paper's remote-request model.
// Reads are served from the access replica when it holds a valid master
// lease; otherwise they are routed like writes.
#ifndef DPAXOS_CLIENT_CLIENT_H_
#define DPAXOS_CLIENT_CLIENT_H_

#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "paxos/replica.h"
#include "txn/batch.h"
#include "txn/transaction.h"

namespace dpaxos {

/// \brief One application session bound to an access replica.
class Client {
 public:
  /// (status, commit latency as observed by this client).
  using Callback = std::function<void(const Status&, Duration)>;

  struct Options {
    /// Transactions submitted through SubmitBatched() accumulate until
    /// the encoded batch reaches this size...
    uint64_t batch_target_bytes = 4 * 1024;
    /// ...or this much virtual time passes since the first queued
    /// transaction, whichever comes first (paper Section A.1: batching
    /// trades latency for throughput).
    Duration batch_flush_interval = 5 * kMillisecond;
  };

  /// `access` must outlive the client; `sim` is the shared clock.
  Client(Simulator* sim, Replica* access);
  Client(Simulator* sim, Replica* access, Options options);

  /// Execute a read-write transaction: encode, commit through the access
  /// replica (forwarding to the leader if needed).
  void Execute(const Transaction& txn, Callback cb);

  /// Execute a batch of transactions as one consensus value.
  void ExecuteBatch(const std::vector<Transaction>& batch, Callback cb);

  /// Execute a read-only transaction: served locally when the access
  /// replica is a lease-holding leader (paper Section 4.5), else routed
  /// through the commit path like a write.
  void ExecuteReadOnly(const Transaction& txn, Callback cb);

  /// Queue a transaction into the client-side batch; the batch commits
  /// as one consensus value once it reaches batch_target_bytes or the
  /// flush interval elapses. Every queued transaction's callback fires
  /// with the batch's outcome.
  void SubmitBatched(Transaction txn, Callback cb);

  /// Flush any queued transactions immediately.
  void FlushBatch();

  /// Batches committed via SubmitBatched.
  uint64_t batches_flushed() const { return batches_flushed_; }

  Replica* access() const { return access_; }

  // --- session statistics ---------------------------------------------

  uint64_t committed() const { return committed_; }
  uint64_t failed() const { return failed_; }
  uint64_t local_reads() const { return local_reads_; }
  const Histogram& latency() const { return latency_; }

 private:
  void Track(const Status& st, Duration latency, Callback& cb);

  Simulator* sim_;
  Replica* access_;
  Options options_;
  uint64_t next_value_id_;
  BatchBuilder batch_builder_{4 * 1024};
  std::vector<Callback> batch_callbacks_;
  EventId flush_timer_ = 0;
  uint64_t batches_flushed_ = 0;
  uint64_t committed_ = 0;
  uint64_t failed_ = 0;
  uint64_t local_reads_ = 0;
  Histogram latency_;
};

}  // namespace dpaxos

#endif  // DPAXOS_CLIENT_CLIENT_H_
