#include "client/client.h"

#include <algorithm>

#include "common/check.h"

namespace dpaxos {

namespace {
// Local service time for a lease-protected read at the access replica.
constexpr Duration kLocalReadServiceTime = 500 * kMicrosecond;
// Poll period while waiting for the applier to cover a target slot.
constexpr Duration kApplyPollPeriod = 500 * kMicrosecond;

uint64_t NextAutoClientId() {
  // Process-wide so every session in a test binary gets a distinct
  // nonzero identity; determinism follows from construction order.
  static uint64_t next = 0;
  return ++next;
}
}  // namespace

const char* ToString(ClientOutcome outcome) {
  switch (outcome) {
    case ClientOutcome::kCommitted:
      return "committed";
    case ClientOutcome::kFailed:
      return "failed";
    case ClientOutcome::kIndeterminate:
      return "indeterminate";
  }
  return "unknown";
}

/// One deadline-bounded operation moving through its retry attempts.
struct Client::PendingOp {
  Transaction txn;
  ResultCallback cb;
  Timestamp invoke = 0;
  Timestamp deadline = 0;
  uint32_t attempts = 0;
  uint64_t epoch = 0;  // bumped per attempt; stales old callbacks
  bool maybe_applied = false;  // some attempt reached the network
  bool is_read = false;
  bool want_lease_read = false;   // prefer the local lease path
  bool lease_attempt = false;     // current attempt used the lease path
  bool done = false;
  Status last_error = Status::OK();
};

Client::Client(Simulator* sim, Replica* access)
    : Client(sim, access, Options()) {}

Client::Client(Simulator* sim, Replica* access, Options options)
    : sim_(sim),
      access_(access),
      options_(options),
      rng_(sim->rng().Fork()),
      batch_builder_(options.batch_target_bytes) {
  DPAXOS_CHECK(sim != nullptr);
  DPAXOS_CHECK(access != nullptr);
  // Keep client-chosen value ids unique across sessions: derive the id
  // space from the access node and a per-construction nonce.
  next_value_id_ =
      (static_cast<uint64_t>(access->id()) << 40) | (sim->Now() & 0xffffff);
  if (options_.client_id == 0) options_.client_id = NextAutoClientId();
  access_nodes_.push_back(access->id());
  access_replicas_.push_back(access);
}

Client::~Client() { *alive_ = false; }

void Client::ScheduleGuarded(Duration delay, std::function<void()> fn) {
  sim_->Schedule(delay, [alive = alive_, fn = std::move(fn)] {
    if (*alive) fn();
  });
}

void Client::AddFailoverAccess(Replica* replica) {
  DPAXOS_CHECK(replica != nullptr);
  access_nodes_.push_back(replica->id());
  access_replicas_.push_back(replica);
}

Replica* Client::ResolveAccess(size_t index) {
  if (hooks_.resolve) return hooks_.resolve(access_nodes_[index]);
  return access_replicas_[index];
}

void Client::Track(const Status& st, Duration latency, Callback& cb) {
  if (st.ok()) {
    ++committed_;
    latency_.Add(latency);
  } else {
    ++failed_;
  }
  if (cb) cb(st, latency);
}

void Client::Execute(const Transaction& txn, Callback cb) {
  ExecuteBatch({txn}, std::move(cb));
}

void Client::ExecuteBatch(const std::vector<Transaction>& batch,
                          Callback cb) {
  Value value = Value::Of(++next_value_id_, EncodeBatch(batch));
  access_->SubmitOrForward(
      std::move(value),
      [this, alive = alive_, cb = std::move(cb)](
          const Status& st, SlotId /*slot*/, Duration latency) mutable {
        if (*alive) Track(st, latency, cb);
      });
}

void Client::SubmitBatched(Transaction txn, Callback cb) {
  batch_callbacks_.push_back(std::move(cb));
  const bool full = batch_builder_.Add(std::move(txn));
  if (full) {
    FlushBatch();
    return;
  }
  if (flush_timer_ == 0) {
    flush_timer_ = sim_->Schedule(options_.batch_flush_interval, [this] {
      flush_timer_ = 0;
      FlushBatch();
    });
  }
}

void Client::FlushBatch() {
  if (flush_timer_ != 0) {
    sim_->Cancel(flush_timer_);
    flush_timer_ = 0;
  }
  if (batch_builder_.empty()) return;
  ++batches_flushed_;
  Value value = batch_builder_.Take(++next_value_id_);
  auto callbacks =
      std::make_shared<std::vector<Callback>>(std::move(batch_callbacks_));
  batch_callbacks_.clear();
  access_->SubmitOrForward(
      std::move(value),
      [this, alive = alive_, callbacks](const Status& st, SlotId,
                                        Duration latency) {
        if (!*alive) return;
        for (Callback& cb : *callbacks) Track(st, latency, cb);
      });
}

void Client::ExecuteReadOnly(const Transaction& txn, Callback cb) {
  DPAXOS_CHECK_MSG(txn.read_only(), "transaction has writes");
  if (access_->CanServeLocalRead() || access_->CanServeQuorumRead()) {
    // Linearizable local read under the master lease: no replication.
    ++local_reads_;
    ScheduleGuarded(kLocalReadServiceTime, [this, cb = std::move(cb)]() mutable {
      Status ok = Status::OK();
      Track(ok, kLocalReadServiceTime, cb);
    });
    return;
  }
  // No lease: route like a write so the read is still linearizable.
  ExecuteBatch({txn}, std::move(cb));
}

// --- retry surface --------------------------------------------------------

void Client::ExecuteWithRetry(Transaction txn, ResultCallback cb) {
  auto op = std::make_shared<PendingOp>();
  txn.client_id = options_.client_id;
  txn.seq = ++next_seq_;
  op->txn = std::move(txn);
  op->cb = std::move(cb);
  op->invoke = sim_->Now();
  op->deadline = op->invoke + options_.request_deadline;
  op->is_read = op->txn.read_only();
  StartAttempt(op);
}

void Client::ExecuteReadOnlyWithRetry(Transaction txn, ResultCallback cb) {
  DPAXOS_CHECK_MSG(txn.read_only(), "transaction has writes");
  auto op = std::make_shared<PendingOp>();
  txn.client_id = options_.client_id;
  txn.seq = ++next_seq_;
  op->txn = std::move(txn);
  op->cb = std::move(cb);
  op->invoke = sim_->Now();
  op->deadline = op->invoke + options_.request_deadline;
  op->is_read = true;
  op->want_lease_read = true;
  StartAttempt(op);
}

void Client::StartAttempt(const std::shared_ptr<PendingOp>& op) {
  if (op->done) return;
  if (sim_->Now() >= op->deadline || op->attempts >= options_.max_attempts) {
    FinishOp(op,
             op->maybe_applied ? ClientOutcome::kIndeterminate
                               : ClientOutcome::kFailed,
             op->last_error.ok() ? Status::TimedOut("request deadline")
                                 : op->last_error);
    return;
  }
  ++op->attempts;
  if (op->attempts > 1) ++retries_;
  Replica* access = ResolveAccess(access_index_);
  if (access == nullptr) {
    HandleAttemptFailure(op, Status::Unavailable("access replica down"),
                         /*maybe_applied=*/false);
    return;
  }
  const NodeId node = access_nodes_[access_index_];

  if (op->want_lease_read &&
      (access->CanServeLocalRead() || access->CanServeQuorumRead())) {
    // Lease read: the replica's learned prefix provably contains every
    // committed write right now; observe state once the applier covers
    // that prefix.
    ++local_reads_;
    op->lease_attempt = true;
    const SlotId want = access->DecidedWatermark();
    ScheduleGuarded(kLocalReadServiceTime, [this, op, node, want] {
      WaitForWatermark(op, node, want, kApplyPollPeriod,
                       [this, op, node] { ObserveAndFinish(op, node); });
    });
    return;
  }

  // Commit path: the transaction occupies a log slot (reads included —
  // that is what makes a lease-less read linearizable).
  op->lease_attempt = false;
  const uint64_t epoch = ++op->epoch;
  Value value = Value::Of(++next_value_id_, EncodeBatch({op->txn}));
  access->SubmitOrForward(
      std::move(value),
      [this, alive = alive_, op, node, epoch](const Status& st, SlotId slot,
                                              Duration /*latency*/) {
        if (!*alive || op->done) return;
        if (!st.ok()) {
          // A stale attempt's failure: a newer attempt owns the op now.
          if (epoch != op->epoch) return;
          // Any failure after submission may still commit later: the
          // value might sit accepted at a quorum or in a forward queue.
          HandleAttemptFailure(op, st, /*maybe_applied=*/true);
          return;
        }
        if (!op->is_read) {
          OpResult r;
          r.outcome = ClientOutcome::kCommitted;
          r.status = Status::OK();
          r.latency = sim_->Now() - op->invoke;
          r.seq = op->txn.seq;
          r.attempts = op->attempts;
          r.slot = slot;
          op->done = true;
          ++committed_;
          latency_.Add(r.latency);
          if (op->cb) op->cb(r);
          return;
        }
        // Routed read: observe values only after the access replica has
        // applied through the read's own slot.
        WaitForWatermark(op, node, slot + 1, kApplyPollPeriod,
                         [this, op, node] { ObserveAndFinish(op, node); });
      });
  // Watchdog: a restart of the access (or forwarding leader) node
  // destroys its replica together with the pending callback above; the
  // value may nonetheless have reached acceptors. Without this timer
  // the op would hang past its deadline.
  ScheduleGuarded(options_.attempt_timeout, [this, op, epoch] {
    if (op->done || epoch != op->epoch) return;
    HandleAttemptFailure(op, Status::TimedOut("attempt watchdog fired"),
                         /*maybe_applied=*/true);
  });
}

void Client::WaitForWatermark(const std::shared_ptr<PendingOp>& op,
                              NodeId node, SlotId want, Duration poll,
                              const std::function<void()>& then) {
  if (op->done) return;
  if (!hooks_.applied_watermark || !hooks_.get) {
    // No observation hooks: complete with status only.
    then();
    return;
  }
  if (hooks_.applied_watermark(node) >= want) {
    then();
    return;
  }
  if (sim_->Now() + poll >= op->deadline) {
    HandleAttemptFailure(
        op, Status::TimedOut("applier did not reach read position"),
        /*maybe_applied=*/false);
    return;
  }
  ScheduleGuarded(poll, [this, op, node, want, poll, then] {
    WaitForWatermark(op, node, want, poll, then);
  });
}

void Client::ObserveAndFinish(const std::shared_ptr<PendingOp>& op,
                              NodeId node) {
  if (op->done) return;
  OpResult r;
  r.outcome = ClientOutcome::kCommitted;
  r.status = Status::OK();
  r.latency = sim_->Now() - op->invoke;
  r.seq = op->txn.seq;
  r.attempts = op->attempts;
  r.local_read = op->lease_attempt;
  if (hooks_.applied_watermark) r.observed_watermark =
      hooks_.applied_watermark(node);
  if (hooks_.get) {
    for (const Operation& o : op->txn.ops) {
      if (o.kind == Operation::Kind::kGet) {
        r.reads.push_back(hooks_.get(node, o.key));
      }
    }
  }
  op->done = true;
  ++committed_;
  latency_.Add(r.latency);
  if (op->cb) op->cb(r);
}

void Client::HandleAttemptFailure(const std::shared_ptr<PendingOp>& op,
                                  const Status& st, bool maybe_applied) {
  if (op->done) return;
  op->last_error = st;
  op->maybe_applied = op->maybe_applied || maybe_applied;
  // Definite client-side rejections never commit; don't burn the budget.
  if (st.code() == StatusCode::kInvalidArgument ||
      st.code() == StatusCode::kNotSupported) {
    FinishOp(op, ClientOutcome::kFailed, st);
    return;
  }
  // Rotate the access point: the current one may be crashed, partitioned
  // or pointing at a dead leader.
  if (access_nodes_.size() > 1) {
    access_index_ = (access_index_ + 1) % access_nodes_.size();
  }
  // Capped exponential backoff with [0.5x, 1.5x) jitter.
  const uint32_t exp = std::min(op->attempts, 20u);
  Duration backoff = options_.retry_backoff_base << (exp - 1);
  backoff = std::min(backoff, options_.retry_backoff_cap);
  backoff = backoff / 2 + rng_.NextBounded(backoff);
  const Timestamp now = sim_->Now();
  if (now + backoff >= op->deadline || op->attempts >= options_.max_attempts) {
    FinishOp(op,
             op->maybe_applied ? ClientOutcome::kIndeterminate
                               : ClientOutcome::kFailed,
             st);
    return;
  }
  ScheduleGuarded(backoff, [this, op] { StartAttempt(op); });
}

void Client::FinishOp(const std::shared_ptr<PendingOp>& op,
                      ClientOutcome outcome, const Status& st) {
  if (op->done) return;
  op->done = true;
  OpResult r;
  // Reads have no effect, so an undecided read is just a failed read.
  r.outcome = (op->is_read && outcome == ClientOutcome::kIndeterminate)
                  ? ClientOutcome::kFailed
                  : outcome;
  r.status = st;
  r.latency = sim_->Now() - op->invoke;
  r.seq = op->txn.seq;
  r.attempts = op->attempts;
  if (r.outcome == ClientOutcome::kIndeterminate) {
    ++indeterminate_;
  } else {
    ++failed_;
  }
  if (op->cb) op->cb(r);
}

}  // namespace dpaxos
