#include "client/client.h"

#include "common/check.h"

namespace dpaxos {

namespace {
// Local service time for a lease-protected read at the access replica.
constexpr Duration kLocalReadServiceTime = 500 * kMicrosecond;
}  // namespace

Client::Client(Simulator* sim, Replica* access)
    : Client(sim, access, Options()) {}

Client::Client(Simulator* sim, Replica* access, Options options)
    : sim_(sim),
      access_(access),
      options_(options),
      batch_builder_(options.batch_target_bytes) {
  DPAXOS_CHECK(sim != nullptr);
  DPAXOS_CHECK(access != nullptr);
  // Keep client-chosen value ids unique across sessions: derive the id
  // space from the access node and a per-construction nonce.
  next_value_id_ =
      (static_cast<uint64_t>(access->id()) << 40) | (sim->Now() & 0xffffff);
}

void Client::Track(const Status& st, Duration latency, Callback& cb) {
  if (st.ok()) {
    ++committed_;
    latency_.Add(latency);
  } else {
    ++failed_;
  }
  if (cb) cb(st, latency);
}

void Client::Execute(const Transaction& txn, Callback cb) {
  ExecuteBatch({txn}, std::move(cb));
}

void Client::ExecuteBatch(const std::vector<Transaction>& batch,
                          Callback cb) {
  Value value = Value::Of(++next_value_id_, EncodeBatch(batch));
  access_->SubmitOrForward(
      std::move(value),
      [this, cb = std::move(cb)](const Status& st, SlotId /*slot*/,
                                 Duration latency) mutable {
        Track(st, latency, cb);
      });
}

void Client::SubmitBatched(Transaction txn, Callback cb) {
  batch_callbacks_.push_back(std::move(cb));
  const bool full = batch_builder_.Add(std::move(txn));
  if (full) {
    FlushBatch();
    return;
  }
  if (flush_timer_ == 0) {
    flush_timer_ = sim_->Schedule(options_.batch_flush_interval, [this] {
      flush_timer_ = 0;
      FlushBatch();
    });
  }
}

void Client::FlushBatch() {
  if (flush_timer_ != 0) {
    sim_->Cancel(flush_timer_);
    flush_timer_ = 0;
  }
  if (batch_builder_.empty()) return;
  ++batches_flushed_;
  Value value = batch_builder_.Take(++next_value_id_);
  auto callbacks =
      std::make_shared<std::vector<Callback>>(std::move(batch_callbacks_));
  batch_callbacks_.clear();
  access_->SubmitOrForward(
      std::move(value),
      [this, callbacks](const Status& st, SlotId, Duration latency) {
        for (Callback& cb : *callbacks) Track(st, latency, cb);
      });
}

void Client::ExecuteReadOnly(const Transaction& txn, Callback cb) {
  DPAXOS_CHECK_MSG(txn.read_only(), "transaction has writes");
  if (access_->CanServeLocalRead() || access_->CanServeQuorumRead()) {
    // Linearizable local read under the master lease: no replication.
    ++local_reads_;
    sim_->Schedule(kLocalReadServiceTime,
                   [this, cb = std::move(cb)]() mutable {
                     Status ok = Status::OK();
                     Track(ok, kLocalReadServiceTime, cb);
                   });
    return;
  }
  // No lease: route like a write so the read is still linearizable.
  ExecuteBatch({txn}, std::move(cb));
}

}  // namespace dpaxos
