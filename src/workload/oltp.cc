#include "workload/oltp.h"

#include <cstdio>

namespace dpaxos {

std::string OltpGenerator::RandomKey() {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%010llu",
                static_cast<unsigned long long>(
                    rng_.NextBounded(config_.num_keys)));
  return buf;
}

std::string OltpGenerator::RandomValue() {
  std::string v(config_.value_size, '\0');
  for (char& c : v) {
    c = static_cast<char>('a' + rng_.NextBounded(26));
  }
  return v;
}

Transaction OltpGenerator::Next() {
  Transaction txn;
  txn.id = ++next_id_;
  const bool read_only = rng_.NextBool(config_.read_only_fraction);
  txn.ops.reserve(config_.ops_per_txn);
  for (uint32_t i = 0; i < config_.ops_per_txn; ++i) {
    if (!read_only && rng_.NextBool(config_.write_op_fraction)) {
      txn.ops.push_back(Operation::Put(RandomKey(), RandomValue()));
    } else {
      txn.ops.push_back(Operation::Get(RandomKey()));
    }
  }
  return txn;
}

std::vector<Transaction> OltpGenerator::NextBatch(uint64_t target_bytes) {
  std::vector<Transaction> batch;
  uint64_t bytes = 0;
  do {
    Transaction txn = Next();
    bytes += EncodedSize(txn);
    batch.push_back(std::move(txn));
  } while (bytes < target_bytes);
  return batch;
}

}  // namespace dpaxos
