// OLTP workload generator, matching the paper's evaluation workload
// (Section 5): small transactions of five operations over one million
// keys, 50-byte values, half reads / half writes; optionally a fraction
// of read-only transactions (Section A.2).
#ifndef DPAXOS_WORKLOAD_OLTP_H_
#define DPAXOS_WORKLOAD_OLTP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "txn/transaction.h"

namespace dpaxos {

/// Workload parameters; defaults are the paper's.
struct OltpConfig {
  uint64_t num_keys = 1'000'000;
  uint32_t ops_per_txn = 5;
  uint32_t value_size = 50;
  /// Probability that an operation inside a read-write transaction is a
  /// write (paper: half reads, half writes).
  double write_op_fraction = 0.5;
  /// Fraction of transactions that are read-only (paper Section A.2).
  double read_only_fraction = 0.0;
};

/// \brief Deterministic transaction stream.
class OltpGenerator {
 public:
  OltpGenerator(OltpConfig config, uint64_t seed)
      : config_(config), rng_(seed) {}

  /// Generate the next transaction (ids are sequential).
  Transaction Next();

  /// Generate a batch whose encoded size is at least `target_bytes`
  /// (one transaction minimum).
  std::vector<Transaction> NextBatch(uint64_t target_bytes);

  const OltpConfig& config() const { return config_; }
  uint64_t generated() const { return next_id_; }

 private:
  std::string RandomKey();
  std::string RandomValue();

  OltpConfig config_;
  Rng rng_;
  uint64_t next_id_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_WORKLOAD_OLTP_H_
