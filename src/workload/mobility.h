// Mobility schedules: where a partition's users are over time.
//
// The paper's motivating scenario (vehicular / AR applications) has the
// workload moving between zones; the leader — and eventually the Leader
// Zone — must follow. A MobilitySchedule is a deterministic piecewise-
// constant zone function of virtual time.
#ifndef DPAXOS_WORKLOAD_MOBILITY_H_
#define DPAXOS_WORKLOAD_MOBILITY_H_

#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/types.h"

namespace dpaxos {

/// \brief Piecewise-constant zone-of-time function.
class MobilitySchedule {
 public:
  struct Segment {
    Timestamp start;  ///< the user is in `zone` from this instant
    ZoneId zone;
  };

  /// Segments must be sorted by start time, the first at time 0.
  explicit MobilitySchedule(std::vector<Segment> segments)
      : segments_(std::move(segments)) {
    DPAXOS_CHECK(!segments_.empty());
    DPAXOS_CHECK_EQ(segments_.front().start, 0u);
    for (size_t i = 1; i < segments_.size(); ++i) {
      DPAXOS_CHECK_LT(segments_[i - 1].start, segments_[i].start);
    }
  }

  /// A stationary user.
  static MobilitySchedule Stationary(ZoneId zone) {
    return MobilitySchedule({Segment{0, zone}});
  }

  /// A round trip visiting `path` zones, `dwell` virtual time in each.
  static MobilitySchedule Tour(const std::vector<ZoneId>& path,
                               Duration dwell) {
    DPAXOS_CHECK(!path.empty());
    std::vector<Segment> segments;
    Timestamp t = 0;
    for (ZoneId z : path) {
      segments.push_back(Segment{t, z});
      t += dwell;
    }
    return MobilitySchedule(std::move(segments));
  }

  /// A random walk over `num_zones` zones seeded by `seed`.
  static MobilitySchedule RandomWalk(uint32_t num_zones, uint32_t hops,
                                     Duration dwell, uint64_t seed) {
    DPAXOS_CHECK_GT(num_zones, 0u);
    Rng rng(seed);
    std::vector<Segment> segments;
    Timestamp t = 0;
    ZoneId zone = static_cast<ZoneId>(rng.NextBounded(num_zones));
    for (uint32_t i = 0; i <= hops; ++i) {
      segments.push_back(Segment{t, zone});
      t += dwell;
      if (num_zones > 1) {
        ZoneId next = zone;
        while (next == zone) {
          next = static_cast<ZoneId>(rng.NextBounded(num_zones));
        }
        zone = next;
      }
    }
    return MobilitySchedule(std::move(segments));
  }

  /// Zone the user occupies at time `t`.
  ZoneId ZoneAt(Timestamp t) const {
    ZoneId zone = segments_.front().zone;
    for (const Segment& s : segments_) {
      if (s.start > t) break;
      zone = s.zone;
    }
    return zone;
  }

  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
};

}  // namespace dpaxos

#endif  // DPAXOS_WORKLOAD_MOBILITY_H_
