// State Machine Replication interfaces (paper Section 1: DPaxos is the
// SMR component of an edge data management system).
#ifndef DPAXOS_SMR_STATE_MACHINE_H_
#define DPAXOS_SMR_STATE_MACHINE_H_

#include <string>

#include "common/types.h"

namespace dpaxos {

/// \brief Deterministic application state machine.
///
/// Commands are applied exactly once, in slot order, on every replica
/// that learns the log; determinism makes all replicas converge.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply the decided command payload for `slot`. Empty payloads
  /// (no-op fillers) are passed through so implementations can count
  /// them if they wish.
  virtual void Apply(SlotId slot, const std::string& payload) = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_SMR_STATE_MACHINE_H_
