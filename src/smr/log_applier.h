// In-order application of a (possibly out-of-order learned) decided log.
#ifndef DPAXOS_SMR_LOG_APPLIER_H_
#define DPAXOS_SMR_LOG_APPLIER_H_

#include <map>

#include "common/types.h"
#include "paxos/value.h"
#include "smr/state_machine.h"

namespace dpaxos {

/// \brief Buffers decided slots and applies them contiguously.
///
/// Wire it to a Replica:
///   replica->set_decide_callback([&](SlotId s, const Value& v) {
///     applier.OnDecided(s, v);
///   });
class LogApplier {
 public:
  /// `sm` must outlive the applier.
  explicit LogApplier(StateMachine* sm) : sm_(sm) {}

  /// Feed one decided slot; applies it (and any now-unblocked buffered
  /// successors) if contiguous, else buffers.
  void OnDecided(SlotId slot, const Value& value);

  /// Next slot to apply (== number of contiguously applied slots).
  SlotId applied_watermark() const { return next_to_apply_; }
  size_t buffered() const { return buffer_.size(); }

  /// Skip ahead after a snapshot install: slots below `slot` are covered
  /// by the restored state and must not be re-applied. Buffered entries
  /// below the new watermark are dropped; ones at/above it stay and
  /// drain as usual.
  void FastForwardTo(SlotId slot) {
    if (slot <= next_to_apply_) return;
    next_to_apply_ = slot;
    buffer_.erase(buffer_.begin(), buffer_.lower_bound(slot));
    DrainBuffered();
  }

 private:
  void DrainBuffered();

  StateMachine* sm_;
  SlotId next_to_apply_ = 0;
  std::map<SlotId, Value> buffer_;
};

}  // namespace dpaxos

#endif  // DPAXOS_SMR_LOG_APPLIER_H_
