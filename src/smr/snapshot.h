// Versioned, CRC-checksummed snapshot envelope for state transfer.
//
// A snapshot carries an opaque state-machine payload (KvStateMachine::
// SerializeFull today) together with the slot it covers: every decided
// slot < through_slot is reflected in the payload, so an installer can
// truncate its log below that point and replay only the residual tail.
// The envelope exists because snapshots travel further than ordinary
// wire messages — across lossy restarts via NodeStorage and across the
// network in chunks — so corruption (bit flips, torn writes, truncated
// reassembly) must be detected at install time, never applied silently.
//
// Layout (little-endian, matching common/codec.h):
//   magic    u32   'DPSS'
//   version  u32   kSnapshotVersion
//   through  u64   slots [0, through) are covered by the payload
//   payload  u32 length + bytes
//   crc32    u32   CRC-32 (IEEE 802.3) over everything above
//
// DecodeSnapshot returns Status::Corruption for any bad magic, unknown
// version, truncation, trailing garbage, or checksum mismatch.
#ifndef DPAXOS_SMR_SNAPSHOT_H_
#define DPAXOS_SMR_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/crc32.h"
#include "common/status.h"
#include "common/types.h"

namespace dpaxos {

inline constexpr uint32_t kSnapshotMagic = 0x53535044;  // "DPSS"
inline constexpr uint32_t kSnapshotVersion = 1;

/// \brief A decoded (verified) snapshot.
struct Snapshot {
  /// Every slot < through_slot is reflected in `payload`.
  SlotId through_slot = 0;
  /// Opaque state-machine bytes (KvStateMachine::SerializeFull).
  std::string payload;
};

// The envelope's checksum is Crc32 from common/crc32.h (included above
// so existing callers keep finding it through this header).

/// Wrap `payload` (covering slots [0, through_slot)) in the envelope.
std::string EncodeSnapshot(SlotId through_slot, std::string_view payload);

/// Verify and unwrap an envelope. Status::Corruption on any bit flip,
/// truncation, bad magic, or unknown version — the payload is only
/// returned when the checksum proves it intact.
Result<Snapshot> DecodeSnapshot(std::string_view bytes);

}  // namespace dpaxos

#endif  // DPAXOS_SMR_SNAPSHOT_H_
