#include "smr/log_applier.h"

namespace dpaxos {

void LogApplier::OnDecided(SlotId slot, const Value& value) {
  if (slot < next_to_apply_) return;  // duplicate learn
  buffer_.emplace(slot, value);
  DrainBuffered();
}

void LogApplier::DrainBuffered() {
  while (true) {
    auto it = buffer_.find(next_to_apply_);
    if (it == buffer_.end()) break;
    sm_->Apply(it->first, it->second.payload);
    buffer_.erase(it);
    ++next_to_apply_;
  }
}

}  // namespace dpaxos
