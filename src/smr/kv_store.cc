#include "smr/kv_store.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/logging.h"
#include "txn/transaction.h"

namespace dpaxos {

namespace {

// FNV-1a over a string, used for the order-independent state checksum.
uint64_t HashString(const std::string& s, uint64_t h = 0xcbf29ce484222325ULL) {
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void KvStateMachine::Apply(SlotId slot, const std::string& payload) {
  (void)slot;
  if (payload.empty()) return;  // no-op filler
  Result<std::vector<Transaction>> batch = DecodeBatch(payload);
  if (!batch.ok()) {
    // A corrupt decided payload indicates a bug upstream; surface loudly
    // but keep the replica running.
    DPAXOS_ERROR("undecodable command in slot " << slot << ": "
                                                << batch.status().ToString());
    return;
  }
  for (const Transaction& txn : batch.value()) {
    if (txn.client_id != 0 && !applied_seqs_[txn.client_id].Insert(txn.seq)) {
      // A client retry that raced an earlier successful submission:
      // the transaction is already in the log, so applying it again
      // would violate exactly-once semantics.
      ++duplicates_skipped_;
      continue;
    }
    ++applied_commands_;
    for (const Operation& op : txn.ops) {
      if (op.kind == Operation::Kind::kPut) {
        data_[op.key] = op.value;
        ++applied_writes_;
      }
    }
  }
}

bool KvStateMachine::ClientWindow::Insert(uint64_t seq) {
  if (Contains(seq)) return false;
  sparse.insert(seq);
  auto it = sparse.begin();
  while (it != sparse.end() && *it == prefix + 1) {
    ++prefix;
    it = sparse.erase(it);
  }
  return true;
}

bool KvStateMachine::ClientWindow::Contains(uint64_t seq) const {
  return (seq != 0 && seq <= prefix) || sparse.count(seq) > 0;
}

bool KvStateMachine::WasApplied(uint64_t client_id, uint64_t seq) const {
  if (client_id == 0) return false;
  auto it = applied_seqs_.find(client_id);
  return it != applied_seqs_.end() && it->second.Contains(seq);
}

std::optional<std::string> KvStateMachine::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::string KvStateMachine::Serialize() const {
  // Reuse the transaction codec: one put per pair, sorted for canonical
  // output.
  std::vector<std::pair<std::string, std::string>> pairs(data_.begin(),
                                                         data_.end());
  std::sort(pairs.begin(), pairs.end());
  Transaction all;
  all.id = 0;
  all.ops.reserve(pairs.size());
  for (auto& [k, v] : pairs) {
    all.ops.push_back(Operation::Put(std::move(k), std::move(v)));
  }
  return EncodeBatch({all});
}

Status KvStateMachine::Restore(const std::string& snapshot) {
  Result<std::vector<Transaction>> decoded = DecodeBatch(snapshot);
  if (!decoded.ok()) return decoded.status();
  if (decoded->size() != 1) {
    return Status::Corruption("snapshot must hold exactly one batch entry");
  }
  data_.clear();
  for (const Operation& op : decoded->front().ops) {
    if (op.kind != Operation::Kind::kPut) {
      return Status::Corruption("snapshot contains a non-put op");
    }
    data_[op.key] = op.value;
  }
  return Status::OK();
}

std::string KvStateMachine::SerializeFull() const {
  std::string out;
  ByteWriter w(&out);
  std::vector<std::pair<std::string, std::string>> pairs(data_.begin(),
                                                         data_.end());
  std::sort(pairs.begin(), pairs.end());
  w.PutU64(pairs.size());
  for (const auto& [k, v] : pairs) {
    w.PutString(k);
    w.PutString(v);
  }
  std::vector<uint64_t> clients;
  clients.reserve(applied_seqs_.size());
  for (const auto& [id, window] : applied_seqs_) clients.push_back(id);
  std::sort(clients.begin(), clients.end());
  w.PutU64(clients.size());
  for (uint64_t id : clients) {
    const ClientWindow& window = applied_seqs_.at(id);
    w.PutU64(id);
    w.PutU64(window.prefix);
    w.PutU64(window.sparse.size());
    for (uint64_t seq : window.sparse) w.PutU64(seq);
  }
  w.PutU64(applied_commands_);
  w.PutU64(applied_writes_);
  w.PutU64(duplicates_skipped_);
  return out;
}

Status KvStateMachine::RestoreFull(const std::string& snapshot) {
  ByteReader r(snapshot);
  std::unordered_map<std::string, std::string> data;
  std::unordered_map<uint64_t, ClientWindow> seqs;
  uint64_t pairs = 0;
  if (!r.ReadU64(&pairs)) return Status::Corruption("kv snapshot truncated");
  for (uint64_t i = 0; i < pairs; ++i) {
    std::string k, v;
    if (!r.ReadString(&k) || !r.ReadString(&v)) {
      return Status::Corruption("kv snapshot truncated");
    }
    data[std::move(k)] = std::move(v);
  }
  uint64_t clients = 0;
  if (!r.ReadU64(&clients)) return Status::Corruption("kv snapshot truncated");
  for (uint64_t i = 0; i < clients; ++i) {
    uint64_t id = 0, sparse = 0;
    ClientWindow window;
    if (!r.ReadU64(&id) || !r.ReadU64(&window.prefix) || !r.ReadU64(&sparse)) {
      return Status::Corruption("kv snapshot truncated");
    }
    for (uint64_t j = 0; j < sparse; ++j) {
      uint64_t seq = 0;
      if (!r.ReadU64(&seq)) return Status::Corruption("kv snapshot truncated");
      window.sparse.insert(seq);
    }
    seqs[id] = std::move(window);
  }
  uint64_t commands = 0, writes = 0, dups = 0;
  if (!r.ReadU64(&commands) || !r.ReadU64(&writes) || !r.ReadU64(&dups) ||
      !r.AtEnd()) {
    return Status::Corruption("kv snapshot malformed");
  }
  data_ = std::move(data);
  applied_seqs_ = std::move(seqs);
  applied_commands_ = commands;
  applied_writes_ = writes;
  duplicates_skipped_ = dups;
  return Status::OK();
}

uint64_t KvStateMachine::Checksum() const {
  // XOR of per-pair hashes: independent of iteration order.
  uint64_t sum = 0;
  for (const auto& [k, v] : data_) {
    sum ^= HashString(v, HashString(k));
  }
  return sum;
}

}  // namespace dpaxos
