// Replicated key-value store: the partition state machine used by the
// examples and integration tests. Commands are batches of transactions
// encoded by src/txn.
#ifndef DPAXOS_SMR_KV_STORE_H_
#define DPAXOS_SMR_KV_STORE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "smr/state_machine.h"

namespace dpaxos {

/// \brief In-memory key-value state machine.
///
/// Applies transaction batches (see txn::EncodeBatch): every write op in
/// every transaction of the batch is installed; reads are no-ops at apply
/// time (they were answered at the leader). A content checksum supports
/// cross-replica convergence checks in tests.
class KvStateMachine final : public StateMachine {
 public:
  void Apply(SlotId slot, const std::string& payload) override;

  /// Point lookup against the applied state.
  std::optional<std::string> Get(const std::string& key) const;

  size_t size() const { return data_.size(); }
  uint64_t applied_commands() const { return applied_commands_; }
  uint64_t applied_writes() const { return applied_writes_; }
  uint64_t duplicates_skipped() const { return duplicates_skipped_; }

  /// True iff a transaction tagged (client_id, seq) has already been
  /// applied. client_id 0 marks untagged transactions and always
  /// returns false.
  bool WasApplied(uint64_t client_id, uint64_t seq) const;

  /// Order-independent checksum of the full key-value content; equal
  /// checksums on two replicas mean convergent state.
  uint64_t Checksum() const;

  /// Serialize the full state for snapshot transfer (sorted, so equal
  /// states serialize identically).
  std::string Serialize() const;

  /// Replace the state with a previously serialized snapshot. Returns
  /// Corruption on malformed input, leaving the state unchanged.
  Status Restore(const std::string& snapshot);

  /// Like Serialize(), but also captures the per-client dedup windows
  /// and apply counters. Snapshot-installing a replica needs these:
  /// without the windows a client retry straddling the snapshot point
  /// would be applied twice during residual log replay.
  std::string SerializeFull() const;

  /// Counterpart of SerializeFull(). Returns Corruption on malformed
  /// input, leaving the state unchanged.
  Status RestoreFull(const std::string& snapshot);

 private:
  // Compact per-client dedup window: every seq <= prefix has been
  // applied, plus a sparse set of out-of-order seqs above it. The set
  // drains back into the prefix as gaps fill, so a well-behaved client
  // costs O(1) amortized space.
  struct ClientWindow {
    uint64_t prefix = 0;
    std::set<uint64_t> sparse;

    // Records seq as applied; returns false if it was already present.
    bool Insert(uint64_t seq);
    bool Contains(uint64_t seq) const;
  };

  std::unordered_map<std::string, std::string> data_;
  std::unordered_map<uint64_t, ClientWindow> applied_seqs_;
  uint64_t applied_commands_ = 0;
  uint64_t applied_writes_ = 0;
  uint64_t duplicates_skipped_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_SMR_KV_STORE_H_
