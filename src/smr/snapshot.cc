#include "smr/snapshot.h"

#include <array>

#include "common/codec.h"

namespace dpaxos {

namespace {

// Table-driven CRC-32 (IEEE 802.3 polynomial 0xEDB88320, reflected).
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeSnapshot(SlotId through_slot, std::string_view payload) {
  std::string out;
  out.reserve(4 + 4 + 8 + 4 + payload.size() + 4);
  ByteWriter w(&out);
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutU64(through_slot);
  w.PutString(payload);
  w.PutU32(Crc32(out));
  return out;
}

Result<Snapshot> DecodeSnapshot(std::string_view bytes) {
  // The CRC trails the envelope: everything before it is covered.
  if (bytes.size() < 4 + 4 + 8 + 4 + 4) {
    return Status::Corruption("snapshot envelope truncated");
  }
  ByteReader r(bytes);
  uint32_t magic = 0, version = 0;
  Snapshot snap;
  if (!r.ReadU32(&magic) || magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  if (!r.ReadU32(&version) || version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  uint64_t through = 0;
  std::string_view payload;
  if (!r.ReadU64(&through) || !r.ReadStringView(&payload)) {
    return Status::Corruption("snapshot envelope truncated");
  }
  uint32_t stored_crc = 0;
  if (!r.ReadU32(&stored_crc) || !r.AtEnd()) {
    return Status::Corruption("snapshot envelope truncated");
  }
  const uint32_t actual = Crc32(bytes.substr(0, bytes.size() - 4));
  if (actual != stored_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  snap.through_slot = through;
  snap.payload.assign(payload);
  return snap;
}

}  // namespace dpaxos
