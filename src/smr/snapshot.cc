#include "smr/snapshot.h"

#include "common/codec.h"

namespace dpaxos {

std::string EncodeSnapshot(SlotId through_slot, std::string_view payload) {
  std::string out;
  out.reserve(4 + 4 + 8 + 4 + payload.size() + 4);
  ByteWriter w(&out);
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutU64(through_slot);
  w.PutString(payload);
  w.PutU32(Crc32(out));
  return out;
}

Result<Snapshot> DecodeSnapshot(std::string_view bytes) {
  // The CRC trails the envelope: everything before it is covered.
  if (bytes.size() < 4 + 4 + 8 + 4 + 4) {
    return Status::Corruption("snapshot envelope truncated");
  }
  ByteReader r(bytes);
  uint32_t magic = 0, version = 0;
  Snapshot snap;
  if (!r.ReadU32(&magic) || magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  if (!r.ReadU32(&version) || version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  uint64_t through = 0;
  std::string_view payload;
  if (!r.ReadU64(&through) || !r.ReadStringView(&payload)) {
    return Status::Corruption("snapshot envelope truncated");
  }
  uint32_t stored_crc = 0;
  if (!r.ReadU32(&stored_crc) || !r.AtEnd()) {
    return Status::Corruption("snapshot envelope truncated");
  }
  const uint32_t actual = Crc32(bytes.substr(0, bytes.size() - 4));
  if (actual != stored_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  snap.through_slot = through;
  snap.payload.assign(payload);
  return snap;
}

}  // namespace dpaxos
