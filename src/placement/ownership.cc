#include "placement/ownership.h"

#include <cstring>

#include "common/check.h"
#include "common/codec.h"
#include "txn/transaction.h"

namespace dpaxos {

namespace {

// Magic prefix of the record key inside the carrier transaction. The
// version byte rides in the key so a future format change is detectable
// without a new value tag.
constexpr char kRecordMagic[] = "\x7fOWN1";
constexpr size_t kRecordMagicLen = 5;

}  // namespace

Value MakeOwnershipTransferValue(const OwnershipRecord& record,
                                 uint64_t seq) {
  std::string key(kRecordMagic, kRecordMagicLen);
  ByteWriter writer(&key);
  writer.PutU32(record.partition);
  writer.PutU32(record.zone);
  writer.PutU32(record.node);
  writer.PutU64(record.epoch);

  const uint64_t id = (static_cast<uint64_t>(kOwnershipValueTag) << 56) |
                      (seq & ((1ULL << 56) - 1));
  Transaction txn;
  txn.id = id;  // client_id stays 0: untagged, exempt from dedup
  txn.ops.push_back(Operation::Get(std::move(key)));
  return Value::Of(id, EncodeBatch({txn}));
}

std::optional<OwnershipRecord> DecodeOwnershipRecord(const Value& value) {
  if (!IsOwnershipValueId(value.id)) return std::nullopt;
  Result<std::vector<Transaction>> batch = DecodeBatch(value.payload);
  if (!batch.ok() || batch->size() != 1) return std::nullopt;
  const Transaction& txn = batch->front();
  if (txn.ops.size() != 1 ||
      txn.ops.front().kind != Operation::Kind::kGet) {
    return std::nullopt;
  }
  const std::string& key = txn.ops.front().key;
  if (key.size() != kRecordMagicLen + 20 ||
      std::memcmp(key.data(), kRecordMagic, kRecordMagicLen) != 0) {
    return std::nullopt;
  }
  ByteReader reader(std::string_view(key).substr(kRecordMagicLen));
  OwnershipRecord record;
  uint32_t partition = 0, zone = 0, node = 0;
  if (!reader.ReadU32(&partition) || !reader.ReadU32(&zone) ||
      !reader.ReadU32(&node) || !reader.ReadU64(&record.epoch) ||
      !reader.AtEnd()) {
    return std::nullopt;
  }
  record.partition = partition;
  record.zone = zone;
  record.node = node;
  return record;
}

OwnershipDirectory::OwnershipDirectory(uint32_t num_partitions)
    : entries_(num_partitions) {
  DPAXOS_CHECK_GT(num_partitions, 0u);
}

bool OwnershipDirectory::Observe(SlotId slot, const Value& value) {
  std::optional<OwnershipRecord> record = DecodeOwnershipRecord(value);
  if (!record) return false;
  return Observe(slot, *record);
}

bool OwnershipDirectory::Observe(SlotId slot, const OwnershipRecord& record) {
  if (record.partition >= entries_.size()) return false;
  ++records_observed_;
  Entry& entry = entries_[record.partition];
  // Slot order is the authority: each partition's transfers are totally
  // ordered by its own log, so the record at the highest slot wins and
  // anything at or below what we already hold is a replay.
  if (entry.valid && slot <= entry.slot) {
    ++records_stale_;
    return false;
  }
  entry.node = record.node;
  entry.zone = record.zone;
  entry.epoch = record.epoch;
  entry.slot = slot;
  entry.valid = true;
  return true;
}

bool OwnershipDirectory::has_owner(PartitionId partition) const {
  DPAXOS_CHECK_LT(partition, entries_.size());
  return entries_[partition].valid;
}

NodeId OwnershipDirectory::owner_node(PartitionId partition) const {
  DPAXOS_CHECK_LT(partition, entries_.size());
  return entries_[partition].valid ? entries_[partition].node : kInvalidNode;
}

ZoneId OwnershipDirectory::owner_zone(PartitionId partition) const {
  DPAXOS_CHECK_LT(partition, entries_.size());
  return entries_[partition].zone;
}

uint64_t OwnershipDirectory::epoch(PartitionId partition) const {
  DPAXOS_CHECK_LT(partition, entries_.size());
  return entries_[partition].epoch;
}

SlotId OwnershipDirectory::record_slot(PartitionId partition) const {
  DPAXOS_CHECK_LT(partition, entries_.size());
  return entries_[partition].slot;
}

}  // namespace dpaxos
