#include "placement/placement.h"

#include <cmath>

#include "common/check.h"

namespace dpaxos {

AccessStats::AccessStats(uint32_t num_zones, Duration half_life)
    : half_life_(half_life),
      weights_(num_zones, 0.0),
      updated_(num_zones, 0) {
  DPAXOS_CHECK_GT(num_zones, 0u);
  DPAXOS_CHECK_GT(half_life, 0u);
}

double AccessStats::Decay(double weight, Timestamp from,
                          Timestamp now) const {
  if (now <= from || weight == 0.0) return weight;
  const double halves = static_cast<double>(now - from) /
                        static_cast<double>(half_life_);
  return weight * std::exp2(-halves);
}

void AccessStats::Record(ZoneId zone, Timestamp now) {
  DPAXOS_CHECK_LT(zone, weights_.size());
  weights_[zone] = Decay(weights_[zone], updated_[zone], now) + 1.0;
  updated_[zone] = now;
}

double AccessStats::WeightAt(ZoneId zone, Timestamp now) const {
  DPAXOS_CHECK_LT(zone, weights_.size());
  return Decay(weights_[zone], updated_[zone], now);
}

double AccessStats::TotalWeightAt(Timestamp now) const {
  double total = 0;
  for (ZoneId z = 0; z < weights_.size(); ++z) total += WeightAt(z, now);
  return total;
}

PlacementAdvisor::PlacementAdvisor(const Topology* topology,
                                   double min_improvement, double min_weight)
    : topology_(topology),
      min_improvement_(min_improvement),
      min_weight_(min_weight) {
  DPAXOS_CHECK(topology != nullptr);
  DPAXOS_CHECK_GE(min_improvement, 0.0);
}

double PlacementAdvisor::CostMs(const AccessStats& stats, ZoneId zone,
                                Timestamp now) const {
  DPAXOS_CHECK_EQ(stats.num_zones(), topology_->num_zones());
  const double total = stats.TotalWeightAt(now);
  if (total == 0.0) return 0.0;
  double cost = 0;
  for (ZoneId w = 0; w < topology_->num_zones(); ++w) {
    const double weight = stats.WeightAt(w, now);
    if (weight == 0.0) continue;
    cost += weight * ToMillis(topology_->ZoneRtt(w, zone));
  }
  return cost / total;
}

PlacementAdvice PlacementAdvisor::Advise(const AccessStats& stats,
                                         ZoneId current_zone,
                                         Timestamp now) const {
  PlacementAdvice advice;
  advice.current_cost_ms = CostMs(stats, current_zone, now);
  advice.best_zone = current_zone;
  advice.best_cost_ms = advice.current_cost_ms;
  for (ZoneId z = 0; z < topology_->num_zones(); ++z) {
    const double cost = CostMs(stats, z, now);
    if (cost < advice.best_cost_ms) {
      advice.best_cost_ms = cost;
      advice.best_zone = z;
    }
  }
  // Move only with enough signal and a real improvement (hysteresis).
  advice.should_move =
      advice.best_zone != current_zone &&
      stats.TotalWeightAt(now) >= min_weight_ &&
      advice.best_cost_ms <=
          advice.current_cost_ms * (1.0 - min_improvement_);
  return advice;
}

}  // namespace dpaxos
