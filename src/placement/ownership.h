// Partition ownership: the directory and the transfer-record codec
// (docs/PROTOCOL.md §ownership).
//
// Ownership is decided IN the partition's own DPaxos log: a protocol
// steal (Replica::StealOwnershipFrom) concludes with the new owner
// committing an ownership-transfer record as its first proposal, so
// every replica learns who owns the partition the same way it learns
// every other decided value — no side channel, no gossip, and a replica
// that catches up via snapshot + log replay reconstructs the directory
// for free.
//
// The record rides inside a perfectly ordinary consensus value: a
// one-transaction batch whose single operation is a Get of a magic key.
// The KV state machine applies Gets as no-ops, so ownership metadata
// never perturbs user state, checksums or dedup windows; the directory
// recognises records cheaply by the tagged top byte of the value id
// before paying for a batch decode.
#ifndef DPAXOS_PLACEMENT_OWNERSHIP_H_
#define DPAXOS_PLACEMENT_OWNERSHIP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "paxos/value.h"

namespace dpaxos {

/// \brief One decided ownership transfer: who owns `partition` now.
struct OwnershipRecord {
  PartitionId partition = 0;
  ZoneId zone = 0;
  NodeId node = kInvalidNode;
  /// Transfer count for this partition (observability; ordering comes
  /// from the log slot, not from the epoch).
  uint64_t epoch = 0;

  bool operator==(const OwnershipRecord& o) const {
    return partition == o.partition && zone == o.zone && node == o.node &&
           epoch == o.epoch;
  }
};

/// Top byte of every transfer value's id. Client value ids are
/// `((node + 1) << 40) | seq` (top byte 0) and the no-op filler is id 0,
/// so the tag alone rules out non-records without touching the payload.
inline constexpr uint8_t kOwnershipValueTag = 0xD1;

inline bool IsOwnershipValueId(uint64_t id) {
  return (id >> 56) == kOwnershipValueTag;
}

/// Build the consensus value that records `record` in the log. `seq`
/// disambiguates successive transfers proposed by the same node (it
/// lands in the low bits of the value id).
Value MakeOwnershipTransferValue(const OwnershipRecord& record, uint64_t seq);

/// Decode a transfer record from a decided value. nullopt for anything
/// that is not a well-formed record (wrong id tag, undecodable batch,
/// wrong shape, bad magic) — hostile or foreign values are never an
/// error, just not records.
std::optional<OwnershipRecord> DecodeOwnershipRecord(const Value& value);

/// \brief Per-partition ownership learned from decided transfer records.
///
/// Records apply in slot order: an Observe with a slot at or below the
/// partition's last recorded slot is stale (a replay or an out-of-order
/// decide) and is counted but not applied. The directory is a pure
/// learner — it never initiates anything.
class OwnershipDirectory {
 public:
  explicit OwnershipDirectory(uint32_t num_partitions);

  /// Feed one decided (slot, value). Returns true iff the value was a
  /// transfer record for a known partition and it advanced the entry.
  bool Observe(SlotId slot, const Value& value);

  /// Same, for a record already decoded by the caller.
  bool Observe(SlotId slot, const OwnershipRecord& record);

  bool has_owner(PartitionId partition) const;
  NodeId owner_node(PartitionId partition) const;
  /// Only meaningful when has_owner(partition).
  ZoneId owner_zone(PartitionId partition) const;
  uint64_t epoch(PartitionId partition) const;
  /// Slot of the record currently governing `partition` (0 = none).
  SlotId record_slot(PartitionId partition) const;

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(entries_.size());
  }
  uint64_t records_observed() const { return records_observed_; }
  uint64_t records_stale() const { return records_stale_; }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    ZoneId zone = 0;
    uint64_t epoch = 0;
    SlotId slot = 0;
    bool valid = false;
  };

  std::vector<Entry> entries_;
  uint64_t records_observed_ = 0;
  uint64_t records_stale_ = 0;
};

}  // namespace dpaxos

#endif  // DPAXOS_PLACEMENT_OWNERSHIP_H_
