// Workload-aware placement: where should a partition's leader and Leader
// Zone live?
//
// The paper (Section 4.6 "Configuration") leaves quorum/leader placement
// to the administrator and points to automatic placement as future work.
// This module provides that piece: an exponentially decayed per-zone
// access histogram and an advisor that recommends the latency-optimal
// zone with hysteresis, so mobility-driven migrations (Leader Handoff +
// Leader Zone migration) fire only when they pay for themselves.
#ifndef DPAXOS_PLACEMENT_PLACEMENT_H_
#define DPAXOS_PLACEMENT_PLACEMENT_H_

#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace dpaxos {

/// \brief Exponentially decayed count of accesses per zone.
class AccessStats {
 public:
  /// `half_life`: virtual time in which an unrefreshed zone's weight
  /// halves. Must be > 0.
  AccessStats(uint32_t num_zones, Duration half_life);

  /// Record one access from `zone` at virtual time `now` (non-decreasing
  /// across calls).
  void Record(ZoneId zone, Timestamp now);

  /// Current (decayed) weight of a zone at time `now`.
  double WeightAt(ZoneId zone, Timestamp now) const;

  /// Sum of all zone weights at `now`.
  double TotalWeightAt(Timestamp now) const;

  uint32_t num_zones() const {
    return static_cast<uint32_t>(weights_.size());
  }

 private:
  double Decay(double weight, Timestamp from, Timestamp now) const;

  Duration half_life_;
  std::vector<double> weights_;
  std::vector<Timestamp> updated_;  // last update per zone
};

/// Placement recommendation for one partition.
struct PlacementAdvice {
  /// Zone minimizing the access-weighted client RTT.
  ZoneId best_zone = kInvalidZone;
  /// Expected mean RTT (ms) if the leader sits in best_zone.
  double best_cost_ms = 0;
  /// Expected mean RTT (ms) for the currently configured zone.
  double current_cost_ms = 0;
  /// True if moving is worth it under the advisor's hysteresis.
  bool should_move = false;
};

/// \brief Latency-optimal leader/Leader-Zone placement with hysteresis.
class PlacementAdvisor {
 public:
  /// `min_improvement`: relative cost reduction (e.g. 0.2 = 20%) required
  /// before recommending a migration; suppresses ping-ponging between
  /// nearly equivalent zones. `min_weight`: ignore advice until this much
  /// (decayed) access weight has accumulated.
  PlacementAdvisor(const Topology* topology, double min_improvement = 0.2,
                   double min_weight = 5.0);

  /// Access-weighted mean client-to-leader RTT (ms) if the leader were in
  /// `zone` — clients in the leader's zone pay the intra-zone RTT.
  double CostMs(const AccessStats& stats, ZoneId zone, Timestamp now) const;

  /// Evaluate all zones and recommend.
  PlacementAdvice Advise(const AccessStats& stats, ZoneId current_zone,
                         Timestamp now) const;

 private:
  const Topology* topology_;
  double min_improvement_;
  double min_weight_;
};

}  // namespace dpaxos

#endif  // DPAXOS_PLACEMENT_PLACEMENT_H_
