#include "directory/sharded_store.h"

#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/perf_counters.h"

namespace dpaxos {

namespace {

// FNV-1a: stable key -> partition hashing.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ShardedStore::ShardedStore(Simulator* sim, const Topology* topology,
                           ReplicaProvider provider, Options options)
    : sim_(sim),
      topology_(topology),
      provider_(std::move(provider)),
      options_(options),
      advisor_(topology, options.min_improvement, options.min_weight),
      directory_(options.num_partitions) {
  DPAXOS_CHECK(sim && topology);
  DPAXOS_CHECK(provider_ != nullptr);
  DPAXOS_CHECK_GT(options_.num_partitions, 0u);
  for (uint32_t p = 0; p < options_.num_partitions; ++p) {
    stats_.emplace_back(topology_->num_zones(), options_.stats_half_life);
    leaders_.push_back(kInvalidNode);
    last_steal_.push_back(0);
  }
}

PartitionId ShardedStore::PartitionOf(const std::string& key) const {
  return static_cast<PartitionId>(HashKey(key) % options_.num_partitions);
}

NodeId ShardedStore::LeaderOf(PartitionId partition) const {
  DPAXOS_CHECK_LT(partition, leaders_.size());
  return leaders_[partition];
}

void ShardedStore::ObserveDecided(PartitionId partition, SlotId slot,
                                  const Value& value) {
  std::optional<OwnershipRecord> record = DecodeOwnershipRecord(value);
  // A record naming another partition inside this log would cross-wire
  // the per-log slot ordering; treat it as not-a-record.
  if (!record || record->partition != partition) return;
  if (directory_.Observe(slot, *record)) {
    leaders_[partition] = record->node;
  }
}

void ShardedStore::StealViaProtocol(PartitionId partition, ZoneId zone,
                                    std::function<void(const Status&)> done) {
  const NodeId thief = topology_->NodesInZone(zone)[0];
  Replica* replica = provider_(thief, partition);
  DPAXOS_CHECK(replica != nullptr);
  const NodeId previous = leaders_[partition];
  const bool migrates =
      previous != kInvalidNode && topology_->ZoneOf(previous) != zone;
  const OwnershipRecord record{partition, zone, thief,
                               directory_.epoch(partition) + 1};
  Value value = MakeOwnershipTransferValue(record, ++transfer_seq_);
  ++ThreadPerfCounters().placement_steals_attempted;

  auto finish = [this, partition, thief, migrates,
                 record, done = std::move(done)](const Status& st) {
    PerfCounters& perf = ThreadPerfCounters();
    if (st.ok()) {
      leaders_[partition] = thief;
      last_steal_[partition] = sim_->Now();
      ++steals_;
      ++perf.store_steals;
      ++perf.placement_steals_completed;
      if (migrates) ++perf.store_partition_migrations;
      // The thief's contiguous watermark covers the record it just
      // committed, so it is a valid (monotone) observation slot even
      // though the commit callback does not carry the slot itself.
      if (Replica* r = provider_(thief, partition)) {
        directory_.Observe(r->DecidedWatermark(), record);
      }
      DPAXOS_DEBUG("partition " << partition
                                << " ownership stolen by node " << thief);
    } else if (st.code() == StatusCode::kFailedPrecondition) {
      ++perf.placement_steals_rejected;
    }
    if (done) done(st);
  };

  if (previous == kInvalidNode) {
    // First claim: elect over the empty log, then record the claim so
    // every learner's directory starts from a decided entry.
    replica->TryBecomeLeader(
        [replica, value = std::move(value),
         finish = std::move(finish)](const Status& st) mutable {
          if (!st.ok()) {
            finish(st);
            return;
          }
          replica->Submit(std::move(value),
                          [finish = std::move(finish)](const Status& cst,
                                                       SlotId, Duration) {
                            finish(cst);
                          });
        });
    return;
  }
  if (Replica* old = provider_(previous, partition)) {
    replica->PrimeBallot(old->ballot());
  }
  replica->StealOwnershipFrom(previous, std::move(value), std::move(finish));
}

void ShardedStore::Steal(PartitionId partition, ZoneId zone,
                         std::function<void(const Status&)> done) {
  DPAXOS_CHECK_LT(partition, leaders_.size());
  if (options_.ownership) {
    StealViaProtocol(partition, zone, std::move(done));
    return;
  }
  const NodeId thief = topology_->NodesInZone(zone)[0];
  Replica* replica = provider_(thief, partition);
  DPAXOS_CHECK(replica != nullptr);
  const NodeId previous = leaders_[partition];
  if (previous != kInvalidNode) {
    Replica* old = provider_(previous, partition);
    if (old != nullptr) replica->PrimeBallot(old->ballot());
  }
  // A steal away from an existing leader in another zone is a true
  // placement migration; a first claim is not.
  const bool migrates =
      previous != kInvalidNode && topology_->ZoneOf(previous) != zone;

  auto elect = [this, partition, thief, migrates,
                done = std::move(done)](Replica* r) {
    r->TryBecomeLeader([this, partition, thief, migrates,
                        done = std::move(done)](const Status& st) {
      if (st.ok()) {
        leaders_[partition] = thief;
        ++steals_;
        PerfCounters& perf = ThreadPerfCounters();
        ++perf.store_steals;
        if (migrates) ++perf.store_partition_migrations;
        DPAXOS_DEBUG("partition " << partition << " stolen by node "
                                  << thief);
      }
      if (done) done(st);
    });
  };

  if (previous == kInvalidNode) {
    // First claim: nothing decided yet, elect over the empty log.
    elect(replica);
    return;
  }
  // Migration: pull the incumbent's state BEFORE the election, so the
  // prepare round recovers only the undecided tail instead of
  // re-replicating the whole history through the promises. Catch-up
  // failure (e.g. incumbent crashed) is not fatal — the election can
  // still recover everything, just expensively.
  //
  // Long logs ship as a checksummed snapshot + residual tail instead of
  // page-by-page replay, when both ends have snapshot hooks wired.
  Replica* incumbent = provider_(previous, partition);
  const bool snapshot_handover =
      options_.prefer_snapshot && incumbent != nullptr &&
      incumbent->snapshot_serve_ready() && replica->snapshot_transfer_ready() &&
      incumbent->decided().size() > replica->decided().size() &&
      incumbent->decided().size() - replica->decided().size() >=
          options_.snapshot_handover_min_slots;
  if (snapshot_handover) {
    const uint64_t bytes_before =
        replica->counters().snapshot_bytes_received;
    replica->CatchUpViaSnapshot(
        {previous},
        [replica, bytes_before, elect = std::move(elect)](const Status& st) {
          if (st.ok()) {
            PerfCounters& perf = ThreadPerfCounters();
            ++perf.store_snapshot_transfers;
            perf.store_snapshot_bytes +=
                replica->counters().snapshot_bytes_received - bytes_before;
          }
          elect(replica);
        });
    return;
  }
  replica->CatchUpFrom(previous,
                       [replica, elect = std::move(elect)](const Status&) {
                         elect(replica);
                       });
}

void ShardedStore::RouteToLeader(PartitionId partition, ZoneId client_zone,
                                 Value value, Callback cb) {
  NodeId leader = leaders_[partition];
  if (options_.ownership && directory_.has_owner(partition)) {
    // The directory is the protocol-fed authority; leaders_ remains the
    // operational fallback before the first record lands.
    leader = directory_.owner_node(partition);
  }
  DPAXOS_CHECK_NE(leader, kInvalidNode);
  // The client talks to its zone-local access replica, which forwards to
  // the leader if it is elsewhere.
  const NodeId access_node = topology_->NodesInZone(client_zone)[0];
  Replica* access = provider_(access_node, partition);
  DPAXOS_CHECK(access != nullptr);
  access->set_leader_hint(leader);
  access->SubmitOrForward(
      std::move(value),
      [cb = std::move(cb)](const Status& st, SlotId, Duration latency) {
        if (cb) cb(st, latency);
      });
}

void ShardedStore::Execute(const Transaction& txn, ZoneId client_zone,
                           Callback cb) {
  DPAXOS_CHECK_LT(client_zone, topology_->num_zones());
  if (txn.ops.empty()) {
    cb(Status::InvalidArgument("empty transaction"), 0);
    return;
  }
  const PartitionId partition = PartitionOf(txn.ops.front().key);
  for (const Operation& op : txn.ops) {
    if (PartitionOf(op.key) != partition) {
      cb(Status::NotSupported(
             "cross-partition transactions are not supported"),
         0);
      return;
    }
  }

  stats_[partition].Record(client_zone, sim_->Now());
  Value value = Value::Of(txn.id, EncodeBatch({txn}));

  // First access: the client's zone claims the partition. Later, steal
  // when the advisor says the access center moved enough.
  bool steal_now = leaders_[partition] == kInvalidNode;
  ZoneId target = client_zone;
  if (!steal_now && options_.auto_steal) {
    const ZoneId current_zone = topology_->ZoneOf(leaders_[partition]);
    const PlacementAdvice advice =
        advisor_.Advise(stats_[partition], current_zone, sim_->Now());
    if (advice.should_move) {
      if (options_.ownership && options_.steal_cooldown > 0 &&
          last_steal_[partition] != 0 &&
          sim_->Now() - last_steal_[partition] < options_.steal_cooldown) {
        ++ThreadPerfCounters().placement_pingpongs_suppressed;
      } else {
        steal_now = true;
        target = advice.best_zone;
      }
    }
  }

  if (!steal_now) {
    RouteToLeader(partition, client_zone, std::move(value), std::move(cb));
    return;
  }
  Steal(partition, target,
        [this, partition, client_zone, value = std::move(value),
         cb = std::move(cb)](const Status& st) mutable {
          if (!st.ok() && leaders_[partition] == kInvalidNode) {
            cb(st, 0);
            return;
          }
          // Stolen (or the steal lost a race but some leader exists).
          RouteToLeader(partition, client_zone, std::move(value),
                        std::move(cb));
        });
}

}  // namespace dpaxos
